// Tests for the parallel pre-drain scheduler that the workload suite
// cannot exercise: the Table 2 stand-ins dirty summarized PTFs one at a
// time (call-chain cascades), so their re-drains run on the sequential
// fallback path. A batch needs *simultaneous* sibling dirt over
// disjoint resources — one procedure writing several globals, each read
// by a different already-summarized procedure. fanOutSource generates
// exactly that shape.
package wlpa_test

import (
	"fmt"
	"strings"
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/workload"
)

// fanOutSource builds a program with n independent reader procedures
// (reader i loads through global pointer g_i into o_i) and one setup
// procedure that initializes every g_i. main runs readers-then-setup in
// a loop: the first trip summarizes and latches every reader call site
// with g_i still null, setup's stores make them non-empty, and the
// loop's back edge re-fires the latched sites. Each re-bind upgrades an
// empty input-domain entry (paper §5.2), dirtying the reader's PTF —
// and because the decision at a latched site is already made, the
// engine defers all n drains and batches them into one epoch (the
// readers' static resource sets are pairwise disjoint).
//
// The shape is deliberate. Two simpler attempts produce NO parallelism:
// straight-line repeated calls are distinct call nodes, hence fresh
// match decisions that must stay sequential; and pure value growth
// (repointing an already-non-null g_i) re-binds symbolically without
// re-draining, because the PTF summary is expressed in terms of its
// extended parameters.
func fanOutSource(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "int a%d; int *p%d; int **g%d; int *o%d;\n", i, i, i, i)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "void r%d(void) { o%d = *g%d; }\n", i, i, i)
	}
	b.WriteString("void setup(void)\n{\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    p%d = &a%d;\n    g%d = &p%d;\n", i, i, i, i)
	}
	b.WriteString("}\n")
	b.WriteString("int main(void)\n{\n    int k;\n")
	b.WriteString("    for (k = 0; k < 2; k++) {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "        r%d();\n", i)
	}
	b.WriteString("        setup();\n    }\n")
	b.WriteString("    return *o0;\n}\n")
	return b.String()
}

// TestParallelEpochsForm proves the scheduler actually runs multi-item
// epochs on a fan-out workload — the equivalence tests alone could pass
// with the parallel path dead.
func TestParallelEpochsForm(t *testing.T) {
	src := fanOutSource(8)
	par := analyzeWith(t, "fanout", src, false, 4)
	st := par.Stats()
	if st.Workers != 4 {
		t.Errorf("Stats.Workers = %d, want 4", st.Workers)
	}
	if st.ParallelEpochs < 1 {
		t.Errorf("ParallelEpochs = %d, want >= 1 (parallel path never ran)", st.ParallelEpochs)
	}
	if st.ParallelItems < 2 {
		t.Errorf("ParallelItems = %d, want >= 2 (no batch ever formed)", st.ParallelItems)
	}
}

// TestParallelFanOutEquivalence checks the fan-out shape — the one that
// actually drives the worker pool — still matches the sequential engine
// bit for bit, at several sizes and worker counts.
func TestParallelFanOutEquivalence(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		n := n
		t.Run(fmt.Sprintf("fanout%d", n), func(t *testing.T) {
			t.Parallel()
			src := fanOutSource(n)
			seq := analyzeWith(t, "fanout", src, false, 1)
			ss := seq.Stats()
			sd, sdiag := solutionDump(seq), diagDump(t, seq)
			for _, w := range []int{2, 4, 8} {
				par := analyzeWith(t, "fanout", src, false, w)
				ps := par.Stats()
				if ps.PTFs != ss.PTFs {
					t.Errorf("workers=%d: PTFs = %d, want %d", w, ps.PTFs, ss.PTFs)
				}
				comparePTFsPerProc(t, "fanout", ps.PTFsPerProc, ss.PTFsPerProc)
				if pd := solutionDump(par); pd != sd {
					t.Errorf("workers=%d: solution dumps differ; first divergence:\n%s", w, firstDiff(pd, sd))
				}
				if pdiag := diagDump(t, par); pdiag != sdiag {
					t.Errorf("workers=%d: diagnostics differ:\n-- parallel --\n%s\n-- sequential --\n%s", w, pdiag, sdiag)
				}
			}
		})
	}
}

// TestParallelDefaultWorkers checks the Workers option defaulting: 0
// means GOMAXPROCS(0), 1 forces sequential, and the recorded stat
// reflects the resolved value.
func TestParallelDefaultWorkers(t *testing.T) {
	src := fanOutSource(2)
	seq := analyzeWith(t, "fanout", src, false, 1)
	if got := seq.Stats().Workers; got != 1 {
		t.Errorf("Workers stat = %d, want 1", got)
	}
	if got := seq.Stats().ParallelEpochs; got != 0 {
		t.Errorf("sequential run recorded %d parallel epochs, want 0", got)
	}
	def := analyzeWith(t, "fanout", src, false, 0)
	if got := def.Stats().Workers; got < 1 {
		t.Errorf("defaulted Workers stat = %d, want >= 1", got)
	}
}

// TestFanOutShapesBatchAndMatch pins the worker-scaling workloads
// (workload.FanOutShapes — what BenchmarkWorkerScaling and
// BENCH_workerscaling.json measure): every shape must form more than
// one scheduler epoch under a worker pool (each cone root carries two
// PTFs — distinct-argument and aliased-argument patterns — and the
// scheduler packs one item per procedure per epoch), and the parallel
// solution must match the sequential engine bit for bit.
func TestFanOutShapesBatchAndMatch(t *testing.T) {
	for _, s := range workload.FanOutShapes() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			src := s.Source()
			seq := analyzeWith(t, s.Name, src, false, 1)
			sd, sdiag := solutionDump(seq), diagDump(t, seq)
			for _, w := range []int{2, 4, 8} {
				par := analyzeWith(t, s.Name, src, false, w)
				if got := par.Stats().ParallelEpochs; got < 2 {
					t.Errorf("workers=%d: ParallelEpochs = %d, want >= 2", w, got)
				}
				if got, want := par.Stats().PTFs, seq.Stats().PTFs; got != want {
					t.Errorf("workers=%d: PTFs = %d, want %d", w, got, want)
				}
				if pd := solutionDump(par); pd != sd {
					t.Errorf("workers=%d: solution dumps differ; first divergence:\n%s", w, firstDiff(pd, sd))
				}
				if pdiag := diagDump(t, par); pdiag != sdiag {
					t.Errorf("workers=%d: diagnostics differ:\n-- parallel --\n%s\n-- sequential --\n%s", w, pdiag, sdiag)
				}
			}
		})
	}
}

var _ = analysis.Options{} // keep the import if assertions change
