// Alias queries for an optimizer: the use case the paper's introduction
// motivates. A compiler pass wants to know whether two pointers can
// refer to the same storage — if they cannot, loads can be reordered,
// values kept in registers, and loops parallelized. Context sensitivity
// is what keeps the answers precise: a context-insensitive analysis
// conflates every call to mix() below and reports spurious aliases.
package main

import (
	"fmt"
	"log"

	"wlpa/pta"
)

const program = `
#include <stdlib.h>

int a, b, c;
int *pa, *pb, *heap1, *heap2;

/* mix copies one pointer through another; in a context-insensitive
 * analysis every call site's values blur together. */
int *mix(int *src) {
    return src;
}

int main(void) {
    pa = mix(&a);                       /* pa -> a  */
    pb = mix(&b);                       /* pb -> b  */
    heap1 = (int *)malloc(sizeof(int)); /* distinct allocation sites    */
    heap2 = (int *)malloc(sizeof(int)); /*   get distinct heap blocks   */
    *pa = 1;
    *pb = 2;
    return *pa + *pb;
}
`

func main() {
	res, err := pta.AnalyzeSource("alias.c", program, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Points-to sets:")
	for _, g := range []string{"pa", "pb", "heap1", "heap2"} {
		fmt.Printf("  %-6s -> %v\n", g, res.PointsTo(g))
	}

	fmt.Println("\nAlias queries (context-sensitive):")
	pairs := [][2]string{
		{"pa", "pb"},       // distinct targets through the same helper
		{"heap1", "heap2"}, // distinct allocation sites
		{"pa", "heap1"},
	}
	for _, pr := range pairs {
		verdict := "NO alias — safe to reorder/register-allocate"
		if res.MayAlias(pr[0], pr[1]) {
			verdict = "may alias — must be conservative"
		}
		fmt.Printf("  %-6s vs %-6s : %s\n", pr[0], pr[1], verdict)
	}

	// The same program under the context-insensitive policy: mix()'s
	// two contexts merge and pa/pb appear aliased.
	coarse, err := pta.AnalyzeSource("alias.c", program, &pta.Options{Policy: pta.OneSummary})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe same queries with a single merged summary per procedure:")
	for _, pr := range pairs {
		verdict := "no alias"
		if coarse.MayAlias(pr[0], pr[1]) {
			verdict = "MAY ALIAS (spurious: cost of losing context sensitivity)"
		}
		fmt.Printf("  %-6s vs %-6s : %s\n", pr[0], pr[1], verdict)
	}
}
