// Loop parallelization driven by pointer analysis — the paper's §7
// application. The parallelizer uses the points-to results to prove
// that loop iterations touch disjoint storage (unaliased formals, row
// pointers, per-element callee writes), profiles the program with the
// interpreter, and evaluates the SPMD cost model at 2 and 4 processors.
package main

import (
	"fmt"
	"log"

	"wlpa/internal/analysis"
	"wlpa/internal/cparse"
	"wlpa/internal/libsum"
	"wlpa/internal/parallel"
	"wlpa/internal/sem"
	"wlpa/internal/workload"
)

func main() {
	b, ok := workload.ByName("alvinn")
	if !ok {
		log.Fatal("alvinn benchmark missing")
	}
	file, err := cparse.ParseSource("alvinn", b.Source)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sem.Check(file)
	if err != nil {
		log.Fatal(err)
	}
	an, err := analysis.New(prog, analysis.Options{
		Lib:             libsum.Summaries(),
		CollectSolution: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := an.Run(); err != nil {
		log.Fatal(err)
	}

	par := parallel.New(prog, an)
	fmt.Println("Static loop classification for alvinn:")
	for _, l := range par.Classify() {
		if l.Parallel {
			fmt.Printf("  PARALLEL  %-22s %s\n", l.Func, l.Pos)
		} else {
			fmt.Printf("  serial    %-22s %s (%s)\n", l.Func, l.Pos, l.Reason)
		}
	}

	rep, err := parallel.BuildReport("alvinn", prog, par, 80_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%.1f%% of sequential execution is inside parallelized loops\n",
		rep.PercentParallel)
	fmt.Printf("average cost per parallel loop invocation: %.0f units\n",
		rep.AvgCostPerInvocation)
	for _, p := range []int{2, 4, 8} {
		fmt.Printf("modeled speedup on %d processors: %.2fx\n", p, rep.Speedup(p))
	}
}
