// Quickstart: analyze the paper's Figure 1 program and observe the two
// partial transfer functions the analysis creates for procedure f — one
// shared by the unaliased calls (S1, S2), one for the aliased call (S3)
// — plus the resulting context-sensitive points-to sets.
package main

import (
	"fmt"
	"log"

	"wlpa/pta"
)

// The example program from Wilson & Lam, PLDI 1995, Figure 1.
const figure1 = `
int test1, test2;
int x, y, z;
int *x0, *y0, *z0;

void f(int **p, int **q, int **r) {
    *p = *q;
    *q = *r;
}

int main(void) {
    x0 = &x; y0 = &y; z0 = &z;
    if (test1)
        f(&x0, &y0, &z0);      /* S1: no aliases among inputs  */
    else if (test2)
        f(&z0, &x0, &y0);      /* S2: same alias pattern as S1 */
    else
        f(&x0, &y0, &x0);      /* S3: p and r are aliased      */
    return 0;
}
`

func main() {
	res, err := pta.AnalyzeSource("figure1.c", figure1, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Points-to sets at program exit:")
	for _, g := range []string{"x0", "y0", "z0"} {
		fmt.Printf("  %-3s -> %v\n", g, res.PointsTo(g))
	}

	fmt.Printf("\nPTFs created for f: %d\n", res.NumPTFs("f"))
	fmt.Println("  (one PTF covers both S1 and S2 — same alias pattern,")
	fmt.Println("   different actuals; the aliased call S3 needs its own)")

	st := res.Stats()
	fmt.Printf("\n%d procedures, %d PTFs total (%.2f per procedure), analysis %s\n",
		st.Procedures, st.PTFs, st.AvgPTFs(), st.Duration)

	if res.MayAlias("x0", "y0") {
		fmt.Println("\nx0 and y0 may alias")
	} else {
		fmt.Println("\nx0 and y0 do not alias")
	}
}
