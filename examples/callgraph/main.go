// Call-graph resolution through function pointers: the points-to
// analysis tracks which functions each pointer can reference, so calls
// through pointers — including pointers stored in dispatch tables and
// passed as callbacks — resolve to their concrete targets. This is the
// analysis capability the paper highlights in §5.1.
package main

import (
	"fmt"
	"log"

	"wlpa/pta"
)

const program = `
#include <stdlib.h>

int applied_count;

int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }

/* a dispatch table of operations */
struct op {
    char code;
    int (*fn)(int, int);
};

struct op table[3];

void init_table(void) {
    table[0].code = '+'; table[0].fn = add;
    table[1].code = '-'; table[1].fn = sub;
    table[2].code = '*'; table[2].fn = mul;
}

int dispatch(char code, int a, int b) {
    int i;
    for (i = 0; i < 3; i++) {
        if (table[i].code == code) {
            applied_count++;
            return table[i].fn(a, b);     /* indirect: resolves to add/sub/mul */
        }
    }
    return 0;
}

/* a callback passed down through another function */
int apply(int (*cb)(int, int), int a, int b) {
    return cb(a, b);                      /* indirect: resolves to the argument */
}

int main(void) {
    int r;
    init_table();
    r = dispatch('+', 2, 3);
    r += dispatch('*', r, r);
    r += apply(sub, r, 5);
    return r & 0x7f;
}
`

func main() {
	res, err := pta.AnalyzeSource("dispatch.c", program, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Resolved call graph (including function-pointer calls):")
	for _, e := range res.CallGraph() {
		fmt.Printf("  %-10s -> %-10s at %s\n", e.Caller, e.Callee, e.Pos)
	}

	// The indirect call inside dispatch() must list all three table
	// entries; the one inside apply() must list only sub (its single
	// call site passes sub).
	indirect := map[string][]string{}
	for _, e := range res.CallGraph() {
		indirect[e.Caller] = append(indirect[e.Caller], e.Callee)
	}
	fmt.Printf("\ndispatch() can invoke: %v\n", indirect["dispatch"])
	fmt.Printf("apply() can invoke:    %v\n", indirect["apply"])
}
