// Command parbench regenerates the paper's Table 3: the loop
// parallelization measurements for the alvinn and ear benchmarks,
// including the per-loop classification detail.
//
// Usage:
//
//	parbench [-detail]
package main

import (
	"flag"
	"fmt"
	"os"

	"wlpa/internal/analysis"
	"wlpa/internal/bench"
	"wlpa/internal/cparse"
	"wlpa/internal/libsum"
	"wlpa/internal/parallel"
	"wlpa/internal/sem"
	"wlpa/internal/workload"
)

func main() {
	detail := flag.Bool("detail", false, "print the per-loop classification")
	flag.Parse()
	rows, err := bench.RunTable3()
	if err != nil {
		fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(bench.FormatTable3(rows))
	if !*detail {
		return
	}
	for _, name := range []string{"alvinn", "ear"} {
		b, _ := workload.ByName(name)
		f, err := cparse.ParseSource(name, b.Source)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
			os.Exit(1)
		}
		prog, err := sem.Check(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
			os.Exit(1)
		}
		an, err := analysis.New(prog, analysis.Options{Lib: libsum.Summaries(), CollectSolution: true})
		if err == nil {
			err = an.Run()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
			os.Exit(1)
		}
		rep, err := parallel.BuildReport(name, prog, parallel.New(prog, an), 80_000_000)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
	}
}
