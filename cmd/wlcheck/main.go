// Command wlcheck runs the context-sensitive pointer-bug checkers over
// C source files: NULL and uninitialized-pointer dereferences,
// use-after-free, double free, memory leaks, escaping locals, writes
// into string literals, indirect calls through non-function values,
// FILE-handle lifecycle violations, and tainted data reaching command
// or format-string sinks.
//
// Usage:
//
//	wlcheck [-checks list] [-passes list] [-format text|json|sarif]
//	        [-baseline file] [-write-baseline file] [-workers n]
//	        [-modref] [-q] [-trace] [-remote host:port]
//	        [-demand proc:line:expr,...] file.c...
//
// With several files, the first is the entry translation unit and the
// rest are available for #include. With -remote the diagnostics come
// from a wlpad daemon (see cmd/wlpad), which runs every pass with its
// own configuration — -checks/-passes/-workers/-max-ptfs are rejected
// in that mode; baselines and output formats work unchanged. With
// -demand, each listed site's points-to set is printed (answered by the
// demand-driven walker, identical to the whole-program answer) and the
// diagnostics are restricted to the queried (proc, line) sites —
// pointwise checking of just the code under review. Exits 1 if any
// error-severity diagnostic survives baseline suppression, 2 on usage
// or front-end failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"wlpa/internal/server"
	"wlpa/pta"
)

func main() {
	var passNames []string
	for _, p := range pta.AllPasses() {
		passNames = append(passNames, p.Name)
	}
	var (
		checks    = flag.String("checks", "", "comma-separated checks to run (default: all of "+strings.Join(pta.AllChecks, ",")+")")
		passes    = flag.String("passes", "", "comma-separated passes to run (default: all of "+strings.Join(passNames, ",")+")")
		format    = flag.String("format", "text", "output format: text, json, or sarif")
		baseline  = flag.String("baseline", "", "suppress diagnostics whose fingerprints appear in this file")
		writeBase = flag.String("write-baseline", "", "write the run's fingerprints to this file (for future -baseline)")
		workers   = flag.Int("workers", 0, "goroutines walking calling contexts (0 = sequential; results identical)")
		modref    = flag.Bool("modref", false, "print each procedure's MOD/REF summary before the diagnostics")
		quiet     = flag.Bool("q", false, "suppress warnings (print errors only; text format)")
		trace     = flag.Bool("trace", false, "print the calling context of each diagnostic (text format)")
		maxPTFs   = flag.Int("max-ptfs", 0, "cap PTFs per procedure (0 = unlimited)")
		remote    = flag.String("remote", "", "answer via a wlpad daemon at this address instead of analyzing in-process")
		demand    = flag.String("demand", "", "comma-separated proc:line:expr sites: print each site's points-to set (demand-driven) and restrict diagnostics to the queried (proc,line) sites")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: wlcheck [flags] file.c ...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	files := pta.Source{}
	entry := ""
	for i, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		name := filepath.Base(path)
		files[name] = string(data)
		if i == 0 {
			entry = name
		}
	}
	sites, err := parseDemandSites(*demand)
	if err != nil {
		fail(err)
	}
	var diags []pta.Diagnostic
	var modrefLines []string
	if *remote != "" {
		if *checks != "" || *passes != "" || *workers != 0 || *maxPTFs != 0 {
			fail(fmt.Errorf("-checks/-passes/-workers/-max-ptfs are fixed by the daemon; drop them with -remote"))
		}
		if len(sites) > 0 {
			fail(fmt.Errorf("-demand runs in-process; query the daemon's /query endpoint instead of combining it with -remote"))
		}
		_, snap, err := (&server.Client{Base: *remote}).Analyze(context.Background(), files, entry, true)
		if err != nil {
			fail(err)
		}
		diags = snap.Diagnostics()
		modrefLines = snap.ModRefDump()
	} else {
		res, err := pta.Analyze(files, entry, &pta.Options{MaxPTFs: *maxPTFs})
		if err != nil {
			fail(err)
		}
		if len(sites) > 0 {
			d := res.Demand(nil)
			for _, s := range sites {
				pts := d.PointsToAt(s.proc, s.line, s.expr)
				fmt.Printf("%s:%d %s => {%s}\n", s.proc, s.line, s.expr, strings.Join(pts, ", "))
			}
		}
		copts := &pta.CheckOptions{Workers: *workers}
		if *checks != "" {
			copts.Checks = strings.Split(*checks, ",")
		}
		if *passes != "" {
			copts.Passes = strings.Split(*passes, ",")
		}
		diags, err = res.Check(copts)
		if err != nil {
			fail(err)
		}
		if *modref {
			modrefLines = res.ModRefDump()
		}
	}
	if *modref {
		for _, line := range modrefLines {
			fmt.Println(line)
		}
	}
	if len(sites) > 0 {
		diags = filterToSites(diags, sites)
	}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fail(err)
		}
		base, err := pta.LoadBaseline(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		var suppressed int
		diags, suppressed = pta.Suppress(diags, base)
		if suppressed > 0 && *format == "text" {
			fmt.Fprintf(os.Stderr, "wlcheck: %d diagnostic(s) suppressed by baseline\n", suppressed)
		}
	}
	if *writeBase != "" {
		f, err := os.Create(*writeBase)
		if err != nil {
			fail(err)
		}
		if err := pta.WriteBaseline(f, diags); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	errors := 0
	for _, d := range diags {
		if d.Sev == pta.SevError {
			errors++
		}
	}
	switch *format {
	case "json":
		if err := pta.RenderJSON(os.Stdout, diags); err != nil {
			fail(err)
		}
	case "sarif":
		if err := pta.RenderSARIF(os.Stdout, diags); err != nil {
			fail(err)
		}
	case "text":
		for _, d := range diags {
			if d.Sev != pta.SevError && *quiet {
				continue
			}
			fmt.Printf("%s: %s: %s [%s]\n", d.Pos, d.Sev, d.Message, d.Check)
			if *trace && len(d.Trace) > 0 {
				fmt.Printf("    context: %s\n", strings.Join(d.Trace, " -> "))
			}
		}
		if errors > 0 {
			fmt.Printf("%d error(s)\n", errors)
		}
	default:
		fmt.Fprintf(os.Stderr, "wlcheck: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}
	if errors > 0 {
		os.Exit(1)
	}
}

// demandSite is one parsed -demand query.
type demandSite struct {
	proc string
	line int
	expr string
}

// parseDemandSites parses the -demand value: comma-separated
// proc:line:expr triples ("main:12:*p,helper:30:q").
func parseDemandSites(spec string) ([]demandSite, error) {
	if spec == "" {
		return nil, nil
	}
	var sites []demandSite
	for _, part := range strings.Split(spec, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), ":", 3)
		if len(fields) != 3 || fields[0] == "" || fields[2] == "" {
			return nil, fmt.Errorf("-demand site %q: want proc:line:expr", part)
		}
		line, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("-demand site %q: line %q is not an integer", part, fields[1])
		}
		sites = append(sites, demandSite{proc: fields[0], line: line, expr: fields[2]})
	}
	return sites, nil
}

// filterToSites keeps diagnostics at the queried (proc, line) sites.
func filterToSites(diags []pta.Diagnostic, sites []demandSite) []pta.Diagnostic {
	keep := make(map[[2]string]bool, len(sites))
	for _, s := range sites {
		keep[[2]string{s.proc, strconv.Itoa(s.line)}] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if keep[[2]string{d.Proc, strconv.Itoa(d.Pos.Line)}] {
			out = append(out, d)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "wlcheck: %v\n", err)
	os.Exit(2)
}
