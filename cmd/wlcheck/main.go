// Command wlcheck runs the context-sensitive pointer-bug checkers over
// C source files: NULL and uninitialized-pointer dereferences,
// use-after-free, double free, escaping locals, and indirect calls
// through non-function values.
//
// Usage:
//
//	wlcheck [-checks list] [-q] [-trace] file.c...
//
// With several files, the first is the entry translation unit and the
// rest are available for #include. Exits 1 if any error-severity
// diagnostic is reported, 2 on usage or front-end failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wlpa/pta"
)

func main() {
	var (
		checks  = flag.String("checks", "", "comma-separated checks to run (default: all of "+strings.Join(pta.AllChecks, ",")+")")
		quiet   = flag.Bool("q", false, "suppress warnings (print errors only)")
		trace   = flag.Bool("trace", false, "print the calling context of each diagnostic")
		maxPTFs = flag.Int("max-ptfs", 0, "cap PTFs per procedure (0 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: wlcheck [flags] file.c ...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	files := pta.Source{}
	entry := ""
	for i, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wlcheck: %v\n", err)
			os.Exit(2)
		}
		name := filepath.Base(path)
		files[name] = string(data)
		if i == 0 {
			entry = name
		}
	}
	res, err := pta.Analyze(files, entry, &pta.Options{MaxPTFs: *maxPTFs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlcheck: %v\n", err)
		os.Exit(2)
	}
	copts := &pta.CheckOptions{}
	if *checks != "" {
		copts.Checks = strings.Split(*checks, ",")
	}
	diags, err := res.Check(copts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlcheck: %v\n", err)
		os.Exit(2)
	}
	errors := 0
	for _, d := range diags {
		if d.Sev == pta.SevError {
			errors++
		} else if *quiet {
			continue
		}
		fmt.Printf("%s: %s: %s [%s]\n", d.Pos, d.Sev, d.Message, d.Check)
		if *trace && len(d.Trace) > 0 {
			fmt.Printf("    context: %s\n", strings.Join(d.Trace, " -> "))
		}
	}
	if errors > 0 {
		fmt.Printf("%d error(s)\n", errors)
		os.Exit(1)
	}
}
