// Command ptabench regenerates the paper's Table 2 (benchmark and
// analysis measurements), the §7 invocation-graph comparison, and the
// PTF reuse-policy ablation over the embedded benchmark suite.
//
// Usage:
//
//	ptabench [-table2] [-invoke] [-ablation benchmark] [-workers n]
//	         [-json file] [-scalingjson file] [-editjson file]
//	         [-demandjson file] [-cpuprofile file] [-memprofile file]
//
// -json writes the Table 2 suite measurements (BENCH_ptabench.json);
// -scalingjson writes worker-scaling measurements over the fan-out
// shapes and the largest suite programs at 1/2/4/8 workers
// (BENCH_workerscaling.json); -editjson writes warm-edit measurements —
// for each benchmark, a single-procedure statement tweak re-analyzed
// incrementally against a converged baseline versus analyzed cold
// (BENCH_incremental.json); -demandjson writes demand-query latency —
// for each benchmark, a single warm points-to query against a held
// converged result versus a cold converge-and-answer versus the
// whole-program analysis (BENCH_demand.json). All take the fastest of
// several runs per cell.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"wlpa/internal/bench"
)

func main() {
	var (
		table2     = flag.Bool("table2", true, "run the Table 2 harness")
		invokeC    = flag.Bool("invoke", true, "run the invocation-graph comparison")
		ablation   = flag.String("ablation", "eqntott", "benchmark for the reuse-policy ablation (empty to skip)")
		jsonOut    = flag.String("json", "", "write per-workload measurements (ns/op, allocs/op, PTFs/proc, engine, workers) to this file")
		scalingOut = flag.String("scalingjson", "", "write worker-scaling measurements over the fan-out shapes to this file")
		editOut    = flag.String("editjson", "", "write warm-edit (incremental vs cold re-analysis) measurements to this file")
		demandOut  = flag.String("demandjson", "", "write demand-query latency (warm vs cold vs whole-program) measurements to this file")
		workers    = flag.Int("workers", 1, "analysis worker-pool size for -json runs (0 = GOMAXPROCS, 1 = sequential)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *table2 {
		rows, err := bench.RunTable2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if *invokeC {
		rows, err := bench.RunInvokeComparison([]string{"compiler", "eqntott", "simulator"}, 1_000_000)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatInvoke(rows))
	}
	if *ablation != "" {
		rows, err := bench.RunAblation(*ablation)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatAblation(rows))
	}
	if *jsonOut != "" {
		if err := bench.WriteJSON(*jsonOut, *workers); err != nil {
			fatal(err)
		}
	}
	if *scalingOut != "" {
		if err := bench.WriteWorkerScalingJSON(*scalingOut, []int{1, 2, 4, 8}); err != nil {
			fatal(err)
		}
	}
	if *editOut != "" {
		if err := bench.WriteIncrementalJSON(*editOut); err != nil {
			fatal(err)
		}
	}
	if *demandOut != "" {
		if err := bench.WriteDemandJSON(*demandOut); err != nil {
			fatal(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
	os.Exit(1)
}
