// Command ptabench regenerates the paper's Table 2 (benchmark and
// analysis measurements), the §7 invocation-graph comparison, and the
// PTF reuse-policy ablation over the embedded benchmark suite.
//
// Usage:
//
//	ptabench [-table2] [-invoke] [-ablation benchmark]
package main

import (
	"flag"
	"fmt"
	"os"

	"wlpa/internal/bench"
)

func main() {
	var (
		table2   = flag.Bool("table2", true, "run the Table 2 harness")
		invokeC  = flag.Bool("invoke", true, "run the invocation-graph comparison")
		ablation = flag.String("ablation", "eqntott", "benchmark for the reuse-policy ablation (empty to skip)")
	)
	flag.Parse()
	if *table2 {
		rows, err := bench.RunTable2()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if *invokeC {
		rows, err := bench.RunInvokeComparison([]string{"compiler", "eqntott", "simulator"}, 1_000_000)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatInvoke(rows))
	}
	if *ablation != "" {
		rows, err := bench.RunAblation(*ablation)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatAblation(rows))
	}
}
