// Command wlpad is the long-lived analysis daemon: an HTTP/JSON service
// answering Wilson–Lam pointer-analysis requests out of a
// content-addressed cache, running the worklist engine only on misses.
// wlpa and wlcheck talk to it via their -remote flag; see OPERATIONS.md
// for the endpoint reference and cache semantics.
//
// Usage:
//
//	wlpad serve [-addr :8372] [-cache-dir DIR] [-mem-budget BYTES]
//	            [-timeout DUR] [-max-inflight N] [-baseline-cap N]
//	            [-workers N] [-policy ptf|emami|single] [-max-ptfs N]
//	            [-combine-offsets] [-log json|text]
//
// The process serves until SIGINT/SIGTERM, then shuts down gracefully
// (in-flight requests get a drain window). An empty -cache-dir keeps
// the cache in memory only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wlpa/internal/server"
	"wlpa/internal/store"
	"wlpa/pta"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "serve" {
		fmt.Fprintln(os.Stderr, "usage: wlpad serve [flags]")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("wlpad serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8372", "listen address")
		cacheDir    = fs.String("cache-dir", "", "on-disk cache directory (empty = memory-only)")
		memBudget   = fs.Int64("mem-budget", store.DefaultMemBudget, "in-memory cache budget in bytes")
		timeout     = fs.Duration("timeout", 2*time.Minute, "per-request analysis wall-clock budget")
		maxInflight = fs.Int("max-inflight", 2, "concurrent engine runs (cache hits are not throttled)")
		baselineCap = fs.Int("baseline-cap", 8, "warm-edit baselines held for incremental grafting (each pins a converged analysis)")
		workers     = fs.Int("workers", 0, "worker-pool size per analysis (0 = GOMAXPROCS; results identical)")
		policy      = fs.String("policy", "ptf", "summarization policy: ptf, emami, or single")
		maxPTFs     = fs.Int("max-ptfs", 0, "cap PTFs per procedure (0 = unlimited)")
		combine     = fs.Bool("combine-offsets", false, "combine PTFs differing only in offsets/strides (paper §7)")
		logFormat   = fs.String("log", "text", "request log format: text or json")
	)
	fs.Parse(os.Args[2:])

	opts := pta.Options{
		MaxPTFs:        *maxPTFs,
		CombineOffsets: *combine,
		Workers:        *workers,
		Timeout:        *timeout,
	}
	switch *policy {
	case "ptf":
		opts.Policy = pta.PartialTransferFunctions
	case "emami":
		opts.Policy = pta.ReanalyzeEveryContext
	case "single":
		opts.Policy = pta.OneSummary
	default:
		fmt.Fprintf(os.Stderr, "wlpad: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "wlpad: unknown -log %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	st, err := store.Open(*cacheDir, *memBudget)
	if err != nil {
		log.Error("opening store", "err", err)
		os.Exit(1)
	}
	srv, err := server.New(server.Config{
		Store:       st,
		Options:     opts,
		MaxInflight: *maxInflight,
		BaselineCap: *baselineCap,
		Logger:      log,
	})
	if err != nil {
		log.Error("configuring server", "err", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		// Responses must outlast the analysis budget.
		WriteTimeout: *timeout + 30*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("wlpad serving", "addr", *addr, "cache_dir", *cacheDir, "policy", *policy, "timeout", timeout.String())

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Warn("forced shutdown", "err", err)
		}
	}
	stats := st.Stats()
	log.Info("final cache stats",
		"hits", stats.Hits(), "misses", stats.Misses, "puts", stats.Puts,
		"evictions", stats.Evictions, "corrupt", stats.Corrupt)
}
