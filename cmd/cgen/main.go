// Command cgen emits a random well-defined pointer-heavy C program from
// the workload generator (the same generator the soundness property
// tests use). Useful for fuzzing the analysis from the command line.
//
// Usage:
//
//	cgen [-seed N] [-funcs N] [-stmts N] > prog.c
package main

import (
	"flag"
	"fmt"

	"wlpa/internal/workload"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "generator seed")
		funcs = flag.Int("funcs", 4, "number of generated functions")
		stmts = flag.Int("stmts", 8, "statements per function")
	)
	flag.Parse()
	cfg := workload.DefaultGenConfig(*seed)
	cfg.NumFuncs = *funcs
	cfg.StmtsPerFunc = *stmts
	fmt.Print(workload.Generate(cfg))
}
