// Command cgen emits a random well-defined pointer-heavy C program from
// the workload generator (the same generator the differential fuzzing
// harness uses), and can run the full oracle lattice over it or reduce
// a failing program from the command line.
//
// Usage:
//
//	cgen [-seed N] [-funcs N] [-stmts N] > prog.c
//	cgen -features heap,multiptr,free -seed 7 > prog.c
//	cgen -features all -seed 7 -check
//	cgen -fanout 16 -fandepth 2 > fanout.c
//	cgen -edit addstore -seed 7 > edited.c
//	cgen -edit bodytweak -seed 7 -check
//	cgen -minimize prog.c
//
// -fanout emits the deterministic wide fan-out call-graph shape the
// worker-scaling benchmark measures (breadth independent callee cones,
// each -fandepth calls deep); it composes with -check but ignores the
// random-generator flags.
//
// -edit KIND applies one structured edit (bodytweak, addstore,
// removestore, newcallee, deleteproc) to the generated program and
// prints the edited side; rerun without -edit for the base. With
// -fanout only bodytweak is supported (a seed-chosen statement column
// shift). Combined with -check it runs the incremental edit oracle
// instead: the edited program is re-analyzed against the base's
// converged result and the outcome is pinned bit-identical to a cold
// analysis.
//
// -check runs the differential oracle (engine equivalence, checker
// cleanliness, interpreter soundness, baseline lattice) over the
// generated program and exits non-zero on a property violation.
// -minimize reads a failing program from a file, shrinks it with the
// statement-level delta-debugging reducer while the same failure stage
// reproduces, and prints the reduced program.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wlpa/internal/difftest"
	"wlpa/internal/workload"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "generator seed")
		funcs    = flag.Int("funcs", 4, "number of generated functions")
		stmts    = flag.Int("stmts", 8, "statements per function")
		features = flag.String("features", "", "comma-separated generator features (or \"all\"); empty selects the legacy default set")
		fanout   = flag.Int("fanout", 0, "emit a deterministic fan-out call-graph shape with this breadth instead of a random program")
		fandepth = flag.Int("fandepth", 1, "callee-chain depth of each fan-out cone (with -fanout)")
		edit     = flag.String("edit", "", "apply a structured edit of this kind and print the edited program; with -check, run the incremental edit oracle over the (base, edited) pair")
		check    = flag.Bool("check", false, "run the differential oracle over the generated program instead of printing it")
		minimize = flag.String("minimize", "", "reduce the failing program in this file and print the result")
	)
	flag.Parse()

	if *minimize != "" {
		data, err := os.ReadFile(*minimize)
		if err != nil {
			fatal("%v", err)
		}
		src := string(data)
		orig := difftest.CheckProgram(*minimize, src, difftest.Options{})
		if orig == nil {
			fatal("%s passes the oracle; nothing to minimize", *minimize)
		}
		fl, ok := orig.(*difftest.Failure)
		if !ok {
			fatal("unexpected error: %v", orig)
		}
		fmt.Fprintf(os.Stderr, "minimizing %s failure: %s\n", fl.Stage, fl.Detail)
		reduced, path := difftest.ReduceFailure(fl, difftest.Options{})
		if path != "" {
			fmt.Fprintf(os.Stderr, "reproducer stored at %s\n", path)
		}
		fmt.Print(reduced)
		return
	}

	if *fanout > 0 {
		name := fmt.Sprintf("fanout(%dx%d)", *fanout, *fandepth)
		src := workload.FanOut(*fanout, *fandepth)
		if *edit != "" {
			if *edit != "bodytweak" {
				fatal("-fanout supports only -edit bodytweak, not %q", *edit)
			}
			edited, ok := workload.TweakNthStatement(src, int(*seed))
			if !ok {
				fatal("fan-out shape has no tweakable statement")
			}
			emitEditPair(name+"+tweak", src, edited, *check)
			return
		}
		if !*check {
			fmt.Print(src)
			return
		}
		if err := difftest.CheckProgram(name, src, difftest.Options{}); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%s: all oracle properties hold\n", name)
		return
	}

	if *edit != "" {
		kind, ok := workload.EditKindByName(*edit)
		if !ok {
			var names []string
			for k := 0; k < workload.NumEditKinds(); k++ {
				names = append(names, workload.EditKind(k).String())
			}
			fatal("unknown edit kind %q (have: %s)", *edit, strings.Join(names, ", "))
		}
		feat := uint32(workload.AllFeatures())
		if *features != "" {
			f, err := parseFeatures(*features)
			if err != nil {
				fatal("%v", err)
			}
			feat = uint32(f)
		}
		pair, ok := workload.GenerateEditPair(*seed, feat, kind)
		if !ok {
			fatal("edit anchor missing for seed=%d kind=%s", *seed, kind)
		}
		emitEditPair(pair.Name, pair.Base, pair.Edited, *check)
		return
	}

	cfg := workload.DefaultGenConfig(*seed)
	cfg.NumFuncs = *funcs
	cfg.StmtsPerFunc = *stmts
	name := fmt.Sprintf("cgen(seed=%d)", *seed)
	if *features != "" {
		feat, err := parseFeatures(*features)
		if err != nil {
			fatal("%v", err)
		}
		cfg = workload.FuzzGenConfig(*seed, uint32(feat))
		cfg.NumFuncs = *funcs
		cfg.StmtsPerFunc = *stmts
		name = fmt.Sprintf("cgen(seed=%d,feat=%s)", *seed, cfg.Features)
	}
	src := workload.Generate(cfg)
	if !*check {
		fmt.Print(src)
		return
	}
	if err := difftest.CheckProgram(name, src, difftest.Options{}); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%s: all oracle properties hold\n", name)
}

// emitEditPair prints the edited side of an incremental pair, or — with
// -check — runs the incremental edit oracle over it.
func emitEditPair(name, base, edited string, check bool) {
	if !check {
		fmt.Print(edited)
		return
	}
	if err := difftest.CheckIncremental(name, base, edited, difftest.Options{}); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%s: incremental re-analysis is bit-identical to cold\n", name)
}

func parseFeatures(s string) (workload.Feature, error) {
	if s == "all" {
		return workload.AllFeatures(), nil
	}
	var out workload.Feature
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		found := false
		for bit := 0; bit < workload.NumFeatures(); bit++ {
			if workload.FeatureName(bit) == part {
				out |= workload.Feature(1) << bit
				found = true
				break
			}
		}
		if !found {
			var names []string
			for bit := 0; bit < workload.NumFeatures(); bit++ {
				names = append(names, workload.FeatureName(bit))
			}
			return 0, fmt.Errorf("unknown feature %q (have: %s, all)", part, strings.Join(names, ", "))
		}
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cgen: "+format+"\n", args...)
	os.Exit(1)
}
