// Command wlpa analyzes C source files with the Wilson–Lam context-
// sensitive pointer analysis and prints points-to sets, the resolved
// call graph, and analysis statistics.
//
// Usage:
//
//	wlpa [-pts] [-callgraph] [-stats] [-policy ptf|emami|single]
//	     [-remote host:port] file.c...
//
// With several files, the first is the entry translation unit and the
// rest are available for #include. With -remote the request is answered
// by a wlpad daemon (see cmd/wlpad); the daemon's analysis options
// apply, so -policy/-max-ptfs are rejected in that mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wlpa/internal/server"
	"wlpa/pta"
)

func main() {
	var (
		showPts  = flag.Bool("pts", true, "print points-to sets of global pointers")
		showCG   = flag.Bool("callgraph", false, "print the resolved call graph")
		showStat = flag.Bool("stats", false, "print analysis statistics")
		policy   = flag.String("policy", "ptf", "summarization policy: ptf, emami, or single")
		maxPTFs  = flag.Int("max-ptfs", 0, "cap PTFs per procedure (0 = unlimited)")
		remote   = flag.String("remote", "", "answer via a wlpad daemon at this address instead of analyzing in-process")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: wlpa [flags] file.c ...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	files := pta.Source{}
	entry := ""
	for i, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wlpa: %v\n", err)
			os.Exit(1)
		}
		name := filepath.Base(path)
		files[name] = string(data)
		if i == 0 {
			entry = name
		}
	}

	if *remote != "" {
		if *policy != "ptf" || *maxPTFs != 0 {
			fmt.Fprintln(os.Stderr, "wlpa: -policy/-max-ptfs are fixed by the daemon; drop them with -remote")
			os.Exit(2)
		}
		runRemote(*remote, files, entry, *showPts, *showCG, *showStat)
		return
	}

	opts := &pta.Options{MaxPTFs: *maxPTFs}
	switch *policy {
	case "ptf":
		opts.Policy = pta.PartialTransferFunctions
	case "emami":
		opts.Policy = pta.ReanalyzeEveryContext
	case "single":
		opts.Policy = pta.OneSummary
	default:
		fmt.Fprintf(os.Stderr, "wlpa: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	res, err := pta.Analyze(files, entry, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlpa: %v\n", err)
		os.Exit(1)
	}
	if *showPts {
		fmt.Print(res.Describe())
	}
	if *showCG {
		printCallGraph(res.CallGraph())
	}
	if *showStat {
		st := res.Stats()
		fmt.Printf("procedures: %d\n", st.Procedures)
		fmt.Printf("PTFs: %d (%.2f per procedure)\n", st.PTFs, st.AvgPTFs())
		fmt.Printf("extended parameters: %d\n", st.Params)
		fmt.Printf("frontend: %s, analysis: %s (%d passes)\n",
			res.ParseTime(), st.Duration, st.Passes)
	}
}

// runRemote answers the same queries from a daemon-served snapshot.
func runRemote(addr string, files pta.Source, entry string, showPts, showCG, showStat bool) {
	c := &server.Client{Base: addr}
	resp, snap, err := c.Analyze(context.Background(), files, entry, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlpa: %v\n", err)
		os.Exit(1)
	}
	if showPts {
		fmt.Print(snap.Describe())
	}
	if showCG {
		printCallGraph(snap.CallGraph())
	}
	if showStat {
		st := snap.Stats
		avg := 0.0
		if st.Procedures > 0 {
			avg = float64(st.PTFs) / float64(st.Procedures)
		}
		fmt.Printf("procedures: %d\n", st.Procedures)
		fmt.Printf("PTFs: %d (%.2f per procedure)\n", st.PTFs, avg)
		fmt.Printf("extended parameters: %d\n", st.Params)
		fmt.Printf("cache: %s (%.1fms total, key %s)\n",
			resp.Meta.Cache, resp.Meta.TotalMS, resp.Meta.Key[:12])
	}
}

func printCallGraph(edges []pta.CallEdge) {
	fmt.Println("call graph:")
	for _, e := range edges {
		fmt.Printf("  %s -> %s (%s)\n", e.Caller, e.Callee, e.Pos)
	}
}
