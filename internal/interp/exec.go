package interp

import (
	"wlpa/internal/cast"
	"wlpa/internal/ctok"
	"wlpa/internal/ctype"
)

// execStmt executes a statement and reports how control left it.
func (in *Interp) execStmt(s cast.Stmt, fr *frame) flow {
	in.tick(s.Position(), 1)
	switch s := s.(type) {
	case *cast.BlockStmt:
		return in.execBlock(s, fr, "")
	case *cast.EmptyStmt:
		return flowNone
	case *cast.ExprStmt:
		in.evalExpr(s.X, fr)
		return flowNone
	case *cast.IfStmt:
		if in.evalExpr(s.Cond, fr).Truthy() {
			return in.execStmt(s.Then, fr)
		}
		if s.Else != nil {
			return in.execStmt(s.Else, fr)
		}
		return flowNone
	case *cast.WhileStmt:
		return in.profiled(s.Pos, func() flow {
			for in.evalExpr(s.Cond, fr).Truthy() {
				in.countIteration(s.Pos)
				fl := in.execStmt(s.Body, fr)
				switch fl.c {
				case ctrlBreak:
					return flowNone
				case ctrlReturn, ctrlGoto:
					return fl
				}
			}
			return flowNone
		})
	case *cast.DoWhileStmt:
		return in.profiled(s.Pos, func() flow {
			for {
				in.countIteration(s.Pos)
				fl := in.execStmt(s.Body, fr)
				switch fl.c {
				case ctrlBreak:
					return flowNone
				case ctrlReturn, ctrlGoto:
					return fl
				}
				if !in.evalExpr(s.Cond, fr).Truthy() {
					return flowNone
				}
			}
		})
	case *cast.ForStmt:
		return in.profiled(s.Pos, func() flow {
			if s.Init != nil {
				in.evalExpr(s.Init, fr)
			}
			for s.Cond == nil || in.evalExpr(s.Cond, fr).Truthy() {
				in.countIteration(s.Pos)
				fl := in.execStmt(s.Body, fr)
				switch fl.c {
				case ctrlBreak:
					return flowNone
				case ctrlReturn, ctrlGoto:
					return fl
				}
				if s.Post != nil {
					in.evalExpr(s.Post, fr)
				}
			}
			return flowNone
		})
	case *cast.SwitchStmt:
		return in.execSwitch(s, fr)
	case *cast.CaseStmt:
		// Reached linearly (fallthrough): just run the body.
		return in.execStmt(s.Body, fr)
	case *cast.BreakStmt:
		return flow{c: ctrlBreak}
	case *cast.ContinueStmt:
		return flow{c: ctrlContinue}
	case *cast.ReturnStmt:
		if s.X != nil {
			v := in.evalExpr(s.X, fr)
			fr.ret = in.convert(v, fr.fn.Type.Ret)
		}
		fr.hasRet = true
		return flow{c: ctrlReturn}
	case *cast.GotoStmt:
		return flow{c: ctrlGoto, label: s.Label}
	case *cast.LabelStmt:
		return in.execStmt(s.Body, fr)
	}
	in.errorf(s.Position(), "unhandled statement %T", s)
	return flowNone
}

// execBlock runs a block, handling local declarations and resolving
// gotos whose labels appear at this block's top level.
func (in *Interp) execBlock(b *cast.BlockStmt, fr *frame, startLabel string) flow {
	i := 0
	if startLabel != "" {
		idx := labelIndex(b, startLabel)
		if idx < 0 {
			return flow{c: ctrlGoto, label: startLabel}
		}
		i = idx
	}
	for ; i < len(b.Items); i++ {
		item := b.Items[i]
		if item.Decl != nil {
			in.execLocalDecl(item.Decl, fr)
			continue
		}
		fl := in.execStmt(item.Stmt, fr)
		if fl.c == ctrlGoto {
			if idx := labelIndex(b, fl.label); idx >= 0 {
				i = idx - 1
				continue
			}
			return fl
		}
		if fl.c != ctrlNone {
			return fl
		}
	}
	return flowNone
}

// labelIndex finds the item whose statement is (or wraps) the label.
func labelIndex(b *cast.BlockStmt, label string) int {
	for i, item := range b.Items {
		s := item.Stmt
		for {
			ls, ok := s.(*cast.LabelStmt)
			if !ok {
				break
			}
			if ls.Name == label {
				return i
			}
			s = ls.Body
		}
	}
	return -1
}

func (in *Interp) execLocalDecl(d cast.Decl, fr *frame) {
	vd, ok := d.(*cast.VarDecl)
	if !ok || vd.Sym == nil {
		return
	}
	sym := vd.Sym
	if sym.Global {
		// Function-scoped static: shared object, initialized once at
		// startup.
		return
	}
	if sym.Kind == cast.SymFunc {
		return
	}
	obj := newObject(LocalObj, sym.Name, sym.Type.Sizeof())
	obj.Sym = sym
	fr.locals[sym] = obj
	if vd.Init != nil {
		in.initObject(obj, 0, sym.Type, vd.Init, fr)
	}
}

func (in *Interp) execSwitch(s *cast.SwitchStmt, fr *frame) flow {
	tag := in.evalExpr(s.Tag, fr).AsInt()
	body, ok := s.Body.(*cast.BlockStmt)
	if !ok {
		// Degenerate switch with a single statement body.
		if cs, isCase := s.Body.(*cast.CaseStmt); isCase {
			if cs.IsDefault || in.evalExpr(cs.Value, fr).AsInt() == tag {
				fl := in.execStmt(cs.Body, fr)
				if fl.c == ctrlBreak {
					return flowNone
				}
				return fl
			}
		}
		return flowNone
	}
	// Find the matching case (or default) among the items.
	start := -1
	defaultIdx := -1
	for i, item := range body.Items {
		cs, isCase := item.Stmt.(*cast.CaseStmt)
		if !isCase {
			continue
		}
		if cs.IsDefault {
			if defaultIdx < 0 {
				defaultIdx = i
			}
			continue
		}
		// A case may begin a chain: case 1: case 2: stmt.
		if in.matchCase(cs, tag, fr) && start < 0 {
			start = i
		}
	}
	if start < 0 {
		start = defaultIdx
	}
	if start < 0 {
		return flowNone
	}
	for i := start; i < len(body.Items); i++ {
		item := body.Items[i]
		if item.Decl != nil {
			in.execLocalDecl(item.Decl, fr)
			continue
		}
		fl := in.execStmt(item.Stmt, fr)
		switch fl.c {
		case ctrlBreak:
			return flowNone
		case ctrlNone:
		case ctrlGoto:
			if idx := labelIndex(body, fl.label); idx >= 0 {
				i = idx - 1
				continue
			}
			return fl
		default:
			return fl
		}
	}
	return flowNone
}

// matchCase checks a (possibly chained) case label against the tag.
func (in *Interp) matchCase(cs *cast.CaseStmt, tag int64, fr *frame) bool {
	for {
		if cs.IsDefault {
			return false
		}
		if in.evalExpr(cs.Value, fr).AsInt() == tag {
			return true
		}
		inner, ok := cs.Body.(*cast.CaseStmt)
		if !ok {
			return false
		}
		cs = inner
	}
}

// ---- loop profiling ----

func (in *Interp) profiled(pos ctok.Pos, body func() flow) flow {
	if in.loops == nil {
		return body()
	}
	key := pos.String()
	st, ok := in.loops[key]
	if !ok {
		st = &LoopStat{Pos: pos}
		in.loops[key] = st
	}
	st.Invocations++
	before := in.steps
	fl := body()
	st.Cost += in.steps - before
	return fl
}

func (in *Interp) countIteration(pos ctok.Pos) {
	if in.loops == nil {
		return
	}
	if st, ok := in.loops[pos.String()]; ok {
		st.Iterations++
	}
}

// ---- expressions ----

// evalLValue computes the address of an lvalue expression.
func (in *Interp) evalLValue(e cast.Expr, fr *frame) Pointer {
	switch e := e.(type) {
	case *cast.Ident:
		sym := e.Sym
		if sym == nil {
			in.errorf(e.Pos, "unresolved identifier %s", e.Name)
		}
		switch {
		case sym.Kind == cast.SymFunc:
			return Pointer{Obj: in.funcObj(sym)}
		case sym.Global:
			return Pointer{Obj: in.globalObj(sym)}
		default:
			obj, ok := fr.locals[sym]
			if !ok {
				// Block-scoped declaration not yet executed (e.g.
				// jumped over); materialize it.
				obj = newObject(LocalObj, sym.Name, sym.Type.Sizeof())
				obj.Sym = sym
				fr.locals[sym] = obj
			}
			return Pointer{Obj: obj}
		}
	case *cast.Unary:
		if e.Op == cast.Deref {
			v := in.evalExpr(e.X, fr)
			if v.Kind != VPtr {
				in.errorf(e.Pos, "dereference of non-pointer value %v", v)
			}
			return v.Ptr
		}
	case *cast.Index:
		base := in.evalExpr(e.X, fr)
		idx := in.evalExpr(e.I, fr).AsInt()
		esz := e.TypeOf().Sizeof()
		if esz <= 0 {
			esz = 1
		}
		if base.Kind != VPtr {
			in.errorf(e.Pos, "indexing non-pointer")
		}
		p := base.Ptr
		p.Off += idx * esz
		return p
	case *cast.Member:
		var p Pointer
		if e.Arrow {
			v := in.evalExpr(e.X, fr)
			if v.Kind != VPtr {
				in.errorf(e.Pos, "-> on non-pointer")
			}
			p = v.Ptr
		} else {
			p = in.evalLValue(e.X, fr)
		}
		if e.Field != nil {
			p.Off += e.Field.Offset
		}
		return p
	case *cast.StrLit:
		return Pointer{Obj: in.strObj(e)}
	case *cast.Cast:
		return in.evalLValue(e.X, fr)
	case *cast.Comma:
		in.evalExpr(e.L, fr)
		return in.evalLValue(e.R, fr)
	case *cast.Cond:
		if in.evalExpr(e.C, fr).Truthy() {
			return in.evalLValue(e.T, fr)
		}
		return in.evalLValue(e.F, fr)
	}
	in.errorf(e.Position(), "expression %T is not an lvalue", e)
	return Pointer{}
}

// evalExpr evaluates an expression to a value.
func (in *Interp) evalExpr(e cast.Expr, fr *frame) Value {
	in.tick(e.Position(), 1)
	switch e := e.(type) {
	case *cast.IntLit:
		return IntVal(e.Value)
	case *cast.FloatLit:
		return FloatVal(e.Value)
	case *cast.StrLit:
		return PtrVal(Pointer{Obj: in.strObj(e)})
	case *cast.Ident:
		sym := e.Sym
		if sym == nil {
			in.errorf(e.Pos, "unresolved identifier %s", e.Name)
		}
		if sym.Kind == cast.SymFunc {
			return PtrVal(Pointer{Obj: in.funcObj(sym)})
		}
		if sym.Type.Kind == ctype.Array {
			return PtrVal(in.evalLValue(e, fr))
		}
		return in.loadVal(e.Pos, in.evalLValue(e, fr))
	case *cast.Unary:
		return in.evalUnary(e, fr)
	case *cast.Binary:
		return in.evalBinary(e, fr)
	case *cast.Assign:
		return in.evalAssign(e, fr)
	case *cast.Cond:
		if in.evalExpr(e.C, fr).Truthy() {
			return in.evalExpr(e.T, fr)
		}
		return in.evalExpr(e.F, fr)
	case *cast.Call:
		return in.evalCall(e, fr)
	case *cast.Index, *cast.Member:
		p := in.evalLValue(e, fr)
		if t := e.TypeOf(); t.Kind == ctype.Array || t.Kind == ctype.Struct {
			return PtrVal(p)
		}
		return in.loadVal(e.Position(), p)
	case *cast.Cast:
		v := in.evalExpr(e.X, fr)
		return in.convert(v, e.To)
	case *cast.SizeofExpr:
		t := e.X.TypeOf()
		if t == nil {
			return IntVal(0)
		}
		return IntVal(t.Sizeof())
	case *cast.SizeofType:
		return IntVal(e.Of.Sizeof())
	case *cast.Comma:
		in.evalExpr(e.L, fr)
		return in.evalExpr(e.R, fr)
	}
	in.errorf(e.Position(), "unhandled expression %T", e)
	return Value{}
}

func (in *Interp) evalUnary(e *cast.Unary, fr *frame) Value {
	switch e.Op {
	case cast.Addr:
		return PtrVal(in.evalLValue(e.X, fr))
	case cast.Deref:
		v := in.evalExpr(e.X, fr)
		if v.Kind != VPtr {
			in.errorf(e.Pos, "dereference of non-pointer")
		}
		t := e.TypeOf()
		if t.Kind == ctype.Array || t.Kind == ctype.Func || t.Kind == ctype.Struct {
			return v
		}
		return in.loadVal(e.Pos, v.Ptr)
	case cast.Neg:
		v := in.evalExpr(e.X, fr)
		if v.Kind == VFloat {
			return FloatVal(-v.Float)
		}
		return IntVal(-v.AsInt())
	case cast.Plus:
		return in.evalExpr(e.X, fr)
	case cast.BitNot:
		return IntVal(^in.evalExpr(e.X, fr).AsInt())
	case cast.LogNot:
		if in.evalExpr(e.X, fr).Truthy() {
			return IntVal(0)
		}
		return IntVal(1)
	case cast.PreInc, cast.PreDec, cast.PostInc, cast.PostDec:
		p := in.evalLValue(e.X, fr)
		old := in.loadVal(e.Pos, p)
		delta := int64(1)
		if e.Op == cast.PreDec || e.Op == cast.PostDec {
			delta = -1
		}
		var nv Value
		t := e.X.TypeOf().Decay()
		switch {
		case t.Kind == ctype.Pointer:
			esz := t.Elem.Sizeof()
			if esz <= 0 {
				esz = 1
			}
			if old.Kind != VPtr {
				old = NullPtr()
			}
			np := old.Ptr
			np.Off += delta * esz
			nv = PtrVal(np)
		case old.Kind == VFloat:
			nv = FloatVal(old.Float + float64(delta))
		default:
			nv = IntVal(old.AsInt() + delta)
		}
		in.storeVal(e.Pos, p, in.convert(nv, t))
		if e.Op == cast.PostInc || e.Op == cast.PostDec {
			return old
		}
		return nv
	}
	in.errorf(e.Pos, "unhandled unary %v", e.Op)
	return Value{}
}

func (in *Interp) evalBinary(e *cast.Binary, fr *frame) Value {
	switch e.Op {
	case cast.LogAnd:
		if !in.evalExpr(e.L, fr).Truthy() {
			return IntVal(0)
		}
		if in.evalExpr(e.R, fr).Truthy() {
			return IntVal(1)
		}
		return IntVal(0)
	case cast.LogOr:
		if in.evalExpr(e.L, fr).Truthy() {
			return IntVal(1)
		}
		if in.evalExpr(e.R, fr).Truthy() {
			return IntVal(1)
		}
		return IntVal(0)
	}
	l := in.evalExpr(e.L, fr)
	r := in.evalExpr(e.R, fr)
	return in.applyBinary(e, e.Op, l, r, e.L.TypeOf(), e.R.TypeOf())
}

func (in *Interp) applyBinary(e cast.Expr, op cast.BinaryOp, l, r Value, lt, rt *ctype.Type) Value {
	ld, rd := lt.Decay(), rt.Decay()
	// Pointer arithmetic and comparisons.
	if l.Kind == VPtr || r.Kind == VPtr {
		switch op {
		case cast.Add, cast.Sub:
			if l.Kind == VPtr && r.Kind == VPtr {
				if op == cast.Sub {
					esz := int64(1)
					if ld.Kind == ctype.Pointer && ld.Elem.Sizeof() > 0 {
						esz = ld.Elem.Sizeof()
					}
					if l.Ptr.Obj != r.Ptr.Obj {
						in.errorf(e.Position(), "pointer difference across objects")
					}
					return IntVal((l.Ptr.Off - r.Ptr.Off) / esz)
				}
				in.errorf(e.Position(), "pointer + pointer")
			}
			ptr, intv, pt := l, r, ld
			if r.Kind == VPtr {
				ptr, intv, pt = r, l, rd
			}
			esz := int64(1)
			if pt.Kind == ctype.Pointer && pt.Elem.Sizeof() > 0 {
				esz = pt.Elem.Sizeof()
			}
			if ptr.Ptr.Obj == nil {
				return ptr
			}
			np := ptr.Ptr
			d := intv.AsInt() * esz
			if op == cast.Sub {
				d = -d
			}
			np.Off += d
			return PtrVal(np)
		case cast.Eq, cast.Ne, cast.Lt, cast.Gt, cast.Le, cast.Ge:
			return in.comparePointers(e, op, l, r)
		}
		// Bitwise/other arithmetic on a pointer: degrade to int 1/0.
		l = IntVal(l.AsInt())
		r = IntVal(r.AsInt())
	}
	if l.Kind == VFloat || r.Kind == VFloat {
		a, b := l.AsFloat(), r.AsFloat()
		switch op {
		case cast.Add:
			return FloatVal(a + b)
		case cast.Sub:
			return FloatVal(a - b)
		case cast.Mul:
			return FloatVal(a * b)
		case cast.Div:
			if b == 0 {
				in.errorf(e.Position(), "float division by zero")
			}
			return FloatVal(a / b)
		case cast.Lt:
			return boolVal(a < b)
		case cast.Gt:
			return boolVal(a > b)
		case cast.Le:
			return boolVal(a <= b)
		case cast.Ge:
			return boolVal(a >= b)
		case cast.Eq:
			return boolVal(a == b)
		case cast.Ne:
			return boolVal(a != b)
		}
		in.errorf(e.Position(), "bad float operation %v", op)
	}
	a, b := l.AsInt(), r.AsInt()
	switch op {
	case cast.Add:
		return IntVal(a + b)
	case cast.Sub:
		return IntVal(a - b)
	case cast.Mul:
		return IntVal(a * b)
	case cast.Div:
		if b == 0 {
			in.errorf(e.Position(), "division by zero")
		}
		return IntVal(a / b)
	case cast.Rem:
		if b == 0 {
			in.errorf(e.Position(), "modulo by zero")
		}
		return IntVal(a % b)
	case cast.And:
		return IntVal(a & b)
	case cast.Or:
		return IntVal(a | b)
	case cast.Xor:
		return IntVal(a ^ b)
	case cast.Shl:
		return IntVal(a << uint(b&63))
	case cast.Shr:
		return IntVal(a >> uint(b&63))
	case cast.Lt:
		return boolVal(a < b)
	case cast.Gt:
		return boolVal(a > b)
	case cast.Le:
		return boolVal(a <= b)
	case cast.Ge:
		return boolVal(a >= b)
	case cast.Eq:
		return boolVal(a == b)
	case cast.Ne:
		return boolVal(a != b)
	}
	in.errorf(e.Position(), "unhandled binary %v", op)
	return Value{}
}

func (in *Interp) comparePointers(e cast.Expr, op cast.BinaryOp, l, r Value) Value {
	lp, rp := l.Ptr, r.Ptr
	if l.Kind != VPtr {
		lp = Pointer{}
	}
	if r.Kind != VPtr {
		rp = Pointer{}
	}
	switch op {
	case cast.Eq:
		return boolVal(lp == rp)
	case cast.Ne:
		return boolVal(lp != rp)
	default:
		if lp.Obj != rp.Obj {
			in.errorf(e.Position(), "relational comparison across objects")
		}
		a, b := lp.Off, rp.Off
		switch op {
		case cast.Lt:
			return boolVal(a < b)
		case cast.Gt:
			return boolVal(a > b)
		case cast.Le:
			return boolVal(a <= b)
		case cast.Ge:
			return boolVal(a >= b)
		}
	}
	return IntVal(0)
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func (in *Interp) evalAssign(e *cast.Assign, fr *frame) Value {
	lt := e.L.TypeOf()
	if e.Op == cast.SimpleAssign {
		if lt.Kind == ctype.Struct {
			src := in.evalLValue(e.R, fr)
			dst := in.evalLValue(e.L, fr)
			in.copyBytes(dst, src, lt.Sizeof())
			return PtrVal(dst)
		}
		v := in.evalExpr(e.R, fr)
		p := in.evalLValue(e.L, fr)
		cv := in.convert(v, lt.Decay())
		in.storeVal(e.Pos, p, cv)
		return cv
	}
	// Compound assignment.
	p := in.evalLValue(e.L, fr)
	old := in.loadVal(e.Pos, p)
	r := in.evalExpr(e.R, fr)
	nv := in.applyBinary(e, e.Op, old, r, lt, e.R.TypeOf())
	cv := in.convert(nv, lt.Decay())
	in.storeVal(e.Pos, p, cv)
	return cv
}

func (in *Interp) evalCall(e *cast.Call, fr *frame) Value {
	// Resolve the target.
	var fn *cast.FuncDecl
	var name string
	switch f := e.Fun.(type) {
	case *cast.Ident:
		if f.Sym != nil && f.Sym.Kind == cast.SymFunc {
			name = f.Sym.Name
			fn = in.prog.FuncByName[name]
		}
	}
	if name == "" {
		v := in.evalExpr(e.Fun, fr)
		if v.Kind != VPtr || v.Ptr.Obj == nil || v.Ptr.Obj.Kind != FuncObj {
			in.errorf(e.Pos, "call through non-function pointer")
		}
		name = v.Ptr.Obj.Name
		fn = v.Ptr.Obj.Func
		if fn == nil {
			fn = in.prog.FuncByName[name]
		}
	}
	// Evaluate arguments left to right.
	args := make([]Value, len(e.Args))
	for i, aexpr := range e.Args {
		args[i] = in.evalExpr(aexpr, fr)
	}
	if fn != nil && fn.Body != nil {
		return in.call(fn, args, e.Pos)
	}
	return in.builtin(e, name, args, fr)
}
