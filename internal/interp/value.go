package interp

import (
	"fmt"

	"wlpa/internal/cast"
)

// ObjKind classifies runtime memory objects.
type ObjKind int

const (
	GlobalObj ObjKind = iota
	LocalObj
	HeapObj
	StringObj
	FuncObj
	FileObj
)

// Object is a runtime memory object (the concrete counterpart of a
// memmod.Block).
type Object struct {
	Kind ObjKind
	Name string // matches the analysis' block naming
	Sym  *cast.Symbol
	Size int64
	Func *cast.FuncDecl // FuncObj

	// Data stores scalar values at byte offsets (sparse).
	Data map[int64]Value

	Freed bool
}

func (o *Object) String() string { return o.Name }

func newObject(kind ObjKind, name string, size int64) *Object {
	return &Object{Kind: kind, Name: name, Size: size, Data: make(map[int64]Value)}
}

// Pointer is a concrete pointer value.
type Pointer struct {
	Obj *Object
	Off int64
}

// IsNil reports whether the pointer is null.
func (p Pointer) IsNil() bool { return p.Obj == nil }

func (p Pointer) String() string {
	if p.Obj == nil {
		return "NULL"
	}
	return fmt.Sprintf("&%s+%d", p.Obj.Name, p.Off)
}

// ValueKind classifies runtime values.
type ValueKind int

const (
	VUndef ValueKind = iota
	VInt
	VFloat
	VPtr
)

// Value is a runtime scalar value.
type Value struct {
	Kind  ValueKind
	Int   int64
	Float float64
	Ptr   Pointer
}

// IntVal constructs an integer value.
func IntVal(v int64) Value { return Value{Kind: VInt, Int: v} }

// FloatVal constructs a floating value.
func FloatVal(v float64) Value { return Value{Kind: VFloat, Float: v} }

// PtrVal constructs a pointer value.
func PtrVal(p Pointer) Value { return Value{Kind: VPtr, Ptr: p} }

// NullPtr is the null pointer value.
func NullPtr() Value { return Value{Kind: VPtr} }

// AsInt coerces the value to an integer.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case VInt:
		return v.Int
	case VFloat:
		return int64(v.Float)
	case VPtr:
		if v.Ptr.Obj == nil {
			return 0
		}
		return 1 // non-null pointers are truthy; numeric value unmodeled
	}
	return 0
}

// AsFloat coerces the value to a float.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case VFloat:
		return v.Float
	case VInt:
		return float64(v.Int)
	}
	return 0
}

// Truthy reports whether the value is non-zero.
func (v Value) Truthy() bool {
	switch v.Kind {
	case VInt:
		return v.Int != 0
	case VFloat:
		return v.Float != 0
	case VPtr:
		return v.Ptr.Obj != nil
	}
	return false
}

func (v Value) String() string {
	switch v.Kind {
	case VInt:
		return fmt.Sprintf("%d", v.Int)
	case VFloat:
		return fmt.Sprintf("%g", v.Float)
	case VPtr:
		return v.Ptr.String()
	}
	return "<undef>"
}

// store writes a scalar at a byte offset.
func (o *Object) store(off int64, v Value) {
	o.Data[off] = v
}

// load reads the scalar at a byte offset; undefined reads yield zero.
func (o *Object) load(off int64) Value {
	if v, ok := o.Data[off]; ok {
		return v
	}
	return IntVal(0)
}
