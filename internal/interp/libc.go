package interp

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"wlpa/internal/cast"
	"wlpa/internal/ctok"
)

// readCString reads a NUL-terminated string through a pointer.
func (in *Interp) readCString(e cast.Expr, p Pointer) string {
	if p.Obj == nil {
		in.errorf(e.Position(), "readCString: null pointer")
	}
	var sb strings.Builder
	for off := p.Off; ; off++ {
		in.tick(e.Position(), 1)
		c := p.Obj.load(off).AsInt()
		if c == 0 {
			return sb.String()
		}
		sb.WriteByte(byte(c))
		if sb.Len() > 1<<20 {
			in.errorf(e.Position(), "unterminated string")
		}
	}
}

func (in *Interp) writeCString(p Pointer, s string) {
	for i := 0; i < len(s); i++ {
		in.storeVal(ctok.Pos{}, Pointer{Obj: p.Obj, Off: p.Off + int64(i)}, IntVal(int64(s[i])))
	}
	p.Obj.store(p.Off+int64(len(s)), IntVal(0))
}

func (in *Interp) ptrArg(e *cast.Call, args []Value, i int) Pointer {
	if i >= len(args) {
		in.errorf(e.Pos, "missing argument %d", i)
	}
	v := args[i]
	if v.Kind == VInt && v.Int == 0 {
		return Pointer{}
	}
	if v.Kind != VPtr {
		in.errorf(e.Pos, "argument %d is not a pointer", i)
	}
	return v.Ptr
}

func (in *Interp) rand() int64 {
	in.randSt = in.randSt*6364136223846793005 + 1442695040888963407
	return int64(in.randSt>>33) & 0x7fffffff
}

// builtin dispatches a library-function call.
func (in *Interp) builtin(e *cast.Call, name string, args []Value, fr *frame) Value {
	in.tick(e.Pos, 2)
	switch name {
	// ---- allocation ----
	case "malloc":
		return PtrVal(Pointer{Obj: in.heapObj(e.Pos, args[0].AsInt())})
	case "calloc":
		return PtrVal(Pointer{Obj: in.heapObj(e.Pos, args[0].AsInt()*args[1].AsInt())})
	case "realloc":
		old := in.ptrArg(e, args, 0)
		size := args[1].AsInt()
		nb := in.heapObj(e.Pos, size)
		if old.Obj != nil {
			if old.Obj.Freed {
				in.errorf(e.Pos, "realloc of freed object %s", old.Obj.Name)
			}
			for off, v := range old.Obj.Data {
				nb.store(off, v)
				in.recordStore(Pointer{Obj: nb, Off: off}, v)
			}
			old.Obj.Freed = true
		}
		return PtrVal(Pointer{Obj: nb})
	case "free":
		p := in.ptrArg(e, args, 0)
		if p.Obj != nil {
			if p.Obj.Freed {
				in.errorf(e.Pos, "double free of object %s", p.Obj.Name)
			}
			p.Obj.Freed = true
		}
		return IntVal(0)
	case "exit":
		panic(exitSignal{code: int(args[0].AsInt())})
	case "abort":
		panic(exitSignal{code: 134})
	case "_assert_fail":
		in.errorf(e.Pos, "assertion failed")

	// ---- numeric ----
	case "atoi", "atol":
		s := in.readCString(e, in.ptrArg(e, args, 0))
		n, _ := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		return IntVal(n)
	case "atof":
		s := in.readCString(e, in.ptrArg(e, args, 0))
		f, _ := strconv.ParseFloat(strings.TrimSpace(s), 64)
		return FloatVal(f)
	case "abs", "labs":
		v := args[0].AsInt()
		if v < 0 {
			v = -v
		}
		return IntVal(v)
	case "rand":
		return IntVal(in.rand())
	case "srand":
		in.randSt = uint64(args[0].AsInt())*6364136223846793005 + 1
		return IntVal(0)
	case "getenv":
		return NullPtr()
	case "system":
		// No command is actually run; reading the string checks the
		// pointer the way a real call would.
		_ = in.readCString(e, in.ptrArg(e, args, 0))
		return IntVal(0)
	case "execl", "execlp", "execv", "execvp":
		// A successful exec never returns; the model always fails.
		_ = in.readCString(e, in.ptrArg(e, args, 0))
		return IntVal(-1)

	// ---- memory ----
	case "memcpy", "memmove":
		dst, src := in.ptrArg(e, args, 0), in.ptrArg(e, args, 1)
		in.copyBytes(dst, src, args[2].AsInt())
		return PtrVal(dst)
	case "memset":
		dst := in.ptrArg(e, args, 0)
		val := args[1].AsInt()
		n := args[2].AsInt()
		for i := int64(0); i < n; i++ {
			dst.Obj.store(dst.Off+i, IntVal(val&0xff))
		}
		in.tick(e.Pos, n/8)
		return PtrVal(dst)
	case "memcmp":
		a, b := in.ptrArg(e, args, 0), in.ptrArg(e, args, 1)
		n := args[2].AsInt()
		for i := int64(0); i < n; i++ {
			av := a.Obj.load(a.Off + i).AsInt()
			bv := b.Obj.load(b.Off + i).AsInt()
			if av != bv {
				return IntVal(av - bv)
			}
		}
		return IntVal(0)

	// ---- strings ----
	case "strcpy":
		dst, src := in.ptrArg(e, args, 0), in.ptrArg(e, args, 1)
		s := in.readCString(e, src)
		in.writeCString(dst, s)
		in.tick(e.Pos, int64(len(s))/4)
		return PtrVal(dst)
	case "strncpy":
		dst, src := in.ptrArg(e, args, 0), in.ptrArg(e, args, 1)
		n := args[2].AsInt()
		s := in.readCString(e, src)
		if int64(len(s)) > n {
			s = s[:n]
		}
		in.writeCString(dst, s)
		return PtrVal(dst)
	case "strcat":
		dst, src := in.ptrArg(e, args, 0), in.ptrArg(e, args, 1)
		d := in.readCString(e, dst)
		in.writeCString(Pointer{Obj: dst.Obj, Off: dst.Off + int64(len(d))}, in.readCString(e, src))
		return PtrVal(dst)
	case "strncat":
		dst, src := in.ptrArg(e, args, 0), in.ptrArg(e, args, 1)
		d := in.readCString(e, dst)
		s := in.readCString(e, src)
		if n := args[2].AsInt(); int64(len(s)) > n {
			s = s[:n]
		}
		in.writeCString(Pointer{Obj: dst.Obj, Off: dst.Off + int64(len(d))}, s)
		return PtrVal(dst)
	case "strcmp":
		a := in.readCString(e, in.ptrArg(e, args, 0))
		b := in.readCString(e, in.ptrArg(e, args, 1))
		return IntVal(int64(strings.Compare(a, b)))
	case "strncmp":
		a := in.readCString(e, in.ptrArg(e, args, 0))
		b := in.readCString(e, in.ptrArg(e, args, 1))
		n := int(args[2].AsInt())
		if len(a) > n {
			a = a[:n]
		}
		if len(b) > n {
			b = b[:n]
		}
		return IntVal(int64(strings.Compare(a, b)))
	case "strlen":
		s := in.readCString(e, in.ptrArg(e, args, 0))
		in.tick(e.Pos, int64(len(s))/8)
		return IntVal(int64(len(s)))
	case "strchr", "strrchr":
		p := in.ptrArg(e, args, 0)
		s := in.readCString(e, p)
		ch := byte(args[1].AsInt())
		idx := -1
		if name == "strchr" {
			idx = strings.IndexByte(s, ch)
		} else {
			idx = strings.LastIndexByte(s, ch)
		}
		if idx < 0 {
			if ch == 0 {
				return PtrVal(Pointer{Obj: p.Obj, Off: p.Off + int64(len(s))})
			}
			return NullPtr()
		}
		return PtrVal(Pointer{Obj: p.Obj, Off: p.Off + int64(idx)})
	case "strstr":
		p := in.ptrArg(e, args, 0)
		hay := in.readCString(e, p)
		needle := in.readCString(e, in.ptrArg(e, args, 1))
		idx := strings.Index(hay, needle)
		if idx < 0 {
			return NullPtr()
		}
		return PtrVal(Pointer{Obj: p.Obj, Off: p.Off + int64(idx)})
	case "strpbrk":
		p := in.ptrArg(e, args, 0)
		s := in.readCString(e, p)
		accept := in.readCString(e, in.ptrArg(e, args, 1))
		idx := strings.IndexAny(s, accept)
		if idx < 0 {
			return NullPtr()
		}
		return PtrVal(Pointer{Obj: p.Obj, Off: p.Off + int64(idx)})
	case "strspn", "strcspn":
		s := in.readCString(e, in.ptrArg(e, args, 0))
		set := in.readCString(e, in.ptrArg(e, args, 1))
		n := 0
		for ; n < len(s); n++ {
			inSet := strings.IndexByte(set, s[n]) >= 0
			if (name == "strspn") != inSet {
				break
			}
		}
		return IntVal(int64(n))
	case "strdup":
		s := in.readCString(e, in.ptrArg(e, args, 0))
		o := in.heapObj(e.Pos, int64(len(s))+1)
		in.writeCString(Pointer{Obj: o}, s)
		return PtrVal(Pointer{Obj: o})
	case "strtok":
		return in.strtok(e, args)

	// ---- qsort / bsearch ----
	case "qsort":
		in.qsort(e, args, fr)
		return IntVal(0)
	case "bsearch":
		return in.bsearch(e, args, fr)

	// ---- stdio ----
	case "printf":
		s := in.formatPrintf(e, args, 0)
		in.stdout.WriteString(s)
		return IntVal(int64(len(s)))
	case "sprintf":
		dst := in.ptrArg(e, args, 0)
		s := in.formatPrintf(e, args, 1)
		in.writeCString(dst, s)
		return IntVal(int64(len(s)))
	case "fprintf":
		s := in.formatPrintf(e, args, 1)
		f := in.ptrArg(e, args, 0)
		if st, ok := in.files[f.Obj]; ok {
			in.fileUse(e, st)
			st.out.WriteString(s)
		} else {
			in.stdout.WriteString(s)
		}
		return IntVal(int64(len(s)))
	case "puts":
		s := in.readCString(e, in.ptrArg(e, args, 0))
		in.stdout.WriteString(s + "\n")
		return IntVal(0)
	case "putchar", "putc", "fputc":
		ch := byte(args[0].AsInt())
		if name != "putchar" && len(args) > 1 {
			if f := in.ptrArg(e, args, 1); f.Obj != nil {
				if st, ok := in.files[f.Obj]; ok {
					in.fileUse(e, st)
					st.out.WriteByte(ch)
					return args[0]
				}
			}
		}
		in.stdout.WriteByte(ch)
		return args[0]
	case "fputs":
		s := in.readCString(e, in.ptrArg(e, args, 0))
		in.stdout.WriteString(s)
		return IntVal(0)
	case "fopen":
		return in.fopen(e, args)
	case "fclose":
		p := in.ptrArg(e, args, 0)
		if st, ok := in.files[p.Obj]; ok {
			if !st.open {
				in.fileViolation(e)
			}
			st.open = false
		}
		return IntVal(0)
	case "fflush":
		return IntVal(0)
	case "fgetc", "getc":
		p := in.ptrArg(e, args, 0)
		if st, ok := in.files[p.Obj]; ok {
			in.fileUse(e, st)
			if st.pos < len(st.data) {
				c := st.data[st.pos]
				st.pos++
				return IntVal(int64(c))
			}
		}
		return IntVal(-1) // EOF
	case "getchar":
		return IntVal(-1)
	case "ungetc":
		p := in.ptrArg(e, args, 1)
		if st, ok := in.files[p.Obj]; ok {
			in.fileUse(e, st)
			if st.pos > 0 {
				st.pos--
			}
		}
		return args[0]
	case "fgets":
		buf := in.ptrArg(e, args, 0)
		n := args[1].AsInt()
		fp := in.ptrArg(e, args, 2)
		st, ok := in.files[fp.Obj]
		if !ok {
			return NullPtr()
		}
		in.fileUse(e, st)
		if st.pos >= len(st.data) {
			return NullPtr()
		}
		var line []byte
		for int64(len(line)) < n-1 && st.pos < len(st.data) {
			c := st.data[st.pos]
			st.pos++
			line = append(line, c)
			if c == '\n' {
				break
			}
		}
		in.writeCString(buf, string(line))
		return PtrVal(buf)
	case "fread":
		buf := in.ptrArg(e, args, 0)
		sz, cnt := args[1].AsInt(), args[2].AsInt()
		fp := in.ptrArg(e, args, 3)
		st, ok := in.files[fp.Obj]
		if !ok {
			return IntVal(0)
		}
		in.fileUse(e, st)
		want := sz * cnt
		got := int64(0)
		for got < want && st.pos < len(st.data) {
			buf.Obj.store(buf.Off+got, IntVal(int64(st.data[st.pos])))
			st.pos++
			got++
		}
		if sz == 0 {
			return IntVal(0)
		}
		return IntVal(got / sz)
	case "fwrite":
		sz, cnt := args[1].AsInt(), args[2].AsInt()
		return IntVal(sz * cnt / max64(sz, 1))
	case "feof":
		p := in.ptrArg(e, args, 0)
		if st, ok := in.files[p.Obj]; ok {
			in.fileUse(e, st)
			return boolVal(st.pos >= len(st.data))
		}
		return IntVal(1)
	case "ferror":
		return IntVal(0)
	case "fseek":
		p := in.ptrArg(e, args, 0)
		if st, ok := in.files[p.Obj]; ok {
			in.fileUse(e, st)
			off := args[1].AsInt()
			switch args[2].AsInt() {
			case 0:
				st.pos = int(off)
			case 1:
				st.pos += int(off)
			case 2:
				st.pos = len(st.data) + int(off)
			}
			if st.pos < 0 {
				st.pos = 0
			}
		}
		return IntVal(0)
	case "ftell":
		p := in.ptrArg(e, args, 0)
		if st, ok := in.files[p.Obj]; ok {
			in.fileUse(e, st)
			return IntVal(int64(st.pos))
		}
		return IntVal(0)
	case "rewind":
		p := in.ptrArg(e, args, 0)
		if st, ok := in.files[p.Obj]; ok {
			in.fileUse(e, st)
			st.pos = 0
		}
		return IntVal(0)
	case "remove", "rename":
		return IntVal(0)

	// ---- math ----
	case "sqrt":
		return FloatVal(math.Sqrt(args[0].AsFloat()))
	case "fabs":
		return FloatVal(math.Abs(args[0].AsFloat()))
	case "exp":
		return FloatVal(math.Exp(args[0].AsFloat()))
	case "log":
		return FloatVal(math.Log(args[0].AsFloat()))
	case "log10":
		return FloatVal(math.Log10(args[0].AsFloat()))
	case "sin":
		return FloatVal(math.Sin(args[0].AsFloat()))
	case "cos":
		return FloatVal(math.Cos(args[0].AsFloat()))
	case "tan":
		return FloatVal(math.Tan(args[0].AsFloat()))
	case "atan":
		return FloatVal(math.Atan(args[0].AsFloat()))
	case "atan2":
		return FloatVal(math.Atan2(args[0].AsFloat(), args[1].AsFloat()))
	case "pow":
		return FloatVal(math.Pow(args[0].AsFloat(), args[1].AsFloat()))
	case "floor":
		return FloatVal(math.Floor(args[0].AsFloat()))
	case "ceil":
		return FloatVal(math.Ceil(args[0].AsFloat()))
	case "fmod":
		return FloatVal(math.Mod(args[0].AsFloat(), args[1].AsFloat()))

	// ---- ctype ----
	case "isalpha":
		c := args[0].AsInt()
		return boolVal((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))
	case "isdigit":
		c := args[0].AsInt()
		return boolVal(c >= '0' && c <= '9')
	case "isalnum":
		c := args[0].AsInt()
		return boolVal((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
	case "isspace":
		c := args[0].AsInt()
		return boolVal(c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f')
	case "isupper":
		c := args[0].AsInt()
		return boolVal(c >= 'A' && c <= 'Z')
	case "islower":
		c := args[0].AsInt()
		return boolVal(c >= 'a' && c <= 'z')
	case "ispunct":
		c := args[0].AsInt()
		return boolVal(c > ' ' && c < 127 && !(c >= 'a' && c <= 'z') &&
			!(c >= 'A' && c <= 'Z') && !(c >= '0' && c <= '9'))
	case "isprint":
		c := args[0].AsInt()
		return boolVal(c >= ' ' && c < 127)
	case "toupper":
		c := args[0].AsInt()
		if c >= 'a' && c <= 'z' {
			c -= 32
		}
		return IntVal(c)
	case "tolower":
		c := args[0].AsInt()
		if c >= 'A' && c <= 'Z' {
			c += 32
		}
		return IntVal(c)
	}
	in.errorf(e.Pos, "call to unmodeled library function %s", name)
	return Value{}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (in *Interp) strtok(e *cast.Call, args []Value) Value {
	p := in.ptrArg(e, args, 0)
	delim := in.readCString(e, in.ptrArg(e, args, 1))
	if p.Obj != nil {
		in.tokCur = p
	}
	if in.tokCur.Obj == nil {
		return NullPtr()
	}
	// Skip leading delimiters.
	cur := in.tokCur
	for {
		in.tick(e.Pos, 1)
		c := cur.Obj.load(cur.Off).AsInt()
		if c == 0 {
			in.tokCur = Pointer{}
			return NullPtr()
		}
		if strings.IndexByte(delim, byte(c)) < 0 {
			break
		}
		cur.Off++
	}
	start := cur
	for {
		in.tick(e.Pos, 1)
		c := cur.Obj.load(cur.Off).AsInt()
		if c == 0 {
			in.tokCur = Pointer{}
			return PtrVal(start)
		}
		if strings.IndexByte(delim, byte(c)) >= 0 {
			cur.Obj.store(cur.Off, IntVal(0))
			cur.Off++
			in.tokCur = cur
			return PtrVal(start)
		}
		cur.Off++
	}
}

func (in *Interp) qsort(e *cast.Call, args []Value, fr *frame) {
	base := in.ptrArg(e, args, 0)
	n := int(args[1].AsInt())
	sz := args[2].AsInt()
	cmpV := args[3]
	if cmpV.Kind != VPtr || cmpV.Ptr.Obj == nil || cmpV.Ptr.Obj.Func == nil {
		in.errorf(e.Pos, "qsort comparator is not a function")
	}
	cmp := cmpV.Ptr.Obj.Func
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		a := Pointer{Obj: base.Obj, Off: base.Off + int64(idx[i])*sz}
		b := Pointer{Obj: base.Obj, Off: base.Off + int64(idx[j])*sz}
		r := in.call(cmp, []Value{PtrVal(a), PtrVal(b)}, e.Pos)
		return r.AsInt() < 0
	})
	// Apply the permutation via a scratch copy.
	scratch := make([]map[int64]Value, n)
	for i := 0; i < n; i++ {
		m := make(map[int64]Value)
		for off, v := range base.Obj.Data {
			rel := off - (base.Off + int64(i)*sz)
			if rel >= 0 && rel < sz {
				m[rel] = v
			}
		}
		scratch[i] = m
	}
	for i := 0; i < n; i++ {
		dstBase := base.Off + int64(i)*sz
		for rel := int64(0); rel < sz; rel++ {
			delete(base.Obj.Data, dstBase+rel)
		}
		for rel, v := range scratch[idx[i]] {
			base.Obj.store(dstBase+rel, v)
			in.recordStore(Pointer{Obj: base.Obj, Off: dstBase + rel}, v)
		}
	}
	in.tick(e.Pos, int64(n)*4)
}

func (in *Interp) bsearch(e *cast.Call, args []Value, fr *frame) Value {
	key := args[0]
	base := in.ptrArg(e, args, 1)
	n := int(args[2].AsInt())
	sz := args[3].AsInt()
	cmpV := args[4]
	if cmpV.Kind != VPtr || cmpV.Ptr.Obj == nil || cmpV.Ptr.Obj.Func == nil {
		in.errorf(e.Pos, "bsearch comparator is not a function")
	}
	cmp := cmpV.Ptr.Obj.Func
	lo, hi := 0, n-1
	for lo <= hi {
		mid := (lo + hi) / 2
		elem := Pointer{Obj: base.Obj, Off: base.Off + int64(mid)*sz}
		r := in.call(cmp, []Value{key, PtrVal(elem)}, e.Pos).AsInt()
		switch {
		case r == 0:
			return PtrVal(elem)
		case r < 0:
			hi = mid - 1
		default:
			lo = mid + 1
		}
	}
	return NullPtr()
}

func (in *Interp) fopen(e *cast.Call, args []Value) Value {
	name := in.readCString(e, in.ptrArg(e, args, 0))
	mode := in.readCString(e, in.ptrArg(e, args, 1))
	obj := in.heapObj(e.Pos, 40)
	obj.Kind = FileObj
	st := &fileState{name: name, open: true}
	if strings.HasPrefix(mode, "r") {
		data, ok := in.fsIn[name]
		if !ok {
			return NullPtr()
		}
		st.data = []byte(data)
	}
	in.files[obj] = st
	return PtrVal(Pointer{Obj: obj})
}

// formatPrintf renders a printf-style format with arguments starting at
// args[fmtIdx+1].
func (in *Interp) formatPrintf(e *cast.Call, args []Value, fmtIdx int) string {
	format := in.readCString(e, in.ptrArg(e, args, fmtIdx))
	var sb strings.Builder
	ai := fmtIdx + 1
	nextArg := func() Value {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return IntVal(0)
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			sb.WriteByte(c)
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			sb.WriteByte('%')
			i++
			continue
		}
		// Parse flags/width/precision/length.
		spec := "%"
		for i < len(format) && strings.IndexByte("-+ 0#123456789.*", format[i]) >= 0 {
			if format[i] == '*' {
				spec += strconv.FormatInt(nextArg().AsInt(), 10)
			} else {
				spec += string(format[i])
			}
			i++
		}
		for i < len(format) && (format[i] == 'l' || format[i] == 'h') {
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		switch verb {
		case 'd', 'i':
			fmt.Fprintf(&sb, spec+"d", nextArg().AsInt())
		case 'u':
			fmt.Fprintf(&sb, spec+"d", nextArg().AsInt())
		case 'x':
			fmt.Fprintf(&sb, spec+"x", nextArg().AsInt())
		case 'X':
			fmt.Fprintf(&sb, spec+"X", nextArg().AsInt())
		case 'o':
			fmt.Fprintf(&sb, spec+"o", nextArg().AsInt())
		case 'c':
			sb.WriteByte(byte(nextArg().AsInt()))
		case 'f', 'F':
			fmt.Fprintf(&sb, spec+"f", nextArg().AsFloat())
		case 'e', 'E':
			fmt.Fprintf(&sb, spec+"e", nextArg().AsFloat())
		case 'g', 'G':
			fmt.Fprintf(&sb, spec+"g", nextArg().AsFloat())
		case 's':
			v := nextArg()
			if v.Kind == VPtr && v.Ptr.Obj != nil {
				fmt.Fprintf(&sb, spec+"s", in.readCString(e, v.Ptr))
			} else {
				sb.WriteString("(null)")
			}
		case 'p':
			v := nextArg()
			if v.Kind == VPtr {
				sb.WriteString(v.Ptr.String())
			} else {
				sb.WriteString("0x0")
			}
		default:
			sb.WriteByte(verb)
		}
	}
	return sb.String()
}
