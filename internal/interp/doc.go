// Package interp is a concrete interpreter for the analyzed C subset.
// It serves two roles in the reproduction:
//
//  1. Soundness oracle: every pointer value observed at run time must
//     be covered by the static analysis (dynamic points-to ⊆ static
//     may-points-to), checked by property tests over generated
//     programs.
//  2. Loop profiler: the parallelization experiment (paper Table 3)
//     needs the fraction of sequential time spent in parallelized
//     loops and the average time per loop invocation, which the
//     interpreter measures in abstract cost units.
//
// Memory is modeled exactly as the analysis models it: as named blocks
// (objects) with byte offsets, so dynamic facts translate directly into
// the analysis' location-set vocabulary.
package interp
