package interp

import (
	"fmt"
	"sort"
	"strings"

	"wlpa/internal/cast"
	"wlpa/internal/ctok"
	"wlpa/internal/ctype"
	"wlpa/internal/sem"
)

// Options configure an execution.
type Options struct {
	// MaxSteps bounds execution (0 = default 50M cost units).
	MaxSteps int64
	// Args are the program's command-line arguments (argv[1:]).
	Args []string
	// RecordPointsTo enables the dynamic points-to log.
	RecordPointsTo bool
	// ProfileLoops enables per-loop cost profiling.
	ProfileLoops bool
	// Seed seeds rand().
	Seed int64
}

// DynFact is one observed pointer store: the location (Block, Off) held
// a pointer into Target at some point during execution.
type DynFact struct {
	Block  string // object name, matching the analysis' block naming
	Sym    *cast.Symbol
	Off    int64
	Target string
	TSym   *cast.Symbol
	TOff   int64 // offset of the pointer target within its object
}

// LoopStat aggregates one source loop's dynamic behavior.
type LoopStat struct {
	Pos         ctok.Pos
	Invocations int64
	Iterations  int64
	Cost        int64 // total abstract cost units spent inside
}

// Result is the outcome of an execution.
type Result struct {
	ExitCode int
	Stdout   string
	Steps    int64 // total abstract cost units

	// Facts is the dynamic points-to log (with RecordPointsTo).
	Facts []DynFact

	// Loops maps loop positions to their profiles (with ProfileLoops).
	Loops map[string]*LoopStat

	// AllocSites lists the static positions of every executed heap
	// allocation (malloc/calloc/realloc/strdup; FILE objects excluded),
	// sorted. LeakSites is the subset whose objects leaked: never freed
	// and unreachable from globals and string literals at program exit.
	AllocSites []string
	LeakSites  []string

	// FileViolations lists the source positions of dynamic FILE-
	// protocol violations (a stream operation on an already-closed
	// handle, including a second fclose), sorted and deduplicated. The
	// operations themselves proceed benignly — the typestate oracle
	// observes, it does not fault.
	FileViolations []string
	// OpenSites lists the static positions of every executed fopen,
	// sorted and deduplicated. OpenAtExit is the subset whose handles
	// were still open when the program exited.
	OpenSites  []string
	OpenAtExit []string
}

// Error is a runtime error (uninitialized dereference, step overrun...).
type Error struct {
	Pos ctok.Pos
	Msg string
	// Fuel marks a step-budget overrun (MaxSteps exceeded) as opposed
	// to a genuine runtime fault of the program. Differential-testing
	// oracles use it to distinguish "the program misbehaved" from "the
	// budget was too small / the generator produced a runaway program".
	Fuel bool
}

func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: runtime: %s", e.Pos, e.Msg)
	}
	return "runtime: " + e.Msg
}

type exitSignal struct{ code int }

// Interp executes a checked program.
type Interp struct {
	prog *sem.Program
	opts Options

	globals map[*cast.Symbol]*Object
	funcs   map[*cast.Symbol]*Object
	strs    map[int]*Object
	heapSeq map[string]int

	stdout  strings.Builder
	steps   int64
	maxStep int64
	randSt  uint64

	facts    map[DynFact]bool
	loops    map[string]*LoopStat
	loopPosM map[string]ctok.Pos

	files    map[*Object]*fileState
	fileViol map[string]bool
	fsIn     map[string]string
	depth    int
	tokCur   Pointer // strtok cursor

	// heapAll registers every heap object ever allocated, for the leak
	// scan at program exit.
	heapAll []*Object
}

type fileState struct {
	name string
	data []byte
	pos  int
	out  strings.Builder
	open bool
}

// frame is one concrete activation.
type frame struct {
	fn     *cast.FuncDecl
	locals map[*cast.Symbol]*Object
	ret    Value
	hasRet bool
}

// ctrl encodes non-linear statement outcomes.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
	ctrlGoto
)

type flow struct {
	c     ctrl
	label string
}

var flowNone = flow{}

// New prepares an interpreter for prog.
func New(prog *sem.Program, opts Options) *Interp {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 50_000_000
	}
	in := &Interp{
		prog:    prog,
		opts:    opts,
		globals: make(map[*cast.Symbol]*Object),
		funcs:   make(map[*cast.Symbol]*Object),
		strs:    make(map[int]*Object),
		heapSeq: make(map[string]int),
		maxStep: opts.MaxSteps,
		randSt:  uint64(opts.Seed)*6364136223846793005 + 1442695040888963407,
		files:   make(map[*Object]*fileState),
		fsIn:    make(map[string]string),
	}
	if opts.RecordPointsTo {
		in.facts = make(map[DynFact]bool)
	}
	if opts.ProfileLoops {
		in.loops = make(map[string]*LoopStat)
		in.loopPosM = make(map[string]ctok.Pos)
	}
	return in
}

// AddFile registers a virtual input file for fopen.
func (in *Interp) AddFile(name, contents string) { in.fsIn[name] = contents }

// Run executes main to completion.
func (in *Interp) Run() (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch sig := r.(type) {
			case exitSignal:
				res = in.result(sig.code)
				err = nil
			case *Error:
				res, err = in.result(-1), sig
			default:
				panic(r)
			}
		}
	}()
	if in.prog.Main == nil {
		return nil, &Error{Msg: "no main function"}
	}
	// Initialize globals.
	for _, g := range in.prog.Globals {
		in.globalObj(g)
	}
	for _, vd := range in.prog.GlobalInits {
		if vd.Sym == nil || vd.Init == nil {
			continue
		}
		obj := in.globalObj(vd.Sym)
		in.initObject(obj, 0, vd.Sym.Type, vd.Init, nil)
	}
	var args []Value
	// argc/argv if main declares them.
	if len(in.prog.Main.Params) >= 2 {
		argv := newObject(HeapObj, "<argv>", int64(8*(len(in.opts.Args)+2)))
		for i, s := range in.opts.Args {
			strObj := newObject(StringObj, fmt.Sprintf("<arg%d>", i), int64(len(s)+1))
			for j := 0; j < len(s); j++ {
				strObj.store(int64(j), IntVal(int64(s[j])))
			}
			strObj.store(int64(len(s)), IntVal(0))
			argv.store(int64(8*(i+1)), PtrVal(Pointer{Obj: strObj}))
		}
		args = []Value{IntVal(int64(len(in.opts.Args) + 1)), PtrVal(Pointer{Obj: argv})}
	}
	ret := in.call(in.prog.Main, args, ctok.Pos{})
	return in.result(int(ret.AsInt())), nil
}

func (in *Interp) result(code int) *Result {
	r := &Result{
		ExitCode: code,
		Stdout:   in.stdout.String(),
		Steps:    in.steps,
		Loops:    in.loops,
	}
	for f := range in.facts {
		r.Facts = append(r.Facts, f)
	}
	sort.Slice(r.Facts, func(i, j int) bool {
		a, b := r.Facts[i], r.Facts[j]
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Off != b.Off {
			return a.Off < b.Off
		}
		return a.Target < b.Target
	})
	for pos := range in.fileViol {
		r.FileViolations = append(r.FileViolations, pos)
	}
	sort.Strings(r.FileViolations)
	opened := map[string]bool{}
	open := map[string]bool{}
	for obj, st := range in.files {
		site := strings.TrimPrefix(obj.Name, "heap@")
		opened[site] = true
		if st.open {
			open[site] = true
		}
	}
	for site := range opened {
		r.OpenSites = append(r.OpenSites, site)
	}
	sort.Strings(r.OpenSites)
	for site := range open {
		r.OpenAtExit = append(r.OpenAtExit, site)
	}
	sort.Strings(r.OpenAtExit)
	in.leakScan(r)
	return r
}

// fileViolation records one dynamic FILE-protocol violation (a second
// fclose, or a stream operation after fclose) at the call's position.
func (in *Interp) fileViolation(e *cast.Call) {
	if in.fileViol == nil {
		in.fileViol = map[string]bool{}
	}
	in.fileViol[e.Pos.String()] = true
}

// fileUse records a violation when a stream operation hits a handle
// that has already been closed.
func (in *Interp) fileUse(e *cast.Call, st *fileState) {
	if !st.open {
		in.fileViolation(e)
	}
}

// leakScan classifies every heap allocation at program exit: an object
// leaked if it was never freed and is unreachable from the root set
// (globals and string literals — main's frame is gone at exit, so
// locals do not root). FILE objects are resource handles, not memory
// leaks in this model, and are excluded.
func (in *Interp) leakScan(r *Result) {
	if len(in.heapAll) == 0 {
		return
	}
	reach := make(map[*Object]bool)
	var stack []*Object
	push := func(o *Object) {
		if o != nil && !reach[o] {
			reach[o] = true
			stack = append(stack, o)
		}
	}
	for _, o := range in.globals {
		push(o)
	}
	for _, o := range in.strs {
		push(o)
	}
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range o.Data {
			if v.Kind == VPtr {
				push(v.Ptr.Obj)
			}
		}
	}
	allocs := make(map[string]bool)
	leaks := make(map[string]bool)
	for _, o := range in.heapAll {
		if o.Kind == FileObj {
			continue
		}
		site := strings.TrimPrefix(o.Name, "heap@")
		allocs[site] = true
		if !o.Freed && !reach[o] {
			leaks[site] = true
		}
	}
	for site := range allocs {
		r.AllocSites = append(r.AllocSites, site)
	}
	for site := range leaks {
		r.LeakSites = append(r.LeakSites, site)
	}
	sort.Strings(r.AllocSites)
	sort.Strings(r.LeakSites)
}

func (in *Interp) errorf(pos ctok.Pos, format string, a ...any) {
	panic(&Error{Pos: pos, Msg: fmt.Sprintf(format, a...)})
}

func (in *Interp) tick(pos ctok.Pos, n int64) {
	in.steps += n
	if in.steps > in.maxStep {
		panic(&Error{Pos: pos, Msg: fmt.Sprintf("step budget exceeded (%d)", in.maxStep), Fuel: true})
	}
}

// IsFuelExhausted reports whether err is a step-budget overrun. Every
// interpreter loop — including the library-call scanning loops — pays
// into the same budget, so a true result guarantees the run was
// bounded: the interpreter cannot hang on any input, it can only run
// out of fuel.
func IsFuelExhausted(err error) bool {
	e, ok := err.(*Error)
	return ok && e.Fuel
}

// ---- objects ----

func (in *Interp) globalObj(sym *cast.Symbol) *Object {
	if o, ok := in.globals[sym]; ok {
		return o
	}
	o := newObject(GlobalObj, sym.Name, sym.Type.Sizeof())
	o.Sym = sym
	in.globals[sym] = o
	return o
}

func (in *Interp) funcObj(sym *cast.Symbol) *Object {
	if o, ok := in.funcs[sym]; ok {
		return o
	}
	o := newObject(FuncObj, sym.Name, 0)
	o.Sym = sym
	o.Func = sym.Def
	if o.Func == nil {
		o.Func = in.prog.FuncByName[sym.Name]
	}
	in.funcs[sym] = o
	return o
}

func (in *Interp) strObj(s *cast.StrLit) *Object {
	if o, ok := in.strs[s.ID]; ok {
		return o
	}
	o := newObject(StringObj, fmt.Sprintf("str%d", s.ID), int64(len(s.Value))+1)
	for i := 0; i < len(s.Value); i++ {
		o.store(int64(i), IntVal(int64(s.Value[i])))
	}
	o.store(int64(len(s.Value)), IntVal(0))
	in.strs[s.ID] = o
	return o
}

// heapObj allocates a heap object named by its static call site,
// matching the analysis' heap-block naming.
func (in *Interp) heapObj(pos ctok.Pos, size int64) *Object {
	site := pos.String()
	in.heapSeq[site]++
	o := newObject(HeapObj, "heap@"+site, size)
	in.heapAll = append(in.heapAll, o)
	return o
}

// recordStore logs a dynamic points-to fact.
func (in *Interp) recordStore(dst Pointer, v Value) {
	if in.facts == nil || v.Kind != VPtr || v.Ptr.Obj == nil || dst.Obj == nil {
		return
	}
	// Pointers to files and argv scaffolding are runtime-only.
	if v.Ptr.Obj.Kind == FileObj || strings.HasPrefix(v.Ptr.Obj.Name, "<") ||
		dst.Obj.Kind == FileObj || strings.HasPrefix(dst.Obj.Name, "<") {
		return
	}
	in.facts[DynFact{
		Block: dst.Obj.Name, Sym: dst.Obj.Sym, Off: dst.Off,
		Target: v.Ptr.Obj.Name, TSym: v.Ptr.Obj.Sym, TOff: v.Ptr.Off,
	}] = true
}

// storeVal writes v through p and logs the fact.
func (in *Interp) storeVal(pos ctok.Pos, p Pointer, v Value) {
	if p.Obj == nil {
		in.errorf(pos, "store through null pointer")
	}
	if p.Obj.Freed {
		in.errorf(pos, "store to freed object %s", p.Obj.Name)
	}
	p.Obj.store(p.Off, v)
	in.recordStore(p, v)
}

func (in *Interp) loadVal(pos ctok.Pos, p Pointer) Value {
	if p.Obj == nil {
		in.errorf(pos, "load through null pointer")
	}
	if p.Obj.Freed {
		in.errorf(pos, "load from freed object %s", p.Obj.Name)
	}
	return p.Obj.load(p.Off)
}

// initObject applies a declaration initializer to obj at base offset.
func (in *Interp) initObject(obj *Object, base int64, t *ctype.Type, init cast.Expr, fr *frame) {
	switch iv := init.(type) {
	case *cast.InitList:
		switch t.Kind {
		case ctype.Array:
			esz := t.Elem.Sizeof()
			for i, el := range iv.Elems {
				in.initObject(obj, base+int64(i)*esz, t.Elem, el, fr)
			}
		case ctype.Struct:
			for i, el := range iv.Elems {
				if i >= len(t.Fields) {
					break
				}
				in.initObject(obj, base+t.Fields[i].Offset, t.Fields[i].Type, el, fr)
			}
		default:
			if len(iv.Elems) > 0 {
				in.initObject(obj, base, t, iv.Elems[0], fr)
			}
		}
	case *cast.StrLit:
		if t.Kind == ctype.Array {
			for i := 0; i < len(iv.Value); i++ {
				obj.store(base+int64(i), IntVal(int64(iv.Value[i])))
			}
			obj.store(base+int64(len(iv.Value)), IntVal(0))
			return
		}
		in.storeVal(iv.Pos, Pointer{Obj: obj, Off: base}, PtrVal(Pointer{Obj: in.strObj(iv)}))
	default:
		v := in.evalExpr(init, fr)
		if t.Kind == ctype.Struct {
			// Struct copy from an lvalue initializer.
			src := in.evalLValue(init, fr)
			in.copyBytes(Pointer{Obj: obj, Off: base}, src, t.Sizeof())
			return
		}
		in.storeVal(init.Position(), Pointer{Obj: obj, Off: base}, in.convert(v, t))
	}
}

// copyBytes copies size bytes worth of sparse scalar slots.
func (in *Interp) copyBytes(dst, src Pointer, size int64) {
	if dst.Obj == nil || src.Obj == nil {
		return
	}
	for off, v := range src.Obj.Data {
		rel := off - src.Off
		if rel < 0 || rel >= size {
			continue
		}
		dst.Obj.store(dst.Off+rel, v)
		in.recordStore(Pointer{Obj: dst.Obj, Off: dst.Off + rel}, v)
	}
}

// convert coerces a value to a declared type.
func (in *Interp) convert(v Value, t *ctype.Type) Value {
	switch t.Kind {
	case ctype.Int:
		if v.Kind == VPtr {
			return v // pointers stored in integers keep their identity
		}
		iv := v.AsInt()
		// Truncate to the declared width.
		switch t.Size {
		case 1:
			if t.Signed {
				iv = int64(int8(iv))
			} else {
				iv = int64(uint8(iv))
			}
		case 2:
			if t.Signed {
				iv = int64(int16(iv))
			} else {
				iv = int64(uint16(iv))
			}
		case 4:
			if t.Signed {
				iv = int64(int32(iv))
			} else {
				iv = int64(uint32(iv))
			}
		}
		return IntVal(iv)
	case ctype.Float:
		if t.Size == 4 {
			return FloatVal(float64(float32(v.AsFloat())))
		}
		return FloatVal(v.AsFloat())
	case ctype.Pointer:
		if v.Kind == VInt && v.Int == 0 {
			return NullPtr()
		}
		return v
	}
	return v
}

// ---- calls ----

const maxCallDepth = 4096

func (in *Interp) call(fn *cast.FuncDecl, args []Value, pos ctok.Pos) Value {
	if fn.Body == nil {
		in.errorf(pos, "call to undefined function %s", fn.Name)
	}
	in.depth++
	if in.depth > maxCallDepth {
		in.depth--
		in.errorf(pos, "call stack overflow in %s", fn.Name)
	}
	defer func() { in.depth-- }()
	fr := &frame{fn: fn, locals: make(map[*cast.Symbol]*Object)}
	for i, p := range fn.Params {
		if p.Sym == nil {
			continue
		}
		obj := newObject(LocalObj, p.Sym.Name, p.Sym.Type.Sizeof())
		obj.Sym = p.Sym
		fr.locals[p.Sym] = obj
		if i < len(args) {
			in.storeVal(pos, Pointer{Obj: obj}, in.convert(args[i], p.Sym.Type))
		}
	}
	in.tick(fn.Pos, 1)
	fl := in.execStmt(fn.Body, fr)
	if fl.c == ctrlGoto {
		in.errorf(fn.Pos, "unresolved goto %q in %s", fl.label, fn.Name)
	}
	return fr.ret
}
