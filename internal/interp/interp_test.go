package interp

import (
	"strings"
	"testing"

	"wlpa/internal/cparse"
	"wlpa/internal/sem"
)

func exec(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	res, err := New(prog, opts).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestReturnCode(t *testing.T) {
	res := exec(t, "int main(void) { return 42; }", Options{})
	if res.ExitCode != 42 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestArithmetic(t *testing.T) {
	res := exec(t, `
int main(void) {
    int a = 6, b = 7;
    return a * b - 2 * (a + b) / 2 + 10 % 3;
}`, Options{})
	if res.ExitCode != 42-13+1 {
		t.Errorf("exit = %d, want %d", res.ExitCode, 42-13+1)
	}
}

func TestControlFlow(t *testing.T) {
	res := exec(t, `
int main(void) {
    int s = 0, i;
    for (i = 1; i <= 10; i++) {
        if (i % 2 == 0) continue;
        s += i;
    }
    while (s > 30) s -= 10;
    do { s++; } while (s < 28);
    return s;
}`, Options{})
	// odd sum 1..10 = 25; while loop not entered (25<=30); do-while to 28.
	if res.ExitCode != 28 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	res := exec(t, `
int classify(int k) {
    int r = 0;
    switch (k) {
    case 1: r += 1;
    case 2: r += 2; break;
    case 3: r += 4; break;
    default: r = 100;
    }
    return r;
}
int main(void) {
    return classify(1) * 100 + classify(2) * 10 + classify(9) / 100;
}`, Options{})
	// classify(1)=3, classify(2)=2, classify(9)=100.
	if res.ExitCode != 321 {
		t.Errorf("exit = %d, want 321", res.ExitCode)
	}
}

func TestPointersAndHeap(t *testing.T) {
	res := exec(t, `
#include <stdlib.h>
struct node { struct node *next; int v; };
int main(void) {
    struct node *head = 0;
    int i, sum = 0;
    for (i = 0; i < 5; i++) {
        struct node *n = (struct node *)malloc(sizeof(struct node));
        n->v = i;
        n->next = head;
        head = n;
    }
    while (head) { sum += head->v; head = head->next; }
    return sum;
}`, Options{})
	if res.ExitCode != 10 {
		t.Errorf("exit = %d, want 10", res.ExitCode)
	}
}

func TestArraysAndPointerArith(t *testing.T) {
	res := exec(t, `
int main(void) {
    int a[8];
    int *p = a, *q;
    int i;
    for (i = 0; i < 8; i++) *p++ = i * i;
    q = a + 3;
    return *q + q[1] + *(a + 5);
}`, Options{})
	if res.ExitCode != 9+16+25 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestStrings(t *testing.T) {
	res := exec(t, `
#include <string.h>
#include <stdlib.h>
int main(void) {
    char buf[32];
    char *d;
    strcpy(buf, "hello");
    strcat(buf, " world");
    d = strdup(buf);
    if (strcmp(d, "hello world") != 0) return 1;
    if (strlen(d) != 11) return 2;
    if (strchr(d, 'w') - d != 6) return 3;
    return 0;
}`, Options{})
	if res.ExitCode != 0 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestPrintf(t *testing.T) {
	res := exec(t, `
#include <stdio.h>
int main(void) {
    printf("n=%d s=%s c=%c f=%.2f\n", 7, "ok", 'x', 1.5);
    return 0;
}`, Options{})
	if res.Stdout != "n=7 s=ok c=x f=1.50\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestFunctionPointers(t *testing.T) {
	res := exec(t, `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int main(void) {
    int (*ops[2])(int, int);
    ops[0] = add;
    ops[1] = mul;
    return ops[0](3, 4) + ops[1](3, 4);
}`, Options{})
	if res.ExitCode != 19 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestRecursionFib(t *testing.T) {
	res := exec(t, `
int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
int main(void) { return fib(10); }`, Options{})
	if res.ExitCode != 55 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestQsort(t *testing.T) {
	res := exec(t, `
#include <stdlib.h>
int cmp(const void *a, const void *b) {
    return *(const int *)a - *(const int *)b;
}
int main(void) {
    int v[6] = {5, 3, 9, 1, 7, 2};
    int i;
    qsort(v, 6, sizeof(int), cmp);
    for (i = 1; i < 6; i++)
        if (v[i-1] > v[i]) return 1;
    return v[0] * 10 + v[5];
}`, Options{})
	if res.ExitCode != 19 { // 1*10 + 9
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestStructsAndUnions(t *testing.T) {
	res := exec(t, `
struct pt { int x, y; };
struct rect { struct pt lo, hi; };
int area(struct rect *r) {
    return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y);
}
int main(void) {
    struct rect r;
    struct rect s;
    r.lo.x = 1; r.lo.y = 2; r.hi.x = 5; r.hi.y = 6;
    s = r;
    return area(&s);
}`, Options{})
	if res.ExitCode != 16 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestGlobalInitAndStatics(t *testing.T) {
	res := exec(t, `
int base = 30;
int counter(void) { static int n = 0; n++; return n; }
int main(void) {
    counter(); counter();
    return base + counter();
}`, Options{})
	if res.ExitCode != 33 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestGoto(t *testing.T) {
	res := exec(t, `
int main(void) {
    int i = 0;
again:
    i++;
    if (i < 5) goto again;
    return i;
}`, Options{})
	if res.ExitCode != 5 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestExitBuiltin(t *testing.T) {
	res := exec(t, `
#include <stdlib.h>
int main(void) { exit(7); return 0; }`, Options{})
	if res.ExitCode != 7 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestVirtualFiles(t *testing.T) {
	src := `
#include <stdio.h>
int main(void) {
    FILE *f = fopen("in.txt", "r");
    int c, n = 0;
    if (!f) return 99;
    while ((c = fgetc(f)) != EOF) n++;
    fclose(f);
    return n;
}`
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, Options{})
	in.AddFile("in.txt", "hello\nworld\n")
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 12 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestDynamicFactsRecorded(t *testing.T) {
	res := exec(t, `
int x;
int *p;
int main(void) { p = &x; return 0; }`, Options{RecordPointsTo: true})
	found := false
	for _, f := range res.Facts {
		if f.Block == "p" && f.Target == "x" {
			found = true
		}
	}
	if !found {
		t.Errorf("facts = %v", res.Facts)
	}
}

func TestLoopProfiling(t *testing.T) {
	res := exec(t, `
int work(int n) {
    int i, s = 0;
    for (i = 0; i < n; i++) s += i;
    return s;
}
int main(void) {
    int k, t = 0;
    for (k = 0; k < 4; k++) t += work(100);
    return t > 0;
}`, Options{ProfileLoops: true})
	if len(res.Loops) < 2 {
		t.Fatalf("loops = %v", res.Loops)
	}
	var inner *LoopStat
	for _, st := range res.Loops {
		if st.Invocations == 4 {
			inner = st
		}
	}
	if inner == nil {
		t.Fatal("inner loop (4 invocations) not profiled")
	}
	if inner.Iterations != 400 {
		t.Errorf("inner iterations = %d, want 400", inner.Iterations)
	}
	if inner.Cost <= 0 {
		t.Error("inner cost not measured")
	}
}

func TestStepBudget(t *testing.T) {
	src := "int main(void) { for (;;) {} return 0; }"
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog, Options{MaxSteps: 10000}).Run(); err == nil {
		t.Error("expected step-budget error")
	}
}

func TestNullDerefFails(t *testing.T) {
	src := "int main(void) { int *p = 0; return *p; }"
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog, Options{}).Run(); err == nil {
		t.Error("expected null-deref error")
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	src := `
#include <stdlib.h>
int main(void) {
    int *p = (int *)malloc(4);
    free(p);
    return *p;
}`
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog, Options{}).Run(); err == nil {
		t.Error("expected use-after-free error")
	}
}

func TestStrtok(t *testing.T) {
	res := exec(t, `
#include <string.h>
int main(void) {
    char buf[32];
    char *tok;
    int n = 0;
    strcpy(buf, "a,bb,ccc");
    tok = strtok(buf, ",");
    while (tok) {
        n = n * 10 + strlen(tok);
        tok = strtok((char *)0, ",");
    }
    return n;
}`, Options{})
	if res.ExitCode != 123 {
		t.Errorf("exit = %d, want 123", res.ExitCode)
	}
}

func TestFloats(t *testing.T) {
	res := exec(t, `
#include <math.h>
int main(void) {
    double x = 2.0;
    double y = sqrt(x) * sqrt(x);
    float f = 0.5f;
    return (int)(y + 0.5) + (int)(f * 4.0);
}`, Options{})
	if res.ExitCode != 4 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestStdoutCapture(t *testing.T) {
	res := exec(t, `
#include <stdio.h>
int main(void) {
    int i;
    for (i = 0; i < 3; i++) putchar('a' + i);
    puts("!");
    return 0;
}`, Options{})
	if res.Stdout != "abc!\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestHeapNamesMatchSites(t *testing.T) {
	res := exec(t, `
#include <stdlib.h>
int *p, *q;
int main(void) {
    int i;
    for (i = 0; i < 2; i++) p = (int *)malloc(4);
    q = (int *)malloc(4);
    return 0;
}`, Options{RecordPointsTo: true})
	// p's two allocations share a static site name; q's differs.
	var pT, qT string
	for _, f := range res.Facts {
		if f.Block == "p" && strings.HasPrefix(f.Target, "heap@") {
			pT = f.Target
		}
		if f.Block == "q" {
			qT = f.Target
		}
	}
	if pT == "" || qT == "" || pT == qT {
		t.Errorf("pT=%q qT=%q", pT, qT)
	}
}
