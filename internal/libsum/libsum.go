package libsum

import (
	"wlpa/internal/analysis"
	"wlpa/internal/memmod"
)

// Summaries returns the registry of library-function summaries, keyed by
// function name.
func Summaries() map[string]analysis.LibSummary {
	m := map[string]analysis.LibSummary{}

	// ---- allocation ----
	alloc := func(c analysis.LibCall) { c.Return(c.Heap()) }
	m["malloc"] = alloc
	m["calloc"] = alloc
	m["strdup"] = func(c analysis.LibCall) { c.Return(c.Heap()) }
	m["realloc"] = func(c analysis.LibCall) {
		// Returns either the original block or a fresh one; the
		// fresh block receives the old block's pointer contents.
		old := c.Arg(0)
		fresh := c.Heap()
		c.Copy(fresh, old, 0)
		out := fresh
		out.AddAll(old)
		c.Return(out)
	}
	m["free"] = func(c analysis.LibCall) { c.Free(c.Arg(0)) }

	// ---- memory / string copying ----
	m["memcpy"] = func(c analysis.LibCall) {
		c.Copy(c.Arg(0), c.Arg(1), 0)
		c.Return(c.Arg(0))
	}
	m["memmove"] = m["memcpy"]
	m["memset"] = func(c analysis.LibCall) {
		// Writes a byte pattern: clears pointers conservatively (no
		// new pointer values); the destination may retain old values
		// since we cannot strong-update an unknown extent.
		c.Return(c.Arg(0))
	}
	m["memcmp"] = func(c analysis.LibCall) {}
	m["strcpy"] = func(c analysis.LibCall) { c.Return(c.Arg(0)) }
	m["strncpy"] = m["strcpy"]
	m["strcat"] = m["strcpy"]
	m["strncat"] = m["strcpy"]
	m["strcmp"] = func(c analysis.LibCall) {}
	m["strncmp"] = m["strcmp"]
	m["strlen"] = m["strcmp"]

	// Functions returning a pointer into their string argument.
	into := func(argIdx int) analysis.LibSummary {
		return func(c analysis.LibCall) { c.Return(c.Unknown(c.Arg(argIdx))) }
	}
	m["strchr"] = into(0)
	m["strrchr"] = into(0)
	m["strstr"] = into(0)
	m["strpbrk"] = into(0)
	m["strtok"] = func(c analysis.LibCall) {
		// strtok keeps internal state; conservatively it may return
		// a pointer into any buffer ever passed to it. We model the
		// common case: a pointer into the current argument.
		c.Return(c.Unknown(c.Arg(0)))
	}
	m["strspn"] = func(c analysis.LibCall) {}
	m["strcspn"] = m["strspn"]

	// ---- stdio ----
	m["fopen"] = func(c analysis.LibCall) { c.Return(c.Heap()) }
	m["fclose"] = func(c analysis.LibCall) {}
	m["fflush"] = m["fclose"]
	m["fgets"] = func(c analysis.LibCall) { c.Return(c.Arg(0)) }
	m["gets"] = m["fgets"]
	m["fgetc"] = func(c analysis.LibCall) {}
	m["getc"] = m["fgetc"]
	m["getchar"] = m["fgetc"]
	m["ungetc"] = m["fgetc"]
	m["fputc"] = m["fgetc"]
	m["putc"] = m["fgetc"]
	m["putchar"] = m["fgetc"]
	m["fputs"] = m["fgetc"]
	m["puts"] = m["fgetc"]
	m["fread"] = func(c analysis.LibCall) {
		// Reads raw bytes into the buffer. Per the paper's input
		// restriction, pointers are not read in from files, so no
		// pointer values are created.
	}
	m["fwrite"] = func(c analysis.LibCall) {}
	m["fseek"] = func(c analysis.LibCall) {}
	m["ftell"] = func(c analysis.LibCall) {}
	m["rewind"] = func(c analysis.LibCall) {}
	m["feof"] = func(c analysis.LibCall) {}
	m["ferror"] = func(c analysis.LibCall) {}
	m["remove"] = func(c analysis.LibCall) {}
	m["rename"] = func(c analysis.LibCall) {}
	m["printf"] = func(c analysis.LibCall) {}
	m["fprintf"] = func(c analysis.LibCall) {}
	m["sprintf"] = func(c analysis.LibCall) { /* writes text, no pointers */ }
	m["scanf"] = func(c analysis.LibCall) { /* stores scalars through args */ }
	m["fscanf"] = m["scanf"]
	m["sscanf"] = m["scanf"]

	// ---- stdlib ----
	m["exit"] = func(c analysis.LibCall) {}
	m["abort"] = m["exit"]
	m["atoi"] = func(c analysis.LibCall) {}
	m["atol"] = m["atoi"]
	m["atof"] = m["atoi"]
	m["abs"] = m["atoi"]
	m["labs"] = m["atoi"]
	m["rand"] = m["atoi"]
	m["srand"] = m["atoi"]
	m["getenv"] = func(c analysis.LibCall) { c.Return(c.Heap()) }
	m["qsort"] = func(c analysis.LibCall) {
		// qsort permutes elements within the array (pointer elements
		// move between positions — already modeled by strided
		// location sets) and calls the comparator with pointers into
		// the array.
		base := c.Unknown(c.Arg(0))
		c.Copy(base, base, 0)
		c.Invoke(c.Arg(3), []memmod.ValueSet{base, base})
	}
	m["bsearch"] = func(c analysis.LibCall) {
		base := c.Unknown(c.Arg(1))
		c.Invoke(c.Arg(4), []memmod.ValueSet{c.Arg(0), base})
		c.Return(base)
	}

	// ---- math / ctype: no pointer effects ----
	for _, name := range []string{
		"sqrt", "fabs", "exp", "log", "log10", "sin", "cos", "tan",
		"atan", "atan2", "pow", "floor", "ceil", "fmod",
		"isalpha", "isdigit", "isalnum", "isspace", "isupper",
		"islower", "ispunct", "isprint", "toupper", "tolower",
		"_assert_fail",
	} {
		m[name] = func(c analysis.LibCall) {}
	}
	return m
}
