package libsum

import (
	"wlpa/internal/analysis"
	"wlpa/internal/memmod"
)

// Summaries returns the registry of library-function summaries, keyed by
// function name.
func Summaries() map[string]analysis.LibSummary {
	m := map[string]analysis.LibSummary{}

	// ---- allocation ----
	alloc := func(c analysis.LibCall) { c.Return(c.Heap()) }
	m["malloc"] = alloc
	m["calloc"] = alloc
	m["strdup"] = func(c analysis.LibCall) { c.Return(c.Heap()) }
	m["realloc"] = func(c analysis.LibCall) {
		// Returns either the original block or a fresh one; the
		// fresh block receives the old block's pointer contents.
		old := c.Arg(0)
		fresh := c.Heap()
		c.Copy(fresh, old, 0)
		out := fresh
		out.AddAll(old)
		c.Return(out)
	}
	m["free"] = func(c analysis.LibCall) { c.Free(c.Arg(0)) }

	// ---- memory / string copying ----
	m["memcpy"] = func(c analysis.LibCall) {
		c.Copy(c.Arg(0), c.Arg(1), 0)
		c.Return(c.Arg(0))
	}
	m["memmove"] = m["memcpy"]
	m["memset"] = func(c analysis.LibCall) {
		// Writes a byte pattern: clears pointers conservatively (no
		// new pointer values); the destination may retain old values
		// since we cannot strong-update an unknown extent.
		c.Return(c.Arg(0))
	}
	m["memcmp"] = func(c analysis.LibCall) {}
	m["strcpy"] = func(c analysis.LibCall) { c.Return(c.Arg(0)) }
	m["strncpy"] = m["strcpy"]
	m["strcat"] = m["strcpy"]
	m["strncat"] = m["strcpy"]
	m["strcmp"] = func(c analysis.LibCall) {}
	m["strncmp"] = m["strcmp"]
	m["strlen"] = m["strcmp"]

	// Functions returning a pointer into their string argument.
	into := func(argIdx int) analysis.LibSummary {
		return func(c analysis.LibCall) { c.Return(c.Unknown(c.Arg(argIdx))) }
	}
	m["strchr"] = into(0)
	m["strrchr"] = into(0)
	m["strstr"] = into(0)
	m["strpbrk"] = into(0)
	m["strtok"] = func(c analysis.LibCall) {
		// strtok keeps internal state; conservatively it may return
		// a pointer into any buffer ever passed to it. We model the
		// common case: a pointer into the current argument.
		c.Return(c.Unknown(c.Arg(0)))
	}
	m["strspn"] = func(c analysis.LibCall) {}
	m["strcspn"] = m["strspn"]

	// ---- stdio ----
	m["fopen"] = func(c analysis.LibCall) { c.Return(c.Heap()) }
	m["fclose"] = func(c analysis.LibCall) {}
	m["fflush"] = m["fclose"]
	m["fgets"] = func(c analysis.LibCall) { c.Return(c.Arg(0)) }
	m["gets"] = m["fgets"]
	m["fgetc"] = func(c analysis.LibCall) {}
	m["getc"] = m["fgetc"]
	m["getchar"] = m["fgetc"]
	m["ungetc"] = m["fgetc"]
	m["fputc"] = m["fgetc"]
	m["putc"] = m["fgetc"]
	m["putchar"] = m["fgetc"]
	m["fputs"] = m["fgetc"]
	m["puts"] = m["fgetc"]
	m["fread"] = func(c analysis.LibCall) {
		// Reads raw bytes into the buffer. Per the paper's input
		// restriction, pointers are not read in from files, so no
		// pointer values are created.
	}
	m["fwrite"] = func(c analysis.LibCall) {}
	m["fseek"] = func(c analysis.LibCall) {}
	m["ftell"] = func(c analysis.LibCall) {}
	m["rewind"] = func(c analysis.LibCall) {}
	m["feof"] = func(c analysis.LibCall) {}
	m["ferror"] = func(c analysis.LibCall) {}
	m["remove"] = func(c analysis.LibCall) {}
	m["rename"] = func(c analysis.LibCall) {}
	m["printf"] = func(c analysis.LibCall) {}
	m["fprintf"] = func(c analysis.LibCall) {}
	m["sprintf"] = func(c analysis.LibCall) { /* writes text, no pointers */ }
	m["scanf"] = func(c analysis.LibCall) { /* stores scalars through args */ }
	m["fscanf"] = m["scanf"]
	m["sscanf"] = m["scanf"]

	// ---- stdlib ----
	m["exit"] = func(c analysis.LibCall) {}
	m["abort"] = m["exit"]
	m["atoi"] = func(c analysis.LibCall) {}
	m["atol"] = m["atoi"]
	m["atof"] = m["atoi"]
	m["abs"] = m["atoi"]
	m["labs"] = m["atoi"]
	m["rand"] = m["atoi"]
	m["srand"] = m["atoi"]
	m["getenv"] = func(c analysis.LibCall) { c.Return(c.Heap()) }
	m["system"] = func(c analysis.LibCall) {}
	for _, name := range []string{"execl", "execlp", "execv", "execvp"} {
		m[name] = func(c analysis.LibCall) {}
	}
	m["qsort"] = func(c analysis.LibCall) {
		// qsort permutes elements within the array (pointer elements
		// move between positions — already modeled by strided
		// location sets) and calls the comparator with pointers into
		// the array.
		base := c.Unknown(c.Arg(0))
		c.Copy(base, base, 0)
		c.Invoke(c.Arg(3), []memmod.ValueSet{base, base})
	}
	m["bsearch"] = func(c analysis.LibCall) {
		base := c.Unknown(c.Arg(1))
		c.Invoke(c.Arg(4), []memmod.ValueSet{c.Arg(0), base})
		c.Return(base)
	}

	// ---- math / ctype: no pointer effects ----
	for _, name := range []string{
		"sqrt", "fabs", "exp", "log", "log10", "sin", "cos", "tan",
		"atan", "atan2", "pow", "floor", "ceil", "fmod",
		"isalpha", "isdigit", "isalnum", "isspace", "isupper",
		"islower", "ispunct", "isprint", "toupper", "tolower",
		"_assert_fail",
	} {
		m[name] = func(c analysis.LibCall) {}
	}
	return m
}

// Effects returns the MOD/REF behavior of the summarized library
// functions for the summary computation (analysis.ModRef): which
// argument pointees each function may write or read. Summarized
// functions without an entry have no pointer-visible memory effects
// (math, ctype, atoi, ...).
func Effects() map[string]analysis.LibEffect {
	e := map[string]analysis.LibEffect{}

	// Allocation: fresh storage only; no pre-existing memory touched
	// beyond reading the source buffer.
	e["strdup"] = analysis.LibEffect{RefArgs: []int{0}}
	e["realloc"] = analysis.LibEffect{RefArgs: []int{0}}

	// Memory / string copying.
	e["memcpy"] = analysis.LibEffect{ModArgs: []int{0}, RefArgs: []int{1}}
	e["memmove"] = e["memcpy"]
	e["memset"] = analysis.LibEffect{ModArgs: []int{0}}
	e["memcmp"] = analysis.LibEffect{RefArgs: []int{0, 1}}
	e["strcpy"] = analysis.LibEffect{ModArgs: []int{0}, RefArgs: []int{1}}
	e["strncpy"] = e["strcpy"]
	e["strcat"] = analysis.LibEffect{ModArgs: []int{0}, RefArgs: []int{0, 1}}
	e["strncat"] = e["strcat"]
	e["strcmp"] = analysis.LibEffect{RefArgs: []int{0, 1}}
	e["strncmp"] = e["strcmp"]
	e["strlen"] = analysis.LibEffect{RefArgs: []int{0}}
	e["strchr"] = analysis.LibEffect{RefArgs: []int{0}}
	e["strrchr"] = e["strchr"]
	e["strstr"] = analysis.LibEffect{RefArgs: []int{0, 1}}
	e["strpbrk"] = e["strstr"]
	e["strspn"] = e["strstr"]
	e["strcspn"] = e["strstr"]
	// strtok writes NUL terminators into its subject string.
	e["strtok"] = analysis.LibEffect{ModArgs: []int{0}, RefArgs: []int{0, 1}}

	// stdio. FILE internals are modeled as the heap block fopen returns.
	e["fopen"] = analysis.LibEffect{RefArgs: []int{0, 1}}
	e["freopen"] = analysis.LibEffect{RefArgs: []int{1, 2}, ModArgs: []int{3}}
	e["fclose"] = analysis.LibEffect{ModArgs: []int{0}}
	e["fflush"] = analysis.LibEffect{ModArgs: []int{0}}
	e["fgets"] = analysis.LibEffect{ModArgs: []int{0}, RefArgs: []int{2}}
	e["gets"] = analysis.LibEffect{ModArgs: []int{0}}
	e["fgetc"] = analysis.LibEffect{ModArgs: []int{0}}
	e["getc"] = e["fgetc"]
	e["ungetc"] = analysis.LibEffect{ModArgs: []int{1}}
	e["fputc"] = analysis.LibEffect{ModArgs: []int{1}}
	e["putc"] = e["fputc"]
	e["fputs"] = analysis.LibEffect{RefArgs: []int{0}, ModArgs: []int{1}}
	e["puts"] = analysis.LibEffect{RefArgs: []int{0}}
	e["fread"] = analysis.LibEffect{ModArgs: []int{0, 3}}
	e["fwrite"] = analysis.LibEffect{RefArgs: []int{0}, ModArgs: []int{3}}
	e["fseek"] = analysis.LibEffect{ModArgs: []int{0}}
	e["ftell"] = analysis.LibEffect{RefArgs: []int{0}}
	e["rewind"] = analysis.LibEffect{ModArgs: []int{0}}
	e["feof"] = analysis.LibEffect{RefArgs: []int{0}}
	e["ferror"] = analysis.LibEffect{RefArgs: []int{0}}
	e["remove"] = analysis.LibEffect{RefArgs: []int{0}}
	e["rename"] = analysis.LibEffect{RefArgs: []int{0, 1}}
	e["printf"] = analysis.LibEffect{RefAll: true}
	e["fprintf"] = analysis.LibEffect{RefAll: true}
	e["sprintf"] = analysis.LibEffect{ModArgs: []int{0}, RefAll: true}
	e["scanf"] = analysis.LibEffect{ModAll: true}
	e["fscanf"] = analysis.LibEffect{ModAll: true}
	e["sscanf"] = analysis.LibEffect{ModAll: true, RefArgs: []int{0}}

	// stdlib.
	e["atoi"] = analysis.LibEffect{RefArgs: []int{0}}
	e["atol"] = e["atoi"]
	e["atof"] = e["atoi"]
	e["getenv"] = analysis.LibEffect{RefArgs: []int{0}}
	e["system"] = analysis.LibEffect{RefArgs: []int{0}}
	e["execl"] = analysis.LibEffect{RefAll: true}
	e["execlp"] = e["execl"]
	e["execv"] = e["execl"]
	e["execvp"] = e["execl"]
	e["qsort"] = analysis.LibEffect{ModArgs: []int{0}, RefArgs: []int{0}}
	e["bsearch"] = analysis.LibEffect{RefArgs: []int{0, 1}}
	e["_assert_fail"] = analysis.LibEffect{RefAll: true}

	return e
}
