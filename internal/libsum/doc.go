// Package libsum provides hand-written summaries of the potential
// pointer assignments in each C library function, as the paper does for
// its SUIF implementation (§1). Each summary manipulates the analysis
// state only through the analysis.LibCall interface, so summaries are
// engine-agnostic: the same summary runs under the full-pass, worklist
// and parallel engines.
package libsum
