package libsum

// This file declares the client-analysis annotations layered on top of
// the pointer summaries: a typestate protocol for resource lifecycles
// and a taint specification for untrusted-data flows. The tables are
// purely declarative — internal/check's dataflow clients interpret them
// — so extending a checker to a new library function is a table edit,
// not engine code.

// Transition is one state-changing call of a Protocol: the call's Arg
// carries the resource, which moves From one state To another. Calling
// it on a resource already past the transition (state == To only) is
// the protocol violation the checker reports.
type Transition struct {
	Arg  int
	From int
	To   int
}

// Protocol declares a finite-state resource lifecycle over library
// calls. States are indexed 0..7 (they become dataflow lattice bits).
type Protocol struct {
	// Name tags diagnostics ("FILE").
	Name string
	// States names the lifecycle states, by index.
	States []string
	// Init is the state a fresh resource starts in.
	Init int
	// Sources are the functions whose return value is a fresh resource
	// (each must be an allocator the points-to analysis models with a
	// heap block, e.g. fopen).
	Sources []string
	// Trans maps state-changing functions to their transition.
	Trans map[string]Transition
	// Uses maps resource-consuming functions to the argument index of
	// the resource; using a resource in the Bad state is a violation.
	Uses map[string]int
	// Bad is the state in which a use or repeated transition is a
	// defect (e.g. Closed).
	Bad int
	// EndBad is the state that is a defect when main exits (e.g. still
	// Opened — a leaked handle).
	EndBad int
}

// FileProtocol returns the FILE-handle lifecycle: fopen opens, fclose
// closes, the stream functions use; closing twice, using after close,
// and exiting with an open handle are defects.
func FileProtocol() *Protocol {
	const (
		opened = 0
		closed = 1
	)
	return &Protocol{
		Name:    "FILE",
		States:  []string{"open", "closed"},
		Init:    opened,
		Sources: []string{"fopen"},
		Trans: map[string]Transition{
			"fclose": {Arg: 0, From: opened, To: closed},
		},
		Uses: map[string]int{
			"fgetc": 0, "getc": 0, "ungetc": 1, "fgets": 2,
			"fputc": 1, "putc": 1, "fputs": 1, "fprintf": 0,
			"fread": 3, "fwrite": 3, "fseek": 0, "ftell": 0,
			"rewind": 0, "feof": 0, "ferror": 0, "fflush": 0,
			"fscanf": 0,
		},
		Bad:    closed,
		EndBad: opened,
	}
}

// TaintCopy declares taint propagation of one library call: the Src
// argument's pointee taints the Dst argument's pointee. Src == -1 means
// every argument after Dst (variadic formatters).
type TaintCopy struct {
	Dst int
	Src int
}

// TaintSpec declares sources, propagation, sinks, and sanitizers of the
// taint checker.
type TaintSpec struct {
	// RetSources return a pointer to untrusted data (modeled as a
	// fresh heap block: getenv).
	RetSources []string
	// ArgSources write untrusted data through the listed argument
	// pointees (fgets, gets, fread, scanf-family data args).
	ArgSources map[string][]int
	// Copies propagate taint between argument pointees (strcpy & co).
	Copies map[string][]TaintCopy
	// RetCopies return fresh storage carrying the taint of the listed
	// argument's pointee (strdup).
	RetCopies map[string]int
	// ExecSinks hand the listed argument's pointee to a command
	// interpreter; tainted data reaching one is the taintflow defect.
	ExecSinks map[string]int
	// FmtSinks interpret the listed argument's pointee as a format
	// string; tainted data reaching one is the taintfmt defect.
	FmtSinks map[string]int
	// Sanitizers overwrite the listed argument pointees with trusted
	// data (strong-cleansed when the target resolves uniquely).
	Sanitizers map[string][]int
}

// Taint returns the default taint specification: environment and input
// functions are sources, command execution and format strings are
// sinks, the string/memory copiers propagate, memset sanitizes.
func Taint() *TaintSpec {
	return &TaintSpec{
		RetSources: []string{"getenv"},
		ArgSources: map[string][]int{
			"fgets": {0}, "gets": {0}, "fread": {0},
			"scanf": {1, 2, 3, 4, 5}, "fscanf": {2, 3, 4, 5, 6},
		},
		Copies: map[string][]TaintCopy{
			"strcpy":  {{Dst: 0, Src: 1}},
			"strncpy": {{Dst: 0, Src: 1}},
			"strcat":  {{Dst: 0, Src: 1}},
			"strncat": {{Dst: 0, Src: 1}},
			"memcpy":  {{Dst: 0, Src: 1}},
			"memmove": {{Dst: 0, Src: 1}},
			"sprintf": {{Dst: 0, Src: -1}},
			"sscanf":  {{Dst: 1, Src: 0}, {Dst: 2, Src: 0}, {Dst: 3, Src: 0}, {Dst: 4, Src: 0}},
		},
		// (strchr/strtok & co return pointers INTO their argument; the
		// points-to layer already aliases those, no copy rule needed.)
		RetCopies: map[string]int{"strdup": 0},
		ExecSinks: map[string]int{
			"system": 0, "popen": 0,
			"execl": 0, "execlp": 0, "execv": 0, "execvp": 0,
		},
		FmtSinks: map[string]int{
			"printf": 0, "fprintf": 1, "sprintf": 1, "scanf": 0, "fscanf": 1,
		},
		Sanitizers: map[string][]int{"memset": {0}},
	}
}
