package libsum_test

import (
	"sort"
	"strings"
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/cparse"
	"wlpa/internal/libsum"
	"wlpa/internal/memmod"
	"wlpa/internal/sem"
)

// pts analyzes src and returns the sorted points-to targets of global p.
func pts(t *testing.T, src, global string) []string {
	t.Helper()
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	a, err := analysis.New(prog, analysis.Options{Lib: libsum.Summaries()})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	var sym *sem.SymbolAlias
	for _, g := range prog.Globals {
		if g.Name == global {
			sym = g
		}
	}
	if sym == nil {
		t.Fatalf("no global %s", global)
	}
	ptf := a.MainPTF()
	vals, ok := ptf.Pts.LookupOut(memmod.Loc(a.GlobalBlock(sym), 0, 0), ptf.Proc.Exit, nil)
	if !ok {
		return nil
	}
	var names []string
	for _, l := range vals.Locs() {
		names = append(names, l.Base.Name)
	}
	sort.Strings(names)
	return names
}

func anyHeap(names []string) bool {
	for _, n := range names {
		if strings.HasPrefix(n, "heap@") {
			return true
		}
	}
	return false
}

func TestRegistryCoversHeaders(t *testing.T) {
	// Every function declared in the built-in headers that can affect
	// pointers must have a summary; a few are intentionally generic.
	m := libsum.Summaries()
	for _, name := range []string{
		"malloc", "calloc", "realloc", "free", "strdup", "memcpy",
		"memmove", "memset", "strcpy", "strcat", "strchr", "strstr",
		"strtok", "qsort", "bsearch", "fopen", "fgets", "printf",
		"sqrt", "isalpha", "exit",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("no summary for %s", name)
		}
	}
}

func TestMallocFamilyFreshBlocks(t *testing.T) {
	src := `
#include <stdlib.h>
#include <string.h>
char *pm, *pc, *pd;
int main(void) {
    pm = (char *)malloc(8);
    pc = (char *)calloc(2, 8);
    pd = strdup("abc");
    return 0;
}`
	for _, g := range []string{"pm", "pc", "pd"} {
		got := pts(t, src, g)
		if len(got) != 1 || !anyHeap(got) {
			t.Errorf("%s -> %v, want one heap block", g, got)
		}
	}
}

func TestReallocKeepsOrReplaces(t *testing.T) {
	src := `
#include <stdlib.h>
char *p;
int main(void) {
    p = (char *)malloc(8);
    p = (char *)realloc(p, 16);
    return 0;
}`
	got := pts(t, src, "p")
	// Result may be the original block or the realloc site's block.
	if len(got) != 2 || !anyHeap(got) {
		t.Errorf("p -> %v, want {malloc site, realloc site}", got)
	}
}

func TestFreeRecordsSite(t *testing.T) {
	src := `
#include <stdlib.h>
char *p;
int main(void) {
    p = (char *)malloc(8);
    free(p);
    return 0;
}`
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	a, err := analysis.New(prog, analysis.Options{Lib: libsum.Summaries()})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	sites := a.FreeSites()
	if len(sites) != 1 {
		t.Fatalf("FreeSites = %d records, want 1", len(sites))
	}
	s := sites[0]
	if s.PTF.Proc.Name != "main" {
		t.Errorf("free recorded in %s, want main", s.PTF.Proc.Name)
	}
	var names []string
	for _, l := range s.Vals.Locs() {
		names = append(names, l.Base.Name)
	}
	if len(names) != 1 || !anyHeap(names) {
		t.Errorf("freed %v, want the malloc heap block", names)
	}
}

func TestStrcpyReturnsDst(t *testing.T) {
	src := `
#include <string.h>
char buf[16];
char *r;
int main(void) { r = strcpy(buf, "x"); return 0; }`
	got := pts(t, src, "r")
	if len(got) != 1 || got[0] != "buf" {
		t.Errorf("r -> %v, want [buf]", got)
	}
}

func TestStrchrPointsIntoArgument(t *testing.T) {
	src := `
#include <string.h>
char buf[16];
char *r;
int main(void) { r = strchr(buf, 'a'); return 0; }`
	got := pts(t, src, "r")
	if len(got) != 1 || got[0] != "buf" {
		t.Errorf("r -> %v, want into buf", got)
	}
}

func TestMemcpyPropagatesPointerFields(t *testing.T) {
	src := `
#include <string.h>
struct cell { int *link; };
int target;
struct cell src1, dst1;
int *r;
int main(void) {
    src1.link = &target;
    memcpy(&dst1, &src1, sizeof(struct cell));
    r = dst1.link;
    return 0;
}`
	got := pts(t, src, "r")
	if len(got) != 1 || got[0] != "target" {
		t.Errorf("r -> %v, want [target]", got)
	}
}

func TestQsortInvokesComparator(t *testing.T) {
	src := `
#include <stdlib.h>
int *seen;
int table[4];
int cmp(const void *a, const void *b) { seen = (int *)a; return 0; }
int main(void) { qsort(table, 4, sizeof(int), cmp); return 0; }`
	got := pts(t, src, "seen")
	if len(got) != 1 || got[0] != "table" {
		t.Errorf("seen -> %v, want pointers into table", got)
	}
}

func TestBsearchReturnsIntoArray(t *testing.T) {
	src := `
#include <stdlib.h>
int table[4];
int key;
int *hit;
int cmp(const void *a, const void *b) { return 0; }
int main(void) {
    hit = (int *)bsearch(&key, table, 4, sizeof(int), cmp);
    return 0;
}`
	got := pts(t, src, "hit")
	found := false
	for _, n := range got {
		if n == "table" {
			found = true
		}
	}
	if !found {
		t.Errorf("hit -> %v, want into table", got)
	}
}

func TestFopenFreshBlock(t *testing.T) {
	src := `
#include <stdio.h>
FILE *f;
int main(void) { f = fopen("x", "r"); return 0; }`
	got := pts(t, src, "f")
	if len(got) != 1 || !anyHeap(got) {
		t.Errorf("f -> %v, want a heap block", got)
	}
}

func TestFgetsReturnsBuffer(t *testing.T) {
	src := `
#include <stdio.h>
char line[64];
char *r;
int main(void) {
    FILE *f = fopen("x", "r");
    r = fgets(line, 64, f);
    return 0;
}`
	got := pts(t, src, "r")
	if len(got) != 1 || got[0] != "line" {
		t.Errorf("r -> %v, want [line]", got)
	}
}

func TestPureFunctionsNoPointerEffects(t *testing.T) {
	src := `
#include <math.h>
#include <ctype.h>
int x;
int *p;
int main(void) {
    p = &x;
    sqrt(2.0);
    isalpha('a');
    return 0;
}`
	got := pts(t, src, "p")
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("p -> %v, want [x] untouched", got)
	}
}

func TestUnknownExternConservative(t *testing.T) {
	// A function with no summary gets the generic conservative model:
	// the return value may be anything reachable from the arguments.
	src := `
int x;
int *p, *r;
int main(void) {
    p = &x;
    r = (int *)mystery(p);
    return 0;
}`
	got := pts(t, src, "r")
	found := false
	for _, n := range got {
		if n == "x" {
			found = true
		}
	}
	if !found {
		t.Errorf("r -> %v, generic summary must include x", got)
	}
}
