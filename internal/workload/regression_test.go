package workload

import "testing"

// TestBenchmarkSoundnessRegression re-checks, with the verbose oracle,
// the benchmarks that historically exposed analysis bugs (global/param
// unification, recursive input-domain merging, stale summary
// propagation).
func TestBenchmarkSoundnessRegression(t *testing.T) {
	for _, name := range []string{"grep", "diff", "eqntott", "compiler"} {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		checkSoundness(t, name, b.Source)
	}
}
