// Package workload provides the benchmark programs and synthetic C
// program generators used to evaluate the analysis: the 13-program
// benchmark suite standing in for the paper's Table 2 programs
// (testdata/*.c), and a random generator of well-defined pointer-heavy
// C programs used by the interpreter-vs-analysis soundness property
// tests.
package workload
