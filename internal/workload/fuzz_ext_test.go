package workload

import (
	"fmt"
	"testing"
)

func TestSoundnessExtended(t *testing.T) {
	for seed := int64(60); seed < 200; seed++ {
		src := Generate(DefaultGenConfig(seed))
		checkSoundness(t, fmt.Sprintf("xseed%d", seed), src)
		if t.Failed() {
			t.Logf("failing program (seed %d):\n%s", seed, numbered(src))
			break
		}
	}
}
