// Replays every reduced reproducer under testdata/regressions through
// the full differential oracle, so any bug the harness ever caught
// stays caught. External test package: difftest imports workload, so
// an internal test here would be an import cycle.
package workload_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlpa/internal/difftest"
)

func TestRegressionReplay(t *testing.T) {
	dir := filepath.Join("testdata", "regressions")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".c") {
			continue
		}
		ran++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			if !strings.Contains(src, "Root cause") {
				t.Errorf("%s is missing its root-cause comment", e.Name())
			}
			if err := difftest.CheckProgram(e.Name(), src, difftest.Options{Workers: []int{2}}); err != nil {
				t.Fatalf("regression resurfaced: %v", err)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no reproducers found; the regressions directory should never be empty")
	}
}
