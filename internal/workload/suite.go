package workload

import (
	"embed"
	"sort"
	"strings"
)

//go:embed testdata/*.c
var suiteFS embed.FS

// Benchmark describes one program of the embedded benchmark suite, the
// stand-in for the paper's Table 2 programs (see DESIGN.md §4 for the
// substitution rationale).
type Benchmark struct {
	Name   string
	Source string

	// Paper-reported reference values for Table 2 (lines, procedures,
	// analysis seconds on a 1995 DECstation 5000/260, avg PTFs/proc).
	PaperLines   int
	PaperProcs   int
	PaperSeconds float64
	PaperPTFs    float64

	// Runnable marks programs the interpreter can execute end to end
	// (used for soundness checks and loop profiling).
	Runnable bool
}

// paperTable2 holds the reference numbers from the paper, in its order.
var paperTable2 = []Benchmark{
	{Name: "allroots", PaperLines: 188, PaperProcs: 6, PaperSeconds: 0.18, PaperPTFs: 1.00, Runnable: true},
	{Name: "alvinn", PaperLines: 272, PaperProcs: 8, PaperSeconds: 0.22, PaperPTFs: 1.00, Runnable: true},
	{Name: "grep", PaperLines: 430, PaperProcs: 9, PaperSeconds: 0.65, PaperPTFs: 1.00, Runnable: true},
	{Name: "diff", PaperLines: 668, PaperProcs: 23, PaperSeconds: 2.13, PaperPTFs: 1.30, Runnable: true},
	{Name: "lex315", PaperLines: 776, PaperProcs: 16, PaperSeconds: 0.93, PaperPTFs: 1.00, Runnable: true},
	{Name: "compress", PaperLines: 1503, PaperProcs: 14, PaperSeconds: 1.45, PaperPTFs: 1.00, Runnable: true},
	{Name: "loader", PaperLines: 1539, PaperProcs: 29, PaperSeconds: 1.70, PaperPTFs: 1.03, Runnable: true},
	{Name: "football", PaperLines: 2354, PaperProcs: 57, PaperSeconds: 6.70, PaperPTFs: 1.02, Runnable: true},
	{Name: "compiler", PaperLines: 2360, PaperProcs: 37, PaperSeconds: 7.57, PaperPTFs: 1.14, Runnable: true},
	{Name: "assembler", PaperLines: 3361, PaperProcs: 51, PaperSeconds: 5.82, PaperPTFs: 1.08, Runnable: true},
	{Name: "eqntott", PaperLines: 3454, PaperProcs: 60, PaperSeconds: 9.88, PaperPTFs: 1.33, Runnable: true},
	{Name: "ear", PaperLines: 4284, PaperProcs: 68, PaperSeconds: 2.99, PaperPTFs: 1.13, Runnable: true},
	{Name: "simulator", PaperLines: 4663, PaperProcs: 98, PaperSeconds: 15.54, PaperPTFs: 1.39, Runnable: true},
}

// Suite returns the available benchmarks in the paper's (size) order.
// Programs without a source file yet are omitted.
func Suite() []Benchmark {
	var out []Benchmark
	for _, b := range paperTable2 {
		data, err := suiteFS.ReadFile("testdata/" + b.Name + ".c")
		if err != nil {
			continue
		}
		b.Source = string(data)
		out = append(out, b)
	}
	return out
}

// BugFixtures returns the seeded-bug programs (testdata/bug_*.c),
// keyed by fixture name (file name without the bug_ prefix and .c
// suffix). Each seeds exactly the defect its name says, for validating
// the checkers in internal/check; none is part of the benchmark suite.
func BugFixtures() map[string]string {
	out := map[string]string{}
	entries, err := suiteFS.ReadDir("testdata")
	if err != nil {
		return out
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "bug_") || !strings.HasSuffix(name, ".c") {
			continue
		}
		data, err := suiteFS.ReadFile("testdata/" + name)
		if err != nil {
			continue
		}
		out[strings.TrimSuffix(strings.TrimPrefix(name, "bug_"), ".c")] = string(data)
	}
	return out
}

// ByName returns the named benchmark (and whether it exists).
func ByName(name string) (Benchmark, bool) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names lists the available benchmark names, sorted as in the paper.
func Names() []string {
	var out []string
	for _, b := range Suite() {
		out = append(out, b.Name)
	}
	return out
}

// CountLines returns the number of source lines (as the paper counts
// them: physical lines).
func CountLines(src string) int {
	return len(strings.Split(strings.TrimRight(src, "\n"), "\n"))
}

// SortedBySize returns the suite sorted by line count (paper order).
func SortedBySize() []Benchmark {
	s := Suite()
	sort.Slice(s, func(i, j int) bool {
		return CountLines(s[i].Source) < CountLines(s[j].Source)
	})
	return s
}
