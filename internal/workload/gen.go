package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Feature is a bitmask of optional generator constructs. Each bit turns
// on one family of statements or declarations; fuzz inputs toggle bits
// directly (see FuzzGenConfig), so every feature must keep the generated
// program well-defined and trap-free on its own and in any combination.
type Feature uint32

const (
	// FeatHeap allocates with malloc into the pointer pool.
	FeatHeap Feature = 1 << iota
	// FeatStructs declares struct pair globals with pointer fields.
	FeatStructs
	// FeatFuncPtrs emits the dispatch() function-pointer trampoline.
	FeatFuncPtrs
	// FeatRecursion makes the last generated function self-recursive
	// (bounded by the rdepth global).
	FeatRecursion
	// FeatMultiPtr declares int** and int*** globals and statements
	// that read and write through them.
	FeatMultiPtr
	// FeatPtrReturn emits helper functions returning pointers (both
	// fresh targets and a selection between pointer arguments).
	FeatPtrReturn
	// FeatOutParam emits helpers that return pointers through an
	// int** out-parameter.
	FeatOutParam
	// FeatFuncPtrField stores function pointers in a struct field and
	// calls through the field.
	FeatFuncPtrField
	// FeatNestedStruct declares a struct containing a struct pair and
	// accesses the doubly-nested pointer fields.
	FeatNestedStruct
	// FeatFree malloc's, uses, and free's a dead (never escaping)
	// heap object in a self-contained block.
	FeatFree
	// FeatAddrLocal takes the address of a block-local int and passes
	// it down a call chain that reads and writes through it.
	FeatAddrLocal
	// FeatLeak malloc's, uses, and abandons a heap object (drops the
	// only pointer). Leaking is well-defined C — the interpreter records
	// the lost object (Result.LeakSites) and the static leak checker
	// must report it (the difftest leak rung cross-checks the two).
	FeatLeak
	// FeatTypestate emits balanced FILE chains (fopen, null guard, a
	// stream use — sometimes through a helper — then fclose). Every
	// chain respects the FILE protocol, so the typestate checkers must
	// stay quiet and the difftest typestate rung holds the static
	// reports to the interpreter's stream census.
	FeatTypestate
	// FeatTaint reads an environment variable and, under a null guard,
	// hands it to system(). The taint checker reports the flow
	// (taintflow is a security finding on a well-defined program, so
	// the check-clean stage exempts it); the interpreter models getenv
	// as NULL, so the sink never executes.
	FeatTaint

	numFeatures = 14
)

var featureNames = [numFeatures]string{
	"heap", "structs", "funcptrs", "recursion", "multiptr", "ptrreturn",
	"outparam", "funcptrfield", "nestedstruct", "free", "addrlocal",
	"leak", "typestate", "taint",
}

// AllFeatures returns the mask with every feature enabled.
func AllFeatures() Feature { return Feature(1<<numFeatures) - 1 }

// NumFeatures returns the number of distinct feature bits.
func NumFeatures() int { return numFeatures }

// FeatureName returns the name of the i-th feature bit.
func FeatureName(i int) string { return featureNames[i] }

func (f Feature) String() string {
	if f == 0 {
		return "none"
	}
	var parts []string
	for i := 0; i < numFeatures; i++ {
		if f&(1<<i) != 0 {
			parts = append(parts, featureNames[i])
		}
	}
	return strings.Join(parts, "+")
}

// GenConfig controls random program generation.
type GenConfig struct {
	Seed         int64
	NumGlobals   int // scalar int globals (targets)
	NumPtrs      int // pointer globals
	NumFuncs     int
	StmtsPerFunc int

	// Features selects the optional constructs. The legacy booleans
	// below are OR-ed in, so configurations predating the bitmask
	// keep their meaning.
	Features Feature

	UseHeap      bool
	UseStructs   bool
	UseFuncPtrs  bool
	UseRecursion bool
}

// features returns the effective feature mask (bitmask plus legacy
// booleans).
func (cfg GenConfig) features() Feature {
	f := cfg.Features
	if cfg.UseHeap {
		f |= FeatHeap
	}
	if cfg.UseStructs {
		f |= FeatStructs
	}
	if cfg.UseFuncPtrs {
		f |= FeatFuncPtrs
	}
	if cfg.UseRecursion {
		f |= FeatRecursion
	}
	return f
}

// DefaultGenConfig returns a medium-sized configuration with the
// original four features enabled.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Seed: seed, NumGlobals: 4, NumPtrs: 4, NumFuncs: 4,
		StmtsPerFunc: 8, UseHeap: true, UseStructs: true,
		UseFuncPtrs: true, UseRecursion: true,
	}
}

// FuzzGenConfig decodes a fuzz input into a generator configuration:
// the seed drives the statement dice, the low feature bits of raw
// select constructs. Sizes are fixed so fuzz iterations stay fast.
func FuzzGenConfig(seed int64, raw uint32) GenConfig {
	return GenConfig{
		Seed: seed, NumGlobals: 4, NumPtrs: 4, NumFuncs: 3,
		StmtsPerFunc: 6,
		Features:     Feature(raw) & AllFeatures(),
	}
}

// generator state: which pointer-valued expressions are known valid
// (point at a real object) so dereferences never trap.
type generator struct {
	r    *rand.Rand
	cfg  GenConfig
	feat Feature
	sb   strings.Builder

	ptrs    []string // pointer global names (int *)
	ints    []string // int global names
	arrays  []string // int array globals
	structs []string // struct pair globals (fields f0, f1: int *)
	pptrs   []string // int ** globals (point at a pointer global)
	ppptrs  []string // int *** globals (point at an int ** global)
	funcs   []string // generated function names (callable)

	pickers  []string // pointer-returning helper names: int *pickN(int k)
	makers   []string // out-parameter helper names: void mkN(int **out, int k)
	haveSel  bool     // int *sel(int *a, int *b, int k) emitted
	haveVt   bool     // struct vtab global vt0 emitted
	haveFuse bool     // void fuse0(FILE *f) stream-use helper emitted

	gensym int // unique suffix for block-local names

	indent int
}

// Generate produces a self-contained, well-defined C program exercising
// pointer assignments, aliasing, branches, loops, calls, heap
// allocation, struct fields, multi-level pointers, pointer-returning
// and out-parameter helpers, function-pointer fields, nested structs,
// dead-heap free, address-taken locals, and bounded recursion,
// according to the configured features.
func Generate(cfg GenConfig) string {
	g := &generator{
		r: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg,
		feat: cfg.features(),
	}
	g.emitHeader()
	g.emitGlobals()
	g.emitHelpers()
	g.emitFuncs()
	g.emitMain()
	return g.sb.String()
}

func (g *generator) has(f Feature) bool { return g.feat&f != 0 }

func (g *generator) w(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("    ", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *generator) emitHeader() {
	g.w("/* generated: seed=%d features=%s */", g.cfg.Seed, g.feat)
	if g.has(FeatTypestate) {
		g.w("#include <stdio.h>")
	}
	if g.has(FeatHeap | FeatFree | FeatLeak | FeatTaint) {
		g.w("#include <stdlib.h>")
	}
	g.w("")
}

func (g *generator) emitGlobals() {
	for i := 0; i < g.cfg.NumGlobals; i++ {
		name := fmt.Sprintf("g%d", i)
		g.ints = append(g.ints, name)
		g.w("int %s;", name)
	}
	for i := 0; i < g.cfg.NumPtrs; i++ {
		name := fmt.Sprintf("p%d", i)
		g.ptrs = append(g.ptrs, name)
		g.w("int *%s;", name)
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("arr%d", i)
		g.arrays = append(g.arrays, name)
		g.w("int %s[8];", name)
	}
	if g.has(FeatMultiPtr) {
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("q%d", i)
			g.pptrs = append(g.pptrs, name)
			g.w("int **%s;", name)
		}
		name := "r0"
		g.ppptrs = append(g.ppptrs, name)
		g.w("int ***%s;", name)
	}
	if g.has(FeatStructs | FeatNestedStruct) {
		g.w("struct pair { int *f0; int *f1; };")
	}
	if g.has(FeatStructs) {
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("s%d", i)
			g.structs = append(g.structs, name)
			g.w("struct pair %s;", name)
		}
	}
	if g.has(FeatNestedStruct) {
		g.w("struct outer { struct pair in; int *q; };")
		g.w("struct outer n0;")
	}
	if g.has(FeatFuncPtrField) && g.cfg.NumFuncs > 0 {
		g.w("struct vtab { void (*h)(int **, int *); int *d; };")
		g.w("struct vtab vt0;")
		g.haveVt = true
	}
	g.w("int tick;")
	g.w("int rdepth;")
	g.w("")
}

// target returns a random addressable int location expression ("&g0",
// "arr1", "&arr0[2]").
func (g *generator) target() string {
	switch g.r.Intn(3) {
	case 0:
		return "&" + g.ints[g.r.Intn(len(g.ints))]
	case 1:
		return g.arrays[g.r.Intn(len(g.arrays))]
	default:
		return fmt.Sprintf("&%s[%d]", g.arrays[g.r.Intn(len(g.arrays))], g.r.Intn(8))
	}
}

// ptr returns a random pointer global name.
func (g *generator) ptr() string { return g.ptrs[g.r.Intn(len(g.ptrs))] }

// pptr returns a random int** global name.
func (g *generator) pptr() string { return g.pptrs[g.r.Intn(len(g.pptrs))] }

// cond returns a terminating, varying condition.
func (g *generator) cond() string {
	return fmt.Sprintf("(tick + %d) %% %d", g.r.Intn(5), 2+g.r.Intn(3))
}

// sym returns a fresh name with the given prefix for block-local
// declarations.
func (g *generator) sym(prefix string) string {
	g.gensym++
	return fmt.Sprintf("%s%d", prefix, g.gensym)
}

// stmt emits one random statement. Valid-pointer invariants: every
// int* global points at a live int object; every int** global points
// at an int* global; every int*** global points at an int** global;
// struct pointer fields and vt0 are initialized in main's prologue
// before any generated statement runs.
func (g *generator) stmt(depth int) {
	const numKinds = 25
	switch g.r.Intn(numKinds) {
	case 0: // p = &target
		g.w("%s = %s;", g.ptr(), g.target())
	case 1: // p = q
		g.w("%s = %s;", g.ptr(), g.ptr())
	case 2: // *p = int
		g.w("*%s = tick + %d;", g.ptr(), g.r.Intn(100))
	case 3: // read through pointer
		g.w("tick += *%s;", g.ptr())
	case 4: // pointer arithmetic within an array
		g.w("%s = %s + %d;", g.ptr(), g.arrays[g.r.Intn(len(g.arrays))], g.r.Intn(7))
	case 5: // struct fields
		if len(g.structs) > 0 {
			s := g.structs[g.r.Intn(len(g.structs))]
			if g.r.Intn(2) == 0 {
				g.w("%s.f%d = %s;", s, g.r.Intn(2), g.ptr())
			} else {
				g.w("%s = %s.f%d;", g.ptr(), s, g.r.Intn(2))
			}
			return
		}
		g.w("%s = %s;", g.ptr(), g.ptr())
	case 6: // heap
		if g.has(FeatHeap) {
			g.w("%s = (int *)malloc(sizeof(int) * 4);", g.ptr())
			return
		}
		g.w("%s = %s;", g.ptr(), g.target())
	case 7: // if/else with pointer effects
		if depth < 2 {
			g.w("if (%s) {", g.cond())
			g.indent++
			g.stmt(depth + 1)
			g.indent--
			g.w("} else {")
			g.indent++
			g.stmt(depth + 1)
			g.indent--
			g.w("}")
			return
		}
		g.w("tick++;")
	case 8: // bounded loop
		if depth < 2 {
			v := g.sym("i")
			g.w("{ int %s; for (%s = 0; %s < %d; %s++) {", v, v, v, 2+g.r.Intn(3), v)
			g.indent++
			g.stmt(depth + 1)
			g.indent--
			g.w("} }")
			return
		}
		g.w("tick++;")
	case 9: // call an already-generated function
		if len(g.funcs) > 0 {
			callee := g.funcs[g.r.Intn(len(g.funcs))]
			g.w("%s(&%s, %s);", callee, g.ptr(), g.ptr())
			return
		}
		g.w("tick++;")
	case 10: // swap two pointers via a local
		g.w("{ int *%[1]s = %[2]s; %[3]s = %[4]s; %[5]s = %[1]s; }",
			g.sym("t"), g.ptr(), g.ptr(), g.ptr(), g.ptr())
	case 11: // write through a pointer-to-pointer local
		g.w("{ int **%[1]s = &%[2]s; *%[1]s = %[3]s; }", g.sym("pp"), g.ptr(), g.target())
	case 12: // conditional expression
		g.w("%s = %s ? %s : %s;", g.ptr(), g.cond(), g.ptr(), g.ptr())
	case 13: // multi-level: retarget / read / write through int** and int***
		if g.has(FeatMultiPtr) {
			switch g.r.Intn(6) {
			case 0:
				g.w("%s = &%s;", g.pptr(), g.ptr())
			case 1:
				g.w("*%s = %s;", g.pptr(), g.target())
			case 2:
				g.w("%s = *%s;", g.ptr(), g.pptr())
			case 3:
				g.w("**%s = tick + %d;", g.pptr(), g.r.Intn(50))
			case 4:
				g.w("tick += **%s;", g.pptr())
			default:
				r := g.ppptrs[g.r.Intn(len(g.ppptrs))]
				switch g.r.Intn(4) {
				case 0:
					g.w("%s = &%s;", r, g.pptr())
				case 1:
					g.w("*%s = &%s;", r, g.ptr())
				case 2:
					g.w("%s = **%s;", g.ptr(), r)
				default:
					g.w("***%s = tick + %d;", r, g.r.Intn(50))
				}
			}
			return
		}
		g.w("tick += %d;", g.r.Intn(10))
	case 14: // pointer-returning helper
		if len(g.pickers) > 0 {
			pick := g.pickers[g.r.Intn(len(g.pickers))]
			g.w("%s = %s(tick + %d);", g.ptr(), pick, g.r.Intn(9))
			return
		}
		g.w("tick++;")
	case 15: // select between two pointers via a helper
		if g.haveSel {
			g.w("%s = sel(%s, %s, tick + %d);", g.ptr(), g.ptr(), g.ptr(), g.r.Intn(9))
			return
		}
		g.w("tick++;")
	case 16: // out-parameter helper
		if len(g.makers) > 0 {
			mk := g.makers[g.r.Intn(len(g.makers))]
			g.w("%s(&%s, tick + %d);", mk, g.ptr(), g.r.Intn(9))
			return
		}
		g.w("tick++;")
	case 17: // function pointer stored in a struct field
		if g.haveVt && len(g.funcs) > 0 {
			if g.r.Intn(3) == 0 {
				g.w("vt0.h = %s;", g.funcs[g.r.Intn(len(g.funcs))])
			} else {
				// The target may itself call through vt0.h, so the
				// call is rdepth-bounded like direct recursion.
				g.w("if (rdepth > 0) { rdepth--; vt0.h(&%s, %s); }", g.ptr(), g.ptr())
			}
			return
		}
		g.w("tick++;")
	case 18: // nested struct pointer fields
		if g.has(FeatNestedStruct) {
			switch g.r.Intn(5) {
			case 0:
				g.w("n0.in.f%d = %s;", g.r.Intn(2), g.ptr())
			case 1:
				g.w("%s = n0.in.f%d;", g.ptr(), g.r.Intn(2))
			case 2:
				g.w("n0.q = %s;", g.target())
			case 3:
				g.w("tick += *n0.q;")
			default:
				g.w("*n0.in.f%d = tick + %d;", g.r.Intn(2), g.r.Intn(50))
			}
			return
		}
		g.w("tick += %d;", g.r.Intn(10))
	case 19: // malloc, use, free a dead heap object
		if g.has(FeatFree) {
			h := g.sym("h")
			g.w("{ int *%[1]s = (int *)malloc(sizeof(int) * 2); *%[1]s = tick + %[2]d; tick += *%[1]s; free(%[1]s); }",
				h, g.r.Intn(20))
			return
		}
		g.w("tick++;")
	case 20: // address-taken local passed down the call chain
		if g.has(FeatAddrLocal) {
			v := g.sym("loc")
			g.w("{ int %[1]s = tick + %[2]d; chain1(&%[1]s); tick += %[1]s; }", v, g.r.Intn(20))
			return
		}
		g.w("tick++;")
	case 21: // malloc, use, abandon a heap object (leak)
		if g.has(FeatLeak) {
			h := g.sym("lk")
			g.w("{ int *%[1]s = (int *)malloc(sizeof(int) * 2); *%[1]s = tick + %[2]d; tick += *%[1]s; }",
				h, g.r.Intn(20))
			return
		}
		g.w("tick++;")
	case 22: // balanced FILE chain: open, guarded use, close
		if g.has(FeatTypestate) {
			fh := g.sym("fs")
			use := fmt.Sprintf("fputc(tick & 127, %s);", fh)
			if g.haveFuse && g.r.Intn(2) == 0 {
				// Route the stream use through the helper so the
				// typestate engine crosses a call boundary.
				use = fmt.Sprintf("fuse0(%s);", fh)
			}
			g.w("{ FILE *%[1]s = fopen(\"wl.tmp\", \"w\"); if (%[1]s) { %[2]s fclose(%[1]s); } }", fh, use)
			return
		}
		g.w("tick++;")
	case 23: // guarded environment read flowing to a command sink
		if g.has(FeatTaint) {
			ev := g.sym("ev")
			g.w("{ char *%[1]s = getenv(\"WL_CMD\"); if (%[1]s) { system(%[1]s); } }", ev)
			return
		}
		g.w("tick++;")
	default:
		g.w("tick += %d;", g.r.Intn(10))
	}
}

// emitFeatureFloor emits one canonical statement per enabled feature
// at the top of main, so every requested feature manifests in the
// program no matter which cases the random statement soup happens to
// pick. Fuzz coverage claims ("this input exercises feature X") and
// the per-feature generator tests rely on this floor.
func (g *generator) emitFeatureFloor() {
	if g.has(FeatHeap) {
		g.w("%s = (int *)malloc(sizeof(int) * 4);", g.ptr())
	}
	if g.has(FeatStructs) && len(g.structs) > 0 {
		g.w("%s = %s.f0;", g.ptr(), g.structs[0])
	}
	if g.has(FeatMultiPtr) && len(g.pptrs) > 0 {
		g.w("%s = *%s;", g.ptr(), g.pptr())
	}
	if len(g.pickers) > 0 {
		g.w("%s = %s(tick);", g.ptr(), g.pickers[0])
	}
	if g.haveSel {
		g.w("%s = sel(%s, %s, tick);", g.ptr(), g.ptr(), g.ptr())
	}
	if len(g.makers) > 0 {
		g.w("%s(&%s, tick);", g.makers[0], g.ptr())
	}
	if g.haveVt && len(g.funcs) > 0 {
		g.w("if (rdepth > 0) { rdepth--; vt0.h(&%s, %s); }", g.ptr(), g.ptr())
	}
	if g.has(FeatNestedStruct) {
		g.w("%s = n0.in.f0;", g.ptr())
	}
	if g.has(FeatFree) {
		h := g.sym("h")
		g.w("{ int *%[1]s = (int *)malloc(sizeof(int) * 2); *%[1]s = tick; tick += *%[1]s; free(%[1]s); }", h)
	}
	if g.has(FeatAddrLocal) {
		v := g.sym("loc")
		g.w("{ int %[1]s = tick; chain1(&%[1]s); tick += %[1]s; }", v)
	}
	if g.has(FeatLeak) {
		h := g.sym("lk")
		g.w("{ int *%[1]s = (int *)malloc(sizeof(int) * 2); *%[1]s = tick; tick += *%[1]s; }", h)
	}
	if g.has(FeatTypestate) {
		fh := g.sym("fs")
		g.w("{ FILE *%[1]s = fopen(\"wl.tmp\", \"w\"); if (%[1]s) { fuse0(%[1]s); fclose(%[1]s); } }", fh)
	}
	if g.has(FeatTaint) {
		ev := g.sym("ev")
		g.w("{ char *%[1]s = getenv(\"WL_CMD\"); if (%[1]s) { system(%[1]s); } }", ev)
	}
}

// emitHelpers declares the feature helper functions referenced by the
// statement soup. They come before the generated f-functions so every
// call site sees its callee already declared.
func (g *generator) emitHelpers() {
	if g.has(FeatTypestate) {
		// A stream user one call away from the open/close pair, so the
		// FILE handle's state has to survive a summary application.
		g.w("void fuse0(FILE *f) {")
		g.indent++
		g.w("fputc(tick & 127, f);")
		g.indent--
		g.w("}")
		g.w("")
		g.haveFuse = true
	}
	if g.has(FeatAddrLocal) {
		// Read-and-write users of an address-taken local. The pointer
		// never escapes the chain, so the local stays valid for every
		// access.
		g.w("void useloc(int *v) {")
		g.indent++
		g.w("tick += *v;")
		g.w("*v = tick & 15;")
		g.indent--
		g.w("}")
		g.w("")
		g.w("void chain0(int *v) {")
		g.indent++
		g.w("useloc(v);")
		g.w("tick += *v;")
		g.indent--
		g.w("}")
		g.w("")
		g.w("void chain1(int *v) {")
		g.indent++
		g.w("chain0(v);")
		g.indent--
		g.w("}")
		g.w("")
	}
	if g.has(FeatPtrReturn) {
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("pick%d", i)
			g.w("int *%s(int k) {", name)
			g.indent++
			g.w("if (k %% 2) {")
			g.indent++
			g.w("return %s;", g.target())
			g.indent--
			g.w("}")
			g.w("return %s;", g.target())
			g.indent--
			g.w("}")
			g.w("")
			g.pickers = append(g.pickers, name)
		}
		g.w("int *sel(int *a, int *b, int k) {")
		g.indent++
		g.w("if (k %% 3) {")
		g.indent++
		g.w("return a;")
		g.indent--
		g.w("}")
		g.w("return b;")
		g.indent--
		g.w("}")
		g.w("")
		g.haveSel = true
	}
	if g.has(FeatOutParam) {
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("mk%d", i)
			g.w("void %s(int **out, int k) {", name)
			g.indent++
			g.w("if (k %% 2) {")
			g.indent++
			g.w("*out = %s;", g.target())
			g.indent--
			g.w("} else {")
			g.indent++
			g.w("*out = %s;", g.target())
			g.indent--
			g.w("}")
			g.indent--
			g.w("}")
			g.w("")
			g.makers = append(g.makers, name)
		}
	}
}

func (g *generator) emitFuncs() {
	n := g.cfg.NumFuncs
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("f%d", i)
		recursive := g.has(FeatRecursion) && i == n-1 && n > 1
		if recursive {
			g.w("void %s(int **a, int *b) {", name)
			g.indent++
			g.w("*a = b;")
			for s := 0; s < g.cfg.StmtsPerFunc/2; s++ {
				g.stmt(0)
			}
			// Structurally bounded recursion: rdepth only decreases.
			g.w("if (rdepth > 0) { rdepth--; %s(a, *a); }", name)
			g.indent--
			g.w("}")
		} else {
			g.w("void %s(int **a, int *b) {", name)
			g.indent++
			g.w("*a = b;")
			for s := 0; s < g.cfg.StmtsPerFunc; s++ {
				g.stmt(0)
			}
			g.indent--
			g.w("}")
		}
		g.funcs = append(g.funcs, name)
		g.w("")
	}
	if g.has(FeatFuncPtrs) && len(g.funcs) >= 2 {
		g.w("void dispatch(int k, int **a, int *b) {")
		g.indent++
		g.w("void (*fp)(int **, int *);")
		g.w("if (k %% 2) fp = %s; else fp = %s;", g.funcs[0], g.funcs[1])
		g.w("fp(a, b);")
		g.indent--
		g.w("}")
		g.w("")
	}
}

func (g *generator) emitMain() {
	g.w("int main(void) {")
	g.indent++
	// Make every pointer valid before any dereference.
	for i, p := range g.ptrs {
		g.w("%s = &%s;", p, g.ints[i%len(g.ints)])
	}
	for i, q := range g.pptrs {
		g.w("%s = &%s;", q, g.ptrs[i%len(g.ptrs)])
	}
	for i, r := range g.ppptrs {
		g.w("%s = &%s;", r, g.pptrs[i%len(g.pptrs)])
	}
	if g.has(FeatStructs) {
		for _, s := range g.structs {
			g.w("%s.f0 = %s;", s, g.ptrs[0])
			g.w("%s.f1 = &%s;", s, g.ints[0])
		}
	}
	if g.has(FeatNestedStruct) {
		g.w("n0.in.f0 = &%s;", g.ints[0])
		g.w("n0.in.f1 = %s;", g.arrays[0])
		g.w("n0.q = &%s;", g.ints[len(g.ints)-1])
	}
	if g.haveVt && len(g.funcs) > 0 {
		g.w("vt0.h = %s;", g.funcs[0])
		g.w("vt0.d = &%s;", g.ints[0])
	}
	g.w("tick = 1;")
	g.w("rdepth = 6;")
	g.emitFeatureFloor()
	for s := 0; s < g.cfg.StmtsPerFunc; s++ {
		g.stmt(0)
	}
	for range g.funcs {
		g.w("%s(&%s, %s);", g.funcs[g.r.Intn(len(g.funcs))], g.ptr(), g.ptr())
	}
	if g.has(FeatFuncPtrs) && len(g.funcs) >= 2 {
		g.w("dispatch(tick, &%s, %s);", g.ptr(), g.ptr())
		g.w("dispatch(tick + 1, &%s, %s);", g.ptr(), g.ptr())
	}
	g.w("return tick & 0x7f;")
	g.indent--
	g.w("}")
}
