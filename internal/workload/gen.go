package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig controls random program generation.
type GenConfig struct {
	Seed         int64
	NumGlobals   int // scalar int globals (targets)
	NumPtrs      int // pointer globals
	NumFuncs     int
	StmtsPerFunc int
	UseHeap      bool
	UseStructs   bool
	UseFuncPtrs  bool
	UseRecursion bool
}

// DefaultGenConfig returns a medium-sized configuration.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Seed: seed, NumGlobals: 4, NumPtrs: 4, NumFuncs: 4,
		StmtsPerFunc: 8, UseHeap: true, UseStructs: true,
		UseFuncPtrs: true, UseRecursion: true,
	}
}

// generator state: which pointer-valued expressions are known valid
// (point at a real object) so dereferences never trap.
type generator struct {
	r   *rand.Rand
	cfg GenConfig
	sb  strings.Builder

	ptrs    []string // pointer global names (int *)
	ints    []string // int global names
	arrays  []string // int array globals
	structs []string // struct pair globals (fields f0, f1: int *)
	funcs   []string // generated function names (callable)

	indent int
}

// Generate produces a self-contained, well-defined C program exercising
// pointer assignments, aliasing, branches, loops, calls, heap allocation,
// struct fields and (optionally) function pointers and recursion.
func Generate(cfg GenConfig) string {
	g := &generator{r: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	g.emitHeader()
	g.emitGlobals()
	g.emitFuncs()
	g.emitMain()
	return g.sb.String()
}

func (g *generator) w(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("    ", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *generator) emitHeader() {
	g.w("/* generated: seed=%d */", g.cfg.Seed)
	if g.cfg.UseHeap {
		g.w("#include <stdlib.h>")
	}
	g.w("")
}

func (g *generator) emitGlobals() {
	for i := 0; i < g.cfg.NumGlobals; i++ {
		name := fmt.Sprintf("g%d", i)
		g.ints = append(g.ints, name)
		g.w("int %s;", name)
	}
	for i := 0; i < g.cfg.NumPtrs; i++ {
		name := fmt.Sprintf("p%d", i)
		g.ptrs = append(g.ptrs, name)
		g.w("int *%s;", name)
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("arr%d", i)
		g.arrays = append(g.arrays, name)
		g.w("int %s[8];", name)
	}
	if g.cfg.UseStructs {
		g.w("struct pair { int *f0; int *f1; };")
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("s%d", i)
			g.structs = append(g.structs, name)
			g.w("struct pair %s;", name)
		}
	}
	g.w("int tick;")
	g.w("int rdepth;")
	g.w("")
}

// target returns a random addressable int location expression ("&g0",
// "arr1", "&arr0[2]").
func (g *generator) target() string {
	switch g.r.Intn(3) {
	case 0:
		return "&" + g.ints[g.r.Intn(len(g.ints))]
	case 1:
		return g.arrays[g.r.Intn(len(g.arrays))]
	default:
		return fmt.Sprintf("&%s[%d]", g.arrays[g.r.Intn(len(g.arrays))], g.r.Intn(8))
	}
}

// ptr returns a random pointer global name.
func (g *generator) ptr() string { return g.ptrs[g.r.Intn(len(g.ptrs))] }

// cond returns a terminating, varying condition.
func (g *generator) cond() string {
	return fmt.Sprintf("(tick + %d) %% %d", g.r.Intn(5), 2+g.r.Intn(3))
}

// stmt emits one random statement. valid pointers are already assigned.
func (g *generator) stmt(depth int) {
	switch g.r.Intn(14) {
	case 0: // p = &target
		g.w("%s = %s;", g.ptr(), g.target())
	case 1: // p = q
		g.w("%s = %s;", g.ptr(), g.ptr())
	case 2: // *p = int
		g.w("*%s = tick + %d;", g.ptr(), g.r.Intn(100))
	case 3: // read through pointer
		g.w("tick += *%s;", g.ptr())
	case 4: // pointer arithmetic within an array
		g.w("%s = %s + %d;", g.ptr(), g.arrays[g.r.Intn(len(g.arrays))], g.r.Intn(7))
	case 5: // struct fields
		if len(g.structs) > 0 {
			s := g.structs[g.r.Intn(len(g.structs))]
			if g.r.Intn(2) == 0 {
				g.w("%s.f%d = %s;", s, g.r.Intn(2), g.ptr())
			} else {
				g.w("%s = %s.f%d;", g.ptr(), s, g.r.Intn(2))
			}
			return
		}
		g.w("%s = %s;", g.ptr(), g.ptr())
	case 6: // heap
		if g.cfg.UseHeap {
			g.w("%s = (int *)malloc(sizeof(int) * 4);", g.ptr())
			return
		}
		g.w("%s = %s;", g.ptr(), g.target())
	case 7: // if/else with pointer effects
		if depth < 2 {
			g.w("if (%s) {", g.cond())
			g.indent++
			g.stmt(depth + 1)
			g.indent--
			g.w("} else {")
			g.indent++
			g.stmt(depth + 1)
			g.indent--
			g.w("}")
			return
		}
		g.w("tick++;")
	case 8: // bounded loop
		if depth < 2 {
			v := fmt.Sprintf("i%d", g.r.Intn(1000))
			g.w("{ int %s; for (%s = 0; %s < %d; %s++) {", v, v, v, 2+g.r.Intn(3), v)
			g.indent++
			g.stmt(depth + 1)
			g.indent--
			g.w("} }")
			return
		}
		g.w("tick++;")
	case 9: // call an already-generated function
		if len(g.funcs) > 0 {
			callee := g.funcs[g.r.Intn(len(g.funcs))]
			g.w("%s(&%s, %s);", callee, g.ptr(), g.ptr())
			return
		}
		g.w("tick++;")
	case 10: // swap two pointers via a local
		g.w("{ int *t = %s; %s = %s; %s = t; }", g.ptr(), g.ptr(), g.ptr(), g.ptr())
	case 11: // write through a pointer-to-pointer
		g.w("{ int **pp = &%s; *pp = %s; }", g.ptr(), g.target())
	case 12: // conditional expression
		g.w("%s = %s ? %s : %s;", g.ptr(), g.cond(), g.ptr(), g.ptr())
	default:
		g.w("tick += %d;", g.r.Intn(10))
	}
}

func (g *generator) emitFuncs() {
	n := g.cfg.NumFuncs
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("f%d", i)
		recursive := g.cfg.UseRecursion && i == n-1 && n > 1
		if recursive {
			g.w("void %s(int **a, int *b) {", name)
			g.indent++
			g.w("*a = b;")
			for s := 0; s < g.cfg.StmtsPerFunc/2; s++ {
				g.stmt(0)
			}
			// Structurally bounded recursion: rdepth only decreases.
			g.w("if (rdepth > 0) { rdepth--; %s(a, *a); }", name)
			g.indent--
			g.w("}")
		} else {
			g.w("void %s(int **a, int *b) {", name)
			g.indent++
			g.w("*a = b;")
			for s := 0; s < g.cfg.StmtsPerFunc; s++ {
				g.stmt(0)
			}
			g.indent--
			g.w("}")
		}
		g.funcs = append(g.funcs, name)
		g.w("")
	}
	if g.cfg.UseFuncPtrs && len(g.funcs) >= 2 {
		g.w("void dispatch(int k, int **a, int *b) {")
		g.indent++
		g.w("void (*fp)(int **, int *);")
		g.w("if (k %% 2) fp = %s; else fp = %s;", g.funcs[0], g.funcs[1])
		g.w("fp(a, b);")
		g.indent--
		g.w("}")
		g.w("")
	}
}

func (g *generator) emitMain() {
	g.w("int main(void) {")
	g.indent++
	// Make every pointer valid before any dereference.
	for i, p := range g.ptrs {
		g.w("%s = &%s;", p, g.ints[i%len(g.ints)])
	}
	if g.cfg.UseStructs {
		for _, s := range g.structs {
			g.w("%s.f0 = %s;", s, g.ptrs[0])
			g.w("%s.f1 = &%s;", s, g.ints[0])
		}
	}
	g.w("tick = 1;")
	g.w("rdepth = 6;")
	for s := 0; s < g.cfg.StmtsPerFunc; s++ {
		g.stmt(0)
	}
	for range g.funcs {
		g.w("%s(&%s, %s);", g.funcs[g.r.Intn(len(g.funcs))], g.ptr(), g.ptr())
	}
	if g.cfg.UseFuncPtrs && len(g.funcs) >= 2 {
		g.w("dispatch(tick, &%s, %s);", g.ptr(), g.ptr())
		g.w("dispatch(tick + 1, &%s, %s);", g.ptr(), g.ptr())
	}
	g.w("return tick & 0x7f;")
	g.indent--
	g.w("}")
}
