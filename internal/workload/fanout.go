package workload

import (
	"fmt"
	"strings"
)

// FanOut generates a wide fan-out call-graph shape: breadth independent
// callee cones, each a depth-long chain of single-caller functions over
// its own private globals, all invoked from a two-round main loop.
//
// The shape is built for the parallel pre-drain scheduler: the cones
// share no storage, so the scheduler can batch drains from all breadth
// cones into one epoch; depth controls how much sequential work each
// drained item carries. Breadth×depth therefore spans the two axes the
// worker-scaling benchmark cares about — epoch width (how much batches)
// and item weight (how long a drain runs).
//
// Each cone root is called under two input alias patterns — once with
// distinct pointer arguments, once with both naming the same pointer
// (the paper's Figure 1 shape) — so every cone carries two PTFs. The
// scheduler packs at most one item per procedure per epoch, which makes
// two dirty PTFs per cone the guarantee that a parallel run always
// forms more than one epoch.
//
// Cone i owns globals a<i>, b<i> (ints), p<i>, q<i> (point to them)
// and o<i> (the observed result). Its chain is
//
//	c<i>_0(u, v)  — the leaf: *u = *v, returns *v
//	c<i>_k(u, v)  — calls c<i>_{k-1}, k = 1..depth-1
//	r<i>(u, v)    — the cone root, stores the chain's result into o<i>
//
// breadth and depth must be at least 1 (a depth-1 cone is just
// root→leaf).
func FanOut(breadth, depth int) string {
	if breadth < 1 {
		breadth = 1
	}
	if depth < 1 {
		depth = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "/* fan-out shape: breadth=%d depth=%d */\n", breadth, depth)
	for i := 0; i < breadth; i++ {
		fmt.Fprintf(&b, "int a%d; int b%d; int *p%d; int *q%d; int *o%d;\n", i, i, i, i, i)
	}
	for i := 0; i < breadth; i++ {
		fmt.Fprintf(&b, "int *c%d_0(int **u, int **v) { *u = *v; return *v; }\n", i)
		for k := 1; k < depth; k++ {
			fmt.Fprintf(&b, "int *c%d_%d(int **u, int **v) { return c%d_%d(u, v); }\n", i, k, i, k-1)
		}
		fmt.Fprintf(&b, "void r%d(int **u, int **v) { o%d = c%d_%d(u, v); }\n", i, i, i, depth-1)
	}
	b.WriteString("void setup(void)\n{\n")
	for i := 0; i < breadth; i++ {
		fmt.Fprintf(&b, "    p%d = &a%d;\n    q%d = &b%d;\n", i, i, i, i)
	}
	b.WriteString("}\n")
	b.WriteString("int main(void)\n{\n    int k;\n")
	b.WriteString("    for (k = 0; k < 2; k++) {\n")
	for i := 0; i < breadth; i++ {
		fmt.Fprintf(&b, "        r%d(&p%d, &q%d);\n        r%d(&p%d, &p%d);\n", i, i, i, i, i, i)
	}
	// The seed assignments run after the first round of calls: on the
	// first pass every cone reads its pointers before they are seeded,
	// so the seeding dirties all cones at once and the pre-drain
	// scheduler sees the full breadth of independent items.
	b.WriteString("        setup();\n    }\n")
	b.WriteString("    return *o0;\n}\n")
	return b.String()
}

// FanOutShape names one fan-out workload of the worker-scaling suite.
type FanOutShape struct {
	Name           string
	Breadth, Depth int
}

// FanOutShapes returns the canonical shapes the worker-scaling
// benchmark and BENCH_workerscaling.json measure: a maximally wide
// shallow shape, a narrow deep one, and the balanced middle.
func FanOutShapes() []FanOutShape {
	return []FanOutShape{
		{"fanout32x1", 32, 1},
		{"fanout16x2", 16, 2},
		{"fanout8x4", 8, 4},
	}
}

// Source generates the shape's program text.
func (s FanOutShape) Source() string { return FanOut(s.Breadth, s.Depth) }
