// Pins every reproducer under testdata/open as a known, still-open
// oracle failure (see testdata/open/README.md): each file must FAIL
// the differential oracle at the stage named in its header. If one
// stops failing, the gap has been closed — the test then demands the
// file be promoted to testdata/regressions/ (with a root-cause
// comment), where TestRegressionReplay keeps it fixed forever.
// External test package for the same reason as the replay test:
// difftest imports workload.
package workload_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlpa/internal/difftest"
)

func TestOpenGapsStillOpen(t *testing.T) {
	dir := filepath.Join("testdata", "open")
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			t.Skip("no open gaps")
		}
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".c") {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			err = difftest.CheckProgram(e.Name(), string(data), difftest.Options{Workers: []int{2}})
			if err == nil {
				t.Fatalf("%s no longer fails its oracle stage: the gap is closed. "+
					"Add a root-cause comment and move the file to testdata/regressions/ "+
					"so the fix stays pinned.", e.Name())
			}
			fl, ok := err.(*difftest.Failure)
			if !ok {
				t.Fatalf("oracle returned non-Failure error: %v", err)
			}
			// The header's "reduced reproducer (stage X)" line names the
			// stage this gap is pinned to; failing at a different stage
			// would mean a new, unrelated bug.
			if want := "(stage " + fl.Stage + ")"; !strings.Contains(string(data), want) {
				t.Fatalf("%s fails at stage %q, but its header pins a different stage:\n%v",
					e.Name(), fl.Stage, fl)
			}
		})
	}
}
