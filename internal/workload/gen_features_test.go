package workload

import (
	"strings"
	"testing"

	"wlpa/internal/cparse"
	"wlpa/internal/interp"
	"wlpa/internal/sem"
)

// featureMarkers maps each generator feature to source fragments that
// prove the feature actually manifested in the emitted program.
var featureMarkers = map[Feature][]string{
	FeatHeap:         {"malloc("},
	FeatStructs:      {"struct pair"},
	FeatFuncPtrs:     {"void dispatch(", "fp ="},
	FeatRecursion:    {"if (rdepth > 0) { rdepth--;"},
	FeatMultiPtr:     {"int **q", "int ***r"},
	FeatPtrReturn:    {"int *pick0(", "int *sel("},
	FeatOutParam:     {"void mk0(int **out"},
	FeatFuncPtrField: {"struct vtab", "vt0.h"},
	FeatNestedStruct: {"struct outer", "n0."},
	FeatFree:         {"free("},
	FeatAddrLocal:    {"void chain1(int *v)", "chain1(&"},
	FeatLeak:         {"int *lk"},
	FeatTypestate:    {"void fuse0(FILE *f)", "fopen(", "fclose("},
	FeatTaint:        {"getenv(", "system("},
}

// TestGeneratorFeatures checks, per feature bit over many seeds, that
// the generated program carries the feature's constructs and is
// trap-free: it parses, type-checks, and runs to completion in the
// interpreter without faulting or exhausting fuel.
func TestGeneratorFeatures(t *testing.T) {
	for bit := 0; bit < NumFeatures(); bit++ {
		feat := Feature(1) << bit
		t.Run(feat.String(), func(t *testing.T) {
			markers, ok := featureMarkers[feat]
			if !ok {
				t.Fatalf("no markers registered for feature %s", feat)
			}
			for seed := int64(0); seed < 50; seed++ {
				cfg := FuzzGenConfig(seed, uint32(feat))
				src := Generate(cfg)
				for _, m := range markers {
					if !strings.Contains(src, m) {
						t.Fatalf("seed %d: feature %s did not manifest (missing %q):\n%s", seed, feat, m, src)
					}
				}
				runClean(t, seed, src)
			}
		})
	}
}

// TestGeneratorAllFeatures runs the combined mask: every feature in one
// program, still trap-free.
func TestGeneratorAllFeatures(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := Generate(FuzzGenConfig(seed, uint32(AllFeatures())))
		runClean(t, seed, src)
	}
}

func runClean(t *testing.T, seed int64, src string) {
	t.Helper()
	file, err := cparse.ParseSource("gen.c", src)
	if err != nil {
		t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
	}
	prog, err := sem.Check(file)
	if err != nil {
		t.Fatalf("seed %d: sem: %v\n%s", seed, err, src)
	}
	in := interp.New(prog, interp.Options{MaxSteps: 20_000_000})
	if _, err := in.Run(); err != nil {
		if interp.IsFuelExhausted(err) {
			t.Fatalf("seed %d: fuel exhausted (runaway generated program):\n%s", seed, src)
		}
		t.Fatalf("seed %d: interp fault: %v\n%s", seed, err, src)
	}
}

// TestFuzzGenConfigMasksFeatures verifies unknown high bits are masked
// off rather than producing an undefined generator configuration.
func TestFuzzGenConfigMasksFeatures(t *testing.T) {
	cfg := FuzzGenConfig(1, 0xffffffff)
	if cfg.Features != AllFeatures() {
		t.Fatalf("mask leak: %b", cfg.Features)
	}
	if cfg.Features.String() == "" {
		t.Fatal("feature mask should render")
	}
}
