package workload

import (
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/cparse"
	"wlpa/internal/interp"
	"wlpa/internal/libsum"
	"wlpa/internal/sem"
)

// TestSuiteProgramsAnalyzeAndRun checks every benchmark end to end:
// parse, analyze (PTF policy), execute, and verify soundness of the
// analysis against the execution.
func TestSuiteProgramsAnalyzeAndRun(t *testing.T) {
	suite := Suite()
	if len(suite) == 0 {
		t.Fatal("no benchmarks embedded")
	}
	for _, b := range suite {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			f, err := cparse.ParseSource(b.Name, b.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			prog, err := sem.Check(f)
			if err != nil {
				t.Fatalf("sem: %v", err)
			}
			an, err := analysis.New(prog, analysis.Options{
				Lib:             libsum.Summaries(),
				CollectSolution: true,
			})
			if err != nil {
				t.Fatalf("analysis.New: %v", err)
			}
			if err := an.Run(); err != nil {
				t.Fatalf("analysis: %v", err)
			}
			st := an.Stats()
			if st.Procedures == 0 || st.PTFs == 0 {
				t.Errorf("no procedures analyzed: %+v", st)
			}
			if avg := st.AvgPTFs(); avg > 3.0 {
				t.Errorf("avg PTFs/proc = %.2f; expected close to 1 (paper Table 2)", avg)
			}
			if !b.Runnable {
				return
			}
			in := interp.New(prog, interp.Options{RecordPointsTo: true, MaxSteps: 60_000_000})
			res, err := in.Run()
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			if res.ExitCode != 0 {
				t.Errorf("exit code = %d (stdout: %.200s)", res.ExitCode, res.Stdout)
			}
			sol := an.Solution()
			keys := sol.Locations()
			unsound := 0
			for _, fact := range res.Facts {
				if !factCovered(sol, keys, fact) {
					unsound++
					if unsound <= 3 {
						t.Errorf("UNSOUND: (%s+%d) -> (%s+%d)", fact.Block, fact.Off, fact.Target, fact.TOff)
					}
				}
			}
			if unsound > 3 {
				t.Errorf("... and %d more unsound facts", unsound-3)
			}
		})
	}
}

func TestSuiteMetadata(t *testing.T) {
	for _, b := range Suite() {
		if b.PaperProcs == 0 || b.PaperLines == 0 {
			t.Errorf("%s: missing paper reference values", b.Name)
		}
		if CountLines(b.Source) < 50 {
			t.Errorf("%s: suspiciously small (%d lines)", b.Name, CountLines(b.Source))
		}
	}
	if _, ok := ByName("alvinn"); !ok {
		t.Error("alvinn must be in the suite")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName should fail for unknown benchmarks")
	}
}
