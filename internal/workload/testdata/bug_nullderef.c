/* Seeded bug: dereference of a definitely-NULL pointer.
 * Expected: wlcheck reports nullderef (error) at the read of *p. */

int result;

int main(void)
{
    int *p = 0;
    result = *p;
    return 0;
}
