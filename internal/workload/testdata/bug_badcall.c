/* Seeded bug: an indirect call through a pointer to a data object.
 * Expected: wlcheck reports badcall (error) at the call through fp. */

int datum;

int (*fp)(void);

int main(void)
{
    fp = (int (*)(void))&datum;
    return fp();
}
