/* Seeded bug: heap storage whose last pointer is overwritten without a
 * free — never released and unreachable at exit.
 * Expected: wlcheck reports leak (error) at the malloc. */

#include <stdlib.h>

int sink;

int main(void)
{
    int *p = (int *)malloc(sizeof(int) * 4);
    if (p) {
        p[0] = 7;
        sink = p[0];
    }
    p = 0;
    return sink;
}
