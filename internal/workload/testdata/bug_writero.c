/* Seeded bug: write through a pointer that can only target a string
 * literal (read-only storage in C).
 * Expected: wlcheck reports writero (error) at the store. */

int main(void)
{
    char *s = "hello";
    *s = 'H';
    return 0;
}
