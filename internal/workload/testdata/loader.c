/*
 * loader.c - stand-in for the Landi "loader" benchmark: a linking
 * loader. Parses object "files" (embedded as text records), builds a
 * hashed symbol table with chained buckets, lays out segments, applies
 * relocations, and verifies the loaded image. Pointer-linked symbol
 * records and table-driven record dispatch, as in the original.
 */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define HASHSIZE 31
#define MEMSIZE  512
#define MAXRELOC 64

/* Object format: one record per line.
 *   M name        module start
 *   D name value  define symbol at (base + value)
 *   U name        reference (use) symbol
 *   W n v         write word v at offset n
 *   R n name      relocate: add address of name to word at offset n
 */
char *object_a =
    "M moda\n"
    "D alpha 0\n"
    "D beta 4\n"
    "W 0 100\n"
    "W 4 200\n"
    "W 8 0\n"
    "R 8 gamma\n";

char *object_b =
    "M modb\n"
    "D gamma 0\n"
    "U alpha\n"
    "W 0 300\n"
    "W 4 0\n"
    "R 4 alpha\n"
    "W 8 0\n"
    "R 8 beta\n";

struct symbol {
    char name[16];
    int value;
    int defined;
    struct symbol *chain;
};

struct reloc {
    int offset;
    struct symbol *sym;
};

struct symbol *buckets[HASHSIZE];
long memory[MEMSIZE];
struct reloc relocs[MAXRELOC];
int nrelocs;
int load_base;
int module_base;
int errors;

char *cur;
char token[32];

/* ---- tokenizer over the object text ---- */

int more_input(void)
{
    return *cur != 0;
}

void skip_blanks(void)
{
    while (*cur == ' ' || *cur == '\n' || *cur == '\t')
        cur++;
}

char *next_word(void)
{
    int n = 0;

    skip_blanks();
    while (*cur && *cur != ' ' && *cur != '\n' && n < 31) {
        token[n] = *cur;
        n++;
        cur++;
    }
    token[n] = 0;
    return token;
}

int next_number(void)
{
    char *w = next_word();
    return atoi(w);
}

/* ---- symbol table ---- */

int hash_name(char *name)
{
    int h = 0;
    while (*name) {
        h = (h * 31 + *name) % HASHSIZE;
        name++;
    }
    if (h < 0)
        h = -h;
    return h;
}

struct symbol *lookup_symbol(char *name)
{
    struct symbol *s = buckets[hash_name(name)];

    while (s) {
        if (strcmp(s->name, name) == 0)
            return s;
        s = s->chain;
    }
    return 0;
}

struct symbol *intern_symbol(char *name)
{
    struct symbol *s = lookup_symbol(name);
    int h;

    if (s)
        return s;
    s = (struct symbol *)malloc(sizeof(struct symbol));
    strcpy(s->name, name);
    s->value = 0;
    s->defined = 0;
    h = hash_name(name);
    s->chain = buckets[h];
    buckets[h] = s;
    return s;
}

void define_symbol(char *name, int value)
{
    struct symbol *s = intern_symbol(name);

    if (s->defined) {
        printf("duplicate symbol %s\n", name);
        errors++;
        return;
    }
    s->defined = 1;
    s->value = module_base + value;
}

void reference_symbol(char *name)
{
    intern_symbol(name);
}

/* ---- record handlers ---- */

void do_module(void)
{
    next_word(); /* module name */
    module_base = load_base;
}

void do_define(void)
{
    char name[16];
    int v;

    strcpy(name, next_word());
    v = next_number();
    define_symbol(name, v);
}

void do_use(void)
{
    reference_symbol(next_word());
}

void do_write(void)
{
    int off = next_number();
    long v = next_number();
    memory[module_base + off] = v;
    if (module_base + off >= load_base)
        load_base = module_base + off + 4;
}

void do_reloc(void)
{
    int off = next_number();
    struct symbol *s = intern_symbol(next_word());

    if (nrelocs < MAXRELOC) {
        relocs[nrelocs].offset = module_base + off;
        relocs[nrelocs].sym = s;
        nrelocs++;
    }
}

void bad_record(char *kind)
{
    printf("bad record kind %s\n", kind);
    errors++;
}

/* dispatch a record by its kind letter. */
void dispatch_record(char *kind)
{
    if (strcmp(kind, "M") == 0)
        do_module();
    else if (strcmp(kind, "D") == 0)
        do_define();
    else if (strcmp(kind, "U") == 0)
        do_use();
    else if (strcmp(kind, "W") == 0)
        do_write();
    else if (strcmp(kind, "R") == 0)
        do_reloc();
    else
        bad_record(kind);
}

void load_object(char *text)
{
    cur = text;
    skip_blanks();
    while (more_input()) {
        char kind[8];
        strcpy(kind, next_word());
        if (kind[0] == 0)
            break;
        dispatch_record(kind);
        skip_blanks();
    }
}

/* ---- relocation pass ---- */

int resolve_one(struct reloc *r)
{
    if (!r->sym->defined) {
        printf("undefined symbol %s\n", r->sym->name);
        errors++;
        return 0;
    }
    memory[r->offset] += r->sym->value;
    return 1;
}

int resolve_all(void)
{
    int i, ok = 1;

    for (i = 0; i < nrelocs; i++) {
        if (!resolve_one(&relocs[i]))
            ok = 0;
    }
    return ok;
}

/* ---- verification ---- */

int count_symbols(void)
{
    int i, n = 0;

    for (i = 0; i < HASHSIZE; i++) {
        struct symbol *s = buckets[i];
        while (s) {
            n++;
            s = s->chain;
        }
    }
    return n;
}

int count_undefined(void)
{
    int i, n = 0;

    for (i = 0; i < HASHSIZE; i++) {
        struct symbol *s = buckets[i];
        while (s) {
            if (!s->defined)
                n++;
            s = s->chain;
        }
    }
    return n;
}

long image_checksum(void)
{
    long sum = 0;
    int i;

    for (i = 0; i < MEMSIZE; i++)
        sum += memory[i] * (i + 1);
    return sum;
}

int main(void)
{
    long check;
    struct symbol *alpha, *gamma;

    load_base = 0;
    load_object(object_a);
    load_object(object_b);
    if (!resolve_all())
        return 2;
    alpha = lookup_symbol("alpha");
    gamma = lookup_symbol("gamma");
    if (!alpha || !gamma || !alpha->defined || !gamma->defined)
        return 3;
    check = image_checksum();
    printf("symbols %d undefined %d errors %d checksum %ld\n",
           count_symbols(), count_undefined(), errors, check);
    return (errors == 0 && count_undefined() == 0 && count_symbols() == 3) ? 0 : 1;
}
