/*
 * Reduced reproducer (stage lattice-steensgaard, found fuzzing the
 * generator's free() feature: gen(seed=1,feat=free)).
 *
 * Root cause: neither baseline modeled free(), so it fell into the
 * unknown-library-call default. Andersen's default is "everything
 * reachable from the arguments flows everywhere", which made the freed
 * heap block point to itself and leak through integer accumulators
 * into main's return value (<retval:main> -> heap@...), while
 * Steensgaard's weaker default produced no such edge — breaking
 * Andersen ⊆ Steensgaard. Fixed by modeling free (and fclose) as
 * points-to no-ops in both baselines: they copy no pointer values.
 */
int tick;
int main(void) {
    int *h = (int *)malloc(sizeof(int) * 2);
    *h = tick + 3;
    tick += *h;
    free(h);
    return tick & 0x7f;
}
