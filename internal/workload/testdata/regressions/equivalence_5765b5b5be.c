/*
 * Reduced reproducer (stage equivalence, found fuzzing
 * gen(seed=-243,feat=funcptrs+recursion+multiptr+funcptrfield)):
 * fullpass vs worklist solutions differed on f1's parameter b.
 *
 * Root cause: the worklist engine had no dependency edge for
 * function-pointer resolution chains. callTargets records a
 * parameter's resolved targets in the PTF input domain (fpDomain,
 * paper §5.1), but resolveFuncSyms follows the parameter's bindings
 * through frame-local pmaps, which the block-level read tracker never
 * sees. Here main stores f0 into vt0.h, calls dispatch (binding
 * dispatch's extended vt0-parameter to {f0}), then stores f2; the
 * re-bind at main's call site succeeded — the new value flows through
 * the parametrization — so no dirt ever reached the indirect call
 * inside f1, whose fpDomain stayed {f0} and the f1 -> f2 edge (and
 * f2's effects on *a) went missing. Fixed by registering the
 * resolving call node as a reader of every parameter the chain
 * traverses and notifying those readers when a re-bind grows a
 * function-pointer parameter's accumulated values (extendFuncPtrVals),
 * which re-dirties the indirect call, fails its fpDomain match, and
 * re-walks the callee with the grown domain.
 */
int g0;
int *p0;
int *p1;
int *p2;
int *p3;
struct vtab { void (*h)(int **, int *); int *d; };
struct vtab vt0;
int tick;
int rdepth;
void f0(int **a, int *b) {
}
void f1(int **a, int *b) {
    *a = b;
    if (rdepth > 0) { rdepth--; vt0.h(&p0, p2); }
}
void f2(int **a, int *b) {
}
void dispatch(int k, int **a, int *b) {
    void (*fp)(int **, int *);
    if (k % 2) fp = f0; else fp = f1;
    fp(a, b);
}
int main(void) {
    vt0.h = f0;
    vt0.d = &g0;
    { int i2; for (i2 = 0; i2 < 3; i2++) {
    } }
    { int i3; for (i3 = 0; i3 < 2; i3++) {
        vt0.h = f2;
    } }
    dispatch(tick, &p0, p3);
    dispatch(tick + 1, &p1, p3);
}
