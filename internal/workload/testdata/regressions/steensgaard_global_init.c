/*
 * Reduced reproducer (stage lattice-steensgaard, found by the oracle's
 * benchmark sweep during harness bring-up).
 *
 * Root cause: the Steensgaard baseline never seeded static global
 * initializers — it only walked function bodies — so a function
 * pointer (or string) stored in a global by an initializer was missing
 * from its solution while the PTF analysis and Andersen (which walk
 * prog.GlobalInits) both had it. Andersen ⊆ Steensgaard then failed on
 * edges like playbook -> play_draw in the football benchmark. Fixed by
 * adding seedGlobals/seedInit to the unification baseline.
 */
int g0;
int g1;
int *tab[2] = { &g0, &g1 };
void fn(int **a, int *b) { *a = b; }
struct op { void (*h)(int **, int *); int *d; };
struct op ops[1] = { { fn, &g0 } };
int *p;
int main(void) {
    p = tab[1];
    ops[0].h(&p, tab[0]);
    return *p;
}
