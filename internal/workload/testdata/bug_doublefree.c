/* Seeded bug: the same allocation is freed twice.
 * Expected: wlcheck reports doublefree (error) at the second free. */

#include <stdlib.h>

int main(void)
{
    char *buf = (char *)malloc(16);
    free(buf);
    free(buf);
    return 0;
}
