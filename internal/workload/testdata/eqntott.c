/*
 * eqntott.c - stand-in for SPECint92 eqntott: translate boolean
 * equations into a truth table (sum-of-products form). Builds
 * heap-allocated expression trees from an embedded equation text,
 * enumerates input assignments, collects product terms, and sorts them
 * with qsort through a comparison function pointer (the original's
 * famous hot spot), then merges compatible terms.
 */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define NVARS    5
#define MAXTERMS 64

/* expression node kinds */
#define E_VAR 0
#define E_NOT 1
#define E_AND 2
#define E_OR  3
#define E_XOR 4

struct expr {
    int kind;
    int var;
    struct expr *left;
    struct expr *right;
};

/* a product term: one value per input (0, 1, or 2 = don't care) */
struct term {
    int inputs[NVARS];
    int output;
};

/* The equations, one output per line, over variables a..e:
 *   out0 = (a & b) | (!c & d)
 *   out1 = a ^ e
 */
char *equation0 = "(a&b)|(~c&d)";
char *equation1 = "a^e";

char *parse_cursor;

struct expr *outputs[2];
int noutputs;

struct term terms[MAXTERMS];
int nterms;

int truth_count[2];

/* ---- node constructors ---- */

struct expr *new_node(int kind)
{
    struct expr *e = (struct expr *)malloc(sizeof(struct expr));
    e->kind = kind;
    e->var = -1;
    e->left = 0;
    e->right = 0;
    return e;
}

struct expr *mk_var(int v)
{
    struct expr *e = new_node(E_VAR);
    e->var = v;
    return e;
}

struct expr *mk_not(struct expr *x)
{
    struct expr *e = new_node(E_NOT);
    e->left = x;
    return e;
}

struct expr *mk_and(struct expr *l, struct expr *r)
{
    struct expr *e = new_node(E_AND);
    e->left = l;
    e->right = r;
    return e;
}

struct expr *mk_or(struct expr *l, struct expr *r)
{
    struct expr *e = new_node(E_OR);
    e->left = l;
    e->right = r;
    return e;
}

struct expr *mk_xor(struct expr *l, struct expr *r)
{
    struct expr *e = new_node(E_XOR);
    e->left = l;
    e->right = r;
    return e;
}

/* ---- recursive descent parser for equations ---- */

struct expr *parse_or(void);

int peek_char(void)
{
    return *parse_cursor;
}

int take_char(void)
{
    int c = *parse_cursor;
    if (c)
        parse_cursor++;
    return c;
}

int var_index(int c)
{
    if (c >= 'a' && c <= 'e')
        return c - 'a';
    return -1;
}

struct expr *parse_primary(void)
{
    int c = peek_char();

    if (c == '(') {
        struct expr *e;
        take_char();
        e = parse_or();
        take_char(); /* ')' */
        return e;
    }
    if (c == '~') {
        take_char();
        return mk_not(parse_primary());
    }
    take_char();
    return mk_var(var_index(c));
}

struct expr *parse_and(void)
{
    struct expr *e = parse_primary();

    while (peek_char() == '&') {
        take_char();
        e = mk_and(e, parse_primary());
    }
    return e;
}

struct expr *parse_xor(void)
{
    struct expr *e = parse_and();

    while (peek_char() == '^') {
        take_char();
        e = mk_xor(e, parse_and());
    }
    return e;
}

struct expr *parse_or(void)
{
    struct expr *e = parse_xor();

    while (peek_char() == '|') {
        take_char();
        e = mk_or(e, parse_xor());
    }
    return e;
}

struct expr *parse_equation(char *text)
{
    parse_cursor = text;
    return parse_or();
}

/* ---- evaluation ---- */

int eval_expr(struct expr *e, int *assign)
{
    switch (e->kind) {
    case E_VAR:
        return assign[e->var];
    case E_NOT:
        return !eval_expr(e->left, assign);
    case E_AND:
        return eval_expr(e->left, assign) & eval_expr(e->right, assign);
    case E_OR:
        return eval_expr(e->left, assign) | eval_expr(e->right, assign);
    case E_XOR:
        return eval_expr(e->left, assign) ^ eval_expr(e->right, assign);
    }
    return 0;
}

int count_nodes(struct expr *e)
{
    if (!e)
        return 0;
    return 1 + count_nodes(e->left) + count_nodes(e->right);
}

int max_depth(struct expr *e)
{
    int l, r;

    if (!e)
        return 0;
    l = max_depth(e->left);
    r = max_depth(e->right);
    return 1 + (l > r ? l : r);
}

void free_expr(struct expr *e)
{
    if (!e)
        return;
    free_expr(e->left);
    free_expr(e->right);
    free(e);
}

/* ---- truth table construction ---- */

void decode_assignment(int code, int *assign)
{
    int v;

    for (v = 0; v < NVARS; v++)
        assign[v] = (code >> v) & 1;
}

void add_term(int *assign, int output)
{
    int v;

    if (nterms >= MAXTERMS)
        return;
    for (v = 0; v < NVARS; v++)
        terms[nterms].inputs[v] = assign[v];
    terms[nterms].output = output;
    nterms++;
}

void enumerate_output(struct expr *e, int output)
{
    int code;
    int assign[NVARS];

    for (code = 0; code < (1 << NVARS); code++) {
        decode_assignment(code, assign);
        if (eval_expr(e, assign)) {
            add_term(assign, output);
            truth_count[output]++;
        }
    }
}

/* ---- term ordering (the qsort hot spot) ---- */

int cmppt(const void *pa, const void *pb)
{
    const struct term *a = (const struct term *)pa;
    const struct term *b = (const struct term *)pb;
    int v;

    if (a->output != b->output)
        return a->output - b->output;
    for (v = 0; v < NVARS; v++) {
        if (a->inputs[v] != b->inputs[v])
            return a->inputs[v] - b->inputs[v];
    }
    return 0;
}

void sort_terms(void)
{
    qsort(terms, nterms, sizeof(struct term), cmppt);
}

int terms_sorted(void)
{
    int i;

    for (i = 1; i < nterms; i++) {
        if (cmppt(&terms[i - 1], &terms[i]) > 0)
            return 0;
    }
    return 1;
}

/* ---- term merging: combine adjacent terms differing in one input ---- */

int differ_in_one(struct term *a, struct term *b, int *which)
{
    int v, n = 0;

    if (a->output != b->output)
        return 0;
    for (v = 0; v < NVARS; v++) {
        if (a->inputs[v] != b->inputs[v]) {
            *which = v;
            n++;
        }
    }
    return n == 1;
}

int merge_pass(void)
{
    int i, j, which, merged = 0;

    for (i = 0; i < nterms; i++) {
        for (j = i + 1; j < nterms; j++) {
            if (differ_in_one(&terms[i], &terms[j], &which)) {
                if (terms[i].inputs[which] != 2) {
                    terms[i].inputs[which] = 2; /* don't care */
                    terms[j].output = -1;       /* dead */
                    merged++;
                }
            }
        }
    }
    return merged;
}

int compact_terms(void)
{
    int i, n = 0;

    for (i = 0; i < nterms; i++) {
        if (terms[i].output >= 0) {
            if (n != i)
                terms[n] = terms[i];
            n++;
        }
    }
    nterms = n;
    return n;
}

/* ---- output ---- */

char input_char(int v)
{
    if (v == 0)
        return '0';
    if (v == 1)
        return '1';
    return '-';
}

void print_term(struct term *t)
{
    int v;

    for (v = 0; v < NVARS; v++)
        putchar(input_char(t->inputs[v]));
    printf(" -> %d\n", t->output);
}

void print_table(void)
{
    int i;

    for (i = 0; i < nterms; i++)
        print_term(&terms[i]);
}

int main(void)
{
    int total, nodes;

    outputs[0] = parse_equation(equation0);
    outputs[1] = parse_equation(equation1);
    noutputs = 2;
    nodes = count_nodes(outputs[0]) + count_nodes(outputs[1]);

    nterms = 0;
    enumerate_output(outputs[0], 0);
    enumerate_output(outputs[1], 1);
    total = nterms;
    sort_terms();
    if (!terms_sorted())
        return 2;
    while (merge_pass() > 0)
        compact_terms();
    print_table();
    printf("%d raw terms, %d merged, %d nodes, depth %d/%d\n",
           total, nterms, nodes,
           max_depth(outputs[0]), max_depth(outputs[1]));
    free_expr(outputs[0]);
    free_expr(outputs[1]);
    /* out0 true on 14 of 32, out1 on 16 of 32 */
    return (truth_count[0] == 14 && truth_count[1] == 16) ? 0 : 1;
}
