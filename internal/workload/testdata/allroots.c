/*
 * allroots.c - stand-in for the "allroots" benchmark (Landi suite): find
 * all real roots of a polynomial by Newton iteration with synthetic
 * deflation. Coefficient arrays are passed around through pointers.
 */

#include <stdio.h>
#include <math.h>

#define MAXDEG 16

double poly[MAXDEG + 1];
double work[MAXDEG + 1];
double roots[MAXDEG];
int poly_degree;
int roots_found;

/* Evaluate a polynomial (Horner) and its derivative at x. */
double eval_poly(double *c, int deg, double x, double *dval)
{
    double p = c[deg];
    double d = 0.0;
    int i;

    for (i = deg - 1; i >= 0; i--) {
        d = d * x + p;
        p = p * x + c[i];
    }
    *dval = d;
    return p;
}

/* Newton iteration from a starting guess; returns 1 on convergence. */
int newton_root(double *c, int deg, double guess, double *root)
{
    double x = guess;
    int iter;

    for (iter = 0; iter < 60; iter++) {
        double d;
        double p = eval_poly(c, deg, x, &d);
        double step;
        if (fabs(p) < 1e-12) {
            *root = x;
            return 1;
        }
        if (fabs(d) < 1e-14)
            d = d < 0 ? -1e-14 : 1e-14;
        step = p / d;
        x = x - step;
        if (fabs(step) < 1e-13) {
            *root = x;
            return 1;
        }
    }
    *root = x;
    return fabs(eval_poly(c, deg, x, &guess)) < 1e-6;
}

/* Synthetic division: divide c (degree deg) by (x - r) into out. */
void deflate(double *c, int deg, double r, double *out)
{
    double carry = c[deg];
    int i;

    for (i = deg - 1; i >= 0; i--) {
        double ci = c[i]; /* read first: deflation may run in place */
        out[i] = carry;
        carry = ci + carry * r;
    }
}

/* Find all real roots of the polynomial in work[0..deg]. */
int find_roots(int deg)
{
    int n = 0;

    while (deg > 0 && n < MAXDEG) {
        double r;
        double guess = 0.5;
        int tries = 0;
        int got = 0;

        while (tries < 8 && !got) {
            got = newton_root(work, deg, guess, &r);
            guess = guess * -1.7 + 0.3;
            tries++;
        }
        if (!got)
            break;
        roots[n] = r;
        n++;
        deflate(work, deg, r, work);
        deg--;
    }
    return n;
}

/* Build (x - 1)(x - 2)...(x - k) in poly. */
void build_poly(int k)
{
    int i, j;

    poly[0] = 1.0;
    poly_degree = 0;
    for (i = 1; i <= k; i++) {
        double r = (double)i;
        poly[poly_degree + 1] = 0.0;
        for (j = poly_degree; j >= 0; j--) {
            poly[j + 1] += poly[j];
            poly[j] = poly[j] * -r;
        }
        poly_degree++;
    }
}

int main(void)
{
    int i, n;
    double sum = 0.0;

    build_poly(6);
    for (i = 0; i <= poly_degree; i++)
        work[i] = poly[i];
    n = find_roots(poly_degree);
    roots_found = n;
    for (i = 0; i < n; i++)
        sum += roots[i];
    printf("found %d roots, sum %.3f\n", n, sum);
    /* roots of (x-1)...(x-6) sum to 21 */
    return (n == 6 && sum > 20.9 && sum < 21.1) ? 0 : 1;
}
