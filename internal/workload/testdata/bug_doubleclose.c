/* Seeded bug: the same FILE handle, reached through a pointer copy, is
 * closed twice.
 * Expected: wlcheck reports doubleclose (error) at the second fclose. */

#include <stdio.h>

int main(void)
{
    FILE *f = fopen("in.txt", "r");
    FILE *g;
    if (!f)
        return 1;
    g = f;
    fclose(f);
    fclose(g);
    return 0;
}
