/*
 * OPEN equivalence gap (pinned by TestOpenGapsStillOpen; see
 * testdata/open/README.md). Fuzzer-found, pre-existing in the worklist
 * engine: the full-pass and worklist engines converge to the same
 * surface facts but different parameter-subsumption forwarding
 * structures (subsumption decisions are history-sensitive; conflicting
 * offset deltas degrade the subsuming parameter to stride-1
 * references), and the stride-1 degradation leaks into the collapsed
 * solution as extra block-level values in one engine only. Fixing this
 * means making subsumption decisions schedule-independent — an engine
 * change out of scope for the checker-framework PR that found it.
 * When CheckProgram passes on this file, add a root-cause comment and
 * promote it to testdata/regressions/.
 *
 * reduced reproducer (stage equivalence)
 * program: gen(seed=-104,feat=funcptrs+recursion+multiptr+ptrreturn)
 * detail: fullpass vs worklist: solutions differ; first divergence:
 * a: $t1 -> {arr0, arr0+0%1, arr0+0%4, arr1, arr1+0%1, arr1+0%4, g0, g0+0%1, g1, g1+0%1}
 * b: $t1 -> {arr0, arr0+0%1, arr0+0%4, arr1, arr1+0%1, arr1+0%4, g0, g1, g1+0%1}
 */
int g0;
int *p0;
int *p1;
int *p2;
int *p3;
int arr0[8];
int arr1[8];
int tick;
int *pick0(int k) {
    if (k % 2) {
        return &arr0[4];
    }
    return arr1;
}
int *pick1(int k) {
    if (k % 2) {
    }
    return arr1;
}
int *sel(int *a, int *b, int k) {
    if (k % 3) {
        return a;
    }
    return b;
}
void f0(int **a, int *b) {
    if ((tick + 0) % 4) {
        { int i3; for (i3 = 0; i3 < 4; i3++) {
        } }
    }
}
void f1(int **a, int *b) {
    { int *t4 = p3; p0 = p0; p1 = t4; }
    p0 = pick1(tick + 4);
    { int i5; for (i5 = 0; i5 < 3; i5++) {
        p2 = p3;
    } }
}
void f2(int **a, int *b) {
    if ((tick + 4) % 2) {
    }
    if ((tick + 0) % 3) {
    }
}
void dispatch(int k, int **a, int *b) {
}
int main(void) {
    p0 = &g0;
    p3 = pick0(tick);
    p2 = sel(p3, p0, tick);
    f1(&p1, p1);
    f1(&p0, p0);
}
