/* Seeded bug: read through a pointer whose storage was freed.
 * Expected: wlcheck reports useafterfree (error) at the last read. */

#include <stdlib.h>

int result;

int main(void)
{
    int *p = (int *)malloc(sizeof(int));
    *p = 42;
    free(p);
    result = *p;
    return 0;
}
