/*
 * compress.c - stand-in for SPECint92 compress: LZW compression and
 * decompression over an embedded buffer, with the original's hash-table
 * code table and bit-packed output stream. Heavy pointer arithmetic on
 * byte buffers.
 */

#include <stdio.h>
#include <string.h>
#include <stdlib.h>

#define HSIZE   5003
#define BITS    12
#define MAXCODE ((1 << BITS) - 1)
#define FIRST   257
#define CLEAR   256

char input_text[2048];
int input_len;

unsigned char packed[4096];
int packed_bits;

unsigned char unpacked[2048];
int unpacked_len;

long hash_code[HSIZE];
long hash_prefix[HSIZE];
int hash_suffix[HSIZE];

int prefix_of[1 << BITS];
int suffix_of[1 << BITS];
int next_code;

char stack_buf[4096];

/* ---- input synthesis ---- */

void make_input(void)
{
    char *p = input_text;
    char *phrase[4];
    int i;

    phrase[0] = "the partial transfer function ";
    phrase[1] = "describes the behavior of a procedure ";
    phrase[2] = "assuming certain alias relationships ";
    phrase[3] = "hold when it is called ";
    input_len = 0;
    for (i = 0; i < 24; i++) {
        char *s = phrase[i % 4];
        while (*s && input_len < 2000) {
            *p = *s;
            p++;
            s++;
            input_len++;
        }
    }
    *p = 0;
}

/* ---- bit-packed output ---- */

void put_bits(int code, int nbits)
{
    int i;

    for (i = 0; i < nbits; i++) {
        if (code & (1 << i))
            packed[(packed_bits + i) >> 3] |= (unsigned char)(1 << ((packed_bits + i) & 7));
    }
    packed_bits += nbits;
}

int get_bits(int *cursor, int nbits)
{
    int code = 0;
    int i;

    for (i = 0; i < nbits; i++) {
        if (packed[(*cursor + i) >> 3] & (1 << ((*cursor + i) & 7)))
            code |= 1 << i;
    }
    *cursor += nbits;
    return code;
}

/* ---- hash table ---- */

void clear_table(void)
{
    int i;

    for (i = 0; i < HSIZE; i++)
        hash_code[i] = -1;
    next_code = FIRST;
}

int probe(long key)
{
    int h = (int)(key % HSIZE);
    if (h < 0)
        h += HSIZE;
    return h;
}

/* find the slot for (prefix, suffix); returns the slot index. */
int lookup_slot(long prefix, int suffix)
{
    long key = (prefix << 8) ^ suffix;
    int h = probe(key);

    while (hash_code[h] != -1) {
        if (hash_prefix[h] == prefix && hash_suffix[h] == suffix)
            return h;
        h++;
        if (h >= HSIZE)
            h = 0;
    }
    return h;
}

/* ---- compression ---- */

int compress_input(void)
{
    long prefix;
    int i, slot;
    int codes_out = 0;

    clear_table();
    packed_bits = 0;
    memset(packed, 0, sizeof(packed));

    prefix = (long)(unsigned char)input_text[0];
    for (i = 1; i < input_len; i++) {
        int c = (unsigned char)input_text[i];
        slot = lookup_slot(prefix, c);
        if (hash_code[slot] != -1) {
            prefix = hash_code[slot];
            continue;
        }
        put_bits((int)prefix, BITS);
        codes_out++;
        if (next_code <= MAXCODE) {
            hash_code[slot] = next_code;
            hash_prefix[slot] = prefix;
            hash_suffix[slot] = c;
            prefix_of[next_code] = (int)prefix;
            suffix_of[next_code] = c;
            next_code++;
        }
        prefix = c;
    }
    put_bits((int)prefix, BITS);
    codes_out++;
    return codes_out;
}

/* ---- decompression ---- */

/* expand one code onto the stack; returns the number of chars and the
 * first char through firstp. */
int expand_code(int code, char *stk, int *firstp)
{
    int n = 0;

    while (code >= FIRST) {
        stk[n] = (char)suffix_of[code];
        n++;
        code = prefix_of[code];
    }
    stk[n] = (char)code;
    n++;
    *firstp = code;
    return n;
}

void emit_expansion(char *stk, int n)
{
    while (n > 0) {
        n--;
        unpacked[unpacked_len] = (unsigned char)stk[n];
        unpacked_len++;
    }
}

int decompress_output(int ncodes)
{
    int cursor = 0;
    int i, first;
    int prev = -1;
    int prev_first = 0;
    int code = FIRST;

    unpacked_len = 0;
    for (i = 0; i < ncodes; i++) {
        int cur = get_bits(&cursor, BITS);
        int n;
        if (cur < code || prev < 0) {
            n = expand_code(cur, stack_buf, &first);
            emit_expansion(stack_buf, n);
        } else {
            /* the KwKwK case */
            n = expand_code(prev, stack_buf, &first);
            emit_expansion(stack_buf, n);
            unpacked[unpacked_len] = (unsigned char)prev_first;
            unpacked_len++;
            first = prev_first;
        }
        if (prev >= 0 && code <= MAXCODE) {
            prefix_of[code] = prev;
            suffix_of[code] = first;
            code++;
        }
        prev = cur;
        prev_first = first;
    }
    return unpacked_len;
}

int verify_roundtrip(void)
{
    int i;

    if (unpacked_len != input_len)
        return 0;
    for (i = 0; i < input_len; i++) {
        if ((char)unpacked[i] != input_text[i])
            return 0;
    }
    return 1;
}

int main(void)
{
    int ncodes, outlen, ok;

    make_input();
    ncodes = compress_input();
    /* reset the decoder's string table (codes < FIRST are literals) */
    decompress_output(0);
    outlen = decompress_output(ncodes);
    ok = verify_roundtrip();
    printf("in %d codes %d out %d ok %d\n", input_len, ncodes, outlen, ok);
    return ok ? 0 : 1;
}
