/*
 * alvinn.c - stand-in for the SPECfp92 ALVINN benchmark.
 *
 * A small back-propagation neural network (input -> hidden -> output)
 * that "drives" over a synthetic road image, matching the structure the
 * paper relies on: floating-point arrays walked through pointers, with
 * large data-parallel loops whose iterations are independent once the
 * pointer analysis shows the weight/activation arrays are unaliased.
 */

#include <stdlib.h>
#include <stdio.h>
#include <math.h>

#define NUM_INPUT  480
#define NUM_HIDDEN 24
#define NUM_OUTPUT 16
#define EPOCHS     5

float input_units[NUM_INPUT];
float hidden_units[NUM_HIDDEN];
float output_units[NUM_OUTPUT];
float target_units[NUM_OUTPUT];

float input_weights[NUM_HIDDEN][NUM_INPUT];
float output_weights[NUM_OUTPUT][NUM_HIDDEN];

float hidden_deltas[NUM_HIDDEN];
float output_deltas[NUM_OUTPUT];

float eta = 0.01f;
int seed_state = 7;

/* Pseudo-random generator so runs are deterministic. */
int next_rand(void)
{
    seed_state = seed_state * 1103515245 + 12345;
    if (seed_state < 0)
        seed_state = -seed_state;
    return seed_state;
}

float rand_weight(void)
{
    return ((float)(next_rand() % 2000) - 1000.0f) / 10000.0f;
}

/* Squashing function: fast sigmoid approximation. */
float squash(float x)
{
    if (x > 4.0f)
        return 1.0f;
    if (x < -4.0f)
        return 0.0f;
    return 0.5f + x * (0.25f - x * x * 0.005f);
}

/* Build one synthetic road image and its steering target. */
void make_pattern(int which)
{
    int i;
    float *in = input_units;
    float center = (float)(which % NUM_OUTPUT);

    for (i = 0; i < NUM_INPUT; i++) {
        float col = (float)(i % NUM_OUTPUT);
        float d = col - center;
        if (d < 0)
            d = -d;
        *in = 1.0f / (1.0f + d);
        in++;
    }
    for (i = 0; i < NUM_OUTPUT; i++) {
        float dd = (float)i - center;
        if (dd < 0)
            dd = -dd;
        target_units[i] = dd < 1.0f ? 0.9f : 0.1f;
    }
}

/* Forward pass, input layer to hidden layer. The outer loop is the
 * parallelizable hot loop: each hidden unit reads the shared input
 * activations and its own weight row. */
void input_to_hidden(void)
{
    int h, i;

    for (h = 0; h < NUM_HIDDEN; h++) {
        float sum = 0.0f;
        float *w = input_weights[h];
        float *in = input_units;
        for (i = 0; i < NUM_INPUT; i++) {
            sum += *w * *in;
            w++;
            in++;
        }
        hidden_units[h] = squash(sum);
    }
}

/* Forward pass, hidden layer to output layer. */
void hidden_to_output(void)
{
    int o, h;

    for (o = 0; o < NUM_OUTPUT; o++) {
        float sum = 0.0f;
        float *w = output_weights[o];
        for (h = 0; h < NUM_HIDDEN; h++) {
            sum += w[h] * hidden_units[h];
        }
        output_units[o] = squash(sum);
    }
}

/* Error terms for the output layer. */
void compute_output_deltas(void)
{
    int o;

    for (o = 0; o < NUM_OUTPUT; o++) {
        float y = output_units[o];
        output_deltas[o] = (target_units[o] - y) * y * (1.0f - y);
    }
}

/* Back-propagate error terms into the hidden layer. */
void compute_hidden_deltas(void)
{
    int h, o;

    for (h = 0; h < NUM_HIDDEN; h++) {
        float sum = 0.0f;
        for (o = 0; o < NUM_OUTPUT; o++) {
            sum += output_deltas[o] * output_weights[o][h];
        }
        float y = hidden_units[h];
        hidden_deltas[h] = sum * y * (1.0f - y);
    }
}

/* Weight update. The outer loops are again data parallel: each weight
 * row is owned by one hidden/output unit. */
void adjust_weights(void)
{
    int h, i, o;

    for (h = 0; h < NUM_HIDDEN; h++) {
        float *w = input_weights[h];
        float d = eta * hidden_deltas[h];
        for (i = 0; i < NUM_INPUT; i++) {
            *w += d * input_units[i];
            w++;
        }
    }
    for (o = 0; o < NUM_OUTPUT; o++) {
        float *w = output_weights[o];
        float d = eta * output_deltas[o];
        for (h = 0; h < NUM_HIDDEN; h++) {
            w[h] += d * hidden_units[h];
        }
    }
}

float epoch_error(void)
{
    int o;
    float err = 0.0f;

    for (o = 0; o < NUM_OUTPUT; o++) {
        float d = target_units[o] - output_units[o];
        err += d * d;
    }
    return err;
}

int main(void)
{
    int e, p, h, i, o;
    float total = 0.0f;

    for (h = 0; h < NUM_HIDDEN; h++)
        for (i = 0; i < NUM_INPUT; i++)
            input_weights[h][i] = rand_weight();
    for (o = 0; o < NUM_OUTPUT; o++)
        for (h = 0; h < NUM_HIDDEN; h++)
            output_weights[o][h] = rand_weight();

    for (e = 0; e < EPOCHS; e++) {
        total = 0.0f;
        for (p = 0; p < 4; p++) {
            make_pattern(p * 3 + e);
            input_to_hidden();
            hidden_to_output();
            compute_output_deltas();
            compute_hidden_deltas();
            adjust_weights();
            total += epoch_error();
        }
    }
    printf("final error %.4f\n", total);
    return total < 100.0f ? 0 : 1;
}
