/* Seeded bug: dereference of an uninitialized pointer.
 * Expected: wlcheck reports uninitderef (error) at the read of *p. */

int result;

int main(void)
{
    int *p;
    result = *p;
    return 0;
}
