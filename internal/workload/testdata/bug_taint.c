/* Seeded bug: an environment variable (attacker-controlled) is copied
 * through a buffer in a helper and handed to system().
 * Expected: wlcheck reports taintflow (error) at the system call. */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

char cmd[64];

void build(const char *name)
{
    strcpy(cmd, "echo ");
    strcat(cmd, name);
}

int main(void)
{
    char *e = getenv("USER_CMD");
    if (!e)
        return 1;
    build(e);
    system(cmd);
    return 0;
}
