/* Seeded bug: a procedure returns the address of one of its locals.
 * Expected: wlcheck reports localescape (error) in grab. */

int *held;

int *grab(void)
{
    int slot;
    slot = 7;
    return &slot;
}

int main(void)
{
    held = grab();
    return 0;
}
