/*
 * lex315.c - stand-in for the Landi "lex315" benchmark: a table-driven
 * lexical analyzer. Builds a small DFA from hard-wired token
 * descriptions, then scans an embedded input, producing a token stream.
 * Exercises tables of pointers and state-machine code.
 */

#include <stdio.h>
#include <string.h>
#include <stdlib.h>

#define NSTATES   16
#define NCLASSES  8
#define MAXTOKENS 256

/* character classes */
#define C_LETTER 0
#define C_DIGIT  1
#define C_SPACE  2
#define C_OP     3
#define C_LPAREN 4
#define C_RPAREN 5
#define C_SEMI   6
#define C_OTHER  7

/* token kinds */
#define TK_IDENT  1
#define TK_NUMBER 2
#define TK_OP     3
#define TK_LPAREN 4
#define TK_RPAREN 5
#define TK_SEMI   6

char *input =
    "alpha = beta + 42; (gamma * 17) ;\n"
    "delta = alpha + beta - 9 ;\n"
    "x1 = (y2 + z3) * 100 ;\n";

int trans[NSTATES][NCLASSES];
int accept_kind[NSTATES];

struct token {
    int kind;
    char text[32];
    struct token *link;
};

struct token *token_list;
struct token *token_tail;
int token_count;
int kind_counts[8];

/* ---- character classification ---- */

int classify(int c)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_')
        return C_LETTER;
    if (c >= '0' && c <= '9')
        return C_DIGIT;
    if (c == ' ' || c == '\t' || c == '\n')
        return C_SPACE;
    if (c == '+' || c == '-' || c == '*' || c == '/' || c == '=')
        return C_OP;
    if (c == '(')
        return C_LPAREN;
    if (c == ')')
        return C_RPAREN;
    if (c == ';')
        return C_SEMI;
    return C_OTHER;
}

/* ---- DFA construction ---- */

void set_default(int state, int target)
{
    int c;
    for (c = 0; c < NCLASSES; c++)
        trans[state][c] = target;
}

void add_edge(int state, int class, int target)
{
    trans[state][class] = target;
}

void mark_accept(int state, int kind)
{
    accept_kind[state] = kind;
}

void build_dfa(void)
{
    int s;

    for (s = 0; s < NSTATES; s++) {
        set_default(s, -1);
        accept_kind[s] = 0;
    }
    /* state 0: start */
    add_edge(0, C_LETTER, 1);
    add_edge(0, C_DIGIT, 2);
    add_edge(0, C_OP, 3);
    add_edge(0, C_LPAREN, 4);
    add_edge(0, C_RPAREN, 5);
    add_edge(0, C_SEMI, 6);
    /* state 1: identifier */
    add_edge(1, C_LETTER, 1);
    add_edge(1, C_DIGIT, 1);
    mark_accept(1, TK_IDENT);
    /* state 2: number */
    add_edge(2, C_DIGIT, 2);
    mark_accept(2, TK_NUMBER);
    /* single-char tokens */
    mark_accept(3, TK_OP);
    mark_accept(4, TK_LPAREN);
    mark_accept(5, TK_RPAREN);
    mark_accept(6, TK_SEMI);
}

/* ---- token construction ---- */

struct token *new_token(int kind, char *text, int len)
{
    struct token *t = (struct token *)malloc(sizeof(struct token));
    int i;

    t->kind = kind;
    for (i = 0; i < len && i < 31; i++)
        t->text[i] = text[i];
    t->text[i] = 0;
    t->link = 0;
    return t;
}

void append_token(struct token *t)
{
    if (token_tail)
        token_tail->link = t;
    else
        token_list = t;
    token_tail = t;
    token_count++;
    kind_counts[t->kind]++;
}

/* ---- the scanner ---- */

char *skip_space(char *p)
{
    while (*p && classify(*p) == C_SPACE)
        p++;
    return p;
}

/* scan one token starting at p; returns the pointer past it, or 0 on
 * a character no token can start with. */
char *scan_token(char *p)
{
    int state = 0;
    char *start = p;
    int last_accept = 0;
    char *last_end = 0;

    for (;;) {
        int cls, next;
        if (*p == 0)
            break;
        cls = classify(*p);
        next = trans[state][cls];
        if (next < 0)
            break;
        state = next;
        p++;
        if (accept_kind[state]) {
            last_accept = accept_kind[state];
            last_end = p;
        }
    }
    if (!last_accept)
        return 0;
    append_token(new_token(last_accept, start, (int)(last_end - start)));
    return last_end;
}

int scan_input(char *text)
{
    char *p = text;

    token_list = 0;
    token_tail = 0;
    token_count = 0;
    while (*p) {
        p = skip_space(p);
        if (*p == 0)
            break;
        p = scan_token(p);
        if (!p)
            return 0;
    }
    return 1;
}

/* ---- reporting ---- */

char *kind_name(int kind)
{
    switch (kind) {
    case TK_IDENT:
        return "ident";
    case TK_NUMBER:
        return "number";
    case TK_OP:
        return "op";
    case TK_LPAREN:
        return "lparen";
    case TK_RPAREN:
        return "rparen";
    case TK_SEMI:
        return "semi";
    }
    return "?";
}

void dump_tokens(void)
{
    struct token *t = token_list;
    while (t) {
        printf("%s %s\n", kind_name(t->kind), t->text);
        t = t->link;
    }
}

int verify_counts(void)
{
    /* 9 identifiers, 4 numbers, 9 operators, 2 parens each, 4 semis */
    return kind_counts[TK_IDENT] == 9 && kind_counts[TK_NUMBER] == 4 &&
           kind_counts[TK_OP] == 9 && kind_counts[TK_LPAREN] == 2 &&
           kind_counts[TK_RPAREN] == 2 && kind_counts[TK_SEMI] == 4;
}

int main(void)
{
    build_dfa();
    if (!scan_input(input)) {
        printf("scan error\n");
        return 2;
    }
    dump_tokens();
    printf("%d tokens\n", token_count);
    return verify_counts() ? 0 : 1;
}
