/*
 * diff.c - stand-in for the Unix diff utility: split two embedded texts
 * into line tables (heap-allocated, hashed), compute a longest common
 * subsequence by dynamic programming, and emit an edit script. The line
 * tables exercise heap allocation, pointer-linked records and string
 * handling the way the original does.
 */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define MAXLINES 64

char *text_a =
    "the analysis must be efficient\n"
    "without sacrificing accuracy\n"
    "pointer analysis algorithms\n"
    "must handle real c programs\n"
    "only very conservative estimates\n"
    "are possible otherwise\n"
    "a single control flow graph\n"
    "suffers from unrealizable paths\n";

char *text_b =
    "the analysis must be efficient\n"
    "pointer analysis algorithms\n"
    "must handle all c programs\n"
    "only very conservative estimates\n"
    "are possible otherwise\n"
    "values can propagate from one call site\n"
    "a single control flow graph\n"
    "suffers from unrealizable paths\n";

struct line {
    char *text;
    long hash;
    int serial;
    struct line *next;
};

struct line *lines_a[MAXLINES];
struct line *lines_b[MAXLINES];
int count_a;
int count_b;

int lcs[MAXLINES + 1][MAXLINES + 1];
int edits;

/* ---- line table construction ---- */

long hash_line(char *s)
{
    long h = 5381;
    while (*s) {
        h = h * 33 + *s;
        s++;
    }
    return h;
}

int line_length(char *s)
{
    int n = 0;
    while (s[n] && s[n] != '\n')
        n++;
    return n;
}

char *copy_line(char *s, int n)
{
    char *out = (char *)malloc(n + 1);
    int i;
    for (i = 0; i < n; i++)
        out[i] = s[i];
    out[n] = 0;
    return out;
}

struct line *make_line(char *s, int n, int serial)
{
    struct line *l = (struct line *)malloc(sizeof(struct line));
    l->text = copy_line(s, n);
    l->hash = hash_line(l->text);
    l->serial = serial;
    l->next = 0;
    return l;
}

int split_text(char *text, struct line **table)
{
    char *p = text;
    int n = 0;

    while (*p && n < MAXLINES) {
        int len = line_length(p);
        table[n] = make_line(p, len, n);
        if (n > 0)
            table[n - 1]->next = table[n];
        n++;
        p = p + len;
        if (*p == '\n')
            p++;
    }
    return n;
}

/* ---- comparison ---- */

int same_line(struct line *x, struct line *y)
{
    if (x->hash != y->hash)
        return 0;
    return strcmp(x->text, y->text) == 0;
}

int max_of(int a, int b)
{
    return a > b ? a : b;
}

void build_lcs(void)
{
    int i, j;

    for (i = 0; i <= count_a; i++)
        lcs[i][0] = 0;
    for (j = 0; j <= count_b; j++)
        lcs[0][j] = 0;
    for (i = 1; i <= count_a; i++) {
        for (j = 1; j <= count_b; j++) {
            if (same_line(lines_a[i - 1], lines_b[j - 1]))
                lcs[i][j] = lcs[i - 1][j - 1] + 1;
            else
                lcs[i][j] = max_of(lcs[i - 1][j], lcs[i][j - 1]);
        }
    }
}

/* ---- edit script ---- */

void emit_delete(struct line *l)
{
    printf("< %s\n", l->text);
    edits++;
}

void emit_insert(struct line *l)
{
    printf("> %s\n", l->text);
    edits++;
}

void emit_common(struct line *l)
{
    (void)l;
}

void walk_script(int i, int j)
{
    if (i > 0 && j > 0 && same_line(lines_a[i - 1], lines_b[j - 1])) {
        walk_script(i - 1, j - 1);
        emit_common(lines_a[i - 1]);
        return;
    }
    if (j > 0 && (i == 0 || lcs[i][j - 1] >= lcs[i - 1][j])) {
        walk_script(i, j - 1);
        emit_insert(lines_b[j - 1]);
        return;
    }
    if (i > 0) {
        walk_script(i - 1, j);
        emit_delete(lines_a[i - 1]);
    }
}

/* ---- bookkeeping helpers ---- */

struct line *find_by_serial(struct line *head, int serial)
{
    struct line *l = head;
    while (l) {
        if (l->serial == serial)
            return l;
        l = l->next;
    }
    return 0;
}

int count_common(void)
{
    return lcs[count_a][count_b];
}

void free_table(struct line **table, int n)
{
    int i;
    for (i = 0; i < n; i++) {
        free(table[i]->text);
        free(table[i]);
    }
}

int check_chain(struct line **table, int n)
{
    /* every line must be reachable from the head via next pointers */
    int i;
    for (i = 0; i < n; i++) {
        if (find_by_serial(table[0], i) != table[i])
            return 0;
    }
    return 1;
}

int main(void)
{
    int common;

    count_a = split_text(text_a, lines_a);
    count_b = split_text(text_b, lines_b);
    if (!check_chain(lines_a, count_a) || !check_chain(lines_b, count_b))
        return 2;
    build_lcs();
    common = count_common();
    edits = 0;
    walk_script(count_a, count_b);
    printf("%d common, %d edits\n", common, edits);
    free_table(lines_a, count_a);
    free_table(lines_b, count_b);
    /* 6 shared lines, 2 deletions + 2 insertions */
    return (common == 6 && edits == 4) ? 0 : 1;
}
