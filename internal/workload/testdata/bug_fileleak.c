/* Seeded bug: a FILE handle opened in a helper is never closed before
 * main returns.
 * Expected: wlcheck reports fileleak (error) at the fopen. */

#include <stdio.h>

FILE *openlog(void)
{
    return fopen("log.txt", "w");
}

int main(void)
{
    FILE *f = openlog();
    if (!f)
        return 1;
    fputc('x', f);
    return 0;
}
