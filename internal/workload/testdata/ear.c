/*
 * ear.c - stand-in for the SPECfp92 "ear" benchmark (Lyon's cochlea
 * model). A cascade of second-order filters models the basilar membrane;
 * each channel is followed by a half-wave rectifier and four automatic
 * gain control stages. The characteristic shape for the parallelization
 * experiment: the hot loops iterate over channels with a tiny body, so
 * each loop invocation is very short and is invoked once per sample.
 */

#include <stdio.h>
#include <math.h>

#define NCHAN    24
#define NSAMPLES 220
#define PI       3.14159265358979

double ear_q = 8.0;
double step_factor = 0.25;
double sample_rate = 16000.0;

/* One biquad section per channel. */
double filter_a0[NCHAN];
double filter_a1[NCHAN];
double filter_a2[NCHAN];
double filter_b1[NCHAN];
double filter_b2[NCHAN];

double state1[NCHAN];
double state2[NCHAN];

double channel_out[NCHAN];
double rectified[NCHAN];

double agc_state1[NCHAN];
double agc_state2[NCHAN];
double agc_state3[NCHAN];
double agc_state4[NCHAN];

double agc_target1 = 0.0032;
double agc_target2 = 0.0016;
double agc_target3 = 0.0008;
double agc_target4 = 0.0004;

double input_signal[NSAMPLES];
double output_energy[NCHAN];

double decim_buffer[NCHAN];
int decim_count = 0;

/* ---- filter design helpers ---- */

double center_freq(int chan)
{
    return 120.0 * pow(1.18, (double)(NCHAN - chan));
}

double channel_bandwidth(double cf)
{
    return cf / ear_q + 40.0;
}

double pole_radius(double bw)
{
    return exp(-PI * bw / sample_rate);
}

double pole_angle(double cf)
{
    return 2.0 * PI * cf / sample_rate;
}

double gain_for(double r, double theta)
{
    double g = (1.0 - r) * (1.0 - r) + 2.0 * r * (1.0 - cos(theta));
    return g * 0.5;
}

void design_channel(int chan)
{
    double cf = center_freq(chan);
    double bw = channel_bandwidth(cf);
    double r = pole_radius(bw);
    double theta = pole_angle(cf);

    filter_b1[chan] = -2.0 * r * cos(theta);
    filter_b2[chan] = r * r;
    filter_a0[chan] = gain_for(r, theta);
    filter_a1[chan] = 0.0;
    filter_a2[chan] = -filter_a0[chan];
}

void design_filterbank(void)
{
    int c;
    for (c = 0; c < NCHAN; c++)
        design_channel(c);
}

/* ---- per-sample processing stages ---- */

/* One second-order step for one channel (direct form II). */
double biquad_step(int c, double x)
{
    double w = x - filter_b1[c] * state1[c] - filter_b2[c] * state2[c];
    double y = filter_a0[c] * w + filter_a1[c] * state1[c] + filter_a2[c] * state2[c];
    state2[c] = state1[c];
    state1[c] = w;
    return y;
}

/* The cascade: each channel filters the previous channel's output.
 * The per-channel loop body is tiny - this is the fine-grained loop the
 * parallelization experiment measures. */
void filter_cascade(double x)
{
    int c;
    double sig = x;

    for (c = 0; c < NCHAN; c++) {
        sig = biquad_step(c, sig);
        channel_out[c] = sig;
    }
}

double half_wave(double x)
{
    return x > 0.0 ? x : 0.0;
}

void rectify_channels(void)
{
    int c;
    for (c = 0; c < NCHAN; c++)
        rectified[c] = half_wave(channel_out[c]);
}

/* One AGC stage: a leaky integrator per channel with a shared target. */
double agc_step(double x, double *st, double target)
{
    double s = *st;
    double g = 1.0 - s;
    double y = x * g;
    *st = s + (y - target) * step_factor * 0.1;
    if (*st < 0.0)
        *st = 0.0;
    if (*st > 0.9)
        *st = 0.9;
    return y;
}

void agc_stage1(void)
{
    int c;
    for (c = 0; c < NCHAN; c++)
        rectified[c] = agc_step(rectified[c], &agc_state1[c], agc_target1);
}

void agc_stage2(void)
{
    int c;
    for (c = 0; c < NCHAN; c++)
        rectified[c] = agc_step(rectified[c], &agc_state2[c], agc_target2);
}

void agc_stage3(void)
{
    int c;
    for (c = 0; c < NCHAN; c++)
        rectified[c] = agc_step(rectified[c], &agc_state3[c], agc_target3);
}

void agc_stage4(void)
{
    int c;
    for (c = 0; c < NCHAN; c++)
        rectified[c] = agc_step(rectified[c], &agc_state4[c], agc_target4);
}

/* Energy accumulation per channel. */
void accumulate_energy(void)
{
    int c;
    for (c = 0; c < NCHAN; c++)
        output_energy[c] += rectified[c] * rectified[c];
}

/* 2:1 decimation of the rectified outputs. */
void decimate_outputs(void)
{
    int c;
    decim_count++;
    if (decim_count % 2)
        return;
    for (c = 0; c < NCHAN; c++)
        decim_buffer[c] = 0.5 * (decim_buffer[c] + rectified[c]);
}

/* ---- input synthesis ---- */

double tone(double t, double f)
{
    return sin(2.0 * PI * f * t);
}

double chirp(double t)
{
    return sin(2.0 * PI * (300.0 + 800.0 * t) * t);
}

void make_input(void)
{
    int i;
    for (i = 0; i < NSAMPLES; i++) {
        double t = (double)i / sample_rate;
        input_signal[i] = 0.6 * tone(t, 440.0) + 0.3 * chirp(t);
    }
}

/* ---- state management ---- */

void reset_states(void)
{
    int c;
    for (c = 0; c < NCHAN; c++) {
        state1[c] = 0.0;
        state2[c] = 0.0;
        agc_state1[c] = 0.0;
        agc_state2[c] = 0.0;
        agc_state3[c] = 0.0;
        agc_state4[c] = 0.0;
        output_energy[c] = 0.0;
        decim_buffer[c] = 0.0;
    }
}

/* One full sample through the model. */
void process_sample(double x)
{
    filter_cascade(x);
    rectify_channels();
    agc_stage1();
    agc_stage2();
    agc_stage3();
    agc_stage4();
    accumulate_energy();
    decimate_outputs();
}

void process_signal(void)
{
    int i;
    for (i = 0; i < NSAMPLES; i++)
        process_sample(input_signal[i]);
}

int peak_channel(void)
{
    int c, best = 0;
    double bestv = -1.0;
    for (c = 0; c < NCHAN; c++) {
        if (output_energy[c] > bestv) {
            bestv = output_energy[c];
            best = c;
        }
    }
    return best;
}

double total_energy(void)
{
    int c;
    double t = 0.0;
    for (c = 0; c < NCHAN; c++)
        t += output_energy[c];
    return t;
}

int main(void)
{
    int peak;
    double tot;

    design_filterbank();
    reset_states();
    make_input();
    process_signal();
    peak = peak_channel();
    tot = total_energy();
    printf("peak channel %d total %.5f\n", peak, tot);
    return peak >= 0 && peak < NCHAN ? 0 : 1;
}
