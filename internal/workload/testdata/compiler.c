/*
 * compiler.c - stand-in for the "compiler" benchmark from the paper's
 * Table 2: a small compiler built around a recursive descent parser.
 * The deeply mutually recursive parse functions and the many call sites
 * are exactly what makes the Emami-style invocation graph explode
 * (>700,000 nodes for 37 procedures, paper section 7), while the PTF
 * analysis needs about one PTF per procedure.
 *
 * The language: statements (var, if, while, print, blocks), integer
 * expressions with the usual operator precedence. Compiles to a tiny
 * stack machine and runs the result.
 */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

/* ---- the program being compiled (embedded source) ---- */

char *source =
    "var n; var f; var i;\n"
    "n = 10; f = 1; i = 1;\n"
    "while (i <= n) { f = f * i; i = i + 1; }\n"
    "print f;\n"
    "var a; var b; var t; var k;\n"
    "a = 0; b = 1; k = 0;\n"
    "while (k < 15) {\n"
    "  t = a + b; a = b; b = t; k = k + 1;\n"
    "  if (a > 100) { print a; } else { print b; }\n"
    "}\n";

/* ---- tokens ---- */

#define T_EOF    0
#define T_NUM    1
#define T_IDENT  2
#define T_PUNCT  3
#define T_KEYW   4

char token_text[64];
int token_kind;
long token_value;
char *cursor;

int is_keyword(char *s)
{
    return strcmp(s, "var") == 0 || strcmp(s, "if") == 0 ||
           strcmp(s, "else") == 0 || strcmp(s, "while") == 0 ||
           strcmp(s, "print") == 0;
}

void next_token(void)
{
    char *p = cursor;
    int n = 0;

    while (*p == ' ' || *p == '\n' || *p == '\t')
        p++;
    if (*p == 0) {
        token_kind = T_EOF;
        token_text[0] = 0;
        cursor = p;
        return;
    }
    if (isdigit(*p)) {
        token_value = 0;
        while (isdigit(*p)) {
            token_value = token_value * 10 + (*p - '0');
            p++;
        }
        token_kind = T_NUM;
        cursor = p;
        return;
    }
    if (isalpha(*p) || *p == '_') {
        while ((isalnum(*p) || *p == '_') && n < 63) {
            token_text[n] = *p;
            n++;
            p++;
        }
        token_text[n] = 0;
        token_kind = is_keyword(token_text) ? T_KEYW : T_IDENT;
        cursor = p;
        return;
    }
    /* punctuation, with two-char operators */
    token_text[0] = *p;
    token_text[1] = 0;
    p++;
    if ((token_text[0] == '<' || token_text[0] == '>' ||
         token_text[0] == '=' || token_text[0] == '!') && *p == '=') {
        token_text[1] = '=';
        token_text[2] = 0;
        p++;
    }
    token_kind = T_PUNCT;
    cursor = p;
}

int accept_punct(char *s)
{
    if (token_kind == T_PUNCT && strcmp(token_text, s) == 0) {
        next_token();
        return 1;
    }
    return 0;
}

int accept_keyword(char *s)
{
    if (token_kind == T_KEYW && strcmp(token_text, s) == 0) {
        next_token();
        return 1;
    }
    return 0;
}

void expect_punct(char *s)
{
    if (!accept_punct(s)) {
        printf("parse error: expected %s got %s\n", s, token_text);
        exit(1);
    }
}

/* ---- symbol table ---- */

#define MAXVARS 64

struct variable {
    char name[32];
    int slot;
    struct variable *next;
};

struct variable *var_list = 0;
int var_count = 0;

struct variable *find_var(char *name)
{
    struct variable *v = var_list;
    while (v) {
        if (strcmp(v->name, name) == 0)
            return v;
        v = v->next;
    }
    return 0;
}

struct variable *declare_var(char *name)
{
    struct variable *v = (struct variable *)malloc(sizeof(struct variable));
    strcpy(v->name, name);
    v->slot = var_count;
    var_count = var_count + 1;
    v->next = var_list;
    var_list = v;
    return v;
}

int var_slot(char *name)
{
    struct variable *v = find_var(name);
    if (!v) {
        printf("undeclared variable %s\n", name);
        exit(1);
    }
    return v->slot;
}

/* ---- code buffer ---- */

#define OP_PUSH  1
#define OP_LOAD  2
#define OP_STORE 3
#define OP_ADD   4
#define OP_SUB   5
#define OP_MUL   6
#define OP_DIV   7
#define OP_LT    8
#define OP_GT    9
#define OP_LE    10
#define OP_GE    11
#define OP_EQ    12
#define OP_NE    13
#define OP_JZ    14
#define OP_JMP   15
#define OP_PRINT 16
#define OP_HALT  17
#define OP_NEG   18

#define MAXCODE 2048

long code[MAXCODE];
int code_len = 0;

void emit(long op)
{
    code[code_len] = op;
    code_len = code_len + 1;
}

void emit2(long op, long arg)
{
    emit(op);
    emit(arg);
}

int emit_jump(long op)
{
    int at = code_len;
    emit2(op, 0);
    return at;
}

void patch_jump(int at)
{
    code[at + 1] = code_len;
}

/* ---- recursive descent parser / code generator ---- */

void parse_expr(void);

void parse_primary(void)
{
    if (token_kind == T_NUM) {
        emit2(OP_PUSH, token_value);
        next_token();
        return;
    }
    if (token_kind == T_IDENT) {
        emit2(OP_LOAD, var_slot(token_text));
        next_token();
        return;
    }
    if (accept_punct("(")) {
        parse_expr();
        expect_punct(")");
        return;
    }
    printf("parse error at %s\n", token_text);
    exit(1);
}

void parse_unary(void)
{
    if (accept_punct("-")) {
        parse_unary();
        emit(OP_NEG);
        return;
    }
    parse_primary();
}

void parse_term(void)
{
    parse_unary();
    for (;;) {
        if (accept_punct("*")) {
            parse_unary();
            emit(OP_MUL);
        } else if (accept_punct("/")) {
            parse_unary();
            emit(OP_DIV);
        } else {
            return;
        }
    }
}

void parse_additive(void)
{
    parse_term();
    for (;;) {
        if (accept_punct("+")) {
            parse_term();
            emit(OP_ADD);
        } else if (accept_punct("-")) {
            parse_term();
            emit(OP_SUB);
        } else {
            return;
        }
    }
}

void parse_relational(void)
{
    parse_additive();
    for (;;) {
        if (accept_punct("<=")) {
            parse_additive();
            emit(OP_LE);
        } else if (accept_punct(">=")) {
            parse_additive();
            emit(OP_GE);
        } else if (accept_punct("<")) {
            parse_additive();
            emit(OP_LT);
        } else if (accept_punct(">")) {
            parse_additive();
            emit(OP_GT);
        } else {
            return;
        }
    }
}

void parse_equality(void)
{
    parse_relational();
    for (;;) {
        if (accept_punct("==")) {
            parse_relational();
            emit(OP_EQ);
        } else if (accept_punct("!=")) {
            parse_relational();
            emit(OP_NE);
        } else {
            return;
        }
    }
}

void parse_expr(void)
{
    parse_equality();
}

void parse_statement(void);

void parse_block(void)
{
    expect_punct("{");
    while (token_kind != T_EOF && !(token_kind == T_PUNCT && token_text[0] == '}'))
        parse_statement();
    expect_punct("}");
}

void parse_var_decl(void)
{
    if (token_kind != T_IDENT) {
        printf("expected identifier after var\n");
        exit(1);
    }
    declare_var(token_text);
    next_token();
    expect_punct(";");
}

void parse_assignment(void)
{
    int slot = var_slot(token_text);
    next_token();
    expect_punct("=");
    parse_expr();
    expect_punct(";");
    emit2(OP_STORE, slot);
}

void parse_if(void)
{
    int jz, jend;

    expect_punct("(");
    parse_expr();
    expect_punct(")");
    jz = emit_jump(OP_JZ);
    parse_statement();
    if (accept_keyword("else")) {
        jend = emit_jump(OP_JMP);
        patch_jump(jz);
        parse_statement();
        patch_jump(jend);
    } else {
        patch_jump(jz);
    }
}

void parse_while(void)
{
    int top = code_len;
    int jz;

    expect_punct("(");
    parse_expr();
    expect_punct(")");
    jz = emit_jump(OP_JZ);
    parse_statement();
    emit2(OP_JMP, top);
    patch_jump(jz);
}

void parse_print(void)
{
    parse_expr();
    expect_punct(";");
    emit(OP_PRINT);
}

void parse_statement(void)
{
    if (accept_keyword("var")) {
        parse_var_decl();
        return;
    }
    if (accept_keyword("if")) {
        parse_if();
        return;
    }
    if (accept_keyword("while")) {
        parse_while();
        return;
    }
    if (accept_keyword("print")) {
        parse_print();
        return;
    }
    if (token_kind == T_PUNCT && token_text[0] == '{') {
        parse_block();
        return;
    }
    if (token_kind == T_IDENT) {
        parse_assignment();
        return;
    }
    printf("unexpected token %s\n", token_text);
    exit(1);
}

void parse_program(void)
{
    while (token_kind != T_EOF)
        parse_statement();
    emit(OP_HALT);
}

/* ---- the stack machine ---- */

long stack[256];
long slots[MAXVARS];
long last_printed = 0;

long pop2_apply(long op, long a, long b)
{
    switch (op) {
    case OP_ADD: return a + b;
    case OP_SUB: return a - b;
    case OP_MUL: return a * b;
    case OP_DIV: return b ? a / b : 0;
    case OP_LT:  return a < b;
    case OP_GT:  return a > b;
    case OP_LE:  return a <= b;
    case OP_GE:  return a >= b;
    case OP_EQ:  return a == b;
    case OP_NE:  return a != b;
    }
    return 0;
}

void run_code(void)
{
    int pc = 0;
    int sp = 0;

    for (;;) {
        long op = code[pc];
        if (op == OP_HALT)
            return;
        if (op == OP_PUSH) {
            stack[sp] = code[pc + 1];
            sp = sp + 1;
            pc = pc + 2;
        } else if (op == OP_LOAD) {
            stack[sp] = slots[code[pc + 1]];
            sp = sp + 1;
            pc = pc + 2;
        } else if (op == OP_STORE) {
            sp = sp - 1;
            slots[code[pc + 1]] = stack[sp];
            pc = pc + 2;
        } else if (op == OP_JZ) {
            sp = sp - 1;
            if (stack[sp] == 0)
                pc = (int)code[pc + 1];
            else
                pc = pc + 2;
        } else if (op == OP_JMP) {
            pc = (int)code[pc + 1];
        } else if (op == OP_PRINT) {
            sp = sp - 1;
            last_printed = stack[sp];
            printf("%d\n", (int)stack[sp]);
            pc = pc + 1;
        } else if (op == OP_NEG) {
            stack[sp - 1] = -stack[sp - 1];
            pc = pc + 1;
        } else {
            sp = sp - 2;
            stack[sp] = pop2_apply(op, stack[sp], stack[sp + 1]);
            sp = sp + 1;
            pc = pc + 1;
        }
    }
}

int main(void)
{
    cursor = source;
    next_token();
    parse_program();
    run_code();
    return last_printed == 610 ? 0 : (int)(last_printed & 0xff);
}
