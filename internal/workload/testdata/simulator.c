/*
 * simulator.c - stand-in for the Landi "simulator" benchmark (the
 * largest program in the paper's Table 2): an instruction-level CPU
 * simulator. A dispatch table of function pointers selects one handler
 * per opcode; the machine has registers, flags, a memory bus with a
 * small device region, and a cycle-accurate-ish cost model. The
 * simulated program computes checksums that validate the run.
 */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define NREGS   16
#define MEMSIZE 1024
#define NOPS    32

/* opcodes */
#define I_NOP   0
#define I_LDI   1
#define I_MOV   2
#define I_ADD   3
#define I_SUB   4
#define I_MUL   5
#define I_DIV   6
#define I_AND   7
#define I_OR    8
#define I_XOR   9
#define I_SHL   10
#define I_SHR   11
#define I_NEG   12
#define I_NOT   13
#define I_CMP   14
#define I_LD    15
#define I_STO   16
#define I_LDX   17
#define I_STX   18
#define I_JMP   19
#define I_JEQ   20
#define I_JNE   21
#define I_JLT   22
#define I_JGT   23
#define I_CALL  24
#define I_RET   25
#define I_PUSH  26
#define I_POP   27
#define I_IN    28
#define I_OUT   29
#define I_INC   30
#define I_HALT  31

struct cpu {
    long regs[NREGS];
    int pc;
    int sp;
    int zflag;
    int nflag;
    long cycles;
    int halted;
    int fault;
};

struct instr {
    int op;
    int a;
    int b;
    int c;
};

struct device {
    char name[12];
    long (*read)(int port);
    void (*write)(int port, long v);
};

struct cpu machine;
long memory[MEMSIZE];
struct instr program[256];
int program_len;

long console_sum;
long timer_ticks;

typedef void (*handler_fn)(struct cpu *m, struct instr *i);
handler_fn dispatch[NOPS];
long op_counts[NOPS];

/* ---- flags ---- */

void set_flags(struct cpu *m, long v)
{
    m->zflag = v == 0;
    m->nflag = v < 0;
}

int flags_eq(struct cpu *m)
{
    return m->zflag;
}

int flags_lt(struct cpu *m)
{
    return m->nflag && !m->zflag;
}

int flags_gt(struct cpu *m)
{
    return !m->nflag && !m->zflag;
}

/* ---- memory bus ---- */

int valid_addr(int addr)
{
    return addr >= 0 && addr < MEMSIZE;
}

long bus_read(struct cpu *m, int addr)
{
    if (!valid_addr(addr)) {
        m->fault = 1;
        return 0;
    }
    m->cycles += 2;
    return memory[addr];
}

void bus_write(struct cpu *m, int addr, long v)
{
    if (!valid_addr(addr)) {
        m->fault = 1;
        return;
    }
    m->cycles += 2;
    memory[addr] = v;
}

/* ---- devices ---- */

long console_read(int port)
{
    (void)port;
    return 0;
}

void console_write(int port, long v)
{
    (void)port;
    console_sum = console_sum * 31 + v;
}

long timer_read(int port)
{
    (void)port;
    return timer_ticks;
}

void timer_write(int port, long v)
{
    timer_ticks = v;
}

struct device devices[2];

void init_devices(void)
{
    strcpy(devices[0].name, "console");
    devices[0].read = console_read;
    devices[0].write = console_write;
    strcpy(devices[1].name, "timer");
    devices[1].read = timer_read;
    devices[1].write = timer_write;
}

struct device *device_for(int port)
{
    if (port < 8)
        return &devices[0];
    return &devices[1];
}

long io_read(struct cpu *m, int port)
{
    struct device *d = device_for(port);
    m->cycles += 4;
    return d->read(port);
}

void io_write(struct cpu *m, int port, long v)
{
    struct device *d = device_for(port);
    m->cycles += 4;
    d->write(port, v);
}

/* ---- instruction handlers ---- */

void op_nop(struct cpu *m, struct instr *i)
{
    (void)i;
    m->cycles += 1;
}

void op_ldi(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = i->c;
    m->cycles += 1;
}

void op_mov(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = m->regs[i->b];
    m->cycles += 1;
}

void op_add(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = m->regs[i->b] + m->regs[i->c];
    set_flags(m, m->regs[i->a]);
    m->cycles += 1;
}

void op_sub(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = m->regs[i->b] - m->regs[i->c];
    set_flags(m, m->regs[i->a]);
    m->cycles += 1;
}

void op_mul(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = m->regs[i->b] * m->regs[i->c];
    set_flags(m, m->regs[i->a]);
    m->cycles += 3;
}

void op_div(struct cpu *m, struct instr *i)
{
    long d = m->regs[i->c];
    if (d == 0) {
        m->fault = 1;
        return;
    }
    m->regs[i->a] = m->regs[i->b] / d;
    set_flags(m, m->regs[i->a]);
    m->cycles += 8;
}

void op_and(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = m->regs[i->b] & m->regs[i->c];
    set_flags(m, m->regs[i->a]);
    m->cycles += 1;
}

void op_or(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = m->regs[i->b] | m->regs[i->c];
    set_flags(m, m->regs[i->a]);
    m->cycles += 1;
}

void op_xor(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = m->regs[i->b] ^ m->regs[i->c];
    set_flags(m, m->regs[i->a]);
    m->cycles += 1;
}

void op_shl(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = m->regs[i->b] << (m->regs[i->c] & 31);
    set_flags(m, m->regs[i->a]);
    m->cycles += 1;
}

void op_shr(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = m->regs[i->b] >> (m->regs[i->c] & 31);
    set_flags(m, m->regs[i->a]);
    m->cycles += 1;
}

void op_neg(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = -m->regs[i->b];
    set_flags(m, m->regs[i->a]);
    m->cycles += 1;
}

void op_not(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = ~m->regs[i->b];
    set_flags(m, m->regs[i->a]);
    m->cycles += 1;
}

void op_cmp(struct cpu *m, struct instr *i)
{
    set_flags(m, m->regs[i->a] - m->regs[i->b]);
    m->cycles += 1;
}

void op_ld(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = bus_read(m, i->c);
}

void op_sto(struct cpu *m, struct instr *i)
{
    bus_write(m, i->c, m->regs[i->a]);
}

void op_ldx(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = bus_read(m, (int)(m->regs[i->b] + i->c));
}

void op_stx(struct cpu *m, struct instr *i)
{
    bus_write(m, (int)(m->regs[i->b] + i->c), m->regs[i->a]);
}

void op_jmp(struct cpu *m, struct instr *i)
{
    m->pc = i->c;
    m->cycles += 1;
}

void op_jeq(struct cpu *m, struct instr *i)
{
    if (flags_eq(m))
        m->pc = i->c;
    m->cycles += 1;
}

void op_jne(struct cpu *m, struct instr *i)
{
    if (!flags_eq(m))
        m->pc = i->c;
    m->cycles += 1;
}

void op_jlt(struct cpu *m, struct instr *i)
{
    if (flags_lt(m))
        m->pc = i->c;
    m->cycles += 1;
}

void op_jgt(struct cpu *m, struct instr *i)
{
    if (flags_gt(m))
        m->pc = i->c;
    m->cycles += 1;
}

void push_word(struct cpu *m, long v)
{
    m->sp--;
    bus_write(m, m->sp, v);
}

long pop_word(struct cpu *m)
{
    long v = bus_read(m, m->sp);
    m->sp++;
    return v;
}

void op_call(struct cpu *m, struct instr *i)
{
    push_word(m, m->pc);
    m->pc = i->c;
    m->cycles += 2;
}

void op_ret(struct cpu *m, struct instr *i)
{
    (void)i;
    m->pc = (int)pop_word(m);
    m->cycles += 2;
}

void op_push(struct cpu *m, struct instr *i)
{
    push_word(m, m->regs[i->a]);
}

void op_pop(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = pop_word(m);
}

void op_in(struct cpu *m, struct instr *i)
{
    m->regs[i->a] = io_read(m, i->c);
}

void op_out(struct cpu *m, struct instr *i)
{
    io_write(m, i->c, m->regs[i->a]);
}

void op_inc(struct cpu *m, struct instr *i)
{
    m->regs[i->a] += 1;
    set_flags(m, m->regs[i->a]);
    m->cycles += 1;
}

void op_halt(struct cpu *m, struct instr *i)
{
    (void)i;
    m->halted = 1;
}

void init_dispatch(void)
{
    int i;

    for (i = 0; i < NOPS; i++)
        dispatch[i] = op_nop;
    dispatch[I_LDI] = op_ldi;
    dispatch[I_MOV] = op_mov;
    dispatch[I_ADD] = op_add;
    dispatch[I_SUB] = op_sub;
    dispatch[I_MUL] = op_mul;
    dispatch[I_DIV] = op_div;
    dispatch[I_AND] = op_and;
    dispatch[I_OR] = op_or;
    dispatch[I_XOR] = op_xor;
    dispatch[I_SHL] = op_shl;
    dispatch[I_SHR] = op_shr;
    dispatch[I_NEG] = op_neg;
    dispatch[I_NOT] = op_not;
    dispatch[I_CMP] = op_cmp;
    dispatch[I_LD] = op_ld;
    dispatch[I_STO] = op_sto;
    dispatch[I_LDX] = op_ldx;
    dispatch[I_STX] = op_stx;
    dispatch[I_JMP] = op_jmp;
    dispatch[I_JEQ] = op_jeq;
    dispatch[I_JNE] = op_jne;
    dispatch[I_JLT] = op_jlt;
    dispatch[I_JGT] = op_jgt;
    dispatch[I_CALL] = op_call;
    dispatch[I_RET] = op_ret;
    dispatch[I_PUSH] = op_push;
    dispatch[I_POP] = op_pop;
    dispatch[I_IN] = op_in;
    dispatch[I_OUT] = op_out;
    dispatch[I_INC] = op_inc;
    dispatch[I_HALT] = op_halt;
}

/* ---- program assembly ---- */

void emit(int op, int a, int b, int c)
{
    program[program_len].op = op;
    program[program_len].a = a;
    program[program_len].b = b;
    program[program_len].c = c;
    program_len++;
}

/* The simulated program:
 *   - fill memory[100..131] with squares via a subroutine
 *   - sum them, output the sum to the console
 *   - compute a xor-checksum of the same region
 */
void load_program(void)
{
    program_len = 0;
    /* r1 = index, r2 = limit, r15 = scratch */
    emit(I_LDI, 1, 0, 0);    /* 0: r1 = 0 */
    emit(I_LDI, 2, 0, 32);   /* 1: r2 = 32 */
    /* loop1: */
    emit(I_CMP, 1, 2, 0);    /* 2: cmp r1, r2 */
    emit(I_JEQ, 0, 0, 9);    /* 3: if r1 == r2 goto 9 */
    emit(I_MUL, 3, 1, 1);    /* 4: r3 = r1 * r1 */
    emit(I_MOV, 4, 1, 0);    /* 5: r4 = r1 */
    emit(I_STX, 3, 4, 100);  /* 6: mem[r4 + 100] = r3 */
    emit(I_INC, 1, 0, 0);    /* 7: r1++ */
    emit(I_JMP, 0, 0, 2);    /* 8: goto 2 */
    /* sum phase, as a subroutine */
    emit(I_CALL, 0, 0, 12);  /* 9: call sum */
    emit(I_OUT, 5, 0, 1);    /* 10: console <- r5 */
    emit(I_JMP, 0, 0, 20);   /* 11: goto checksum phase */
    /* sum: r5 = sum mem[100..131], uses r6 index */
    emit(I_LDI, 5, 0, 0);    /* 12: r5 = 0 */
    emit(I_LDI, 6, 0, 0);    /* 13: r6 = 0 */
    emit(I_CMP, 6, 2, 0);    /* 14: cmp r6, r2 */
    emit(I_JEQ, 0, 0, 19);   /* 15: if done, return */
    emit(I_LDX, 7, 6, 100);  /* 16: r7 = mem[r6+100] */
    emit(I_ADD, 5, 5, 7);    /* 17: r5 += r7 */
    emit(I_INC, 6, 0, 0);    /* 18: r6++; then loop */
    /* 19 is filled below with a jump back to 14 via RET trick */
    emit(I_RET, 0, 0, 0);    /* 19: placeholder; see fixup */
    /* checksum phase */
    emit(I_LDI, 8, 0, 0);    /* 20: r8 = 0 */
    emit(I_LDI, 9, 0, 0);    /* 21: r9 = 0 */
    emit(I_CMP, 9, 2, 0);    /* 22 */
    emit(I_JEQ, 0, 0, 28);   /* 23 */
    emit(I_LDX, 10, 9, 100); /* 24: r10 = mem[r9+100] */
    emit(I_XOR, 8, 8, 10);   /* 25: r8 ^= r10 */
    emit(I_INC, 9, 0, 0);    /* 26 */
    emit(I_JMP, 0, 0, 22);   /* 27 */
    emit(I_OUT, 8, 0, 1);    /* 28: console <- r8 */
    emit(I_HALT, 0, 0, 0);   /* 29 */
}

/* fix the sum loop: instruction 18 falls into 19; we want the loop to
 * continue until r6 == r2. Patch 18..19 into a jump structure. */
void fixup_program(void)
{
    /* turn 19 into "jmp 14" and insert ret at the JEQ target */
    program[19].op = I_JMP;
    program[19].c = 14;
    /* the JEQ at 15 must go to a RET; append one */
    emit(I_RET, 0, 0, 0); /* 30 */
    program[15].c = 30;
}

/* ---- execution core ---- */

void cpu_reset(struct cpu *m)
{
    int i;

    for (i = 0; i < NREGS; i++)
        m->regs[i] = 0;
    m->pc = 0;
    m->sp = MEMSIZE;
    m->zflag = 0;
    m->nflag = 0;
    m->cycles = 0;
    m->halted = 0;
    m->fault = 0;
}

struct instr *fetch(struct cpu *m)
{
    if (m->pc < 0 || m->pc >= program_len) {
        m->fault = 1;
        return 0;
    }
    return &program[m->pc];
}

void execute_one(struct cpu *m, struct instr *i)
{
    handler_fn h = dispatch[i->op & (NOPS - 1)];
    op_counts[i->op & (NOPS - 1)]++;
    h(m, i);
}

int run_cpu(struct cpu *m, long max_steps)
{
    long steps = 0;

    while (!m->halted && !m->fault && steps < max_steps) {
        struct instr *i = fetch(m);
        if (!i)
            break;
        m->pc++;
        execute_one(m, i);
        steps++;
    }
    return m->halted && !m->fault;
}

/* ---- statistics ---- */

long total_ops(void)
{
    long n = 0;
    int i;

    for (i = 0; i < NOPS; i++)
        n += op_counts[i];
    return n;
}

int busiest_op(void)
{
    int i, best = 0;

    for (i = 0; i < NOPS; i++) {
        if (op_counts[i] > op_counts[best])
            best = i;
    }
    return best;
}

long expected_sum(void)
{
    long s = 0;
    int i;

    for (i = 0; i < 32; i++)
        s += (long)i * i;
    return s;
}

long expected_xor(void)
{
    long x = 0;
    int i;

    for (i = 0; i < 32; i++)
        x ^= (long)i * i;
    return x;
}

int main(void)
{
    long want;

    init_devices();
    init_dispatch();
    load_program();
    fixup_program();
    cpu_reset(&machine);
    if (!run_cpu(&machine, 100000)) {
        printf("machine fault at pc=%d\n", machine.pc);
        return 2;
    }
    want = expected_sum();
    want = want * 31 + expected_xor();
    printf("console %ld cycles %ld ops %ld busiest %d\n",
           console_sum, machine.cycles, total_ops(), busiest_op());
    return console_sum == want ? 0 : 1;
}
