/* Seeded bug: a FILE handle is read after it has been closed; the
 * close happens in the caller, the use in a helper, so the defect is
 * only visible to a context-sensitive typestate walk.
 * Expected: wlcheck reports useafterclose (error) at the fgetc. */

#include <stdio.h>

int rd(FILE *f)
{
    return fgetc(f);
}

int main(void)
{
    FILE *f = fopen("in.txt", "r");
    if (!f)
        return 1;
    fclose(f);
    return rd(f);
}
