/*
 * grep.c - stand-in for the Unix grep utility: a small regular
 * expression matcher (literals, '.', '*', '^', '$', character classes)
 * run over an embedded text, line by line. Pointer-intensive string
 * scanning in the style of the original.
 */

#include <stdio.h>
#include <string.h>
#include <stdlib.h>

char *corpus =
    "the quick brown fox\n"
    "jumps over the lazy dog\n"
    "pointer analysis is fun\n"
    "partial transfer functions\n"
    "a procedure may behave quite differently\n"
    "reanalyzing for every calling context\n"
    "the exponential cost quickly becomes prohibitive\n"
    "interval analysis has been successfully used\n"
    "foxes and dogs and foxes\n"
    "fin\n";

char line_buf[256];
char *line_ptr;
int match_count;
int line_count;

/* ---- pattern matching (Kernighan-Pike style) ---- */

int match_here(char *re, char *text);

/* match_class: does c match the class starting at re (after '[')?
 * Returns the class length through lenp. */
int match_class(char *re, int c, int *lenp)
{
    int negate = 0;
    int hit = 0;
    char *p = re;

    if (*p == '^') {
        negate = 1;
        p++;
    }
    while (*p && *p != ']') {
        if (p[1] == '-' && p[2] && p[2] != ']') {
            if (c >= p[0] && c <= p[2])
                hit = 1;
            p = p + 3;
        } else {
            if (*p == c)
                hit = 1;
            p++;
        }
    }
    *lenp = (int)(p - re) + 1; /* include ']' */
    return negate ? !hit : hit;
}

/* match one char (or class) at re against c; returns chars consumed in
 * the pattern, or 0 if no match. */
int match_one(char *re, int c, int *consumed)
{
    int len;

    if (*re == '[') {
        int ok = match_class(re + 1, c, &len);
        *consumed = len + 1;
        return ok && c != 0;
    }
    *consumed = 1;
    if (*re == '.')
        return c != 0;
    return *re == c;
}

/* match_star: c* at the beginning of text. */
int match_star(char *unit, int unitlen, char *rest, char *text)
{
    char *t = text;
    int consumed;

    for (;;) {
        if (match_here(rest, t))
            return 1;
        if (!match_one(unit, *t, &consumed))
            return 0;
        t++;
    }
}

int match_here(char *re, char *text)
{
    int consumed;

    if (*re == 0)
        return 1;
    if (*re == '$' && re[1] == 0)
        return *text == 0;
    /* find the unit length */
    if (*re == '[') {
        int len;
        match_class(re + 1, 'x', &len);
        consumed = len + 1;
    } else {
        consumed = 1;
    }
    if (re[consumed] == '*')
        return match_star(re, consumed, re + consumed + 1, text);
    if (match_one(re, *text, &consumed) && *text)
        return match_here(re + consumed, text + 1);
    return 0;
}

int match(char *re, char *text)
{
    if (*re == '^')
        return match_here(re + 1, text);
    do {
        if (match_here(re, text))
            return 1;
    } while (*text++);
    return 0;
}

/* ---- line handling ---- */

/* next_line copies the next corpus line into line_buf; returns 0 at end. */
int next_line(void)
{
    char *out = line_buf;
    int n = 0;

    if (*line_ptr == 0)
        return 0;
    while (*line_ptr && *line_ptr != '\n' && n < 255) {
        *out = *line_ptr;
        out++;
        line_ptr++;
        n++;
    }
    *out = 0;
    if (*line_ptr == '\n')
        line_ptr++;
    line_count++;
    return 1;
}

void grep_pattern(char *re)
{
    line_ptr = corpus;
    line_count = 0;
    while (next_line()) {
        if (match(re, line_buf)) {
            match_count++;
            printf("%s\n", line_buf);
        }
    }
}

int main(void)
{
    match_count = 0;
    grep_pattern("fox");
    grep_pattern("^the");
    grep_pattern("d.g");
    grep_pattern("fo*x");
    grep_pattern("[a-f]in$");
    printf("total %d\n", match_count);
    return match_count == 9 ? 0 : match_count;
}
