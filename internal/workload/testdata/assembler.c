/*
 * assembler.c - stand-in for the Landi "assembler" benchmark: a two-pass
 * assembler for a small register machine. Pass 1 collects labels; pass 2
 * encodes instructions through an opcode table whose entries carry
 * encoder function pointers (table-driven dispatch, as in the original).
 * The encoded program is then run on a tiny machine to validate it.
 */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define MAXSYMS  32
#define MAXWORDS 128
#define NREGS    8

char *program_text =
    "        li   r1 0\n"       /* sum = 0 */
    "        li   r2 1\n"       /* i = 1 */
    "        li   r3 10\n"      /* limit */
    "loop:   add  r1 r1 r2\n"   /* sum += i */
    "        addi r2 r2 1\n"    /* i++ */
    "        ble  r2 r3 loop\n" /* while i <= limit */
    "        st   r1 60\n"      /* mem[60] = sum */
    "        li   r4 7\n"
    "        mul  r4 r4 r4\n"
    "        st   r4 61\n"
    "        halt\n";

/* instruction encoding: op<<24 | a<<16 | b<<8 | c */
#define OP_LI   1
#define OP_ADD  2
#define OP_ADDI 3
#define OP_SUB  4
#define OP_MUL  5
#define OP_BLE  6
#define OP_BEQ  7
#define OP_JMP  8
#define OP_LD   9
#define OP_ST   10
#define OP_HALT 11

struct sym {
    char name[16];
    int addr;
};

struct opdesc {
    char *name;
    int opcode;
    int (*encode)(int opcode, char *a, char *b, char *c);
};

struct sym symtab[MAXSYMS];
int nsyms;

long words[MAXWORDS];
int nwords;

char *asm_cursor;
char field_buf[6][24];
int nfields;
int pass;
int asm_errors;

/* ---- symbol table ---- */

struct sym *sym_find(char *name)
{
    int i;

    for (i = 0; i < nsyms; i++) {
        if (strcmp(symtab[i].name, name) == 0)
            return &symtab[i];
    }
    return 0;
}

void sym_define(char *name, int addr)
{
    struct sym *s = sym_find(name);

    if (s) {
        if (pass == 1)
            asm_errors++;
        return;
    }
    if (nsyms < MAXSYMS) {
        strcpy(symtab[nsyms].name, name);
        symtab[nsyms].addr = addr;
        nsyms++;
    }
}

int sym_value(char *name)
{
    struct sym *s = sym_find(name);

    if (!s) {
        asm_errors++;
        return 0;
    }
    return s->addr;
}

/* ---- line scanning ---- */

int at_eol(void)
{
    return *asm_cursor == '\n' || *asm_cursor == 0;
}

void skip_ws(void)
{
    while (*asm_cursor == ' ' || *asm_cursor == '\t')
        asm_cursor++;
}

void read_field(char *out)
{
    int n = 0;

    skip_ws();
    while (!at_eol() && *asm_cursor != ' ' && *asm_cursor != '\t' && n < 23) {
        out[n] = *asm_cursor;
        n++;
        asm_cursor++;
    }
    out[n] = 0;
}

void split_line(void)
{
    nfields = 0;
    while (!at_eol() && nfields < 5) {
        read_field(field_buf[nfields]);
        if (field_buf[nfields][0])
            nfields++;
        skip_ws();
    }
    if (*asm_cursor == '\n')
        asm_cursor++;
}

int is_label(char *f)
{
    int n = (int)strlen(f);
    return n > 0 && f[n - 1] == ':';
}

void strip_colon(char *f)
{
    f[strlen(f) - 1] = 0;
}

/* ---- operand parsing ---- */

int reg_number(char *f)
{
    if (f[0] != 'r') {
        asm_errors++;
        return 0;
    }
    return atoi(f + 1) % NREGS;
}

int immediate(char *f)
{
    if (f[0] == '-' || (f[0] >= '0' && f[0] <= '9'))
        return atoi(f);
    return sym_value(f);
}

/* ---- encoders (function-pointer targets) ---- */

int pack(int op, int a, int b, int c)
{
    return (op << 24) | (a << 16) | (b << 8) | (c & 0xff);
}

int enc_ri(int opcode, char *a, char *b, char *c)
{
    (void)c;
    return pack(opcode, reg_number(a), 0, immediate(b));
}

int enc_rrr(int opcode, char *a, char *b, char *c)
{
    return pack(opcode, reg_number(a), reg_number(b), reg_number(c));
}

int enc_rri(int opcode, char *a, char *b, char *c)
{
    return pack(opcode, reg_number(a), reg_number(b), immediate(c));
}

int enc_branch(int opcode, char *a, char *b, char *c)
{
    return pack(opcode, reg_number(a), reg_number(b), immediate(c));
}

int enc_jump(int opcode, char *a, char *b, char *c)
{
    (void)b;
    (void)c;
    return pack(opcode, 0, 0, immediate(a));
}

int enc_mem(int opcode, char *a, char *b, char *c)
{
    (void)c;
    return pack(opcode, reg_number(a), 0, immediate(b));
}

int enc_none(int opcode, char *a, char *b, char *c)
{
    (void)a;
    (void)b;
    (void)c;
    return pack(opcode, 0, 0, 0);
}

/* ---- opcode table ---- */

struct opdesc optable[] = {
    {"li", OP_LI, enc_ri},
    {"add", OP_ADD, enc_rrr},
    {"addi", OP_ADDI, enc_rri},
    {"sub", OP_SUB, enc_rrr},
    {"mul", OP_MUL, enc_rrr},
    {"ble", OP_BLE, enc_branch},
    {"beq", OP_BEQ, enc_branch},
    {"jmp", OP_JMP, enc_jump},
    {"ld", OP_LD, enc_mem},
    {"st", OP_ST, enc_mem},
    {"halt", OP_HALT, enc_none},
};

#define NOPS 11

struct opdesc *find_op(char *name)
{
    int i;

    for (i = 0; i < NOPS; i++) {
        if (strcmp(optable[i].name, name) == 0)
            return &optable[i];
    }
    return 0;
}

/* ---- assembly passes ---- */

void emit_word(long w)
{
    if (pass == 2 && nwords < MAXWORDS)
        words[nwords] = w;
    nwords++;
}

void assemble_line(void)
{
    int f = 0;
    struct opdesc *op;

    split_line();
    if (nfields == 0)
        return;
    if (is_label(field_buf[0])) {
        strip_colon(field_buf[0]);
        if (pass == 1)
            sym_define(field_buf[0], nwords);
        f = 1;
    }
    if (f >= nfields)
        return;
    op = find_op(field_buf[f]);
    if (!op) {
        asm_errors++;
        return;
    }
    if (pass == 2) {
        int w = op->encode(op->opcode, field_buf[f + 1], field_buf[f + 2], field_buf[f + 3]);
        words[nwords] = w;
        nwords++;
        return;
    }
    emit_word(0);
}

void run_pass(int which)
{
    pass = which;
    asm_cursor = program_text;
    nwords = 0;
    while (*asm_cursor)
        assemble_line();
}

/* ---- the target machine ---- */

long regs[NREGS];
long data_mem[64];

int step_count;

void machine_reset(void)
{
    int i;

    for (i = 0; i < NREGS; i++)
        regs[i] = 0;
    for (i = 0; i < 64; i++)
        data_mem[i] = 0;
    step_count = 0;
}

int run_machine(void)
{
    int pc = 0;

    for (;;) {
        long w;
        int op, a, b, c;

        if (pc < 0 || pc >= nwords)
            return 0;
        w = words[pc];
        op = (int)(w >> 24) & 0xff;
        a = (int)(w >> 16) & 0xff;
        b = (int)(w >> 8) & 0xff;
        c = (int)w & 0xff;
        pc++;
        step_count++;
        if (step_count > 10000)
            return 0;
        switch (op) {
        case OP_LI:
            regs[a] = c;
            break;
        case OP_ADD:
            regs[a] = regs[b] + regs[c];
            break;
        case OP_ADDI:
            regs[a] = regs[b] + c;
            break;
        case OP_SUB:
            regs[a] = regs[b] - regs[c];
            break;
        case OP_MUL:
            regs[a] = regs[b] * regs[c];
            break;
        case OP_BLE:
            if (regs[a] <= regs[b])
                pc = c;
            break;
        case OP_BEQ:
            if (regs[a] == regs[b])
                pc = c;
            break;
        case OP_JMP:
            pc = c;
            break;
        case OP_LD:
            regs[a] = data_mem[c];
            break;
        case OP_ST:
            data_mem[c] = regs[a];
            break;
        case OP_HALT:
            return 1;
        default:
            return 0;
        }
    }
}

int main(void)
{
    nsyms = 0;
    asm_errors = 0;
    run_pass(1);
    run_pass(2);
    if (asm_errors) {
        printf("%d assembly errors\n", asm_errors);
        return 2;
    }
    machine_reset();
    if (!run_machine()) {
        printf("machine fault\n");
        return 3;
    }
    printf("sum %ld square %ld steps %d\n", data_mem[60], data_mem[61], step_count);
    /* 1+..+10 = 55, 7*7 = 49 */
    return (data_mem[60] == 55 && data_mem[61] == 49) ? 0 : 1;
}
