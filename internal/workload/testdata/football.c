/*
 * football.c - stand-in for the Landi "football" benchmark: a play-by-
 * play game simulator and statistics program. Many small evaluation
 * procedures, a play table dispatched through function pointers, and
 * per-team record keeping through pointers, following the original's
 * table-driven shape.
 */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define NPLAYS 6

struct team {
    char name[20];
    int score;
    int yards;
    int passes;
    int runs;
    int kicks;
    int turnovers;
    int first_downs;
};

struct gamestate {
    struct team *offense;
    struct team *defense;
    int down;
    int to_go;
    int field_pos; /* 0..100, offense drives toward 100 */
    int quarter;
    int plays_run;
};

struct play {
    char *name;
    int (*run)(struct gamestate *g);
    int weight;
};

struct team home;
struct team visitor;
struct gamestate game;
int rng_state = 12345;

/* ---- deterministic pseudo-random numbers ---- */

int roll(int n)
{
    rng_state = rng_state * 1103515245 + 12345;
    if (rng_state < 0)
        rng_state = -rng_state;
    return rng_state % n;
}

int coin_flip(void)
{
    return roll(2);
}

/* ---- team bookkeeping ---- */

void init_team(struct team *t, char *name)
{
    strcpy(t->name, name);
    t->score = 0;
    t->yards = 0;
    t->passes = 0;
    t->runs = 0;
    t->kicks = 0;
    t->turnovers = 0;
    t->first_downs = 0;
}

void credit_yards(struct team *t, int yards)
{
    t->yards += yards;
}

void credit_score(struct team *t, int points)
{
    t->score += points;
}

void credit_first_down(struct team *t)
{
    t->first_downs++;
}

void credit_turnover(struct team *t)
{
    t->turnovers++;
}

int team_total(struct team *t)
{
    return t->yards + 10 * t->score;
}

/* ---- field position helpers ---- */

int yards_to_goal(struct gamestate *g)
{
    return 100 - g->field_pos;
}

int in_red_zone(struct gamestate *g)
{
    return yards_to_goal(g) <= 20;
}

int in_own_half(struct gamestate *g)
{
    return g->field_pos < 50;
}

int long_yardage(struct gamestate *g)
{
    return g->to_go >= 8;
}

int short_yardage(struct gamestate *g)
{
    return g->to_go <= 2;
}

void advance_ball(struct gamestate *g, int yards)
{
    g->field_pos += yards;
    if (g->field_pos < 0)
        g->field_pos = 0;
    if (g->field_pos > 100)
        g->field_pos = 100;
}

/* ---- possession changes ---- */

void swap_possession(struct gamestate *g)
{
    struct team *t = g->offense;
    g->offense = g->defense;
    g->defense = t;
    g->field_pos = 100 - g->field_pos;
    g->down = 1;
    g->to_go = 10;
}

void new_series(struct gamestate *g)
{
    g->down = 1;
    g->to_go = 10;
    credit_first_down(g->offense);
}

void turnover(struct gamestate *g)
{
    credit_turnover(g->offense);
    swap_possession(g);
}

/* ---- scoring ---- */

void touchdown(struct gamestate *g)
{
    credit_score(g->offense, 7);
    swap_possession(g);
    g->field_pos = 30;
}

void field_goal(struct gamestate *g)
{
    credit_score(g->offense, 3);
    swap_possession(g);
    g->field_pos = 30;
}

void check_touchdown(struct gamestate *g)
{
    if (g->field_pos >= 100)
        touchdown(g);
}

/* ---- play outcome models ---- */

int run_gain(void)
{
    return roll(7) - 1;
}

int short_pass_gain(void)
{
    if (roll(10) < 6)
        return 4 + roll(8);
    return 0;
}

int long_pass_gain(void)
{
    if (roll(10) < 3)
        return 15 + roll(25);
    return 0;
}

int sack_loss(void)
{
    return roll(10) < 2 ? 5 + roll(6) : 0;
}

/* ---- the plays (function-pointer targets) ---- */

int play_run(struct gamestate *g)
{
    int gain = run_gain();
    g->offense->runs++;
    credit_yards(g->offense, gain);
    advance_ball(g, gain);
    return gain;
}

int play_short_pass(struct gamestate *g)
{
    int gain = short_pass_gain();
    g->offense->passes++;
    if (gain == 0 && roll(20) == 0) {
        turnover(g);
        return -1000;
    }
    credit_yards(g->offense, gain);
    advance_ball(g, gain);
    return gain;
}

int play_long_pass(struct gamestate *g)
{
    int gain = long_pass_gain();
    g->offense->passes++;
    if (gain == 0 && roll(12) == 0) {
        turnover(g);
        return -1000;
    }
    gain -= sack_loss();
    credit_yards(g->offense, gain);
    advance_ball(g, gain);
    return gain;
}

int play_draw(struct gamestate *g)
{
    int gain = run_gain() + (long_yardage(g) ? 2 : 0);
    g->offense->runs++;
    credit_yards(g->offense, gain);
    advance_ball(g, gain);
    return gain;
}

int play_punt(struct gamestate *g)
{
    int dist = 35 + roll(15);
    g->offense->kicks++;
    advance_ball(g, dist);
    swap_possession(g);
    return -1000;
}

int play_field_goal(struct gamestate *g)
{
    g->offense->kicks++;
    if (yards_to_goal(g) <= 35 && roll(10) < 7) {
        field_goal(g);
        return -1000;
    }
    turnover(g);
    return -1000;
}

/* ---- play selection ---- */

struct play playbook[NPLAYS] = {
    {"run", play_run, 30},
    {"short pass", play_short_pass, 30},
    {"long pass", play_long_pass, 15},
    {"draw", play_draw, 10},
    {"punt", play_punt, 10},
    {"field goal", play_field_goal, 5},
};

struct play *choose_normal(struct gamestate *g)
{
    int w = roll(85);

    if (short_yardage(g))
        return &playbook[0];
    if (w < 30)
        return &playbook[0];
    if (w < 60)
        return &playbook[1];
    if (w < 75)
        return &playbook[2];
    return &playbook[3];
}

struct play *choose_fourth_down(struct gamestate *g)
{
    if (in_red_zone(g) || yards_to_goal(g) <= 35)
        return &playbook[5];
    if (in_own_half(g))
        return &playbook[4];
    if (short_yardage(g))
        return &playbook[0];
    return &playbook[4];
}

struct play *choose_play(struct gamestate *g)
{
    if (g->down == 4)
        return choose_fourth_down(g);
    return choose_normal(g);
}

/* ---- down accounting ---- */

void after_play(struct gamestate *g, int gain)
{
    if (gain <= -1000)
        return; /* possession already handled */
    check_touchdown(g);
    g->to_go -= gain;
    if (g->to_go <= 0) {
        new_series(g);
        return;
    }
    g->down++;
    if (g->down > 4)
        turnover(g);
}

void run_one_play(struct gamestate *g)
{
    struct play *p = choose_play(g);
    int gain = p->run(g);

    g->plays_run++;
    after_play(g, gain);
}

/* ---- game driver ---- */

void start_game(struct gamestate *g)
{
    init_team(&home, "home");
    init_team(&visitor, "visitor");
    g->offense = &home;
    g->defense = &visitor;
    g->down = 1;
    g->to_go = 10;
    g->field_pos = 30;
    g->quarter = 1;
    g->plays_run = 0;
}

void run_quarter(struct gamestate *g)
{
    int i;

    for (i = 0; i < 40; i++)
        run_one_play(g);
    g->quarter++;
}

void run_game(struct gamestate *g)
{
    while (g->quarter <= 4)
        run_quarter(g);
}

/* ---- statistics reports ---- */

int pass_ratio_pct(struct team *t)
{
    int total = t->passes + t->runs;

    if (total == 0)
        return 0;
    return 100 * t->passes / total;
}

void report_team(struct team *t)
{
    printf("%s: %d points, %d yards, %d%% passes, %d turnovers, %d first downs\n",
           t->name, t->score, t->yards, pass_ratio_pct(t),
           t->turnovers, t->first_downs);
}

struct team *winner(void)
{
    if (home.score > visitor.score)
        return &home;
    if (visitor.score > home.score)
        return &visitor;
    return 0;
}

int sanity_check(struct gamestate *g)
{
    if (g->plays_run != 160)
        return 0;
    if (home.score < 0 || visitor.score < 0)
        return 0;
    if (home.yards < 0 || visitor.yards < 0)
        return 0;
    return (g->offense == &home && g->defense == &visitor) ||
           (g->offense == &visitor && g->defense == &home);
}

int main(void)
{
    struct team *w;

    start_game(&game);
    run_game(&game);
    report_team(&home);
    report_team(&visitor);
    w = winner();
    if (w)
        printf("winner: %s\n", w->name);
    else
        printf("tie game\n");
    return sanity_check(&game) ? 0 : 1;
}
