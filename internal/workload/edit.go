package workload

import (
	"fmt"
	"strings"
)

// EditKind enumerates the structured program edits the incremental
// re-analysis oracle exercises. Every kind maps a well-defined base
// program to a well-defined edited program; the pair feeds
// difftest.CheckIncremental, which pins the incremental result
// bit-identical to a cold analysis of the edited side.
type EditKind int

const (
	// EditBodyTweak shifts one statement's starting column inside a
	// single procedure. The statement set is unchanged; only the
	// procedure's IR hash (which anchors nodes at their source
	// positions) moves.
	EditBodyTweak EditKind = iota
	// EditAddStore inserts a new store statement into one procedure.
	EditAddStore
	// EditRemoveStore deletes an existing store statement from one
	// procedure.
	EditRemoveStore
	// EditNewCallee introduces a new procedure and a call to it from an
	// existing procedure.
	EditNewCallee
	// EditDeleteProc removes a procedure together with its only call
	// site (the reverse direction of EditNewCallee).
	EditDeleteProc

	numEditKinds
)

var editKindNames = [numEditKinds]string{
	"bodytweak", "addstore", "removestore", "newcallee", "deleteproc",
}

// NumEditKinds returns the number of distinct edit kinds.
func NumEditKinds() int { return int(numEditKinds) }

func (k EditKind) String() string {
	if k < 0 || k >= numEditKinds {
		return fmt.Sprintf("editkind(%d)", int(k))
	}
	return editKindNames[k]
}

// EditKindByName resolves a kind name ("bodytweak", ...); ok is false
// for unknown names.
func EditKindByName(name string) (EditKind, bool) {
	for i, n := range editKindNames {
		if n == name {
			return EditKind(i), true
		}
	}
	return 0, false
}

// EditPair is a (base, edited) program pair for the incremental oracle.
type EditPair struct {
	Kind   EditKind
	Name   string
	Base   string
	Edited string
}

// GenerateEditPair derives a generated program from the fuzz tuple
// (seed, raw) — the same decoding the differential fuzz harness uses —
// and applies one structured edit of the given kind to it. The edit
// targets the function f<seed mod NumFuncs>, relying on the generator's
// fixed emission shape (every generated function opens with
// "void fN(int **a, int *b) {" followed by "    *a = b;"). ok is false
// if the anchor is missing (never for generator output; defensive).
func GenerateEditPair(seed int64, raw uint32, kind EditKind) (EditPair, bool) {
	cfg := FuzzGenConfig(seed, raw)
	base := Generate(cfg)
	fk := int(uint64(seed) % uint64(cfg.NumFuncs))
	name := fmt.Sprintf("edit(seed=%d,feat=%s,kind=%s,f%d)", seed, cfg.Features, kind, fk)
	pair := EditPair{Kind: kind, Name: name, Base: base}

	sig := fmt.Sprintf("void f%d(int **a, int *b) {\n", fk)
	at := strings.Index(base, sig)
	if at < 0 {
		return EditPair{}, false
	}
	body := at + len(sig)
	const firstStmt = "    *a = b;\n"
	if !strings.HasPrefix(base[body:], firstStmt) {
		return EditPair{}, false
	}

	switch kind {
	case EditBodyTweak:
		// One extra leading space: same statement, shifted column.
		pair.Edited = base[:body] + " " + base[body:]
	case EditAddStore:
		pair.Edited = base[:body] + "    *b = tick + 1;\n" + base[body:]
	case EditRemoveStore:
		pair.Edited = base[:body] + base[body+len(firstStmt):]
	case EditNewCallee, EditDeleteProc:
		callee := fmt.Sprintf("void edit_nc%d(int **a, int *b) {\n    *a = b;\n    *b = tick;\n}\n\n", fk)
		withCallee := base[:at] + callee + sig + fmt.Sprintf("    edit_nc%d(a, b);\n", fk) +
			base[body:]
		if kind == EditNewCallee {
			pair.Edited = withCallee
		} else {
			// Deleting a procedure is the reverse pair: the base holds
			// the callee, the edit removes it and its call site.
			pair.Base = withCallee
			pair.Edited = base
		}
	default:
		return EditPair{}, false
	}
	return pair, true
}

// TweakNthStatement applies a body-tweak edit to arbitrary C source:
// it prepends one space to the (n mod count)-th statement-looking line
// (indented, semicolon-terminated), shifting that statement's starting
// column without changing program meaning. ok is false when the source
// has no such line. Whether the tweak dirties a procedure's IR hash
// depends on the statement carrying pointer-relevant flow-graph nodes;
// callers that need a dirtying edit must verify against the hashes.
func TweakNthStatement(src string, n int) (string, bool) {
	lines := strings.Split(src, "\n")
	var candidates []int
	for i, line := range lines {
		trimmed := strings.TrimLeft(line, " \t")
		if len(line) == len(trimmed) || trimmed == "" {
			continue // top-level or blank
		}
		if !strings.HasSuffix(strings.TrimRight(trimmed, " "), ";") {
			continue
		}
		if strings.HasPrefix(trimmed, "/*") || strings.HasPrefix(trimmed, "*") ||
			strings.HasPrefix(trimmed, "//") {
			continue // comment, not a statement
		}
		candidates = append(candidates, i)
	}
	if len(candidates) == 0 {
		return "", false
	}
	i := candidates[((n%len(candidates))+len(candidates))%len(candidates)]
	lines[i] = " " + lines[i]
	return strings.Join(lines, "\n"), true
}
