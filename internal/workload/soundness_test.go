package workload

import (
	"fmt"
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/cast"
	"wlpa/internal/cparse"
	"wlpa/internal/interp"
	"wlpa/internal/libsum"
	"wlpa/internal/memmod"
	"wlpa/internal/sem"
)

// covers reports whether the location-set key k includes byte offset off.
func covers(k memmod.LocSet, off int64) bool {
	if k.Stride == 0 {
		return k.Off == off
	}
	return ((off-k.Off)%k.Stride+k.Stride)%k.Stride == 0
}

// blockMatches identifies an analysis block with a runtime object.
func blockMatches(b *memmod.Block, sym *cast.Symbol, name string) bool {
	if sym != nil && b.Sym != nil {
		return b.Sym == sym
	}
	return b.Name == name
}

// checkSoundness runs the analysis and the interpreter over src and
// verifies that every dynamic points-to fact is covered by the static
// solution: the fundamental soundness property of the analysis.
func checkSoundness(t *testing.T, name, src string) {
	checkSoundnessOpts(t, name, src, analysis.Options{
		Lib:             libsum.Summaries(),
		CollectSolution: true,
	})
}

func checkSoundnessOpts(t *testing.T, name, src string, opts analysis.Options) {
	t.Helper()
	file, err := cparse.ParseSource(name, src)
	if err != nil {
		t.Fatalf("%s: parse: %v\n%s", name, err, numbered(src))
	}
	prog, err := sem.Check(file)
	if err != nil {
		t.Fatalf("%s: sem: %v", name, err)
	}
	an, err := analysis.New(prog, opts)
	if err != nil {
		t.Fatalf("%s: analysis.New: %v", name, err)
	}
	if err := an.Run(); err != nil {
		t.Fatalf("%s: analysis: %v", name, err)
	}
	in := interp.New(prog, interp.Options{RecordPointsTo: true, MaxSteps: 20_000_000})
	res, err := in.Run()
	if err != nil {
		t.Fatalf("%s: interp: %v", name, err)
	}
	sol := an.Solution()
	keys := sol.Locations()
	for _, fact := range res.Facts {
		if !factCovered(sol, keys, fact) {
			pos := ""
			if fact.Sym != nil {
				pos = fact.Sym.Pos.String()
			}
			t.Errorf("%s: UNSOUND: dynamic fact (%s@%s+%d) -> (%s+%d) not in static solution",
				name, fact.Block, pos, fact.Off, fact.Target, fact.TOff)
			for _, k := range keys {
				if blockMatches(k.Base, fact.Sym, fact.Block) {
					t.Logf("  static %v -> %v", k, sol.PointsTo(k))
				}
			}
		}
	}
}

func factCovered(sol *analysis.Solution, keys []memmod.LocSet, fact interp.DynFact) bool {
	for _, k := range keys {
		if !blockMatches(k.Base, fact.Sym, fact.Block) || !covers(k, fact.Off) {
			continue
		}
		for _, v := range sol.PointsTo(k).Locs() {
			if blockMatches(v.Base, fact.TSym, fact.Target) && covers(v, fact.TOff) {
				return true
			}
		}
	}
	return false
}

func numbered(src string) string {
	out := ""
	line := 1
	for _, l := range splitLines(src) {
		out += fmt.Sprintf("%3d| %s\n", line, l)
		line++
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(c)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func TestGeneratedProgramsParseAndRun(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := Generate(DefaultGenConfig(seed))
		file, err := cparse.ParseSource("gen.c", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, numbered(src))
		}
		prog, err := sem.Check(file)
		if err != nil {
			t.Fatalf("seed %d: sem: %v", seed, err)
		}
		if _, err := interp.New(prog, interp.Options{}).Run(); err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, numbered(src))
		}
	}
}

// TestSoundnessOnGeneratedPrograms is the central differential property
// test: for many random well-defined programs, every pointer relationship
// observed at run time must be predicted by the analysis.
func TestSoundnessOnGeneratedPrograms(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < n; seed++ {
		src := Generate(DefaultGenConfig(seed))
		checkSoundness(t, fmt.Sprintf("seed%d", seed), src)
		if t.Failed() {
			t.Logf("failing program (seed %d):\n%s", seed, numbered(src))
			break
		}
	}
}

func TestSoundnessSmallConfigs(t *testing.T) {
	cfgs := []GenConfig{
		{Seed: 1, NumGlobals: 2, NumPtrs: 2, NumFuncs: 1, StmtsPerFunc: 4},
		{Seed: 2, NumGlobals: 2, NumPtrs: 3, NumFuncs: 2, StmtsPerFunc: 6, UseHeap: true},
		{Seed: 3, NumGlobals: 3, NumPtrs: 3, NumFuncs: 3, StmtsPerFunc: 6, UseStructs: true},
		{Seed: 4, NumGlobals: 3, NumPtrs: 4, NumFuncs: 3, StmtsPerFunc: 8, UseFuncPtrs: true},
		{Seed: 5, NumGlobals: 2, NumPtrs: 2, NumFuncs: 2, StmtsPerFunc: 5, UseRecursion: true},
	}
	for i, cfg := range cfgs {
		src := Generate(cfg)
		checkSoundness(t, fmt.Sprintf("cfg%d", i), src)
		if t.Failed() {
			t.Logf("failing program (cfg %d):\n%s", i, numbered(src))
			break
		}
	}
}

// TestSoundnessWithCombineOffsets checks the §7 offset-combining
// optimization preserves soundness over generated programs.
func TestSoundnessWithCombineOffsets(t *testing.T) {
	n := int64(20)
	if testing.Short() {
		n = 5
	}
	for seed := int64(100); seed < 100+n; seed++ {
		src := Generate(DefaultGenConfig(seed))
		checkSoundnessOpts(t, fmt.Sprintf("combine-seed%d", seed), src, analysis.Options{
			Lib:             libsum.Summaries(),
			CollectSolution: true,
			CombineOffsets:  true,
		})
		if t.Failed() {
			t.Logf("failing program (seed %d):\n%s", seed, numbered(src))
			break
		}
	}
}
