// Package cpp implements the C preprocessor subset used by wlpa:
// object- and function-like macros, #include over an in-memory file
// set, and the conditional-compilation directives
// (#if/#ifdef/#ifndef/#elif/#else/#endif) with defined() and integer
// constant expressions.
//
// Unsupported: token pasting (##) and stringization (#). The benchmark
// suite does not use them and the paper's frontend (SUIF) took
// preprocessed input anyway.
package cpp
