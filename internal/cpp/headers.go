package cpp

// BuiltinHeaders are minimal versions of the standard C headers used by
// the benchmark suite. The declarations match the library-function
// summaries registered in internal/libsum; the analysis never sees the
// bodies of these functions (the paper likewise supplies hand-written
// summaries of the potential pointer assignments in each library routine).
var BuiltinHeaders = map[string]string{
	"stddef.h": `
#ifndef _STDDEF_H
#define _STDDEF_H
#define NULL 0
typedef unsigned long size_t;
#endif
`,
	"stdarg.h": `
#ifndef _STDARG_H
#define _STDARG_H
typedef char *va_list;
#define va_start(ap, last) (ap = (char *)0)
#define va_arg(ap, type) (0)
#define va_end(ap) (ap = (char *)0)
#endif
`,
	"stdlib.h": `
#ifndef _STDLIB_H
#define _STDLIB_H
#include <stddef.h>
void *malloc(size_t n);
void *calloc(size_t n, size_t sz);
void *realloc(void *p, size_t n);
void free(void *p);
void exit(int code);
void abort(void);
int atoi(const char *s);
long atol(const char *s);
double atof(const char *s);
int abs(int x);
long labs(long x);
int rand(void);
void srand(unsigned int seed);
void qsort(void *base, size_t n, size_t sz, int (*cmp)(const void *, const void *));
void *bsearch(const void *key, const void *base, size_t n, size_t sz,
              int (*cmp)(const void *, const void *));
char *getenv(const char *name);
int system(const char *cmd);
#define RAND_MAX 2147483647
#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1
#endif
`,
	"unistd.h": `
#ifndef _UNISTD_H
#define _UNISTD_H
int execl(const char *path, const char *arg0, const char *arg1);
int execlp(const char *file, const char *arg0, const char *arg1);
int execv(const char *path, char *const argv[]);
int execvp(const char *file, char *const argv[]);
#endif
`,
	"string.h": `
#ifndef _STRING_H
#define _STRING_H
#include <stddef.h>
void *memcpy(void *dst, const void *src, size_t n);
void *memmove(void *dst, const void *src, size_t n);
void *memset(void *dst, int c, size_t n);
int memcmp(const void *a, const void *b, size_t n);
char *strcpy(char *dst, const char *src);
char *strncpy(char *dst, const char *src, size_t n);
char *strcat(char *dst, const char *src);
char *strncat(char *dst, const char *src, size_t n);
int strcmp(const char *a, const char *b);
int strncmp(const char *a, const char *b, size_t n);
size_t strlen(const char *s);
char *strchr(const char *s, int c);
char *strrchr(const char *s, int c);
char *strstr(const char *hay, const char *needle);
char *strtok(char *s, const char *delim);
char *strdup(const char *s);
char *strpbrk(const char *s, const char *accept);
size_t strspn(const char *s, const char *accept);
size_t strcspn(const char *s, const char *reject);
#endif
`,
	"stdio.h": `
#ifndef _STDIO_H
#define _STDIO_H
#include <stddef.h>
typedef struct _iobuf { int _cnt; char *_ptr; char *_base; int _flag; int _fd; } FILE;
extern FILE *stdin;
extern FILE *stdout;
extern FILE *stderr;
#define EOF (-1)
#define BUFSIZ 1024
FILE *fopen(const char *path, const char *mode);
int fclose(FILE *f);
int fflush(FILE *f);
int fgetc(FILE *f);
int getc(FILE *f);
int getchar(void);
char *fgets(char *buf, int n, FILE *f);
char *gets(char *buf);
int fputc(int c, FILE *f);
int putc(int c, FILE *f);
int putchar(int c);
int fputs(const char *s, FILE *f);
int puts(const char *s);
size_t fread(void *buf, size_t sz, size_t n, FILE *f);
size_t fwrite(const void *buf, size_t sz, size_t n, FILE *f);
int fseek(FILE *f, long off, int whence);
long ftell(FILE *f);
void rewind(FILE *f);
int feof(FILE *f);
int ferror(FILE *f);
int printf(const char *fmt, ...);
int fprintf(FILE *f, const char *fmt, ...);
int sprintf(char *buf, const char *fmt, ...);
int scanf(const char *fmt, ...);
int fscanf(FILE *f, const char *fmt, ...);
int sscanf(const char *s, const char *fmt, ...);
int ungetc(int c, FILE *f);
int remove(const char *path);
int rename(const char *from, const char *to);
#define SEEK_SET 0
#define SEEK_CUR 1
#define SEEK_END 2
#endif
`,
	"math.h": `
#ifndef _MATH_H
#define _MATH_H
double sqrt(double x);
double fabs(double x);
double exp(double x);
double log(double x);
double log10(double x);
double sin(double x);
double cos(double x);
double tan(double x);
double atan(double x);
double atan2(double y, double x);
double pow(double x, double y);
double floor(double x);
double ceil(double x);
double fmod(double x, double y);
#define M_PI 3.14159265358979323846
#define HUGE_VAL 1e308
#endif
`,
	"ctype.h": `
#ifndef _CTYPE_H
#define _CTYPE_H
int isalpha(int c);
int isdigit(int c);
int isalnum(int c);
int isspace(int c);
int isupper(int c);
int islower(int c);
int ispunct(int c);
int isprint(int c);
int toupper(int c);
int tolower(int c);
#endif
`,
	"assert.h": `
#ifndef _ASSERT_H
#define _ASSERT_H
void _assert_fail(const char *msg);
#define assert(e) ((e) ? 0 : (_assert_fail("assert"), 0))
#endif
`,
	"limits.h": `
#ifndef _LIMITS_H
#define _LIMITS_H
#define CHAR_BIT 8
#define CHAR_MAX 127
#define CHAR_MIN (-128)
#define INT_MAX 2147483647
#define INT_MIN (-2147483647 - 1)
#define LONG_MAX 9223372036854775807L
#define LONG_MIN (-9223372036854775807L - 1L)
#define UCHAR_MAX 255
#define USHRT_MAX 65535
#define SHRT_MAX 32767
#define SHRT_MIN (-32768)
#endif
`,
}
