package cpp

import (
	"wlpa/internal/ctok"
)

// evalCond evaluates a #if / #elif controlling expression. Per the C
// rules, defined(X) and defined X are evaluated first, then remaining
// macros are expanded, then any identifiers left over evaluate to 0.
func (st *state) evalCond(pos ctok.Pos, line []ctok.Token) (int64, error) {
	// Replace defined(...) before macro expansion.
	var pre []ctok.Token
	for i := 0; i < len(line); i++ {
		t := line[i]
		if t.Kind == ctok.Ident && t.Text == "defined" {
			name := ""
			if i+1 < len(line) && line[i+1].Kind == ctok.Ident {
				name = line[i+1].Text
				i++
			} else if i+3 < len(line) && line[i+1].Kind == ctok.LParen &&
				line[i+2].Kind == ctok.Ident && line[i+3].Kind == ctok.RParen {
				name = line[i+2].Text
				i += 3
			} else {
				return 0, st.errorf(pos, "bad defined() syntax")
			}
			v := int64(0)
			if _, ok := st.macros[name]; ok {
				v = 1
			}
			pre = append(pre, ctok.Token{Kind: ctok.IntLit, IntVal: v, Pos: t.Pos})
			continue
		}
		pre = append(pre, t)
	}
	expanded, err := st.rescan(pre, nil)
	if err != nil {
		return 0, err
	}
	// Remaining identifiers become 0.
	for i := range expanded {
		if expanded[i].Kind == ctok.Ident || expanded[i].Kind == ctok.Keyword {
			expanded[i] = ctok.Token{Kind: ctok.IntLit, IntVal: 0, Pos: expanded[i].Pos}
		}
	}
	p := &condParser{st: st, pos: pos, toks: expanded}
	v, err := p.parseTernary()
	if err != nil {
		return 0, err
	}
	if p.i < len(p.toks) {
		return 0, st.errorf(pos, "trailing tokens in #if expression")
	}
	return v, nil
}

type condParser struct {
	st   *state
	pos  ctok.Pos
	toks []ctok.Token
	i    int
}

func (p *condParser) peek() ctok.Kind {
	if p.i >= len(p.toks) {
		return ctok.EOF
	}
	return p.toks[p.i].Kind
}

func (p *condParser) next() ctok.Token {
	t := p.toks[p.i]
	p.i++
	return t
}

func (p *condParser) parseTernary() (int64, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return 0, err
	}
	if p.peek() != ctok.Question {
		return cond, nil
	}
	p.next()
	a, err := p.parseTernary()
	if err != nil {
		return 0, err
	}
	if p.peek() != ctok.Colon {
		return 0, p.st.errorf(p.pos, "missing ':' in #if ?:")
	}
	p.next()
	b, err := p.parseTernary()
	if err != nil {
		return 0, err
	}
	if cond != 0 {
		return a, nil
	}
	return b, nil
}

// binary operator precedence for #if expressions.
var condPrec = map[ctok.Kind]int{
	ctok.OrOr: 1, ctok.AndAnd: 2, ctok.Pipe: 3, ctok.Caret: 4, ctok.Amp: 5,
	ctok.Eq: 6, ctok.Ne: 6,
	ctok.Lt: 7, ctok.Gt: 7, ctok.Le: 7, ctok.Ge: 7,
	ctok.Shl: 8, ctok.Shr: 8,
	ctok.Plus: 9, ctok.Minus: 9,
	ctok.Star: 10, ctok.Slash: 10, ctok.Percent: 10,
}

func (p *condParser) parseBinary(min int) (int64, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		prec, ok := condPrec[p.peek()]
		if !ok || prec < min {
			return lhs, nil
		}
		op := p.next().Kind
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return 0, err
		}
		lhs, err = applyCondOp(p, op, lhs, rhs)
		if err != nil {
			return 0, err
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func applyCondOp(p *condParser, op ctok.Kind, a, b int64) (int64, error) {
	switch op {
	case ctok.OrOr:
		return b2i(a != 0 || b != 0), nil
	case ctok.AndAnd:
		return b2i(a != 0 && b != 0), nil
	case ctok.Pipe:
		return a | b, nil
	case ctok.Caret:
		return a ^ b, nil
	case ctok.Amp:
		return a & b, nil
	case ctok.Eq:
		return b2i(a == b), nil
	case ctok.Ne:
		return b2i(a != b), nil
	case ctok.Lt:
		return b2i(a < b), nil
	case ctok.Gt:
		return b2i(a > b), nil
	case ctok.Le:
		return b2i(a <= b), nil
	case ctok.Ge:
		return b2i(a >= b), nil
	case ctok.Shl:
		return a << uint(b&63), nil
	case ctok.Shr:
		return a >> uint(b&63), nil
	case ctok.Plus:
		return a + b, nil
	case ctok.Minus:
		return a - b, nil
	case ctok.Star:
		return a * b, nil
	case ctok.Slash:
		if b == 0 {
			return 0, p.st.errorf(p.pos, "division by zero in #if")
		}
		return a / b, nil
	case ctok.Percent:
		if b == 0 {
			return 0, p.st.errorf(p.pos, "division by zero in #if")
		}
		return a % b, nil
	}
	return 0, p.st.errorf(p.pos, "bad operator in #if")
}

func (p *condParser) parseUnary() (int64, error) {
	switch p.peek() {
	case ctok.Not:
		p.next()
		v, err := p.parseUnary()
		return b2i(v == 0), err
	case ctok.Minus:
		p.next()
		v, err := p.parseUnary()
		return -v, err
	case ctok.Plus:
		p.next()
		return p.parseUnary()
	case ctok.Tilde:
		p.next()
		v, err := p.parseUnary()
		return ^v, err
	case ctok.LParen:
		p.next()
		v, err := p.parseTernary()
		if err != nil {
			return 0, err
		}
		if p.peek() != ctok.RParen {
			return 0, p.st.errorf(p.pos, "missing ')' in #if expression")
		}
		p.next()
		return v, nil
	case ctok.IntLit, ctok.CharLit:
		return p.next().IntVal, nil
	}
	return 0, p.st.errorf(p.pos, "bad token in #if expression")
}
