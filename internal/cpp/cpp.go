package cpp

import (
	"fmt"
	"strings"

	"wlpa/internal/ctok"
)

// Source is an in-memory file set mapping file names to contents.
type Source map[string]string

// Macro is a preprocessor macro definition.
type Macro struct {
	Name     string
	Params   []string // nil for object-like macros
	IsFunc   bool
	Variadic bool
	Body     []ctok.Token
}

// Error is a preprocessing error with a position.
type Error struct {
	Pos ctok.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type state struct {
	files   Source
	macros  map[string]*Macro
	out     []ctok.Token
	include []string // include stack for cycle detection
	depth   int
}

const maxIncludeDepth = 64

// Preprocess expands the translation unit rooted at entry and returns the
// resulting token stream (ending in EOF). Files named in #include <...>
// that are not present in files are resolved against the built-in libc
// headers (see headers.go); unknown headers are an error.
func Preprocess(files Source, entry string, predefined map[string]string) ([]ctok.Token, error) {
	st := &state{files: files, macros: make(map[string]*Macro)}
	for name, val := range predefined {
		toks, err := ctok.Tokenize("<predefined>", val)
		if err != nil {
			return nil, err
		}
		st.macros[name] = &Macro{Name: name, Body: toks[:len(toks)-1]}
	}
	if err := st.processFile(entry, ctok.Pos{}); err != nil {
		return nil, err
	}
	st.out = append(st.out, ctok.Token{Kind: ctok.EOF, LeadingNewline: true})
	return st.out, nil
}

func (st *state) errorf(p ctok.Pos, format string, args ...any) error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func (st *state) lookupFile(name string, system bool) (string, bool) {
	if !system {
		if src, ok := st.files[name]; ok {
			return src, true
		}
	}
	if src, ok := BuiltinHeaders[name]; ok {
		return src, true
	}
	// Fall back to user files for <...> includes too.
	if src, ok := st.files[name]; ok {
		return src, true
	}
	return "", false
}

func (st *state) processFile(name string, from ctok.Pos) error {
	if st.depth >= maxIncludeDepth {
		return st.errorf(from, "#include nesting too deep (cycle including %q?)", name)
	}
	for _, f := range st.include {
		if f == name {
			// Repeated inclusion is permitted (headers are
			// idempotent here), but a direct cycle is not.
			break
		}
	}
	src, ok := st.files[name]
	if !ok {
		if b, okb := BuiltinHeaders[name]; okb {
			src = b
		} else {
			return st.errorf(from, "include file %q not found", name)
		}
	}
	st.depth++
	st.include = append(st.include, name)
	err := st.processTokens(name, src)
	st.include = st.include[:len(st.include)-1]
	st.depth--
	return err
}

// condState tracks one #if level.
type condState struct {
	active     bool // tokens in the current branch are emitted
	everTaken  bool // some branch at this level was taken
	parentLive bool
	seenElse   bool
	pos        ctok.Pos
}

func (st *state) processTokens(file, src string) error {
	toks, err := ctok.Tokenize(file, src)
	if err != nil {
		return err
	}
	var conds []condState
	live := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}
	i := 0
	for i < len(toks) {
		t := toks[i]
		if t.Kind == ctok.EOF {
			break
		}
		if t.Kind == ctok.Hash && t.LeadingNewline {
			// Directive: gather tokens to end of line.
			j := i + 1
			for j < len(toks) && toks[j].Kind != ctok.EOF && !toks[j].LeadingNewline {
				j++
			}
			line := toks[i+1 : j]
			n, err := st.directive(t.Pos, line, &conds, live)
			if err != nil {
				return err
			}
			_ = n
			i = j
			continue
		}
		if !live() {
			i++
			continue
		}
		n, err := st.expandFrom(toks, i)
		if err != nil {
			return err
		}
		i = n
	}
	if len(conds) > 0 {
		return st.errorf(conds[len(conds)-1].pos, "unterminated #if")
	}
	return nil
}

func (st *state) directive(pos ctok.Pos, line []ctok.Token, conds *[]condState, live func() bool) (int, error) {
	if len(line) == 0 {
		return 0, nil // null directive
	}
	name := line[0].Text
	switch name {
	case "include":
		if !live() {
			return 0, nil
		}
		return 0, st.doInclude(pos, line[1:])
	case "define":
		if !live() {
			return 0, nil
		}
		return 0, st.doDefine(pos, line[1:])
	case "undef":
		if !live() {
			return 0, nil
		}
		if len(line) < 2 || line[1].Kind != ctok.Ident {
			return 0, st.errorf(pos, "#undef expects a name")
		}
		delete(st.macros, line[1].Text)
		return 0, nil
	case "ifdef", "ifndef":
		taken := false
		if live() {
			if len(line) < 2 {
				return 0, st.errorf(pos, "#%s expects a name", name)
			}
			_, defined := st.macros[line[1].Text]
			taken = defined == (name == "ifdef")
		}
		*conds = append(*conds, condState{active: taken, everTaken: taken, parentLive: live(), pos: pos})
		return 0, nil
	case "if":
		taken := false
		if live() {
			v, err := st.evalCond(pos, line[1:])
			if err != nil {
				return 0, err
			}
			taken = v != 0
		}
		*conds = append(*conds, condState{active: taken, everTaken: taken, parentLive: live(), pos: pos})
		return 0, nil
	case "elif":
		if len(*conds) == 0 {
			return 0, st.errorf(pos, "#elif without #if")
		}
		c := &(*conds)[len(*conds)-1]
		if c.seenElse {
			return 0, st.errorf(pos, "#elif after #else")
		}
		if c.everTaken || !c.parentLive {
			c.active = false
			return 0, nil
		}
		v, err := st.evalCond(pos, line[1:])
		if err != nil {
			return 0, err
		}
		c.active = v != 0
		c.everTaken = c.active
		return 0, nil
	case "else":
		if len(*conds) == 0 {
			return 0, st.errorf(pos, "#else without #if")
		}
		c := &(*conds)[len(*conds)-1]
		if c.seenElse {
			return 0, st.errorf(pos, "duplicate #else")
		}
		c.seenElse = true
		c.active = c.parentLive && !c.everTaken
		c.everTaken = true
		return 0, nil
	case "endif":
		if len(*conds) == 0 {
			return 0, st.errorf(pos, "#endif without #if")
		}
		*conds = (*conds)[:len(*conds)-1]
		return 0, nil
	case "pragma":
		return 0, nil
	case "error":
		if !live() {
			return 0, nil
		}
		var sb strings.Builder
		for _, t := range line[1:] {
			sb.WriteString(t.Text)
			sb.WriteByte(' ')
		}
		return 0, st.errorf(pos, "#error %s", strings.TrimSpace(sb.String()))
	default:
		return 0, st.errorf(pos, "unknown directive #%s", name)
	}
}

func (st *state) doInclude(pos ctok.Pos, line []ctok.Token) error {
	if len(line) == 0 {
		return st.errorf(pos, "#include expects a file name")
	}
	if line[0].Kind == ctok.StringLit {
		return st.processFile(line[0].Text, pos)
	}
	if line[0].Kind == ctok.Lt {
		var sb strings.Builder
		for _, t := range line[1:] {
			if t.Kind == ctok.Gt {
				name := sb.String()
				if _, ok := st.lookupFile(name, true); !ok {
					return st.errorf(pos, "system header <%s> not available", name)
				}
				src, _ := st.lookupFile(name, true)
				st.depth++
				err := st.processTokens(name, src)
				st.depth--
				return err
			}
			switch t.Kind {
			case ctok.Ident, ctok.Keyword:
				sb.WriteString(t.Text)
			case ctok.Dot:
				sb.WriteByte('.')
			case ctok.Slash:
				sb.WriteByte('/')
			case ctok.Minus:
				sb.WriteByte('-')
			default:
				return st.errorf(pos, "bad token in #include <...>")
			}
		}
		return st.errorf(pos, "missing '>' in #include")
	}
	return st.errorf(pos, "bad #include syntax")
}

func (st *state) doDefine(pos ctok.Pos, line []ctok.Token) error {
	if len(line) == 0 || (line[0].Kind != ctok.Ident && line[0].Kind != ctok.Keyword) {
		return st.errorf(pos, "#define expects a name")
	}
	m := &Macro{Name: line[0].Text}
	rest := line[1:]
	// Function-like only if '(' immediately follows the name. The lexer
	// does not record adjacency, so approximate with column positions.
	if len(rest) > 0 && rest[0].Kind == ctok.LParen &&
		rest[0].Pos.Line == line[0].Pos.Line &&
		rest[0].Pos.Col == line[0].Pos.Col+len(line[0].Text) {
		m.IsFunc = true
		i := 1
		for i < len(rest) && rest[i].Kind != ctok.RParen {
			switch rest[i].Kind {
			case ctok.Ident:
				m.Params = append(m.Params, rest[i].Text)
			case ctok.Ellipsis:
				m.Variadic = true
			case ctok.Comma:
			default:
				return st.errorf(pos, "bad macro parameter list")
			}
			i++
		}
		if i >= len(rest) {
			return st.errorf(pos, "unterminated macro parameter list")
		}
		rest = rest[i+1:]
	}
	m.Body = rest
	st.macros[m.Name] = m
	return nil
}

// expandFrom expands the macro (if any) at toks[i], appending the result
// to st.out, and returns the index of the next unconsumed token.
func (st *state) expandFrom(toks []ctok.Token, i int) (int, error) {
	out, next, err := st.expandInto(st.out, toks, i, nil)
	if err != nil {
		return 0, err
	}
	st.out = out
	return next, nil
}

// expandInto appends the fully expanded token sequence for the token at
// toks[i] (plus, for function-like macros, its argument list) to dst,
// returning the extended slice and the next index. hide is the set of
// macro names not to re-expand. Ordinary non-macro tokens — the
// overwhelmingly common case — append straight to dst with no
// intermediate allocation.
func (st *state) expandInto(dst []ctok.Token, toks []ctok.Token, i int, hide map[string]bool) ([]ctok.Token, int, error) {
	t := toks[i]
	if t.Kind != ctok.Ident {
		return append(dst, t), i + 1, nil
	}
	m, ok := st.macros[t.Text]
	if !ok || hide[t.Text] {
		return append(dst, t), i + 1, nil
	}
	if !m.IsFunc {
		body := retag(m.Body, t.Pos)
		out, err := st.rescanInto(dst, body, addHide(hide, m.Name))
		return out, i + 1, err
	}
	// Function-like: need '(' next; otherwise leave the name alone.
	if i+1 >= len(toks) || toks[i+1].Kind != ctok.LParen {
		return append(dst, t), i + 1, nil
	}
	args, next, err := st.collectArgs(toks, i+1)
	if err != nil {
		return nil, 0, err
	}
	if len(args) == 1 && len(args[0]) == 0 && len(m.Params) == 0 {
		args = nil
	}
	if len(args) < len(m.Params) || (len(args) > len(m.Params) && !m.Variadic) {
		return nil, 0, st.errorf(t.Pos, "macro %s expects %d arguments, got %d", m.Name, len(m.Params), len(args))
	}
	// Substitute parameters (arguments are expanded before substitution).
	var body []ctok.Token
	for _, bt := range m.Body {
		if bt.Kind == ctok.Ident {
			if idx := paramIndex(m.Params, bt.Text); idx >= 0 {
				ex, err := st.rescan(args[idx], hide)
				if err != nil {
					return nil, 0, err
				}
				body = append(body, ex...)
				continue
			}
		}
		body = append(body, bt)
	}
	body = retag(body, t.Pos)
	out, err := st.rescanInto(dst, body, addHide(hide, m.Name))
	return out, next, err
}

func paramIndex(params []string, name string) int {
	for i, p := range params {
		if p == name {
			return i
		}
	}
	return -1
}

func addHide(hide map[string]bool, name string) map[string]bool {
	nh := make(map[string]bool, len(hide)+1)
	for k := range hide {
		nh[k] = true
	}
	nh[name] = true
	return nh
}

// retag rewrites token positions to the macro invocation site so that
// downstream diagnostics point at the use, and clears newline flags so a
// multi-line macro body cannot be mistaken for a directive boundary.
func retag(body []ctok.Token, pos ctok.Pos) []ctok.Token {
	out := make([]ctok.Token, len(body))
	for i, t := range body {
		t.Pos = pos
		t.LeadingNewline = false
		out[i] = t
	}
	return out
}

// rescan re-expands macros appearing in a substituted body.
func (st *state) rescan(body []ctok.Token, hide map[string]bool) ([]ctok.Token, error) {
	return st.rescanInto(nil, body, hide)
}

// rescanInto expands body appending to dst, returning the extended slice.
func (st *state) rescanInto(dst, body []ctok.Token, hide map[string]bool) ([]ctok.Token, error) {
	i := 0
	for i < len(body) {
		var err error
		dst, i, err = st.expandInto(dst, body, i, hide)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// collectArgs parses a macro argument list starting at the '(' in
// toks[open]; it returns the raw (unexpanded) argument token lists and the
// index after the closing ')'.
func (st *state) collectArgs(toks []ctok.Token, open int) ([][]ctok.Token, int, error) {
	depth := 0
	var args [][]ctok.Token
	var cur []ctok.Token
	i := open
	for ; i < len(toks); i++ {
		t := toks[i]
		switch t.Kind {
		case ctok.LParen:
			depth++
			if depth > 1 {
				cur = append(cur, t)
			}
		case ctok.RParen:
			depth--
			if depth == 0 {
				args = append(args, cur)
				return args, i + 1, nil
			}
			cur = append(cur, t)
		case ctok.Comma:
			if depth == 1 {
				args = append(args, cur)
				cur = nil
			} else {
				cur = append(cur, t)
			}
		case ctok.EOF:
			return nil, 0, st.errorf(toks[open].Pos, "unterminated macro argument list")
		default:
			cur = append(cur, t)
		}
	}
	return nil, 0, st.errorf(toks[open].Pos, "unterminated macro argument list")
}
