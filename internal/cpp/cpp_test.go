package cpp

import (
	"strings"
	"testing"

	"wlpa/internal/ctok"
)

// render joins the token texts for easy comparison.
func render(toks []ctok.Token) string {
	var parts []string
	for _, t := range toks {
		if t.Kind == ctok.EOF {
			break
		}
		switch t.Kind {
		case ctok.Ident, ctok.Keyword, ctok.IntLit, ctok.FloatLit:
			parts = append(parts, t.Text)
		case ctok.StringLit:
			parts = append(parts, `"`+t.Text+`"`)
		case ctok.CharLit:
			parts = append(parts, t.Text)
		default:
			parts = append(parts, t.Kind.String())
		}
	}
	return strings.Join(parts, " ")
}

func pp(t *testing.T, files Source, entry string) string {
	t.Helper()
	toks, err := Preprocess(files, entry, nil)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	return render(toks)
}

func TestObjectMacro(t *testing.T) {
	got := pp(t, Source{"a.c": "#define N 10\nint x[N];"}, "a.c")
	if got != "int x [ 10 ] ;" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacro(t *testing.T) {
	got := pp(t, Source{"a.c": "#define SQ(x) ((x)*(x))\nint y = SQ(a+1);"}, "a.c")
	if got != "int y = ( ( a + 1 ) * ( a + 1 ) ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacroNotCalled(t *testing.T) {
	// A function-like macro name without '(' is left alone.
	got := pp(t, Source{"a.c": "#define F(x) x\nint F;"}, "a.c")
	if got != "int F ;" {
		t.Errorf("got %q", got)
	}
}

func TestNestedMacroExpansion(t *testing.T) {
	src := "#define A B\n#define B 42\nint x = A;"
	got := pp(t, Source{"a.c": src}, "a.c")
	if got != "int x = 42 ;" {
		t.Errorf("got %q", got)
	}
}

func TestRecursiveMacroDoesNotLoop(t *testing.T) {
	src := "#define X X\nint X;"
	got := pp(t, Source{"a.c": src}, "a.c")
	if got != "int X ;" {
		t.Errorf("got %q", got)
	}
}

func TestUndef(t *testing.T) {
	src := "#define N 1\n#undef N\nint x = N;"
	got := pp(t, Source{"a.c": src}, "a.c")
	if got != "int x = N ;" {
		t.Errorf("got %q", got)
	}
}

func TestIfdef(t *testing.T) {
	src := "#define A\n#ifdef A\nint yes;\n#else\nint no;\n#endif"
	got := pp(t, Source{"a.c": src}, "a.c")
	if got != "int yes ;" {
		t.Errorf("got %q", got)
	}
}

func TestIfndef(t *testing.T) {
	src := "#ifndef A\nint yes;\n#endif\n#define A\n#ifndef A\nint no;\n#endif"
	got := pp(t, Source{"a.c": src}, "a.c")
	if got != "int yes ;" {
		t.Errorf("got %q", got)
	}
}

func TestIfExpression(t *testing.T) {
	cases := []struct {
		cond string
		want bool
	}{
		{"1", true}, {"0", false}, {"1+1 == 2", true}, {"3 > 4", false},
		{"defined(FOO)", false}, {"!defined(FOO)", true},
		{"(1 ? 2 : 3) == 2", true}, {"1 && 0", false}, {"1 || 0", true},
		{"0xff & 0x0f", true}, {"2 << 3 == 16", true},
		{"UNKNOWN_IDENT", false},
	}
	for _, c := range cases {
		src := "#if " + c.cond + "\nint yes;\n#endif"
		got := pp(t, Source{"a.c": src}, "a.c")
		if (got == "int yes ;") != c.want {
			t.Errorf("#if %s: got %q, want taken=%v", c.cond, got, c.want)
		}
	}
}

func TestElif(t *testing.T) {
	src := "#define V 2\n#if V == 1\nint a;\n#elif V == 2\nint b;\n#else\nint c;\n#endif"
	got := pp(t, Source{"a.c": src}, "a.c")
	if got != "int b ;" {
		t.Errorf("got %q", got)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := `#define A
#ifdef A
#ifdef B
int ab;
#else
int a_only;
#endif
#endif`
	got := pp(t, Source{"a.c": src}, "a.c")
	if got != "int a_only ;" {
		t.Errorf("got %q", got)
	}
}

func TestInactiveBranchSkipsBadDirectives(t *testing.T) {
	// Macros defined in a dead branch must not take effect.
	src := "#if 0\n#define N 99\n#endif\nint x = N;"
	got := pp(t, Source{"a.c": src}, "a.c")
	if got != "int x = N ;" {
		t.Errorf("got %q", got)
	}
}

func TestUserInclude(t *testing.T) {
	files := Source{
		"main.c": "#include \"defs.h\"\nint x = VALUE;",
		"defs.h": "#define VALUE 7",
	}
	got := pp(t, files, "main.c")
	if got != "int x = 7 ;" {
		t.Errorf("got %q", got)
	}
}

func TestSystemIncludeStdlib(t *testing.T) {
	got := pp(t, Source{"a.c": "#include <stdlib.h>\nint z;"}, "a.c")
	if !strings.Contains(got, "malloc") {
		t.Error("stdlib.h should declare malloc")
	}
	if !strings.Contains(got, "qsort") {
		t.Error("stdlib.h should declare qsort")
	}
	if !strings.HasSuffix(got, "int z ;") {
		t.Errorf("user code missing: %q", got[max(0, len(got)-40):])
	}
}

func TestIncludeGuardIdempotent(t *testing.T) {
	src := "#include <string.h>\n#include <string.h>\nint z;"
	got := pp(t, Source{"a.c": src}, "a.c")
	if strings.Count(got, "strcpy") != 1 {
		t.Errorf("strcpy declared %d times", strings.Count(got, "strcpy"))
	}
}

func TestMissingInclude(t *testing.T) {
	if _, err := Preprocess(Source{"a.c": `#include "nope.h"`}, "a.c", nil); err == nil {
		t.Error("expected error for missing include")
	}
}

func TestErrorDirective(t *testing.T) {
	if _, err := Preprocess(Source{"a.c": "#error bad config"}, "a.c", nil); err == nil {
		t.Error("expected #error to fail")
	}
	// #error inside a dead branch is fine.
	if _, err := Preprocess(Source{"a.c": "#if 0\n#error no\n#endif"}, "a.c", nil); err != nil {
		t.Errorf("dead #error should be skipped: %v", err)
	}
}

func TestUnterminatedIf(t *testing.T) {
	if _, err := Preprocess(Source{"a.c": "#if 1\nint x;"}, "a.c", nil); err == nil {
		t.Error("expected error for unterminated #if")
	}
}

func TestPredefinedMacros(t *testing.T) {
	toks, err := Preprocess(Source{"a.c": "int v = LIMIT;"}, "a.c", map[string]string{"LIMIT": "64"})
	if err != nil {
		t.Fatal(err)
	}
	if render(toks) != "int v = 64 ;" {
		t.Errorf("got %q", render(toks))
	}
}

func TestMultiLineMacro(t *testing.T) {
	src := "#define SWAP(a,b) { int t = a; \\\n a = b; b = t; }\nSWAP(x,y)"
	got := pp(t, Source{"a.c": src}, "a.c")
	want := "{ int t = x ; x = y ; y = t ; }"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestMacroArgWithCommasInParens(t *testing.T) {
	src := "#define ID(x) x\nID(f(a, b))"
	got := pp(t, Source{"a.c": src}, "a.c")
	if got != "f ( a , b )" {
		t.Errorf("got %q", got)
	}
}

func TestVariadicMacroAccepted(t *testing.T) {
	// The assert macro from assert.h must expand.
	src := "#include <assert.h>\nvoid f(void) { assert(x > 0); }"
	got := pp(t, Source{"a.c": src}, "a.c")
	if !strings.Contains(got, "_assert_fail") {
		t.Errorf("assert not expanded: %q", got)
	}
}

func TestPragmaIgnored(t *testing.T) {
	got := pp(t, Source{"a.c": "#pragma once\nint x;"}, "a.c")
	if got != "int x ;" {
		t.Errorf("got %q", got)
	}
}

func TestAllBuiltinHeadersPreprocess(t *testing.T) {
	for name := range BuiltinHeaders {
		src := "#include <" + name + ">\nint main_marker;"
		if _, err := Preprocess(Source{"a.c": src}, "a.c", nil); err != nil {
			t.Errorf("header %s: %v", name, err)
		}
	}
}
