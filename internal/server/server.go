package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"wlpa/internal/cfg"
	"wlpa/internal/irhash"
	"wlpa/internal/store"
	"wlpa/pta"
)

// procArtifactFormat versions the per-procedure ledger entries.
const procArtifactFormat = "wlpa/procart/v1"

// maxRequestBytes bounds the /analyze request body (source text).
const maxRequestBytes = 32 << 20

// Config configures a Server.
type Config struct {
	// Store is the content-addressed cache (required).
	Store *store.Store
	// Options are the analysis options applied to every request.
	// Workers and Timeout do not affect results and are excluded from
	// the cache key (results are bit-identical at every worker count).
	Options pta.Options
	// MaxInflight bounds concurrent engine runs (cache hits are not
	// throttled); 0 means 2. A request that cannot get a slot before
	// its context is done gets 503.
	MaxInflight int
	// BaselineCap bounds how many warm-edit baselines are held for
	// incremental grafting; 0 means 8. Each baseline pins a full
	// converged analysis, so this is the daemon's main memory knob.
	BaselineCap int
	// Logger receives structured request logs (nil = slog.Default()).
	Logger *slog.Logger
}

// Server answers analysis requests out of the cache, running the engine
// only on misses. See the package comment for the key structure.
type Server struct {
	cfg       Config
	store     *store.Store
	optsFP    string
	log       *slog.Logger
	sem       chan struct{}
	metrics   *metrics
	baselines *baselineRegistry
	queries   *queryRegistry
	started   time.Time
}

// New builds a Server; Handler exposes it as an http.Handler.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	return &Server{
		cfg:       cfg,
		store:     cfg.Store,
		optsFP:    optionsFingerprint(cfg.Options),
		log:       log,
		sem:       make(chan struct{}, cfg.MaxInflight),
		metrics:   newMetrics(),
		baselines: newBaselineRegistry(cfg.BaselineCap),
		queries:   newQueryRegistry(),
		started:   time.Now(),
	}, nil
}

// optionsFingerprint renders the result-affecting analysis options.
// Workers and Timeout are deliberately excluded: they change wall-clock
// behaviour, never the answer (pinned by the engine equivalence tests
// and TestSnapshotBytesDeterministic).
func optionsFingerprint(o pta.Options) string {
	return fmt.Sprintf("policy=%d maxptfs=%d combine=%v forcefull=%v",
		o.Policy, o.MaxPTFs, o.CombineOffsets, o.ForceFullPasses)
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /analyze", s.handleAnalyze)
	mux.HandleFunc("GET /query", s.handleQueryGet)
	mux.HandleFunc("POST /query", s.handleQueryPost)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot()
	snap.UptimeSeconds = time.Since(s.started).Seconds()
	snap.Store = s.store.Stats()
	snap.Baselines.Capacity, snap.Baselines.Occupancy, snap.Baselines.Evictions = s.baselines.stats()
	snap.Query.Occupancy, snap.Query.Evictions = s.queries.stats()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.metrics.mu.Lock()
	s.metrics.analyzeRequests++
	s.metrics.inflight++
	s.metrics.mu.Unlock()
	defer func() {
		s.metrics.mu.Lock()
		s.metrics.inflight--
		s.metrics.mu.Unlock()
	}()

	var req AnalyzeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, r, t0, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Files) == 0 || req.Entry == "" || req.Files[req.Entry] == "" {
		s.fail(w, r, t0, http.StatusBadRequest,
			fmt.Errorf("request must carry files and an entry naming one of them"))
		return
	}

	// Frontend + content hash: cheap relative to the engine, and the
	// only work a warm request pays. The flow graphs are built once and
	// shared between hashing and the incremental graft below.
	prog, err := pta.Frontend(pta.Source(req.Files), req.Entry, s.cfg.Options.Predefined)
	if err != nil {
		s.fail(w, r, t0, http.StatusUnprocessableEntity, err)
		return
	}
	procs, err := cfg.BuildAll(prog.Funcs)
	if err != nil {
		s.fail(w, r, t0, http.StatusUnprocessableEntity, err)
		return
	}
	ir := irhash.HashProcs(prog, procs)
	hashDur := time.Since(t0)
	s.metrics.observe("hash", ms(hashDur))

	key := store.KeyOf("program", pta.SnapshotFormat, s.optsFP,
		fmt.Sprintf("diags=%v", req.Diagnostics), ir.Root)
	meta := AnalyzeMeta{Key: key.String(), HashMS: ms(hashDur)}

	if data, ok := s.store.Get(key); ok {
		meta.Cache = "hit"
		meta.TotalMS = ms(time.Since(t0))
		s.metrics.mu.Lock()
		s.metrics.analyzeHits++
		s.metrics.mu.Unlock()
		s.metrics.observe("total", meta.TotalMS)
		s.logRequest(r, http.StatusOK, t0, "hit", req.Entry, len(data))
		writeJSON(w, http.StatusOK, AnalyzeResponse{Meta: meta, Snapshot: data})
		return
	}

	// Miss: run the engine under the in-flight bound.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		s.fail(w, r, t0, http.StatusServiceUnavailable,
			fmt.Errorf("no analysis slot available: %w", r.Context().Err()))
		return
	}

	// A registered baseline for this entry turns the miss into a
	// warm-edit graft: surviving PTFs are restored and only the edit's
	// dirty cone reconverges. The result is bit-identical to the cold
	// path (pinned by difftest.CheckIncremental), so the snapshot bytes
	// and cache entry are the same either way.
	ta := time.Now()
	opts := s.cfg.Options
	var res *pta.Result
	if bl := s.baselines.take(req.Entry); bl != nil {
		res, err = pta.AnalyzeIncrementalPrepared(bl, prog, procs, ir, &opts)
	} else {
		res, err = pta.AnalyzeProgram(prog, &opts)
	}
	if err != nil {
		s.fail(w, r, t0, http.StatusUnprocessableEntity, err)
		return
	}
	analyzeDur := time.Since(ta)
	s.metrics.observe("analyze", ms(analyzeDur))
	if inc := res.Incremental(); inc != nil {
		meta.Incremental = inc
		s.metrics.mu.Lock()
		if inc.Fallback == "" {
			s.metrics.warmGrafts++
		} else {
			s.metrics.warmFallbacks++
		}
		s.metrics.mu.Unlock()
	}

	ts := time.Now()
	snap, err := res.Snapshot(&pta.SnapshotOptions{
		Fingerprint: key.String(),
		Diagnostics: req.Diagnostics,
	})
	if err != nil {
		s.fail(w, r, t0, http.StatusInternalServerError, err)
		return
	}
	data, err := snap.Encode()
	if err != nil {
		s.fail(w, r, t0, http.StatusInternalServerError, err)
		return
	}
	snapDur := time.Since(ts)
	s.metrics.observe("snapshot", ms(snapDur))

	if err := s.store.Put(key, data); err != nil {
		// A failed write-back degrades future requests to misses; this
		// one is still correct.
		s.log.Warn("cache write failed", "key", key.String(), "err", err)
	}
	meta.ProcHits, meta.ProcMisses = s.recordProcLedger(res, ir)
	// Every successful miss leaves a baseline behind for the entry's
	// next edit. The snapshot above is already built, so consuming this
	// result later cannot invalidate anything a client was served.
	s.baselines.put(req.Entry, pta.BaselineFromHash(res, ir, &opts))

	meta.Cache = "miss"
	meta.AnalyzeMS = ms(analyzeDur)
	meta.SnapshotMS = ms(snapDur)
	meta.TotalMS = ms(time.Since(t0))
	s.metrics.mu.Lock()
	s.metrics.analyzeMisses++
	s.metrics.mu.Unlock()
	s.metrics.observe("total", meta.TotalMS)
	s.logRequest(r, http.StatusOK, t0, "miss", req.Entry, len(data))
	writeJSON(w, http.StatusOK, AnalyzeResponse{Meta: meta, Snapshot: data})
}

// procArtifact is one per-procedure ledger value: the sound,
// context-independent summary identity and the artifacts it licenses
// reusing (see doc.go — feeding these back into the engine is the
// separate incremental re-analysis roadmap item).
type procArtifact struct {
	Format       string   `json:"format"`
	Proc         string   `json:"proc"`
	NumPTFs      int      `json:"num_ptfs"`
	DomainDigest string   `json:"domain_digest"`
	ModRef       []string `json:"mod_ref,omitempty"`
}

// recordProcLedger probes and populates the per-procedure ledger after
// a program-level miss, returning which procedures' summary identities
// were already known. Keys fold in everything a converged summary
// depends on: options, globals, the SCC-condensed transitive closure
// IR, and the converged input-domain digest.
func (s *Server) recordProcLedger(res *pta.Result, ir *irhash.Program) (hits, misses []string) {
	domains := res.DomainDigests()
	modRefByProc := map[string][]string{}
	for _, line := range res.ModRefDump() {
		for i := 0; i < len(line); i++ {
			if line[i] == ':' {
				modRefByProc[line[:i]] = append(modRefByProc[line[:i]], line)
				break
			}
		}
	}
	procs := res.Procedures()
	sort.Strings(procs)
	for _, proc := range procs {
		ph := ir.ProcHash(proc)
		dom, ok := domains[proc]
		if ph == nil || !ok {
			continue // library model or stub without source IR
		}
		pkey := store.KeyOf("proc", procArtifactFormat, s.optsFP, ir.Globals, ph.Closure, dom)
		if _, found := s.store.Get(pkey); found {
			hits = append(hits, proc)
			continue
		}
		misses = append(misses, proc)
		art := procArtifact{
			Format:       procArtifactFormat,
			Proc:         proc,
			NumPTFs:      res.NumPTFs(proc),
			DomainDigest: dom,
			ModRef:       modRefByProc[proc],
		}
		if data, err := json.Marshal(art); err == nil {
			if err := s.store.Put(pkey, data); err != nil {
				s.log.Warn("proc ledger write failed", "proc", proc, "err", err)
			}
		}
	}
	s.metrics.mu.Lock()
	s.metrics.procHits += uint64(len(hits))
	s.metrics.procMisses += uint64(len(misses))
	s.metrics.mu.Unlock()
	return hits, misses
}

func (s *Server) fail(w http.ResponseWriter, r *http.Request, t0 time.Time, status int, err error) {
	s.metrics.mu.Lock()
	s.metrics.errors++
	s.metrics.mu.Unlock()
	s.logRequest(r, status, t0, "", "", 0)
	s.log.Warn("request failed", "path", r.URL.Path, "status", status, "err", err)
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (s *Server) logRequest(r *http.Request, status int, t0 time.Time, cache, entry string, bytes int) {
	attrs := []any{
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"dur_ms", ms(time.Since(t0)),
	}
	if cache != "" {
		attrs = append(attrs, "cache", cache)
	}
	if entry != "" {
		attrs = append(attrs, "entry", entry)
	}
	if bytes > 0 {
		attrs = append(attrs, "bytes", bytes)
	}
	s.log.Info("request", attrs...)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
