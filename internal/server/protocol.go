package server

import (
	"encoding/json"

	"wlpa/pta"
)

// AnalyzeRequest is the POST /analyze body.
type AnalyzeRequest struct {
	// Files maps file name to source text; Entry names the entry
	// translation unit (the others are available for #include).
	Files map[string]string `json:"files"`
	Entry string            `json:"entry"`
	// Diagnostics additionally runs the checker suite and embeds its
	// findings in the snapshot. Folded into the cache key.
	Diagnostics bool `json:"diagnostics,omitempty"`
}

// AnalyzeMeta is the server-side metadata of one /analyze response. It
// is excluded from the bit-identity guarantee (timings vary run to
// run); everything deterministic lives in the snapshot.
type AnalyzeMeta struct {
	// Cache is "hit" (snapshot served from the store, engine not run)
	// or "miss" (engine ran; the result was written back).
	Cache string `json:"cache"`
	// Key is the program-level cache key, hex-encoded.
	Key string `json:"key"`
	// Timings in milliseconds: frontend+hashing, engine (0 on a hit),
	// snapshot build+encode (0 on a hit), end-to-end.
	HashMS     float64 `json:"hash_ms"`
	AnalyzeMS  float64 `json:"analyze_ms"`
	SnapshotMS float64 `json:"snapshot_ms"`
	TotalMS    float64 `json:"total_ms"`
	// On a miss, the per-procedure ledger outcome: procedures whose
	// summary identity (closure IR + input domain + globals + options)
	// was already recorded, and those recorded for the first time. A
	// single-procedure edit shows up here as misses for exactly the
	// procedures whose content hash changed. Empty on a hit (the
	// ledger is not consulted — the whole program matched).
	ProcHits   []string `json:"proc_hits,omitempty"`
	ProcMisses []string `json:"proc_misses,omitempty"`
	// Incremental is set when a warm-edit baseline was available for the
	// entry and the miss ran through the incremental engine: what the
	// graft restored versus reconverged, or the Fallback reason it ran
	// cold. Nil on hits and on misses with no registered baseline. Like
	// the timings it is advisory — the snapshot bytes are identical
	// either way.
	Incremental *pta.IncrStats `json:"incremental,omitempty"`
}

// AnalyzeResponse is the POST /analyze response. Snapshot holds the
// encoded pta.Snapshot verbatim as stored — byte-identical between a
// cold miss and every subsequent hit.
type AnalyzeResponse struct {
	Meta     AnalyzeMeta     `json:"meta"`
	Snapshot json.RawMessage `json:"snapshot"`
}

// ErrorResponse is the body of any non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
}
