package server

import (
	"encoding/json"

	"wlpa/internal/demand"
	"wlpa/pta"
)

// AnalyzeRequest is the POST /analyze body.
type AnalyzeRequest struct {
	// Files maps file name to source text; Entry names the entry
	// translation unit (the others are available for #include).
	Files map[string]string `json:"files"`
	Entry string            `json:"entry"`
	// Diagnostics additionally runs the checker suite and embeds its
	// findings in the snapshot. Folded into the cache key.
	Diagnostics bool `json:"diagnostics,omitempty"`
}

// AnalyzeMeta is the server-side metadata of one /analyze response. It
// is excluded from the bit-identity guarantee (timings vary run to
// run); everything deterministic lives in the snapshot.
type AnalyzeMeta struct {
	// Cache is "hit" (snapshot served from the store, engine not run)
	// or "miss" (engine ran; the result was written back).
	Cache string `json:"cache"`
	// Key is the program-level cache key, hex-encoded.
	Key string `json:"key"`
	// Timings in milliseconds: frontend+hashing, engine (0 on a hit),
	// snapshot build+encode (0 on a hit), end-to-end.
	HashMS     float64 `json:"hash_ms"`
	AnalyzeMS  float64 `json:"analyze_ms"`
	SnapshotMS float64 `json:"snapshot_ms"`
	TotalMS    float64 `json:"total_ms"`
	// On a miss, the per-procedure ledger outcome: procedures whose
	// summary identity (closure IR + input domain + globals + options)
	// was already recorded, and those recorded for the first time. A
	// single-procedure edit shows up here as misses for exactly the
	// procedures whose content hash changed. Empty on a hit (the
	// ledger is not consulted — the whole program matched).
	ProcHits   []string `json:"proc_hits,omitempty"`
	ProcMisses []string `json:"proc_misses,omitempty"`
	// Incremental is set when a warm-edit baseline was available for the
	// entry and the miss ran through the incremental engine: what the
	// graft restored versus reconverged, or the Fallback reason it ran
	// cold. Nil on hits and on misses with no registered baseline. Like
	// the timings it is advisory — the snapshot bytes are identical
	// either way.
	Incremental *pta.IncrStats `json:"incremental,omitempty"`
}

// AnalyzeResponse is the POST /analyze response. Snapshot holds the
// encoded pta.Snapshot verbatim as stored — byte-identical between a
// cold miss and every subsequent hit.
type AnalyzeResponse struct {
	Meta     AnalyzeMeta     `json:"meta"`
	Snapshot json.RawMessage `json:"snapshot"`
}

// ErrorResponse is the body of any non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// SiteQuery names one points-to query site: the value of expr (an
// identifier with optional * prefixes) at the last node at or before
// line in proc — the same resolution rules as pta.Result.PointsToAt.
type SiteQuery struct {
	Proc string `json:"proc"`
	Line int    `json:"line"`
	Expr string `json:"expr"`
}

// QueryRequest is the POST /query body. Files and Entry are as in
// AnalyzeRequest; Queries are answered in order. Budget optionally
// overrides the demand walker's per-query visit budget (0 = default);
// like all budgets it trades time, never answers.
type QueryRequest struct {
	Files   map[string]string `json:"files"`
	Entry   string            `json:"entry"`
	Queries []SiteQuery       `json:"queries"`
	Budget  int               `json:"budget,omitempty"`
}

// QueryAnswer is one answered site: the query echoed back plus the
// sorted points-to set (empty for a non-pointer or unresolvable site —
// same convention as the snapshot's query records).
type QueryAnswer struct {
	Proc     string   `json:"proc"`
	Line     int      `json:"line"`
	Expr     string   `json:"expr"`
	PointsTo []string `json:"points_to"`
}

// QueryMeta is the server-side metadata of one /query response.
type QueryMeta struct {
	// Cache is "warm" (answered from a held converged result, engine not
	// run) or "cold" (the engine converged the program first).
	Cache string `json:"cache"`
	// Key is the program's IR root hash — the identity the warm result
	// is held under.
	Key string `json:"key"`
	// Timings in milliseconds (hash and analyze are 0 on warm GETs).
	HashMS    float64 `json:"hash_ms,omitempty"`
	AnalyzeMS float64 `json:"analyze_ms,omitempty"`
	TotalMS   float64 `json:"total_ms"`
	// On a cold run, the per-procedure ledger outcome (see AnalyzeMeta).
	ProcHits   []string `json:"proc_hits,omitempty"`
	ProcMisses []string `json:"proc_misses,omitempty"`
	// Demand reports the walker work this request performed: nodes
	// visited, records probed, calls skipped via MOD effects, and
	// budget-exhaustion fallbacks to the exhaustive layer.
	Demand demand.Stats `json:"demand"`
}

// QueryResponse is the /query response body.
type QueryResponse struct {
	Meta    QueryMeta     `json:"meta"`
	Answers []QueryAnswer `json:"answers"`
}

// delta subtracts two cumulative walker stats snapshots, isolating one
// request's work.
func delta(before, after demand.Stats) demand.Stats {
	return demand.Stats{
		Queries:      after.Queries - before.Queries,
		NodesVisited: after.NodesVisited - before.NodesVisited,
		Probes:       after.Probes - before.Probes,
		SkippedCalls: after.SkippedCalls - before.SkippedCalls,
		Fallbacks:    after.Fallbacks - before.Fallbacks,
	}
}
