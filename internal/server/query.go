package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wlpa/internal/cfg"
	"wlpa/internal/irhash"
	"wlpa/pta"
)

// maxQueryResults bounds how many warm query results the daemon keeps
// alive. Unlike warm-edit baselines these are never consumed — a demand
// query reads the converged analysis without invalidating it — but each
// one pins a full analysis web, so the registry stays small. Kept
// strictly disjoint from baselineRegistry: a warm-edit graft mutates
// its baseline's analysis in place, which would corrupt any query view
// sharing it.
const maxQueryResults = 4

// queryEntry is one warm program held for demand queries. The mutex
// serializes queries against the shared result: a demand walk may
// intern new location sets and populates ptset lookup caches, so
// concurrent readers would race on the underlying analysis.
type queryEntry struct {
	mu   sync.Mutex
	root string // irhash root the result was converged for
	res  *pta.Result
	d    *pta.Demand // default-budget view, reused across requests
}

// queryRegistry is a non-consuming LRU of warm query results, keyed by
// entry name.
type queryRegistry struct {
	mu        sync.Mutex
	entries   map[string]*queryEntry
	order     []string // LRU order, oldest first
	evictions uint64
}

func newQueryRegistry() *queryRegistry {
	return &queryRegistry{entries: map[string]*queryEntry{}}
}

// get returns the warm entry registered under entry (nil when none is),
// refreshing its LRU position. The caller must check root before using
// it and must hold the entry's mutex while querying.
func (qr *queryRegistry) get(entry string) *queryEntry {
	qr.mu.Lock()
	defer qr.mu.Unlock()
	e := qr.entries[entry]
	if e != nil {
		qr.remove(entry)
		qr.order = append(qr.order, entry)
	}
	return e
}

// put registers (or replaces) the warm entry, evicting the least
// recently used beyond capacity.
func (qr *queryRegistry) put(entry string, e *queryEntry) {
	qr.mu.Lock()
	defer qr.mu.Unlock()
	if _, ok := qr.entries[entry]; ok {
		qr.remove(entry)
	}
	qr.entries[entry] = e
	qr.order = append(qr.order, entry)
	for len(qr.order) > maxQueryResults {
		oldest := qr.order[0]
		qr.order = qr.order[1:]
		delete(qr.entries, oldest)
		qr.evictions++
	}
}

func (qr *queryRegistry) stats() (occupancy int, evictions uint64) {
	qr.mu.Lock()
	defer qr.mu.Unlock()
	return len(qr.entries), qr.evictions
}

func (qr *queryRegistry) remove(entry string) {
	for i, e := range qr.order {
		if e == entry {
			qr.order = append(qr.order[:i], qr.order[i+1:]...)
			return
		}
	}
}

// handleQueryGet answers a single site query strictly from warm state:
// the entry must have been analyzed by a prior POST /query (or the
// response is 404 and the client should POST the sources). This is the
// microsecond path — no frontend, no hashing, no engine.
func (s *Server) handleQueryGet(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.metrics.mu.Lock()
	s.metrics.queryRequests++
	s.metrics.mu.Unlock()

	q := r.URL.Query()
	entry := q.Get("entry")
	proc := q.Get("proc")
	expr := q.Get("expr")
	line, err := strconv.Atoi(q.Get("line"))
	if entry == "" || proc == "" || expr == "" || err != nil {
		s.fail(w, r, t0, http.StatusBadRequest,
			fmt.Errorf("query needs entry, proc, line (integer) and expr parameters"))
		return
	}

	e := s.queries.get(entry)
	if e == nil {
		s.fail(w, r, t0, http.StatusNotFound,
			fmt.Errorf("no warm result for entry %q: POST /query with the sources first", entry))
		return
	}

	e.mu.Lock()
	before := e.d.Stats()
	pts := e.d.PointsToAt(proc, line, expr)
	stats := delta(before, e.d.Stats())
	e.mu.Unlock()

	meta := QueryMeta{Cache: "warm", Key: e.root, Demand: stats, TotalMS: ms(time.Since(t0))}
	s.metrics.mu.Lock()
	s.metrics.queryWarm++
	s.metrics.mu.Unlock()
	s.metrics.observe("query", meta.TotalMS)
	s.logRequest(r, http.StatusOK, t0, "warm", entry, 0)
	writeJSON(w, http.StatusOK, QueryResponse{
		Meta:    meta,
		Answers: []QueryAnswer{{Proc: proc, Line: line, Expr: expr, PointsTo: pts}},
	})
}

// handleQueryPost answers a batch of site queries, converging the
// program first if no warm result matches the sources. A cold run pays
// one engine pass (recorded in the per-procedure ledger like /analyze
// misses) and leaves the result warm for subsequent GETs; a warm run
// answers demand-driven without touching the engine or materializing a
// snapshot. Either way the answers are bit-identical to what /analyze's
// snapshot would report for the same sites.
func (s *Server) handleQueryPost(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.metrics.mu.Lock()
	s.metrics.queryRequests++
	s.metrics.mu.Unlock()

	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, r, t0, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Files) == 0 || req.Entry == "" || req.Files[req.Entry] == "" {
		s.fail(w, r, t0, http.StatusBadRequest,
			fmt.Errorf("request must carry files and an entry naming one of them"))
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, r, t0, http.StatusBadRequest, fmt.Errorf("request carries no queries"))
		return
	}

	prog, err := pta.Frontend(pta.Source(req.Files), req.Entry, s.cfg.Options.Predefined)
	if err != nil {
		s.fail(w, r, t0, http.StatusUnprocessableEntity, err)
		return
	}
	procs, err := cfg.BuildAll(prog.Funcs)
	if err != nil {
		s.fail(w, r, t0, http.StatusUnprocessableEntity, err)
		return
	}
	ir := irhash.HashProcs(prog, procs)
	hashDur := time.Since(t0)
	s.metrics.observe("hash", ms(hashDur))
	meta := QueryMeta{Key: ir.Root, HashMS: ms(hashDur)}

	e := s.queries.get(req.Entry)
	if e == nil || e.root != ir.Root {
		// Cold: converge the program under the in-flight bound, record
		// the per-procedure ledger, and register the result warm. The
		// result is deliberately NOT handed to the warm-edit baseline
		// registry — grafting would mutate it under our feet.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-r.Context().Done():
			s.fail(w, r, t0, http.StatusServiceUnavailable,
				fmt.Errorf("no analysis slot available: %w", r.Context().Err()))
			return
		}
		ta := time.Now()
		opts := s.cfg.Options
		res, err := pta.AnalyzeProgram(prog, &opts)
		if err != nil {
			s.fail(w, r, t0, http.StatusUnprocessableEntity, err)
			return
		}
		meta.AnalyzeMS = ms(time.Since(ta))
		s.metrics.observe("analyze", meta.AnalyzeMS)
		meta.ProcHits, meta.ProcMisses = s.recordProcLedger(res, ir)
		e = &queryEntry{root: ir.Root, res: res, d: res.Demand(nil)}
		s.queries.put(req.Entry, e)
		meta.Cache = "cold"
		s.metrics.mu.Lock()
		s.metrics.queryCold++
		s.metrics.mu.Unlock()
	} else {
		meta.Cache = "warm"
		s.metrics.mu.Lock()
		s.metrics.queryWarm++
		s.metrics.mu.Unlock()
	}

	e.mu.Lock()
	d := e.d
	if req.Budget > 0 {
		// A per-request budget gets its own view; the shared default
		// view keeps cumulative stats meaningful across requests.
		d = e.res.Demand(&pta.DemandOptions{Budget: req.Budget})
	}
	before := d.Stats()
	answers := make([]QueryAnswer, len(req.Queries))
	for i, sq := range req.Queries {
		answers[i] = QueryAnswer{
			Proc: sq.Proc, Line: sq.Line, Expr: sq.Expr,
			PointsTo: d.PointsToAt(sq.Proc, sq.Line, sq.Expr),
		}
	}
	meta.Demand = delta(before, d.Stats())
	e.mu.Unlock()

	meta.TotalMS = ms(time.Since(t0))
	s.metrics.observe("query", meta.TotalMS)
	s.logRequest(r, http.StatusOK, t0, meta.Cache, req.Entry, 0)
	writeJSON(w, http.StatusOK, QueryResponse{Meta: meta, Answers: answers})
}
