package server

import (
	"bytes"
	"context"
	"testing"

	"wlpa/pta"
)

// TestWarmEditGraft drives the daemon through the edit workflow: a cold
// miss registers a baseline, and the next miss for the same entry runs
// through the incremental engine — reporting graft statistics in the
// response meta while producing a snapshot byte-identical to what a
// cold daemon computes for the edited program.
func TestWarmEditGraft(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())
	c := &Client{Base: ts.URL}

	cold, _, err := c.Analyze(context.Background(), map[string]string{"edit.c": editBase}, "edit.c", false)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Meta.Cache != "miss" {
		t.Fatalf("cold: cache=%q, want miss", cold.Meta.Cache)
	}
	if cold.Meta.Incremental != nil {
		t.Fatalf("first miss has no baseline, got incremental stats %+v", cold.Meta.Incremental)
	}

	// A repeat of the base program is a hit and must leave the baseline
	// alone for the edit that follows.
	hit, _, err := c.Analyze(context.Background(), map[string]string{"edit.c": editBase}, "edit.c", false)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Meta.Cache != "hit" || hit.Meta.Incremental != nil {
		t.Fatalf("repeat request: %+v", hit.Meta)
	}

	edited, _, err := c.Analyze(context.Background(), map[string]string{"edit.c": editChanged}, "edit.c", false)
	if err != nil {
		t.Fatal(err)
	}
	inc := edited.Meta.Incremental
	if edited.Meta.Cache != "miss" || inc == nil {
		t.Fatalf("edited request did not graft: %+v", edited.Meta)
	}
	if inc.Fallback != "" {
		t.Fatalf("graft fell back: %q", inc.Fallback)
	}
	if inc.DirtyProcs == 0 || inc.CleanProcs == 0 {
		t.Fatalf("graft stats implausible for a single-proc edit: %+v", inc)
	}

	// Bit-identity: the grafted snapshot equals a cold daemon's answer
	// for the edited program.
	_, ts2 := newTestServer(t, t.TempDir())
	c2 := &Client{Base: ts2.URL}
	ref, _, err := c2.Analyze(context.Background(), map[string]string{"edit.c": editChanged}, "edit.c", false)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Meta.Incremental != nil {
		t.Fatalf("fresh daemon grafted: %+v", ref.Meta)
	}
	if !bytes.Equal(edited.Snapshot, ref.Snapshot) {
		t.Fatalf("grafted snapshot differs from cold snapshot")
	}

	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Incremental.Grafts != 1 || m.Incremental.Fallbacks != 0 {
		t.Fatalf("incremental counters: %+v", m.Incremental)
	}

	// The graft consumed the old baseline and registered a new one
	// wrapped around the edited result — a further edit grafts again.
	if srv.baselines.take("edit.c") == nil {
		t.Fatalf("no baseline registered after the grafted miss")
	}
}

// TestBaselineRegistryLRU pins the registry semantics: take is
// exclusive, put replaces, and the oldest entry is evicted beyond the
// cap.
func TestBaselineRegistryLRU(t *testing.T) {
	br := newBaselineRegistry(0)
	if br.cap != defaultBaselineCap {
		t.Fatalf("zero capacity resolved to %d, want %d", br.cap, defaultBaselineCap)
	}
	mk := func() *pta.Baseline { return &pta.Baseline{} }

	if br.take("a") != nil {
		t.Fatal("empty registry returned a baseline")
	}
	b1 := mk()
	br.put("a", b1)
	if got := br.take("a"); got != b1 {
		t.Fatalf("take returned %p, want %p", got, b1)
	}
	if br.take("a") != nil {
		t.Fatal("take is not exclusive")
	}

	b2 := mk()
	br.put("a", mk())
	br.put("a", b2) // replace keeps one slot per entry
	for i := 0; i < defaultBaselineCap; i++ {
		br.put(string(rune('b'+i)), mk())
	}
	if br.take("a") != nil {
		t.Fatal("oldest entry not evicted beyond the cap")
	}
	if br.take(string(rune('b'))) == nil {
		t.Fatal("in-cap entry evicted")
	}
	if _, _, ev := br.stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}

	// A custom capacity holds exactly that many entries.
	small := newBaselineRegistry(2)
	small.put("x", mk())
	small.put("y", mk())
	small.put("z", mk())
	if small.take("x") != nil {
		t.Fatal("cap-2 registry held three entries")
	}
	if cap2, occ, ev := small.stats(); cap2 != 2 || occ != 2 || ev != 1 {
		t.Fatalf("cap-2 stats: cap=%d occ=%d ev=%d", cap2, occ, ev)
	}
}
