package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"reflect"
	"testing"

	"wlpa/pta"
)

// queryRef computes the reference answers the daemon must reproduce:
// the whole-program Result's PointsToAt at each site.
func queryRef(t *testing.T, src string, sites []SiteQuery) [][]string {
	t.Helper()
	res, err := pta.AnalyzeSource("q.c", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]string, len(sites))
	for i, s := range sites {
		out[i] = res.PointsToAt(s.Proc, s.Line, s.Expr)
	}
	return out
}

// TestQueryEndpoint drives /query through its cold and warm paths and
// pins the answers against the whole-program result.
func TestQueryEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	sites := []SiteQuery{
		{Proc: "main", Line: 9, Expr: "fp"},
		{Proc: "main", Line: 9, Expr: "gp"},
		{Proc: "main", Line: 9, Expr: "hp"},
		{Proc: "f", Line: 7, Expr: "fp"},
		{Proc: "main", Line: 9, Expr: "*fp"},
	}
	want := queryRef(t, editBase, sites)
	files := map[string]string{"q.c": editBase}

	cold, err := c.Query(ctx, files, "q.c", sites, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Meta.Cache != "cold" {
		t.Fatalf("first query: cache=%q, want cold", cold.Meta.Cache)
	}
	if cold.Meta.AnalyzeMS == 0 && cold.Meta.Demand.Queries == 0 {
		t.Fatalf("cold meta recorded no work: %+v", cold.Meta)
	}
	if len(cold.Meta.ProcMisses) == 0 {
		t.Fatalf("cold query did not record the proc ledger: %+v", cold.Meta)
	}
	for i, a := range cold.Answers {
		if !reflect.DeepEqual(nonEmpty(a.PointsTo), nonEmpty(want[i])) {
			t.Errorf("cold %s:%d %q: got %v, want %v", a.Proc, a.Line, a.Expr, a.PointsTo, want[i])
		}
	}
	// The first site is an assigned pointer — a trivially-empty oracle
	// would pass DeepEqual above.
	if len(cold.Answers[0].PointsTo) == 0 {
		t.Fatal("fp answered empty at main's return")
	}

	// A cold /query must not register a warm-edit baseline: grafting
	// would mutate the analysis the warm query registry still serves.
	if srv.baselines.take("q.c") != nil {
		t.Fatal("cold query leaked a result into the baseline registry")
	}

	warm, err := c.Query(ctx, files, "q.c", sites, 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Meta.Cache != "warm" || warm.Meta.AnalyzeMS != 0 {
		t.Fatalf("repeat query: %+v", warm.Meta)
	}
	if !reflect.DeepEqual(warm.Answers, cold.Answers) {
		t.Fatalf("warm answers differ from cold:\n%v\n%v", warm.Answers, cold.Answers)
	}

	// A starvation budget answers identically through the fallback.
	starved, err := c.Query(ctx, files, "q.c", sites, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(starved.Answers, cold.Answers) {
		t.Fatalf("budget-1 answers differ:\n%v\n%v", starved.Answers, cold.Answers)
	}
	if starved.Meta.Demand.Fallbacks == 0 {
		t.Fatalf("budget 1 never fell back: %+v", starved.Meta.Demand)
	}

	// An edit changes the IR root: the held result no longer applies and
	// the query runs cold again.
	edited, err := c.Query(ctx, map[string]string{"q.c": editChanged}, "q.c", sites[:1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if edited.Meta.Cache != "cold" || edited.Meta.Key == cold.Meta.Key {
		t.Fatalf("edited query served stale state: %+v", edited.Meta)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Query.Requests != 4 || m.Query.Cold != 2 || m.Query.Warm != 2 {
		t.Fatalf("query counters: %+v", m.Query)
	}
	if m.Query.Occupancy != 1 {
		t.Fatalf("query registry occupancy = %d, want 1 (same entry replaced)", m.Query.Occupancy)
	}
	if m.Baselines.Capacity != defaultBaselineCap || m.Baselines.Occupancy != 0 {
		t.Fatalf("baseline metrics: %+v", m.Baselines)
	}
	if h := m.LatencyMS["query"]; h == nil || h.Count != 4 {
		t.Fatalf("query latency histogram: %+v", m.LatencyMS["query"])
	}
}

// TestQueryGet pins the GET path: warm-only, microsecond-class, 404
// without a prior POST, 400 on malformed parameters.
func TestQueryGet(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	get := func(params url.Values) (*QueryResponse, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/query?" + params.Encode())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr QueryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				t.Fatal(err)
			}
		}
		return &qr, resp.StatusCode
	}

	params := url.Values{"entry": {"q.c"}, "proc": {"main"}, "line": {"9"}, "expr": {"fp"}}
	if _, code := get(params); code != http.StatusNotFound {
		t.Fatalf("GET before any POST: HTTP %d, want 404", code)
	}

	sites := []SiteQuery{{Proc: "main", Line: 9, Expr: "fp"}}
	post, err := c.Query(ctx, map[string]string{"q.c": editBase}, "q.c", sites, 0)
	if err != nil {
		t.Fatal(err)
	}

	qr, code := get(params)
	if code != http.StatusOK {
		t.Fatalf("warm GET: HTTP %d", code)
	}
	if qr.Meta.Cache != "warm" || len(qr.Answers) != 1 {
		t.Fatalf("warm GET response: %+v", qr)
	}
	if !reflect.DeepEqual(qr.Answers[0], post.Answers[0]) {
		t.Fatalf("GET answer %v differs from POST answer %v", qr.Answers[0], post.Answers[0])
	}

	bad := url.Values{"entry": {"q.c"}, "proc": {"main"}, "line": {"nine"}, "expr": {"fp"}}
	if _, code := get(bad); code != http.StatusBadRequest {
		t.Fatalf("malformed line: HTTP %d, want 400", code)
	}
}

// TestQueryRegistryLRU pins the warm-result LRU: non-consuming get,
// replacement, eviction beyond capacity.
func TestQueryRegistryLRU(t *testing.T) {
	qr := newQueryRegistry()
	mk := func(root string) *queryEntry { return &queryEntry{root: root} }

	qr.put("a", mk("r1"))
	if e := qr.get("a"); e == nil || e.root != "r1" {
		t.Fatalf("get(a) = %+v", e)
	}
	if e := qr.get("a"); e == nil {
		t.Fatal("get consumed the entry")
	}
	qr.put("a", mk("r2"))
	if e := qr.get("a"); e.root != "r2" {
		t.Fatalf("replacement kept old root %q", e.root)
	}
	for i := 0; i < maxQueryResults-1; i++ {
		qr.put(fmt.Sprintf("e%d", i), mk("r"))
	}
	// At capacity: refresh "a", then one more put must evict the oldest
	// un-refreshed entry (e0), not "a".
	qr.get("a")
	qr.put("z", mk("r"))
	if qr.get("e0") != nil {
		t.Fatal("LRU entry survived beyond capacity")
	}
	if qr.get("a") == nil {
		t.Fatal("recently-used entry evicted")
	}
	if occ, ev := qr.stats(); occ != maxQueryResults || ev != 1 {
		t.Fatalf("stats: occ=%d ev=%d", occ, ev)
	}
}

// nonEmpty normalizes nil vs empty slices for comparison (JSON
// round-trips nil slices as null/absent).
func nonEmpty(s []string) []string {
	if len(s) == 0 {
		return nil
	}
	return s
}
