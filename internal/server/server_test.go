package server

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"

	"wlpa/internal/store"
	"wlpa/internal/workload"
	"wlpa/pta"
)

func newTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:  st,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// editScenario is a four-procedure program where editing the body of h
// (the last procedure, so no other line shifts) must invalidate exactly
// the procedures whose content hash changes: h itself and its caller
// main — while f and g keep their ledger entries.
const editBase = `
int gx, gy;
int *fp, *gp;
int hx, hy;
int *hp;
void g(void) { gp = &gy; }
void f(void) { fp = &gx; g(); }
void h(void) { hp = &hx; }
int main(void) { f(); h(); return 0; }
`

const editChanged = `
int gx, gy;
int *fp, *gp;
int hx, hy;
int *hp;
void g(void) { gp = &gy; }
void f(void) { fp = &gx; g(); }
void h(void) { hp = &hy; }
int main(void) { f(); h(); return 0; }
`

func TestColdWarmBitIdentity(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	c := &Client{Base: ts.URL}
	files := map[string]string{"edit.c": editBase}

	cold, coldSnap, err := c.Analyze(context.Background(), files, "edit.c", false)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Meta.Cache != "miss" {
		t.Fatalf("cold request: cache=%q, want miss", cold.Meta.Cache)
	}
	warm, warmSnap, err := c.Analyze(context.Background(), files, "edit.c", false)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Meta.Cache != "hit" {
		t.Fatalf("warm request: cache=%q, want hit", warm.Meta.Cache)
	}
	if !bytes.Equal(cold.Snapshot, warm.Snapshot) {
		t.Fatalf("warm snapshot bytes differ from cold")
	}

	// And both match an in-process analysis bit for bit.
	r, err := pta.Analyze(pta.Source(files), "edit.c", nil)
	if err != nil {
		t.Fatal(err)
	}
	local, err := r.Snapshot(&pta.SnapshotOptions{Fingerprint: cold.Meta.Key})
	if err != nil {
		t.Fatal(err)
	}
	localBytes, err := local.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localBytes, cold.Snapshot) {
		t.Fatalf("served snapshot differs from in-process pta.Analyze")
	}
	if coldSnap.Describe() != warmSnap.Describe() || coldSnap.Describe() != r.Describe() {
		t.Fatalf("Describe output differs between cold/warm/local")
	}
}

func TestProcLedgerInvalidation(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	c := &Client{Base: ts.URL}

	cold, _, err := c.Analyze(context.Background(), map[string]string{"edit.c": editBase}, "edit.c", false)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Meta.Cache != "miss" || len(cold.Meta.ProcMisses) == 0 {
		t.Fatalf("cold: meta %+v", cold.Meta)
	}
	if len(cold.Meta.ProcHits) != 0 {
		t.Fatalf("cold request had ledger hits: %v", cold.Meta.ProcHits)
	}

	// Edit h's body: a program-level miss, but the ledger must hit for
	// exactly the procedures whose summary identity is unchanged (f, g)
	// and miss for those it isn't (h's own closure, main's transitive
	// closure through h).
	edited, _, err := c.Analyze(context.Background(), map[string]string{"edit.c": editChanged}, "edit.c", false)
	if err != nil {
		t.Fatal(err)
	}
	if edited.Meta.Cache != "miss" {
		t.Fatalf("edited program served from cache: %+v", edited.Meta)
	}
	wantHits := []string{"f", "g"}
	wantMisses := []string{"h", "main"}
	if !sameStrings(edited.Meta.ProcHits, wantHits) {
		t.Errorf("proc hits = %v, want %v", edited.Meta.ProcHits, wantHits)
	}
	if !sameStrings(edited.Meta.ProcMisses, wantMisses) {
		t.Errorf("proc misses = %v, want %v", edited.Meta.ProcMisses, wantMisses)
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, "")
	c := &Client{Base: ts.URL}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{"m.c": "int x; int *p; int main(void) { p = &x; return 0; }"}
	if _, _, err := c.Analyze(context.Background(), files, "m.c", false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Analyze(context.Background(), files, "m.c", false); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests.Analyze != 2 || m.Requests.Hits != 1 || m.Requests.Misses != 1 {
		t.Fatalf("request counters: %+v", m.Requests)
	}
	if m.LatencyMS["total"] == nil || m.LatencyMS["total"].Count != 2 {
		t.Fatalf("latency histogram not populated: %+v", m.LatencyMS)
	}
	if m.Store.Puts == 0 {
		t.Fatalf("store stats not wired: %+v", m.Store)
	}
}

func TestDiagnosticsKeyedSeparately(t *testing.T) {
	_, ts := newTestServer(t, "")
	c := &Client{Base: ts.URL}
	files := map[string]string{"d.c": `
#include <stdlib.h>
int main(void) {
	int *p = malloc(sizeof(int));
	*p = 1;
	free(p);
	*p = 2;
	return 0;
}
`}
	plain, plainSnap, err := c.Analyze(context.Background(), files, "d.c", false)
	if err != nil {
		t.Fatal(err)
	}
	if plainSnap.HasDiags {
		t.Fatalf("plain snapshot carries diagnostics")
	}
	withDiags, diagSnap, err := c.Analyze(context.Background(), files, "d.c", true)
	if err != nil {
		t.Fatal(err)
	}
	// Different key: the diagnostics request must not be served the
	// plain entry.
	if withDiags.Meta.Cache != "miss" || withDiags.Meta.Key == plain.Meta.Key {
		t.Fatalf("diagnostics request reused plain entry: %+v", withDiags.Meta)
	}
	if !diagSnap.HasDiags || len(diagSnap.Diagnostics()) == 0 {
		t.Fatalf("expected use-after-free diagnostics, got %+v", diagSnap.Diags)
	}
	// And it is itself cacheable.
	again, _, err := c.Analyze(context.Background(), files, "d.c", true)
	if err != nil {
		t.Fatal(err)
	}
	if again.Meta.Cache != "hit" || !bytes.Equal(again.Snapshot, withDiags.Snapshot) {
		t.Fatalf("diagnostics entry not warm: %+v", again.Meta)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, "")
	c := &Client{Base: ts.URL}
	if _, _, err := c.Analyze(context.Background(), nil, "x.c", false); err == nil {
		t.Errorf("empty request accepted")
	}
	if _, _, err := c.Analyze(context.Background(), map[string]string{"x.c": "int main(void { return 0; }"}, "x.c", false); err == nil {
		t.Errorf("syntax error accepted")
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests.Errors != 2 {
		t.Fatalf("error counter = %d, want 2", m.Requests.Errors)
	}
}

// TestBenchmarksServeWarm drives a subset of the real suite through the
// daemon: every benchmark must analyze cold, then serve warm with
// byte-identical snapshots (the CI smoke job repeats this for all 13
// against a real wlpad process).
func TestBenchmarksServeWarm(t *testing.T) {
	suite := workload.Suite()
	if len(suite) == 0 {
		t.Skip("no benchmark sources")
	}
	if len(suite) > 3 {
		suite = suite[:3]
	}
	_, ts := newTestServer(t, t.TempDir())
	c := &Client{Base: ts.URL}
	for _, b := range suite {
		files := map[string]string{b.Name + ".c": b.Source}
		cold, _, err := c.Analyze(context.Background(), files, b.Name+".c", false)
		if err != nil {
			t.Fatalf("%s cold: %v", b.Name, err)
		}
		warm, _, err := c.Analyze(context.Background(), files, b.Name+".c", false)
		if err != nil {
			t.Fatalf("%s warm: %v", b.Name, err)
		}
		if cold.Meta.Cache != "miss" || warm.Meta.Cache != "hit" {
			t.Errorf("%s: cold=%s warm=%s", b.Name, cold.Meta.Cache, warm.Meta.Cache)
		}
		if !bytes.Equal(cold.Snapshot, warm.Snapshot) {
			t.Errorf("%s: warm snapshot differs from cold", b.Name)
		}
	}
}
