package server

import (
	"sync"

	"wlpa/internal/store"
)

// latencyBucketsMS are the fixed upper bounds (milliseconds) of the
// per-phase latency histograms; an implicit +Inf bucket follows.
var latencyBucketsMS = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket latency histogram (cumulative counts are
// left to consumers; Counts[i] is the observations in (bound[i-1],
// bound[i]], Counts[len(Buckets)] the +Inf overflow).
type Histogram struct {
	BucketsMS []float64 `json:"buckets_ms"`
	Counts    []uint64  `json:"counts"`
	SumMS     float64   `json:"sum_ms"`
	Count     uint64    `json:"count"`
}

func newHistogram() *Histogram {
	return &Histogram{
		BucketsMS: latencyBucketsMS,
		Counts:    make([]uint64, len(latencyBucketsMS)+1),
	}
}

func (h *Histogram) observe(ms float64) {
	i := 0
	for i < len(h.BucketsMS) && ms > h.BucketsMS[i] {
		i++
	}
	h.Counts[i]++
	h.SumMS += ms
	h.Count++
}

func (h *Histogram) clone() *Histogram {
	c := *h
	c.Counts = append([]uint64(nil), h.Counts...)
	return &c
}

// metrics aggregates the daemon's counters; snapshotted by /metrics.
type metrics struct {
	mu sync.Mutex

	analyzeRequests uint64
	analyzeHits     uint64
	analyzeMisses   uint64
	errors          uint64
	inflight        int

	procHits   uint64
	procMisses uint64

	warmGrafts    uint64
	warmFallbacks uint64

	queryRequests uint64
	queryWarm     uint64
	queryCold     uint64

	latency map[string]*Histogram // phase -> histogram
}

func newMetrics() *metrics {
	return &metrics{latency: map[string]*Histogram{
		"hash":     newHistogram(),
		"analyze":  newHistogram(),
		"snapshot": newHistogram(),
		"total":    newHistogram(),
		"query":    newHistogram(),
	}}
}

func (m *metrics) observe(phase string, ms float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.latency[phase]; ok {
		h.observe(ms)
	}
}

// MetricsSnapshot is the GET /metrics body.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_s"`
	Requests      struct {
		Analyze  uint64 `json:"analyze"`
		Hits     uint64 `json:"hits"`
		Misses   uint64 `json:"misses"`
		Errors   uint64 `json:"errors"`
		Inflight int    `json:"inflight"`
	} `json:"requests"`
	ProcLedger struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
	} `json:"proc_ledger"`
	// Incremental counts misses that had a warm-edit baseline available:
	// grafts reconverged only the edit's dirty cone, fallbacks found the
	// baseline inapplicable and ran cold.
	Incremental struct {
		Grafts    uint64 `json:"grafts"`
		Fallbacks uint64 `json:"fallbacks"`
	} `json:"incremental"`
	// Baselines reports the warm-edit baseline LRU: its configured
	// capacity, how many entries it currently holds, and how many were
	// evicted (not consumed) over the daemon's lifetime.
	Baselines struct {
		Capacity  int    `json:"capacity"`
		Occupancy int    `json:"occupancy"`
		Evictions uint64 `json:"evictions"`
	} `json:"baselines"`
	// Query reports the demand-query endpoint: warm requests answered
	// from a held result without running the engine, cold requests that
	// converged first, and the warm-result LRU's state.
	Query struct {
		Requests  uint64 `json:"requests"`
		Warm      uint64 `json:"warm"`
		Cold      uint64 `json:"cold"`
		Occupancy int    `json:"occupancy"`
		Evictions uint64 `json:"evictions"`
	} `json:"query"`
	Store     store.Stats           `json:"store"`
	LatencyMS map[string]*Histogram `json:"latency_ms"`
}

func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out MetricsSnapshot
	out.Requests.Analyze = m.analyzeRequests
	out.Requests.Hits = m.analyzeHits
	out.Requests.Misses = m.analyzeMisses
	out.Requests.Errors = m.errors
	out.Requests.Inflight = m.inflight
	out.ProcLedger.Hits = m.procHits
	out.ProcLedger.Misses = m.procMisses
	out.Incremental.Grafts = m.warmGrafts
	out.Incremental.Fallbacks = m.warmFallbacks
	out.Query.Requests = m.queryRequests
	out.Query.Warm = m.queryWarm
	out.Query.Cold = m.queryCold
	out.LatencyMS = make(map[string]*Histogram, len(m.latency))
	for phase, h := range m.latency {
		out.LatencyMS[phase] = h.clone()
	}
	return out
}
