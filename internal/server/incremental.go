package server

import (
	"sync"

	"wlpa/pta"
)

// defaultBaselineCap bounds how many converged baselines the daemon
// keeps alive for warm-edit grafting when Config.BaselineCap is zero.
// Each baseline pins the full analysis web of one program (PTFs,
// dependency edges, intern tables), so the registry is a small LRU over
// entry names rather than a second content-addressed cache: the edit
// workflow is "same file, new body", and the entry name is the stable
// identity across those edits.
const defaultBaselineCap = 8

// baselineRegistry holds the warm-edit baselines, keyed by entry name.
// A baseline is single-use — the graft consumes it (the underlying
// analysis is mutated in place into the new run) — so take removes it
// under the lock and the handler re-registers a fresh baseline wrapped
// around the new result when the run succeeds.
type baselineRegistry struct {
	mu        sync.Mutex
	entries   map[string]*pta.Baseline
	order     []string // LRU order, oldest first
	cap       int
	evictions uint64
}

func newBaselineRegistry(capacity int) *baselineRegistry {
	if capacity <= 0 {
		capacity = defaultBaselineCap
	}
	return &baselineRegistry{entries: map[string]*pta.Baseline{}, cap: capacity}
}

// take removes and returns the baseline registered for entry (nil when
// none is). Exclusive removal is what makes concurrent misses safe: at
// most one request grafts against a given baseline, the rest run cold.
func (br *baselineRegistry) take(entry string) *pta.Baseline {
	br.mu.Lock()
	defer br.mu.Unlock()
	b := br.entries[entry]
	if b == nil {
		return nil
	}
	delete(br.entries, entry)
	br.remove(entry)
	return b
}

// put registers a baseline for entry, evicting the least recently
// registered entry beyond the capacity.
func (br *baselineRegistry) put(entry string, b *pta.Baseline) {
	br.mu.Lock()
	defer br.mu.Unlock()
	if _, ok := br.entries[entry]; ok {
		br.remove(entry)
	}
	br.entries[entry] = b
	br.order = append(br.order, entry)
	for len(br.order) > br.cap {
		oldest := br.order[0]
		br.order = br.order[1:]
		delete(br.entries, oldest)
		br.evictions++
	}
}

// stats reports capacity, current occupancy, and lifetime evictions.
func (br *baselineRegistry) stats() (capacity, occupancy int, evictions uint64) {
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.cap, len(br.entries), br.evictions
}

func (br *baselineRegistry) remove(entry string) {
	for i, e := range br.order {
		if e == entry {
			br.order = append(br.order[:i], br.order[i+1:]...)
			return
		}
	}
}
