package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"wlpa/pta"
)

// Client talks to a wlpad daemon. Used by wlpa/wlcheck -remote.
type Client struct {
	// Base is the daemon address: "host:port" or a full http:// URL.
	Base string
	// HTTP overrides the transport (nil = a client with a 5-minute
	// timeout, matching long cold analyses).
	HTTP *http.Client
}

func (c *Client) url(path string) string {
	base := c.Base
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/") + path
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

// Analyze submits the sources and returns the response plus the decoded
// snapshot (resp.Snapshot holds the verbatim cached bytes).
func (c *Client) Analyze(ctx context.Context, files map[string]string, entry string, diagnostics bool) (*AnalyzeResponse, *pta.Snapshot, error) {
	body, err := json.Marshal(AnalyzeRequest{Files: files, Entry: entry, Diagnostics: diagnostics})
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/analyze"), bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := c.http().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, nil, fmt.Errorf("wlpad: %s", e.Error)
		}
		return nil, nil, fmt.Errorf("wlpad: HTTP %d", httpResp.StatusCode)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, nil, fmt.Errorf("wlpad: decoding response: %w", err)
	}
	snap, err := pta.DecodeSnapshot(resp.Snapshot)
	if err != nil {
		return nil, nil, err
	}
	return &resp, snap, nil
}

// Query submits a batch of demand points-to queries. The first call
// for an entry converges the program (cold); subsequent calls with
// unchanged sources answer from the daemon's warm result.
func (c *Client) Query(ctx context.Context, files map[string]string, entry string, queries []SiteQuery, budget int) (*QueryResponse, error) {
	body, err := json.Marshal(QueryRequest{Files: files, Entry: entry, Queries: queries, Budget: budget})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/query"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("wlpad: %s", e.Error)
		}
		return nil, fmt.Errorf("wlpad: HTTP %d", httpResp.StatusCode)
	}
	var resp QueryResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("wlpad: decoding response: %w", err)
	}
	return &resp, nil
}

// Healthz probes the daemon's health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/healthz"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("wlpad: healthz HTTP %d", resp.StatusCode)
	}
	return nil
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("wlpad: metrics HTTP %d", resp.StatusCode)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
