// Package server implements the wlpad analysis daemon: a long-lived
// HTTP/JSON service that answers pointer-analysis requests out of a
// content-addressed cache (internal/store) and only runs the worklist
// engine on a miss.
//
// The serving fast path keys a whole request by
//
//	H(snapshot format, options fingerprint, diagnostics flag, irhash.Root)
//
// where irhash.Root digests the program after frontend normalization —
// the paper's observation that analysis results are a pure function of
// the normalized program and the analysis configuration, applied at
// program granularity. A hit returns the cached pta.Snapshot bytes
// without touching the engine; the bytes are identical to what a cold
// analysis would produce (pta's bit-identity guarantee, pinned by
// TestColdWarmBitIdentity).
//
// Alongside the program entry the server maintains a per-procedure
// ledger: each analyzed procedure is recorded under
//
//	H(artifact format, options fingerprint, globals digest,
//	  closure IR hash, input-domain digest)
//
// which is exactly the set of inputs a converged PTF summary depends on
// (procedure body + transitive callees + input alias pattern + globals
// + options). After a program-level miss the server probes the ledger
// and reports, per procedure, whether its summary identity was already
// known — so editing one procedure shows up as misses for precisely the
// procedures whose content hash changed (its own closure and its
// transitive callers'), while everything else hits. The ledger is the
// accounting and artifact-reuse layer; feeding it back into the engine
// to skip re-deriving unchanged PTFs is the separate "incremental
// re-analysis" roadmap item.
//
// Invariants:
//
//   - A cache hit never differs from recomputation: every key folds in
//     the format version and the options fingerprint, and the store
//     validates entry checksums (corruption degrades to a miss).
//   - Responses embed the cached snapshot bytes verbatim; server-side
//     metadata (timings, cache status) travels in a separate meta
//     object excluded from the identity guarantee.
//   - The engine runs under a bounded in-flight semaphore and a
//     per-request wall-clock budget; an exceeded budget is an error
//     response, never a partial result.
//   - Concurrent identical misses may each run the engine (no
//     single-flight); both converge to identical bytes, so the last
//     Put wins harmlessly.
package server
