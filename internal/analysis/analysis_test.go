package analysis_test

import (
	"sort"
	"strings"
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/cparse"
	"wlpa/internal/libsum"
	"wlpa/internal/memmod"
	"wlpa/internal/sem"
)

// run parses, checks and analyzes src with the default (paper) policy.
func run(t *testing.T, src string) (*analysis.Analysis, *sem.Program) {
	t.Helper()
	return runOpts(t, src, analysis.Options{})
}

func runOpts(t *testing.T, src string, opts analysis.Options) (*analysis.Analysis, *sem.Program) {
	t.Helper()
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	if opts.Lib == nil {
		opts.Lib = libsum.Summaries()
	}
	a, err := analysis.New(prog, opts)
	if err != nil {
		t.Fatalf("analysis.New: %v", err)
	}
	if err := a.Run(); err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	return a, prog
}

// globalPts returns the sorted names of the blocks a global variable may
// point to at main's exit.
func globalPts(t *testing.T, a *analysis.Analysis, prog *sem.Program, name string) []string {
	t.Helper()
	var sym = findGlobal(t, prog, name)
	b := a.GlobalBlock(sym)
	ptf := a.MainPTF()
	vals, ok := ptf.Pts.LookupOut(memmod.Loc(b, 0, 0), ptf.Proc.Exit, nil)
	if !ok {
		return nil
	}
	var names []string
	for _, l := range vals.Locs() {
		names = append(names, l.Base.Name)
	}
	sort.Strings(names)
	return names
}

func findGlobal(t *testing.T, prog *sem.Program, name string) *castSymbol {
	t.Helper()
	for _, g := range prog.Globals {
		if g.Name == name {
			return g
		}
	}
	t.Fatalf("no global %q", name)
	return nil
}

// globalPtsAt returns the sorted target names of a global at a byte
// offset, from the collapsed solution.
func globalPtsAt(t *testing.T, a *analysis.Analysis, prog *sem.Program, name string, off int64) []string {
	t.Helper()
	sym := findGlobal(t, prog, name)
	vals := a.Solution().PointsTo(memmod.Loc(a.GlobalBlock(sym), off, 0))
	var names []string
	for _, l := range vals.Locs() {
		names = append(names, l.Base.Name)
	}
	sort.Strings(names)
	return names
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBasicAddressOf(t *testing.T) {
	a, prog := run(t, `
int x;
int *p;
int main(void) { p = &x; return 0; }`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"x"}) {
		t.Errorf("p -> %v, want [x]", got)
	}
}

func TestBranchMerge(t *testing.T) {
	a, prog := run(t, `
int x, y, c;
int *p;
int main(void) {
    if (c) p = &x; else p = &y;
    return 0;
}`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"x", "y"}) {
		t.Errorf("p -> %v, want [x y]", got)
	}
}

func TestStrongUpdateKillsOldValue(t *testing.T) {
	a, prog := run(t, `
int x, y;
int *p;
int main(void) {
    p = &x;
    p = &y;
    return 0;
}`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"y"}) {
		t.Errorf("p -> %v, want [y] (strong update)", got)
	}
}

func TestDerefAssignment(t *testing.T) {
	a, prog := run(t, `
int x;
int *p;
int **pp;
int main(void) {
    pp = &p;
    *pp = &x;
    return 0;
}`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"x"}) {
		t.Errorf("p -> %v, want [x]", got)
	}
}

func TestMallocHeapBlock(t *testing.T) {
	a, prog := run(t, `
#include <stdlib.h>
char *p;
int main(void) { p = (char *)malloc(16); return 0; }`)
	got := globalPts(t, a, prog, "p")
	if len(got) != 1 || !strings.HasPrefix(got[0], "heap@") {
		t.Errorf("p -> %v, want a heap block", got)
	}
}

func TestDistinctMallocSitesDistinctBlocks(t *testing.T) {
	a, prog := run(t, `
#include <stdlib.h>
char *p, *q;
int main(void) {
    p = (char *)malloc(16);
    q = (char *)malloc(16);
    return 0;
}`)
	gp := globalPts(t, a, prog, "p")
	gq := globalPts(t, a, prog, "q")
	if len(gp) != 1 || len(gq) != 1 || gp[0] == gq[0] {
		t.Errorf("p -> %v, q -> %v: want distinct heap blocks", gp, gq)
	}
}

func TestSimpleCallReturnsPointer(t *testing.T) {
	a, prog := run(t, `
int g;
int *getg(void) { return &g; }
int *p;
int main(void) { p = getg(); return 0; }`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"g"}) {
		t.Errorf("p -> %v, want [g]", got)
	}
}

func TestCalleeWritesThroughParameter(t *testing.T) {
	a, prog := run(t, `
int x;
int *p;
void setit(int **pp) { *pp = &x; }
int main(void) { setit(&p); return 0; }`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"x"}) {
		t.Errorf("p -> %v, want [x]", got)
	}
}

// TestFigure1 reproduces the paper's running example exactly: procedure
// f must get two PTFs (one shared by the unaliased calls S1 and S2, one
// for the aliased call S3), and the final points-to sets in main must
// match the paper's Cases I and II.
func TestFigure1(t *testing.T) {
	src := `
int test1, test2;
int x, y, z;
int *x0, *y0, *z0;
void f(int **p, int **q, int **r) {
    *p = *q;
    *q = *r;
}
int main(void) {
    x0 = &x; y0 = &y; z0 = &z;
    if (test1)
        f(&x0, &y0, &z0);
    else if (test2)
        f(&z0, &x0, &y0);
    else
        f(&x0, &y0, &x0);
    return 0;
}`
	a, prog := run(t, src)
	ptfs := a.PTFs("f")
	if len(ptfs) != 2 {
		t.Errorf("PTFs for f = %d, want 2 (one for S1/S2, one for aliased S3)", len(ptfs))
	}
	// S1: x0=y, y0=z. S2: z0=x, x0=y. S3: x0=y, y0=y.
	if got := globalPts(t, a, prog, "x0"); !eqStrings(got, []string{"y"}) {
		t.Errorf("x0 -> %v, want [y]", got)
	}
	if got := globalPts(t, a, prog, "y0"); !eqStrings(got, []string{"y", "z"}) {
		t.Errorf("y0 -> %v, want [y z]", got)
	}
	if got := globalPts(t, a, prog, "z0"); !eqStrings(got, []string{"x", "z"}) {
		t.Errorf("z0 -> %v, want [x z]", got)
	}
}

func TestFigure1NeverReusePolicy(t *testing.T) {
	src := `
int test1, test2;
int x, y, z;
int *x0, *y0, *z0;
void f(int **p, int **q, int **r) { *p = *q; *q = *r; }
int main(void) {
    x0 = &x; y0 = &y; z0 = &z;
    if (test1) f(&x0, &y0, &z0);
    else if (test2) f(&z0, &x0, &y0);
    else f(&x0, &y0, &x0);
    return 0;
}`
	a, _ := runOpts(t, src, analysis.Options{Reuse: analysis.NeverReuse})
	if got := len(a.PTFs("f")); got != 3 {
		t.Errorf("NeverReuse PTFs for f = %d, want 3 (one per call site)", got)
	}
}

func TestGlobalInitializer(t *testing.T) {
	a, prog := run(t, `
int x;
int *p = &x;
int *q;
int main(void) { q = p; return 0; }`)
	if got := globalPts(t, a, prog, "q"); !eqStrings(got, []string{"x"}) {
		t.Errorf("q -> %v, want [x]", got)
	}
}

func TestFunctionPointerCall(t *testing.T) {
	a, prog := run(t, `
int g1, g2;
int *p;
void seta(void) { p = &g1; }
void setb(void) { p = &g2; }
int c;
int main(void) {
    void (*fp)(void);
    if (c) fp = seta; else fp = setb;
    fp();
    return 0;
}`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"g1", "g2"}) {
		t.Errorf("p -> %v, want [g1 g2]", got)
	}
}

func TestFunctionPointerThroughParameter(t *testing.T) {
	a, prog := run(t, `
int g;
int *p;
void setg(void) { p = &g; }
void invoke(void (*cb)(void)) { cb(); }
int main(void) { invoke(setg); return 0; }`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"g"}) {
		t.Errorf("p -> %v, want [g]", got)
	}
}

func TestRecursionLinkedList(t *testing.T) {
	a, prog := run(t, `
#include <stdlib.h>
struct node { struct node *next; int v; };
struct node *head;
void push(int n) {
    struct node *nd = (struct node *)malloc(sizeof(struct node));
    nd->next = head;
    head = nd;
    if (n > 0) push(n - 1);
}
int main(void) { push(10); return 0; }`)
	got := globalPts(t, a, prog, "head")
	if len(got) != 1 || !strings.HasPrefix(got[0], "heap@") {
		t.Errorf("head -> %v, want the push-site heap block", got)
	}
}

func TestStructFieldSensitivity(t *testing.T) {
	a, prog := run(t, `
struct pair { int *a; int *b; };
int x, y;
struct pair pr;
int *ra, *rb;
int main(void) {
    pr.a = &x;
    pr.b = &y;
    ra = pr.a;
    rb = pr.b;
    return 0;
}`)
	if got := globalPts(t, a, prog, "ra"); !eqStrings(got, []string{"x"}) {
		t.Errorf("ra -> %v, want [x] (field sensitivity)", got)
	}
	if got := globalPts(t, a, prog, "rb"); !eqStrings(got, []string{"y"}) {
		t.Errorf("rb -> %v, want [y]", got)
	}
}

func TestArrayElementsMerge(t *testing.T) {
	a, prog := run(t, `
int x, y;
int *arr[4];
int *r;
int main(void) {
    arr[0] = &x;
    arr[1] = &y;
    r = arr[0];
    return 0;
}`)
	// Array elements are not distinguished (paper §3.1): r sees both.
	got := globalPts(t, a, prog, "r")
	if !eqStrings(got, []string{"x", "y"}) {
		t.Errorf("r -> %v, want [x y]", got)
	}
}

func TestPointerArithmeticWithinBlock(t *testing.T) {
	a, prog := run(t, `
int buf[10];
int *p;
int main(void) {
    p = buf;
    p = p + 3;
    return 0;
}`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"buf"}) {
		t.Errorf("p -> %v, want [buf]", got)
	}
}

func TestLibStrchrReturnsIntoArgument(t *testing.T) {
	a, prog := run(t, `
#include <string.h>
char buf[32];
char *p;
int main(void) { p = strchr(buf, 'x'); return 0; }`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"buf"}) {
		t.Errorf("p -> %v, want [buf]", got)
	}
}

func TestMemcpyCopiesPointers(t *testing.T) {
	a, prog := run(t, `
#include <string.h>
struct box { int *p; };
int x;
struct box src, dst;
int *r;
int main(void) {
    src.p = &x;
    memcpy(&dst, &src, sizeof(struct box));
    r = dst.p;
    return 0;
}`)
	got := globalPts(t, a, prog, "r")
	if !eqStrings(got, []string{"x"}) {
		t.Errorf("r -> %v, want [x] (memcpy summary)", got)
	}
}

func TestQsortCallbackAnalyzed(t *testing.T) {
	a, prog := run(t, `
#include <stdlib.h>
int *seen;
int cmp(const void *a, const void *b) {
    seen = (int *)a;
    return 0;
}
int table[8];
int main(void) {
    qsort(table, 8, sizeof(int), cmp);
    return 0;
}`)
	got := globalPts(t, a, prog, "seen")
	if !eqStrings(got, []string{"table"}) {
		t.Errorf("seen -> %v, want [table] (qsort invokes the comparator)", got)
	}
}

func TestAggregateAssignCopiesFields(t *testing.T) {
	a, prog := run(t, `
struct s { int *p; int pad; int *q; };
int x, y;
struct s a1, b1;
int *r1, *r2;
int main(void) {
    a1.p = &x;
    a1.q = &y;
    b1 = a1;
    r1 = b1.p;
    r2 = b1.q;
    return 0;
}`)
	if got := globalPts(t, a, prog, "r1"); !eqStrings(got, []string{"x"}) {
		t.Errorf("r1 -> %v, want [x]", got)
	}
	if got := globalPts(t, a, prog, "r2"); !eqStrings(got, []string{"y"}) {
		t.Errorf("r2 -> %v, want [y]", got)
	}
}

func TestReturnedStringLiteral(t *testing.T) {
	a, prog := run(t, `
char *msg;
char *get(void) { return "hello"; }
int main(void) { msg = get(); return 0; }`)
	got := globalPts(t, a, prog, "msg")
	if len(got) != 1 || !strings.HasPrefix(got[0], "str") {
		t.Errorf("msg -> %v, want a string block", got)
	}
}

func TestContextSensitivityNoUnrealizablePaths(t *testing.T) {
	// The classic unrealizable-path test: id() called with &x and &y
	// must not conflate the results.
	a, prog := run(t, `
int x, y;
int *p, *q;
int *id(int *v) { return v; }
int main(void) {
    p = id(&x);
    q = id(&y);
    return 0;
}`)
	if got := globalPts(t, a, prog, "p"); !eqStrings(got, []string{"x"}) {
		t.Errorf("p -> %v, want [x] (context sensitivity)", got)
	}
	if got := globalPts(t, a, prog, "q"); !eqStrings(got, []string{"y"}) {
		t.Errorf("q -> %v, want [y]", got)
	}
	// And id still has only one PTF: the alias pattern is identical.
	if n := len(a.PTFs("id")); n != 1 {
		t.Errorf("PTFs for id = %d, want 1", n)
	}
}

func TestStatsPopulated(t *testing.T) {
	a, _ := run(t, `
int *p; int x;
void f(void) { p = &x; }
int main(void) { f(); return 0; }`)
	st := a.Stats()
	if st.Procedures < 2 || st.PTFs < 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgPTFs() < 0.5 || st.AvgPTFs() > 2 {
		t.Errorf("avg PTFs = %f", st.AvgPTFs())
	}
	if st.NodesEvaluated == 0 || st.Duration <= 0 {
		t.Errorf("stats missing counters: %+v", st)
	}
}

func TestSolutionCollection(t *testing.T) {
	a, prog := runOpts(t, `
int x;
int *p;
void set(int **pp) { *pp = &x; }
int main(void) { set(&p); return 0; }`, analysis.Options{CollectSolution: true})
	sol := a.Solution()
	if sol == nil {
		t.Fatal("no solution")
	}
	sym := findGlobal(t, prog, "p")
	got := sol.PointsTo(memmod.Loc(a.GlobalBlock(sym), 0, 0))
	found := false
	for _, l := range got.Locs() {
		if l.Base.Name == "x" {
			found = true
		}
	}
	if !found {
		t.Errorf("solution for p = %v, want to include x", got)
	}
}

func TestMutualRecursion(t *testing.T) {
	a, prog := run(t, `
int x, y;
int *p;
void even(int n);
void odd(int n) { p = &x; if (n > 0) even(n - 1); }
void even(int n) { p = &y; if (n > 0) odd(n - 1); }
int main(void) { odd(5); return 0; }`)
	got := globalPts(t, a, prog, "p")
	if !eqStrings(got, []string{"x", "y"}) {
		t.Errorf("p -> %v, want [x y]", got)
	}
}

func TestNoMainFails(t *testing.T) {
	f, err := cparse.ParseSource("t.c", "int f(void) { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	a, err := analysis.New(prog, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err == nil {
		t.Error("expected error for missing main")
	}
}

// castSymbol aliases the symbol type to keep the helper signature tidy.
type castSymbol = sem.SymbolAlias

// TestStrongUpdateThroughParameter checks the paper's §6 claim that
// extended parameters increase strong updates: a callee writing through
// a unique pointer parameter definitely overwrites the target, so the
// old value is killed in the caller.
func TestStrongUpdateThroughParameter(t *testing.T) {
	a, prog := run(t, `
int a1, b1;
int *q;
void overwrite(int **pp) { *pp = &b1; }
int main(void) {
    q = &a1;
    overwrite(&q);
    return 0;
}`)
	got := globalPts(t, a, prog, "q")
	if !eqStrings(got, []string{"b1"}) {
		t.Errorf("q -> %v, want [b1] (strong update through the extended parameter)", got)
	}
}

// TestNoStrongUpdateWhenParamNotUnique: when two inputs alias the same
// parameter, the parameter loses uniqueness and the write is weak.
func TestNoStrongUpdateWhenParamNotUnique(t *testing.T) {
	a, prog := run(t, `
int a1, b1, c1;
int *q, *r;
int pick;
void overwrite(int **pp, int **qq) { *pp = &b1; }
int main(void) {
    q = &a1;
    r = &c1;
    if (pick)
        overwrite(&q, &q);   /* aliased: pp and qq share a target */
    else
        overwrite(&q, &r);
    return 0;
}`)
	got := globalPts(t, a, prog, "q")
	// q must at least include b1; the aliased context's weak update
	// keeps the old value a1 in the merged result.
	foundB := false
	for _, n := range got {
		if n == "b1" {
			foundB = true
		}
	}
	if !foundB {
		t.Errorf("q -> %v, must include b1", got)
	}
}

// TestHeapNeverStronglyUpdated: heap blocks stand for all allocations at
// a site, so writes through them are always weak (paper §4.1).
func TestHeapNeverStronglyUpdated(t *testing.T) {
	a, prog := run(t, `
#include <stdlib.h>
int x1, y1;
int **cell;
int *r;
int main(void) {
    int i;
    r = 0;
    for (i = 0; i < 2; i++) {
        cell = (int **)malloc(sizeof(int *));
        *cell = &x1;
        if (i) *cell = &y1;
        r = *cell;
    }
    return 0;
}`)
	got := globalPts(t, a, prog, "r")
	// Both values must survive: the heap block is shared by both
	// allocations, so neither store kills the other.
	want := map[string]bool{"x1": false, "y1": false}
	for _, n := range got {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("r -> %v, missing %s (heap writes must be weak)", got, n)
		}
	}
}
