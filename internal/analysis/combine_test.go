package analysis_test

import (
	"testing"

	"wlpa/internal/analysis"
)

// offsetVariants passes two pointers into the SAME array at varying
// relative offsets. The callee's second input anchors at a fixed delta
// from the first (paper §3.2), so a call with a different delta fails
// the strict match — this is precisely the "differences in the offsets
// and strides in the initial points-to functions" situation §7 reports
// as the main source of extra PTFs.
const offsetVariants = `
struct quad { int a; int b; int c; int d; };
struct quad s;
int *out1, *out2;
void grab(int *x, int *y) {
    out1 = x;
    out2 = y;
}
int main(void) {
    grab(&s.a, &s.b);  /* fields 4 bytes apart                    */
    grab(&s.a, &s.d);  /* 12 bytes apart: offset-only mismatch    */
    grab(&s.b, &s.c);  /* 4 apart again: matches the first PTF    */
    return 0;
}`

func TestOffsetVariantsStrict(t *testing.T) {
	a, _ := runOpts(t, offsetVariants, analysis.Options{})
	if n := len(a.PTFs("grab")); n != 2 {
		t.Errorf("strict policy: PTFs for grab = %d, want 2 (delta-4 calls share, delta-32 differs)", n)
	}
}

func TestOffsetVariantsCombined(t *testing.T) {
	a, prog := runOpts(t, offsetVariants, analysis.Options{
		CombineOffsets:  true,
		CollectSolution: true,
	})
	if n := len(a.PTFs("grab")); n != 1 {
		t.Errorf("combined policy: PTFs for grab = %d, want 1 (§7 combining)", n)
	}
	// Soundness preserved: out1/out2 still reach the array.
	if got := globalPtsAt(t, a, prog, "out1", 0); !contains(got, "s") {
		t.Errorf("out1 -> %v, must include s", got)
	}
	if got := globalPtsAt(t, a, prog, "out2", 0); !contains(got, "s") {
		t.Errorf("out2 -> %v, must include s", got)
	}
}

func TestCombineOffsetsKeepsAliasSensitivity(t *testing.T) {
	// Genuinely different alias patterns must still get separate PTFs
	// even with offset combining on (Figure 1's aliased call).
	src := `
int x, y, z;
int *x0, *y0, *z0;
void f(int **p, int **q, int **r) { *p = *q; *q = *r; }
int t1, t2;
int main(void) {
    x0 = &x; y0 = &y; z0 = &z;
    if (t1) f(&x0, &y0, &z0);
    else if (t2) f(&z0, &x0, &y0);
    else f(&x0, &y0, &x0);
    return 0;
}`
	a, _ := runOpts(t, src, analysis.Options{CombineOffsets: true})
	if n := len(a.PTFs("f")); n != 2 {
		t.Errorf("PTFs for f = %d, want 2 (aliased call still distinct)", n)
	}
}
