package analysis

// Incremental re-analysis: graft the surviving converged state of a
// previous run onto an edited program, so that Run reconverges only the
// procedures the edit actually dirtied (and their transitive callers)
// instead of the whole program.
//
// The unit of survival is the PTF. A procedure is *clean* when it exists
// in both programs with an identical closure IR hash (its own flow graph
// plus everything it can transitively call — see internal/irhash); every
// PTF of a clean procedure survives with its converged points-to
// records, input domain, dependency edges and memoized summary
// applications intact. Survival is demand-driven: survivors wait in a
// side cache, and getPTF adopts one into the live population only when
// a call site's input alias pattern matches it — the moment a cold run
// would have created that instance. Survivors whose pattern never
// re-arises (the edit changed what flows into the callee) stay cached
// and invisible, so the final PTF population is exactly the one demand
// builds, as in a cold run. Dirty and new procedures start with no
// PTFs; their instances are created from scratch at their call sites.
//
// The grafted run is canonicalized on the *edited* program: a.prog is
// the edited program verbatim, and the kept flow graphs (plus the
// shared block namespaces and the kept PTFs' function-pointer domains)
// are rewired from the baseline's symbol objects onto the edited ones.
// Canonicalizing the other way — keeping baseline symbols and stitching
// a hybrid program — leaves the dirty procedures' ASTs referencing
// symbols the program no longer declares, which silently splits blocks
// in anything that re-derives state from the AST (Result.Check, the
// snapshot's query surface).
//
// Worklist seeding is implicit in the kept state: kept PTFs keep their
// registered reader entries, so when a re-analyzed dirty procedure
// writes a shared block, notifyWrite re-dirties exactly the kept nodes
// that read it, and the markDirty caller cascade carries the dirt up to
// main. Nothing else needs to be scheduled.
//
// Nothing serializable is involved: PTF state is a web of pointers into
// the run's intern table and block graph, and LocIDs die with the run
// (DESIGN.md). The baseline Analysis is therefore *consumed* — mutated
// in place into the new run — and must not be queried afterwards.

import (
	"fmt"
	"sync/atomic"

	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
	"wlpa/internal/sem"
)

// IncrementalStats reports what an incremental graft kept and dropped.
type IncrementalStats struct {
	// CleanProcs / DirtyProcs partition the edited program's defined
	// functions by closure-hash survival.
	CleanProcs int
	DirtyProcs int
	// KeptPTFs counts baseline PTF instances stashed in the adoption
	// cache (how many restored is demand-driven — see RestoredPTFs);
	// DroppedPTFs counts instances discarded outright (dirty
	// procedures' instances, plus any kept-procedure instance entangled
	// with a dropped one).
	KeptPTFs    int
	DroppedPTFs int
}

// PrepareIncremental grafts this converged analysis onto an edited
// program. clean names the procedures whose closure IR hashes are
// unchanged (the caller diffs irhash records); editedProcs are the flow
// graphs of the edited program's functions. On success the receiver is
// ready for Run, which reconverges from the kept state. On error the
// receiver is unmodified and the caller should fall back to a cold run.
func (a *Analysis) PrepareIncremental(edited *sem.Program, editedProcs map[*cast.FuncDecl]*cfg.Proc, clean map[string]bool) (*IncrementalStats, error) {
	switch {
	case !a.track:
		return nil, &Error{Msg: "incremental: baseline did not use the worklist engine"}
	case a.workers != 1:
		return nil, &Error{Msg: "incremental: baseline used the parallel scheduler"}
	case a.mainPTF == nil:
		return nil, &Error{Msg: "incremental: baseline has not converged"}
	case a.capped || a.timedOut.Load():
		return nil, &Error{Msg: "incremental: baseline was capped or timed out"}
	case edited.Main == nil:
		return nil, &Error{Msg: "incremental: edited program has no main"}
	}

	// Map baseline symbols to their edited identities. Globals must
	// match by position (the caller's globals-digest gate guarantees
	// it); matching by object rather than name keeps equally named
	// static locals distinct. Baseline symbols with no edited
	// counterpart (a deleted function) stay unmapped; their blocks keep
	// the old identity, which nothing in the edited program can name.
	if len(edited.Globals) != len(a.prog.Globals) {
		return nil, &Error{Msg: "incremental: global sets differ"}
	}
	symNew := make(map[*cast.Symbol]*cast.Symbol, len(edited.Globals)+len(edited.Funcs))
	for i, bg := range a.prog.Globals {
		g := edited.Globals[i]
		if g.Name != bg.Name {
			return nil, &Error{Msg: fmt.Sprintf("incremental: global %d is %s in the edit, %s in the baseline", i, g.Name, bg.Name)}
		}
		symNew[bg] = g
	}
	for name, bs := range a.prog.Externs {
		if s := edited.Externs[name]; s != nil {
			symNew[bs] = s
		}
	}
	for _, bfd := range a.prog.Funcs {
		if bfd.Sym == nil {
			continue
		}
		if efd := edited.FuncByName[bfd.Name]; efd != nil && efd.Sym != nil {
			symNew[bfd.Sym] = efd.Sym
		}
	}

	// Classify and validate first, mutating nothing: every error return
	// below must leave the baseline intact for the cold fallback.
	st := &IncrementalStats{}
	procs := make(map[*cast.FuncDecl]*cfg.Proc, len(edited.Funcs))
	keptProcs := make(map[*cfg.Proc]bool)
	var rewire []*cfg.Proc
	for _, fd := range edited.Funcs {
		if clean[fd.Name] {
			bfd := a.prog.FuncByName[fd.Name]
			var bp *cfg.Proc
			if bfd != nil {
				bp = a.procs[bfd]
			}
			if bp == nil {
				return nil, &Error{Msg: fmt.Sprintf("incremental: clean procedure %s missing from baseline", fd.Name)}
			}
			procs[fd] = bp
			keptProcs[bp] = true
			rewire = append(rewire, bp)
			st.CleanProcs++
			continue
		}
		ep := editedProcs[fd]
		if ep == nil {
			return nil, &Error{Msg: fmt.Sprintf("incremental: no flow graph for edited procedure %s", fd.Name)}
		}
		procs[fd] = ep
		st.DirtyProcs++
	}
	if procs[edited.Main] == nil {
		return nil, &Error{Msg: "incremental: edited main not among defined functions"}
	}

	// Commit point. Rewire the kept flow graphs onto the edited symbol
	// objects (locals stay with the baseline symbols — they are private
	// to the procedure, and the kept PTFs key their local blocks by
	// them), and rekey the shared block namespaces the same way so
	// clean and dirty procedures resolve one block per object.
	for _, bp := range rewire {
		rewireProc(bp, symNew)
	}
	rekeyBlocks(a.globalBlocks, symNew)
	rekeyBlocks(a.funcBlocks, symNew)

	// Survivors: every PTF of a kept procedure, minus any instance
	// entangled with a dropped one. Because a clean procedure's closure
	// covers everything it can call, its call edges should only name
	// other clean procedures; the cascade below is a defensive
	// invariant, not an expected path.
	kept := make(map[*PTF]bool)
	total := 0
	for proc := range keptProcs {
		for _, p := range a.ptfs[proc].list {
			kept[p] = true
		}
	}
	for _, l := range a.ptfs {
		total += len(l.list)
	}
	for changed := true; changed; {
		changed = false
		for p := range kept {
			if ptfRefsDropped(p, kept) {
				delete(kept, p)
				changed = true
			}
		}
	}
	st.KeptPTFs = len(kept)
	st.DroppedPTFs = total - len(kept)

	// Partition the survivors. A cold run's final PTF population is a
	// historical artifact of its convergence: sites latch an instance
	// created under a transient pattern and extend it, so the list can
	// hold duplicate-domain instances no fixpoint demand resolves to.
	// An instance whose creating context (the homePTF chain up to main)
	// survives is *restored* in baseline creation order — the edited
	// run never re-executes the creator's convergence history, and a
	// cold run of the edited program, executing the identical history,
	// reproduces exactly these instances, artifacts included. An
	// instance whose creator was dropped goes to the *adoption cache*
	// instead: the dirty cone re-executes its creation history from
	// scratch, and getPTF adopts the instance only at a call site whose
	// input pattern actually matches it — the moment a cold run would
	// have created it. Cache survivors nobody demands stay invisible,
	// exactly like the instances a cold run never creates.
	restored := make(map[*PTF]bool)
	for changed := true; changed; {
		changed = false
		for p := range kept {
			if restored[p] {
				continue
			}
			if p.homePTF == nil {
				if p == a.mainPTF {
					restored[p] = true
					changed = true
				}
				continue
			}
			if restored[p.homePTF] {
				restored[p] = true
				changed = true
			}
		}
	}

	// Scrub kept instances of state that points outside the survivor
	// set or at the finished run's evaluation machinery, and carry
	// their function-pointer domains over to the edited symbols.
	newPtfs := make(map[*cfg.Proc]*ptfList, len(procs))
	for _, proc := range procs {
		newPtfs[proc] = &ptfList{}
	}
	var numPTFs, numRestored int64
	cache := make(map[*cfg.Proc][]*PTF, len(keptProcs))
	for proc := range keptProcs {
		nl := newPtfs[proc]
		for _, p := range a.ptfs[proc].list {
			if !kept[p] {
				continue
			}
			p.lastBind = nil
			p.octx = a.mainCtx
			if p.homePTF != nil && !kept[p.homePTF] {
				p.homePTF, p.homeNode = nil, nil
			}
			live := p.callers[:0]
			for _, e := range p.callers {
				if kept[e.ptf] {
					live = append(live, e)
				}
			}
			p.callers = live
			for _, set := range p.fpDomain {
				rekeySymSet(set, symNew)
			}
			p.globalParams.rekey(symNew)
			for i := range p.initial {
				if e := &p.initial[i]; e.sym != nil {
					if ns := symNew[e.sym]; ns != nil {
						e.sym = ns
					}
				}
			}
			for _, e := range p.targetCache {
				for i, s := range e.syms {
					if ns := symNew[s]; ns != nil {
						e.syms[i] = ns
					}
				}
			}
			if restored[p] {
				nl.list = append(nl.list, p)
				numPTFs++
				numRestored++
			} else {
				cache[proc] = append(cache[proc], p)
			}
		}
	}

	// Reader registrations survive for every cached instance — a dirty
	// procedure's write to a shared block must re-dirty the kept nodes
	// that read it even before (or without) adoption, so that an
	// instance adopted later drains exactly the dirt it accumulated.
	// Free records survive too; sweepKept discards those of instances
	// that end the run unadopted.
	if a.readers != nil {
		old := a.readers
		a.readers = make(map[*memmod.Block]readerSet, len(old))
		for b, rs := range old {
			for _, k := range rs.list {
				if kept[k.ptf] {
					a.addReader(b, k)
				}
			}
			for k := range rs.m {
				if kept[k.ptf] {
					a.addReader(b, k)
				}
			}
		}
	}
	for k := range a.frees {
		if !kept[k.ptf] {
			delete(a.frees, k)
		}
	}

	// The pointer-location caches of shared (global-family) blocks
	// accumulate entries from every context that ever wrote them,
	// including dropped ones. Reset them all and replay the restored
	// instances' entries; each cache survivor replays its own at
	// adoption (adoptKept), so a dirty procedure's dereference can
	// never resurrect a context the edited run does not actually
	// create. Param/local/retval caches belong to their (kept or new)
	// PTFs and need no reset: a kept parameter's cache can only name
	// entries its own records justify or that domain matching replays.
	for _, b := range a.globalBlocks {
		b.ResetPtrLocs()
	}
	for _, b := range a.funcBlocks {
		b.ResetPtrLocs()
	}
	for _, b := range a.strBlocks {
		b.ResetPtrLocs()
	}
	for _, b := range a.heapBlocks {
		b.ResetPtrLocs()
	}
	if a.nullBlock != nil {
		a.nullBlock.ResetPtrLocs()
	}
	for _, l := range newPtfs {
		for _, p := range l.list {
			replayPtrLocs(p)
		}
	}

	// Install the edited program and reset the per-run machinery.
	a.prog = edited
	a.procs = procs
	a.ptfs = newPtfs
	a.numPTFs = numPTFs
	a.keptCache = cache
	a.restoredPTFs = int(numRestored)
	a.sched = nil
	a.modref = nil
	a.draining = nil
	a.pendingDrain = false
	a.collecting = nil
	a.capped = false
	a.timedOut.Store(false)
	a.stats = Stats{PTFsPerProc: make(map[string]int)}
	a.mainCtx.stack = a.mainCtx.stack[:0]
	a.mainCtx.changed = false
	if a.mainPTF != nil && !kept[a.mainPTF] {
		a.mainPTF = nil
	}
	a.incremental = true
	return st, nil
}

// replayPtrLocs re-seeds the pointer-location caches of the blocks a
// restored instance's records cover, after the graft's global reset.
func replayPtrLocs(p *PTF) {
	for _, loc := range p.Pts.Locations() {
		for _, r := range p.Pts.Records(loc) {
			if r.Vals.IsEmpty() {
				continue
			}
			rl := loc.Resolve()
			rl.Base.AddPtrLoc(rl)
			break
		}
	}
}

// adoptKept moves a kept-cache instance into the live PTF list of its
// procedure: a call site's input pattern just matched it, which is
// exactly when a cold run would have created the instance — except
// this one arrives with its converged records, dependency edges and
// memoized summary applications intact. Its pointer-location cache
// entries are replayed now rather than at graft time, so shared blocks
// never advertise extents that only an unadopted (hence invisible)
// instance justifies. Reports whether p was in fact cached.
func (a *Analysis) adoptKept(proc *cfg.Proc, p *PTF) bool {
	l := a.keptCache[proc]
	at := -1
	for i, q := range l {
		if q == p {
			at = i
			break
		}
	}
	if at < 0 {
		return false
	}
	a.keptCache[proc] = append(l[:at], l[at+1:]...)
	a.ptfs[proc].list = append(a.ptfs[proc].list, p)
	atomic.AddInt64(&a.numPTFs, 1)
	a.restoredPTFs++
	replayPtrLocs(p)
	return true
}

// sweepKept discards the residual side state of kept-cache instances
// that ended the run unadopted: no call site of the edited program
// demanded their alias pattern, so a cold run would never have created
// them and their free records must not surface in diagnostics. Run
// calls it after convergence.
func (a *Analysis) sweepKept() {
	orphaned := 0
	for _, l := range a.keptCache {
		orphaned += len(l)
	}
	if orphaned == 0 {
		return
	}
	orphan := make(map[*PTF]bool, orphaned)
	for _, l := range a.keptCache {
		for _, p := range l {
			orphan[p] = true
		}
	}
	for k := range a.frees {
		if orphan[k.ptf] {
			delete(a.frees, k)
		}
	}
}

// RestoredPTFs reports how many baseline instances the run actually
// adopted (valid after Run; adoption is demand-driven, so the count is
// not known at graft time).
func (a *Analysis) RestoredPTFs() int { return a.restoredPTFs }

// ptfRefsDropped reports whether p records an edge to a PTF outside the
// survivor set.
func ptfRefsDropped(p *PTF, kept map[*PTF]bool) bool {
	bad := false
	p.callEdges.each(func(_ siteKey, v *PTF) bool {
		if !kept[v] {
			bad = true
			return false
		}
		return true
	})
	if bad {
		return true
	}
	p.siteUsed.each(func(_ siteKey, v *PTF) bool {
		if !kept[v] {
			bad = true
			return false
		}
		return true
	})
	if bad {
		return true
	}
	p.applied.each(func(_ siteKey, m appliedMemo) bool {
		if m.ptf != nil && !kept[m.ptf] {
			bad = true
			return false
		}
		return true
	})
	if bad {
		return true
	}
	p.deps.each(func(d *PTF, _ int) bool {
		if !kept[d] {
			bad = true
			return false
		}
		return true
	})
	return bad
}

// rekeyBlocks moves a symbol-keyed block namespace onto the edited
// symbol objects, updating each block's originating symbol in step.
func rekeyBlocks(m map[*cast.Symbol]*memmod.Block, symNew map[*cast.Symbol]*cast.Symbol) {
	for s, b := range m {
		ns := symNew[s]
		if ns == nil || ns == s {
			continue
		}
		delete(m, s)
		b.Sym = ns
		m[ns] = b
	}
}

// rekey moves a symMap's keys onto the edited symbol objects.
func (s *symMap) rekey(symNew map[*cast.Symbol]*cast.Symbol) {
	for i := range s.list {
		if ns := symNew[s.list[i].sym]; ns != nil {
			s.list[i].sym = ns
		}
	}
	if s.m != nil {
		for sym, b := range s.m {
			if ns := symNew[sym]; ns != nil && ns != sym {
				delete(s.m, sym)
				s.m[ns] = b
			}
		}
	}
}

// rekeySymSet moves a function-pointer domain set onto the edited
// symbol objects.
func rekeySymSet(set map[*cast.Symbol]bool, symNew map[*cast.Symbol]*cast.Symbol) {
	for s := range set {
		if ns := symNew[s]; ns != nil && ns != s {
			delete(set, s)
			set[ns] = true
		}
	}
}

// rewireProc redirects the symbol references of a kept baseline flow
// graph onto the edited program's symbol objects, so that clean
// (baseline) and dirty (edited) procedures resolve the same global,
// extern or function name to the same block. Locals stay with the
// baseline symbols — they are private to the procedure.
func rewireProc(p *cfg.Proc, symNew map[*cast.Symbol]*cast.Symbol) {
	for _, nd := range p.Nodes {
		rewireExpr(nd.Dst, symNew)
		rewireExpr(nd.Src, symNew)
		rewireExpr(nd.Fun, symNew)
		rewireExpr(nd.RetDst, symNew)
		for _, arg := range nd.Args {
			rewireExpr(arg, symNew)
		}
		if nd.Direct != nil {
			if ns := symNew[nd.Direct]; ns != nil {
				nd.Direct = ns
			}
		}
	}
}

func rewireExpr(e *cfg.Expr, symNew map[*cast.Symbol]*cast.Symbol) {
	if e == nil {
		return
	}
	for i := range e.Terms {
		t := &e.Terms[i]
		switch t.Kind {
		case cfg.TermVar, cfg.TermFunc:
			if t.Sym != nil {
				if ns := symNew[t.Sym]; ns != nil {
					t.Sym = ns
				}
			}
		case cfg.TermDeref:
			rewireExpr(t.Base, symNew)
		}
	}
}

// Program returns the program this analysis runs over (the edited
// program after PrepareIncremental).
func (a *Analysis) Program() *sem.Program { return a.prog }

// Incremental reports whether this analysis was grafted onto a previous
// run's surviving state.
func (a *Analysis) Incremental() bool { return a.incremental }
