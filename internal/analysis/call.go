package analysis

import (
	"sort"
	"sync/atomic"

	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// evalCall evaluates a procedure call node (paper Figure 12).
func (a *Analysis) evalCall(f *frame, nd *cfg.Node) bool {
	args := a.carveVals(f.c, len(nd.Args))
	for i, ae := range nd.Args {
		args[i] = a.evalExpr(f, ae, nd)
	}
	var targets []*cast.Symbol
	if nd.Direct != nil {
		targets = []*cast.Symbol{nd.Direct}
	} else {
		fv := a.evalExpr(f, nd.Fun, nd)
		targets = a.callTargets(f, nd, fv)
		if len(targets) == 0 {
			return false // target unknown yet; iteration will return
		}
	}
	multi := len(targets) > 1
	changed := false
	for _, sym := range targets {
		if fd := a.prog.FuncByName[sym.Name]; fd != nil && fd.Body != nil {
			if a.callDefined(f, nd, fd, args, multi) {
				changed = true
			}
		} else {
			if a.callLibrary(f, nd, sym.Name, args, multi) {
				changed = true
			}
		}
	}
	return changed
}

// callTargets resolves function-pointer values to function symbols,
// flagging extended parameters used as call targets and recording their
// values in the PTF input domain (paper §5.1). Resolutions not
// involving extended parameters are cached per call node (parameter
// values resolve through the activation's bindings and have input-domain
// side effects, so they are recomputed). nd may be nil (library
// callback invocation), which disables caching.
func (a *Analysis) callTargets(f *frame, nd *cfg.Node, fv memmod.ValueSet) []*cast.Symbol {
	hasParam := false
	for _, l := range fv.Locs() {
		if l.Resolve().Base.Kind == memmod.ParamBlock {
			hasParam = true
			break
		}
	}
	cacheable := nd != nil && !hasParam
	if cacheable {
		if e, ok := f.ptf.targetCache[nd]; ok && e.fv.Equal(fv) {
			return e.syms
		}
	}
	out := make(map[*cast.Symbol]bool)
	for _, l := range fv.Locs() {
		l = l.Resolve()
		if l.Base.Kind == memmod.ParamBlock {
			p := l.Base.Representative()
			p.FuncPtr = true
			set := f.ptf.fpDomain[p]
			if set == nil {
				set = make(map[*cast.Symbol]bool)
				if f.ptf.fpDomain == nil {
					f.ptf.fpDomain = make(map[*memmod.Block]map[*cast.Symbol]bool)
				}
				f.ptf.fpDomain[p] = set
			}
			resolved := make(map[*cast.Symbol]bool)
			a.resolveFuncSyms(f, memmod.Values(l), resolved, f, nd)
			for s := range resolved {
				if !set[s] {
					set[s] = true
					a.bumpVersion(f.c, f.ptf)
				}
				out[s] = true
			}
			continue
		}
		a.resolveFuncSyms(f, memmod.Values(l), out, f, nd)
	}
	syms := make([]*cast.Symbol, 0, len(out))
	for s := range out {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
	if cacheable {
		if f.ptf.targetCache == nil {
			f.ptf.targetCache = make(map[*cfg.Node]*targetEntry)
		}
		f.ptf.targetCache[nd] = &targetEntry{fv: fv.Clone(), syms: syms}
	}
	return syms
}

// funcSymVisit is a visited-set key for resolveFuncSyms: a parameter
// binding already followed within one frame.
type funcSymVisit struct {
	f *frame
	b *memmod.Block
}

// resolveFuncSyms follows parameter bindings up the call stack until
// function blocks are reached. origin and nd, when non-nil, identify
// the indirect-call node driving the resolution: every parameter the
// chain traverses is then flagged FuncPtr and registered as a read of
// that node, so a later re-bind that grows a traversed parameter's
// values (extendFuncPtrVals) re-dirties the call site. The bindings
// live in frame-local pmaps the points-to dependency tracker cannot
// see, so without this edge the worklist engine keeps a stale fpDomain
// when a function-pointer value arrives after the site's last visit.
// Match probes (fpDomain comparison) pass nil: they evaluate nothing.
func (a *Analysis) resolveFuncSyms(f *frame, vals memmod.ValueSet, out map[*cast.Symbol]bool, origin *frame, nd *cfg.Node) {
	a.resolveFuncSymsRec(f, vals, out, make(map[funcSymVisit]bool), origin, nd)
}

func (a *Analysis) resolveFuncSymsRec(f *frame, vals memmod.ValueSet, out map[*cast.Symbol]bool, vis map[funcSymVisit]bool, origin *frame, nd *cfg.Node) {
	for _, l := range vals.Locs() {
		l = l.Resolve()
		switch l.Base.Kind {
		case memmod.FuncBlock:
			out[l.Base.Sym] = true
		case memmod.ParamBlock:
			p := l.Base.Representative()
			// The outermost frame resolves its own bindings (caller ==
			// nil recurses into the same frame), so a self-referential
			// binding would loop forever without the visited set.
			if vis[funcSymVisit{f, p}] {
				continue
			}
			vis[funcSymVisit{f, p}] = true
			if a.track && origin != nil {
				if !p.FuncPtr {
					if c := origin.c; c != nil && c.restricted() && !c.owns(f.ptf.Proc) {
						// Flagging a parameter on a chain frame the
						// worker does not own would race with its
						// owner; defer to the sequential walk, which
						// records the dependency.
						c.deferred = true
					} else {
						p.FuncPtr = true
					}
				}
				a.registerRead(origin, p, nd)
			}
			bound, ok := f.pmap[p]
			if !ok {
				continue
			}
			next := f.caller
			if next == nil {
				next = f
			}
			a.resolveFuncSymsRec(next, bound, out, vis, origin, nd)
		}
	}
}

// callDefined handles a call to a function with a body.
func (a *Analysis) callDefined(f *frame, nd *cfg.Node, fd *cast.FuncDecl, args []memmod.ValueSet, multi bool) bool {
	return a.callDefinedRet(f, nd, fd, args, multi, true)
}

// callDefinedRet is callDefined with control over whether the call
// node's return destination receives the callee's return value (library
// callback invocations share the library call's node but must not write
// its RetDst).
func (a *Analysis) callDefinedRet(f *frame, nd *cfg.Node, fd *cast.FuncDecl, args []memmod.ValueSet, multi, withRet bool) bool {
	proc := a.procs[fd]
	c := f.c
	if c != nil && c.restricted() && !c.owned[proc] {
		// The call escapes the work item's cone — an indirect call or a
		// library callback the static schedule could not predict. Defer
		// to the sequential walk; the call node stays dirty.
		c.deferred = true
		return false
	}
	// Recursive call: reuse the PTF already on the stack (paper §5.4).
	for i := len(c.stack) - 1; i >= 0; i-- {
		if c.stack[i].ptf.Proc == proc {
			return a.applyRecursive(f, nd, c.stack[i].ptf, args, multi, withRet)
		}
	}
	// Parallel mode defers drains only at latched re-fires on the
	// outermost main frame: the PTF decision for such a site is already
	// made, so the remaining work — draining the callee and re-applying
	// its summary — commutes with independent siblings and can be
	// batched. Sites making fresh match decisions are never deferred;
	// evalProcDirty flushes pending drains before first evaluations so
	// every match sees exactly the state the sequential walk sees.
	mainDefer := a.par && c == a.mainCtx && a.collecting == nil &&
		f.ptf == a.mainPTF && f.caller == nil
	latchedPTF, _ := f.ptf.siteUsed.get(siteKey{nd, proc})
	wasLatched := mainDefer && latchedPTF != nil
	if wasLatched && len(a.dirtyCandidates(proc)) > 0 {
		// The callee already has pending drains (another deferred site,
		// or a cascade); don't even rebind until they are flushed.
		a.pendingDrain = true
		if !f.ptf.dirty[nd.ID] {
			f.ptf.dirty[nd.ID] = true
			f.ptf.dirtyN++
		}
		return false
	}
	ptf, pmap, needVisit := a.getPTF(f, nd, proc, args)
	if ptf == nil {
		// A guard fired while matching input domains; the item aborts.
		return false
	}
	f.ptf.siteUsed.put(siteKey{nd, proc}, ptf)
	f.ptf.callEdges.put(siteKey{nd, proc}, ptf)
	if a.collecting != nil && !a.collecting[ptf] {
		// Solution-collection pass: descend once into every reachable
		// PTF so its call sites re-derive their parameter bindings.
		a.collecting[ptf] = true
		needVisit = true
	}
	cf := a.carveFrame(f.c)
	cf.ptf, cf.caller, cf.callNode = ptf, f, nd
	cf.args, cf.pmap, cf.c = args, pmap, c
	if a.track && a.collecting == nil {
		// Remember the binding context so the parallel scheduler can
		// re-create a standalone evaluation stack for this PTF.
		ptf.lastBind = cf
	}
	// Formals come from the PTF's own flow graph's declaration: after an
	// incremental graft a kept procedure's local symbols are the
	// baseline's, while the program's FuncDecl is the edited one.
	a.recordFormalBindings(cf, ptf.Proc.Fn, args)
	if needVisit || !ptf.exitReached {
		if wasLatched && ptf.exitReached && !ptf.recursive &&
			ptf.dirtyN > 0 && ptf.lastBind != nil {
			// The rebind extended the callee's input domain (or a cascade
			// dirtied it). The bind — the only order-sensitive part — is
			// done; defer the drain itself for batching and re-apply the
			// summary when the cascade re-fires this node.
			a.pendingDrain = true
			if !f.ptf.dirty[nd.ID] {
				f.ptf.dirty[nd.ID] = true
				f.ptf.dirtyN++
			}
			return false
		}
		c.stack = append(c.stack, cf)
		a.evalProc(cf)
		c.stack = c.stack[:len(c.stack)-1]
	}
	// Register this call site after the visit (bumps during the
	// callee's own evaluation need not re-dirty it: the fresh summary
	// is applied right below) so later callee growth re-dirties it.
	a.recordCaller(ptf, f.ptf, nd)
	if !ptf.exitReached {
		return false
	}
	if a.incremental && a.collecting != nil {
		// Incremental solution collection: the fixpoint is converged, so
		// translating the callee's summary into the caller cannot change
		// any record, and the bindings the solution needs were recorded
		// above (matchPTFInto / recordFormalBindings). Cold runs keep the
		// full application as the oracle-side reference — at fixpoint it
		// is a no-op, so skipping cannot diverge from them.
		f.ptf.deps.put(ptf, ptf.version)
		return false
	}
	sk := siteKey{nd, proc}
	fp := a.applyFingerprint(f, nd, cf, multi, withRet)
	if m, okm := f.ptf.applied.get(sk); okm && m.ptf == ptf && m.version == ptf.version &&
		m.fp == fp && a.solution == nil && a.collecting == nil {
		// This exact summary version was already translated into the
		// caller under identical bindings; repeating it cannot add
		// anything.
		f.ptf.deps.put(ptf, ptf.version)
		return false
	}
	changed := a.applySummary(f, nd, cf, multi, withRet)
	if c == nil || !c.deferred {
		f.ptf.applied.put(sk, appliedMemo{ptf: ptf, version: ptf.version, fp: fp})
	}
	f.ptf.deps.put(ptf, ptf.version)
	return changed
}

// applyFingerprint digests everything the effect of applySummary
// depends on besides the callee's summary version: the parameter
// bindings, the process-wide subsumption generation, the strong-update
// context, and the return destination as the caller currently evaluates
// it. Bindings combine order-independently, so pmap iteration order is
// irrelevant.
func (a *Analysis) applyFingerprint(f *frame, nd *cfg.Node, cf *frame, multi, withRet bool) uint64 {
	h := memmod.SubsumeGen()*0x9e3779b97f4a7c15 + 0x517cc1b727220a95
	if multi {
		h ^= 0xa5a5
	}
	if f.multiTarget {
		h ^= 0x5a5a0000
	}
	for p, v := range cf.pmap {
		h ^= (memmod.Loc(p, 0, 0).Fingerprint() + 0x9e3779b97f4a7c15) * (v.Fingerprint() | 1)
	}
	if withRet && nd.RetDst != nil {
		h ^= a.evalExpr(f, nd.RetDst, nd).Fingerprint() * 0x2545f4914f6cdd1d
	}
	return h
}

// applyRecursive reuses the on-stack PTF for a recursive call, merging
// this site's aliases into the PTF's (recursive) input domain and
// deferring if no summary exists yet.
func (a *Analysis) applyRecursive(f *frame, nd *cfg.Node, ptf *PTF, args []memmod.ValueSet, multi, withRet bool) bool {
	ptf.recursive = true
	// Record the edge for call-graph/MOD-REF clients; deliberately NOT
	// in siteUsed, which would perturb the engine's PTF-reuse policy.
	f.ptf.callEdges.put(siteKey{nd, ptf.Proc}, ptf)
	pmap := a.replayBindMerge(f, nd, ptf, args, true)
	cf := a.carveFrame(f.c)
	cf.ptf, cf.caller, cf.callNode = ptf, f, nd
	cf.args, cf.pmap, cf.c = args, pmap, f.c
	a.recordFormalBindings(cf, ptf.Proc.Fn, args)
	// Register before the deferral check: the cycle head's exit-reached
	// version bump must re-dirty this deferring site (§5.4).
	a.recordCaller(ptf, f.ptf, nd)
	if !ptf.exitReached {
		// First iteration around the cycle: defer (paper §5.4), and
		// record a forced-stale dependency so this PTF is revisited
		// once the cycle head has a summary.
		if f.ptf != ptf {
			f.ptf.deps.put(ptf, -1)
		}
		return false
	}
	changed := a.applySummary(f, nd, cf, multi, withRet)
	if f.ptf != ptf {
		f.ptf.deps.put(ptf, ptf.version)
	}
	return changed
}

// getPTF finds or creates a PTF applicable at this call site (paper
// Figure 13), returning its parameter mapping and whether the procedure
// must be (re)visited.
func (a *Analysis) getPTF(f *frame, nd *cfg.Node, proc *cfg.Proc, args []memmod.ValueSet) (*PTF, map[*memmod.Block]memmod.ValueSet, bool) {
	list := a.ptfs[proc].list
	switch a.opts.Reuse {
	case SingleSummary:
		if len(list) > 0 {
			// Merge every context into the one summary: actual input
			// values accumulate in the entry records, making the
			// summary genuinely context-insensitive.
			p := list[0]
			p.recursive = true
			return p, a.replayBindMerge(f, nd, p, args, true), true
		}
	case NeverReuse:
		for _, p := range list {
			if p.homeNode == nd && p.homePTF == f.ptf {
				return p, a.replayBind(f, nd, p, args), true
			}
		}
		if a.opts.MaxTotalPTFs > 0 && int(atomic.LoadInt64(&a.numPTFs)) >= a.opts.MaxTotalPTFs && len(list) > 0 {
			// Context explosion: merge further contexts (the measured
			// outcome of the Emami discipline on recursive programs).
			a.capped = true
			p := list[len(list)-1]
			p.recursive = true
			return p, a.replayBind(f, nd, p, args), true
		}
	default: // ReuseByAliasPattern
		for _, p := range list {
			if pmap, needVisit, ok := a.matchPTF(f, nd, p, args); ok {
				if !needVisit {
					if a.track {
						// Worklist mode: the PTF's own dirty set says
						// exactly whether anything inside needs work.
						needVisit = p.dirtyN > 0
					} else if p.staleDeps() {
						needVisit = true
					}
				}
				return p, pmap, needVisit
			}
			if c := f.c; c != nil && c.restricted() && c.deferred {
				// The mismatch may be an artifact of values a guard
				// withheld; only the sequential walk may decide to
				// extend or allocate PTFs from here.
				return nil, nil, false
			}
		}
		if a.opts.CombineOffsets {
			// §7 optimization: accept a PTF whose alias structure
			// matches even though offsets/strides differ, merging the
			// differing bindings (slight context-sensitivity loss).
			for _, p := range list {
				if pmap, _, ok := a.matchPTFDrift(f, nd, p, args); ok {
					return p, pmap, true
				}
			}
		}
		// No match: reuse the PTF originally created at this very
		// context (intermediate iteration values), updating its
		// domain instead of allocating another (paper §5.2).
		for _, p := range list {
			if p.homeNode == nd && p.homePTF == f.ptf {
				return p, a.replayBind(f, nd, p, args), true
			}
		}
		// Same rule for a site that previously resolved to a PTF it did
		// not create: its inputs are intermediate iteration values, so
		// update that PTF's domain rather than allocating a duplicate
		// for a transient state. Without this the set of PTFs depends
		// on evaluation order. A kept caller's latch may still name an
		// unadopted graft survivor; adopt it before handing it out, or
		// the engine would evaluate an instance outside the live
		// population.
		if p, _ := f.ptf.siteUsed.get(siteKey{nd, proc}); p != nil {
			if a.keptCache != nil {
				a.adoptKept(proc, p)
			}
			return p, a.replayBind(f, nd, p, args), true
		}
		if (a.opts.MaxPTFs > 0 && len(list) >= a.opts.MaxPTFs) ||
			(a.opts.MaxTotalPTFs > 0 && int(atomic.LoadInt64(&a.numPTFs)) >= a.opts.MaxTotalPTFs && len(list) > 0) {
			// Generalize rather than specialize further (paper §8).
			a.capped = true
			p := list[len(list)-1]
			p.recursive = true
			return p, a.replayBind(f, nd, p, args), true
		}
		// Where a cold run would now create a fresh instance, an
		// incremental run first consults the graft's adoption cache: a
		// surviving baseline instance whose input domain matches this
		// pattern IS the instance a cold run would build here, already
		// converged. Checked after the reuse rules above so transient
		// iteration patterns extend this site's own instance exactly as
		// they would cold, instead of adopting a spurious duplicate.
		if a.keptCache != nil {
			for _, p := range a.keptCache[proc] {
				if pmap, needVisit, ok := a.matchPTF(f, nd, p, args); ok {
					a.adoptKept(proc, p)
					if !needVisit {
						if a.track {
							needVisit = p.dirtyN > 0
						} else if p.staleDeps() {
							needVisit = true
						}
					}
					return p, pmap, needVisit
				}
			}
		}
	}
	if c := f.c; c != nil && c.restricted() && c.deferred {
		// Never allocate a PTF from an under-approximated context: the
		// PTF population must match the sequential engine's exactly.
		return nil, nil, false
	}
	p := a.newPTF(f.c, proc, nd, f.ptf)
	return p, make(map[*memmod.Block]memmod.ValueSet), true
}

// matchPTF tests whether ptf applies at this call site by replaying its
// initial points-to entries in creation order (paper §5.2), building the
// parameter mapping as it goes. It fails on the first alias or
// function-pointer mismatch.
func (a *Analysis) matchPTF(f *frame, nd *cfg.Node, ptf *PTF, args []memmod.ValueSet) (pmapOut map[*memmod.Block]memmod.ValueSet, needVisit, ok bool) {
	return a.matchPTFMode(f, nd, ptf, args, false)
}

// matchPTFDrift is matchPTF with offset/stride drift permitted: values
// at the same base blocks but different positions still match, and the
// parameter bindings merge both positions (paper §7's suggested
// combining of offset-variant PTFs).
func (a *Analysis) matchPTFDrift(f *frame, nd *cfg.Node, ptf *PTF, args []memmod.ValueSet) (pmapOut map[*memmod.Block]memmod.ValueSet, needVisit, ok bool) {
	return a.matchPTFMode(f, nd, ptf, args, true)
}

func (a *Analysis) matchPTFMode(f *frame, nd *cfg.Node, ptf *PTF, args []memmod.ValueSet, drift bool) (pmapOut map[*memmod.Block]memmod.ValueSet, needVisit, ok bool) {
	// Trial bindings go into a pooled map: most candidate PTFs fail to
	// match, and the map would otherwise be garbage every time. On
	// success the map is handed to the frame and leaves the pool.
	c := f.c
	if c == nil {
		c = a.mainCtx
	}
	pmap := c.pmapPool
	if pmap == nil {
		pmap = make(map[*memmod.Block]memmod.ValueSet)
	}
	c.pmapPool = nil
	pmapOut, needVisit, ok = a.matchPTFInto(f, nd, ptf, args, drift, pmap)
	if !ok {
		clear(pmap)
		c.pmapPool = pmap
	}
	return pmapOut, needVisit, ok
}

func (a *Analysis) matchPTFInto(f *frame, nd *cfg.Node, ptf *PTF, args []memmod.ValueSet, drift bool, pmap map[*memmod.Block]memmod.ValueSet) (pmapOut map[*memmod.Block]memmod.ValueSet, needVisit, ok bool) {
	cf := a.carveFrame(f.c)
	cf.ptf, cf.caller, cf.callNode = ptf, f, nd
	cf.args, cf.pmap = args, pmap
	// Entries recorded as "points to nothing" whose actuals are now
	// non-empty are upgraded to fresh parameters — an input VALUE
	// difference, not an alias difference, so the PTF still applies
	// (it just needs extending, like new pointer locations in §5.2).
	// Upgrades mutate the PTF, so they are deferred until the whole
	// match succeeds.
	type upgrade struct {
		entry   int
		actuals memmod.ValueSet
	}
	var upgrades []upgrade
	for i := 0; i < len(ptf.initial); i++ {
		e := ptf.initial[i]
		switch e.kind {
		case globalRefEntry:
			p := e.param.Representative()
			gl := a.globalLocIn(f, e.sym)
			if gl.Base == nil {
				// A guard deferred creating the global's parameter on a
				// chain frame; treat as mismatch (getPTF bails out).
				return nil, false, false
			}
			actual := a.value1(f.c, gl)
			if bound, ok := pmap[p]; ok {
				if !bound.Equal(actual) {
					return nil, false, false
				}
			} else {
				if a.aliasesExisting(pmap, actual, p) {
					return nil, false, false
				}
				pmap[p] = actual
				a.bindParamConcrete(cf, p, actual)
			}
		case ptrInitEntry:
			actuals, ok := a.entryActuals(cf, e)
			if !ok {
				return nil, false, false
			}
			if e.valEmpty {
				if !actuals.IsEmpty() {
					if a.aliasesExisting(pmap, actuals, nil) {
						// The new values alias other inputs: a real
						// alias-pattern change; no reuse.
						return nil, false, false
					}
					upgrades = append(upgrades, upgrade{entry: i, actuals: actuals})
				}
				continue
			}
			val := e.val.Resolve()
			p := val.Base
			if bound, okb := pmap[p]; okb {
				var expected memmod.ValueSet
				if val.Stride != 0 {
					// Unknown placement: block-level comparison.
					if !blocksOverlap(bound, actuals) || !blocksCovered(bound, actuals) {
						return nil, false, false
					}
					continue
				}
				expected = a.shiftSet(f.c, bound, val.Off)
				if !expected.Equal(actuals) {
					if !drift || !blocksCovered(bound, actuals) {
						return nil, false, false
					}
					// Offset-only drift: merge the new positions.
					merged := pmap[p]
					a.addAll(f.c, &merged, a.shiftSet(f.c, actuals, -val.Off))
					pmap[p] = merged
					a.setNotUnique(f.c, p)
					a.bindParamConcrete(cf, p, pmap[p])
				}
			} else {
				if actuals.IsEmpty() {
					return nil, false, false
				}
				if a.aliasesExisting(pmap, actuals, p) {
					return nil, false, false
				}
				if val.Stride != 0 {
					pmap[p] = actuals
				} else {
					pmap[p] = a.shiftSet(f.c, actuals, -val.Off)
				}
				a.bindParamConcrete(cf, p, pmap[p])
			}
		}
	}
	// Function-pointer input values must match (paper §5.2).
	for p, want := range ptf.fpDomain {
		p = p.Representative()
		if _, ok := pmap[p]; !ok {
			continue
		}
		got := make(map[*cast.Symbol]bool)
		rf := a.carveFrame(f.c)
		rf.ptf, rf.caller, rf.callNode, rf.pmap = ptf, f, nd, pmap
		a.resolveFuncSyms(rf, memmod.Values(memmod.Loc(p, 0, 0)), got, nil, nil)
		if !sameSymSet(want, got) {
			return nil, false, false
		}
	}
	// Extend the PTF if the inputs contain pointers at locations that
	// were unknown when it was built (paper §5.2).
	needVisit = !ptf.exitReached
	for p, bound := range pmap {
		if p.Kind != memmod.ParamBlock {
			continue
		}
		if a.extendParamPtrLocs(f.c, p, bound) {
			needVisit = true
		}
		a.extendFuncPtrVals(f.c, p, bound)
	}
	// Apply deferred empty-entry upgrades now that the match holds.
	for _, up := range upgrades {
		e := &ptf.initial[up.entry]
		p := a.newParam(cf, hintFor(e.ptr), up.actuals)
		e.val = memmod.Loc(p, 0, 0)
		e.valEmpty = false
		ptf.Pts.Assign(e.ptr.Resolve(), memmod.Values(memmod.Loc(p, 0, 0)), ptf.Proc.Entry, false)
		a.bumpVersion(f.c, ptf)
		f.c.changed = true
		needVisit = true
	}
	return pmap, needVisit, true
}

// blocksCovered reports whether every base block of values appears in
// bound (ignoring positions).
func blocksCovered(bound, values memmod.ValueSet) bool {
	for _, v := range values.Locs() {
		found := false
		for _, b := range bound.Locs() {
			if b.Resolve().Base.Representative() == v.Resolve().Base.Representative() {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// aliasesExisting reports whether actuals share blocks with any binding
// other than p's (an alias pattern the PTF was not built for).
func (a *Analysis) aliasesExisting(pmap map[*memmod.Block]memmod.ValueSet, actuals memmod.ValueSet, p *memmod.Block) bool {
	for q, bound := range pmap {
		if q == p {
			continue
		}
		if blocksOverlap(bound, actuals) {
			return true
		}
	}
	return false
}

// entryActuals computes the current-context actual values of an input
// pointer named by a ptrInit entry, mirroring getInitial's resolution.
func (a *Analysis) entryActuals(cf *frame, e initEntry) (memmod.ValueSet, bool) {
	v := e.ptr.Resolve()
	switch v.Base.Kind {
	case memmod.LocalBlock:
		idx := formalIndex(cf.ptf.Proc, v.Base.Sym)
		if idx < 0 {
			return memmod.ValueSet{}, true
		}
		if idx < len(cf.args) {
			return cf.args[idx], true
		}
		return memmod.ValueSet{}, true
	case memmod.ParamBlock:
		bound, ok := cf.pmap[v.Base.Representative()]
		if !ok {
			// The base parameter was not replayed yet: the entry
			// order guarantees it normally; treat as mismatch.
			return memmod.ValueSet{}, false
		}
		out := a.newSet(cf.c)
		for _, b := range bound.Locs() {
			target := b.Shift(v.Off)
			if v.Stride != 0 {
				target = target.WithStride(v.Stride)
			}
			a.addAll(cf.c, &out, a.evalContents(cf.caller, target, cf.callNode))
		}
		return out, true
	case memmod.GlobalBlock:
		return a.evalContents(cf.caller, v, cf.callNode), true
	}
	return memmod.ValueSet{}, true
}

// globalLocIn returns the representation of global sym in frame f's name
// space.
func (a *Analysis) globalLocIn(f *frame, sym *cast.Symbol) memmod.LocSet {
	if f.caller == nil {
		return memmod.Loc(a.globalBlock(sym), 0, 0)
	}
	return memmod.Loc(a.globalParam(f, sym), 0, 0)
}

// extendParamPtrLocs translates the caller-side pointer locations of the
// actuals into parameter space, extending the parameter's known pointer
// locations. Reports whether new locations were found.
func (a *Analysis) extendParamPtrLocs(c *evalCtx, p *memmod.Block, bound memmod.ValueSet) bool {
	extended := false
	for _, b := range bound.Locs() {
		b = b.Resolve()
		for _, l := range b.Base.PtrLocs() {
			var pl memmod.LocSet
			if b.Stride != 0 || l.Stride != 0 {
				pl = memmod.Loc(p, 0, 1)
			} else {
				pl = memmod.Loc(p, l.Off-b.Off, 0)
			}
			if p.AddPtrLoc(pl) {
				extended = true
			}
		}
	}
	if extended {
		// Dereferences through p may now see more locations.
		a.notifyWrite(c, p)
	}
	return extended
}

// extendFuncPtrVals accumulates the values bound to a function-pointer
// parameter and, when the set grows, re-dirties the call nodes that
// resolved targets through it. This is the write half of the dependency
// resolveFuncSyms registers: resolution chains run through frame-local
// pmaps, so a re-bind that brings a new function value would otherwise
// be invisible to the worklist engine and leave a stale fpDomain in the
// callee. Full passes re-walk everything, so tracking-off mode skips it.
func (a *Analysis) extendFuncPtrVals(c *evalCtx, p *memmod.Block, bound memmod.ValueSet) {
	p = p.Representative()
	if !a.track || !p.FuncPtr {
		return
	}
	if p.AddFnBound(bound) {
		a.notifyWrite(c, p)
	}
}

// setNotUnique marks a parameter as possibly standing for several
// locations at once, re-dirtying readers whose strong-update decisions
// depended on its uniqueness.
func (a *Analysis) setNotUnique(c *evalCtx, p *memmod.Block) {
	p = p.Representative()
	if p.NotUnique {
		return
	}
	p.NotUnique = true
	a.notifyWrite(c, p)
}

// replayBind rebinds every input-domain entry at this call site without
// failing: aliasing mismatches subsume parameters, and entries recorded
// as empty that now have values are upgraded to fresh parameters. Used
// for home-context updates, recursion and the merged-domain policies.
func (a *Analysis) replayBind(f *frame, nd *cfg.Node, ptf *PTF, args []memmod.ValueSet) map[*memmod.Block]memmod.ValueSet {
	return a.replayBindMerge(f, nd, ptf, args, false)
}

// replayBindMerge is replayBind with optional merging of the call site's
// actual input values into the PTF's entry records. Recursive calls
// require it (paper §5.4): the recursive PTF approximates multiple
// calling contexts, so values flowing in at recursive sites — expressed
// in the procedure's own name space — must be visible to reads of the
// inputs inside the cycle.
func (a *Analysis) replayBindMerge(f *frame, nd *cfg.Node, ptf *PTF, args []memmod.ValueSet, mergeRecords bool) map[*memmod.Block]memmod.ValueSet {
	pmap := make(map[*memmod.Block]memmod.ValueSet)
	cf := a.carveFrame(f.c)
	cf.ptf, cf.caller, cf.callNode = ptf, f, nd
	cf.args, cf.pmap, cf.c = args, pmap, f.c
	for i := 0; i < len(ptf.initial); i++ {
		e := ptf.initial[i]
		switch e.kind {
		case globalRefEntry:
			p := e.param.Representative()
			gl := a.globalLocIn(f, e.sym)
			if gl.Base == nil {
				// Deferred global-parameter creation; the item aborts
				// after this node and the walk rebinds sequentially.
				continue
			}
			actual := a.value1(f.c, gl)
			if bound, ok := pmap[p]; ok {
				if a.addAll(f.c, &bound, actual) {
					pmap[p] = bound
				}
			} else {
				pmap[p] = actual
			}
			a.bindParamConcrete(cf, p, pmap[p])
			a.extendFuncPtrVals(f.c, p, pmap[p])
		case ptrInitEntry:
			actuals, _ := a.entryActuals(cf, e)
			if e.valEmpty {
				if actuals.IsEmpty() {
					continue
				}
				// Upgrade: the pointer now has targets; give it a
				// parameter and grow the input domain.
				p := a.newParam(cf, hintFor(e.ptr), actuals)
				ptf.initial[i].val = memmod.Loc(p, 0, 0)
				ptf.initial[i].valEmpty = false
				ptf.Pts.Assign(e.ptr, a.value1(f.c, memmod.Loc(p, 0, 0)), ptf.Proc.Entry, false)
				a.bumpVersion(f.c, ptf)
				f.c.changed = true
				continue
			}
			val := e.val.Resolve()
			p := val.Base
			if bound, ok := pmap[p]; ok {
				add := actuals
				if val.Stride == 0 {
					add = a.shiftSet(f.c, actuals, -val.Off)
				}
				if a.addAll(f.c, &bound, add) {
					pmap[p] = bound
					a.setNotUnique(f.c, p)
				}
			} else {
				if val.Stride == 0 {
					pmap[p] = a.shiftSet(f.c, actuals, -val.Off)
				} else {
					pmap[p] = actuals.Clone()
				}
			}
			a.extendParamPtrLocs(f.c, p, pmap[p])
			a.bindParamConcrete(cf, p, pmap[p])
			a.extendFuncPtrVals(f.c, p, pmap[p])
			if mergeRecords && !actuals.IsEmpty() {
				// Recursive call: the entry record of this input
				// pointer also covers the values arriving around the
				// cycle (they are already in this procedure's name
				// space, since the recursive caller is the procedure
				// itself).
				if ptf.Pts.Assign(e.ptr.Resolve(), actuals, ptf.Proc.Entry, false) {
					a.bumpVersion(f.c, ptf)
					f.c.changed = true
				}
			}
		}
	}
	// Bind any parameters not covered by entries (defensive).
	for _, p := range ptf.params {
		if p.Forwarded() != nil {
			continue
		}
		if _, ok := pmap[p]; !ok {
			pmap[p] = memmod.ValueSet{}
		}
	}
	return pmap
}

func sameSymSet(a, b map[*cast.Symbol]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for s := range a {
		if !b[s] {
			return false
		}
	}
	return true
}

// applySummary translates the callee's final points-to function back to
// the caller (paper §5.3).
func (a *Analysis) applySummary(f *frame, nd *cfg.Node, cf *frame, multi, withRet bool) bool {
	ptf := cf.ptf
	exit := ptf.Proc.Exit
	a.mirrorSummary(cf)
	changed := false
	// Accumulate all translated writes per caller destination before
	// asserting records: several callee locations may translate to the
	// same caller location, and their effects must merge (a strong
	// update survives only when exactly one definite write lands on a
	// precise destination). The accumulator is a reused per-context
	// scratch slice, linear-scanned: summaries write to a handful of
	// distinct destinations.
	c := f.c
	if c == nil {
		c = a.mainCtx
	}
	pend := c.pendBuf[:0]
	for _, loc := range ptf.Pts.Locations() {
		loc = loc.Resolve()
		if loc.Base.Kind == memmod.RetvalBlock {
			continue // handled below
		}
		vals, found := ptf.Pts.LookupOut(loc, exit, nil)
		if !found {
			continue
		}
		// Skip locations the callee never modified (only the entry
		// initial record exists): translating them back is an
		// identity that only costs precision.
		if onlyInitialRecord(ptf, loc) {
			continue
		}
		dsts := a.translateLoc(cf, loc)
		if dsts.IsEmpty() {
			continue
		}
		tvals := a.translateVals(cf, vals)
		strongWrite := dominantStrongRecord(ptf, loc, exit) && !multi && dsts.Len() == 1
		for _, dl := range dsts.Locs() {
			pw := (*pendingWrite)(nil)
			for i := range pend {
				if pend[i].dl == dl {
					pw = &pend[i]
					break
				}
			}
			if pw == nil {
				pend = append(pend, pendingWrite{dl: dl, strong: true})
				pw = &pend[len(pend)-1]
				pw.vals = a.newSet(c)
			}
			pw.sources++
			c.arena.AddAll(&pw.vals, tvals)
			if !strongWrite || !dl.Precise() || f.multiTarget {
				pw.strong = false
			}
		}
	}
	for i := range pend {
		pw, dl := &pend[i], pend[i].dl
		a.registerRead(f, dl.Base, nd)
		strong := pw.strong && pw.sources == 1
		// pw.vals is scratch consumed exactly once: merge in place.
		merged := pw.vals
		if !strong {
			old, okOld := f.ptf.Pts.LookupIn(dl, nd, nil)
			if !okOld {
				old = a.getInitial(f, dl)
			}
			c.arena.AddAll(&merged, old)
		}
		if !merged.IsEmpty() {
			if dl.Base.AddPtrLoc(dl) {
				a.notifyWrite(f.c, dl.Base)
			}
		}
		if f.ptf.Pts.Assign(dl, merged, nd, strong) {
			changed = true
			a.recordSolution(f, dl, merged)
		}
	}
	c.pendBuf = pend[:0]
	// Return value.
	if withRet && nd.RetDst != nil {
		rloc := memmod.Loc(ptf.retval, 0, 0)
		if rvals, ok := ptf.Pts.LookupOut(rloc, exit, nil); ok {
			tvals := a.translateVals(cf, rvals)
			dsts := a.evalExpr(f, nd.RetDst, nd)
			for _, dl := range dsts.Locs() {
				a.registerRead(f, dl.Base, nd)
				strong := dsts.Len() == 1 && dl.Precise() && !multi && !f.multiTarget
				merged := a.cloneSet(f.c, tvals)
				if !strong {
					old, okOld := f.ptf.Pts.LookupIn(dl, nd, nil)
					if !okOld {
						old = a.getInitial(f, dl)
					}
					a.addAll(f.c, &merged, old)
				}
				if !merged.IsEmpty() {
					if dl.Base.AddPtrLoc(dl) {
						a.notifyWrite(f.c, dl.Base)
					}
				}
				if f.ptf.Pts.Assign(dl, merged, nd, strong) {
					changed = true
					a.recordSolution(f, dl, merged)
				}
			}
		}
	}
	return changed
}

// onlyInitialRecord reports whether loc's only record is its initial
// value at the procedure entry.
func onlyInitialRecord(ptf *PTF, loc memmod.LocSet) bool {
	recs := ptf.Pts.Records(loc)
	return len(recs) == 1 && recs[0].Node == ptf.Proc.Entry && !recs[0].Strong
}

// dominantStrongRecord reports whether the exit-visible record of loc is
// a strong update dominating the exit (a definite write on every path).
func dominantStrongRecord(ptf *PTF, loc memmod.LocSet, exit *cfg.Node) bool {
	var visNode *cfg.Node
	visStrong := false
	for _, r := range ptf.Pts.Records(loc) {
		if !r.Node.Dominates(exit) {
			continue
		}
		if visNode == nil || visNode.Dominates(r.Node) {
			visNode, visStrong = r.Node, r.Strong
		}
	}
	return visNode != nil && visStrong
}

// pendingWrite accumulates one caller destination's translated callee
// writes inside applySummary.
type pendingWrite struct {
	dl      memmod.LocSet
	vals    memmod.ValueSet
	strong  bool
	sources int
}

// translateLoc maps a callee-name-space location to caller locations.
func (a *Analysis) translateLoc(cf *frame, loc memmod.LocSet) memmod.ValueSet {
	loc = loc.Resolve()
	out := a.newSet(cf.c)
	switch loc.Base.Kind {
	case memmod.LocalBlock, memmod.RetvalBlock:
		// Callee locals do not exist in the caller (paper §5.3).
	case memmod.ParamBlock:
		bound, ok := cf.pmap[loc.Base.Representative()]
		if !ok {
			return out
		}
		for _, b := range bound.Locs() {
			t := b.Shift(loc.Off)
			if loc.Stride != 0 {
				t = t.WithStride(loc.Stride)
			}
			out.Add(t)
		}
	default:
		out.Add(loc)
	}
	return out
}

// translateVals maps callee values to caller values.
func (a *Analysis) translateVals(cf *frame, vals memmod.ValueSet) memmod.ValueSet {
	out := a.newSet(cf.c)
	for _, v := range vals.Locs() {
		a.addAll(cf.c, &out, a.translateLoc(cf, v))
	}
	return out
}

// staleDeps reports whether any callee summary applied inside this PTF
// has grown since (directly or transitively); the PTF must then be
// revisited so the growth reaches its own records.
func (p *PTF) staleDeps() bool {
	return p.staleDepsRec(make(map[*PTF]bool))
}

func (p *PTF) staleDepsRec(vis map[*PTF]bool) bool {
	if vis[p] {
		return false
	}
	vis[p] = true
	stale := false
	p.deps.each(func(dep *PTF, v int) bool {
		if dep.version != v || dep.staleDepsRec(vis) {
			stale = true
			return false
		}
		return true
	})
	return stale
}
