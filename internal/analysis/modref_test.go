package analysis_test

import (
	"sort"
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/cfg"
	"wlpa/internal/libsum"
	"wlpa/internal/memmod"
)

// callNodeOf finds the unique direct call to name in p's procedure.
func callNodeOf(t *testing.T, p *analysis.PTF, name string) *cfg.Node {
	t.Helper()
	var found *cfg.Node
	for _, nd := range p.Proc.Nodes {
		if nd.Kind != cfg.CallNode || nd.Direct == nil || nd.Direct.Name != name {
			continue
		}
		if found != nil {
			t.Fatalf("multiple calls to %s in %s", name, p.Proc.Name)
		}
		found = nd
	}
	if found == nil {
		t.Fatalf("no call to %s in %s", name, p.Proc.Name)
	}
	return found
}

// baseNames flattens a value set to its sorted, deduplicated block names.
func baseNames(vals memmod.ValueSet) []string {
	seen := map[string]bool{}
	for _, l := range vals.Locs() {
		seen[l.Base.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TestNodeEffectsMemcpy pins the per-node library effects at a memcpy
// call site: MOD is the destination's storage, REF the source's, and
// neither set bleeds into the other.
func TestNodeEffectsMemcpy(t *testing.T) {
	src := `
#include <string.h>
int a[4];
int b[4];
int main(void) {
    memcpy(a, b, 4 * sizeof(int));
    return 0;
}`
	a, _ := runOpts(t, src, analysis.Options{LibEffects: libsum.Effects()})
	p := a.MainPTF()
	nd := callNodeOf(t, p, "memcpy")
	mod, ref := a.ModRef().NodeEffects(p, nd)
	modN, refN := baseNames(mod), baseNames(ref)
	if !contains(modN, "a") {
		t.Errorf("memcpy MOD = %v, want destination a", modN)
	}
	if contains(modN, "b") {
		t.Errorf("memcpy MOD = %v: source b must not be modified", modN)
	}
	if !contains(refN, "b") {
		t.Errorf("memcpy REF = %v, want source b", refN)
	}
	if contains(refN, "a") {
		t.Errorf("memcpy REF = %v: destination a is written, not read", refN)
	}
}

// TestNodeEffectsFree pins that a free call site contributes no MOD/REF
// effects: free is fully modeled by the summary layer (the points-to
// transfer function kills the block), not as a memory write. Dataflow
// clients rely on this — a free must not havoc tracked facts.
func TestNodeEffectsFree(t *testing.T) {
	src := `
#include <stdlib.h>
int main(void) {
    int *p = (int *)malloc(sizeof(int));
    *p = 1;
    free(p);
    return 0;
}`
	a, _ := runOpts(t, src, analysis.Options{LibEffects: libsum.Effects()})
	p := a.MainPTF()
	nd := callNodeOf(t, p, "free")
	mod, ref := a.ModRef().NodeEffects(p, nd)
	if !mod.IsEmpty() || !ref.IsEmpty() {
		t.Errorf("free NodeEffects = MOD%v REF%v, want both empty",
			baseNames(mod), baseNames(ref))
	}
}

// TestNodeEffectsUserCall pins the folded-summary side of NodeEffects:
// at a call to a user procedure the converged callee summary, translated
// through the edge bindings, appears at the node.
func TestNodeEffectsUserCall(t *testing.T) {
	src := `
int g;
int h;
void wr(int *p) { *p = h; }
int main(void) {
    wr(&g);
    return 0;
}`
	a, _ := runOpts(t, src, analysis.Options{LibEffects: libsum.Effects()})
	p := a.MainPTF()
	nd := callNodeOf(t, p, "wr")
	mod, ref := a.ModRef().NodeEffects(p, nd)
	if modN := baseNames(mod); !contains(modN, "g") {
		t.Errorf("call MOD = %v, want callee write target g", modN)
	}
	if refN := baseNames(ref); !contains(refN, "h") {
		t.Errorf("call REF = %v, want callee read h", refN)
	}
}
