package analysis

import (
	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// libCall adapts a call node to the LibCall interface handed to library
// summaries (paper §1: "we provide the analysis with a summary of the
// potential pointer assignments in each library function").
type libCall struct {
	a       *Analysis
	f       *frame
	nd      *cfg.Node
	args    []memmod.ValueSet
	multi   bool
	changed bool
}

// callLibrary applies the summary of an extern function.
func (a *Analysis) callLibrary(f *frame, nd *cfg.Node, name string, args []memmod.ValueSet, multi bool) bool {
	c := &libCall{a: a, f: f, nd: nd, args: args, multi: multi}
	if sum, ok := a.opts.Lib[name]; ok {
		sum(c)
	} else {
		genericSummary(c)
	}
	return c.changed
}

func (c *libCall) NumArgs() int { return len(c.args) }

func (c *libCall) Arg(i int) memmod.ValueSet {
	if i < 0 || i >= len(c.args) {
		return memmod.ValueSet{}
	}
	return c.args[i]
}

func (c *libCall) Deref(v memmod.ValueSet) memmod.ValueSet {
	var out memmod.ValueSet
	for _, l := range v.Locs() {
		out.AddAll(c.a.evalContents(c.f, l, c.nd))
	}
	return out
}

func (c *libCall) Store(dsts, vals memmod.ValueSet) {
	if vals.IsEmpty() {
		return
	}
	for _, dl := range dsts.Locs() {
		c.a.registerRead(c.f, dl.Base, c.nd)
		// Library stores are always weak updates (the summary does
		// not know which byte is written).
		old, found := c.f.ptf.Pts.LookupIn(dl, c.nd, nil)
		if !found {
			old = c.a.getInitial(c.f, dl)
		}
		merged := vals.Clone()
		merged.AddAll(old)
		if dl.Base.AddPtrLoc(dl) {
			c.a.notifyWrite(c.f.c, dl.Base)
		}
		if c.f.ptf.Pts.Assign(dl, merged, c.nd, false) {
			c.changed = true
			c.a.recordSolution(c.f, dl, merged)
		}
	}
}

func (c *libCall) Copy(dst, src memmod.ValueSet, size int64) {
	for _, s := range src.Locs() {
		s = s.Resolve()
		c.a.registerRead(c.f, s.Base, c.nd)
		for _, pl := range s.Base.PtrLocs() {
			rel := pl.Off - s.Off
			if size > 0 && (rel < 0 || rel >= size) && pl.Stride == 0 && s.Stride == 0 {
				continue
			}
			vals, found := c.f.ptf.Pts.LookupIn(pl, c.nd, nil)
			if !found {
				vals = c.a.getInitial(c.f, pl)
			}
			if vals.IsEmpty() {
				continue
			}
			for _, d := range dst.Locs() {
				target := d.Shift(rel)
				if s.Stride != 0 || pl.Stride != 0 || d.Stride != 0 {
					target = d.Unknown()
				}
				c.Store(memmod.Values(target), vals)
			}
		}
	}
}

func (c *libCall) Heap() memmod.ValueSet {
	return memmod.Values(memmod.Loc(c.a.heapBlock(c.nd), 0, 0))
}

func (c *libCall) Return(v memmod.ValueSet) {
	if c.nd.RetDst == nil || v.IsEmpty() {
		return
	}
	dsts := c.a.evalExpr(c.f, c.nd.RetDst, c.nd)
	for _, dl := range dsts.Locs() {
		c.a.registerRead(c.f, dl.Base, c.nd)
		strong := dsts.Len() == 1 && dl.Precise() && !c.multi && !c.f.multiTarget
		merged := v.Clone()
		if !strong {
			old, found := c.f.ptf.Pts.LookupIn(dl, c.nd, nil)
			if !found {
				old = c.a.getInitial(c.f, dl)
			}
			merged.AddAll(old)
		}
		if dl.Base.AddPtrLoc(dl) {
			c.a.notifyWrite(c.f.c, dl.Base)
		}
		if c.f.ptf.Pts.Assign(dl, merged, c.nd, strong) {
			c.changed = true
			c.a.recordSolution(c.f, dl, merged)
		}
	}
}

func (c *libCall) Invoke(targets memmod.ValueSet, args []memmod.ValueSet) {
	syms := c.a.callTargets(c.f, nil, targets)
	for _, sym := range syms {
		fd := c.a.prog.FuncByName[sym.Name]
		if fd == nil || fd.Body == nil {
			continue
		}
		// Callback calls never allow strong updates (the library may
		// invoke them any number of times).
		wasMulti := c.f.multiTarget
		c.f.multiTarget = true
		if c.a.callDefinedRet(c.f, c.nd, fd, args, true, false) {
			c.changed = true
		}
		c.f.multiTarget = wasMulti
	}
}

func (c *libCall) Unknown(v memmod.ValueSet) memmod.ValueSet {
	return v.WithStride(1)
}

func (c *libCall) Free(v memmod.ValueSet) {
	c.a.recordFree(c.f, c.nd, v)
}

// genericSummary conservatively models an unknown external function: it
// may read any pointer reachable from its arguments, store any of them
// anywhere reachable, and return any of them.
func genericSummary(c LibCall) {
	var reach memmod.ValueSet
	for i := 0; i < c.NumArgs(); i++ {
		reach.AddAll(c.Arg(i))
	}
	// Transitive closure (bounded): contents of reachable objects are
	// reachable.
	for i := 0; i < 4; i++ {
		before := reach.Len()
		reach.AddAll(c.Deref(c.Unknown(reach)))
		if reach.Len() == before {
			break
		}
	}
	if reach.IsEmpty() {
		return
	}
	c.Store(c.Unknown(reach), reach)
	c.Return(reach)
	// Any reachable function pointer may be invoked.
	c.Invoke(c.Deref(c.Unknown(reach)), nil)
}
