package analysis_test

import (
	"strings"
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/cfg"
)

// lineOf returns the 1-based line of the first source line containing
// marker.
func lineOf(t *testing.T, src, marker string) int {
	t.Helper()
	for i, ln := range strings.Split(src, "\n") {
		if strings.Contains(ln, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not in source", marker)
	return 0
}

// derefStoreAt finds the assign node on the given line whose destination
// is a dereference, returning the node and the dereferencing expression
// (which evaluates to the pointer's targets — the write locations).
func derefStoreAt(t *testing.T, p *analysis.PTF, line int) (*cfg.Node, *cfg.Expr) {
	t.Helper()
	for _, nd := range p.Proc.Nodes {
		if nd.Kind != cfg.AssignNode || nd.Pos.Line != line || nd.Dst == nil {
			continue
		}
		for _, term := range nd.Dst.Terms {
			if term.Kind == cfg.TermDeref {
				return nd, nd.Dst
			}
		}
	}
	t.Fatalf("no dereferencing store on line %d", line)
	return nil, nil
}

// TestSingletonPointee pins the strong-update predicate: a pointer with
// exactly one non-null target resolves to it; a branch-merged pointer
// does not.
func TestSingletonPointee(t *testing.T) {
	src := `
int x;
int y;
int flag;
int *p;
int *q;
int main(void) {
    p = &x;
    q = p;
    *q = 1;
    if (flag)
        p = &y;
    *p = 2;
    return 0;
}`
	a, _ := run(t, src)
	m := a.MainPTF()

	nd1, eq := derefStoreAt(t, m, lineOf(t, src, "*q = 1"))
	loc, ok := a.SingletonPointee(m, eq, nd1)
	if !ok {
		t.Fatal("q with a single target not recognized as singleton")
	}
	if loc.Base.Name != "x" || loc.Off != 0 {
		t.Fatalf("SingletonPointee(q) = %v, want x+0", loc)
	}

	nd2, ep := derefStoreAt(t, m, lineOf(t, src, "*p = 2"))
	if _, ok := a.SingletonPointee(m, ep, nd2); ok {
		t.Fatal("branch-merged p recognized as singleton")
	}
}

// TestMustAlias pins the must-alias query: two pointers that both must
// point at the same unique global alias; after one of them is merged
// over a branch they no longer must-alias.
func TestMustAlias(t *testing.T) {
	src := `
int x;
int y;
int flag;
int *p;
int *q;
int main(void) {
    p = &x;
    q = p;
    *q = 1;
    if (flag)
        p = &y;
    *p = 2;
    return 0;
}`
	a, _ := run(t, src)
	m := a.MainPTF()
	nd1, eq := derefStoreAt(t, m, lineOf(t, src, "*q = 1"))
	nd2, ep := derefStoreAt(t, m, lineOf(t, src, "*p = 2"))

	if !a.MustAlias(m, eq, ep, nd1) {
		t.Error("p and q both pointing at x do not must-alias before the branch")
	}
	if a.MustAlias(m, eq, ep, nd2) {
		t.Error("p merged over a branch still must-aliases q")
	}
}

// TestCallEdgesAndBindings pins the call-edge and binding queries the
// dataflow engine is built on: the main context has one resolved edge to
// the callee, and the callee's extended parameter for the actual &x is
// bound to x's storage.
func TestCallEdgesAndBindings(t *testing.T) {
	src := `
int g;
int x;
int *gp;
void callee(int *p) {
    gp = p;
    g = *p;
}
int main(void) {
    callee(&x);
    return 0;
}`
	a, _ := run(t, src)
	m := a.MainPTF()
	edges := a.CallEdgesOf(m)
	if len(edges) != 1 {
		t.Fatalf("CallEdgesOf(main) has %d edges, want 1", len(edges))
	}
	e := edges[0]
	if e.Callee.Proc.Name != "callee" || e.Caller != m {
		t.Fatalf("unexpected edge %s -> %s", e.Caller.Proc.Name, e.Callee.Proc.Name)
	}
	bindings := a.BindingsAt(m, e.Node, e.Callee)
	if len(bindings) == 0 {
		t.Fatal("no bindings at the call edge")
	}
	foundX := false
	for param, vals := range bindings {
		if param == nil {
			t.Fatal("nil parameter block in bindings")
		}
		for _, l := range vals.Locs() {
			if l.Base.Name == "x" {
				foundX = true
			}
		}
	}
	if !foundX {
		t.Fatalf("no extended parameter bound to x; bindings: %v", bindings)
	}
}
