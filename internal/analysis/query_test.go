package analysis_test

import (
	"strings"
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/sem"
)

// lineOf returns the 1-based line of the first source line containing
// marker.
func lineOf(t *testing.T, src, marker string) int {
	t.Helper()
	for i, ln := range strings.Split(src, "\n") {
		if strings.Contains(ln, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not in source", marker)
	return 0
}

// derefStoreAt finds the assign node on the given line whose destination
// is a dereference, returning the node and the dereferencing expression
// (which evaluates to the pointer's targets — the write locations).
func derefStoreAt(t *testing.T, p *analysis.PTF, line int) (*cfg.Node, *cfg.Expr) {
	t.Helper()
	for _, nd := range p.Proc.Nodes {
		if nd.Kind != cfg.AssignNode || nd.Pos.Line != line || nd.Dst == nil {
			continue
		}
		for _, term := range nd.Dst.Terms {
			if term.Kind == cfg.TermDeref {
				return nd, nd.Dst
			}
		}
	}
	t.Fatalf("no dereferencing store on line %d", line)
	return nil, nil
}

// TestSingletonPointee pins the strong-update predicate: a pointer with
// exactly one non-null target resolves to it; a branch-merged pointer
// does not.
func TestSingletonPointee(t *testing.T) {
	src := `
int x;
int y;
int flag;
int *p;
int *q;
int main(void) {
    p = &x;
    q = p;
    *q = 1;
    if (flag)
        p = &y;
    *p = 2;
    return 0;
}`
	a, _ := run(t, src)
	m := a.MainPTF()

	nd1, eq := derefStoreAt(t, m, lineOf(t, src, "*q = 1"))
	loc, ok := a.SingletonPointee(m, eq, nd1)
	if !ok {
		t.Fatal("q with a single target not recognized as singleton")
	}
	if loc.Base.Name != "x" || loc.Off != 0 {
		t.Fatalf("SingletonPointee(q) = %v, want x+0", loc)
	}

	nd2, ep := derefStoreAt(t, m, lineOf(t, src, "*p = 2"))
	if _, ok := a.SingletonPointee(m, ep, nd2); ok {
		t.Fatal("branch-merged p recognized as singleton")
	}
}

// TestMustAlias pins the must-alias query: two pointers that both must
// point at the same unique global alias; after one of them is merged
// over a branch they no longer must-alias.
func TestMustAlias(t *testing.T) {
	src := `
int x;
int y;
int flag;
int *p;
int *q;
int main(void) {
    p = &x;
    q = p;
    *q = 1;
    if (flag)
        p = &y;
    *p = 2;
    return 0;
}`
	a, _ := run(t, src)
	m := a.MainPTF()
	nd1, eq := derefStoreAt(t, m, lineOf(t, src, "*q = 1"))
	nd2, ep := derefStoreAt(t, m, lineOf(t, src, "*p = 2"))

	if !a.MustAlias(m, eq, ep, nd1) {
		t.Error("p and q both pointing at x do not must-alias before the branch")
	}
	if a.MustAlias(m, eq, ep, nd2) {
		t.Error("p merged over a branch still must-aliases q")
	}
}

// TestSingletonPointeeBlockLevel pins the predicate over block-level
// (stride-1) values: a pointer advanced in a loop holds its block at an
// imprecise offset, which must never be treated as a single storable
// location — neither by SingletonPointee nor by MustAlias, even against
// itself.
func TestSingletonPointeeBlockLevel(t *testing.T) {
	src := `
char buf[16];
int n;
char *cp;
char *cq;
int main(void) {
    int i;
    cp = buf;
    for (i = 0; i < n; i++)
        cp = cp + 1;
    cq = cp;
    *cp = 1;
    *cq = 2;
    return 0;
}`
	a, _ := run(t, src)
	m := a.MainPTF()

	nd1, ecp := derefStoreAt(t, m, lineOf(t, src, "*cp = 1"))
	// The loop-carried pointer still targets only buf…
	vals := a.EvalAt(m, ecp, nd1)
	sawStride := false
	for _, l := range vals.Locs() {
		if l.Resolve().Base.Name != "buf" {
			t.Fatalf("loop-advanced cp points at %v, want only buf", l)
		}
		if l.Resolve().Stride != 0 {
			sawStride = true
		}
	}
	if !sawStride {
		t.Fatal("loop-advanced cp never widened to a block-level (stride) value; the test lost its subject")
	}
	// …but at no single location: strong updates through it are out.
	if loc, ok := a.SingletonPointee(m, ecp, nd1); ok {
		t.Fatalf("block-level cp reported singleton %v", loc)
	}
	nd2, ecq := derefStoreAt(t, m, lineOf(t, src, "*cq = 2"))
	if a.MustAlias(m, ecp, ecq, nd2) {
		t.Fatal("two block-level views of buf reported must-alias")
	}
	if a.MustAlias(m, ecp, ecp, nd2) {
		t.Fatal("block-level cp must-aliases itself")
	}
}

// TestQueryEmptyLocations pins the query layer's empty-set conventions:
// locations never demanded during the analysis answer empty instead of
// materializing input-domain entries, null contents are empty, and the
// singleton/alias predicates refuse pointers with empty points-to sets.
func TestQueryEmptyLocations(t *testing.T) {
	src := `
int used;
int unused;
int *p;
int *dead;
int main(void) {
    p = &used;
    *p = 1;
    return 0;
}`
	a, prog := run(t, src)
	m := a.MainPTF()
	exit := m.Proc.Exit

	for _, name := range []string{"unused", "dead"} {
		var sym *cast.Symbol
		for _, g := range prog.Globals {
			if g.Name == name {
				sym = g
			}
		}
		if sym == nil {
			t.Fatalf("global %s not in program", name)
		}
		loc := a.VarLoc(m, sym, 0, 0)
		if got := a.ContentsAt(m, loc, exit); !got.IsEmpty() {
			t.Errorf("ContentsAt(%s) = %v, want empty (never demanded)", name, got)
		}
		if got := a.ContentsAfter(m, loc, exit); !got.IsEmpty() {
			t.Errorf("ContentsAfter(%s) = %v, want empty (never demanded)", name, got)
		}
		// Block-level widening of an undemanded location is empty too.
		if got := a.ContentsAt(m, loc.Unknown(), exit); !got.IsEmpty() {
			t.Errorf("ContentsAt(%s, block-level) = %v, want empty", name, got)
		}
	}
	if null, ok := a.NullLoc(); ok {
		if got := a.ContentsAt(m, null, exit); !got.IsEmpty() {
			t.Errorf("ContentsAt(null) = %v, want empty", got)
		}
	}
	// A never-assigned pointer has an empty points-to set: no singleton,
	// no alias — not even with itself.
	_, edead := derefStoreAt(t, m, lineOf(t, src, "*p = 1"))
	ndExit := exit
	deadExpr := &cfg.Expr{Terms: []cfg.Term{{Kind: cfg.TermDeref, Base: varExpr(t, prog, "dead")}}}
	if _, ok := a.SingletonPointee(m, deadExpr, ndExit); ok {
		t.Error("empty points-to set reported a singleton pointee")
	}
	if a.MustAlias(m, deadExpr, deadExpr, ndExit) {
		t.Error("pointer with empty points-to set must-aliases itself")
	}
	if a.MustAlias(m, deadExpr, edead, ndExit) {
		t.Error("empty pointer must-aliases an assigned one")
	}
	if got := a.EvalAt(m, nil, ndExit); !got.IsEmpty() {
		t.Errorf("EvalAt(nil) = %v, want empty", got)
	}
}

// varExpr builds the IR expression naming a global variable.
func varExpr(t *testing.T, prog *sem.Program, name string) *cfg.Expr {
	t.Helper()
	for _, g := range prog.Globals {
		if g.Name == name {
			return &cfg.Expr{Terms: []cfg.Term{{Kind: cfg.TermVar, Sym: g}}}
		}
	}
	t.Fatalf("global %s not in program", name)
	return nil
}

// TestCrossContextBindings pins per-site parameter binding under PTF
// reuse: two call sites with disjoint actuals present the same input
// pattern, so the callee's one summary serves both — but BindingsAt
// must still re-derive each edge's own bindings, x never bleeding into
// the py site or vice versa.
func TestCrossContextBindings(t *testing.T) {
	src := `
int x;
int y;
int *px;
int *py;
void store(int **d, int *s) { *d = s; }
int main(void) {
    store(&px, &x);
    store(&py, &y);
    return 0;
}`
	a, _ := run(t, src)
	m := a.MainPTF()
	edges := a.CallEdgesOf(m)
	if len(edges) != 2 {
		t.Fatalf("CallEdgesOf(main) has %d edges, want 2", len(edges))
	}
	// Equivalent input patterns ("d: pointer to global int*, s: pointer
	// to global int") are exactly what PTF reuse exists for: one summary
	// serves both sites.
	if edges[0].Callee != edges[1].Callee {
		t.Logf("note: call sites got separate PTFs (%p, %p)", edges[0].Callee, edges[1].Callee)
	}
	boundNames := func(e analysis.CallEdge) map[string]bool {
		names := map[string]bool{}
		for param, vals := range a.BindingsAt(m, e.Node, e.Callee) {
			if param == nil {
				t.Fatal("nil parameter block in bindings")
			}
			for _, l := range vals.Locs() {
				names[l.Base.Name] = true
			}
		}
		return names
	}
	first, second := boundNames(edges[0]), boundNames(edges[1])
	if !first["x"] || first["y"] {
		t.Errorf("first edge bound %v, want x and not y", first)
	}
	if !second["y"] || second["x"] {
		t.Errorf("second edge bound %v, want y and not x", second)
	}
}

// TestCallEdgesAndBindings pins the call-edge and binding queries the
// dataflow engine is built on: the main context has one resolved edge to
// the callee, and the callee's extended parameter for the actual &x is
// bound to x's storage.
func TestCallEdgesAndBindings(t *testing.T) {
	src := `
int g;
int x;
int *gp;
void callee(int *p) {
    gp = p;
    g = *p;
}
int main(void) {
    callee(&x);
    return 0;
}`
	a, _ := run(t, src)
	m := a.MainPTF()
	edges := a.CallEdgesOf(m)
	if len(edges) != 1 {
		t.Fatalf("CallEdgesOf(main) has %d edges, want 1", len(edges))
	}
	e := edges[0]
	if e.Callee.Proc.Name != "callee" || e.Caller != m {
		t.Fatalf("unexpected edge %s -> %s", e.Caller.Proc.Name, e.Callee.Proc.Name)
	}
	bindings := a.BindingsAt(m, e.Node, e.Callee)
	if len(bindings) == 0 {
		t.Fatal("no bindings at the call edge")
	}
	foundX := false
	for param, vals := range bindings {
		if param == nil {
			t.Fatal("nil parameter block in bindings")
		}
		for _, l := range vals.Locs() {
			if l.Base.Name == "x" {
				foundX = true
			}
		}
	}
	if !foundX {
		t.Fatalf("no extended parameter bound to x; bindings: %v", bindings)
	}
}
