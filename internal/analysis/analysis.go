package analysis

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/ctok"
	"wlpa/internal/memmod"
	"wlpa/internal/ptset"
	"wlpa/internal/sem"
)

// ReusePolicy selects how PTFs are reused across calling contexts.
type ReusePolicy int

const (
	// ReuseByAliasPattern is the paper's algorithm: a PTF is reused
	// whenever the input aliases and function-pointer values match.
	ReuseByAliasPattern ReusePolicy = iota
	// NeverReuse reanalyzes the callee for every call site (the Emami
	// et al. invocation-graph discipline), for comparison.
	NeverReuse
	// SingleSummary keeps one PTF per procedure and merges every
	// context into it (a context-insensitive summary), for comparison.
	SingleSummary
)

func (r ReusePolicy) String() string {
	switch r {
	case ReuseByAliasPattern:
		return "alias-pattern"
	case NeverReuse:
		return "never-reuse"
	case SingleSummary:
		return "single-summary"
	}
	return "?"
}

// LibCall is the view of a call site handed to library-function
// summaries; the summary expresses its pointer effects through it.
type LibCall interface {
	// NumArgs returns the number of actual arguments.
	NumArgs() int
	// Arg returns the value set of the i'th actual (empty if absent).
	Arg(i int) memmod.ValueSet
	// Deref returns the pointed-to contents of the given pointer values.
	Deref(v memmod.ValueSet) memmod.ValueSet
	// Store weakly assigns vals through the pointers in dsts.
	Store(dsts, vals memmod.ValueSet)
	// Copy copies the pointer contents of the objects named by src to
	// the objects named by dst (memcpy-style), up to size bytes (<=0
	// means unbounded).
	Copy(dst, src memmod.ValueSet, size int64)
	// Heap returns the heap block for this call's static site.
	Heap() memmod.ValueSet
	// Return sets the call's return value.
	Return(v memmod.ValueSet)
	// Invoke analyzes calls through the function-pointer values in
	// targets with the given argument value sets (qsort callbacks).
	Invoke(targets memmod.ValueSet, args []memmod.ValueSet)
	// Unknown returns the unknown-position widening of v (stride 1).
	Unknown(v memmod.ValueSet) memmod.ValueSet
	// Free records that the storage named by the pointer values in v is
	// deallocated at this call site. The freed set and site are kept on
	// the analysis state (see Analysis.FreeSites) for checkers; the
	// points-to facts themselves are unaffected (heap blocks summarize
	// whole allocation sites and cannot be strongly killed).
	Free(v memmod.ValueSet)
}

// LibSummary summarizes the pointer behavior of one library function.
type LibSummary func(c LibCall)

// LibEffect declares the MOD/REF behavior of a library function for the
// summary computation (ModRefTable): which argument pointees it may
// modify or read. It complements LibSummary, which expresses points-to
// effects; a function may have either, both, or neither (no entry and no
// summary means a conservative ModAll+RefAll assumption).
type LibEffect struct {
	// ModArgs lists argument indices whose pointed-to storage the
	// function may modify (memcpy's dst is ModArgs[0]).
	ModArgs []int
	// RefArgs lists argument indices whose pointed-to storage the
	// function may read (memcpy's src is RefArgs[1]).
	RefArgs []int
	// ModAll marks functions that may modify anything reachable from any
	// pointer argument (scanf).
	ModAll bool
	// RefAll marks functions that may read anything reachable from any
	// pointer argument (printf with %s).
	RefAll bool
}

// Options configure an analysis run.
type Options struct {
	// Reuse selects the PTF reuse policy (default ReuseByAliasPattern).
	Reuse ReusePolicy
	// Lib maps library (extern) function names to summaries. Extern
	// functions without summaries get a conservative generic summary.
	Lib map[string]LibSummary
	// CollectSolution accumulates a whole-program concrete points-to
	// solution (used by queries and the interpreter soundness oracle).
	CollectSolution bool
	// MaxPTFs caps PTFs per procedure; past the cap contexts merge
	// into the last PTF (the paper's suggested generalization, §8).
	// 0 means unlimited.
	MaxPTFs int
	// MaxTotalPTFs caps the program-wide PTF count; past the cap new
	// contexts merge into existing PTFs. Used to bound the NeverReuse
	// (Emami-style) policy, whose context count grows exponentially.
	// 0 means unlimited.
	MaxTotalPTFs int
	// MaxPasses bounds top-level fixpoint passes (safety valve).
	MaxPasses int
	// Timeout aborts the analysis after a wall-clock budget (0 = none).
	// Exceeding it returns ErrTimeout; the statistics remain valid for
	// the work done so far.
	Timeout time.Duration
	// CombineOffsets implements the optimization the paper suggests in
	// §7: most procedures with more than one PTF differ only in the
	// offsets and strides of their initial points-to functions;
	// treating those as matching (with merged parameter bindings)
	// trades a little context sensitivity for fewer PTFs.
	CombineOffsets bool
	// TrackNull models the null pointer constant as a distinct
	// pseudo-location instead of the empty value set, so that checkers
	// can distinguish "definitely null" from "uninitialized". Off by
	// default: the extra value costs a little precision in PTF
	// matching and is only needed by bug-checking clients.
	TrackNull bool
	// ForceFullPasses disables the dependency-tracked worklist engine
	// and re-evaluates every node of every PTF per top-level pass (the
	// pre-worklist behavior). Both engines must produce identical
	// results; this exists as a cross-check and fallback.
	ForceFullPasses bool
	// Workers sets the size of the parallel scheduler's worker pool.
	// 0 means runtime.GOMAXPROCS(0); 1 disables parallel scheduling.
	// Parallel scheduling requires the worklist engine and the
	// paper's reuse policy; other configurations silently run
	// sequentially. Results are identical for every worker count.
	Workers int
	// LibEffects maps library function names to their MOD/REF behavior
	// for the ModRefTable. Summarized functions without an entry are
	// treated as having no pointer-visible memory effects; functions
	// with neither a summary nor an entry are assumed to modify and read
	// everything reachable from their arguments.
	LibEffects map[string]LibEffect
}

// ErrTimeout is returned by Run when Options.Timeout is exceeded.
var ErrTimeout = &Error{Msg: "analysis wall-clock budget exceeded"}

// Stats are cumulative analysis statistics.
type Stats struct {
	Procedures     int
	PTFs           int
	PTFsPerProc    map[string]int
	Params         int
	NodesEvaluated int
	Passes         int
	Duration       time.Duration
	// PTFsCapped reports that MaxPTFs/MaxTotalPTFs forced contexts to
	// merge (the analysis degraded toward a context-insensitive
	// summary to stay tractable).
	PTFsCapped bool
	// Workers is the effective worker-pool size (1 when the parallel
	// scheduler was disabled or inapplicable).
	Workers int
	// ParallelEpochs counts scheduler epochs (batches of mutually
	// independent work items drained concurrently).
	ParallelEpochs int
	// ParallelItems counts work items drained by the parallel
	// scheduler across all epochs.
	ParallelItems int
	// WorkerBusy records, per worker, the wall-clock time spent
	// evaluating work items (nil when the scheduler never ran).
	WorkerBusy []time.Duration
	// DenseRows counts stored points-to rows that grew the dense
	// bitset index (rows at or past memmod.DenseThreshold members) —
	// observability for the hybrid sparse/dense representation.
	DenseRows int
}

// AvgPTFs returns the average number of PTFs per analyzed procedure.
func (s Stats) AvgPTFs() float64 {
	if s.Procedures == 0 {
		return 0
	}
	return float64(s.PTFs) / float64(s.Procedures)
}

// Error is an analysis failure.
type Error struct {
	Pos ctok.Pos
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// initEntryKind distinguishes input-domain entries.
type initEntryKind int

const (
	ptrInitEntry   initEntryKind = iota // initial value of an input pointer
	globalRefEntry                      // direct reference to a global
)

// initEntry is one element of a PTF's input-domain specification,
// replayed in creation order when testing whether the PTF applies.
type initEntry struct {
	kind initEntryKind

	// ptrInitEntry: Ptr is the input pointer location (callee name
	// space); Val its single-extended-parameter initial value. Empty
	// Val means the pointer had no targets.
	ptr      memmod.LocSet
	val      memmod.LocSet
	valEmpty bool

	// globalRefEntry: the referenced global and its parameter.
	sym   *cast.Symbol
	param *memmod.Block
}

// PTF is a partial transfer function: the summary of a procedure under
// one input-domain (alias pattern + function-pointer values).
type PTF struct {
	Proc *cfg.Proc
	Pts  *ptset.PTS

	// locals maps local symbols (incl. params and temps) to blocks.
	locals symMap
	retval *memmod.Block

	// params are the extended parameters in creation order.
	params []*memmod.Block
	// initial is the input-domain specification, in creation order.
	initial []initEntry
	// globalParams maps global symbols to their parameters.
	globalParams symMap
	// fpDomain records resolved function targets per function-pointer
	// parameter (part of the input domain, paper §5.1).
	fpDomain map[*memmod.Block]map[*cast.Symbol]bool
	// pointedBy counts initial entries pointing at each parameter;
	// two or more with non-unique actuals force NotUnique (§4.1).
	pointedBy map[*memmod.Block]int

	// home identifies the calling context that created the PTF; while
	// iterating, mismatches at the home context update the PTF in
	// place instead of allocating a new one (paper §5.2).
	homeNode *cfg.Node
	homePTF  *PTF

	// siteUsed records, per (call node, callee) in this PTF's body, the
	// callee PTF the site last resolved to. When the site's inputs are
	// intermediate iteration values that no longer replay against any
	// existing domain, the previously used PTF is updated in place
	// (same rationale as the home-context rule, paper §5.2) instead of
	// allocating a duplicate for a transient state.
	siteUsed assoc[siteKey, *PTF]

	// callEdges records, per (call node, callee) in this PTF's body, the
	// callee PTF the site last applied — including recursive
	// applications, which siteUsed deliberately excludes (it would
	// perturb PTF reuse). Read-only client data: the converged map backs
	// the call graph and the MOD/REF summary folds; the engine itself
	// never consults it.
	callEdges assoc[siteKey, *PTF]

	// owner is the Analysis the PTF belongs to (hook dispatch).
	owner *Analysis

	// exitReached records that the exit has been evaluated at least
	// once (needed to defer recursive applications, §5.4).
	exitReached bool
	// recursive marks PTFs that serve a recursive cycle; their input
	// domain merges all recursive call sites (§5.4).
	recursive bool

	// version increments whenever the summary grows; callers re-apply
	// summaries whose version changed.
	version int

	// deps records the version of every callee summary applied while
	// analyzing this PTF; a stale entry forces a revisit so that the
	// grown summary propagates through this procedure's own dataflow
	// (essential for recursive cycles, paper §5.4).
	deps assoc[*PTF, int]

	// applied memoizes, per call site, the callee summary version and
	// binding fingerprint last translated into this PTF. Re-applying an
	// unchanged summary under unchanged bindings is a no-op the engine
	// skips wholesale (the dominant cost of re-evaluating a quiescent
	// call node).
	applied assoc[siteKey, appliedMemo]

	// --- worklist engine state (nil/unused under ForceFullPasses) ---

	// dirty flags flow nodes whose inputs may have changed since their
	// last evaluation (indexed by dense per-proc node ID); evalProc
	// seeds its iteration from them. dirtyN counts set flags; a nil
	// slice means worklist tracking is off.
	dirty  []bool
	dirtyN int
	// evaluated marks nodes (by dense per-proc ID) evaluated at least
	// once, persisting across
	// visits (the full engine keeps a per-visit map instead).
	evaluated []bool
	// callers records every (caller PTF, call node) pair that applied
	// this summary; version bumps re-dirty exactly those nodes. A small
	// deduplicated list: fan-in per summary is low, so linear scans beat
	// a nested map and its per-edge allocations.
	callers []callerEdge
	// mirrored is the version last mirrored into the Solution.
	mirrored int
	// targetCache caches the resolved call-target slice per call node
	// for function-pointer values not involving extended parameters.
	targetCache map[*cfg.Node]*targetEntry

	// lastBind is the most recent binding frame (argument values and
	// parameter map in the caller's name space) under which this PTF was
	// applied; the parallel scheduler re-creates a standalone evaluation
	// stack from it to drain the PTF's dirty nodes off the main walk.
	lastBind *frame
	// octx is the evaluation context currently owning this PTF. It is
	// the unrestricted main context except while an epoch is in flight,
	// when PTFs inside a work item's cone point at the worker's context
	// so that ptset hooks buffer instead of mutating shared state.
	octx *evalCtx
}

// symMap maps symbols to memory blocks with a small-list fast path:
// most procedures have a handful of locals or referenced globals, where
// a linear scan over a compact pair list beats map hashing and its
// bucket allocations. Past symMapPromote entries it switches to a map.
type symMap struct {
	list []symBlock
	m    map[*cast.Symbol]*memmod.Block
}

type symBlock struct {
	sym *cast.Symbol
	b   *memmod.Block
}

const symMapPromote = 16

func (s *symMap) get(sym *cast.Symbol) (*memmod.Block, bool) {
	for i := range s.list {
		if s.list[i].sym == sym {
			return s.list[i].b, true
		}
	}
	if s.m != nil {
		b, ok := s.m[sym]
		return b, ok
	}
	return nil, false
}

func (s *symMap) put(sym *cast.Symbol, b *memmod.Block) {
	if s.m != nil {
		s.m[sym] = b
		return
	}
	if len(s.list) < symMapPromote {
		if s.list == nil {
			s.list = make([]symBlock, 0, symMapPromote)
		}
		s.list = append(s.list, symBlock{sym, b})
		return
	}
	s.m = make(map[*cast.Symbol]*memmod.Block, 2*symMapPromote)
	for i := range s.list {
		s.m[s.list[i].sym] = s.list[i].b
	}
	s.m[sym] = b
}

// assoc maps keys to values with the same small-list fast path as
// symMap, generically: PTFs record a handful of call edges and
// dependencies each, where a compact pair list beats a Go map's bucket
// allocations. Past assocPromote entries it switches to a map. Unlike a
// map, list-mode iteration is deterministic (insertion order) — the two
// iterating clients either sort afterwards or are order-insensitive.
type assoc[K comparable, V any] struct {
	list []assocPair[K, V]
	m    map[K]V
}

type assocPair[K comparable, V any] struct {
	k K
	v V
}

const assocPromote = 24

func (s *assoc[K, V]) get(k K) (V, bool) {
	for i := range s.list {
		if s.list[i].k == k {
			return s.list[i].v, true
		}
	}
	if s.m != nil {
		v, ok := s.m[k]
		return v, ok
	}
	var zero V
	return zero, false
}

func (s *assoc[K, V]) put(k K, v V) {
	if s.m != nil {
		s.m[k] = v
		return
	}
	for i := range s.list {
		if s.list[i].k == k {
			s.list[i].v = v
			return
		}
	}
	if len(s.list) < assocPromote {
		if s.list == nil {
			s.list = make([]assocPair[K, V], 0, 8)
		}
		s.list = append(s.list, assocPair[K, V]{k, v})
		return
	}
	s.m = make(map[K]V, 2*assocPromote)
	for i := range s.list {
		s.m[s.list[i].k] = s.list[i].v
	}
	s.m[k] = v
	s.list = nil
}

func (s *assoc[K, V]) size() int {
	if s.m != nil {
		return len(s.m)
	}
	return len(s.list)
}

// each calls fn for every entry until it returns false.
func (s *assoc[K, V]) each(fn func(K, V) bool) {
	if s.m != nil {
		for k, v := range s.m {
			if !fn(k, v) {
				return
			}
		}
		return
	}
	for i := range s.list {
		if !fn(s.list[i].k, s.list[i].v) {
			return
		}
	}
}

// appliedMemo is one memoized summary application (see PTF.applied).
type appliedMemo struct {
	ptf     *PTF
	version int
	fp      uint64
}

// callerEdge is one recorded application site of a summary.
type callerEdge struct {
	ptf *PTF
	nd  *cfg.Node
}

// siteKey identifies a resolved call edge: a call node in the caller's
// body together with the callee procedure (function-pointer calls can
// resolve one node to several procedures).
type siteKey struct {
	nd   *cfg.Node
	proc *cfg.Proc
}

// targetEntry is one cached call-target resolution: valid while the
// function-pointer value set at the node is unchanged.
type targetEntry struct {
	fv   memmod.ValueSet
	syms []*cast.Symbol
}

// readerKey identifies one registered read: PTF p evaluated node nd
// using the contents of some block.
type readerKey struct {
	ptf *PTF
	nd  *cfg.Node
}

// Analysis is a configured pointer-analysis instance.
type Analysis struct {
	prog  *sem.Program
	procs map[*cast.FuncDecl]*cfg.Proc
	opts  Options

	globalBlocks map[*cast.Symbol]*memmod.Block
	funcBlocks   map[*cast.Symbol]*memmod.Block
	strBlocks    map[int]*memmod.Block
	heapBlocks   map[string]*memmod.Block

	// intern is the run-wide location-set intern table: every PTS keys
	// its records and caches on the IDs it hands out. IDs never outlive
	// the run — the table dies with the Analysis.
	intern *memmod.Interner

	// nullBlock is the null pseudo-location (nil unless TrackNull).
	nullBlock *memmod.Block
	// frees records the freed value set per (PTF, call node), merged
	// across iterations; populated by library summaries via
	// LibCall.Free.
	frees map[freeKey]*memmod.ValueSet

	// ptfs lists the PTFs of every procedure in creation order. The map
	// is fully populated in New and never structurally mutated again, so
	// workers may read it without locking; appends go through the
	// per-procedure ptfList, which only the procedure's owning context
	// touches during an epoch.
	ptfs    map[*cfg.Proc]*ptfList
	mainPTF *PTF

	numPTFs  int64 // atomic: workers create PTFs concurrently
	capped   bool
	deadline time.Time
	timedOut atomic.Bool
	stats    Stats
	solution *Solution

	// paramConcrete accumulates, per extended parameter, the union of
	// the raw actual bindings it received across every context; resolved
	// transitively when building the collapsed Solution. Guarded by
	// solMu while the parallel scheduler runs.
	paramConcrete map[*memmod.Block]*memmod.ValueSet

	// versionClock counts every PTF version increment program-wide; the
	// convergence test compares it across passes instead of rescanning
	// all PTFs. Atomic: workers bump versions of PTFs they own.
	versionClock uint64

	// mainCtx is the unrestricted evaluation context used by the
	// sequential walk from main; worker contexts are restricted to the
	// procedures of their work item's cone.
	mainCtx *evalCtx

	// internMu guards the four interning maps above (global, function,
	// string and heap blocks), which workers may extend concurrently.
	internMu sync.Mutex
	// solMu guards solution.add, solution.dirty and paramConcrete.
	solMu sync.Mutex

	// par enables the parallel pre-drain scheduler; workers is the
	// effective pool size; sched caches the static call-graph
	// condensation; workerBusy accumulates per-worker busy time.
	par     bool
	workers int
	sched   *schedule

	// pendingDrain is set when a call site deferred itself behind the
	// drain of a dirty callee PTF so the scheduler could batch the
	// drains; preDrain clears it once every such PTF has been drained
	// (in parallel or by its sequential fallback). draining guards
	// against re-entrant synchronous drains of the same PTF.
	pendingDrain bool
	draining     map[*PTF]bool
	workerBusy   []time.Duration

	// track enables the dependency-tracked worklist engine.
	track bool
	// incremental marks a re-analysis grafted onto the surviving state
	// of a previous run (see incremental.go): Run reuses the kept main
	// PTF, and the solution-collection descent visits call nodes only.
	incremental bool
	// keptCache holds the graft's surviving baseline PTFs awaiting
	// adoption: getPTF moves one into the live population when a call
	// site's input pattern matches it (see adoptKept). restoredPTFs
	// counts the adoptions.
	keptCache    map[*cfg.Proc][]*PTF
	restoredPTFs int
	// collecting, when non-nil, marks the final solution-collection
	// pass: every reachable PTF is visited exactly once so that all
	// parameter bindings are re-derived from the fixpoint.
	collecting map[*PTF]bool
	// readers registers, per memory block (by representative), the
	// (PTF, node) pairs whose evaluation read the block's records; a
	// write to the block re-dirties exactly those nodes.
	readers map[*memmod.Block]readerSet

	// readerSlab carves the small reader lists (most blocks have a
	// handful of readers; lists double within the slab and promote to a
	// map past readerPromote entries).
	readerSlab []readerKey

	// modref caches the MOD/REF summary table built from the converged
	// fixpoint (see modref.go); built on first demand, single-threaded.
	modref *ModRefTable
}

// frame is one activation on the analysis call stack.
type frame struct {
	ptf      *PTF
	caller   *frame
	callNode *cfg.Node // call site in the caller (nil for main)

	// c is the evaluation context this frame runs under (the main
	// context on the sequential walk, a worker's context inside an
	// epoch).
	c *evalCtx

	// args are the actual argument value sets (caller name space).
	args []memmod.ValueSet

	// pmap binds extended parameters to their actual values in the
	// caller's name space (offset 0 of the parameter corresponds to
	// the recorded location sets).
	pmap map[*memmod.Block]memmod.ValueSet

	// evaluated marks flow nodes evaluated in the current EvalProc.
	evaluated []bool

	// multiTarget disables strong updates while applying one of
	// several possible callees (paper §5.3).
	multiTarget bool
}

// New prepares an analysis of prog.
func New(prog *sem.Program, opts Options) (*Analysis, error) {
	procs, err := cfg.BuildAll(prog.Funcs)
	if err != nil {
		return nil, err
	}
	if opts.MaxPasses == 0 {
		opts.MaxPasses = 64
	}
	a := &Analysis{
		prog:         prog,
		procs:        procs,
		opts:         opts,
		globalBlocks: make(map[*cast.Symbol]*memmod.Block),
		funcBlocks:   make(map[*cast.Symbol]*memmod.Block),
		strBlocks:    make(map[int]*memmod.Block),
		heapBlocks:   make(map[string]*memmod.Block),
		intern:       memmod.NewInterner(),
		ptfs:         make(map[*cfg.Proc]*ptfList, len(procs)),
		track:        !opts.ForceFullPasses,
	}
	a.mainCtx = &evalCtx{a: a}
	// Populate the PTF lists up front so the map itself is immutable
	// from here on (workers append to the per-procedure lists only).
	for _, proc := range procs {
		a.ptfs[proc] = &ptfList{}
	}
	a.workers = opts.Workers
	if a.workers <= 0 {
		a.workers = runtime.GOMAXPROCS(0)
	}
	// The parallel scheduler needs the worklist engine (dirty sets drive
	// the work items) and exact PTF-domain matching; the PTF caps make
	// creation order observable, so they force sequential mode too.
	a.par = a.workers > 1 && a.track && opts.Reuse == ReuseByAliasPattern &&
		opts.MaxPTFs == 0 && opts.MaxTotalPTFs == 0
	if !a.par {
		a.workers = 1
	}
	if a.track {
		a.readers = make(map[*memmod.Block]readerSet)
	}
	if opts.TrackNull {
		a.nullBlock = memmod.NewNull()
	}
	a.stats.PTFsPerProc = make(map[string]int)
	if opts.CollectSolution {
		a.solution = newSolution()
		a.solution.resolve = func(v memmod.ValueSet) memmod.ValueSet {
			return a.concretize(nil, v, 0)
		}
		a.paramConcrete = make(map[*memmod.Block]*memmod.ValueSet)
	}
	return a, nil
}

// Run analyzes the whole program starting from main.
func (a *Analysis) Run() error {
	start := time.Now()
	if a.opts.Timeout > 0 {
		a.deadline = start.Add(a.opts.Timeout)
	}
	if a.prog.Main == nil {
		return &Error{Msg: "program has no main function"}
	}
	mainProc := a.procs[a.prog.Main]
	if a.mainPTF == nil {
		// An incremental re-analysis whose main survived the edit keeps
		// the converged main PTF; everything else starts fresh here.
		a.mainPTF = a.newPTF(a.mainCtx, mainProc, nil, nil)
	}
	mf := &frame{
		ptf:  a.mainPTF,
		pmap: make(map[*memmod.Block]memmod.ValueSet),
		c:    a.mainCtx,
	}
	a.seedGlobals(mf)
	for pass := 1; ; pass++ {
		a.stats.Passes = pass
		a.mainCtx.changed = false
		clock := atomic.LoadUint64(&a.versionClock)
		if a.par && pass > 1 {
			// Pre-drain: evaluate dirty PTFs of mutually independent
			// call-graph cones concurrently before the sequential walk
			// from main handles whatever remains (pass 1 is inherently
			// sequential — no binding frames exist yet).
			a.preDrain()
			if a.timedOut.Load() {
				a.finishStats(start)
				return ErrTimeout
			}
		}
		a.mainCtx.stack = append(a.mainCtx.stack[:0], mf)
		a.evalProc(mf)
		a.mainCtx.stack = a.mainCtx.stack[:0]
		if a.timedOut.Load() {
			a.finishStats(start)
			return ErrTimeout
		}
		if a.track {
			// Worklist convergence: every dirty node reachable through
			// the caller cascade was drained through main's dirty set,
			// so a clean main plus a stable version clock is quiescence.
			if a.mainPTF.dirtyN == 0 && atomic.LoadUint64(&a.versionClock) == clock {
				break
			}
		} else if !a.mainCtx.changed && atomic.LoadUint64(&a.versionClock) == clock {
			break
		}
		if pass >= a.opts.MaxPasses {
			return &Error{Msg: fmt.Sprintf("analysis did not converge after %d passes", pass)}
		}
	}
	if a.solution != nil {
		a.collectSolution(mf)
	}
	if a.incremental {
		a.sweepKept()
	}
	a.finishStats(start)
	return nil
}

// bumpVersion increments a PTF's summary version (and the program-wide
// version clock) and re-dirties every recorded call site of the PTF so
// callers re-apply the grown summary. Only p's owning context calls
// this; foreign call sites are buffered via markDirty.
func (a *Analysis) bumpVersion(c *evalCtx, p *PTF) {
	p.version++
	atomic.AddUint64(&a.versionClock, 1)
	if a.track {
		for _, e := range p.callers {
			a.markDirty(c, e.ptf, e.nd)
		}
	}
}

// markDirty queues node nd of PTF p for re-evaluation. When p goes from
// quiescent to dirty its call sites are re-dirtied too, so the dirt
// cascades up to main and the next pass descends into p; the
// already-dirty guard bounds the cascade on recursive call cycles.
// A restricted context buffers marks for PTFs outside its cone; the
// epoch commit replays them on the main context.
func (a *Analysis) markDirty(c *evalCtx, p *PTF, nd *cfg.Node) {
	if p.dirty == nil {
		return
	}
	if c != nil && c.restricted() && !c.owned[p.Proc] {
		dm := dirtyMark{p, nd}
		if !c.dirtySeen[dm] {
			c.dirtySeen[dm] = true
			c.dirtyBuf = append(c.dirtyBuf, dm)
		}
		return
	}
	if p.dirty[nd.ID] {
		return
	}
	wasEmpty := p.dirtyN == 0
	p.dirty[nd.ID] = true
	p.dirtyN++
	if wasEmpty {
		for _, e := range p.callers {
			a.markDirty(c, e.ptf, e.nd)
		}
	}
}

// registerRead records that evaluating node nd of f's PTF read the
// points-to records of block b; a later write to b re-dirties nd.
// Restricted contexts buffer the registration (the global reader map is
// shared); the epoch commit merges it.
func (a *Analysis) registerRead(f *frame, b *memmod.Block, nd *cfg.Node) {
	if !a.track || f == nil || nd == nil {
		return
	}
	b = b.Representative()
	k := readerKey{f.ptf, nd}
	if c := f.c; c != nil && c.restricted() {
		set := c.readerBuf[b]
		if set == nil {
			set = make(map[readerKey]bool)
			c.readerBuf[b] = set
		}
		set[k] = true
		return
	}
	a.addReader(b, k)
}

// readerSet holds the registered readers of one block: a slab-backed
// list scanned linearly while small, promoted to a map once the block
// is popular (globals read from many PTFs).
type readerSet struct {
	list []readerKey
	m    map[readerKey]bool
}

// readerPromote is the list length at which a readerSet switches to a
// map; beyond it the linear dedup scan costs more than hashing.
const readerPromote = 24

func (a *Analysis) addReader(b *memmod.Block, k readerKey) {
	rs := a.readers[b]
	if rs.m != nil {
		rs.m[k] = true
		return
	}
	for _, e := range rs.list {
		if e == k {
			return
		}
	}
	if len(rs.list) >= readerPromote {
		m := make(map[readerKey]bool, 2*readerPromote)
		for _, e := range rs.list {
			m[e] = true
		}
		m[k] = true
		a.readers[b] = readerSet{m: m}
		return
	}
	list := rs.list
	switch {
	case len(list) == 0:
		if len(a.readerSlab) < 2 {
			a.readerSlab = make([]readerKey, 512)
		}
		list = a.readerSlab[0:0:2]
		a.readerSlab = a.readerSlab[2:]
	case len(list) == cap(list):
		n := 2 * cap(list)
		if len(a.readerSlab) < n {
			a.readerSlab = make([]readerKey, 512)
		}
		nl := a.readerSlab[0:len(list):n]
		a.readerSlab = a.readerSlab[n:]
		copy(nl, list)
		list = nl
	}
	a.readers[b] = readerSet{list: append(list, k)}
}

// notifyWrite re-dirties every registered reader of block b. A
// restricted context also consults its own buffered registrations so
// reads and writes within one work item still chain.
func (a *Analysis) notifyWrite(c *evalCtx, b *memmod.Block) {
	if !a.track {
		return
	}
	rb := b.Representative()
	rs := a.readers[rb]
	for _, k := range rs.list {
		a.markDirty(c, k.ptf, k.nd)
	}
	for k := range rs.m {
		a.markDirty(c, k.ptf, k.nd)
	}
	if c != nil && c.restricted() {
		for k := range c.readerBuf[rb] {
			a.markDirty(c, k.ptf, k.nd)
		}
	}
}

// countNode attributes one node evaluation to the context's counter
// (workers merge theirs into Stats at commit).
func (a *Analysis) countNode(c *evalCtx) {
	if c != nil && c.restricted() {
		c.nodesEval++
		return
	}
	a.stats.NodesEvaluated++
}

// recordCaller registers a call site of callee so version bumps and
// dirty transitions re-dirty the site.
func (a *Analysis) recordCaller(callee, caller *PTF, nd *cfg.Node) {
	if !a.track {
		return
	}
	for _, e := range callee.callers {
		if e.ptf == caller && e.nd == nd {
			return
		}
	}
	if callee.callers == nil {
		callee.callers = make([]callerEdge, 0, 4)
	}
	callee.callers = append(callee.callers, callerEdge{caller, nd})
}

func (a *Analysis) finishStats(start time.Time) {
	// Only procedures that were actually reached have PTFs; the map is
	// pre-populated with every procedure, so count non-empty lists.
	a.stats.Procedures = 0
	a.stats.PTFs = 0
	for proc, l := range a.ptfs {
		if len(l.list) == 0 {
			continue
		}
		a.stats.Procedures++
		a.stats.PTFs += len(l.list)
		a.stats.PTFsPerProc[proc.Name] = len(l.list)
		for _, p := range l.list {
			a.stats.DenseRows += p.Pts.NumDenseRows()
		}
	}
	if a.incremental {
		// The Params counter tracks newParam calls, which an incremental
		// run skips for parameters restored from the baseline. Parameters
		// are never removed (subsumed ones stay, forwarded), so the live
		// count is exactly the sum over every PTF.
		a.stats.Params = 0
		for _, l := range a.ptfs {
			for _, p := range l.list {
				a.stats.Params += len(p.params)
			}
		}
	}
	a.stats.Duration = time.Since(start)
	a.stats.PTFsCapped = a.capped
	a.stats.Workers = a.workers
	a.stats.WorkerBusy = a.workerBusy
}

// Stats returns cumulative statistics (valid after Run).
func (a *Analysis) Stats() Stats { return a.stats }

// MainPTF returns main's transfer function (valid after Run).
func (a *Analysis) MainPTF() *PTF { return a.mainPTF }

// PTFs returns the PTFs of the procedure named name.
func (a *Analysis) PTFs(name string) []*PTF {
	for proc, l := range a.ptfs {
		if proc.Name == name {
			return l.list
		}
	}
	return nil
}

// Proc returns the flow graph of the named function.
func (a *Analysis) Proc(name string) *cfg.Proc {
	fd := a.prog.FuncByName[name]
	if fd == nil {
		return nil
	}
	return a.procs[fd]
}

// Solution returns the collapsed whole-program solution, or nil when
// CollectSolution was not set.
func (a *Analysis) Solution() *Solution { return a.solution }

// GlobalBlock returns the storage block of a global symbol.
func (a *Analysis) GlobalBlock(sym *cast.Symbol) *memmod.Block {
	return a.globalBlock(sym)
}

// FuncBlock returns the block representing the named function, or nil.
func (a *Analysis) FuncBlock(name string) *memmod.Block {
	for sym, b := range a.funcBlocks {
		if sym.Name == name {
			return b
		}
	}
	return nil
}

// OnChange and OnPhi implement ptset.Hooks: record changes re-dirty
// registered readers, new φ-functions dirty their meet node. Both route
// through the PTF's owning context.
func (p *PTF) OnChange(loc memmod.LocSet) { p.owner.notifyWrite(p.octx, loc.Base) }

// OnPhi implements ptset.Hooks.
func (p *PTF) OnPhi(nd *cfg.Node) { p.owner.markDirty(p.octx, p, nd) }

// ptfSlab carves PTF storage in chunks (one allocation per 32
// summaries). PTFs live for the analysis lifetime and are never
// recycled, so carving zero-valued entries is safe; the mutex covers
// creation from restricted (worker) contexts.
var (
	ptfMu   sync.Mutex
	ptfSlab []PTF
)

// newPTF allocates a PTF for proc created at the given home context.
// The ptset hooks route through the PTF's owning context (octx), which
// the scheduler points at a worker context while the PTF's cone is in
// flight, so dirty marks from foreign cones buffer instead of racing.
func (a *Analysis) newPTF(c *evalCtx, proc *cfg.Proc, homeNode *cfg.Node, homePTF *PTF) *PTF {
	atomic.AddInt64(&a.numPTFs, 1)
	nn := len(proc.Nodes)
	ptfMu.Lock()
	if len(ptfSlab) == 0 {
		ptfSlab = make([]PTF, 32)
	}
	p := &ptfSlab[0]
	ptfSlab = ptfSlab[1:]
	ptfMu.Unlock()
	p.Proc = proc
	p.Pts = ptset.New(proc, a.intern)
	p.retval = memmod.NewRetval(proc.Name)
	// globalParams, fpDomain and pointedBy are created lazily at
	// their write sites: many PTFs never touch them.
	p.homeNode = homeNode
	p.homePTF = homePTF
	p.mirrored = -1
	p.octx = a.mainCtx
	if c != nil && c.restricted() {
		p.octx = c
	}
	if a.par {
		p.Pts.SetConcurrent(true)
	}
	if a.track {
		// One allocation backs both per-node flag sets.
		buf := make([]bool, 2*nn)
		p.dirty = buf[:nn:nn]
		p.dirty[proc.Entry.ID] = true
		p.dirtyN = 1
		p.evaluated = buf[nn:]
		p.owner = a
		p.Pts.SetHooks(p)
	}
	l := a.ptfs[proc]
	if l == nil {
		l = &ptfList{}
		a.ptfs[proc] = l
	}
	l.list = append(l.list, p)
	return p
}

// DebugString renders the PTF input domain for diagnostics.
func (p *PTF) DebugString() string {
	s := fmt.Sprintf("proc=%s recursive=%v exit=%v entries=[", p.Proc.Name, p.recursive, p.exitReached)
	for i, e := range p.initial {
		if i > 0 {
			s += ", "
		}
		switch e.kind {
		case globalRefEntry:
			s += fmt.Sprintf("global %s -> %s", e.sym.Name, e.param)
		case ptrInitEntry:
			if e.valEmpty {
				s += fmt.Sprintf("%v -> <empty>", e.ptr)
			} else {
				s += fmt.Sprintf("%v -> %v", e.ptr, e.val)
			}
		}
	}
	return s + "]"
}

// DumpRecords renders the sparse records of locations whose base block
// name starts with one of the given prefixes (diagnostics only).
func (p *PTF) DumpRecords(prefixes ...string) string {
	s := ""
	for _, loc := range p.Pts.Locations() {
		match := false
		for _, pre := range prefixes {
			if len(loc.Base.Name) >= len(pre) && loc.Base.Name[:len(pre)] == pre {
				match = true
			}
		}
		if !match {
			continue
		}
		for _, r := range p.Pts.Records(loc) {
			s += fmt.Sprintf("    %v @%v strong=%v phi=%v = %v\n", loc, r.Node, r.Strong, r.Phi, r.Vals)
		}
	}
	return s
}
