// Package analysis implements the context-sensitive pointer analysis of
// Wilson & Lam (PLDI '95): an iterative flow-sensitive intraprocedural
// analysis whose interprocedural behavior is governed by partial transfer
// functions (PTFs). A PTF summarizes a procedure under the alias
// relationships (and function-pointer input values) that held when it was
// created, and is reused at every call site exhibiting the same input
// domain. Extended parameters name the locations reached through input
// pointers; they are created lazily, subsumed when inputs alias, and form
// the procedure's parametrized name space.
package analysis

import (
	"fmt"
	"time"

	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/ctok"
	"wlpa/internal/memmod"
	"wlpa/internal/ptset"
	"wlpa/internal/sem"
)

// ReusePolicy selects how PTFs are reused across calling contexts.
type ReusePolicy int

const (
	// ReuseByAliasPattern is the paper's algorithm: a PTF is reused
	// whenever the input aliases and function-pointer values match.
	ReuseByAliasPattern ReusePolicy = iota
	// NeverReuse reanalyzes the callee for every call site (the Emami
	// et al. invocation-graph discipline), for comparison.
	NeverReuse
	// SingleSummary keeps one PTF per procedure and merges every
	// context into it (a context-insensitive summary), for comparison.
	SingleSummary
)

func (r ReusePolicy) String() string {
	switch r {
	case ReuseByAliasPattern:
		return "alias-pattern"
	case NeverReuse:
		return "never-reuse"
	case SingleSummary:
		return "single-summary"
	}
	return "?"
}

// LibCall is the view of a call site handed to library-function
// summaries; the summary expresses its pointer effects through it.
type LibCall interface {
	// NumArgs returns the number of actual arguments.
	NumArgs() int
	// Arg returns the value set of the i'th actual (empty if absent).
	Arg(i int) memmod.ValueSet
	// Deref returns the pointed-to contents of the given pointer values.
	Deref(v memmod.ValueSet) memmod.ValueSet
	// Store weakly assigns vals through the pointers in dsts.
	Store(dsts, vals memmod.ValueSet)
	// Copy copies the pointer contents of the objects named by src to
	// the objects named by dst (memcpy-style), up to size bytes (<=0
	// means unbounded).
	Copy(dst, src memmod.ValueSet, size int64)
	// Heap returns the heap block for this call's static site.
	Heap() memmod.ValueSet
	// Return sets the call's return value.
	Return(v memmod.ValueSet)
	// Invoke analyzes calls through the function-pointer values in
	// targets with the given argument value sets (qsort callbacks).
	Invoke(targets memmod.ValueSet, args []memmod.ValueSet)
	// Unknown returns the unknown-position widening of v (stride 1).
	Unknown(v memmod.ValueSet) memmod.ValueSet
	// Free records that the storage named by the pointer values in v is
	// deallocated at this call site. The freed set and site are kept on
	// the analysis state (see Analysis.FreeSites) for checkers; the
	// points-to facts themselves are unaffected (heap blocks summarize
	// whole allocation sites and cannot be strongly killed).
	Free(v memmod.ValueSet)
}

// LibSummary summarizes the pointer behavior of one library function.
type LibSummary func(c LibCall)

// Options configure an analysis run.
type Options struct {
	// Reuse selects the PTF reuse policy (default ReuseByAliasPattern).
	Reuse ReusePolicy
	// Lib maps library (extern) function names to summaries. Extern
	// functions without summaries get a conservative generic summary.
	Lib map[string]LibSummary
	// CollectSolution accumulates a whole-program concrete points-to
	// solution (used by queries and the interpreter soundness oracle).
	CollectSolution bool
	// MaxPTFs caps PTFs per procedure; past the cap contexts merge
	// into the last PTF (the paper's suggested generalization, §8).
	// 0 means unlimited.
	MaxPTFs int
	// MaxTotalPTFs caps the program-wide PTF count; past the cap new
	// contexts merge into existing PTFs. Used to bound the NeverReuse
	// (Emami-style) policy, whose context count grows exponentially.
	// 0 means unlimited.
	MaxTotalPTFs int
	// MaxPasses bounds top-level fixpoint passes (safety valve).
	MaxPasses int
	// Timeout aborts the analysis after a wall-clock budget (0 = none).
	// Exceeding it returns ErrTimeout; the statistics remain valid for
	// the work done so far.
	Timeout time.Duration
	// CombineOffsets implements the optimization the paper suggests in
	// §7: most procedures with more than one PTF differ only in the
	// offsets and strides of their initial points-to functions;
	// treating those as matching (with merged parameter bindings)
	// trades a little context sensitivity for fewer PTFs.
	CombineOffsets bool
	// TrackNull models the null pointer constant as a distinct
	// pseudo-location instead of the empty value set, so that checkers
	// can distinguish "definitely null" from "uninitialized". Off by
	// default: the extra value costs a little precision in PTF
	// matching and is only needed by bug-checking clients.
	TrackNull bool
}

// ErrTimeout is returned by Run when Options.Timeout is exceeded.
var ErrTimeout = &Error{Msg: "analysis wall-clock budget exceeded"}

// Stats are cumulative analysis statistics.
type Stats struct {
	Procedures     int
	PTFs           int
	PTFsPerProc    map[string]int
	Params         int
	NodesEvaluated int
	Passes         int
	Duration       time.Duration
	// PTFsCapped reports that MaxPTFs/MaxTotalPTFs forced contexts to
	// merge (the analysis degraded toward a context-insensitive
	// summary to stay tractable).
	PTFsCapped bool
}

// AvgPTFs returns the average number of PTFs per analyzed procedure.
func (s Stats) AvgPTFs() float64 {
	if s.Procedures == 0 {
		return 0
	}
	return float64(s.PTFs) / float64(s.Procedures)
}

// Error is an analysis failure.
type Error struct {
	Pos ctok.Pos
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// initEntryKind distinguishes input-domain entries.
type initEntryKind int

const (
	ptrInitEntry   initEntryKind = iota // initial value of an input pointer
	globalRefEntry                      // direct reference to a global
)

// initEntry is one element of a PTF's input-domain specification,
// replayed in creation order when testing whether the PTF applies.
type initEntry struct {
	kind initEntryKind

	// ptrInitEntry: Ptr is the input pointer location (callee name
	// space); Val its single-extended-parameter initial value. Empty
	// Val means the pointer had no targets.
	ptr      memmod.LocSet
	val      memmod.LocSet
	valEmpty bool

	// globalRefEntry: the referenced global and its parameter.
	sym   *cast.Symbol
	param *memmod.Block
}

// PTF is a partial transfer function: the summary of a procedure under
// one input-domain (alias pattern + function-pointer values).
type PTF struct {
	Proc *cfg.Proc
	Pts  *ptset.PTS

	// locals maps local symbols (incl. params and temps) to blocks.
	locals map[*cast.Symbol]*memmod.Block
	retval *memmod.Block

	// params are the extended parameters in creation order.
	params []*memmod.Block
	// initial is the input-domain specification, in creation order.
	initial []initEntry
	// globalParams maps global symbols to their parameters.
	globalParams map[*cast.Symbol]*memmod.Block
	// fpDomain records resolved function targets per function-pointer
	// parameter (part of the input domain, paper §5.1).
	fpDomain map[*memmod.Block]map[*cast.Symbol]bool
	// pointedBy counts initial entries pointing at each parameter;
	// two or more with non-unique actuals force NotUnique (§4.1).
	pointedBy map[*memmod.Block]int

	// home identifies the calling context that created the PTF; while
	// iterating, mismatches at the home context update the PTF in
	// place instead of allocating a new one (paper §5.2).
	homeNode *cfg.Node
	homePTF  *PTF

	// exitReached records that the exit has been evaluated at least
	// once (needed to defer recursive applications, §5.4).
	exitReached bool
	// recursive marks PTFs that serve a recursive cycle; their input
	// domain merges all recursive call sites (§5.4).
	recursive bool

	// version increments whenever the summary grows; callers re-apply
	// summaries whose version changed.
	version int

	// deps records the version of every callee summary applied while
	// analyzing this PTF; a stale entry forces a revisit so that the
	// grown summary propagates through this procedure's own dataflow
	// (essential for recursive cycles, paper §5.4).
	deps map[*PTF]int
}

// Analysis is a configured pointer-analysis instance.
type Analysis struct {
	prog  *sem.Program
	procs map[*cast.FuncDecl]*cfg.Proc
	opts  Options

	globalBlocks map[*cast.Symbol]*memmod.Block
	funcBlocks   map[*cast.Symbol]*memmod.Block
	strBlocks    map[int]*memmod.Block
	heapBlocks   map[string]*memmod.Block

	// nullBlock is the null pseudo-location (nil unless TrackNull).
	nullBlock *memmod.Block
	// frees records the freed value set per (PTF, call node), merged
	// across iterations; populated by library summaries via
	// LibCall.Free.
	frees map[freeKey]*memmod.ValueSet

	ptfs    map[*cfg.Proc][]*PTF
	stack   []*frame
	mainPTF *PTF

	paramCount int
	numPTFs    int
	capped     bool
	deadline   time.Time
	timedOut   bool
	stats      Stats
	solution   *Solution

	// paramConcrete accumulates, per extended parameter, the union of
	// the raw actual bindings it received across every context; resolved
	// transitively when building the collapsed Solution.
	paramConcrete map[*memmod.Block]*memmod.ValueSet

	// changed is set whenever any points-to fact or PTF domain grows
	// during the current top-level pass.
	changed bool
}

// frame is one activation on the analysis call stack.
type frame struct {
	ptf      *PTF
	caller   *frame
	callNode *cfg.Node // call site in the caller (nil for main)

	// args are the actual argument value sets (caller name space).
	args []memmod.ValueSet

	// pmap binds extended parameters to their actual values in the
	// caller's name space (offset 0 of the parameter corresponds to
	// the recorded location sets).
	pmap map[*memmod.Block]memmod.ValueSet

	// evaluated marks flow nodes evaluated in the current EvalProc.
	evaluated map[*cfg.Node]bool

	// multiTarget disables strong updates while applying one of
	// several possible callees (paper §5.3).
	multiTarget bool
}

// New prepares an analysis of prog.
func New(prog *sem.Program, opts Options) (*Analysis, error) {
	procs, err := cfg.BuildAll(prog.Funcs)
	if err != nil {
		return nil, err
	}
	if opts.MaxPasses == 0 {
		opts.MaxPasses = 64
	}
	a := &Analysis{
		prog:         prog,
		procs:        procs,
		opts:         opts,
		globalBlocks: make(map[*cast.Symbol]*memmod.Block),
		funcBlocks:   make(map[*cast.Symbol]*memmod.Block),
		strBlocks:    make(map[int]*memmod.Block),
		heapBlocks:   make(map[string]*memmod.Block),
		ptfs:         make(map[*cfg.Proc][]*PTF),
	}
	if opts.TrackNull {
		a.nullBlock = memmod.NewNull()
	}
	a.stats.PTFsPerProc = make(map[string]int)
	if opts.CollectSolution {
		a.solution = newSolution()
		a.paramConcrete = make(map[*memmod.Block]*memmod.ValueSet)
	}
	return a, nil
}

// Run analyzes the whole program starting from main.
func (a *Analysis) Run() error {
	start := time.Now()
	if a.opts.Timeout > 0 {
		a.deadline = start.Add(a.opts.Timeout)
	}
	if a.prog.Main == nil {
		return &Error{Msg: "program has no main function"}
	}
	mainProc := a.procs[a.prog.Main]
	a.mainPTF = a.newPTF(mainProc, nil, nil)
	mf := &frame{
		ptf:  a.mainPTF,
		pmap: make(map[*memmod.Block]memmod.ValueSet),
	}
	a.seedGlobals(mf)
	for pass := 1; ; pass++ {
		a.stats.Passes = pass
		a.changed = false
		versions := a.ptfVersionSum()
		a.stack = a.stack[:0]
		a.stack = append(a.stack, mf)
		a.evalProc(mf)
		a.stack = a.stack[:0]
		if a.timedOut {
			a.finishStats(start)
			return ErrTimeout
		}
		if !a.changed && a.ptfVersionSum() == versions {
			break
		}
		if pass >= a.opts.MaxPasses {
			return &Error{Msg: fmt.Sprintf("analysis did not converge after %d passes", pass)}
		}
	}
	a.finishStats(start)
	return nil
}

func (a *Analysis) finishStats(start time.Time) {
	a.stats.Procedures = len(a.ptfs)
	a.stats.PTFs = 0
	for proc, list := range a.ptfs {
		a.stats.PTFs += len(list)
		a.stats.PTFsPerProc[proc.Name] = len(list)
	}
	a.stats.Duration = time.Since(start)
	a.stats.PTFsCapped = a.capped
}

func (a *Analysis) ptfVersionSum() int {
	n := 0
	for _, list := range a.ptfs {
		for _, p := range list {
			n += p.version
		}
	}
	return n
}

// Stats returns cumulative statistics (valid after Run).
func (a *Analysis) Stats() Stats { return a.stats }

// MainPTF returns main's transfer function (valid after Run).
func (a *Analysis) MainPTF() *PTF { return a.mainPTF }

// PTFs returns the PTFs of the procedure named name.
func (a *Analysis) PTFs(name string) []*PTF {
	for proc, list := range a.ptfs {
		if proc.Name == name {
			return list
		}
	}
	return nil
}

// Proc returns the flow graph of the named function.
func (a *Analysis) Proc(name string) *cfg.Proc {
	fd := a.prog.FuncByName[name]
	if fd == nil {
		return nil
	}
	return a.procs[fd]
}

// Solution returns the collapsed whole-program solution, or nil when
// CollectSolution was not set.
func (a *Analysis) Solution() *Solution { return a.solution }

// GlobalBlock returns the storage block of a global symbol.
func (a *Analysis) GlobalBlock(sym *cast.Symbol) *memmod.Block {
	return a.globalBlock(sym)
}

// FuncBlock returns the block representing the named function, or nil.
func (a *Analysis) FuncBlock(name string) *memmod.Block {
	for sym, b := range a.funcBlocks {
		if sym.Name == name {
			return b
		}
	}
	return nil
}

// newPTF allocates a PTF for proc created at the given home context.
func (a *Analysis) newPTF(proc *cfg.Proc, homeNode *cfg.Node, homePTF *PTF) *PTF {
	a.numPTFs++
	p := &PTF{
		Proc:         proc,
		Pts:          ptset.New(proc),
		locals:       make(map[*cast.Symbol]*memmod.Block),
		retval:       memmod.NewRetval(proc.Name),
		globalParams: make(map[*cast.Symbol]*memmod.Block),
		fpDomain:     make(map[*memmod.Block]map[*cast.Symbol]bool),
		pointedBy:    make(map[*memmod.Block]int),
		homeNode:     homeNode,
		homePTF:      homePTF,
	}
	a.ptfs[proc] = append(a.ptfs[proc], p)
	return p
}

// DebugString renders the PTF input domain for diagnostics.
func (p *PTF) DebugString() string {
	s := fmt.Sprintf("proc=%s recursive=%v exit=%v entries=[", p.Proc.Name, p.recursive, p.exitReached)
	for i, e := range p.initial {
		if i > 0 {
			s += ", "
		}
		switch e.kind {
		case globalRefEntry:
			s += fmt.Sprintf("global %s -> %s", e.sym.Name, e.param)
		case ptrInitEntry:
			if e.valEmpty {
				s += fmt.Sprintf("%v -> <empty>", e.ptr)
			} else {
				s += fmt.Sprintf("%v -> %v", e.ptr, e.val)
			}
		}
	}
	return s + "]"
}

// DumpRecords renders the sparse records of locations whose base block
// name starts with one of the given prefixes (diagnostics only).
func (p *PTF) DumpRecords(prefixes ...string) string {
	s := ""
	for _, loc := range p.Pts.Locations() {
		match := false
		for _, pre := range prefixes {
			if len(loc.Base.Name) >= len(pre) && loc.Base.Name[:len(pre)] == pre {
				match = true
			}
		}
		if !match {
			continue
		}
		for _, r := range p.Pts.Records(loc) {
			s += fmt.Sprintf("    %v @%v strong=%v phi=%v = %v\n", loc, r.Node, r.Strong, r.Phi, r.Vals)
		}
	}
	return s
}
