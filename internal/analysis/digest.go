package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// DomainDigests returns, per analyzed procedure, a stable digest of the
// set of converged input domains (one per PTF): the initial points-to
// entries in replay order, the function-pointer domains, and the
// recursion flag. Together with the procedure's transitive IR hash and
// the options fingerprint this identifies the converged summary — the
// paper's observation that a PTF is a pure function of (procedure body,
// input alias pattern) turned into a cache key (see internal/store).
//
// The digest renders block names, never pointers or interned IDs, so it
// is stable across runs of the same engine configuration. It is
// deliberately conservative: a digest mismatch costs a cache miss,
// never a stale entry.
func (a *Analysis) DomainDigests() map[string]string {
	out := make(map[string]string)
	for proc, l := range a.ptfs {
		if len(l.list) == 0 {
			continue
		}
		doms := make([]string, 0, len(l.list))
		for _, p := range l.list {
			doms = append(doms, p.renderDomain())
		}
		sort.Strings(doms)
		h := sha256.New()
		fmt.Fprintf(h, "wlpa/domain/v1 %s %d\n", proc.Name, len(doms))
		for _, d := range doms {
			fmt.Fprintf(h, "%d:%s", len(d), d)
		}
		out[proc.Name] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}

// renderDomain renders one PTF's input domain deterministically.
func (p *PTF) renderDomain() string {
	var b strings.Builder
	for _, e := range p.initial {
		switch e.kind {
		case ptrInitEntry:
			val := "<empty>"
			if e.val.Base != nil {
				val = e.val.String()
			}
			fmt.Fprintf(&b, "ptr %s = %s empty=%v\n", e.ptr.String(), val, e.valEmpty)
		case globalRefEntry:
			name := "<nil>"
			if e.sym != nil {
				name = e.sym.Name
			}
			pname := "<nil>"
			if e.param != nil {
				pname = e.param.Name
			}
			fmt.Fprintf(&b, "global %s param %s\n", name, pname)
		}
	}
	var fps []string
	for blk, syms := range p.fpDomain {
		var names []string
		for s := range syms {
			names = append(names, s.Name)
		}
		sort.Strings(names)
		fps = append(fps, fmt.Sprintf("fp %s -> {%s}", blk.Name, strings.Join(names, ",")))
	}
	sort.Strings(fps)
	for _, l := range fps {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "recursive=%v nparams=%d\n", p.recursive, len(p.params))
	return b.String()
}

// RecordNodes returns the IDs of flow nodes at which this PTF holds any
// points-to record (assignments and φ-functions). Between two nodes
// with no intervening record on the dominator path, every location's
// contents are identical — snapshot builders (pta) use this to copy
// per-node query answers from the immediate dominator instead of
// re-deriving them.
func (p *PTF) RecordNodes() map[int]bool {
	out := map[int]bool{}
	for _, loc := range p.Pts.Locations() {
		for _, r := range p.Pts.Records(loc) {
			if r.Node != nil {
				out[r.Node.ID] = true
			}
		}
	}
	return out
}
