// Package analysis implements the context-sensitive pointer analysis of
// Wilson & Lam (PLDI '95): an iterative flow-sensitive intraprocedural
// analysis whose interprocedural behavior is governed by partial
// transfer functions (PTFs, paper §5).
//
// A PTF summarizes a procedure under the alias relationships (and
// function-pointer input values) that held when it was created, and is
// reused at every call site exhibiting the same input domain (§5.2).
// Extended parameters name the locations reached through input
// pointers; they are created lazily as the walk discovers reads, are
// subsumed when inputs turn out to alias (§5.3), and form the
// procedure's parametrized name space. Because a PTF's summary is
// expressed in terms of its extended parameters, a call whose inputs
// merely have different values — same alias pattern, same pointer
// shape — reuses the summary with no re-evaluation; only structural
// input changes (a new aliasing, an empty input turning non-empty, a
// pointer at a previously unknown location) dirty the PTF. Recursion
// reuses the PTF already on the activation stack (§5.4).
//
// Two evaluation engines produce bit-identical results:
//
//   - The dependency-tracked worklist engine (default): each PTF keeps
//     a dirty-node set; writes notify registered readers, callee
//     version bumps re-dirty recorded call sites, and a pass ends when
//     everything is quiescent.
//   - The full-pass engine (Options.ForceFullPasses): re-evaluates
//     every node of every PTF per pass. Kept as a cross-check; the
//     equivalence tests compare the two on every workload.
//
// On top of the worklist engine sits the parallel pre-drain scheduler
// (Options.Workers > 1, see schedule.go): mutually independent dirty
// PTFs — disjoint static call cones and resource sets — are drained by
// a worker pool in deterministic epochs, with buffered effects replayed
// in item order. Results are identical at every worker count.
//
// Key invariants:
//
//   - All per-PTF state transitions are monotone (domains, points-to
//     records, reader registrations only grow), so evaluation order
//     affects cost, never the fixpoint.
//   - The PTF population itself is history-sensitive: a match decision
//     depends on the candidate's input domain at match time. Match
//     decisions therefore happen only on the sequential main walk, in
//     sweep order; the scheduler batches exclusively drains whose
//     site decision is already latched (siteUsed).
//   - The collapsed Solution is rebuilt sequentially from the
//     converged fixpoint, never incrementally from partial states.
package analysis
