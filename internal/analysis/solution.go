package analysis

import (
	"fmt"
	"sort"

	"wlpa/internal/cast"
	"wlpa/internal/memmod"
)

// Solution is a collapsed whole-program view of the analysis results:
// every points-to fact established in any context. Facts are stored in
// their parametrized form and resolved to concrete (non-parametrized)
// blocks lazily at query time, using the accumulated union of every
// actual binding each extended parameter ever received. It exists to
// support queries and the interpreter-based soundness oracle; the
// analysis itself works only on the per-PTF sparse representations.
type Solution struct {
	raw map[memmod.LocSet]*memmod.ValueSet

	// resolve maps parametrized values to concrete ones (installed by
	// the owning Analysis).
	resolve func(memmod.ValueSet) memmod.ValueSet

	// cache of the fully resolved facts, built on first query.
	resolved map[memmod.LocSet]*memmod.ValueSet
	dirty    bool
}

func newSolution() *Solution {
	return &Solution{raw: make(map[memmod.LocSet]*memmod.ValueSet), dirty: true}
}

func (s *Solution) add(loc memmod.LocSet, vals memmod.ValueSet) {
	loc = loc.Resolve()
	s.dirty = true
	v, ok := s.raw[loc]
	if !ok {
		nv := vals.Clone()
		s.raw[loc] = &nv
		return
	}
	v.AddAll(vals)
}

// materialize resolves all raw facts to concrete blocks.
func (s *Solution) materialize() {
	if !s.dirty && s.resolved != nil {
		return
	}
	s.resolved = make(map[memmod.LocSet]*memmod.ValueSet, len(s.raw))
	for k, v := range s.raw {
		keys := s.resolve(memmod.Values(k))
		vals := s.resolve(*v)
		if vals.IsEmpty() {
			continue
		}
		for _, ck := range keys.Locs() {
			if ck.Base.Kind == memmod.ParamBlock {
				continue
			}
			acc, ok := s.resolved[ck]
			if !ok {
				nv := vals.Clone()
				s.resolved[ck] = &nv
				continue
			}
			acc.AddAll(vals)
		}
	}
	s.dirty = false
}

// PointsTo returns the recorded may-point-to set of a concrete location.
// Facts recorded under overlapping location sets are merged.
func (s *Solution) PointsTo(loc memmod.LocSet) memmod.ValueSet {
	s.materialize()
	var out memmod.ValueSet
	for k, v := range s.resolved {
		if k.Overlaps(loc) {
			out.AddAll(*v)
		}
	}
	return out
}

// Locations returns all concrete locations with recorded facts, sorted
// by name.
func (s *Solution) Locations() []memmod.LocSet {
	s.materialize()
	out := make([]memmod.LocSet, 0, len(s.resolved))
	for k := range s.resolved {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Base.Name != out[j].Base.Name {
			return out[i].Base.Name < out[j].Base.Name
		}
		if out[i].Off != out[j].Off {
			return out[i].Off < out[j].Off
		}
		return out[i].Stride < out[j].Stride
	})
	return out
}

// NumFacts returns the number of distinct concrete location keys.
func (s *Solution) NumFacts() int {
	s.materialize()
	return len(s.resolved)
}

// recordSolution mirrors an assignment into the collapsed solution in
// parametrized form; resolution happens at query time.
func (a *Analysis) recordSolution(f *frame, loc memmod.LocSet, vals memmod.ValueSet) {
	if a.solution == nil {
		return
	}
	_ = f
	a.solMu.Lock()
	a.solution.add(loc, vals)
	a.solMu.Unlock()
}

// mirrorSummary records every points-to fact of a callee instance into
// the collapsed solution. With raw (parametrized) storage this is cheap
// and context-independent: bindings accumulate separately per parameter.
func (a *Analysis) mirrorSummary(cf *frame) {
	if a.solution == nil {
		return
	}
	// Every record mutation in a callee bumps its version, so an
	// unchanged version means this mirror would be a no-op (the union
	// in the solution is idempotent).
	if cf.ptf.version == cf.ptf.mirrored {
		return
	}
	cf.ptf.mirrored = cf.ptf.version
	for _, loc := range cf.ptf.Pts.Locations() {
		for _, r := range cf.ptf.Pts.Records(loc) {
			if r.Vals.IsEmpty() {
				continue
			}
			a.recordSolution(cf, loc, r.Vals)
		}
	}
}

// collectSolution rebuilds the collapsed solution from the converged
// fixpoint so that it is independent of iteration history: facts and
// parameter bindings accumulated while iterating include transient
// intermediate values that depend on evaluation order (and so differ
// between the worklist engine and the full-pass fallback). A final
// full-evaluation pass over the fixpoint — which changes no analysis
// fact — re-derives every parameter binding and formal binding, and the
// final sparse records of every PTF are then mirrored wholesale.
func (a *Analysis) collectSolution(mf *frame) {
	for k := range a.solution.raw {
		delete(a.solution.raw, k)
	}
	a.solution.resolved = nil
	a.solution.dirty = true
	for p := range a.paramConcrete {
		delete(a.paramConcrete, p)
	}
	track := a.track
	a.track = false
	a.collecting = map[*PTF]bool{mf.ptf: true}
	a.mainCtx.stack = append(a.mainCtx.stack[:0], mf)
	a.evalProc(mf)
	a.mainCtx.stack = a.mainCtx.stack[:0]
	a.collecting = nil
	a.track = track
	// At the fixpoint no assignment changes, so the pass above records
	// bindings but no facts; mirror every PTF's final records directly.
	for _, l := range a.ptfs {
		for _, p := range l.list {
			for _, loc := range p.Pts.Locations() {
				for _, r := range p.Pts.Records(loc) {
					if r.Vals.IsEmpty() {
						continue
					}
					a.recordSolution(nil, loc, r.Vals)
				}
			}
		}
	}
}

// concretize maps parametrized locations to concrete blocks: each
// extended parameter stands for the union of every actual binding it
// ever received (context-collapsed), resolved transitively since
// bindings may themselves name parameters of outer procedures.
func (a *Analysis) concretize(f *frame, vals memmod.ValueSet, depth int) memmod.ValueSet {
	_ = f
	var out memmod.ValueSet
	a.concretizeInto(vals, &out, make(map[memmod.LocSet]bool), depth)
	return out
}

func (a *Analysis) concretizeInto(vals memmod.ValueSet, out *memmod.ValueSet, seen map[memmod.LocSet]bool, depth int) {
	if depth > 64 {
		return
	}
	for _, l := range vals.Locs() {
		l = l.Resolve()
		if seen[l] {
			continue
		}
		seen[l] = true
		if l.Base.Kind != memmod.ParamBlock {
			out.Add(l)
			continue
		}
		acc, ok := a.paramConcrete[l.Base]
		if !ok {
			continue
		}
		adjusted := acc.Shift(l.Off)
		if l.Stride != 0 {
			adjusted = adjusted.WithStride(l.Stride)
		}
		a.concretizeInto(adjusted, out, seen, depth+1)
	}
}

// bindParamConcrete accumulates the raw actual values a parameter was
// bound to in some context; they resolve transitively in concretize.
func (a *Analysis) bindParamConcrete(owner *frame, p *memmod.Block, vals memmod.ValueSet) {
	_ = owner
	if a.paramConcrete == nil || vals.IsEmpty() {
		return
	}
	a.solMu.Lock()
	defer a.solMu.Unlock()
	if a.solution != nil {
		a.solution.dirty = true
	}
	p = p.Representative()
	acc, ok := a.paramConcrete[p]
	if !ok {
		nv := vals.Resolved().Clone()
		a.paramConcrete[p] = &nv
		return
	}
	acc.AddAll(vals)
}

// DebugParamConcrete renders the accumulated per-parameter bindings
// (diagnostics only).
func (a *Analysis) DebugParamConcrete() []string {
	var out []string
	for p, v := range a.paramConcrete {
		out = append(out, fmt.Sprintf("%p %s -> %s", p, p.Name, v.String()))
	}
	sort.Strings(out)
	return out
}

// recordFormalBindings eagerly mirrors argument-to-formal bindings into
// the collapsed solution. The analysis itself creates extended
// parameters for formals lazily (unreferenced formals get none, paper
// §2.2), but the whole-program solution — and the interpreter soundness
// oracle checking it — covers the binding of every formal.
func (a *Analysis) recordFormalBindings(cf *frame, fd *cast.FuncDecl, args []memmod.ValueSet) {
	if a.solution == nil || fd == nil {
		return
	}
	for i, p := range fd.Params {
		if p.Sym == nil || i >= len(args) || args[i].IsEmpty() {
			continue
		}
		loc := memmod.Loc(cf.ptf.localBlock(p.Sym), 0, 0)
		a.recordSolution(cf, loc, args[i])
	}
}
