package analysis

import (
	"sort"

	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// This file is the read-only query surface of a converged analysis, used
// by checkers (internal/check) and per-node queries (pta.PointsToAt).
// Unlike the evaluation paths, these functions never extend a PTF's input
// domain: initial values that were never demanded during the analysis
// resolve to the empty set instead of materializing new extended
// parameters.

// freeKey identifies a deallocation site within one calling context.
type freeKey struct {
	ptf *PTF
	nd  *cfg.Node
}

// FreeSite is one recorded deallocation: at Node (within the context
// summarized by PTF), the storage named by Vals was freed.
type FreeSite struct {
	PTF  *PTF
	Node *cfg.Node
	Vals memmod.ValueSet
}

// recordFree merges a freed value set into the per-(PTF, node) record.
// Restricted contexts buffer the merge for the epoch commit — the
// shared map must not be mutated concurrently, and the union is
// order-independent so buffering preserves the sequential result.
func (a *Analysis) recordFree(f *frame, nd *cfg.Node, v memmod.ValueSet) {
	if v.IsEmpty() {
		return
	}
	k := freeKey{f.ptf, nd}
	if c := f.c; c != nil && c.restricted() {
		if c.freesBuf == nil {
			c.freesBuf = make(map[freeKey]*memmod.ValueSet)
		}
		acc, ok := c.freesBuf[k]
		if !ok {
			nv := v.Resolved().Clone()
			c.freesBuf[k] = &nv
			return
		}
		acc.AddAll(v)
		return
	}
	if a.frees == nil {
		a.frees = make(map[freeKey]*memmod.ValueSet)
	}
	acc, ok := a.frees[k]
	if !ok {
		nv := v.Resolved().Clone()
		a.frees[k] = &nv
		return
	}
	acc.AddAll(v)
}

// FreeSites returns every recorded deallocation, sorted by procedure
// name, node ID, and PTF creation order (deterministic).
func (a *Analysis) FreeSites() []FreeSite {
	out := make([]FreeSite, 0, len(a.frees))
	for k, v := range a.frees {
		out = append(out, FreeSite{PTF: k.ptf, Node: k.nd, Vals: v.Resolved()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PTF.Proc.Name != out[j].PTF.Proc.Name {
			return out[i].PTF.Proc.Name < out[j].PTF.Proc.Name
		}
		if out[i].Node.ID != out[j].Node.ID {
			return out[i].Node.ID < out[j].Node.ID
		}
		return ptfIndex(out[i].PTF) < ptfIndex(out[j].PTF)
	})
	return out
}

func ptfIndex(p *PTF) int {
	// PTFs carry no explicit index; use the parameter count tiebreak
	// (stable enough for deterministic output of same-proc sites).
	return len(p.params)
}

// NullLoc returns the null pseudo-location and whether null tracking is
// enabled for this analysis.
func (a *Analysis) NullLoc() (memmod.LocSet, bool) {
	if a.nullBlock == nil {
		return memmod.LocSet{}, false
	}
	return memmod.Loc(a.nullBlock, 0, 0), true
}

// AllPTFs returns every PTF of every analyzed procedure, in program
// declaration order (then PTF creation order).
func (a *Analysis) AllPTFs() []*PTF {
	var out []*PTF
	for _, fd := range a.prog.Funcs {
		proc, ok := a.procs[fd]
		if !ok {
			continue
		}
		if l := a.ptfs[proc]; l != nil {
			out = append(out, l.list...)
		}
	}
	return out
}

// HeapBlockAt returns the heap block allocated at the given call node, or
// nil if the node is not a (reached) allocation site.
func (a *Analysis) HeapBlockAt(nd *cfg.Node) *memmod.Block {
	return a.heapBlocks[nd.Pos.String()]
}

// Concretize resolves extended-parameter values to the union of every
// concrete binding they received in any context (requires
// CollectSolution).
func (a *Analysis) Concretize(vals memmod.ValueSet) memmod.ValueSet {
	if a.paramConcrete == nil {
		return vals.Resolved()
	}
	return a.concretize(nil, vals, 0)
}

// ExitReached reports whether the summary has been computed through the
// procedure exit (false only for PTFs abandoned mid-recursion).
func (p *PTF) ExitReached() bool { return p.exitReached }

// Home returns the calling context the PTF was created at: the caller's
// PTF and the call node (both nil for main).
func (p *PTF) Home() (*PTF, *cfg.Node) { return p.homePTF, p.homeNode }

// RetvalLoc returns the location of the procedure's return-value block.
func (p *PTF) RetvalLoc() memmod.LocSet { return memmod.Loc(p.retval, 0, 0) }

// FuncPtrTargets returns the resolved function symbols of an extended
// parameter used as an indirect-call target (its PTF input-domain entry,
// paper §5.1), sorted by name. Empty if b is not a call-target parameter.
func (p *PTF) FuncPtrTargets(b *memmod.Block) []*cast.Symbol {
	set := p.fpDomain[b.Representative()]
	out := make([]*cast.Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// VarLoc resolves a variable symbol to its location in the PTF's name
// space without extending the input domain: the retval block, a local
// block, the real global block (in main), or the PTF's extended parameter
// for the global (unreferenced globals fall back to the real block, whose
// records simply miss in this PTF).
func (a *Analysis) VarLoc(p *PTF, sym *cast.Symbol, off, stride int64) memmod.LocSet {
	if sym == p.Proc.Retval || sym.Name == "<retval>" {
		return memmod.Loc(p.retval, off, stride)
	}
	if sym.Global {
		if p != a.mainPTF {
			if gp, ok := p.globalParams.get(sym); ok {
				return memmod.Loc(gp.Representative(), off, stride)
			}
		}
		return memmod.Loc(a.globalBlock(sym), off, stride)
	}
	return memmod.Loc(p.localBlock(sym), off, stride)
}

// CallEdgesOf returns the resolved call edges applied inside one
// context, deterministically sorted by node then callee. Dataflow
// clients use it to find the callee summaries folded at a call node.
func (a *Analysis) CallEdgesOf(p *PTF) []CallEdge { return sortedEdges(p) }

// BindingsAt re-derives the parameter bindings of one call edge: for
// every extended parameter of the callee, the caller-name-space values
// it was bound to at this site (see edgeBindings). The returned sets
// are resolved copies; callers may keep them.
func (a *Analysis) BindingsAt(caller *PTF, nd *cfg.Node, callee *PTF) map[*memmod.Block]memmod.ValueSet {
	pm := a.edgeBindings(caller, nd, callee)
	out := make(map[*memmod.Block]memmod.ValueSet, len(pm))
	for b, v := range pm {
		out[b] = v.Resolved()
	}
	return out
}

// SingletonPointee returns the one location an expression must point at
// in context p at node nd: the points-to set holds exactly one non-null
// location at a known offset (stride 0). Checkers use it to decide
// between strong and weak updates; callers that additionally need
// "exactly one runtime object" must also test loc.Base.Unique().
func (a *Analysis) SingletonPointee(p *PTF, e *cfg.Expr, nd *cfg.Node) (memmod.LocSet, bool) {
	var single memmod.LocSet
	n := 0
	for _, l := range a.EvalAt(p, e, nd).Locs() {
		l = l.Resolve()
		if l.Base.Kind == memmod.NullBlock {
			continue
		}
		single = l
		n++
		if n > 1 {
			return memmod.LocSet{}, false
		}
	}
	if n != 1 || single.Stride != 0 {
		return memmod.LocSet{}, false
	}
	return single, true
}

// MustAlias reports whether two expressions definitely denote the same
// single runtime location at nd: both resolve to the same singleton
// precise location of a unique block.
func (a *Analysis) MustAlias(p *PTF, e1, e2 *cfg.Expr, nd *cfg.Node) bool {
	l1, ok1 := a.SingletonPointee(p, e1, nd)
	l2, ok2 := a.SingletonPointee(p, e2, nd)
	return ok1 && ok2 && l1.Resolve() == l2.Resolve() && l1.Precise()
}

// EvalAt evaluates an IR expression to the value set it denotes in PTF
// p's name space at node nd, read-only (converged state; see file
// comment).
func (a *Analysis) EvalAt(p *PTF, e *cfg.Expr, nd *cfg.Node) memmod.ValueSet {
	var out memmod.ValueSet
	if e == nil {
		return out
	}
	for _, t := range e.Terms {
		out.AddAll(a.TermValuesAt(p, t, nd))
	}
	return out
}

// TermValuesAt evaluates a single IR term read-only (the per-term variant
// of EvalAt, used by checkers that must attribute values to an individual
// dereference).
func (a *Analysis) TermValuesAt(p *PTF, t cfg.Term, nd *cfg.Node) memmod.ValueSet {
	var base memmod.ValueSet
	switch t.Kind {
	case cfg.TermVar:
		base.Add(a.VarLoc(p, t.Sym, 0, 0))
	case cfg.TermFunc:
		base.Add(memmod.Loc(a.funcBlock(t.Sym), 0, 0))
	case cfg.TermStr:
		base.Add(memmod.Loc(a.strBlock(t.StrID, t.StrVal), 0, 0))
	case cfg.TermNull:
		if a.nullBlock != nil {
			base.Add(memmod.Loc(a.nullBlock, 0, 0))
		}
	case cfg.TermDeref:
		ptrs := a.EvalAt(p, t.Base, nd)
		for _, pl := range ptrs.Locs() {
			base.AddAll(a.ContentsAt(p, pl, nd))
		}
	}
	if t.Off != 0 {
		base = base.Shift(t.Off)
	}
	if t.Stride != 0 {
		base = base.WithStride(t.Stride)
	}
	return base
}

// ContentsAt returns the pointer values stored at location v as seen
// flowing INTO node nd (read-only mirror of the analysis' EvalDeref,
// paper Figure 10): all overlapping pointer locations contribute, bounded
// by the nearest dominating strong update when v is precise. Initial
// values resolve through the entry records seeded during the analysis;
// locations never demanded stay empty.
func (a *Analysis) ContentsAt(p *PTF, v memmod.LocSet, nd *cfg.Node) memmod.ValueSet {
	return a.contentsAt(p, v, nd, false)
}

// ContentsAfter is ContentsAt for the state flowing OUT of nd (a record
// at the node itself is visible).
func (a *Analysis) ContentsAfter(p *PTF, v memmod.LocSet, nd *cfg.Node) memmod.ValueSet {
	return a.contentsAt(p, v, nd, true)
}

func (a *Analysis) contentsAt(p *PTF, v memmod.LocSet, nd *cfg.Node, includeAt bool) memmod.ValueSet {
	v = v.Resolve()
	if v.Base.Kind == memmod.NullBlock {
		return memmod.ValueSet{}
	}
	var barrier *cfg.Node
	if v.Precise() {
		barrier = p.Pts.FindStrongUpdate(v, nd)
	}
	var result memmod.ValueSet
	seen := map[memmod.LocSet]bool{}
	consider := func(l memmod.LocSet) {
		l = l.Resolve()
		if seen[l] || !l.Overlaps(v) {
			return
		}
		seen[l] = true
		var vals memmod.ValueSet
		var found bool
		if includeAt {
			vals, found = p.Pts.LookupOut(l, nd, barrier)
		} else {
			vals, found = p.Pts.LookupIn(l, nd, barrier)
		}
		if found {
			result.AddAll(vals)
		}
	}
	consider(v)
	for _, l := range v.Base.PtrLocs() {
		consider(l)
	}
	return result
}
