package analysis

import (
	"time"

	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// evalProc evaluates a procedure instance until its points-to function
// stops changing (paper Figure 8). Nodes are visited in reverse
// postorder and never before one of their predecessors (§4.1). The
// worklist engine seeds the iteration from the PTF's dirty nodes; the
// full engine re-evaluates every node per sweep.
func (a *Analysis) evalProc(f *frame) {
	if a.track {
		a.evalProcDirty(f)
	} else {
		a.evalProcFull(f)
	}
}

// evalProcFull is the pre-worklist engine: sweep every node repeatedly
// until no fact changes (kept as the ForceFullPasses cross-check).
func (a *Analysis) evalProcFull(f *frame) {
	// During the solution-collection descent of an incremental run the
	// fixpoint is already converged, so assignments and meets are no-ops
	// (their records are stable and tracking is off); only call nodes do
	// work — they re-derive parameter and formal bindings and descend
	// into callees not yet collected. One reverse-postorder sweep marks
	// every node evaluated (a node's tree predecessor precedes it), so a
	// single calls-only sweep reaches every call site. Cold runs keep the
	// full sweep: the collection pass doubles as a cross-check that the
	// claimed fixpoint really is one.
	callsOnly := a.incremental && a.collecting != nil
	f.evaluated = make([]bool, len(f.ptf.Proc.Nodes))
	for iter := 0; ; iter++ {
		if a.timedOut.Load() || (!a.deadline.IsZero() && time.Now().After(a.deadline)) {
			a.timedOut.Store(true)
			return
		}
		// progress drives the local do-while loop (it includes nodes
		// becoming evaluable); the changed flag only tracks genuine
		// growth of points-to facts, which governs the top-level
		// fixpoint.
		progress := false
		for _, nd := range f.ptf.Proc.Nodes {
			if nd.Kind != cfg.EntryNode && !f.anyPredEvaluated(nd) {
				continue
			}
			if !f.evaluated[nd.ID] {
				f.evaluated[nd.ID] = true
				progress = true
			}
			if callsOnly && nd.Kind != cfg.CallNode {
				continue
			}
			a.countNode(f.c)
			factChanged := false
			switch nd.Kind {
			case cfg.MeetNode, cfg.ExitNode:
				factChanged = a.evalMeet(f, nd)
			case cfg.AssignNode:
				factChanged = a.evalAssign(f, nd)
			case cfg.CallNode:
				factChanged = a.evalCall(f, nd)
			}
			if factChanged {
				progress = true
				f.c.changed = true
				// The summary grew: dependents must revisit.
				a.bumpVersion(f.c, f.ptf)
			}
		}
		if f.evaluated[f.ptf.Proc.Exit.ID] && !f.ptf.exitReached {
			f.ptf.exitReached = true
			progress = true
			f.c.changed = true
			a.bumpVersion(f.c, f.ptf)
		}
		if callsOnly {
			// One sweep marked every node and applied every call site; a
			// second sweep would only re-apply already-memoized summaries.
			return
		}
		if !progress {
			return
		}
		if iter > 1000 {
			// Safety valve; analysis of a single procedure should
			// converge in a handful of iterations.
			return
		}
	}
}

// evalProcDirty is the worklist engine: only nodes marked dirty — the
// entry on creation, successors of first-time evaluations (frontier
// expansion), φ insertions, and nodes whose registered reads or callee
// summaries changed — are re-evaluated, in reverse postorder. The
// evaluated set persists on the PTF across visits, so a revisit touches
// only the dirty seed and whatever its changes reach.
func (a *Analysis) evalProcDirty(f *frame) {
	p := f.ptf
	f.evaluated = p.evaluated
	// Only the outermost main frame may run the parallel pre-drain: at
	// that point the activation stack is just [main], so no work item's
	// cone can overlap a procedure currently being evaluated.
	mainWalk := a.par && p == a.mainPTF && f.c == a.mainCtx && f.caller == nil
	for iter := 0; ; iter++ {
		if p.dirtyN == 0 {
			if !mainWalk || !a.pendingDrain {
				break
			}
			// Call sites deferred dirty callees for batching; drain them
			// now. Their version bumps re-dirty this frame's call nodes,
			// in which case the sweep resumes.
			a.preDrain()
			if p.dirtyN == 0 {
				break
			}
		}
		if a.timedOut.Load() || (!a.deadline.IsZero() && time.Now().After(a.deadline)) {
			a.timedOut.Store(true)
			return
		}
		if mainWalk && iter > 0 {
			// Cascades from earlier sweeps re-dirtied already-summarized
			// sibling PTFs; drain the mutually independent ones on the
			// worker pool before the sequential sweep resumes.
			a.preDrain()
		}
		progress := false
		for _, nd := range p.Proc.Nodes {
			if !p.dirty[nd.ID] {
				continue
			}
			if nd.Kind != cfg.EntryNode && !f.anyPredEvaluated(nd) {
				// Not evaluable yet; stays dirty for a later sweep.
				continue
			}
			if mainWalk && a.pendingDrain && !f.evaluated[nd.ID] {
				// A first evaluation can make fresh PTF-match decisions,
				// and those must see exactly the state the sequential walk
				// sees. The deferred drains belong to call sites that
				// precede this node in sweep order, so flush them now.
				a.preDrain()
			}
			p.dirty[nd.ID] = false
			p.dirtyN--
			first := !f.evaluated[nd.ID]
			if first {
				f.evaluated[nd.ID] = true
			}
			progress = true
			a.countNode(f.c)
			factChanged := false
			switch nd.Kind {
			case cfg.MeetNode, cfg.ExitNode:
				factChanged = a.evalMeet(f, nd)
			case cfg.AssignNode:
				factChanged = a.evalAssign(f, nd)
			case cfg.CallNode:
				factChanged = a.evalCall(f, nd)
			}
			if first {
				for _, s := range nd.Succs {
					a.markDirty(f.c, p, s)
				}
			}
			if factChanged {
				f.c.changed = true
				a.bumpVersion(f.c, p)
			}
			if c := f.c; c != nil && c.restricted() && c.deferred {
				// A guard detected work this context must not do; put
				// the node back and abort the item. The sequential walk
				// re-evaluates it with full authority.
				p.dirty[nd.ID] = true
				p.dirtyN++
				return
			}
		}
		if f.evaluated[p.Proc.Exit.ID] && !p.exitReached {
			p.exitReached = true
			progress = true
			f.c.changed = true
			a.bumpVersion(f.c, p)
		}
		if !progress || iter > 1000 {
			break
		}
	}
	// Drop unevaluable residue (dirty nodes none of whose predecessors
	// were ever evaluated — unreachable under the current facts): they
	// cannot fire, and leaving them would make the PTF look permanently
	// busy to the quiescence check and the caller cascade.
	for i, d := range p.dirty {
		if !d {
			continue
		}
		if nd := p.Proc.Nodes[i]; nd.Kind != cfg.EntryNode && !f.anyPredEvaluated(nd) {
			p.dirty[i] = false
			p.dirtyN--
		}
	}
}

// newSet returns an empty transient value set backed by the evaluation
// context's arena (falling back to the main context's).
func (a *Analysis) newSet(c *evalCtx) memmod.ValueSet {
	if c == nil {
		c = a.mainCtx
	}
	return c.arena.NewSet()
}

// cloneSet copies v into arena-backed storage owned by the evaluation
// context (falling back to the main context's).
func (a *Analysis) cloneSet(c *evalCtx, v memmod.ValueSet) memmod.ValueSet {
	if c == nil {
		c = a.mainCtx
	}
	return c.arena.CloneSet(v)
}

// value1 builds a single-member set in the context's arena.
func (a *Analysis) value1(c *evalCtx, l memmod.LocSet) memmod.ValueSet {
	if c == nil {
		c = a.mainCtx
	}
	return c.arena.Value1(l)
}

// addAll unions o into v, growing v's backing from the context's arena.
func (a *Analysis) addAll(c *evalCtx, v *memmod.ValueSet, o memmod.ValueSet) bool {
	if c == nil {
		c = a.mainCtx
	}
	return c.arena.AddAll(v, o)
}

// shiftSet and strideSet displace/widen a set into arena storage.
func (a *Analysis) shiftSet(c *evalCtx, v memmod.ValueSet, d int64) memmod.ValueSet {
	if c == nil {
		c = a.mainCtx
	}
	return c.arena.ShiftSet(v, d)
}

func (a *Analysis) strideSet(c *evalCtx, v memmod.ValueSet, s int64) memmod.ValueSet {
	if c == nil {
		c = a.mainCtx
	}
	return c.arena.StrideSet(v, s)
}

func (f *frame) anyPredEvaluated(nd *cfg.Node) bool {
	for _, p := range nd.Preds {
		if f.evaluated[p.ID] {
			return true
		}
	}
	return false
}

// evalMeet evaluates the φ-functions of a meet node (paper Figure 9).
func (a *Analysis) evalMeet(f *frame, nd *cfg.Node) bool {
	changed := false
	for _, loc := range f.ptf.Pts.PhiLocs(nd) {
		a.registerRead(f, loc.Base, nd)
		srcs := a.newSet(f.c)
		for _, pred := range nd.Preds {
			if !f.evaluated[pred.ID] {
				continue
			}
			vals, found := f.ptf.Pts.LookupOut(loc, pred, nil)
			if !found {
				vals = a.getInitial(f, loc)
			}
			a.addAll(f.c, &srcs, vals)
		}
		if f.ptf.Pts.AssignPhi(loc, srcs, nd) {
			changed = true
			a.recordSolution(f, loc, srcs)
		}
	}
	return changed
}

// evalContents returns the pointer values stored at location v as seen
// flowing into node nd (paper Figure 10, EvalDeref): all overlapping
// locations containing pointers contribute, bounded by the most recent
// strong update when v is a unique location.
func (a *Analysis) evalContents(f *frame, v memmod.LocSet, nd *cfg.Node) memmod.ValueSet {
	v = v.Resolve()
	if v.Base.Kind == memmod.NullBlock {
		// The null pseudo-location has no contents; dereferencing it is
		// an error the checkers report, not a source of values.
		return memmod.ValueSet{}
	}
	// Every location considered below shares v's base block, so one
	// registration covers the whole dereference.
	a.registerRead(f, v.Base, nd)
	var barrier *cfg.Node
	if v.Precise() {
		barrier = f.ptf.Pts.FindStrongUpdate(v, nd)
	}
	c := f.c
	if c == nil {
		c = a.mainCtx
	}
	result := c.arena.NewSet()
	// seen is a linear-scan scratch carved per call (getInitial can
	// re-enter evalContents on the caller frame, so it must not be a
	// shared buffer).
	seen := c.arena.Carve(4)
	consider := func(l memmod.LocSet) {
		l = l.Resolve()
		for _, s := range seen {
			if s == l {
				return
			}
		}
		if !l.Overlaps(v) {
			return
		}
		seen = append(seen, l)
		vals, found := f.ptf.Pts.LookupIn(l, nd, barrier)
		if !found {
			vals = a.getInitial(f, l)
		}
		c.arena.AddAll(&result, vals)
	}
	consider(v)
	for _, l := range v.Base.PtrLocs() {
		consider(l)
	}
	return result
}

// evalExpr evaluates an IR expression to the set of locations it denotes
// (for destination expressions) or the pointer values it produces (for
// source expressions) — in points-to form the two coincide.
func (a *Analysis) evalExpr(f *frame, e *cfg.Expr, nd *cfg.Node) memmod.ValueSet {
	var out memmod.ValueSet
	if e == nil {
		return out
	}
	out = a.newSet(f.c)
	for _, t := range e.Terms {
		base := a.newSet(f.c)
		switch t.Kind {
		case cfg.TermVar:
			if l := a.varBlockLoc(f, t.Sym, 0, 0); l.Base != nil {
				base.Add(l)
			}
		case cfg.TermFunc:
			base.Add(memmod.Loc(a.funcBlock(t.Sym), 0, 0))
		case cfg.TermStr:
			base.Add(memmod.Loc(a.strBlock(t.StrID, t.StrVal), 0, 0))
		case cfg.TermDeref:
			ptrs := a.evalExpr(f, t.Base, nd)
			for _, pl := range ptrs.Locs() {
				a.addAll(f.c, &base, a.evalContents(f, pl, nd))
			}
		case cfg.TermNull:
			if a.nullBlock != nil {
				base.Add(memmod.Loc(a.nullBlock, 0, 0))
			}
		}
		if t.Off != 0 {
			base = a.shiftSet(f.c, base, t.Off)
		}
		if t.Stride != 0 {
			base = a.strideSet(f.c, base, t.Stride)
		}
		a.addAll(f.c, &out, base)
	}
	return out
}

// evalAssign evaluates a pointer-form assignment (paper Figure 11).
func (a *Analysis) evalAssign(f *frame, nd *cfg.Node) bool {
	dsts := a.evalExpr(f, nd.Dst, nd)
	if dsts.IsEmpty() {
		// Destination locations unknown yet: defer (paper §4.1).
		return false
	}
	if nd.Aggregate {
		return a.evalAggregateCopy(f, nd, dsts)
	}
	srcs := a.evalExpr(f, nd.Src, nd)
	changed := false
	strongOK := dsts.Len() == 1 && dsts.Locs()[0].Precise() && !f.multiTarget
	for _, dst := range dsts.Locs() {
		// The outcome depends on the destination's records (weak-update
		// merge) and uniqueness (strong-update eligibility).
		a.registerRead(f, dst.Base, nd)
		newSrcs := a.cloneSet(f.c, srcs)
		strong := strongOK
		if !strong {
			// Weak update: the destination retains its old values.
			old, found := f.ptf.Pts.LookupIn(dst, nd, nil)
			if !found {
				old = a.getInitial(f, dst)
			}
			a.addAll(f.c, &newSrcs, old)
		}
		if !newSrcs.IsEmpty() {
			if dst.Base.AddPtrLoc(dst) {
				a.notifyWrite(f.c, dst.Base)
			}
		}
		if f.ptf.Pts.Assign(dst, newSrcs, nd, strong) {
			changed = true
			a.recordSolution(f, dst, newSrcs)
		}
	}
	return changed
}

// evalAggregateCopy copies the pointer contents of the source objects to
// the destination objects (paper §4.4: aggregate assignments copy all
// pointer fields at their offsets).
func (a *Analysis) evalAggregateCopy(f *frame, nd *cfg.Node, dsts memmod.ValueSet) bool {
	srcLocs := a.evalExpr(f, nd.Src, nd)
	changed := false
	for _, src := range srcLocs.Locs() {
		src = src.Resolve()
		a.registerRead(f, src.Base, nd)
		for _, pl := range src.Base.PtrLocs() {
			// Field offset of the pointer within the source object.
			rel := pl.Off - src.Off
			if nd.Size > 0 && (rel < 0 || rel >= nd.Size) && pl.Stride == 0 && src.Stride == 0 {
				continue
			}
			vals, found := f.ptf.Pts.LookupIn(pl, nd, nil)
			if !found {
				vals = a.getInitial(f, pl)
			}
			if vals.IsEmpty() {
				continue
			}
			for _, dst := range dsts.Locs() {
				target := dst.Shift(rel)
				if src.Stride != 0 || pl.Stride != 0 {
					target = dst.Unknown()
				}
				a.registerRead(f, target.Base, nd)
				// Aggregate copies are always weak updates.
				old, f2 := f.ptf.Pts.LookupIn(target, nd, nil)
				if !f2 {
					old = a.getInitial(f, target)
				}
				merged := a.cloneSet(f.c, vals)
				a.addAll(f.c, &merged, old)
				if target.Base.AddPtrLoc(target) {
					a.notifyWrite(f.c, target.Base)
				}
				if f.ptf.Pts.Assign(target, merged, nd, false) {
					changed = true
					a.recordSolution(f, target, merged)
				}
			}
		}
	}
	return changed
}
