package analysis

import (
	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/ctype"
	"wlpa/internal/memmod"
)

// localBlock returns (creating if needed) the block of a local symbol
// within a PTF's name space.
func (p *PTF) localBlock(sym *cast.Symbol) *memmod.Block {
	if b, ok := p.locals.get(sym); ok {
		return b
	}
	b := memmod.NewLocal(sym)
	p.locals.put(sym, b)
	return b
}

// globalBlock returns the real storage block of a global symbol. The
// interning maps are shared across contexts, hence the mutex.
func (a *Analysis) globalBlock(sym *cast.Symbol) *memmod.Block {
	a.internMu.Lock()
	defer a.internMu.Unlock()
	if b, ok := a.globalBlocks[sym]; ok {
		return b
	}
	b := memmod.NewGlobal(sym)
	a.globalBlocks[sym] = b
	return b
}

// funcBlock returns the block representing a function value.
func (a *Analysis) funcBlock(sym *cast.Symbol) *memmod.Block {
	a.internMu.Lock()
	defer a.internMu.Unlock()
	if b, ok := a.funcBlocks[sym]; ok {
		return b
	}
	b := memmod.NewFunc(sym)
	a.funcBlocks[sym] = b
	return b
}

// strBlock returns the block of a string literal.
func (a *Analysis) strBlock(id int, val string) *memmod.Block {
	a.internMu.Lock()
	defer a.internMu.Unlock()
	if b, ok := a.strBlocks[id]; ok {
		return b
	}
	b := memmod.NewString(id, val)
	a.strBlocks[id] = b
	return b
}

// heapBlock returns the heap block of a static allocation site.
func (a *Analysis) heapBlock(site *cfg.Node) *memmod.Block {
	a.internMu.Lock()
	defer a.internMu.Unlock()
	key := site.Pos.String()
	if b, ok := a.heapBlocks[key]; ok {
		return b
	}
	b := memmod.NewHeap(site.Pos)
	a.heapBlocks[key] = b
	return b
}

// newParam allocates a fresh extended parameter in f's PTF bound to the
// given actuals. The parameter's name indexes within its PTF, so names
// are deterministic regardless of which context allocates first.
// setGlobalParam records a global's parameter on the PTF, creating the
// map on first use.
func (a *Analysis) setGlobalParam(p *PTF, sym *cast.Symbol, b *memmod.Block) {
	p.globalParams.put(sym, b)
}

func (a *Analysis) newParam(f *frame, hint string, actuals memmod.ValueSet) *memmod.Block {
	if c := f.c; c != nil && c.restricted() {
		c.params++
	} else {
		a.stats.Params++
	}
	p := memmod.NewParam(len(f.ptf.params)+1, hint)
	if f.ptf.params == nil {
		f.ptf.params = make([]*memmod.Block, 0, 8)
	}
	f.ptf.params = append(f.ptf.params, p)
	f.pmap[p] = a.cloneSet(f.c, actuals)
	a.bindParamConcrete(f, p, actuals)
	return p
}

// varBlockLoc resolves a TermVar to a location set in the frame's name
// space: locals map to local blocks; globals map to the frame's global
// parameter (or the real block at the outermost frame).
func (a *Analysis) varBlockLoc(f *frame, sym *cast.Symbol, off, stride int64) memmod.LocSet {
	if sym == f.ptf.Proc.Retval || sym.Name == "<retval>" {
		return memmod.Loc(f.ptf.retval, off, stride)
	}
	if sym.Global {
		if f.caller == nil {
			return memmod.Loc(a.globalBlock(sym), off, stride)
		}
		if p := a.globalParam(f, sym); p != nil {
			return memmod.Loc(p, off, stride)
		}
		// Deferred: a restricted context may not materialize the
		// parameter. Callers treat a nil-base LocSet as "unknown yet".
		return memmod.LocSet{}
	}
	return memmod.Loc(f.ptf.localBlock(sym), off, stride)
}

// globalParam returns (creating and recording if needed) the extended
// parameter representing global sym inside f's PTF, binding its actuals
// to the caller's representation of the global.
func (a *Analysis) globalParam(f *frame, sym *cast.Symbol) *memmod.Block {
	c := f.c
	if p, ok := f.ptf.globalParams.get(sym); ok {
		p = p.Representative()
		if _, bound := f.pmap[p]; !bound {
			if c != nil && c.restricted() && !c.owns(f.ptf.Proc) {
				// Rebinding writes f.pmap; a worker must not mutate a
				// chain frame it does not own.
				c.deferred = true
				return nil
			}
			al := a.callerGlobalLoc(f, sym)
			if al.Base == nil {
				// Deferred deeper in the caller chain.
				if c != nil {
					c.deferred = true
				}
				return nil
			}
			actual := memmod.Values(al)
			f.pmap[p] = actual
			a.bindParamConcrete(f, p, actual)
		}
		return p
	}
	if c != nil && c.restricted() && !c.owns(f.ptf.Proc) {
		// Materializing the parameter records an initial entry on a
		// chain PTF the worker does not own.
		c.deferred = true
		return nil
	}
	actual := a.callerGlobalLoc(f, sym)
	if actual.Base == nil {
		if c != nil {
			c.deferred = true
		}
		return nil
	}
	// The global may already be covered by a pointer-reached parameter.
	if p, delta, exact := a.findCoveringParam(f, a.value1(c, actual)); p != nil && exact && delta == 0 {
		a.setGlobalParam(f.ptf, sym, p)
		a.appendInitial(c, f.ptf, initEntry{kind: globalRefEntry, sym: sym, param: p})
		a.bumpVersion(c, f.ptf)
		return p
	}
	p := a.newParam(f, sym.Name, a.value1(c, actual))
	a.setGlobalParam(f.ptf, sym, p)
	a.appendInitial(c, f.ptf, initEntry{kind: globalRefEntry, sym: sym, param: p})
	a.bumpVersion(c, f.ptf)
	if c != nil {
		c.changed = true
	} else {
		a.mainCtx.changed = true
	}
	return p
}

// callerGlobalLoc returns the caller-name-space location of global sym
// for calls made by frame f: the real global block when the caller is the
// outermost frame (whose own references also use the real block), else
// the caller's extended parameter for the global.
func (a *Analysis) callerGlobalLoc(f *frame, sym *cast.Symbol) memmod.LocSet {
	if f.caller == nil {
		return memmod.Loc(a.globalBlock(sym), 0, 0)
	}
	return a.globalLocIn(f.caller, sym)
}

// findCoveringParam looks for an existing parameter whose actuals cover
// the given values. It returns the parameter, the offset delta such that
// values correspond to (param, delta), and whether the correspondence is
// exact (consistent delta across all pairs).
func (a *Analysis) findCoveringParam(f *frame, values memmod.ValueSet) (*memmod.Block, int64, bool) {
	for _, p := range f.ptf.params {
		if p.Forwarded() != nil {
			continue
		}
		bound, ok := f.pmap[p]
		if !ok {
			continue
		}
		delta, exact, covered := coverage(bound, values)
		if covered {
			return p, delta, exact
		}
	}
	return nil, 0, false
}

// coverage decides whether values are covered by the anchor set bound:
// every value's base block appears in bound. delta is the consistent
// offset (value = anchor + delta) when exact.
func coverage(bound, values memmod.ValueSet) (delta int64, exact, covered bool) {
	exact = true
	first := true
	for _, v := range values.Locs() {
		v = v.Resolve()
		found := false
		for _, b := range bound.Locs() {
			b = b.Resolve()
			if b.Base.Representative() != v.Base.Representative() {
				continue
			}
			found = true
			if b.Stride != 0 || v.Stride != 0 {
				exact = false
				break
			}
			d := v.Off - b.Off
			if first {
				delta, first = d, false
			} else if d != delta {
				exact = false
			}
			break
		}
		if !found {
			return 0, false, false
		}
	}
	if first {
		// No scalar pair found a delta.
		exact = false
	}
	return delta, exact, true
}

// blocksOverlap reports whether any base block of values appears in bound.
func blocksOverlap(bound, values memmod.ValueSet) bool {
	for _, v := range values.Locs() {
		for _, b := range bound.Locs() {
			if b.Resolve().Base.Representative() == v.Resolve().Base.Representative() {
				return true
			}
		}
	}
	return false
}

// getInitial resolves the initial (procedure-entry) value of the pointer
// location v in frame f, creating extended parameters as needed (paper
// §2.3, §3.2). The result is recorded in the PTF's initial points-to
// function and seeded as an entry record so later lookups hit it.
func (a *Analysis) getInitial(f *frame, v memmod.LocSet) memmod.ValueSet {
	v = v.Resolve()
	// Already recorded?
	if r := f.ptf.Pts.RecordAt(v, f.ptf.Proc.Entry); r != nil {
		return r.Vals.Resolved()
	}
	var actuals memmod.ValueSet
	switch v.Base.Kind {
	case memmod.LocalBlock:
		// Formal parameters start with the actual argument values;
		// other locals start uninitialized.
		idx := formalIndex(f.ptf.Proc, v.Base.Sym)
		if idx < 0 || f.callNode == nil {
			if idx >= 0 && f.caller == nil && f.ptf.Proc.Name == "main" {
				// main's argv: unknown outside world; model as
				// pointing nowhere (no file pointers, per the
				// paper's input restrictions).
				return memmod.ValueSet{}
			}
			return memmod.ValueSet{}
		}
		if idx < len(f.args) {
			actuals = f.args[idx]
		}
	case memmod.ParamBlock:
		bound, ok := f.pmap[v.Base]
		if !ok {
			return memmod.ValueSet{}
		}
		// The initial contents of the parameter at position v come
		// from dereferencing the actuals at the call site.
		caller := f.caller
		if caller == nil {
			return memmod.ValueSet{}
		}
		for _, b := range bound.Locs() {
			target := b.Shift(v.Off)
			if v.Stride != 0 {
				target = target.WithStride(v.Stride)
			}
			a.addAll(f.c, &actuals, a.evalContents(caller, target, f.callNode))
		}
	case memmod.GlobalBlock:
		// Real global storage (outermost frame): initial values come
		// from static initializers, seeded before analysis; a miss
		// means "no pointer value".
		return memmod.ValueSet{}
	case memmod.StringBlock, memmod.HeapBlock, memmod.RetvalBlock, memmod.FuncBlock, memmod.NullBlock:
		return memmod.ValueSet{}
	}
	if c := f.c; c != nil && c.restricted() && c.deferred {
		// The actuals may be under-approximated by a deferred chain
		// read; recording an initial entry from them would be wrong.
		// The item aborts and the node stays dirty for the sequential
		// walk.
		return memmod.ValueSet{}
	}
	if v.Base.Kind == memmod.LocalBlock {
		// Formal parameter: its initial contents are exactly the
		// actual argument values, translated into the callee's name
		// space via extended parameters.
		return a.bindInitial(f, v, actuals)
	}
	return a.bindInitial(f, v, actuals)
}

// bindInitial maps caller-name-space values to a single extended
// parameter in f's PTF, recording the initial points-to entry and
// seeding the entry record.
func (a *Analysis) bindInitial(f *frame, v memmod.LocSet, actuals memmod.ValueSet) memmod.ValueSet {
	if c := f.c; c != nil && c.restricted() && !c.owns(f.ptf.Proc) {
		// Recording an initial entry mutates a chain PTF the worker
		// does not own.
		c.deferred = true
		return memmod.ValueSet{}
	}
	v = v.Resolve()
	v.Base.AddPtrLoc(v)
	var val memmod.LocSet
	empty := actuals.IsEmpty()
	if empty {
		e := initEntry{kind: ptrInitEntry, ptr: v, valEmpty: true}
		a.appendInitial(f.c, f.ptf, e)
		a.bumpVersion(f.c, f.ptf)
		f.ptf.Pts.Assign(v, memmod.ValueSet{}, f.ptf.Proc.Entry, false)
		return memmod.ValueSet{}
	}
	p, delta, exact := a.findCoveringParam(f, actuals)
	switch {
	case p != nil && exact:
		val = memmod.Loc(p, delta, 0)
	case p != nil && !exact:
		val = memmod.Loc(p, 0, 1)
	default:
		// Aliased with one or more existing parameters but with new
		// values too? Subsume them all into a fresh parameter
		// (paper Figure 6).
		var overlapped []*memmod.Block
		for _, q := range f.ptf.params {
			if q.Forwarded() != nil {
				continue
			}
			if bound, ok := f.pmap[q]; ok && blocksOverlap(bound, actuals) {
				overlapped = append(overlapped, q)
			}
		}
		hint := hintFor(v)
		if len(overlapped) == 0 {
			np := a.newParam(f, hint, actuals)
			val = memmod.Loc(np, 0, 0)
			p = np
		} else {
			merged := actuals.Clone()
			for _, q := range overlapped {
				merged.AddAll(f.pmap[q])
			}
			np := a.newParam(f, hint, merged)
			for _, q := range overlapped {
				d, ex := subsumeDelta(f.pmap[q], merged)
				q.Subsume(np, d, !ex)
				a.subsumeEverywhere(f.c, q, np)
				a.migrateReaders(f.c, q, np)
			}
			f.ptf.Pts.Rehome()
			// Everything read through the merged parameter may resolve
			// differently now.
			a.notifyWrite(f.c, np)
			val = memmod.Loc(np, 0, 1)
			// The exact placement of these values within the merged
			// parameter is unknown unless a consistent delta exists.
			if d, ex, cov := coverage(merged, actuals); cov && ex {
				val = memmod.Loc(np, d, 0)
			}
			p = np
		}
	}
	// Uniqueness bookkeeping (paper §4.1): a parameter pointed to by
	// more than one input pointer whose actuals are not a single
	// unique location loses uniqueness.
	rep := val.Base.Representative()
	if f.ptf.pointedBy == nil {
		f.ptf.pointedBy = make(map[*memmod.Block]int, 8)
	}
	f.ptf.pointedBy[rep]++
	if f.ptf.pointedBy[rep] > 1 {
		bound := f.pmap[rep]
		if !(bound.Len() == 1 && bound.Locs()[0].Precise()) {
			a.setNotUnique(f.c, rep)
		}
	}
	if actuals.Len() > 1 {
		// Multiple possible objects at once is fine (one at a time),
		// but if any actual is itself imprecise the parameter cannot
		// be strongly updated... it still can: at any moment it is
		// one object. Keep unique per the paper.
		_ = rep
	}
	e := initEntry{kind: ptrInitEntry, ptr: v, val: val}
	a.appendInitial(f.c, f.ptf, e)
	a.bumpVersion(f.c, f.ptf)
	f.c.changed = true
	vals := memmod.Values(val)
	f.ptf.Pts.Assign(v, vals, f.ptf.Proc.Entry, false)
	a.recordSolution(f, v, vals)
	return vals
}

// subsumeDelta computes the forwarding delta for a subsumed parameter:
// the offset of its anchor within the merged anchor set.
func subsumeDelta(oldBound, merged memmod.ValueSet) (int64, bool) {
	d, exact, covered := coverage(merged, oldBound)
	if !covered || !exact {
		return 0, false
	}
	// oldBound = merged + d means old anchor sits at +d... we need the
	// delta such that (old, off) -> (new, off+delta); old anchor
	// corresponds to new anchor + d.
	return d, true
}

// subsumeEverywhere merges per-PTF bookkeeping after q was subsumed by
// np. The pmap bindings and fp domains resolve lazily through
// Representative(), so only the pointed-by counts need merging. Only
// the subsuming context's own call stack can hold affected frames.
func (a *Analysis) subsumeEverywhere(c *evalCtx, q, np *memmod.Block) {
	stack := a.mainCtx.stack
	if c != nil {
		stack = c.stack
	}
	for _, fr := range stack {
		if fr.ptf == nil {
			continue
		}
		if n := fr.ptf.pointedBy[q]; n > 0 {
			fr.ptf.pointedBy[np] += n
			delete(fr.ptf.pointedBy, q)
		}
	}
}

// migrateReaders moves the read registrations of a subsumed block to its
// subsumer (registrations key on the representative at registration
// time) and re-dirties them: their reads resolve differently now. A
// restricted context may not mutate the shared map; it buffers the
// migration for the epoch commit, moves its own buffered registrations
// immediately, and re-dirties shared-map readers through its dirty
// buffer (markDirty routes non-owned marks there).
func (a *Analysis) migrateReaders(c *evalCtx, q, np *memmod.Block) {
	if !a.track {
		return
	}
	np = np.Representative()
	if c != nil && c.restricted() {
		c.migrateBuf = append(c.migrateBuf, blockPair{q: q, np: np})
		if old := c.readerBuf[q]; old != nil {
			delete(c.readerBuf, q)
			set := c.readerBuf[np]
			if set == nil {
				set = make(map[readerKey]bool, len(old))
				c.readerBuf[np] = set
			}
			for k := range old {
				set[k] = true
				a.markDirty(c, k.ptf, k.nd)
			}
		}
		qs := a.readers[q]
		for _, k := range qs.list {
			a.markDirty(c, k.ptf, k.nd)
		}
		for k := range qs.m {
			a.markDirty(c, k.ptf, k.nd)
		}
		return
	}
	old, ok := a.readers[q]
	if !ok {
		return
	}
	delete(a.readers, q)
	for _, k := range old.list {
		a.addReader(np, k)
		a.markDirty(c, k.ptf, k.nd)
	}
	for k := range old.m {
		a.addReader(np, k)
		a.markDirty(c, k.ptf, k.nd)
	}
}

// hintFor produces the paper-style name hint for a new parameter from
// the pointer that first reached it.
func hintFor(v memmod.LocSet) string {
	name := v.Base.Name
	if v.Off != 0 || v.Stride != 0 {
		return name + "+"
	}
	return name
}

// formalIndex returns the position of sym among proc's formals, or -1.
func formalIndex(proc *cfg.Proc, sym *cast.Symbol) int {
	if sym == nil {
		return -1
	}
	for i, p := range proc.Fn.Params {
		if p.Sym == sym {
			return i
		}
	}
	return -1
}

// seedGlobals installs the static initializers of globals as entry
// records of main's points-to function.
func (a *Analysis) seedGlobals(mf *frame) {
	entry := mf.ptf.Proc.Entry
	for _, vd := range a.prog.GlobalInits {
		if vd.Sym == nil || vd.Init == nil {
			continue
		}
		base := memmod.Loc(a.globalBlock(vd.Sym), 0, 0)
		a.seedInit(mf, entry, base, vd.Sym.Type, vd.Init)
	}
}

// seedInit seeds one global initializer value at loc.
func (a *Analysis) seedInit(mf *frame, entry *cfg.Node, loc memmod.LocSet, t *ctype.Type, init cast.Expr) {
	switch init := init.(type) {
	case *cast.InitList:
		switch t.Kind {
		case ctype.Array:
			esz := t.Elem.Sizeof()
			for _, el := range init.Elems {
				a.seedInit(mf, entry, loc.WithStride(esz), t.Elem, el)
			}
		case ctype.Struct:
			for i, el := range init.Elems {
				if i >= len(t.Fields) {
					break
				}
				f := t.Fields[i]
				a.seedInit(mf, entry, loc.Shift(f.Offset), f.Type, el)
			}
		default:
			if len(init.Elems) > 0 {
				a.seedInit(mf, entry, loc, t, init.Elems[0])
			}
		}
	default:
		vals := a.constInitValues(init)
		if vals.IsEmpty() {
			return
		}
		loc.Base.AddPtrLoc(loc)
		mf.ptf.Pts.Assign(loc, vals, entry, false)
		if a.solution != nil {
			a.solution.add(loc, vals)
		}
	}
}

// constInitValues evaluates a constant initializer expression to pointer
// values: &global, function names, and string literals.
func (a *Analysis) constInitValues(e cast.Expr) memmod.ValueSet {
	switch e := e.(type) {
	case *cast.Unary:
		if e.Op == cast.Addr {
			return a.constAddr(e.X, 0)
		}
	case *cast.Ident:
		if e.Sym != nil && e.Sym.Kind == cast.SymFunc {
			return memmod.Values(memmod.Loc(a.funcBlock(e.Sym), 0, 0))
		}
		if e.Sym != nil && e.Sym.Type != nil && e.Sym.Type.Kind == ctype.Array {
			return memmod.Values(memmod.Loc(a.globalBlock(e.Sym), 0, 0))
		}
	case *cast.StrLit:
		return memmod.Values(memmod.Loc(a.strBlock(e.ID, e.Value), 0, 0))
	case *cast.Cast:
		return a.constInitValues(e.X)
	}
	return memmod.ValueSet{}
}

// constAddr resolves &expr in a constant initializer.
func (a *Analysis) constAddr(e cast.Expr, off int64) memmod.ValueSet {
	switch e := e.(type) {
	case *cast.Ident:
		if e.Sym == nil {
			return memmod.ValueSet{}
		}
		if e.Sym.Kind == cast.SymFunc {
			return memmod.Values(memmod.Loc(a.funcBlock(e.Sym), 0, 0))
		}
		if e.Sym.Global {
			return memmod.Values(memmod.Loc(a.globalBlock(e.Sym), off, 0))
		}
	case *cast.Member:
		if e.Field != nil && !e.Arrow {
			return a.constAddr(e.X, off+e.Field.Offset)
		}
	case *cast.Index:
		// &arr[i]: position within the array is ignored (stride).
		inner := a.constAddr(e.X, off)
		return inner.WithStride(1)
	}
	return memmod.ValueSet{}
}
