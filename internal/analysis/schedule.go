package analysis

// The parallel pre-drain scheduler. Before each sequential top-level
// pass, dirty PTFs whose call-graph cones are mutually independent are
// drained concurrently by a worker pool, then whatever remains is
// handled by the ordinary walk from main. Correctness rests on three
// mechanisms:
//
//   - Isolation by construction: a work item owns the full static call
//     cone of its procedure (computed from the SCC condensation of the
//     direct call graph) plus the shared global/function/string blocks
//     its cone can name; the epoch packs only items whose cones,
//     binding chains and resource sets are pairwise disjoint, so no two
//     workers write the same PTF or block.
//
//   - Detect-and-defer: anything the static cone missed (indirect
//     calls escaping the cone, new global parameters on chain frames,
//     entry bindings requiring caller writes) trips a guard that marks
//     the context deferred and aborts the item after the current node,
//     leaving the node dirty. The sequential walk re-evaluates it, so
//     transient under-approximation self-heals monotonically.
//
//   - Deterministic epoch commit: all cross-cone effects (dirty marks,
//     reader registrations, reader migrations, free records, counters)
//     are buffered per context and replayed in item-index order after
//     the pool joins. Every buffered structure is merged with set
//     semantics, so results are independent of interleaving; the
//     resulting fixpoint is the same one the sequential engine reaches
//     because the worklist engine is evaluation-order-robust (PR 2) and
//     the collapsed solution is rebuilt sequentially from the fixpoint.

import (
	"sort"
	"sync"
	"time"

	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// ptfList holds one procedure's PTFs in creation order. Boxing the
// slice keeps the a.ptfs map structurally immutable after New: workers
// append through the box, and only a procedure's owning context touches
// its box during an epoch.
type ptfList struct {
	list []*PTF
}

// dirtyMark is one buffered markDirty for a PTF outside the cone.
type dirtyMark struct {
	p  *PTF
	nd *cfg.Node
}

// blockPair is one buffered reader migration (q subsumed by np).
type blockPair struct {
	q, np *memmod.Block
}

// evalCtx is one evaluation context: the mutable state that used to
// live directly on Analysis and must now be private per worker. The
// main context (owned == nil) is unrestricted and writes through to the
// shared engine state; a worker context is restricted to the procedures
// of its cone and buffers every cross-cone effect for the epoch commit.
type evalCtx struct {
	a *Analysis

	// stack is the activation stack of the walk running under this
	// context (recursion detection, subsumption propagation).
	stack []*frame

	// owned is the set of procedures this context may mutate; nil means
	// unrestricted (the main context).
	owned map[*cfg.Proc]bool

	// deferred is set when a guard detected work that must not run in
	// this context; the current item aborts and leaves its node dirty.
	deferred bool

	// changed mirrors the per-pass "any fact grew" flag.
	changed bool

	// nodesEval and params count work done under this context; worker
	// counts merge into Stats at commit.
	nodesEval int
	params    int

	// dirtyBuf/dirtySeen buffer markDirty calls for non-owned PTFs.
	dirtyBuf  []dirtyMark
	dirtySeen map[dirtyMark]bool

	// readerBuf buffers registerRead entries (the global reader map is
	// shared state).
	readerBuf map[*memmod.Block]map[readerKey]bool

	// freesBuf buffers LibCall.Free records.
	freesBuf map[freeKey]*memmod.ValueSet

	// migrateBuf buffers reader migrations caused by parameter
	// subsumption inside the cone.
	migrateBuf []blockPair

	// pendBuf is the reusable pending-write scratch of applySummary
	// (small; linear-scanned by destination).
	pendBuf []pendingWrite

	// pmapPool recycles the trial parameter-map used by PTF matching.
	pmapPool map[*memmod.Block]memmod.ValueSet

	// arena backs the transient value sets built while evaluating under
	// this context (expression results, meets, dereference contents).
	// Never reset mid-run; single-goroutine by construction.
	arena memmod.Arena

	// frameSlab, vsSlab and initSlab carve the small fixed-size pieces
	// of call evaluation — binding frames, argument arrays, initial-
	// entry lists — in chunks. Carves are capacity-clipped and never
	// recycled; single-goroutine by construction.
	frameSlab []frame
	vsSlab    []memmod.ValueSet
	initSlab  []initEntry
}

// carveFrame returns a zero-valued slab-backed frame under c (the main
// context when c is nil).
func (a *Analysis) carveFrame(c *evalCtx) *frame {
	if c == nil {
		c = a.mainCtx
	}
	if len(c.frameSlab) == 0 {
		c.frameSlab = make([]frame, 32)
	}
	f := &c.frameSlab[0]
	c.frameSlab = c.frameSlab[1:]
	return f
}

// carveVals returns a zero-valued ValueSet slice of length n; large
// requests fall back to the heap.
func (a *Analysis) carveVals(c *evalCtx, n int) []memmod.ValueSet {
	if n == 0 {
		return nil
	}
	if n > 64 {
		return make([]memmod.ValueSet, n)
	}
	if c == nil {
		c = a.mainCtx
	}
	if len(c.vsSlab) < n {
		c.vsSlab = make([]memmod.ValueSet, 256)
	}
	s := c.vsSlab[0:n:n]
	c.vsSlab = c.vsSlab[n:]
	return s
}

// appendInitial grows a PTF's input-domain list through the context's
// slab: domains are usually a few entries, so slab-backed doubling
// keeps the growth off the allocator. Long lists grow normally.
func (a *Analysis) appendInitial(c *evalCtx, p *PTF, e initEntry) {
	if len(p.initial) == cap(p.initial) && cap(p.initial) < 32 {
		need := 2 * cap(p.initial)
		if need < 4 {
			need = 4
		}
		if c == nil {
			c = a.mainCtx
		}
		if len(c.initSlab) < need {
			c.initSlab = make([]initEntry, 256)
		}
		ns := c.initSlab[0:len(p.initial):need]
		c.initSlab = c.initSlab[need:]
		copy(ns, p.initial)
		p.initial = ns
	}
	p.initial = append(p.initial, e)
}

func (c *evalCtx) restricted() bool { return c != nil && c.owned != nil }

// owns reports whether this context may mutate proc's PTFs.
func (c *evalCtx) owns(proc *cfg.Proc) bool {
	return c == nil || c.owned == nil || c.owned[proc]
}

func newWorkerCtx(a *Analysis, owned map[*cfg.Proc]bool) *evalCtx {
	return &evalCtx{
		a:         a,
		owned:     owned,
		dirtySeen: make(map[dirtyMark]bool),
		readerBuf: make(map[*memmod.Block]map[readerKey]bool),
		freesBuf:  make(map[freeKey]*memmod.ValueSet),
	}
}

// strRes distinguishes string-literal IDs from symbol pointers in
// resource sets.
type strRes int

// schedule is the static condensation of the direct call graph,
// computed once: per procedure, the set of procedures its evaluation
// may descend into (its SCC's closure) and the shared memory resources
// (global, function and string blocks) that cone can name directly.
type schedule struct {
	order []*cfg.Proc          // deterministic iteration order (by name)
	index map[*cfg.Proc]int    // proc -> index in order
	cones []map[*cfg.Proc]bool // per proc: closure of static callees
	res   []map[any]bool       // per proc: cone's named shared resources
	rec   []bool               // per proc: member of a nontrivial SCC
}

func (a *Analysis) buildSchedule() *schedule {
	s := &schedule{index: make(map[*cfg.Proc]int, len(a.procs))}
	for _, proc := range a.procs {
		s.order = append(s.order, proc)
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i].Name < s.order[j].Name })
	for i, proc := range s.order {
		s.index[proc] = i
	}
	n := len(s.order)
	adj := make([][]int, n)
	ownRes := make([]map[any]bool, n)
	for i, proc := range s.order {
		ownRes[i] = make(map[any]bool)
		seen := make(map[int]bool)
		for _, nd := range proc.Nodes {
			addExprRes(nd.Dst, ownRes[i])
			addExprRes(nd.Src, ownRes[i])
			addExprRes(nd.Fun, ownRes[i])
			addExprRes(nd.RetDst, ownRes[i])
			for _, e := range nd.Args {
				addExprRes(e, ownRes[i])
			}
			if nd.Kind != cfg.CallNode || nd.Direct == nil {
				continue
			}
			fd := a.prog.FuncByName[nd.Direct.Name]
			if fd == nil || fd.Body == nil {
				continue
			}
			callee, ok := s.index[a.procs[fd]]
			if ok && !seen[callee] {
				seen[callee] = true
				adj[i] = append(adj[i], callee)
			}
		}
		sort.Ints(adj[i])
	}
	comp, comps := cfg.SCC(n, func(v int) []int { return adj[v] })
	// Component indices are in reverse topological order (callees
	// first), so one sweep computes each component's closure from its
	// callees' already-complete closures.
	coneByComp := make([]map[*cfg.Proc]bool, len(comps))
	resByComp := make([]map[any]bool, len(comps))
	for ci, members := range comps {
		cone := make(map[*cfg.Proc]bool)
		res := make(map[any]bool)
		for _, v := range members {
			cone[s.order[v]] = true
			for r := range ownRes[v] {
				res[r] = true
			}
			for _, w := range adj[v] {
				if cj := comp[w]; cj != ci {
					for q := range coneByComp[cj] {
						cone[q] = true
					}
					for r := range resByComp[cj] {
						res[r] = true
					}
				}
			}
		}
		coneByComp[ci] = cone
		resByComp[ci] = res
	}
	s.cones = make([]map[*cfg.Proc]bool, n)
	s.res = make([]map[any]bool, n)
	s.rec = make([]bool, n)
	for v := 0; v < n; v++ {
		s.cones[v] = coneByComp[comp[v]]
		s.res[v] = resByComp[comp[v]]
		s.rec[v] = len(comps[comp[v]]) > 1
		for _, w := range adj[v] {
			if w == v {
				s.rec[v] = true
			}
		}
	}
	return s
}

// addExprRes collects the shared blocks an expression can name
// directly: global symbols, function symbols, and string literals.
func addExprRes(e *cfg.Expr, res map[any]bool) {
	if e == nil {
		return
	}
	for _, t := range e.Terms {
		switch t.Kind {
		case cfg.TermVar:
			if t.Sym != nil && t.Sym.Global {
				res[t.Sym] = true
			}
		case cfg.TermFunc:
			if t.Sym != nil {
				res[t.Sym] = true
			}
		case cfg.TermStr:
			res[strRes(t.StrID)] = true
		case cfg.TermDeref:
			addExprRes(t.Base, res)
		}
	}
}

// workItem is one schedulable unit: a dirty PTF plus the worker
// context owning its cone.
type workItem struct {
	p   *PTF
	ctx *evalCtx
}

// preDrain runs scheduler epochs until fewer than two independent work
// items remain. Items that trip a defer guard are skipped for the rest
// of the pass (the sequential walk handles them); everything else
// converges monotonically, so the loop terminates when the buffered
// commits stop producing fresh dirt.
func (a *Analysis) preDrain() {
	if a.sched == nil {
		a.sched = a.buildSchedule()
		a.workerBusy = make([]time.Duration, a.workers)
	}
	skip := make(map[*PTF]bool)
	// Safety valve mirroring the sequential engine's iteration cap; in
	// practice monotone convergence ends the loop long before.
	for epoch := 0; epoch < 10000; epoch++ {
		items := a.gatherItems(skip)
		if len(items) < 2 {
			a.releaseItems(items)
			break
		}
		a.runEpoch(items)
		for _, it := range items {
			if it.ctx.deferred {
				skip[it.p] = true
			}
		}
		if a.timedOut.Load() {
			return
		}
	}
	// Sequential fallback: whatever the epochs could not pack —
	// conflicting cones, tripped defer guards, recursive procedures,
	// lone items — drains on the main context. This is mandatory for
	// soundness, not just progress: call sites that skipped an inline
	// re-drain (pendingDrain) recorded the callee's current version as
	// fresh, so an undrained callee would let the pass quiesce on a
	// stale summary.
	for round := 0; round < 10000; round++ {
		drained := false
		for _, proc := range a.sched.order {
			for _, p := range a.ptfs[proc].list {
				if p == a.mainPTF || p.dirtyN == 0 || !p.exitReached ||
					p.lastBind == nil {
					continue
				}
				a.runItem(&workItem{p: p, ctx: a.mainCtx})
				drained = true
				if a.timedOut.Load() {
					return
				}
			}
		}
		if !drained {
			break
		}
	}
	a.pendingDrain = false
}

// gatherItems deterministically packs a maximal set of mutually
// independent dirty PTFs: procedures in name order, PTFs in creation
// order, greedy acceptance. A PTF is eligible when it has dirty nodes,
// a binding frame to re-create its evaluation stack from, has reached
// its exit (its summary shape is stable enough to drain standalone),
// and is not serving a recursive cycle. Cones, binding chains and
// resource sets of accepted items are pairwise disjoint.
func (a *Analysis) gatherItems(skip map[*PTF]bool) []*workItem {
	var items []*workItem
	usedProcs := make(map[*cfg.Proc]bool)
	usedChain := make(map[*cfg.Proc]bool)
	usedRes := make(map[any]bool)
	for pi, proc := range a.sched.order {
		if a.sched.rec[pi] {
			continue
		}
		cone := a.sched.cones[pi]
		res := a.sched.res[pi]
		for _, p := range a.ptfs[proc].list {
			if skip[p] || p == a.mainPTF || p.recursive || !p.exitReached ||
				p.dirtyN == 0 || p.lastBind == nil {
				continue
			}
			// The binding chain is read (never written) while the item
			// runs; it must not intersect the item's own cone, any
			// other item's cone, or be a cone another item writes.
			chain := make(map[*cfg.Proc]bool)
			conflict := false
			for fr := p.lastBind.caller; fr != nil; fr = fr.caller {
				cp := fr.ptf.Proc
				chain[cp] = true
				if cone[cp] {
					conflict = true
					break
				}
			}
			if !conflict {
				for q := range cone {
					if usedProcs[q] || usedChain[q] {
						conflict = true
						break
					}
				}
			}
			if !conflict {
				for q := range chain {
					if usedProcs[q] {
						conflict = true
						break
					}
				}
			}
			if !conflict {
				for r := range res {
					if usedRes[r] {
						conflict = true
						break
					}
				}
			}
			if conflict {
				continue
			}
			for q := range cone {
				usedProcs[q] = true
			}
			for q := range chain {
				usedChain[q] = true
			}
			for r := range res {
				usedRes[r] = true
			}
			ctx := newWorkerCtx(a, cone)
			for q := range cone {
				for _, qp := range a.ptfs[q].list {
					qp.octx = ctx
				}
			}
			items = append(items, &workItem{p: p, ctx: ctx})
			break // one item per procedure per epoch
		}
	}
	return items
}

// releaseItems restores main-context ownership of cone PTFs when an
// epoch is abandoned before running.
func (a *Analysis) releaseItems(items []*workItem) {
	for _, it := range items {
		for q := range it.ctx.owned {
			for _, qp := range a.ptfs[q].list {
				qp.octx = a.mainCtx
			}
		}
	}
}

// runEpoch drains the items on the worker pool, then commits every
// context's buffered effects in item-index order.
func (a *Analysis) runEpoch(items []*workItem) {
	a.stats.ParallelEpochs++
	a.stats.ParallelItems += len(items)
	nw := a.workers
	if nw > len(items) {
		nw = len(items)
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			for i := w; i < len(items); i += nw {
				a.runItem(items[i])
			}
			a.workerBusy[w] += time.Since(start)
		}(w)
	}
	wg.Wait()
	for _, it := range items {
		a.commitCtx(it.ctx)
	}
	a.releaseItems(items)
}

// dirtyCandidates returns proc's PTFs with pending drainable dirt:
// summarized, re-creatable from a binding frame, and not already
// mid-drain. Call sites must not match against them (their input
// domains may still grow), so the caller drains or defers first.
func (a *Analysis) dirtyCandidates(proc *cfg.Proc) []*PTF {
	var out []*PTF
	for _, p := range a.ptfs[proc].list {
		if p.dirtyN > 0 && p.exitReached && p.lastBind != nil && !a.draining[p] {
			out = append(out, p)
		}
	}
	return out
}

// runItem re-creates the item's evaluation stack from its last binding
// frame (re-contexted onto the worker) and drains its dirty nodes.
func (a *Analysis) runItem(it *workItem) {
	if a.timedOut.Load() {
		return
	}
	c := it.ctx
	if c == a.mainCtx {
		// Synchronous drains can nest (draining P reaches a call whose
		// candidates include a dirty Q); re-entering a PTF already
		// mid-drain must be a no-op. Worker contexts never take this
		// path, so the map is only touched single-threaded.
		if a.draining[it.p] {
			return
		}
		if a.draining == nil {
			a.draining = make(map[*PTF]bool)
		}
		a.draining[it.p] = true
		defer delete(a.draining, it.p)
	}
	wf := recontext(it.p.lastBind, c)
	// Preserve the context's live stack: the main context drains
	// fallback items while its own walk is suspended mid-frame.
	saved := c.stack
	var stk []*frame
	for fr := wf; fr != nil; fr = fr.caller {
		stk = append(stk, fr)
	}
	// Reverse into outermost-first order (main at the bottom).
	for i, j := 0, len(stk)-1; i < j; i, j = i+1, j-1 {
		stk[i], stk[j] = stk[j], stk[i]
	}
	c.stack = stk
	a.evalProc(wf)
	c.stack = saved
}

// recontext shallow-copies a binding frame chain onto context c. The
// copies share args and pmap with the originals; chain frames are
// read-only while the item runs (guards defer anything that would
// write them), and the owned frame's maps are only written by this
// worker.
func recontext(f *frame, c *evalCtx) *frame {
	if f == nil {
		return nil
	}
	nf := *f
	nf.c = c
	nf.caller = recontext(f.caller, c)
	return &nf
}

// commitCtx replays a worker context's buffered effects on the main
// context. All merges have set semantics, so the outcome is independent
// of both worker interleaving and buffer order; items commit in index
// order anyway to keep the walk reproducible.
func (a *Analysis) commitCtx(c *evalCtx) {
	for b, set := range c.readerBuf {
		for k := range set {
			a.addReader(b, k)
		}
	}
	for _, mp := range c.migrateBuf {
		a.migrateReaders(a.mainCtx, mp.q, mp.np)
	}
	for _, dm := range c.dirtyBuf {
		a.markDirty(a.mainCtx, dm.p, dm.nd)
	}
	if len(c.freesBuf) > 0 && a.frees == nil {
		a.frees = make(map[freeKey]*memmod.ValueSet)
	}
	for k, v := range c.freesBuf {
		acc, ok := a.frees[k]
		if !ok {
			a.frees[k] = v
			continue
		}
		acc.AddAll(*v)
	}
	if c.changed {
		a.mainCtx.changed = true
	}
	a.stats.NodesEvaluated += c.nodesEval
	a.stats.Params += c.params
}
