package analysis

import (
	"fmt"
	"sort"
	"strings"

	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// This file computes per-procedure, per-context MOD/REF summaries from
// the converged fixpoint (paper §6: the parallelizer client consumes
// context-sensitive MOD/REF information derived from the points-to
// results). A procedure's MOD set is every location it may write —
// directly, through pointers, via library calls, or transitively through
// its callees — expressed in its own name space (extended parameters
// included); REF is the same for reads. Callee summaries are folded into
// callers by translating extended parameters back to the caller's
// locations through the call edge's parameter bindings, mirroring the
// engine's binding discipline read-only.

// offClamp bounds translated offsets: beyond it a location degrades to a
// block-level (stride-1) reference so recursive shift chains converge.
const offClamp = 4096

// CallEdge is one resolved call-graph edge at the PTF level: the call at
// Node inside Caller's body applied Callee's summary.
type CallEdge struct {
	Caller *PTF
	Node   *cfg.Node
	Callee *PTF
}

// CallGraphEdges returns every resolved PTF-level call edge (including
// recursive applications), deterministically sorted.
func (a *Analysis) CallGraphEdges() []CallEdge {
	var out []CallEdge
	for _, p := range a.AllPTFs() {
		out = append(out, sortedEdges(p)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Caller.Proc.Name != out[j].Caller.Proc.Name {
			return out[i].Caller.Proc.Name < out[j].Caller.Proc.Name
		}
		if pi, pj := ptfIndex(out[i].Caller), ptfIndex(out[j].Caller); pi != pj {
			return pi < pj
		}
		if out[i].Node.ID != out[j].Node.ID {
			return out[i].Node.ID < out[j].Node.ID
		}
		if out[i].Callee.Proc.Name != out[j].Callee.Proc.Name {
			return out[i].Callee.Proc.Name < out[j].Callee.Proc.Name
		}
		return ptfIndex(out[i].Callee) < ptfIndex(out[j].Callee)
	})
	return out
}

func sortedEdges(p *PTF) []CallEdge {
	out := make([]CallEdge, 0, p.callEdges.size())
	p.callEdges.each(func(k siteKey, callee *PTF) bool {
		out = append(out, CallEdge{Caller: p, Node: k.nd, Callee: callee})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node.ID != out[j].Node.ID {
			return out[i].Node.ID < out[j].Node.ID
		}
		if out[i].Callee.Proc.Name != out[j].Callee.Proc.Name {
			return out[i].Callee.Proc.Name < out[j].Callee.Proc.Name
		}
		return ptfIndex(out[i].Callee) < ptfIndex(out[j].Callee)
	})
	return out
}

// AllocSite is a heap-allocation call site the analysis reached.
type AllocSite struct {
	Proc   *cfg.Proc
	Node   *cfg.Node
	Block  *memmod.Block
	Callee string // allocating function (malloc, strdup, fopen, ...)
}

// AllocSites returns every reached allocation site, sorted by position.
func (a *Analysis) AllocSites() []AllocSite {
	var out []AllocSite
	for _, fd := range a.prog.Funcs {
		proc, ok := a.procs[fd]
		if !ok {
			continue
		}
		for _, nd := range proc.Nodes {
			if nd.Kind != cfg.CallNode || nd.Direct == nil {
				continue
			}
			hb := a.heapBlocks[nd.Pos.String()]
			if hb == nil {
				continue
			}
			out = append(out, AllocSite{Proc: proc, Node: nd, Block: hb, Callee: nd.Direct.Name})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if pi, pj := out[i].Node.Pos.String(), out[j].Node.Pos.String(); pi != pj {
			return pi < pj
		}
		return out[i].Proc.Name < out[j].Proc.Name
	})
	return out
}

// mrEdge is a call edge with its derived parameter bindings.
type mrEdge struct {
	nd     *cfg.Node
	callee *PTF
	pmap   map[*memmod.Block]*memmod.ValueSet
}

// ModRefTable holds the converged MOD/REF summaries, per PTF and per
// call node.
type ModRefTable struct {
	a     *Analysis
	mod   map[*PTF]*memmod.ValueSet
	ref   map[*PTF]*memmod.ValueSet
	edges map[*PTF][]mrEdge

	// nodeMod/nodeRef are per-call-node effects: library effects plus
	// (after convergence) the translated summary of every callee applied
	// at the node. Assign-node effects are not stored per node.
	nodeMod map[*PTF]map[*cfg.Node]*memmod.ValueSet
	nodeRef map[*PTF]map[*cfg.Node]*memmod.ValueSet
}

// ModRef builds (once) and returns the MOD/REF summary table. It must
// be called after Run has converged; the build is single-threaded and
// read-only with respect to the analysis state.
func (a *Analysis) ModRef() *ModRefTable {
	if a.modref != nil {
		return a.modref
	}
	t := &ModRefTable{
		a:       a,
		mod:     make(map[*PTF]*memmod.ValueSet),
		ref:     make(map[*PTF]*memmod.ValueSet),
		edges:   make(map[*PTF][]mrEdge),
		nodeMod: make(map[*PTF]map[*cfg.Node]*memmod.ValueSet),
		nodeRef: make(map[*PTF]map[*cfg.Node]*memmod.ValueSet),
	}
	ptfs := a.AllPTFs()
	for _, p := range ptfs {
		t.mod[p] = &memmod.ValueSet{}
		t.ref[p] = &memmod.ValueSet{}
		t.localEffects(p)
	}
	for _, p := range ptfs {
		for _, e := range sortedEdges(p) {
			t.edges[p] = append(t.edges[p], mrEdge{
				nd: e.Node, callee: e.Callee,
				pmap: a.edgeBindings(p, e.Node, e.Callee),
			})
		}
	}
	// Fold callee summaries into callers to a fixpoint. Exact offset
	// translation first; if convergence is slow (recursive shift
	// chains), degrade to block-level translation, whose lattice is
	// finite.
	exactRounds := 3*len(ptfs) + 10
	for round := 0; ; round++ {
		widen := round >= exactRounds
		changed := false
		for _, p := range ptfs {
			for _, e := range t.edges[p] {
				if t.foldEdge(p, e, widen) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Final per-node callee effects from the converged summaries.
	for _, p := range ptfs {
		for _, e := range t.edges[p] {
			var m, r memmod.ValueSet
			t.translateInto(*t.mod[e.callee], e.pmap, &m, false)
			t.translateInto(*t.ref[e.callee], e.pmap, &r, false)
			t.addNode(t.nodeMod, p, e.nd, m)
			t.addNode(t.nodeRef, p, e.nd, r)
		}
	}
	a.modref = t
	return t
}

// Of returns the MOD and REF summary of one context (PTF), in the PTF's
// own name space (extended parameters included). The returned sets are
// shared; callers must not mutate them.
func (t *ModRefTable) Of(p *PTF) (mod, ref memmod.ValueSet) {
	if m := t.mod[p]; m != nil {
		mod = *m
	}
	if r := t.ref[p]; r != nil {
		ref = *r
	}
	return mod, ref
}

// OfProc returns the context-collapsed MOD/REF summary of the named
// procedure: the union over its contexts with extended parameters
// resolved to the concrete locations they were bound to (requires
// CollectSolution for full resolution). ok reports whether the
// procedure exists; a defined-but-unreached procedure yields empty sets.
func (t *ModRefTable) OfProc(name string) (mod, ref memmod.ValueSet, ok bool) {
	fd := t.a.prog.FuncByName[name]
	if fd == nil {
		return mod, ref, false
	}
	proc := t.a.procs[fd]
	if proc == nil {
		return mod, ref, false
	}
	for _, p := range t.a.PTFs(name) {
		m, r := t.Of(p)
		addConcrete(&mod, t.a.Concretize(m))
		addConcrete(&ref, t.a.Concretize(r))
	}
	return mod, ref, true
}

func addConcrete(out *memmod.ValueSet, vals memmod.ValueSet) {
	for _, l := range vals.Locs() {
		if l.Base.Kind == memmod.ParamBlock {
			continue
		}
		out.Add(l)
	}
}

// NodeEffects returns the MOD/REF effects of one call node in context p:
// library effects plus the translated summaries of every callee applied
// there. Empty for nodes without call effects. The returned sets are
// shared; callers must not mutate them.
func (t *ModRefTable) NodeEffects(p *PTF, nd *cfg.Node) (mod, ref memmod.ValueSet) {
	if m := t.nodeMod[p][nd]; m != nil {
		mod = *m
	}
	if r := t.nodeRef[p][nd]; r != nil {
		ref = *r
	}
	return mod, ref
}

// Dump renders the per-procedure summaries deterministically (testing
// and diagnostics).
func (t *ModRefTable) Dump() []string {
	var names []string
	for _, fd := range t.a.prog.Funcs {
		if _, ok := t.a.procs[fd]; ok {
			names = append(names, fd.Name)
		}
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		mod, ref, ok := t.OfProc(name)
		if !ok {
			continue
		}
		out = append(out, fmt.Sprintf("%s: MOD{%s} REF{%s}", name, renderLocs(mod), renderLocs(ref)))
	}
	return out
}

func renderLocs(vals memmod.ValueSet) string {
	strs := make([]string, 0, vals.Len())
	for _, l := range vals.Locs() {
		s := l.Base.Name
		if l.Off != 0 {
			s += fmt.Sprintf("+%d", l.Off)
		}
		if l.Stride != 0 {
			s += "[*]"
		}
		strs = append(strs, s)
	}
	sort.Strings(strs)
	return strings.Join(strs, ", ")
}

// localEffects computes the intra-procedural MOD/REF contribution of
// every node in p's body, including library-call effects.
func (t *ModRefTable) localEffects(p *PTF) {
	a := t.a
	for _, nd := range p.Proc.Nodes {
		switch nd.Kind {
		case cfg.AssignNode:
			t.lvalEffects(p, nd.Dst, nd, t.mod[p], t.ref[p])
			if nd.Aggregate {
				// Src denotes source locations: a block read.
				t.lvalEffects(p, nd.Src, nd, t.ref[p], t.ref[p])
			} else {
				t.exprRefs(p, nd.Src, nd, t.ref[p])
			}
		case cfg.CallNode:
			for _, ae := range nd.Args {
				t.exprRefs(p, ae, nd, t.ref[p])
			}
			t.exprRefs(p, nd.Fun, nd, t.ref[p])
			t.lvalEffects(p, nd.RetDst, nd, t.mod[p], t.ref[p])
			if nd.Direct != nil {
				if fd := a.prog.FuncByName[nd.Direct.Name]; fd == nil || fd.Body == nil {
					var m, r memmod.ValueSet
					t.libEffects(p, nd, &m, &r)
					t.mod[p].AddAll(m)
					t.ref[p].AddAll(r)
					t.addNode(t.nodeMod, p, nd, m)
					t.addNode(t.nodeRef, p, nd, r)
				}
			}
		}
	}
}

func (t *ModRefTable) addNode(tab map[*PTF]map[*cfg.Node]*memmod.ValueSet, p *PTF, nd *cfg.Node, vals memmod.ValueSet) {
	if vals.IsEmpty() {
		return
	}
	m := tab[p]
	if m == nil {
		m = make(map[*cfg.Node]*memmod.ValueSet)
		tab[p] = m
	}
	acc := m[nd]
	if acc == nil {
		nv := vals.Clone()
		m[nd] = &nv
		return
	}
	acc.AddAll(vals)
}

// lvalEffects adds the storage locations an lvalue expression denotes to
// mod, and the pointer reads needed to compute them to ref. Destination
// lvalues carry no extra dereference in the IR: a TermVar denotes the
// variable's own storage, a TermDeref writes through the pointer its
// base denotes (TermValuesAt resolves the write targets). Direct
// accesses to locals and the return-value slot are procedure-private and
// excluded; whatever a dereference hits is included (translation drops
// callee-private blocks at fold time).
func (t *ModRefTable) lvalEffects(p *PTF, e *cfg.Expr, nd *cfg.Node, mod, ref *memmod.ValueSet) {
	if e == nil {
		return
	}
	a := t.a
	for _, term := range e.Terms {
		switch term.Kind {
		case cfg.TermVar:
			if term.Sym != nil && term.Sym.Global {
				addEffect(mod, memmod.Values(a.VarLoc(p, term.Sym, term.Off, term.Stride)))
			}
		case cfg.TermStr:
			addEffect(mod, memmod.Values(memmod.Loc(a.strBlock(term.StrID, term.StrVal), term.Off, 1)))
		case cfg.TermDeref:
			addEffect(mod, a.TermValuesAt(p, term, nd))
			addRead(ref, a.EvalAt(p, term.Base, nd))
			t.exprRefs(p, term.Base, nd, ref)
		}
	}
}

// exprRefs adds every storage location read while evaluating e to ref.
// In the IR every source-level read appears as a TermDeref (rvalues
// carry an extra dereference), so the read locations are exactly what
// each dereference consults: its base's value set, at every depth. A
// bare TermVar is an address computation and reads nothing.
func (t *ModRefTable) exprRefs(p *PTF, e *cfg.Expr, nd *cfg.Node, ref *memmod.ValueSet) {
	if e == nil {
		return
	}
	a := t.a
	for _, term := range e.Terms {
		if term.Kind != cfg.TermDeref {
			continue
		}
		addRead(ref, a.EvalAt(p, term.Base, nd))
		t.exprRefs(p, term.Base, nd, ref)
	}
}

// addRead merges dereference-consulted locations into a REF set: like
// addEffect, but additionally skips procedure-private storage (locals
// and the return-value slot), which OfProc-level summaries exclude.
func addRead(out *memmod.ValueSet, vals memmod.ValueSet) {
	var public memmod.ValueSet
	for _, l := range vals.Locs() {
		l = l.Resolve()
		switch l.Base.Kind {
		case memmod.LocalBlock, memmod.RetvalBlock:
			continue
		}
		public.Add(l)
	}
	addEffect(out, public)
}

// addEffect merges locations into a MOD/REF set, skipping pseudo-storage
// that cannot be memory-modified (null, function code).
func addEffect(out *memmod.ValueSet, vals memmod.ValueSet) {
	for _, l := range vals.Locs() {
		l = l.Resolve()
		switch l.Base.Kind {
		case memmod.NullBlock, memmod.FuncBlock:
			continue
		}
		if l.Off > offClamp || l.Off < -offClamp {
			l = memmod.Loc(l.Base, 0, 1)
		}
		out.Add(l)
	}
}

// libEffects applies the declared MOD/REF behavior of a library call:
// argument pointees per LibEffect, or a conservative everything-reachable
// assumption for functions with neither a summary nor an effect entry.
func (t *ModRefTable) libEffects(p *PTF, nd *cfg.Node, mod, ref *memmod.ValueSet) {
	a := t.a
	name := nd.Direct.Name
	eff, ok := a.opts.LibEffects[name]
	if !ok {
		if _, summarized := a.opts.Lib[name]; summarized {
			return // summarized and declared effect-free
		}
		eff = LibEffect{ModAll: true, RefAll: true}
	}
	argTargets := func(i int) memmod.ValueSet {
		if i < 0 || i >= len(nd.Args) {
			return memmod.ValueSet{}
		}
		return a.EvalAt(p, nd.Args[i], nd).WithStride(1)
	}
	for _, i := range eff.ModArgs {
		addEffect(mod, argTargets(i))
	}
	for _, i := range eff.RefArgs {
		addEffect(ref, argTargets(i))
	}
	if eff.ModAll || eff.RefAll {
		var reach memmod.ValueSet
		for i := range nd.Args {
			reach.AddAll(argTargets(i))
		}
		// One extra level of indirection: storage reachable through the
		// arguments' pointees.
		var inner memmod.ValueSet
		for _, l := range reach.Locs() {
			inner.AddAll(a.ContentsAt(p, l, nd))
		}
		reach.AddAll(inner.WithStride(1))
		if eff.ModAll {
			addEffect(mod, reach)
		}
		if eff.RefAll {
			addEffect(ref, reach)
		}
	}
}

// edgeBindings re-derives, read-only, the parameter bindings of one call
// edge: for every extended parameter of the callee, the caller-name-space
// values it was bound to at this site. This mirrors the engine's
// entryActuals/replayBind discipline (initial entries processed in
// creation order, so chained parameters resolve through earlier
// bindings).
func (a *Analysis) edgeBindings(caller *PTF, nd *cfg.Node, callee *PTF) map[*memmod.Block]*memmod.ValueSet {
	pm := make(map[*memmod.Block]*memmod.ValueSet)
	add := func(p *memmod.Block, vals memmod.ValueSet) {
		if p == nil || vals.IsEmpty() {
			return
		}
		p = p.Representative()
		acc := pm[p]
		if acc == nil {
			nv := vals.Resolved().Clone()
			pm[p] = &nv
			return
		}
		acc.AddAll(vals)
	}
	for _, e := range callee.initial {
		switch e.kind {
		case globalRefEntry:
			var al memmod.LocSet
			if caller == a.mainPTF {
				al = memmod.Loc(a.globalBlock(e.sym), 0, 0)
			} else if gp, ok := caller.globalParams.get(e.sym); ok {
				al = memmod.Loc(gp.Representative(), 0, 0)
			} else {
				continue
			}
			add(e.param, memmod.Values(al))
		case ptrInitEntry:
			if e.valEmpty {
				continue
			}
			val := e.val.Resolve()
			if val.Base == nil || val.Base.Kind != memmod.ParamBlock {
				continue
			}
			ptr := e.ptr.Resolve()
			var actuals memmod.ValueSet
			switch ptr.Base.Kind {
			case memmod.LocalBlock:
				idx := formalIndex(callee.Proc, ptr.Base.Sym)
				if idx < 0 || idx >= len(nd.Args) {
					continue
				}
				actuals = a.EvalAt(caller, nd.Args[idx], nd)
			case memmod.ParamBlock:
				bound := pm[ptr.Base.Representative()]
				if bound == nil {
					continue
				}
				for _, b := range bound.Locs() {
					target := b.Shift(ptr.Off)
					if ptr.Stride != 0 {
						target = target.WithStride(ptr.Stride)
					}
					actuals.AddAll(a.ContentsAt(caller, target, nd))
				}
			default:
				continue
			}
			if actuals.IsEmpty() {
				continue
			}
			if val.Stride == 0 && val.Off != 0 {
				actuals = actuals.Shift(-val.Off)
			}
			add(val.Base, actuals)
		}
	}
	return pm
}

// foldEdge merges the callee's current summary, translated into the
// caller's name space, into the caller's summary. Reports growth.
func (t *ModRefTable) foldEdge(p *PTF, e mrEdge, widen bool) bool {
	changed := false
	for _, pair := range [2]struct{ src, dst *memmod.ValueSet }{
		{t.mod[e.callee], t.mod[p]},
		{t.ref[e.callee], t.ref[p]},
	} {
		before := pair.dst.Len()
		t.translateInto(*pair.src, e.pmap, pair.dst, widen)
		if pair.dst.Len() != before {
			changed = true
		}
	}
	return changed
}

// translateInto maps callee-name-space locations into the caller's name
// space through the edge bindings: callee-private storage (locals, the
// retval slot) is dropped, extended parameters fold back to the actuals
// they were bound to (shifted by the location's offset), and everything
// else (globals in main, heap, strings) passes through unchanged. With
// widen, translation is block-level (offset 0, stride 1).
func (t *ModRefTable) translateInto(vals memmod.ValueSet, pmap map[*memmod.Block]*memmod.ValueSet, out *memmod.ValueSet, widen bool) {
	for _, l := range vals.Locs() {
		l = l.Resolve()
		switch l.Base.Kind {
		case memmod.LocalBlock, memmod.RetvalBlock:
			continue
		case memmod.ParamBlock:
			bound := pmap[l.Base.Representative()]
			if bound == nil {
				continue
			}
			if widen || l.Stride != 0 {
				for _, b := range bound.Locs() {
					b = b.Resolve()
					if b.Base.Kind == memmod.NullBlock || b.Base.Kind == memmod.FuncBlock {
						continue
					}
					out.Add(memmod.Loc(b.Base, 0, 1))
				}
				continue
			}
			addEffect(out, bound.Shift(l.Off))
		default:
			if widen {
				out.Add(memmod.Loc(l.Base, 0, 1))
			} else {
				addEffect(out, memmod.Values(l))
			}
		}
	}
}
