package analysis

import (
	"testing"

	"wlpa/internal/cast"
	"wlpa/internal/ctype"
	"wlpa/internal/memmod"
)

// TestResolveFuncSymsSelfBinding is a regression test: in the outermost
// frame (caller == nil) resolveFuncSyms follows parameter bindings
// within the same frame, so a parameter bound (directly or through a
// cycle) to itself used to recurse without bound.
func TestResolveFuncSymsSelfBinding(t *testing.T) {
	a := &Analysis{}
	p := memmod.NewParam(1, "fp")
	f := &frame{pmap: map[*memmod.Block]memmod.ValueSet{
		p: memmod.Values(memmod.Loc(p, 0, 0)),
	}}
	out := make(map[*cast.Symbol]bool)
	// Must terminate (used to stack-overflow) and resolve nothing.
	a.resolveFuncSyms(f, memmod.Values(memmod.Loc(p, 0, 0)), out, nil, nil)
	if len(out) != 0 {
		t.Errorf("resolved %d symbols from a self-referential binding, want 0", len(out))
	}
}

// TestResolveFuncSymsCycleWithFunc checks that a binding cycle does not
// hide function blocks reachable alongside it.
func TestResolveFuncSymsCycleWithFunc(t *testing.T) {
	a := &Analysis{}
	sym := &cast.Symbol{Name: "callee", Type: ctype.IntType}
	fb := memmod.NewFunc(sym)
	p := memmod.NewParam(1, "fp")
	q := memmod.NewParam(2, "fq")
	var vals memmod.ValueSet
	vals.Add(memmod.Loc(q, 0, 0))
	vals.Add(memmod.Loc(fb, 0, 0))
	f := &frame{pmap: map[*memmod.Block]memmod.ValueSet{
		p: vals,                               // p -> {q, callee}
		q: memmod.Values(memmod.Loc(p, 0, 0)), // q -> {p}: cycle
	}}
	out := make(map[*cast.Symbol]bool)
	a.resolveFuncSyms(f, memmod.Values(memmod.Loc(p, 0, 0)), out, nil, nil)
	if !out[sym] {
		t.Errorf("function symbol not resolved through binding cycle; got %v", out)
	}
	if len(out) != 1 {
		t.Errorf("resolved %d symbols, want 1", len(out))
	}
}
