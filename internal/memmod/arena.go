package memmod

// Arena is a bump allocator for transient location-set storage: the
// evaluation engine builds large numbers of short-lived small value
// sets (expression results, meets, dereference contents), and carving
// their backing slices out of chunks turns thousands of individual
// allocations into a handful of chunk allocations.
//
// The arena is never reset during a run — carved slices stay valid for
// the lifetime of the owning evaluation context, so there is no
// use-after-reset hazard; the memory dies with the analysis. Each
// carve's capacity is clipped exactly, so appending past it falls back
// to an ordinary heap reallocation and can never write into a
// neighboring carve. Arenas are single-goroutine (one per evaluation
// context).
type Arena struct {
	buf []LocSet
}

// Chunks ramp from arenaMinChunk to arenaMaxChunk (24 KiB) as an arena
// proves hot: long-lived evaluation contexts reach the full chunk size
// within a few refills, while the many small per-PTS arenas never pay
// for (or zero) more than they use.
const (
	arenaMinChunk = 64
	arenaMaxChunk = 1024
)

// Carve returns an empty slice with capacity n backed by the arena.
func (a *Arena) Carve(n int) []LocSet {
	if n > arenaMaxChunk {
		return make([]LocSet, 0, n)
	}
	if cap(a.buf)-len(a.buf) < n {
		c := 2 * cap(a.buf)
		if c < arenaMinChunk {
			c = arenaMinChunk
		}
		if c > arenaMaxChunk {
			c = arenaMaxChunk
		}
		if c < n {
			c = n
		}
		a.buf = make([]LocSet, 0, c)
	}
	m := len(a.buf)
	a.buf = a.buf[:m+n]
	return a.buf[m : m : m+n]
}

// NewSet returns an empty ValueSet whose first few members live in the
// arena (the common case: pointer value sets are small). Growth past
// the seeded capacity reallocates on the heap as usual.
func (a *Arena) NewSet() ValueSet {
	return ValueSet{locs: a.Carve(2)}
}

// CloneSet copies v into arena-backed storage. Unlike AddAll into a
// fresh set, it copies members and hash wholesale without re-running
// dedup scans. The members are already resolved/deduped by v's own
// invariants. Capacity is clipped to the length, so the clone grows
// away from the carve on first append past it.
func (a *Arena) CloneSet(v ValueSet) ValueSet {
	n := len(v.locs)
	if n == 0 {
		return ValueSet{locs: a.Carve(2)}
	}
	locs := a.Carve(n)
	locs = locs[:n]
	copy(locs, v.locs)
	return ValueSet{locs: locs, hash: v.hash}
}

// Value1 returns a single-member set backed by the arena. The carve's
// capacity is exactly one, so copies that append reallocate away and
// can never alias each other through spare capacity.
func (a *Arena) Value1(l LocSet) ValueSet {
	v := ValueSet{locs: a.Carve(1)}
	v.Add(l)
	return v
}

// AddAll unions o into v, reallocating v's backing from the arena when
// it must grow (the same pre-grow policy as ValueSet.AddAll, minus the
// heap allocation). v must be exclusively owned by the caller.
func (a *Arena) AddAll(v *ValueSet, o ValueSet) bool {
	if n := len(o.locs); n > 0 && cap(v.locs)-len(v.locs) < n {
		need := len(v.locs) + n
		if c := 2 * cap(v.locs); c > need {
			need = c
		}
		nl := a.Carve(need)
		nl = nl[:len(v.locs)]
		copy(nl, v.locs)
		v.locs = nl
	}
	return v.AddAll(o)
}

// ShiftSet is ValueSet.Shift with the result carved from the arena.
func (a *Arena) ShiftSet(v ValueSet, delta int64) ValueSet {
	if delta == 0 {
		return v.Resolved()
	}
	out := ValueSet{locs: a.Carve(v.Len())}
	for _, l := range v.Locs() {
		out.Add(l.Shift(delta))
	}
	return out
}

// StrideSet is ValueSet.WithStride with the result carved from the arena.
func (a *Arena) StrideSet(v ValueSet, s int64) ValueSet {
	out := ValueSet{locs: a.Carve(v.Len())}
	for _, l := range v.Locs() {
		out.Add(l.WithStride(s))
	}
	return out
}
