package memmod

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"wlpa/internal/cast"
	"wlpa/internal/ctok"
	"wlpa/internal/ctype"
)

// subsumeGen counts parameter subsumptions process-wide. Caches holding
// resolved location or value sets key their validity on it: any Subsume
// can change what Resolve returns for already-stored sets, so a stale
// generation means "re-resolve".
var subsumeGen uint64

// SubsumeGen returns the current subsumption generation.
func SubsumeGen() uint64 { return atomic.LoadUint64(&subsumeGen) }

// blockIDs hands out creation-order block identities (used for cheap
// order-independent value-set hashing; never exposed or ordered on).
var blockIDs uint64

// BlockKind classifies memory blocks.
type BlockKind int

const (
	// LocalBlock is a local variable (always a unique block).
	LocalBlock BlockKind = iota
	// ParamBlock is an extended parameter: the locations reached
	// through an input pointer at procedure entry (paper §2.2, §3.2).
	ParamBlock
	// HeapBlock groups all storage allocated at one static site
	// (never unique).
	HeapBlock
	// GlobalBlock is the real storage of a global variable, visible in
	// the outermost (main/global) name space.
	GlobalBlock
	// FuncBlock represents a function; pointers to it are function-
	// pointer values.
	FuncBlock
	// StringBlock is a string literal's storage.
	StringBlock
	// RetvalBlock is the special local holding a procedure's return
	// value (paper §3).
	RetvalBlock
	// NullBlock is the pseudo-location denoting the null pointer
	// constant. It is not real storage: dereferencing it yields nothing
	// and checkers report it as a NULL dereference. Only created when
	// the analysis runs with null tracking enabled.
	NullBlock
)

var kindNames = [...]string{"local", "param", "heap", "global", "func", "string", "retval", "null"}

func (k BlockKind) String() string { return kindNames[k] }

// Block is a block of memory.
type Block struct {
	Kind BlockKind
	Name string

	// Sym is the originating symbol for locals, globals and functions.
	Sym *cast.Symbol

	// Site is the allocation site for heap blocks.
	Site ctok.Pos

	// Size is the block size in bytes if known, else 0.
	Size int64

	// Type is the declared type if known (locals/globals).
	Type *ctype.Type

	// scalarID caches the interned ID of the block's (Off=0, Stride=0)
	// location set, packed as tag<<32|id where tag identifies the
	// Interner that issued it (see Interner.ExactID). A mismatched tag
	// simply misses; the cache is advisory.
	scalarID atomic.Uint64

	// --- extended parameter state ---

	// Index is the creation order of the parameter within its PTF;
	// PTF matching replays initial points-to entries in this order.
	Index int

	// FuncPtr marks parameters used as call targets; their values
	// become part of the PTF input domain (paper §5.1).
	FuncPtr bool

	// NotUnique marks a parameter that may stand for several actual
	// locations at once, disabling strong updates through it (§4.1).
	NotUnique bool

	// fwd/fwdDelta implement parameter subsumption (paper §3.2,
	// Figures 6 and 7): when a parameter is subsumed, references to it
	// forward to the subsuming parameter at offset+fwdDelta.
	// fwdUnknown records that the delta is unknown, in which case
	// references become stride-1 (unknown position) in the target.
	fwd        *Block
	fwdDelta   int64
	fwdUnknown bool

	// ptrLocCache records the location sets within this block that may
	// contain pointers (paper §3.3), sorted by (offset, stride) with
	// binary-search membership, so that PtrLocs is a pure read — safe
	// under concurrent readers while the owning evaluation context is
	// the only writer — and its order never depends on map iteration.
	// Callers must not mutate it.
	ptrLocCache []LocSet

	// fnBound accumulates every value this FuncPtr parameter has been
	// bound to across call sites. Function-pointer resolution follows
	// bindings through frame-local pmaps that the dependency tracker
	// cannot observe, so the engine uses growth of this set (AddFnBound)
	// as the signal that call sites which resolved through this
	// parameter must re-run. Written only by the evaluation context that
	// owns the binding site, like ptrLocs.
	fnBound ValueSet

	// id is the creation-order identity used for value-set hashing.
	id uint64
}

// blockSlab carves Block storage in chunks: analyses create blocks in
// bursts (one per local, parameter, heap site...), and slabbing turns
// per-block heap allocations into one per chunk. Blocks live for the
// analysis lifetime, so chunk sharing never extends anything. A mutex
// guards the slab: parameters can be created from parallel workers,
// but block creation is low-volume.
var (
	blockMu   sync.Mutex
	blockSlab []Block
	plSlab    []LocSet
)

// carvePtrLocs returns a zero-length, capacity-clipped LocSet slice for
// a ptrLocCache copy. Published caches are never reused, so carving from
// a shared slab is safe; big rows fall back to the heap.
func carvePtrLocs(n int) []LocSet {
	if n > 64 {
		return make([]LocSet, 0, n)
	}
	blockMu.Lock()
	if len(plSlab) < n {
		plSlab = make([]LocSet, 256)
	}
	s := plSlab[0:0:n]
	plSlab = plSlab[n:]
	blockMu.Unlock()
	return s
}

func allocBlock() *Block {
	blockMu.Lock()
	if len(blockSlab) == 0 {
		blockSlab = make([]Block, 64)
	}
	b := &blockSlab[0]
	blockSlab = blockSlab[1:]
	blockMu.Unlock()
	return b
}

// finish assigns the creation-order identity of a freshly built block.
func finish(b *Block) *Block {
	b.id = atomic.AddUint64(&blockIDs, 1)
	return b
}

// NewLocal creates a block for a local variable.
func NewLocal(sym *cast.Symbol) *Block {
	b := allocBlock()
	b.Kind, b.Name, b.Sym = LocalBlock, sym.Name, sym
	b.Size, b.Type = sym.Type.Sizeof(), sym.Type
	return finish(b)
}

// NewGlobal creates the real storage block of a global variable.
func NewGlobal(sym *cast.Symbol) *Block {
	b := allocBlock()
	b.Kind, b.Name, b.Sym = GlobalBlock, sym.Name, sym
	b.Size, b.Type = sym.Type.Sizeof(), sym.Type
	return finish(b)
}

// NewHeap creates the block for a static allocation site.
func NewHeap(site ctok.Pos) *Block {
	b := allocBlock()
	b.Kind, b.Name, b.Site = HeapBlock, fmt.Sprintf("heap@%s", site), site
	return finish(b)
}

// NewFunc creates the block representing a function value.
func NewFunc(sym *cast.Symbol) *Block {
	b := allocBlock()
	b.Kind, b.Name, b.Sym, b.Type = FuncBlock, sym.Name, sym, sym.Type
	return finish(b)
}

// NewString creates a block for a string literal.
func NewString(id int, value string) *Block {
	b := allocBlock()
	b.Kind, b.Name, b.Size = StringBlock, fmt.Sprintf("str%d", id), int64(len(value))+1
	return finish(b)
}

// NewRetval creates the special return-value block of a procedure.
func NewRetval(proc string) *Block {
	b := allocBlock()
	b.Kind, b.Name, b.Size = RetvalBlock, "<retval:"+proc+">", ctype.PointerSize
	return finish(b)
}

// NewNull creates the null pseudo-location block. Each analysis owns one
// instance (blocks carry mutable per-analysis state).
func NewNull() *Block {
	b := allocBlock()
	b.Kind, b.Name = NullBlock, "<null>"
	return finish(b)
}

// smallInts serves itoa for the common parameter indexes without the
// strconv allocation.
var smallInts = func() [64]string {
	var t [64]string
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return t
}()

func itoa(i int) string {
	if i >= 0 && i < len(smallInts) {
		return smallInts[i]
	}
	return strconv.Itoa(i)
}

// NewParam creates an extended parameter. hint names the pointer through
// which the parameter was first reached, following the paper's "1_p"
// naming convention.
func NewParam(index int, hint string) *Block {
	b := allocBlock()
	b.Kind, b.Name, b.Index = ParamBlock, itoa(index)+"_"+hint, index
	return finish(b)
}

// Unique reports whether the block denotes a single run-time memory
// object, enabling strong updates (paper §4.1): locals, globals, string
// literals and the return value always; heap blocks never; extended
// parameters unless marked NotUnique.
func (b *Block) Unique() bool {
	switch b.Kind {
	case LocalBlock, GlobalBlock, RetvalBlock, StringBlock:
		return true
	case ParamBlock:
		return !b.NotUnique
	default:
		return false
	}
}

// Subsume forwards all references of b to target with the given offset
// delta (paper Figures 6–7). unknownDelta records that the relative
// placement is unknown; references then collapse to stride 1.
func (b *Block) Subsume(target *Block, delta int64, unknownDelta bool) {
	if b == target {
		return
	}
	b.fwd = target
	b.fwdDelta = delta
	b.fwdUnknown = unknownDelta
	atomic.AddUint64(&subsumeGen, 1)
	// Pointer-location facts migrate to the subsuming block.
	moved := b.ptrLocCache
	b.ptrLocCache = nil
	for _, pl := range moved {
		ls := LocSet{Base: b, Off: pl.Off, Stride: pl.Stride}.Resolve()
		ls.Base.AddPtrLoc(ls)
	}
}

// Forwarded returns the block b currently forwards to (nil if none).
func (b *Block) Forwarded() *Block { return b.fwd }

// Representative follows the subsumption chain to the live block.
func (b *Block) Representative() *Block {
	for b.fwd != nil {
		b = b.fwd
	}
	return b
}

// AddPtrLoc records that ls (which must be based at this block's
// representative) may contain a pointer. It reports whether the fact is
// new.
func (b *Block) AddPtrLoc(ls LocSet) bool {
	rb := b.Representative()
	ls = ls.Resolve()
	if ls.Base != rb {
		// Caller passed a stale base; record on the representative.
		rb = ls.Base
	}
	nl := LocSet{Base: rb, Off: ls.Off, Stride: ls.Stride}
	old := rb.ptrLocCache
	i := sort.Search(len(old), func(i int) bool {
		if old[i].Off != nl.Off {
			return old[i].Off > nl.Off
		}
		return old[i].Stride >= nl.Stride
	})
	if i < len(old) && old[i] == nl {
		return false
	}
	if i == len(old) && cap(old) > len(old) {
		// Append into spare capacity past the published length:
		// concurrent readers hold the previous header and never look
		// beyond their own length, so filling the next slot and then
		// publishing a longer header cannot disturb them.
		old = old[: i+1 : cap(old)]
		old[i] = nl
		rb.ptrLocCache = old
		return true
	}
	// Out-of-order insert (or no spare room): publish a fresh sorted
	// copy, with slack so subsequent in-order inserts are in-place.
	next := carvePtrLocs(2*len(old) + 2)
	next = append(next, old[:i]...)
	next = append(next, nl)
	next = append(next, old[i:]...)
	rb.ptrLocCache = next
	return true
}

// PtrLocs returns the location sets within the block that may contain
// pointers, sorted by offset then stride. The caller must not mutate the
// result.
func (b *Block) PtrLocs() []LocSet {
	return b.Representative().ptrLocCache
}

// NumPtrLocs returns the number of recorded pointer locations.
func (b *Block) NumPtrLocs() int { return len(b.Representative().ptrLocCache) }

// ResetPtrLocs discards the pointer-location cache. Incremental
// re-analysis uses it on shared (global-family) blocks before replaying
// the surviving facts, so that locations written only by discarded
// contexts do not linger.
func (b *Block) ResetPtrLocs() { b.Representative().ptrLocCache = nil }

// AddFnBound accumulates values bound to this function-pointer
// parameter, reporting whether any were new. Like AddPtrLoc, only the
// evaluation context that owns the binding site may call it.
func (b *Block) AddFnBound(vals ValueSet) bool {
	return b.Representative().fnBound.AddAll(vals)
}

func (b *Block) String() string {
	if b == nil {
		return "<nil>"
	}
	return b.Name
}
