package memmod

import (
	"fmt"
	"sort"
	"sync/atomic"

	"wlpa/internal/cast"
	"wlpa/internal/ctok"
	"wlpa/internal/ctype"
)

// subsumeGen counts parameter subsumptions process-wide. Caches holding
// resolved location or value sets key their validity on it: any Subsume
// can change what Resolve returns for already-stored sets, so a stale
// generation means "re-resolve".
var subsumeGen uint64

// SubsumeGen returns the current subsumption generation.
func SubsumeGen() uint64 { return atomic.LoadUint64(&subsumeGen) }

// blockIDs hands out creation-order block identities (used for cheap
// order-independent value-set hashing; never exposed or ordered on).
var blockIDs uint64

// BlockKind classifies memory blocks.
type BlockKind int

const (
	// LocalBlock is a local variable (always a unique block).
	LocalBlock BlockKind = iota
	// ParamBlock is an extended parameter: the locations reached
	// through an input pointer at procedure entry (paper §2.2, §3.2).
	ParamBlock
	// HeapBlock groups all storage allocated at one static site
	// (never unique).
	HeapBlock
	// GlobalBlock is the real storage of a global variable, visible in
	// the outermost (main/global) name space.
	GlobalBlock
	// FuncBlock represents a function; pointers to it are function-
	// pointer values.
	FuncBlock
	// StringBlock is a string literal's storage.
	StringBlock
	// RetvalBlock is the special local holding a procedure's return
	// value (paper §3).
	RetvalBlock
	// NullBlock is the pseudo-location denoting the null pointer
	// constant. It is not real storage: dereferencing it yields nothing
	// and checkers report it as a NULL dereference. Only created when
	// the analysis runs with null tracking enabled.
	NullBlock
)

var kindNames = [...]string{"local", "param", "heap", "global", "func", "string", "retval", "null"}

func (k BlockKind) String() string { return kindNames[k] }

// Block is a block of memory.
type Block struct {
	Kind BlockKind
	Name string

	// Sym is the originating symbol for locals, globals and functions.
	Sym *cast.Symbol

	// Site is the allocation site for heap blocks.
	Site ctok.Pos

	// Size is the block size in bytes if known, else 0.
	Size int64

	// Type is the declared type if known (locals/globals).
	Type *ctype.Type

	// --- extended parameter state ---

	// Index is the creation order of the parameter within its PTF;
	// PTF matching replays initial points-to entries in this order.
	Index int

	// FuncPtr marks parameters used as call targets; their values
	// become part of the PTF input domain (paper §5.1).
	FuncPtr bool

	// NotUnique marks a parameter that may stand for several actual
	// locations at once, disabling strong updates through it (§4.1).
	NotUnique bool

	// fwd/fwdDelta implement parameter subsumption (paper §3.2,
	// Figures 6 and 7): when a parameter is subsumed, references to it
	// forward to the subsuming parameter at offset+fwdDelta.
	// fwdUnknown records that the delta is unknown, in which case
	// references become stride-1 (unknown position) in the target.
	fwd        *Block
	fwdDelta   int64
	fwdUnknown bool

	// ptrLocs records the location sets within this block that may
	// contain pointers (paper §3.3). Keyed by (offset, stride).
	ptrLocs map[offStride]bool

	// ptrLocCache is the materialized PtrLocs slice, maintained eagerly
	// (sorted by offset then stride) as AddPtrLoc records facts, so that
	// PtrLocs is a pure read — safe under concurrent readers while the
	// owning evaluation context is the only writer — and its order never
	// depends on map iteration. Callers must not mutate it.
	ptrLocCache []LocSet

	// fnBound accumulates every value this FuncPtr parameter has been
	// bound to across call sites. Function-pointer resolution follows
	// bindings through frame-local pmaps that the dependency tracker
	// cannot observe, so the engine uses growth of this set (AddFnBound)
	// as the signal that call sites which resolved through this
	// parameter must re-run. Written only by the evaluation context that
	// owns the binding site, like ptrLocs.
	fnBound ValueSet

	// id is the creation-order identity used for value-set hashing.
	id uint64
}

type offStride struct {
	off, stride int64
}

// finish assigns the creation-order identity of a freshly built block.
func finish(b *Block) *Block {
	b.id = atomic.AddUint64(&blockIDs, 1)
	return b
}

// NewLocal creates a block for a local variable.
func NewLocal(sym *cast.Symbol) *Block {
	return finish(&Block{
		Kind: LocalBlock, Name: sym.Name, Sym: sym,
		Size: sym.Type.Sizeof(), Type: sym.Type,
	})
}

// NewGlobal creates the real storage block of a global variable.
func NewGlobal(sym *cast.Symbol) *Block {
	return finish(&Block{
		Kind: GlobalBlock, Name: sym.Name, Sym: sym,
		Size: sym.Type.Sizeof(), Type: sym.Type,
	})
}

// NewHeap creates the block for a static allocation site.
func NewHeap(site ctok.Pos) *Block {
	return finish(&Block{Kind: HeapBlock, Name: fmt.Sprintf("heap@%s", site), Site: site})
}

// NewFunc creates the block representing a function value.
func NewFunc(sym *cast.Symbol) *Block {
	return finish(&Block{Kind: FuncBlock, Name: sym.Name, Sym: sym, Type: sym.Type})
}

// NewString creates a block for a string literal.
func NewString(id int, value string) *Block {
	return finish(&Block{
		Kind: StringBlock, Name: fmt.Sprintf("str%d", id),
		Size: int64(len(value)) + 1,
	})
}

// NewRetval creates the special return-value block of a procedure.
func NewRetval(proc string) *Block {
	return finish(&Block{Kind: RetvalBlock, Name: "<retval:" + proc + ">", Size: ctype.PointerSize})
}

// NewNull creates the null pseudo-location block. Each analysis owns one
// instance (blocks carry mutable per-analysis state).
func NewNull() *Block {
	return finish(&Block{Kind: NullBlock, Name: "<null>"})
}

// NewParam creates an extended parameter. hint names the pointer through
// which the parameter was first reached, following the paper's "1_p"
// naming convention.
func NewParam(index int, hint string) *Block {
	return finish(&Block{Kind: ParamBlock, Name: fmt.Sprintf("%d_%s", index, hint), Index: index})
}

// Unique reports whether the block denotes a single run-time memory
// object, enabling strong updates (paper §4.1): locals, globals, string
// literals and the return value always; heap blocks never; extended
// parameters unless marked NotUnique.
func (b *Block) Unique() bool {
	switch b.Kind {
	case LocalBlock, GlobalBlock, RetvalBlock, StringBlock:
		return true
	case ParamBlock:
		return !b.NotUnique
	default:
		return false
	}
}

// Subsume forwards all references of b to target with the given offset
// delta (paper Figures 6–7). unknownDelta records that the relative
// placement is unknown; references then collapse to stride 1.
func (b *Block) Subsume(target *Block, delta int64, unknownDelta bool) {
	if b == target {
		return
	}
	b.fwd = target
	b.fwdDelta = delta
	b.fwdUnknown = unknownDelta
	atomic.AddUint64(&subsumeGen, 1)
	// Pointer-location facts migrate to the subsuming block.
	for os := range b.ptrLocs {
		ls := LocSet{Base: b, Off: os.off, Stride: os.stride}.Resolve()
		ls.Base.AddPtrLoc(ls)
	}
	b.ptrLocs = nil
	b.ptrLocCache = nil
}

// Forwarded returns the block b currently forwards to (nil if none).
func (b *Block) Forwarded() *Block { return b.fwd }

// Representative follows the subsumption chain to the live block.
func (b *Block) Representative() *Block {
	for b.fwd != nil {
		b = b.fwd
	}
	return b
}

// AddPtrLoc records that ls (which must be based at this block's
// representative) may contain a pointer. It reports whether the fact is
// new.
func (b *Block) AddPtrLoc(ls LocSet) bool {
	rb := b.Representative()
	ls = ls.Resolve()
	if ls.Base != rb {
		// Caller passed a stale base; record on the representative.
		rb = ls.Base
	}
	if rb.ptrLocs == nil {
		rb.ptrLocs = make(map[offStride]bool)
	}
	key := offStride{ls.Off, ls.Stride}
	if rb.ptrLocs[key] {
		return false
	}
	rb.ptrLocs[key] = true
	// Keep the materialized slice sorted by (offset, stride): a fresh
	// slice is published per insertion so concurrent readers holding the
	// previous slice are unaffected.
	nl := LocSet{Base: rb, Off: ls.Off, Stride: ls.Stride}
	old := rb.ptrLocCache
	i := sort.Search(len(old), func(i int) bool {
		if old[i].Off != nl.Off {
			return old[i].Off > nl.Off
		}
		return old[i].Stride > nl.Stride
	})
	next := make([]LocSet, 0, len(old)+1)
	next = append(next, old[:i]...)
	next = append(next, nl)
	next = append(next, old[i:]...)
	rb.ptrLocCache = next
	return true
}

// PtrLocs returns the location sets within the block that may contain
// pointers, sorted by offset then stride. The caller must not mutate the
// result.
func (b *Block) PtrLocs() []LocSet {
	return b.Representative().ptrLocCache
}

// NumPtrLocs returns the number of recorded pointer locations.
func (b *Block) NumPtrLocs() int { return len(b.Representative().ptrLocs) }

// AddFnBound accumulates values bound to this function-pointer
// parameter, reporting whether any were new. Like AddPtrLoc, only the
// evaluation context that owns the binding site may call it.
func (b *Block) AddFnBound(vals ValueSet) bool {
	return b.Representative().fnBound.AddAll(vals)
}

func (b *Block) String() string {
	if b == nil {
		return "<nil>"
	}
	return b.Name
}
