package memmod

import (
	"sync"
	"sync/atomic"
)

// LocID is the compact identity of an interned location set. IDs are
// handed out per Interner in first-seen order starting at 1; 0 (NoLoc)
// is never a valid ID. IDs are meaningful only relative to the Interner
// that produced them and only for the lifetime of one analysis run —
// nothing may hold a LocID across runs.
type LocID uint32

// NoLoc is the zero LocID; no interned location set ever has it.
const NoLoc LocID = 0

// internerTags hands out process-unique identities for Interners; the
// per-Block scalar-ID cache is stamped with the owning interner's tag so
// a cached ID can never leak into a different interner (or a later run).
var internerTags uint32

// resEntry caches the subsumption-resolved ID of an interned location
// set, stamped with the subsumption generation it was computed under.
type resEntry struct {
	id  LocID
	gen uint64
}

// Interner assigns small integer identities to location sets so the hot
// maps of the points-to layer can key on 4-byte IDs instead of 24-byte
// structs, and so value sets can be represented as bitsets over IDs.
// One Interner serves one analysis run: location sets are interned in
// their exact (already canonicalized/resolved) form, and the resolution
// of each ID through parameter subsumption is computed once per
// subsumption generation and cached (ResolveID).
type Interner struct {
	// tag is this interner's process-unique identity (see internerTags).
	tag uint32

	// concurrent guards the tables with mu. Off by default; the analysis
	// turns it on when points-to functions are read from several
	// goroutines (interning happens inside their memoized lookups).
	concurrent bool
	mu         sync.Mutex

	ridx map[LocSet]LocID // exact struct -> ID
	locs []LocSet         // ID -> exact struct; index 0 unused
	res  []resEntry       // ID -> cached resolved ID + generation

	hits, misses uint64
}

// NewInterner creates an empty intern table.
func NewInterner() *Interner {
	return &Interner{
		tag:  atomic.AddUint32(&internerTags, 1),
		ridx: make(map[LocSet]LocID, 64),
		locs: make([]LocSet, 1, 64),
		res:  make([]resEntry, 1, 64),
	}
}

// SetConcurrent enables mutex protection of the tables for analyses
// that intern from several goroutines. Off by default (single-threaded
// runs pay no locking cost).
func (in *Interner) SetConcurrent(on bool) { in.concurrent = on }

// ExactID interns l in its exact form, without resolving it first. The
// caller must have resolved/canonicalized l already (Loc/Resolve do);
// interning a stale form is harmless — it simply gets its own ID, which
// is exactly how the sparse representation treats distinct stored forms.
func (in *Interner) ExactID(l LocSet) LocID {
	if l.Off == 0 && l.Stride == 0 {
		// Fast path: whole-block scalar locations dominate, and their ID
		// is cached on the block itself (tagged with the interner so it
		// cannot leak across interners or runs) — one atomic load
		// instead of a map probe.
		if v := l.Base.scalarID.Load(); uint32(v>>32) == in.tag {
			return LocID(uint32(v))
		}
		id := in.exactIDSlow(l)
		l.Base.scalarID.Store(uint64(in.tag)<<32 | uint64(id))
		return id
	}
	return in.exactIDSlow(l)
}

func (in *Interner) exactIDSlow(l LocSet) LocID {
	if in.concurrent {
		in.mu.Lock()
		defer in.mu.Unlock()
	}
	if id, ok := in.ridx[l]; ok {
		in.hits++
		return id
	}
	in.misses++
	id := LocID(len(in.locs))
	in.locs = append(in.locs, l)
	in.res = append(in.res, resEntry{})
	in.ridx[l] = id
	return id
}

// ID interns the resolved form of l and returns its identity: the
// canonical entry point for callers holding an arbitrary location set.
func (in *Interner) ID(l LocSet) LocID { return in.ExactID(l.Resolve()) }

// Loc returns the exact location set interned under id.
func (in *Interner) Loc(id LocID) LocSet {
	if in.concurrent {
		in.mu.Lock()
		defer in.mu.Unlock()
	}
	return in.locs[id]
}

// ResolveID returns the ID of id's location set resolved through
// parameter subsumption, computing it at most once per subsumption
// generation. While no subsumption intervenes this is a stamped cache
// hit with no Resolve walk at all.
func (in *Interner) ResolveID(id LocID) LocID {
	g := SubsumeGen()
	if in.concurrent {
		in.mu.Lock()
		defer in.mu.Unlock()
	}
	if e := in.res[id]; e.id != NoLoc && e.gen == g {
		return e.id
	}
	l := in.locs[id].Resolve()
	rid, ok := in.ridx[l]
	if !ok {
		rid = LocID(len(in.locs))
		in.locs = append(in.locs, l)
		in.res = append(in.res, resEntry{})
		in.ridx[l] = rid
	}
	in.res[id] = resEntry{id: rid, gen: g}
	return rid
}

// NumInterned returns the number of distinct location sets interned.
func (in *Interner) NumInterned() int {
	if in.concurrent {
		in.mu.Lock()
		defer in.mu.Unlock()
	}
	return len(in.locs) - 1
}

// Stats returns the intern hit/miss counters (for benchmarks).
func (in *Interner) Stats() (hits, misses uint64) {
	if in.concurrent {
		in.mu.Lock()
		defer in.mu.Unlock()
	}
	return in.hits, in.misses
}
