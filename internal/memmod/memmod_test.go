package memmod

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wlpa/internal/cast"
	"wlpa/internal/ctok"
	"wlpa/internal/ctype"
)

func localBlock(name string, t *ctype.Type) *Block {
	return NewLocal(&cast.Symbol{Kind: cast.SymVar, Name: name, Type: t})
}

func TestBlockKinds(t *testing.T) {
	l := localBlock("x", ctype.IntType)
	if l.Kind != LocalBlock || !l.Unique() || l.Size != 4 {
		t.Errorf("local: %+v", l)
	}
	h := NewHeap(ctok.Pos{File: "a.c", Line: 3, Col: 1})
	if h.Kind != HeapBlock || h.Unique() {
		t.Error("heap blocks are never unique")
	}
	p := NewParam(1, "p")
	if p.Kind != ParamBlock || !p.Unique() || p.Name != "1_p" {
		t.Errorf("param: %+v", p)
	}
	p.NotUnique = true
	if p.Unique() {
		t.Error("NotUnique param must not be unique")
	}
	g := NewGlobal(&cast.Symbol{Name: "g", Type: ctype.IntType, Global: true})
	if g.Kind != GlobalBlock || !g.Unique() {
		t.Error("global block")
	}
}

func TestLocCanonicalization(t *testing.T) {
	b := localBlock("a", ctype.ArrayOf(ctype.IntType, 8))
	// Offset is reduced modulo the stride.
	l := Loc(b, 13, 4)
	if l.Off != 1 || l.Stride != 4 {
		t.Errorf("Loc(13,4) = %v", l)
	}
	// Negative offsets with non-zero stride wrap.
	l = Loc(b, -3, 4)
	if l.Off != 1 {
		t.Errorf("Loc(-3,4) = %v", l)
	}
	// Negative offset with stride 0 is preserved (Figure 7).
	l = Loc(b, -8, 0)
	if l.Off != -8 || l.Stride != 0 {
		t.Errorf("Loc(-8,0) = %v", l)
	}
}

func TestOverlap(t *testing.T) {
	b := localBlock("s", ctype.ArrayOf(ctype.IntType, 8))
	c := localBlock("t", ctype.ArrayOf(ctype.IntType, 8))
	cases := []struct {
		a, b LocSet
		want bool
	}{
		{Loc(b, 0, 0), Loc(b, 0, 0), true},
		{Loc(b, 0, 0), Loc(b, 4, 0), false},
		{Loc(b, 0, 0), Loc(c, 0, 0), false}, // different blocks
		{Loc(b, 0, 4), Loc(b, 8, 0), true},  // array elem vs field in range
		{Loc(b, 0, 4), Loc(b, 2, 0), false}, // misaligned scalar
		{Loc(b, 0, 4), Loc(b, 2, 4), false}, // interleaved strides
		{Loc(b, 0, 4), Loc(b, 6, 4), false}, // offsets differ mod gcd=4? 0 vs 2 -> no
		{Loc(b, 0, 4), Loc(b, 4, 6), true},  // gcd 2: 0 vs 4 ≡ 0 mod 2
		{Loc(b, 0, 1), Loc(b, 7, 0), true},  // unknown position overlaps all
		{Loc(b, 3, 0), Loc(b, 3, 0), true},
	}
	for _, cse := range cases {
		if got := cse.a.Overlaps(cse.b); got != cse.want {
			t.Errorf("%v overlaps %v = %v, want %v", cse.a, cse.b, got, cse.want)
		}
		if got := cse.b.Overlaps(cse.a); got != cse.want {
			t.Errorf("overlap not symmetric for %v, %v", cse.a, cse.b)
		}
	}
}

func TestContains(t *testing.T) {
	b := localBlock("s", ctype.ArrayOf(ctype.IntType, 8))
	if !Loc(b, 0, 4).Contains(Loc(b, 8, 0)) {
		t.Error("stride-4 contains aligned scalar")
	}
	if Loc(b, 0, 4).Contains(Loc(b, 2, 0)) {
		t.Error("stride-4 must not contain misaligned scalar")
	}
	if !Loc(b, 0, 1).Contains(Loc(b, 5, 3)) {
		t.Error("stride-1 contains everything")
	}
	if Loc(b, 0, 8).Contains(Loc(b, 0, 4)) {
		t.Error("coarser stride cannot contain finer stride")
	}
	if !Loc(b, 0, 4).Contains(Loc(b, 0, 8)) {
		t.Error("finer stride contains coarser multiples")
	}
}

func TestPreciseAndStrongUpdates(t *testing.T) {
	l := localBlock("x", ctype.IntType)
	if !Loc(l, 0, 0).Precise() {
		t.Error("scalar local is precise")
	}
	if Loc(l, 0, 4).Precise() {
		t.Error("strided locset is not precise")
	}
	h := NewHeap(ctok.Pos{Line: 1})
	if Loc(h, 0, 0).Precise() {
		t.Error("heap is never precise")
	}
}

func TestSubsumption(t *testing.T) {
	p1 := NewParam(1, "a")
	p2 := NewParam(2, "b")
	// p1 is subsumed by p2 at delta 8 (Figure 7: field before struct).
	p1.Subsume(p2, 8, false)
	got := Loc(p1, 0, 0).Resolve()
	if got.Base != p2 || got.Off != 8 {
		t.Errorf("resolve = %v", got)
	}
	got = Loc(p1, -8, 0).Resolve()
	if got.Base != p2 || got.Off != 0 {
		t.Errorf("resolve(-8) = %v", got)
	}
	if p1.Representative() != p2 {
		t.Error("representative")
	}
	// Chained subsumption.
	p3 := NewParam(3, "c")
	p2.Subsume(p3, 4, false)
	got = Loc(p1, 0, 0).Resolve()
	if got.Base != p3 || got.Off != 12 {
		t.Errorf("chained resolve = %v", got)
	}
}

func TestSubsumptionUnknownDelta(t *testing.T) {
	p1 := NewParam(1, "a")
	p2 := NewParam(2, "b")
	p1.Subsume(p2, 0, true)
	got := Loc(p1, 16, 0).Resolve()
	if got.Base != p2 || got.Stride != 1 {
		t.Errorf("unknown-delta resolve = %v, want stride-1", got)
	}
}

func TestSubsumptionMigratesPtrLocs(t *testing.T) {
	p1 := NewParam(1, "a")
	p2 := NewParam(2, "b")
	p1.AddPtrLoc(Loc(p1, 8, 0))
	p1.Subsume(p2, 4, false)
	found := false
	for _, ls := range p2.PtrLocs() {
		if ls.Off == 12 {
			found = true
		}
	}
	if !found {
		t.Errorf("ptr locs after subsume: %v", p2.PtrLocs())
	}
}

func TestPtrLocs(t *testing.T) {
	b := localBlock("s", ctype.ArrayOf(ctype.PointerTo(ctype.IntType), 4))
	if !b.AddPtrLoc(Loc(b, 0, 8)) {
		t.Error("first add should be new")
	}
	if b.AddPtrLoc(Loc(b, 0, 8)) {
		t.Error("second add should not be new")
	}
	b.AddPtrLoc(Loc(b, 4, 0))
	if b.NumPtrLocs() != 2 {
		t.Errorf("NumPtrLocs = %d", b.NumPtrLocs())
	}
}

func TestValueSetBasics(t *testing.T) {
	b := localBlock("x", ctype.IntType)
	c := localBlock("y", ctype.IntType)
	var v ValueSet
	if !v.IsEmpty() {
		t.Error("zero value should be empty")
	}
	if !v.Add(Loc(b, 0, 0)) || v.Add(Loc(b, 0, 0)) {
		t.Error("Add dedup")
	}
	v.Add(Loc(c, 4, 0))
	if v.Len() != 2 || !v.Has(Loc(b, 0, 0)) || v.Has(Loc(c, 0, 0)) {
		t.Errorf("set = %v", v)
	}
	w := v.Clone()
	w.Add(Loc(c, 8, 0))
	if v.Len() != 2 {
		t.Error("Clone must be independent")
	}
	if !v.Equal(Values(Loc(c, 4, 0), Loc(b, 0, 0))) {
		t.Error("Equal is order-independent")
	}
}

func TestValueSetShiftAndStride(t *testing.T) {
	b := localBlock("arr", ctype.ArrayOf(ctype.IntType, 8))
	v := Values(Loc(b, 0, 0))
	s := v.Shift(8)
	if !s.Has(Loc(b, 8, 0)) {
		t.Errorf("Shift = %v", s)
	}
	w := v.WithStride(4)
	if !w.Has(Loc(b, 0, 4)) {
		t.Errorf("WithStride = %v", w)
	}
	// Widening an already-strided set takes the gcd.
	g := Values(Loc(b, 0, 8)).WithStride(12)
	if !g.Has(Loc(b, 0, 4)) {
		t.Errorf("gcd stride = %v", g)
	}
}

// ---- property-based tests ----

func randLoc(r *rand.Rand, blocks []*Block) LocSet {
	b := blocks[r.Intn(len(blocks))]
	stride := []int64{0, 0, 0, 1, 2, 4, 8, 12}[r.Intn(8)]
	off := int64(r.Intn(64)) - 16
	return Loc(b, off, stride)
}

func propBlocks() []*Block {
	return []*Block{
		localBlock("a", ctype.ArrayOf(ctype.IntType, 16)),
		localBlock("b", ctype.ArrayOf(ctype.IntType, 16)),
		NewHeap(ctok.Pos{Line: 9}),
	}
}

func TestOverlapSymmetryProperty(t *testing.T) {
	blocks := propBlocks()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randLoc(r, blocks), randLoc(r, blocks)
		return x.Overlaps(y) == y.Overlaps(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOverlapReflexiveProperty(t *testing.T) {
	blocks := propBlocks()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randLoc(r, blocks)
		return x.Overlaps(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContainsImpliesOverlapProperty(t *testing.T) {
	blocks := propBlocks()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randLoc(r, blocks), randLoc(r, blocks)
		if x.Contains(y) {
			return x.Overlaps(y)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestContainsConcreteSemanticsProperty(t *testing.T) {
	// Check Contains/Overlaps against a brute-force enumeration of
	// positions within a bounded window.
	blocks := propBlocks()
	positions := func(l LocSet) map[int64]bool {
		m := make(map[int64]bool)
		if l.Stride == 0 {
			m[l.Off] = true
			return m
		}
		for p := int64(-64); p <= 64; p++ {
			if mod(p-l.Off, l.Stride) == 0 {
				m[p] = true
			}
		}
		return m
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randLoc(r, blocks), randLoc(r, blocks)
		if x.Base != y.Base {
			return !x.Overlaps(y) && !x.Contains(y)
		}
		px, py := positions(x), positions(y)
		inter := false
		for p := range px {
			if py[p] {
				inter = true
				break
			}
		}
		if inter != x.Overlaps(y) {
			// The window may truncate infinite sets only when both
			// have strides; re-check analytically in that case.
			if x.Stride != 0 && y.Stride != 0 {
				return true
			}
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValueSetAddAllIdempotentProperty(t *testing.T) {
	blocks := propBlocks()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var v ValueSet
		for i := 0; i < r.Intn(8); i++ {
			v.Add(randLoc(r, blocks))
		}
		w := v.Clone()
		if w.AddAll(v) {
			return false // adding itself must not change it
		}
		return w.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResolveIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p1, p2, p3 := NewParam(1, "a"), NewParam(2, "b"), NewParam(3, "c")
		p1.Subsume(p2, int64(r.Intn(16)-8), r.Intn(4) == 0)
		p2.Subsume(p3, int64(r.Intn(16)-8), r.Intn(4) == 0)
		l := Loc(p1, int64(r.Intn(32)-8), []int64{0, 0, 4}[r.Intn(3)])
		once := l.Resolve()
		return once.Resolve() == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
