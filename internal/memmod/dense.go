package memmod

// Dense row indexes. Large stored points-to rows get a bitset over
// interned location IDs attached (see ptset.Record): membership tests
// and unions then run on bits instead of linear scans over the members.
// The index lives NEXT TO the row's ValueSet rather than inside it —
// ValueSet stays a 4-word struct that is copied by value throughout the
// evaluation engine, and only the stored rows (a tiny fraction of all
// sets) pay for the index.

// DenseThreshold is the member count at which a stored row grows a
// dense index. Below it a linear scan over the members beats touching
// a second cache line; rows at or past it get bit-test membership.
const DenseThreshold = 16

// RowBits is a dense bitset index over one stored row's members, keyed
// by the interned IDs of the exact stored forms. The bits mirror the
// sparse representation's semantics precisely: sparse Add deduplicates
// by struct equality on the stored (resolved-at-insert) form, and the
// intern table assigns one ID per exact form, so bit membership and
// linear-scan membership agree even when members go stale under later
// parameter subsumption.
//
// A RowBits is owned by exactly one record and mutated only under the
// points-to layer's single-writer discipline; readers of the row get a
// ValueSet view that never touches the index.
type RowBits struct {
	in    *Interner
	words []uint64
}

// NewRowBits builds the index over v's current members.
func NewRowBits(in *Interner, v ValueSet) *RowBits {
	b := &RowBits{in: in}
	for _, l := range v.locs {
		b.set(in.ExactID(l))
	}
	return b
}

// Has reports whether the ID's bit is set.
func (b *RowBits) Has(id LocID) bool {
	w := uint(id) / 64
	return w < uint(len(b.words)) && b.words[w]&(1<<(uint(id)%64)) != 0
}

func (b *RowBits) set(id LocID) {
	w := uint(id) / 64
	for uint(len(b.words)) <= w {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (uint(id) % 64)
}

// Add inserts l's resolved form into both the row set and the index,
// reporting whether it was new.
func (b *RowBits) Add(v *ValueSet, l LocSet) bool {
	l = l.Resolve()
	id := b.in.ExactID(l)
	if b.Has(id) {
		return false
	}
	b.set(id)
	v.locs = append(v.locs, l)
	v.hash ^= hashLoc(l)
	return true
}

// UnionInto unions o into the row set v using the index for membership,
// reporting whether anything was new. v must be the set the index was
// built over.
func (b *RowBits) UnionInto(v *ValueSet, o ValueSet) bool {
	changed := false
	for _, l := range o.Locs() {
		if b.Add(v, l) {
			changed = true
		}
	}
	return changed
}
