package memmod

import "fmt"

// LocSet is a location set (paper §3.1): the set of byte positions
// {Off + i*Stride | i ∈ Z} within Base. Stride 0 denotes the single
// position Off; stride 1 denotes every position in the block (entirely
// unknown position). Offsets are reduced modulo the stride when the
// stride is non-zero, which also encodes the paper's rule that an array
// nested in a structure overlaps the entire structure. Offsets may be
// negative when the stride is 0 (paper Figure 7).
type LocSet struct {
	Base   *Block
	Off    int64
	Stride int64
}

// Loc constructs a canonical location set.
func Loc(base *Block, off, stride int64) LocSet {
	return LocSet{Base: base, Off: off, Stride: stride}.canon()
}

func (l LocSet) canon() LocSet {
	if l.Stride == 0 {
		// Fast path: scalar positions need no reduction.
		return l
	}
	if l.Stride < 0 {
		l.Stride = -l.Stride
	}
	if l.Off < 0 || l.Off >= l.Stride {
		l.Off = ((l.Off % l.Stride) + l.Stride) % l.Stride
	}
	return l
}

// Resolve follows parameter subsumption forwarding on the base block,
// adjusting the offset by the recorded delta. When the delta is unknown
// the result has stride 1 (fully unknown position).
func (l LocSet) Resolve() LocSet {
	if l.Base.fwd == nil {
		// Fast path: unforwarded bases only need canonicalization.
		return l.canon()
	}
	for l.Base.fwd != nil {
		if l.Base.fwdUnknown {
			l = LocSet{Base: l.Base.fwd, Off: 0, Stride: 1}
		} else {
			l = LocSet{Base: l.Base.fwd, Off: l.Off + l.Base.fwdDelta, Stride: l.Stride}.canon()
		}
	}
	return l.canon()
}

// Shift returns the location set displaced by delta bytes.
func (l LocSet) Shift(delta int64) LocSet {
	return LocSet{Base: l.Base, Off: l.Off + delta, Stride: l.Stride}.canon()
}

// WithStride returns the location set widened to the given stride (the
// offset is re-canonicalized). Used for pointer arithmetic: adding an
// unknown multiple of stride s to a pointer.
func (l LocSet) WithStride(s int64) LocSet {
	if s == 0 {
		return l
	}
	ns := gcd64(l.Stride, s)
	return LocSet{Base: l.Base, Off: l.Off, Stride: ns}.canon()
}

// Unknown returns the fully-unknown-position location set of the base.
func (l LocSet) Unknown() LocSet { return LocSet{Base: l.Base, Off: 0, Stride: 1} }

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return b
	}
	return a
}

// Overlaps reports whether two location sets may denote a common byte
// position: same base and non-empty intersection of their arithmetic
// position sets.
func (l LocSet) Overlaps(o LocSet) bool {
	if l.Base.Representative() != o.Base.Representative() {
		return false
	}
	l, o = l.Resolve(), o.Resolve()
	switch {
	case l.Stride == 0 && o.Stride == 0:
		return l.Off == o.Off
	case l.Stride == 0:
		return mod(l.Off-o.Off, o.Stride) == 0
	case o.Stride == 0:
		return mod(o.Off-l.Off, l.Stride) == 0
	default:
		g := gcd64(l.Stride, o.Stride)
		return mod(l.Off-o.Off, g) == 0
	}
}

// Contains reports whether every position of o is a position of l
// (assuming the same base).
func (l LocSet) Contains(o LocSet) bool {
	if l.Base.Representative() != o.Base.Representative() {
		return false
	}
	l, o = l.Resolve(), o.Resolve()
	if l.Stride == 0 {
		return o.Stride == 0 && o.Off == l.Off
	}
	if mod(o.Off-l.Off, l.Stride) != 0 {
		return false
	}
	if o.Stride == 0 {
		return true
	}
	return o.Stride%l.Stride == 0
}

func mod(a, m int64) int64 {
	if m == 0 {
		return a
	}
	return ((a % m) + m) % m
}

// Precise reports whether the location set denotes a single known
// position of a unique block, permitting strong updates (paper §4.1).
func (l LocSet) Precise() bool {
	l = l.Resolve()
	return l.Stride == 0 && l.Base.Unique()
}

func (l LocSet) String() string {
	l = l.Resolve()
	switch {
	case l.Off == 0 && l.Stride == 0:
		return l.Base.Name
	case l.Stride == 0:
		return fmt.Sprintf("%s+%d", l.Base.Name, l.Off)
	default:
		return fmt.Sprintf("%s+%d%%%d", l.Base.Name, l.Off, l.Stride)
	}
}

// ValueSet is a set of location sets: the possible values of a pointer.
// The zero value is the empty set. ValueSets are small in practice
// (pointers typically have only a few possible values; paper §4.2), so a
// slice with linear membership tests beats a map. Members are stored
// resolved (see Add); an order-independent hash of the members is kept
// incrementally so set comparisons can reject mismatches without
// re-comparing element-wise.
type ValueSet struct {
	locs []LocSet
	hash uint64
}

// hashLoc mixes a location set into a 64-bit fingerprint (SplitMix64 on
// the block identity and position). Hashes are combined by XOR, making
// the set hash independent of insertion order.
func hashLoc(l LocSet) uint64 {
	z := l.Base.id ^ uint64(l.Off)*0x9e3779b97f4a7c15 ^ uint64(l.Stride)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Fingerprint returns an order-independent 64-bit digest of the set:
// the incremental member hash folded with the length. Equal sets always
// share a fingerprint; distinct sets collide only with ordinary 64-bit
// probability, which memoizing callers accept.
func (v ValueSet) Fingerprint() uint64 {
	return v.hash ^ uint64(len(v.locs))*0x9e3779b97f4a7c15
}

// Fingerprint returns the location set's identity digest (block
// identity, offset and stride).
func (l LocSet) Fingerprint() uint64 { return hashLoc(l) }

// allResolved reports whether every member is still its own resolved
// form (no base has been subsumed since insertion).
func (v ValueSet) allResolved() bool {
	for _, l := range v.locs {
		if l.Base.fwd != nil {
			return false
		}
	}
	return true
}

// Values constructs a ValueSet from the given members.
func Values(ls ...LocSet) ValueSet {
	var v ValueSet
	for _, l := range ls {
		v.Add(l)
	}
	return v
}

// Add inserts l (resolved) and reports whether it was new.
func (v *ValueSet) Add(l LocSet) bool {
	l = l.Resolve()
	for _, e := range v.locs {
		if e == l {
			return false
		}
	}
	v.locs = append(v.locs, l)
	v.hash ^= hashLoc(l)
	return true
}

// AddAll inserts every member of o and reports whether anything was new.
func (v *ValueSet) AddAll(o ValueSet) bool {
	// Pre-grow once to the union's upper bound instead of paying a
	// doubling chain of reallocations inside Add.
	if n := len(o.locs); n > 0 && cap(v.locs)-len(v.locs) < n {
		need := len(v.locs) + n
		if c := 2 * cap(v.locs); c > need {
			// Keep doubling for sets that union repeatedly, so a chain
			// of AddAlls stays amortized-constant per element.
			need = c
		}
		nl := make([]LocSet, len(v.locs), need)
		copy(nl, v.locs)
		v.locs = nl
	}
	changed := false
	for _, l := range o.locs {
		if v.Add(l) {
			changed = true
		}
	}
	return changed
}

// Has reports whether l is a member (after resolution).
func (v ValueSet) Has(l LocSet) bool {
	l = l.Resolve()
	for _, e := range v.locs {
		if e.Resolve() == l {
			return true
		}
	}
	return false
}

// Len returns the number of members.
func (v ValueSet) Len() int { return len(v.locs) }

// IsEmpty reports whether the set is empty.
func (v ValueSet) IsEmpty() bool { return len(v.locs) == 0 }

// Locs returns the members. The caller must not mutate the result.
func (v ValueSet) Locs() []LocSet { return v.locs }

// Resolved returns the set with all members resolved through subsumption
// forwarding (deduplicated). When no member's base has been subsumed the
// receiver is returned as-is (capacity-clipped so appends by the caller
// cannot write into shared backing storage) — the common case, with no
// allocation.
func (v ValueSet) Resolved() ValueSet {
	if v.allResolved() {
		return ValueSet{locs: v.locs[:len(v.locs):len(v.locs)], hash: v.hash}
	}
	var out ValueSet
	for _, l := range v.locs {
		out.Add(l)
	}
	return out
}

// CloneInto copies the set into dst, which must have length Len() (its
// capacity should be clipped to it: growth must not overwrite whatever
// follows in a shared slab).
func (v ValueSet) CloneInto(dst []LocSet) ValueSet {
	copy(dst, v.locs)
	return ValueSet{locs: dst, hash: v.hash}
}

// Clone returns an independent copy. A dense index is carried over by
// pointer: its words are immutable (copy-on-write), so sharing is safe.
func (v ValueSet) Clone() ValueSet {
	out := ValueSet{locs: make([]LocSet, len(v.locs)), hash: v.hash}
	copy(out.locs, v.locs)
	return out
}

// Shift returns the set with every member displaced by delta.
func (v ValueSet) Shift(delta int64) ValueSet {
	if delta == 0 {
		// Identity: shifting by zero only re-resolves the members.
		return v.Resolved()
	}
	var out ValueSet
	for _, l := range v.locs {
		out.Add(l.Shift(delta))
	}
	return out
}

// WithStride returns the set with every member widened by stride s.
func (v ValueSet) WithStride(s int64) ValueSet {
	var out ValueSet
	for _, l := range v.locs {
		out.Add(l.WithStride(s))
	}
	return out
}

// Equal reports whether two value sets have the same resolved members.
// When both sets are fully resolved the cached hashes reject mismatches
// in O(1) and confirmation compares members directly, with no allocation.
func (v ValueSet) Equal(o ValueSet) bool {
	if v.allResolved() && o.allResolved() {
		if len(v.locs) != len(o.locs) || v.hash != o.hash {
			return false
		}
	outer:
		for _, l := range v.locs {
			for _, e := range o.locs {
				if e == l {
					continue outer
				}
			}
			return false
		}
		return true
	}
	a, b := v.Resolved(), o.Resolved()
	if len(a.locs) != len(b.locs) {
		return false
	}
	for _, l := range a.locs {
		if !b.Has(l) {
			return false
		}
	}
	return true
}

func (v ValueSet) String() string {
	if len(v.locs) == 0 {
		return "{}"
	}
	s := "{"
	for i, l := range v.locs {
		if i > 0 {
			s += ", "
		}
		s += l.String()
	}
	return s + "}"
}
