// Package memmod implements the low-level memory representation of the
// Wilson–Lam analysis (paper §3): memory is divided into blocks of
// contiguous storage whose relative positions are undefined, and
// positions within a block are named by location sets (base, offset,
// stride). A location set {b, f, s} names the bytes f + i*s of block b
// for every integer i, so a scalar is {b, f, 0}, an array element
// visited in a loop is {b, f, elemsize}, and a position that has been
// widened to "unknown" is {b, 0, 1}.
//
// A block is a local variable, a heap block named by its static
// allocation site, an extended parameter (including globals viewed from
// inside a procedure), the real storage of a global at the outermost
// frame, a function (for function-pointer values), or a string literal.
//
// Invariants the rest of the analysis relies on:
//
//   - Blocks are interned identities: two location sets refer to the
//     same storage only if their bases' representatives are pointer-
//     equal. Comparing names is never authoritative.
//   - Parameter subsumption (paper §5.3) merges extended parameters
//     that turn out to alias; Representative() follows the forwarding
//     chain to the surviving block, and every lookup resolves through
//     it. Subsumption only ever merges — a forwarding link is never
//     undone — so resolution is monotone.
//   - ValueSet and LocSet are value types with set semantics; merging
//     is commutative and idempotent, which the worklist engine (and
//     the parallel scheduler's deterministic epoch commits) depend on.
//   - Read paths are safe for concurrent readers once a block graph is
//     marked concurrent (SetConcurrent); all mutation is confined to
//     the owning evaluation context.
package memmod
