package cparse

import (
	"testing"

	"wlpa/internal/cast"
	"wlpa/internal/cpp"
	"wlpa/internal/ctype"
)

func parse(t *testing.T, src string) *cast.File {
	t.Helper()
	f, err := ParseSource("t.c", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return f
}

func mustFail(t *testing.T, src string) {
	t.Helper()
	if _, err := ParseSource("t.c", src); err == nil {
		t.Errorf("expected parse error for %q", src)
	}
}

func funcDecl(t *testing.T, f *cast.File, name string) *cast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Name == name {
			return fd
		}
	}
	t.Fatalf("function %q not found", name)
	return nil
}

func varDecl(t *testing.T, f *cast.File, name string) *cast.VarDecl {
	t.Helper()
	for _, d := range f.Decls {
		if vd, ok := d.(*cast.VarDecl); ok && vd.Name == name {
			return vd
		}
	}
	t.Fatalf("variable %q not found", name)
	return nil
}

func TestSimpleGlobal(t *testing.T) {
	f := parse(t, "int x;")
	d := varDecl(t, f, "x")
	if !ctype.Equal(d.Type, ctype.IntType) {
		t.Errorf("type = %s", d.Type)
	}
}

func TestMultiDeclarator(t *testing.T) {
	f := parse(t, "int a, *b, c[4], (*fp)(int);")
	if !ctype.Equal(varDecl(t, f, "a").Type, ctype.IntType) {
		t.Error("a should be int")
	}
	if b := varDecl(t, f, "b").Type; b.Kind != ctype.Pointer || !ctype.Equal(b.Elem, ctype.IntType) {
		t.Errorf("b = %s, want int*", b)
	}
	if c := varDecl(t, f, "c").Type; c.Kind != ctype.Array || c.Len != 4 {
		t.Errorf("c = %s, want int[4]", c)
	}
	fp := varDecl(t, f, "fp").Type
	if fp.Kind != ctype.Pointer || fp.Elem.Kind != ctype.Func {
		t.Errorf("fp = %s, want int(*)(int)", fp)
	}
}

func TestPointerToPointer(t *testing.T) {
	f := parse(t, "char **argv;")
	ty := varDecl(t, f, "argv").Type
	if ty.Kind != ctype.Pointer || ty.Elem.Kind != ctype.Pointer ||
		!ctype.Equal(ty.Elem.Elem, ctype.CharType) {
		t.Errorf("argv = %s", ty)
	}
}

func TestFunctionDefinition(t *testing.T) {
	f := parse(t, "int add(int a, int b) { return a + b; }")
	fd := funcDecl(t, f, "add")
	if fd.Body == nil {
		t.Fatal("body missing")
	}
	if len(fd.Params) != 2 || fd.Params[0].Name != "a" || fd.Params[1].Name != "b" {
		t.Errorf("params = %+v", fd.Params)
	}
	if !ctype.Equal(fd.Type.Ret, ctype.IntType) {
		t.Errorf("return type = %s", fd.Type.Ret)
	}
}

func TestVoidParams(t *testing.T) {
	f := parse(t, "int f(void) { return 0; }")
	fd := funcDecl(t, f, "f")
	if len(fd.Type.Params) != 0 {
		t.Errorf("params = %v", fd.Type.Params)
	}
}

func TestVariadicPrototype(t *testing.T) {
	f := parse(t, "int printf(const char *fmt, ...);")
	d := varDecl(t, f, "printf")
	if d.Type.Kind != ctype.Func || !d.Type.Variadic {
		t.Errorf("printf type = %s", d.Type)
	}
}

func TestArrayParamDecays(t *testing.T) {
	f := parse(t, "int sum(int a[], int n) { return 0; }")
	fd := funcDecl(t, f, "sum")
	if fd.Type.Params[0].Kind != ctype.Pointer {
		t.Errorf("array param should decay to pointer, got %s", fd.Type.Params[0])
	}
}

func TestStructDefinition(t *testing.T) {
	f := parse(t, `
struct point { int x; int y; };
struct point origin;`)
	d := varDecl(t, f, "origin")
	if d.Type.Kind != ctype.Struct || d.Type.Tag != "point" {
		t.Fatalf("type = %s", d.Type)
	}
	if d.Type.FieldByName("y").Offset != 4 {
		t.Errorf("y offset = %d", d.Type.FieldByName("y").Offset)
	}
}

func TestSelfReferentialStruct(t *testing.T) {
	f := parse(t, "struct node { struct node *next; int val; } head;")
	d := varDecl(t, f, "head")
	next := d.Type.FieldByName("next")
	if next == nil || next.Type.Kind != ctype.Pointer || next.Type.Elem != d.Type {
		t.Errorf("next = %+v", next)
	}
	if d.Type.Size != 16 {
		t.Errorf("size = %d, want 16", d.Type.Size)
	}
}

func TestUnion(t *testing.T) {
	f := parse(t, "union u { int i; char *p; double d; } v;")
	d := varDecl(t, f, "v")
	if !d.Type.IsUnion || d.Type.Size != 8 {
		t.Errorf("union: %s size %d", d.Type, d.Type.Size)
	}
}

func TestTypedef(t *testing.T) {
	f := parse(t, `
typedef unsigned long size_t;
typedef struct list { struct list *next; } List;
size_t n;
List *head;`)
	if !ctype.Equal(varDecl(t, f, "n").Type, ctype.ULongType) {
		t.Errorf("n = %s", varDecl(t, f, "n").Type)
	}
	h := varDecl(t, f, "head").Type
	if h.Kind != ctype.Pointer || h.Elem.Tag != "list" {
		t.Errorf("head = %s", h)
	}
}

func TestEnum(t *testing.T) {
	f := parse(t, `
enum color { RED, GREEN = 5, BLUE };
int x[BLUE];`)
	d := varDecl(t, f, "x")
	if d.Type.Len != 6 {
		t.Errorf("BLUE should be 6, array len = %d", d.Type.Len)
	}
}

func TestInitializers(t *testing.T) {
	f := parse(t, `
int a = 3;
int arr[] = {1, 2, 3, 4};
char msg[] = "hi";
int *p = &a;`)
	if varDecl(t, f, "arr").Type.Len != 4 {
		t.Errorf("arr len = %d", varDecl(t, f, "arr").Type.Len)
	}
	if varDecl(t, f, "msg").Type.Len != 3 { // "hi" + NUL
		t.Errorf("msg len = %d", varDecl(t, f, "msg").Type.Len)
	}
	if _, ok := varDecl(t, f, "p").Init.(*cast.Unary); !ok {
		t.Errorf("p init = %T", varDecl(t, f, "p").Init)
	}
}

func TestControlFlowStatements(t *testing.T) {
	src := `
int f(int n) {
    int i, s = 0;
    for (i = 0; i < n; i++) s += i;
    while (s > 100) s -= 10;
    do { s++; } while (s < 0);
    if (s == 7) return 1; else return 0;
}`
	fd := funcDecl(t, parse(t, src), "f")
	kinds := map[string]bool{}
	var walk func(s cast.Stmt)
	walk = func(s cast.Stmt) {
		switch s := s.(type) {
		case *cast.BlockStmt:
			kinds["block"] = true
			for _, it := range s.Items {
				if it.Stmt != nil {
					walk(it.Stmt)
				}
			}
		case *cast.ForStmt:
			kinds["for"] = true
			walk(s.Body)
		case *cast.WhileStmt:
			kinds["while"] = true
			walk(s.Body)
		case *cast.DoWhileStmt:
			kinds["do"] = true
			walk(s.Body)
		case *cast.IfStmt:
			kinds["if"] = true
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *cast.ReturnStmt:
			kinds["return"] = true
		}
	}
	walk(fd.Body)
	for _, k := range []string{"block", "for", "while", "do", "if", "return"} {
		if !kinds[k] {
			t.Errorf("missing statement kind %q", k)
		}
	}
}

func TestSwitch(t *testing.T) {
	src := `
int f(int c) {
    switch (c) {
    case 1: return 10;
    case 2:
    case 3: return 20;
    default: break;
    }
    return 0;
}`
	fd := funcDecl(t, parse(t, src), "f")
	var found *cast.SwitchStmt
	for _, it := range fd.Body.Items {
		if sw, ok := it.Stmt.(*cast.SwitchStmt); ok {
			found = sw
		}
	}
	if found == nil {
		t.Fatal("switch not parsed")
	}
}

func TestGotoAndLabels(t *testing.T) {
	src := `
int f(void) {
    int i = 0;
top:
    i++;
    if (i < 10) goto top;
    return i;
}`
	fd := funcDecl(t, parse(t, src), "f")
	var labels, gotos int
	var walk func(s cast.Stmt)
	walk = func(s cast.Stmt) {
		switch s := s.(type) {
		case *cast.BlockStmt:
			for _, it := range s.Items {
				if it.Stmt != nil {
					walk(it.Stmt)
				}
			}
		case *cast.LabelStmt:
			labels++
			walk(s.Body)
		case *cast.GotoStmt:
			gotos++
		case *cast.IfStmt:
			walk(s.Then)
		}
	}
	walk(fd.Body)
	if labels != 1 || gotos != 1 {
		t.Errorf("labels=%d gotos=%d", labels, gotos)
	}
}

func TestCastAndSizeof(t *testing.T) {
	src := `
struct big { double d[8]; };
unsigned long n = sizeof(struct big);
char *p = (char *)0;
int m = sizeof(int);`
	f := parse(t, src)
	if _, ok := varDecl(t, f, "p").Init.(*cast.Cast); !ok {
		t.Errorf("p init = %T, want Cast", varDecl(t, f, "p").Init)
	}
	if s, ok := varDecl(t, f, "n").Init.(*cast.SizeofType); !ok {
		t.Errorf("n init = %T", varDecl(t, f, "n").Init)
	} else if s.Of.Sizeof() != 64 {
		t.Errorf("sizeof(struct big) = %d", s.Of.Sizeof())
	}
}

func TestSizeofTypedefAmbiguity(t *testing.T) {
	src := `
typedef int T;
int f(int T2) { return sizeof(T) + (T)3; }`
	parse(t, src) // must not fail
}

func TestFunctionPointerCall(t *testing.T) {
	src := `
int apply(int (*fn)(int), int x) { return fn(x); }
int twice(int v) { return 2 * v; }
int main(void) { return apply(twice, 21); }`
	f := parse(t, src)
	fd := funcDecl(t, f, "apply")
	if fd.Type.Params[0].Kind != ctype.Pointer || fd.Type.Params[0].Elem.Kind != ctype.Func {
		t.Errorf("fn param = %s", fd.Type.Params[0])
	}
}

func TestPointerArithmeticExprs(t *testing.T) {
	src := `
int f(int *p, int n) {
    int *q = p + n;
    int *r = &p[n];
    q++;
    --r;
    return *(p + 1) + q[-1];
}`
	parse(t, src)
}

func TestTernaryAndComma(t *testing.T) {
	src := "int f(int a, int b) { int c = a ? b : -b; return (a++, b--, c); }"
	parse(t, src)
}

func TestStringConcatenation(t *testing.T) {
	f := parse(t, `char *s = "foo" "bar";`)
	init := varDecl(t, f, "s").Init.(*cast.StrLit)
	if init.Value != "foobar" {
		t.Errorf("concatenated = %q", init.Value)
	}
}

func TestIncludeParses(t *testing.T) {
	src := `
#include <stdlib.h>
#include <string.h>
#include <stdio.h>
int main(void) {
    char *buf = (char *)malloc(64);
    strcpy(buf, "x");
    printf("%s", buf);
    free(buf);
    return 0;
}`
	f := parse(t, src)
	funcDecl(t, f, "main")
	varDecl(t, f, "malloc") // prototype visible
}

func TestLocalScopeTypedef(t *testing.T) {
	// A local variable may shadow nothing but use outer typedefs.
	src := `
typedef struct pair { int a, b; } Pair;
int f(void) { Pair p; p.a = 1; return p.a + p.b; }`
	parse(t, src)
}

func TestNestedParens(t *testing.T) {
	parse(t, "int x = ((1 + 2) * (3 - (4 / 2)));")
}

func TestParseErrors(t *testing.T) {
	mustFail(t, "int x")                     // missing semicolon
	mustFail(t, "int f( {")                  // bad parameter list
	mustFail(t, "struct { int; }")           // unnamed field and missing ;
	mustFail(t, "int a = ;")                 // missing initializer expr
	mustFail(t, "void f(void) { return 0 }") // missing ;
	mustFail(t, "int arr[n];")               // non-constant array bound
}

func TestBitfieldApproximation(t *testing.T) {
	f := parse(t, "struct flags { unsigned int a : 1; unsigned int b : 3; } fl;")
	d := varDecl(t, f, "fl")
	if d.Type.FieldByName("a") == nil || d.Type.FieldByName("b") == nil {
		t.Error("bit-fields should be parsed as ordinary fields")
	}
}

func TestStaticAndExtern(t *testing.T) {
	f := parse(t, "static int hidden; extern int shared;")
	if varDecl(t, f, "hidden").Storage != cast.StorageStatic {
		t.Error("static storage lost")
	}
	if varDecl(t, f, "shared").Storage != cast.StorageExtern {
		t.Error("extern storage lost")
	}
}

func TestFigure1Program(t *testing.T) {
	// The example program from the paper (Figure 1).
	src := `
int testl, test2;
void f(int **p, int **q, int **r) {
    *p = *q;
    *q = *r;
}
int x, y, z;
int *x0, *y0, *z0;
int main(void) {
    x0 = &x; y0 = &y; z0 = &z;
    if (testl)
        f(&x0, &y0, &z0);
    else if (test2)
        f(&z0, &x0, &y0);
    else
        f(&x0, &y0, &x0);
    return 0;
}`
	f := parse(t, src)
	funcDecl(t, f, "f")
	funcDecl(t, f, "main")
}

func TestMultiFileInclude(t *testing.T) {
	files := cpp.Source{
		"main.c": "#include \"lib.h\"\nint main(void) { return helper(1); }",
		"lib.h":  "int helper(int x);",
	}
	f, err := ParseFile(files, "main.c", nil)
	if err != nil {
		t.Fatal(err)
	}
	varDecl(t, f, "helper")
}

func TestDeclVsExprAmbiguity(t *testing.T) {
	// "T * x;" where T is a typedef is a declaration; where T is a
	// variable it is an expression statement.
	src := `
typedef int T;
int g;
int f(void) {
    T *p;
    g * 2;
    p = &g;
    return *p;
}`
	parse(t, src)
}
