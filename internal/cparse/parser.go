package cparse

import (
	"fmt"

	"wlpa/internal/cast"
	"wlpa/internal/cpp"
	"wlpa/internal/ctok"
	"wlpa/internal/ctype"
)

// Error is a parse error with a source position.
type Error struct {
	Pos ctok.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type scope struct {
	typedefs map[string]*ctype.Type
	tags     map[string]*ctype.Type
	enums    map[string]int64
	parent   *scope
}

func newScope(parent *scope) *scope {
	return &scope{
		typedefs: make(map[string]*ctype.Type),
		tags:     make(map[string]*ctype.Type),
		enums:    make(map[string]int64),
		parent:   parent,
	}
}

func (s *scope) lookupTypedef(name string) (*ctype.Type, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.typedefs[name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (s *scope) lookupTag(name string) (*ctype.Type, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.tags[name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (s *scope) lookupEnum(name string) (int64, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.enums[name]; ok {
			return v, true
		}
	}
	return 0, false
}

// Parser parses a token stream into an AST.
type Parser struct {
	toks    []ctok.Token
	pos     int
	scope   *scope
	strID   int
	anonTag int

	// pendingParams / pendingParamScope carry the named parameters of
	// the innermost function declarator just parsed, for use when the
	// declarator turns out to be a function definition.
	pendingParams     []*cast.VarDecl
	pendingParamScope map[string]*ctype.Type
}

// ParseFile preprocesses entry within files and parses the result.
func ParseFile(files cpp.Source, entry string, predefined map[string]string) (*cast.File, error) {
	toks, err := cpp.Preprocess(files, entry, predefined)
	if err != nil {
		return nil, err
	}
	return ParseTokens(entry, toks)
}

// ParseSource parses a single self-contained source string (convenience
// for tests and examples). Includes resolve against the built-in headers.
func ParseSource(name, src string) (*cast.File, error) {
	return ParseFile(cpp.Source{name: src}, name, nil)
}

// ParseTokens parses a preprocessed token stream.
func ParseTokens(name string, toks []ctok.Token) (f *cast.File, err error) {
	p := &Parser{toks: toks, scope: newScope(nil)}
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*Error); ok {
				f, err = nil, pe
				return
			}
			panic(r)
		}
	}()
	file := &cast.File{Name: name}
	for p.peek().Kind != ctok.EOF {
		decls := p.parseExternalDecl()
		file.Decls = append(file.Decls, decls...)
	}
	return file, nil
}

func (p *Parser) errorf(pos ctok.Pos, format string, args ...any) {
	panic(&Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *Parser) peek() ctok.Token { return p.toks[p.pos] }

func (p *Parser) peekAt(n int) ctok.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() ctok.Token {
	t := p.toks[p.pos]
	if t.Kind != ctok.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k ctok.Kind) bool {
	if p.peek().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k ctok.Kind) ctok.Token {
	t := p.peek()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
	}
	return p.next()
}

func (p *Parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Kind == ctok.Keyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *Parser) pushScope() { p.scope = newScope(p.scope) }
func (p *Parser) popScope()  { p.scope = p.scope.parent }

// ---- Declarations ----

var typeKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"signed": true, "unsigned": true, "float": true, "double": true,
	"struct": true, "union": true, "enum": true, "const": true,
	"volatile": true,
}

var storageKeywords = map[string]bool{
	"typedef": true, "extern": true, "static": true, "auto": true,
	"register": true,
}

// startsDecl reports whether the current token begins a declaration.
func (p *Parser) startsDecl() bool {
	t := p.peek()
	switch t.Kind {
	case ctok.Keyword:
		return typeKeywords[t.Text] || storageKeywords[t.Text]
	case ctok.Ident:
		if _, ok := p.scope.lookupTypedef(t.Text); !ok {
			return false
		}
		// "t * x" at statement level is ambiguous with multiplication;
		// C resolves in favor of a declaration. But "t = ..." or
		// "t(...)" or "t[...]" or "t->..." is an expression.
		switch p.peekAt(1).Kind {
		case ctok.Assign, ctok.Arrow, ctok.Dot, ctok.LBracket, ctok.Inc,
			ctok.Dec, ctok.AddAssign, ctok.SubAssign, ctok.MulAssign,
			ctok.DivAssign, ctok.Comma, ctok.Semi, ctok.RParen:
			return false
		}
		return true
	}
	return false
}

// parseExternalDecl parses one top-level declaration, which may expand to
// several cast.Decl values (e.g. "int a, *b;").
func (p *Parser) parseExternalDecl() []cast.Decl {
	if p.accept(ctok.Semi) {
		return nil
	}
	base, storage := p.parseDeclSpecifiers()
	// Bare "struct s { ... };" or "enum {...};".
	if p.accept(ctok.Semi) {
		return nil
	}
	var decls []cast.Decl
	for {
		name, typ, namePos := p.parseDeclarator(base)
		if storage == cast.StorageTypedef {
			if name == "" {
				p.errorf(namePos, "typedef requires a name")
			}
			p.scope.typedefs[name] = typ
		} else if typ.Kind == ctype.Func && p.peek().Kind == ctok.LBrace {
			// Function definition.
			fd := &cast.FuncDecl{Pos: namePos, Name: name, Type: typ, Storage: storage}
			fd.Params = p.pendingParams
			p.pendingParams = nil
			p.pushScope()
			p.scope.typedefs = p.pendingParamScope
			if p.scope.typedefs == nil {
				p.scope.typedefs = make(map[string]*ctype.Type)
			}
			p.pendingParamScope = nil
			fd.Body = p.parseBlock()
			p.popScope()
			decls = append(decls, fd)
			return decls
		} else {
			d := p.finishVarDecl(name, typ, namePos, storage)
			decls = append(decls, d)
		}
		if p.accept(ctok.Comma) {
			continue
		}
		p.expect(ctok.Semi)
		return decls
	}
}

// finishVarDecl parses an optional initializer and builds the VarDecl.
func (p *Parser) finishVarDecl(name string, typ *ctype.Type, pos ctok.Pos, storage cast.StorageClass) *cast.VarDecl {
	d := &cast.VarDecl{Pos: pos, Name: name, Type: typ, Storage: storage}
	if p.accept(ctok.Assign) {
		d.Init = p.parseInitializer()
		// "char s[] = "..."" and "int a[] = {...}" complete the type.
		if typ.Kind == ctype.Array && typ.Len < 0 {
			switch init := d.Init.(type) {
			case *cast.StrLit:
				d.Type = ctype.ArrayOf(typ.Elem, int64(len(init.Value))+1)
			case *cast.InitList:
				d.Type = ctype.ArrayOf(typ.Elem, int64(len(init.Elems)))
			}
		}
	}
	return d
}

func (p *Parser) parseInitializer() cast.Expr {
	if p.peek().Kind == ctok.LBrace {
		lb := p.next()
		lst := &cast.InitList{}
		lst.Pos = lb.Pos
		for p.peek().Kind != ctok.RBrace {
			lst.Elems = append(lst.Elems, p.parseInitializer())
			if !p.accept(ctok.Comma) {
				break
			}
		}
		p.expect(ctok.RBrace)
		return lst
	}
	return p.parseAssignExpr()
}

// parseDeclSpecifiers parses storage class and type specifiers and returns
// the base type.
func (p *Parser) parseDeclSpecifiers() (*ctype.Type, cast.StorageClass) {
	storage := cast.StorageNone
	var (
		sawVoid, sawChar, sawFloat, sawDouble bool
		sawSigned, sawUnsigned                bool
		shorts, longs, ints                   int
		userType                              *ctype.Type
	)
	for {
		t := p.peek()
		if t.Kind == ctok.Keyword {
			switch t.Text {
			case "typedef":
				storage = cast.StorageTypedef
				p.next()
				continue
			case "extern":
				storage = cast.StorageExtern
				p.next()
				continue
			case "static":
				storage = cast.StorageStatic
				p.next()
				continue
			case "auto", "register", "const", "volatile":
				p.next()
				continue
			case "void":
				sawVoid = true
				p.next()
				continue
			case "char":
				sawChar = true
				p.next()
				continue
			case "short":
				shorts++
				p.next()
				continue
			case "int":
				ints++
				p.next()
				continue
			case "long":
				longs++
				p.next()
				continue
			case "signed":
				sawSigned = true
				p.next()
				continue
			case "unsigned":
				sawUnsigned = true
				p.next()
				continue
			case "float":
				sawFloat = true
				p.next()
				continue
			case "double":
				sawDouble = true
				p.next()
				continue
			case "struct", "union":
				userType = p.parseStructSpecifier(t.Text == "union")
				continue
			case "enum":
				userType = p.parseEnumSpecifier()
				continue
			}
			break
		}
		if t.Kind == ctok.Ident && userType == nil && !sawVoid && !sawChar &&
			!sawFloat && !sawDouble && shorts == 0 && longs == 0 && ints == 0 &&
			!sawSigned && !sawUnsigned {
			if td, ok := p.scope.lookupTypedef(t.Text); ok {
				userType = td
				p.next()
				continue
			}
		}
		break
	}
	if userType != nil {
		return userType, storage
	}
	switch {
	case sawVoid:
		return ctype.VoidType, storage
	case sawDouble:
		return ctype.DoubleType, storage
	case sawFloat:
		return ctype.FloatType, storage
	case sawChar:
		if sawUnsigned {
			return ctype.UCharType, storage
		}
		return ctype.CharType, storage
	case shorts > 0:
		if sawUnsigned {
			return ctype.UShortType, storage
		}
		return ctype.ShortType, storage
	case longs > 0:
		if sawUnsigned {
			return ctype.ULongType, storage
		}
		return ctype.LongType, storage
	case ints > 0 || sawSigned:
		if sawUnsigned {
			return ctype.UIntType, storage
		}
		return ctype.IntType, storage
	case sawUnsigned:
		return ctype.UIntType, storage
	}
	p.errorf(p.peek().Pos, "expected type specifier, found %s", p.peek())
	return nil, storage
}

func (p *Parser) parseStructSpecifier(isUnion bool) *ctype.Type {
	kw := p.next() // struct or union
	tag := ""
	if p.peek().Kind == ctok.Ident {
		tag = p.next().Text
	}
	if p.peek().Kind != ctok.LBrace {
		if tag == "" {
			p.errorf(kw.Pos, "anonymous struct requires a definition")
		}
		if t, ok := p.scope.lookupTag(tag); ok {
			return t
		}
		// Forward declaration.
		t := ctype.NewStruct(tag, isUnion)
		p.scope.tags[tag] = t
		return t
	}
	// Definition.
	var st *ctype.Type
	if tag != "" {
		if existing, ok := p.scope.tags[tag]; ok && existing.Incomplete {
			st = existing
		}
	}
	if st == nil {
		if tag == "" {
			p.anonTag++
			tag = fmt.Sprintf("<anon%d>", p.anonTag)
		}
		st = ctype.NewStruct(tag, isUnion)
		p.scope.tags[tag] = st
	}
	p.expect(ctok.LBrace)
	var fields []ctype.Field
	for p.peek().Kind != ctok.RBrace {
		base, storage := p.parseDeclSpecifiers()
		if storage != cast.StorageNone {
			p.errorf(p.peek().Pos, "storage class in struct field")
		}
		for {
			name, typ, namePos := p.parseDeclarator(base)
			if p.accept(ctok.Colon) {
				// Bit-field: we approximate by giving the field
				// its declared type (conservative w.r.t. layout).
				p.parseConstExpr()
			}
			if name == "" {
				p.errorf(namePos, "unnamed struct field")
			}
			if typ.Kind == ctype.Struct && typ.Incomplete {
				p.errorf(namePos, "field %q has incomplete type %s", name, typ)
			}
			fields = append(fields, ctype.Field{Name: name, Type: typ})
			if !p.accept(ctok.Comma) {
				break
			}
		}
		p.expect(ctok.Semi)
	}
	p.expect(ctok.RBrace)
	st.Complete(fields)
	return st
}

func (p *Parser) parseEnumSpecifier() *ctype.Type {
	p.next() // enum
	if p.peek().Kind == ctok.Ident {
		p.next() // tag (enums are just int; tags are not tracked)
	}
	if p.peek().Kind != ctok.LBrace {
		return ctype.IntType
	}
	p.expect(ctok.LBrace)
	var val int64
	for p.peek().Kind != ctok.RBrace {
		name := p.expect(ctok.Ident).Text
		if p.accept(ctok.Assign) {
			val = p.parseConstExpr()
		}
		p.scope.enums[name] = val
		val++
		if !p.accept(ctok.Comma) {
			break
		}
	}
	p.expect(ctok.RBrace)
	return ctype.IntType
}

// parseDeclarator parses a declarator against base and returns the
// declared name (possibly empty for abstract declarators) and full type.
func (p *Parser) parseDeclarator(base *ctype.Type) (string, *ctype.Type, ctok.Pos) {
	typ := base
	for p.accept(ctok.Star) {
		for p.acceptKeyword("const") || p.acceptKeyword("volatile") {
		}
		typ = ctype.PointerTo(typ)
	}
	return p.parseDirectDeclarator(typ)
}

func (p *Parser) parseDirectDeclarator(typ *ctype.Type) (string, *ctype.Type, ctok.Pos) {
	t := p.peek()
	var name string
	namePos := t.Pos
	var inner func(*ctype.Type) *ctype.Type // for parenthesized declarators

	switch {
	case t.Kind == ctok.Ident:
		name = p.next().Text
	case t.Kind == ctok.LParen && p.isParenDeclarator():
		p.next()
		// Parse the inner declarator against a placeholder; we
		// re-apply it after the suffixes are known.
		start := p.pos
		depth := 1
		for depth > 0 {
			switch p.next().Kind {
			case ctok.LParen:
				depth++
			case ctok.RParen:
				depth--
			case ctok.EOF:
				p.errorf(t.Pos, "unterminated declarator")
			}
		}
		end := p.pos - 1
		inner = func(outer *ctype.Type) *ctype.Type {
			savedPos := p.pos
			p.pos = start
			n, ty, np := p.parseDeclarator(outer)
			if p.pos != end {
				p.errorf(p.peek().Pos, "bad declarator")
			}
			p.pos = savedPos
			name = n
			namePos = np
			return ty
		}
	}

	// Suffixes: arrays and function parameter lists.
	typ = p.parseDeclaratorSuffix(typ)
	if inner != nil {
		typ = inner(typ)
	}
	return name, typ, namePos
}

// isParenDeclarator distinguishes "(*f)(...)" from a parameter list "(int x)".
func (p *Parser) isParenDeclarator() bool {
	n := p.peekAt(1)
	switch n.Kind {
	case ctok.Star:
		return true
	case ctok.Ident:
		_, isType := p.scope.lookupTypedef(n.Text)
		return !isType
	case ctok.LParen, ctok.LBracket:
		return true
	}
	return false
}

func (p *Parser) parseDeclaratorSuffix(typ *ctype.Type) *ctype.Type {
	switch p.peek().Kind {
	case ctok.LBracket:
		p.next()
		var n int64 = -1
		if p.peek().Kind != ctok.RBracket {
			n = p.parseConstExpr()
		}
		p.expect(ctok.RBracket)
		elem := p.parseDeclaratorSuffix(typ)
		return ctype.ArrayOf(elem, n)
	case ctok.LParen:
		p.next()
		params, names, variadic, tdScope := p.parseParamList()
		p.expect(ctok.RParen)
		ret := p.parseDeclaratorSuffix(typ)
		ft := ctype.FuncOf(ret, params, variadic)
		p.pendingParams = names
		p.pendingParamScope = tdScope
		return ft
	}
	return typ
}

func (p *Parser) parseParamList() ([]*ctype.Type, []*cast.VarDecl, bool, map[string]*ctype.Type) {
	var types []*ctype.Type
	var names []*cast.VarDecl
	variadic := false
	if p.peek().Kind == ctok.RParen {
		return nil, nil, false, nil
	}
	// "(void)" means no parameters.
	if p.peek().Kind == ctok.Keyword && p.peek().Text == "void" && p.peekAt(1).Kind == ctok.RParen {
		p.next()
		return nil, nil, false, nil
	}
	for {
		if p.accept(ctok.Ellipsis) {
			variadic = true
			break
		}
		base, _ := p.parseDeclSpecifiers()
		name, typ, pos := p.parseDeclarator(base)
		// Parameter adjustment: arrays and functions decay.
		typ = typ.Decay()
		types = append(types, typ)
		names = append(names, &cast.VarDecl{Pos: pos, Name: name, Type: typ})
		if !p.accept(ctok.Comma) {
			break
		}
	}
	return types, names, variadic, nil
}

// ---- Statements ----

func (p *Parser) parseBlock() *cast.BlockStmt {
	lb := p.expect(ctok.LBrace)
	blk := &cast.BlockStmt{Pos: lb.Pos}
	p.pushScope()
	for p.peek().Kind != ctok.RBrace {
		if p.peek().Kind == ctok.EOF {
			p.errorf(lb.Pos, "unterminated block")
		}
		if p.startsDecl() {
			for _, d := range p.parseExternalDecl() {
				blk.Items = append(blk.Items, cast.BlockItem{Decl: d})
			}
			continue
		}
		blk.Items = append(blk.Items, cast.BlockItem{Stmt: p.parseStmt()})
	}
	p.popScope()
	p.expect(ctok.RBrace)
	return blk
}

func (p *Parser) parseStmt() cast.Stmt {
	t := p.peek()
	switch t.Kind {
	case ctok.LBrace:
		return p.parseBlock()
	case ctok.Semi:
		p.next()
		return &cast.EmptyStmt{Pos: t.Pos}
	case ctok.Keyword:
		switch t.Text {
		case "if":
			p.next()
			p.expect(ctok.LParen)
			cond := p.parseExpr()
			p.expect(ctok.RParen)
			then := p.parseStmt()
			var els cast.Stmt
			if p.acceptKeyword("else") {
				els = p.parseStmt()
			}
			return &cast.IfStmt{Pos: t.Pos, Cond: cond, Then: then, Else: els}
		case "while":
			p.next()
			p.expect(ctok.LParen)
			cond := p.parseExpr()
			p.expect(ctok.RParen)
			return &cast.WhileStmt{Pos: t.Pos, Cond: cond, Body: p.parseStmt()}
		case "do":
			p.next()
			body := p.parseStmt()
			if !p.acceptKeyword("while") {
				p.errorf(p.peek().Pos, "expected 'while' after do body")
			}
			p.expect(ctok.LParen)
			cond := p.parseExpr()
			p.expect(ctok.RParen)
			p.expect(ctok.Semi)
			return &cast.DoWhileStmt{Pos: t.Pos, Body: body, Cond: cond}
		case "for":
			p.next()
			p.expect(ctok.LParen)
			var init, cond, post cast.Expr
			if p.peek().Kind != ctok.Semi {
				init = p.parseExpr()
			}
			p.expect(ctok.Semi)
			if p.peek().Kind != ctok.Semi {
				cond = p.parseExpr()
			}
			p.expect(ctok.Semi)
			if p.peek().Kind != ctok.RParen {
				post = p.parseExpr()
			}
			p.expect(ctok.RParen)
			return &cast.ForStmt{Pos: t.Pos, Init: init, Cond: cond, Post: post, Body: p.parseStmt()}
		case "switch":
			p.next()
			p.expect(ctok.LParen)
			tag := p.parseExpr()
			p.expect(ctok.RParen)
			return &cast.SwitchStmt{Pos: t.Pos, Tag: tag, Body: p.parseStmt()}
		case "case":
			p.next()
			val := p.parseTernaryExpr()
			p.expect(ctok.Colon)
			return &cast.CaseStmt{Pos: t.Pos, Value: val, Body: p.parseStmt()}
		case "default":
			p.next()
			p.expect(ctok.Colon)
			return &cast.CaseStmt{Pos: t.Pos, IsDefault: true, Body: p.parseStmt()}
		case "break":
			p.next()
			p.expect(ctok.Semi)
			return &cast.BreakStmt{Pos: t.Pos}
		case "continue":
			p.next()
			p.expect(ctok.Semi)
			return &cast.ContinueStmt{Pos: t.Pos}
		case "return":
			p.next()
			var x cast.Expr
			if p.peek().Kind != ctok.Semi {
				x = p.parseExpr()
			}
			p.expect(ctok.Semi)
			return &cast.ReturnStmt{Pos: t.Pos, X: x}
		case "goto":
			p.next()
			label := p.expect(ctok.Ident).Text
			p.expect(ctok.Semi)
			return &cast.GotoStmt{Pos: t.Pos, Label: label}
		}
	case ctok.Ident:
		// Label: "name: stmt".
		if p.peekAt(1).Kind == ctok.Colon {
			name := p.next().Text
			p.next() // colon
			return &cast.LabelStmt{Pos: t.Pos, Name: name, Body: p.parseStmt()}
		}
	}
	x := p.parseExpr()
	p.expect(ctok.Semi)
	return &cast.ExprStmt{Pos: t.Pos, X: x}
}

// ---- Expressions ----

func (p *Parser) parseExpr() cast.Expr {
	e := p.parseAssignExpr()
	for p.peek().Kind == ctok.Comma {
		pos := p.next().Pos
		r := p.parseAssignExpr()
		c := &cast.Comma{L: e, R: r}
		c.Pos = pos
		e = c
	}
	return e
}

var assignOps = map[ctok.Kind]cast.BinaryOp{
	ctok.Assign:    cast.SimpleAssign,
	ctok.AddAssign: cast.Add,
	ctok.SubAssign: cast.Sub,
	ctok.MulAssign: cast.Mul,
	ctok.DivAssign: cast.Div,
	ctok.ModAssign: cast.Rem,
	ctok.AndAssign: cast.And,
	ctok.OrAssign:  cast.Or,
	ctok.XorAssign: cast.Xor,
	ctok.ShlAssign: cast.Shl,
	ctok.ShrAssign: cast.Shr,
}

func (p *Parser) parseAssignExpr() cast.Expr {
	lhs := p.parseTernaryExpr()
	if op, ok := assignOps[p.peek().Kind]; ok {
		pos := p.next().Pos
		rhs := p.parseAssignExpr()
		a := &cast.Assign{Op: op, L: lhs, R: rhs}
		a.Pos = pos
		return a
	}
	return lhs
}

func (p *Parser) parseTernaryExpr() cast.Expr {
	cond := p.parseBinaryExpr(0)
	if p.peek().Kind != ctok.Question {
		return cond
	}
	pos := p.next().Pos
	t := p.parseExpr()
	p.expect(ctok.Colon)
	f := p.parseTernaryExpr()
	c := &cast.Cond{C: cond, T: t, F: f}
	c.Pos = pos
	return c
}

var binPrec = map[ctok.Kind]struct {
	prec int
	op   cast.BinaryOp
}{
	ctok.OrOr:    {1, cast.LogOr},
	ctok.AndAnd:  {2, cast.LogAnd},
	ctok.Pipe:    {3, cast.Or},
	ctok.Caret:   {4, cast.Xor},
	ctok.Amp:     {5, cast.And},
	ctok.Eq:      {6, cast.Eq},
	ctok.Ne:      {6, cast.Ne},
	ctok.Lt:      {7, cast.Lt},
	ctok.Gt:      {7, cast.Gt},
	ctok.Le:      {7, cast.Le},
	ctok.Ge:      {7, cast.Ge},
	ctok.Shl:     {8, cast.Shl},
	ctok.Shr:     {8, cast.Shr},
	ctok.Plus:    {9, cast.Add},
	ctok.Minus:   {9, cast.Sub},
	ctok.Star:    {10, cast.Mul},
	ctok.Slash:   {10, cast.Div},
	ctok.Percent: {10, cast.Rem},
}

func (p *Parser) parseBinaryExpr(min int) cast.Expr {
	lhs := p.parseCastExpr()
	for {
		info, ok := binPrec[p.peek().Kind]
		if !ok || info.prec < min {
			return lhs
		}
		pos := p.next().Pos
		rhs := p.parseBinaryExpr(info.prec + 1)
		b := &cast.Binary{Op: info.op, L: lhs, R: rhs}
		b.Pos = pos
		lhs = b
	}
}

// isTypeName reports whether the tokens after '(' form a type name (for
// casts and sizeof).
func (p *Parser) isTypeName(at int) bool {
	t := p.peekAt(at)
	switch t.Kind {
	case ctok.Keyword:
		return typeKeywords[t.Text]
	case ctok.Ident:
		_, ok := p.scope.lookupTypedef(t.Text)
		return ok
	}
	return false
}

func (p *Parser) parseTypeName() *ctype.Type {
	base, _ := p.parseDeclSpecifiers()
	name, typ, pos := p.parseDeclarator(base)
	if name != "" {
		p.errorf(pos, "unexpected name %q in type name", name)
	}
	return typ
}

func (p *Parser) parseCastExpr() cast.Expr {
	if p.peek().Kind == ctok.LParen && p.isTypeName(1) {
		lp := p.next()
		to := p.parseTypeName()
		p.expect(ctok.RParen)
		// "(type){...}" compound literals are not supported; a cast
		// applies to the following cast-expression.
		x := p.parseCastExpr()
		c := &cast.Cast{To: to, X: x}
		c.Pos = lp.Pos
		return c
	}
	return p.parseUnaryExpr()
}

func (p *Parser) parseUnaryExpr() cast.Expr {
	t := p.peek()
	mk := func(op cast.UnaryOp) cast.Expr {
		pos := p.next().Pos
		x := p.parseCastExpr()
		u := &cast.Unary{Op: op, X: x}
		u.Pos = pos
		return u
	}
	switch t.Kind {
	case ctok.Minus:
		return mk(cast.Neg)
	case ctok.Plus:
		return mk(cast.Plus)
	case ctok.Tilde:
		return mk(cast.BitNot)
	case ctok.Not:
		return mk(cast.LogNot)
	case ctok.Amp:
		return mk(cast.Addr)
	case ctok.Star:
		return mk(cast.Deref)
	case ctok.Inc:
		pos := p.next().Pos
		x := p.parseUnaryExpr()
		u := &cast.Unary{Op: cast.PreInc, X: x}
		u.Pos = pos
		return u
	case ctok.Dec:
		pos := p.next().Pos
		x := p.parseUnaryExpr()
		u := &cast.Unary{Op: cast.PreDec, X: x}
		u.Pos = pos
		return u
	case ctok.Keyword:
		if t.Text == "sizeof" {
			pos := p.next().Pos
			if p.peek().Kind == ctok.LParen && p.isTypeName(1) {
				p.next()
				ty := p.parseTypeName()
				p.expect(ctok.RParen)
				s := &cast.SizeofType{Of: ty}
				s.Pos = pos
				return s
			}
			x := p.parseUnaryExpr()
			s := &cast.SizeofExpr{X: x}
			s.Pos = pos
			return s
		}
	}
	return p.parsePostfixExpr()
}

func (p *Parser) parsePostfixExpr() cast.Expr {
	e := p.parsePrimaryExpr()
	for {
		t := p.peek()
		switch t.Kind {
		case ctok.LBracket:
			p.next()
			idx := p.parseExpr()
			p.expect(ctok.RBracket)
			ix := &cast.Index{X: e, I: idx}
			ix.Pos = t.Pos
			e = ix
		case ctok.LParen:
			p.next()
			var args []cast.Expr
			for p.peek().Kind != ctok.RParen {
				args = append(args, p.parseAssignExpr())
				if !p.accept(ctok.Comma) {
					break
				}
			}
			p.expect(ctok.RParen)
			c := &cast.Call{Fun: e, Args: args}
			c.Pos = t.Pos
			e = c
		case ctok.Dot:
			p.next()
			name := p.expect(ctok.Ident).Text
			m := &cast.Member{X: e, Name: name}
			m.Pos = t.Pos
			e = m
		case ctok.Arrow:
			p.next()
			name := p.expect(ctok.Ident).Text
			m := &cast.Member{X: e, Name: name, Arrow: true}
			m.Pos = t.Pos
			e = m
		case ctok.Inc:
			p.next()
			u := &cast.Unary{Op: cast.PostInc, X: e}
			u.Pos = t.Pos
			e = u
		case ctok.Dec:
			p.next()
			u := &cast.Unary{Op: cast.PostDec, X: e}
			u.Pos = t.Pos
			e = u
		default:
			return e
		}
	}
}

func (p *Parser) parsePrimaryExpr() cast.Expr {
	t := p.peek()
	switch t.Kind {
	case ctok.Ident:
		p.next()
		if v, ok := p.scope.lookupEnum(t.Text); ok {
			il := &cast.IntLit{Value: v}
			il.Pos = t.Pos
			return il
		}
		id := &cast.Ident{Name: t.Text}
		id.Pos = t.Pos
		return id
	case ctok.IntLit, ctok.CharLit:
		p.next()
		il := &cast.IntLit{Value: t.IntVal}
		il.Pos = t.Pos
		return il
	case ctok.FloatLit:
		p.next()
		fl := &cast.FloatLit{Value: t.FloatVal}
		fl.Pos = t.Pos
		return fl
	case ctok.StringLit:
		p.next()
		val := t.Text
		// Adjacent string literals concatenate.
		for p.peek().Kind == ctok.StringLit {
			val += p.next().Text
		}
		p.strID++
		sl := &cast.StrLit{Value: val, ID: p.strID}
		sl.Pos = t.Pos
		return sl
	case ctok.LParen:
		p.next()
		e := p.parseExpr()
		p.expect(ctok.RParen)
		return e
	}
	p.errorf(t.Pos, "unexpected token %s in expression", t)
	return nil
}

// ---- Constant expressions (array sizes, enum values, case labels) ----

func (p *Parser) parseConstExpr() int64 {
	e := p.parseTernaryExpr()
	v, ok := p.evalConst(e)
	if !ok {
		p.errorf(e.Position(), "expected constant expression")
	}
	return v
}

// evalConst evaluates parse-time constant expressions: literals, enum
// constants (already folded to IntLit), sizeof, and arithmetic on them.
func (p *Parser) evalConst(e cast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *cast.IntLit:
		return e.Value, true
	case *cast.SizeofType:
		return e.Of.Sizeof(), true
	case *cast.SizeofExpr:
		// Only sizeof of a constant or string can be folded here.
		if s, ok := e.X.(*cast.StrLit); ok {
			return int64(len(s.Value)) + 1, true
		}
		return 0, false
	case *cast.Unary:
		v, ok := p.evalConst(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case cast.Neg:
			return -v, true
		case cast.BitNot:
			return ^v, true
		case cast.LogNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case cast.Plus:
			return v, true
		}
		return 0, false
	case *cast.Cast:
		return p.evalConst(e.X)
	case *cast.Cond:
		c, ok := p.evalConst(e.C)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return p.evalConst(e.T)
		}
		return p.evalConst(e.F)
	case *cast.Binary:
		a, ok := p.evalConst(e.L)
		if !ok {
			return 0, false
		}
		b, ok := p.evalConst(e.R)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case cast.Add:
			return a + b, true
		case cast.Sub:
			return a - b, true
		case cast.Mul:
			return a * b, true
		case cast.Div:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case cast.Rem:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case cast.And:
			return a & b, true
		case cast.Or:
			return a | b, true
		case cast.Xor:
			return a ^ b, true
		case cast.Shl:
			return a << uint(b&63), true
		case cast.Shr:
			return a >> uint(b&63), true
		case cast.Lt:
			return b2i(a < b), true
		case cast.Gt:
			return b2i(a > b), true
		case cast.Le:
			return b2i(a <= b), true
		case cast.Ge:
			return b2i(a >= b), true
		case cast.Eq:
			return b2i(a == b), true
		case cast.Ne:
			return b2i(a != b), true
		case cast.LogAnd:
			return b2i(a != 0 && b != 0), true
		case cast.LogOr:
			return b2i(a != 0 || b != 0), true
		}
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
