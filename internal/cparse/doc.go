// Package cparse implements a recursive-descent parser for the C subset
// analyzed by wlpa. The parser resolves type names during parsing (as C
// requires: typedef names change the grammar), producing a cast.File
// whose declarations carry fully laid-out ctype.Type values. Expression
// typing and symbol resolution happen later in package sem.
package cparse
