package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Key addresses one cache entry: a SHA-256 over the entry's identity
// (see KeyOf). Equal keys mean "the same pure computation" — the value
// is interchangeable with recomputing it.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf derives a key from length-prefixed parts under a fixed domain
// prefix. Length prefixing makes the encoding injective: ("ab","c")
// and ("a","bc") hash differently.
func KeyOf(parts ...string) Key {
	h := sha256.New()
	fmt.Fprintf(h, "wlpa/store/v1 %d\n", len(parts))
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Stats counts store activity since Open. Hits split by tier; a disk
// hit promotes the entry into memory.
type Stats struct {
	MemHits    uint64 `json:"mem_hits"`
	DiskHits   uint64 `json:"disk_hits"`
	Misses     uint64 `json:"misses"`
	Puts       uint64 `json:"puts"`
	Evictions  uint64 `json:"evictions"`
	Corrupt    uint64 `json:"corrupt"` // entries dropped by checksum/format validation
	MemBytes   int64  `json:"mem_bytes"`
	MemEntries int    `json:"mem_entries"`
}

// Hits returns total hits across both tiers.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits }

// Store is a content-addressed blob store: an in-memory LRU in front of
// an optional on-disk tier. Values are opaque bytes; integrity is
// guarded by a per-entry checksum, and a corrupted or truncated disk
// entry is deleted and reported as a miss — the caller recomputes, it
// never sees bad bytes (see doc.go invariants).
type Store struct {
	mu      sync.Mutex
	dir     string // "" = memory-only
	budget  int64  // in-memory byte budget (0 = DefaultMemBudget)
	entries map[Key]*list.Element
	ll      *list.List // front = most recently used
	memSize int64
	stats   Stats
}

type entry struct {
	key  Key
	data []byte
}

// DefaultMemBudget bounds the in-memory tier when Open is given 0.
const DefaultMemBudget = 256 << 20

// Open opens a store rooted at dir, creating it if needed. An empty dir
// makes the store memory-only (evicted entries are then gone for good).
// memBudget bounds the bytes held in memory; 0 means DefaultMemBudget.
func Open(dir string, memBudget int64) (*Store, error) {
	if memBudget <= 0 {
		memBudget = DefaultMemBudget
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{
		dir:     dir,
		budget:  memBudget,
		entries: map[Key]*list.Element{},
		ll:      list.New(),
	}, nil
}

// Dir returns the on-disk root ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// Get returns the value stored under key. A checksum or format failure
// on the disk tier deletes the bad file and reports a miss.
func (s *Store) Get(key Key) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.MemHits++
		data := el.Value.(*entry).data
		s.mu.Unlock()
		return data, true
	}
	s.mu.Unlock()

	if s.dir == "" {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	data, err := readEntryFile(s.path(key))
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.stats.DiskHits++
		s.insertLocked(key, data)
		return data, true
	case os.IsNotExist(err):
		s.stats.Misses++
		return nil, false
	default:
		// Corrupted, truncated, or unreadable: drop it and recompute.
		s.stats.Corrupt++
		s.stats.Misses++
		os.Remove(s.path(key))
		return nil, false
	}
}

// Put stores data under key in both tiers. The caller must not mutate
// data afterwards.
func (s *Store) Put(key Key, data []byte) error {
	if s.dir != "" {
		if err := writeEntryFile(s.dir, s.path(key), data); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	s.insertLocked(key, data)
	return nil
}

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MemBytes = s.memSize
	st.MemEntries = len(s.entries)
	return st
}

func (s *Store) insertLocked(key Key, data []byte) {
	if el, ok := s.entries[key]; ok {
		old := el.Value.(*entry)
		s.memSize += int64(len(data)) - int64(len(old.data))
		old.data = data
		s.ll.MoveToFront(el)
	} else {
		s.entries[key] = s.ll.PushFront(&entry{key: key, data: data})
		s.memSize += int64(len(data))
	}
	for s.memSize > s.budget && s.ll.Len() > 1 {
		back := s.ll.Back()
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.entries, e.key)
		s.memSize -= int64(len(e.data))
		s.stats.Evictions++
	}
}

// path shards entries by the first key byte, git-style, to keep
// directory fan-out bounded.
func (s *Store) path(key Key) string {
	hexKey := key.String()
	return filepath.Join(s.dir, hexKey[:2], hexKey[2:]+".wlst")
}

// Entry file format: magic, big-endian payload length, SHA-256 of the
// payload, payload. The checksum is over the payload alone (the key is
// a hash of the entry's *inputs*, not of the value, so it cannot double
// as the integrity check).
var fileMagic = []byte("WLST1\n")

func writeEntryFile(root, path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(fileMagic) + 8 + sha256.Size + len(data))
	buf.Write(fileMagic)
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], uint64(len(data)))
	buf.Write(lenb[:])
	sum := sha256.Sum256(data)
	buf.Write(sum[:])
	buf.Write(data)
	// Atomic publish: write a temp file in the same directory, then
	// rename. A crashed writer leaves only a temp file behind; a reader
	// never observes a half-written entry.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("store: %w", werr)
		}
		return fmt.Errorf("store: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// errCorrupt marks a present-but-invalid entry file.
var errCorrupt = fmt.Errorf("store: corrupt entry")

func readEntryFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	header := len(fileMagic) + 8 + sha256.Size
	if len(raw) < header || !bytes.Equal(raw[:len(fileMagic)], fileMagic) {
		return nil, errCorrupt
	}
	n := binary.BigEndian.Uint64(raw[len(fileMagic) : len(fileMagic)+8])
	payload := raw[header:]
	if uint64(len(payload)) != n {
		return nil, errCorrupt
	}
	var want [sha256.Size]byte
	copy(want[:], raw[len(fileMagic)+8:header])
	if sha256.Sum256(payload) != want {
		return nil, errCorrupt
	}
	return payload, nil
}
