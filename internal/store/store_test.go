package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestKeyOfInjective(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatalf("length prefixing failed: concatenation collision")
	}
	if KeyOf("a") == KeyOf("a", "") {
		t.Fatalf("arity not part of the key")
	}
	if KeyOf("a") != KeyOf("a") {
		t.Fatalf("KeyOf not deterministic")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("entry")
	want := []byte("payload bytes")
	if _, ok := s.Get(k); ok {
		t.Fatalf("hit before put")
	}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("get after put: ok=%v data=%q", ok, got)
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, 0)
	k := KeyOf("persist")
	if err := s1.Put(k, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(dir, 0)
	got, ok := s2.Get(k)
	if !ok || string(got) != "survives" {
		t.Fatalf("entry lost across reopen: ok=%v data=%q", ok, got)
	}
	if s2.Stats().DiskHits != 1 {
		t.Fatalf("expected a disk hit, stats %+v", s2.Stats())
	}
	// Promoted: second get is a memory hit.
	if _, ok := s2.Get(k); !ok || s2.Stats().MemHits != 1 {
		t.Fatalf("expected promotion to memory, stats %+v", s2.Stats())
	}
}

// corrupt flips one payload byte of the single entry file under dir.
func corruptEntry(t *testing.T, dir string, truncate bool) string {
	t.Helper()
	var path string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) == ".wlst" {
			path = p
		}
		return nil
	})
	if path == "" {
		t.Fatalf("no entry file found under %s", dir)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncate {
		raw = raw[:len(raw)-3]
	} else {
		raw[len(raw)-1] ^= 0xff
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCorruptEntryIsDroppedNotServed(t *testing.T) {
	for _, truncate := range []bool{false, true} {
		dir := t.TempDir()
		s1, _ := Open(dir, 0)
		k := KeyOf("fragile")
		if err := s1.Put(k, []byte("important bytes")); err != nil {
			t.Fatal(err)
		}
		path := corruptEntry(t, dir, truncate)

		s2, _ := Open(dir, 0) // fresh store: no memory copy
		if _, ok := s2.Get(k); ok {
			t.Fatalf("truncate=%v: corrupted entry served", truncate)
		}
		st := s2.Stats()
		if st.Corrupt != 1 || st.Misses != 1 {
			t.Fatalf("truncate=%v: stats %+v", truncate, st)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("truncate=%v: corrupted file not removed", truncate)
		}
		// The slot is reusable: a fresh Put round-trips again.
		if err := s2.Put(k, []byte("recomputed")); err != nil {
			t.Fatal(err)
		}
		if got, ok := s2.Get(k); !ok || string(got) != "recomputed" {
			t.Fatalf("truncate=%v: put after corruption: ok=%v data=%q", truncate, ok, got)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// Memory-only store with a tiny budget: oldest entries fall out.
	s, _ := Open("", 64)
	a, b, c := KeyOf("a"), KeyOf("b"), KeyOf("c")
	payload := make([]byte, 30)
	s.Put(a, payload)
	s.Put(b, payload)
	s.Put(c, payload) // evicts a (and maybe b)
	if _, ok := s.Get(a); ok {
		t.Fatalf("oldest entry not evicted")
	}
	if _, ok := s.Get(c); !ok {
		t.Fatalf("newest entry evicted")
	}
	st := s.Stats()
	if st.Evictions == 0 || st.MemBytes > 64 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskTierSurvivesEviction(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 64)
	a, b, c := KeyOf("a"), KeyOf("b"), KeyOf("c")
	payload := make([]byte, 30)
	s.Put(a, payload)
	s.Put(b, payload)
	s.Put(c, payload)
	if _, ok := s.Get(a); !ok {
		t.Fatalf("evicted entry not re-served from disk")
	}
	if s.Stats().DiskHits == 0 {
		t.Fatalf("expected disk hit, stats %+v", s.Stats())
	}
}
