// Package store is the content-addressed cache behind the analysis
// daemon (cmd/wlpad): converged solutions, per-procedure summary
// artifacts and checker baselines are stored under a Key that hashes
// the inputs that determine them — normalized procedure IR
// (internal/irhash), the input-domain descriptor, and the analysis
// options fingerprint. It follows the chunk-store discipline of
// versioned-data systems: values are immutable blobs, identity is the
// hash of what produced them, and "invalidation" is simply a key that
// no longer gets asked for.
//
// The store has two tiers: a byte-budgeted in-memory LRU in front of an
// optional on-disk tier (sharded two-hex-digit directories of
// checksummed ".wlst" files, written atomically via temp-file rename).
//
// Invariants:
//
//   - A Key must capture every input the cached value depends on; the
//     paper's PTF argument (a summary is a pure function of procedure
//     body + input alias pattern) is what makes such keys possible at
//     procedure granularity.
//   - Get never returns bytes that fail validation: a truncated or
//     corrupted disk entry is deleted and reported as a miss, so the
//     worst corruption outcome is recomputation, never a wrong answer.
//   - Values are opaque, immutable byte slices. Serialized formats
//     stored here must be self-describing and versioned, and must not
//     contain run-scoped identifiers (the PR 7 rule: memmod.LocIDs
//     never cross runs, hence never enter the store).
//   - Eviction only affects the memory tier; with a disk tier
//     configured an evicted entry is re-promoted on its next hit. A
//     memory-only store silently forgets evicted entries.
package store
