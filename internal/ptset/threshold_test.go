package ptset

import (
	"fmt"
	"math/rand"
	"testing"

	"wlpa/internal/memmod"
)

// member returns the i-th member location of the threshold tests'
// shared universe.
func member(i int) memmod.LocSet { return loc(fmt.Sprintf("thr_m%02d", i)) }

// TestDensePromotionBoundary pins the sparse→dense hand-off of stored
// rows around memmod.DenseThreshold: a row stays a plain slice while it
// has at most DenseThreshold members, and the first union touching it
// after that attaches the bitset index. Lookup results must be
// identical on both sides of the boundary.
func TestDensePromotionBoundary(t *testing.T) {
	p, entry, _, _, _ := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	target := loc("thr_row")
	for i := 0; i < memmod.DenseThreshold+8; i++ {
		pts.Assign(target, memmod.Values(member(i)), entry, false)
		vals, ok := pts.LookupOut(target, entry, nil)
		if !ok {
			t.Fatalf("step %d: row not found", i)
		}
		if got, want := vals.Len(), i+1; got != want {
			t.Fatalf("step %d: Len = %d, want %d", i, got, want)
		}
		for j := 0; j <= i; j++ {
			if !vals.Has(member(j)) {
				t.Fatalf("step %d: member %d missing", i, j)
			}
		}
		// The promoting union sees the pre-union length, so the bitset
		// appears one growth step after the row reaches the threshold.
		wantDense := 0
		if vals.Len() > memmod.DenseThreshold {
			wantDense = 1
		}
		if got := pts.NumDenseRows(); got != wantDense {
			t.Fatalf("step %d (Len=%d): NumDenseRows = %d, want %d",
				i, vals.Len(), got, wantDense)
		}
	}
}

// TestDensePromotionOnNoGrowthUnion pins the exact boundary rule: once
// the row holds DenseThreshold members, the next union promotes it even
// when it adds nothing new.
func TestDensePromotionOnNoGrowthUnion(t *testing.T) {
	p, entry, _, _, _ := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	target := loc("thr_row2")
	for i := 0; i < memmod.DenseThreshold; i++ {
		pts.Assign(target, memmod.Values(member(i)), entry, false)
	}
	if got := pts.NumDenseRows(); got != 0 {
		t.Fatalf("at threshold: NumDenseRows = %d, want 0", got)
	}
	if changed := pts.Assign(target, memmod.Values(member(0)), entry, false); changed {
		t.Fatal("re-adding an existing member reported a change")
	}
	if got := pts.NumDenseRows(); got != 1 {
		t.Fatalf("after no-growth union past threshold: NumDenseRows = %d, want 1", got)
	}
	vals, _ := pts.LookupOut(target, entry, nil)
	if got := vals.Len(); got != memmod.DenseThreshold {
		t.Fatalf("Len = %d, want %d", got, memmod.DenseThreshold)
	}
}

// TestRowUnionMatchesModel is the threshold-boundary property test:
// random weak unions (batch sizes chosen to straddle DenseThreshold)
// must leave the row equal to a model set, and the dense index, once
// attached, must never change membership results.
func TestRowUnionMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	universe := make([]memmod.LocSet, 40)
	for i := range universe {
		universe[i] = member(i)
	}
	for trial := 0; trial < 100; trial++ {
		p, entry, _, _, _ := diamondProc(t)
		pts := New(p, memmod.NewInterner())
		target := loc(fmt.Sprintf("thr_trial%d", trial))
		model := map[int]bool{}
		batches := 2 + rng.Intn(6)
		for bi := 0; bi < batches; bi++ {
			var batch memmod.ValueSet
			n := 1 + rng.Intn(10)
			for k := 0; k < n; k++ {
				m := rng.Intn(len(universe))
				batch.Add(universe[m])
				model[m] = true
			}
			pts.Assign(target, batch, entry, false)
			vals, ok := pts.LookupOut(target, entry, nil)
			if !ok {
				t.Fatalf("trial %d: row not found", trial)
			}
			if vals.Len() != len(model) {
				t.Fatalf("trial %d batch %d: Len = %d, model has %d",
					trial, bi, vals.Len(), len(model))
			}
			for m := range model {
				if !vals.Has(universe[m]) {
					t.Fatalf("trial %d batch %d: member %d missing", trial, bi, m)
				}
			}
			if dense := pts.NumDenseRows(); dense > 0 && len(model) < memmod.DenseThreshold {
				t.Fatalf("trial %d: dense index on a %d-member row (threshold %d)",
					trial, len(model), memmod.DenseThreshold)
			}
		}
	}
}

// TestStrongReplaceStaysSparse pins the strong-update side of the
// boundary: re-evaluated strong updates replace the row wholesale and
// never attach the dense index, however large the set — the index is
// union infrastructure, built lazily by the first weak union once the
// (replaced) row is at the threshold.
func TestStrongReplaceStaysSparse(t *testing.T) {
	p, entry, _, _, _ := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	target := loc("thr_row3")
	var big memmod.ValueSet
	for i := 0; i < memmod.DenseThreshold+4; i++ {
		big.Add(member(i))
	}
	pts.Assign(target, big, entry, true)
	if got := pts.NumDenseRows(); got != 0 {
		t.Fatalf("strong assign of %d members attached a dense index", big.Len())
	}
	small := memmod.Values(member(0))
	pts.Assign(target, small, entry, true)
	vals, _ := pts.LookupOut(target, entry, nil)
	if !vals.Equal(small) {
		t.Fatalf("strong replace = %v, want %v", vals, small)
	}
	// Re-grow past the threshold with a strong replace, then weak-union:
	// the first weak union on an at-threshold row attaches the index.
	pts.Assign(target, big, entry, true)
	pts.Assign(target, memmod.Values(member(memmod.DenseThreshold+5)), entry, false)
	if got := pts.NumDenseRows(); got != 1 {
		t.Fatalf("weak union on an over-threshold row: NumDenseRows = %d, want 1", got)
	}
	vals, _ = pts.LookupOut(target, entry, nil)
	if got, want := vals.Len(), big.Len()+1; got != want {
		t.Fatalf("Len after rebuild = %d, want %d", got, want)
	}
}
