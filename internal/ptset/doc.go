// Package ptset implements the sparse flow-sensitive points-to function
// of the analysis (paper §4.2, after Chase et al.): instead of a full
// points-to map at every program point, each flow-graph node records
// only the location sets whose values change there. Looking up a
// pointer's value searches the nearest dominating record; SSA
// φ-functions are inserted dynamically at dominance frontiers as new
// locations are assigned, and strong updates act as barriers that hide
// earlier assignments to overlapping locations (paper §4.1).
//
// Invariants:
//
//   - Records are per (location, node); a lookup at node n returns the
//     record at the nearest dominator of n that assigns an overlapping
//     location, stopping at a strong-update barrier when the queried
//     location is unique (one concrete object, zero stride).
//   - φ insertion is monotone: once a φ exists for a location at a
//     merge node it is never removed, and its value only grows, so
//     re-evaluation converges.
//   - Weak updates merge into the previous value; strong updates
//     replace it. Only definite single-object assignments may be
//     strong (paper §4.1) — everything reached through a stride or a
//     multi-target pointer is weak.
//   - After SetConcurrent, lookups are safe from multiple goroutines
//     provided writers stay confined to the goroutine owning the PTF,
//     which the parallel scheduler's cone packing guarantees.
package ptset
