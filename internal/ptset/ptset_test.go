package ptset

import (
	"testing"

	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/cparse"
	"wlpa/internal/ctype"
	"wlpa/internal/memmod"
	"wlpa/internal/sem"
)

// buildProc compiles src and returns the flow graph of fn.
func buildProc(t testing.TB, src, fn string) *cfg.Proc {
	t.Helper()
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	proc, err := cfg.Build(prog.FuncByName[fn])
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return proc
}

var testBlocks = map[string]*memmod.Block{}

// loc returns a (memoized) scalar location set named name; blocks are
// identified by pointer, so the same name must yield the same block.
func loc(name string) memmod.LocSet {
	b, ok := testBlocks[name]
	if !ok {
		b = memmod.NewLocal(&cast.Symbol{Kind: cast.SymVar, Name: name, Type: ctype.PointerTo(ctype.IntType)})
		testBlocks[name] = b
	}
	return memmod.Loc(b, 0, 0)
}

// diamondProc returns a proc with an if/else diamond and handles on its
// interesting nodes: fork-side assign chain start, the two branch-side
// nodes, and the join meet.
func diamondProc(t *testing.T) (*cfg.Proc, *cfg.Node, *cfg.Node, *cfg.Node, *cfg.Node) {
	t.Helper()
	p := buildProc(t, `
int a, b;
int *r;
void f(int c) {
    if (c) r = &a; else r = &b;
    r = r;
}`, "f")
	var thenN, elseN, join *cfg.Node
	for _, nd := range p.Nodes {
		if nd.Kind == cfg.MeetNode && len(nd.Preds) == 2 {
			join = nd
		}
	}
	if join == nil {
		t.Fatal("no join")
	}
	for _, pr := range join.Preds {
		if thenN == nil {
			thenN = pr
		} else {
			elseN = pr
		}
	}
	return p, p.Entry, thenN, elseN, join
}

func TestLookupNearestDominating(t *testing.T) {
	p, entry, thenN, _, join := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	l := loc("p")
	v1 := memmod.Values(loc("x"))
	pts.Assign(l, v1, entry, true)
	got, ok := pts.LookupIn(l, join, nil)
	if !ok || !got.Equal(v1) {
		t.Errorf("lookup at join = %v (%v)", got, ok)
	}
	// A record on the then-branch shadows entry only on that path;
	// LookupOut at thenN sees it, LookupIn at join (dominator walk)
	// still sees entry's.
	v2 := memmod.Values(loc("y"))
	pts.Assign(l, v2, thenN, true)
	got, _ = pts.LookupOut(l, thenN, nil)
	if !got.Equal(v2) {
		t.Errorf("LookupOut at then = %v", got)
	}
	got, _ = pts.LookupIn(l, join, nil)
	if !got.Equal(v1) {
		t.Errorf("LookupIn at join must skip non-dominating branch record, got %v", got)
	}
}

func TestLookupInExcludesOwnNode(t *testing.T) {
	p, entry, thenN, _, _ := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	l := loc("p")
	pts.Assign(l, memmod.Values(loc("x")), entry, true)
	pts.Assign(l, memmod.Values(loc("y")), thenN, true)
	in, _ := pts.LookupIn(l, thenN, nil)
	if !in.Equal(memmod.Values(loc("x"))) {
		t.Errorf("LookupIn at assigning node = %v, want entry value", in)
	}
	out, _ := pts.LookupOut(l, thenN, nil)
	if !out.Equal(memmod.Values(loc("y"))) {
		t.Errorf("LookupOut = %v", out)
	}
}

func TestLookupMissing(t *testing.T) {
	p, _, _, _, join := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	if _, ok := pts.LookupIn(loc("q"), join, nil); ok {
		t.Error("lookup of never-assigned loc must report not-found")
	}
}

func TestPhiInsertionAtDominanceFrontier(t *testing.T) {
	p, _, thenN, _, join := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	l := loc("p")
	pts.Assign(l, memmod.Values(loc("x")), thenN, true)
	philocs := pts.PhiLocs(join)
	if len(philocs) != 1 || philocs[0] != l {
		t.Errorf("phi locs at join = %v", philocs)
	}
}

func TestPhiEvaluationMerges(t *testing.T) {
	p, entry, thenN, elseN, join := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	l := loc("p")
	pts.Assign(l, memmod.Values(loc("z")), entry, true)
	pts.Assign(l, memmod.Values(loc("x")), thenN, true)
	pts.Assign(l, memmod.Values(loc("y")), elseN, true)
	// Simulate EvalMeet: merge LookupOut over preds.
	var merged memmod.ValueSet
	for _, pred := range join.Preds {
		v, _ := pts.LookupOut(l, pred, nil)
		merged.AddAll(v)
	}
	pts.AssignPhi(l, merged, join)
	got, _ := pts.LookupOut(l, join, nil)
	want := memmod.Values(loc("x"), loc("y"))
	if !got.Equal(want) {
		t.Errorf("phi merge = %v, want %v", got, want)
	}
}

func TestStrongUpdateBarrier(t *testing.T) {
	p, entry, _, _, join := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	l := loc("p")
	pts.Assign(l, memmod.Values(loc("x")), entry, false)
	pts.Assign(l, memmod.Values(loc("y")), join, true)
	// The strong update at the query node itself must not count.
	if su := pts.FindStrongUpdate(l, join); su != nil {
		t.Errorf("strong update at the query node itself must not count, got %v", su)
	}
	// From a node dominated by the join, the join's strong update is
	// the barrier.
	after := join.Succs[0]
	if su := pts.FindStrongUpdate(l, after); su != join {
		t.Errorf("FindStrongUpdate = %v, want %v", su, join)
	}
	// With the barrier in force, an overlapping location's old value
	// (recorded at entry, before the strong update) is invisible.
	l2 := loc("p_overlap")
	pts.Assign(l2, memmod.Values(loc("z")), entry, false)
	if _, ok := pts.LookupIn(l2, after, join); ok {
		t.Error("barrier must hide records from before the strong update")
	}
	// But the barrier node's own record is visible.
	if got, ok := pts.LookupIn(loc("p"), after, nil); !ok || !got.Equal(memmod.Values(loc("y"))) {
		t.Errorf("value after barrier = %v (%v)", got, ok)
	}
}

func TestStrongReassignReplaces(t *testing.T) {
	p, entry, _, _, _ := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	l := loc("p")
	pts.Assign(l, memmod.Values(loc("x")), entry, true)
	// Re-evaluation with a different value set replaces (strong).
	changed := pts.Assign(l, memmod.Values(loc("y")), entry, true)
	if !changed {
		t.Error("replacement should report change")
	}
	got, _ := pts.LookupOut(l, entry, nil)
	if !got.Equal(memmod.Values(loc("y"))) {
		t.Errorf("strong reassign = %v", got)
	}
	// Weak re-assignment unions.
	pts.Assign(l, memmod.Values(loc("x")), entry, false)
	got, _ = pts.LookupOut(l, entry, nil)
	if got.Len() != 2 {
		t.Errorf("weak union = %v", got)
	}
	// And the record is no longer a strong update.
	if su := pts.FindStrongUpdate(l, entry.Succs[0]); su != nil {
		t.Error("downgraded record must not act as a barrier")
	}
}

func TestAssignChangeDetection(t *testing.T) {
	p, entry, _, _, _ := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	l := loc("p")
	if !pts.Assign(l, memmod.Values(loc("x")), entry, false) {
		t.Error("first assign changes")
	}
	if pts.Assign(l, memmod.Values(loc("x")), entry, false) {
		t.Error("same assign does not change")
	}
	if !pts.Assign(l, memmod.Values(loc("y")), entry, false) {
		t.Error("new value changes")
	}
}

func TestLocationsAndNumRecords(t *testing.T) {
	p, entry, thenN, _, _ := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	pts.Assign(loc("p"), memmod.Values(loc("x")), entry, false)
	pts.Assign(loc("q"), memmod.Values(loc("y")), thenN, false)
	if len(pts.Locations()) != 2 {
		t.Errorf("locations = %v", pts.Locations())
	}
	if pts.NumRecords() != 2 {
		t.Errorf("records = %d", pts.NumRecords())
	}
}

func TestRehomeAfterSubsumption(t *testing.T) {
	p, entry, _, _, _ := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	p1 := memmod.NewParam(1, "a")
	p2 := memmod.NewParam(2, "b")
	l1 := memmod.Loc(p1, 0, 0)
	pts.Assign(l1, memmod.Values(loc("x")), entry, true)
	p1.Subsume(p2, 8, false)
	pts.Rehome()
	got, ok := pts.LookupOut(memmod.Loc(p2, 8, 0), entry, nil)
	if !ok || got.Len() != 1 {
		t.Errorf("after rehome lookup = %v (%v)", got, ok)
	}
	// Old key also resolves to the same record.
	got2, ok2 := pts.LookupOut(l1, entry, nil)
	if !ok2 || !got2.Equal(got) {
		t.Errorf("stale-key lookup = %v (%v)", got2, ok2)
	}
}

func TestPhiLocsDeterministicOrder(t *testing.T) {
	p, _, thenN, _, join := diamondProc(t)
	pts := New(p, memmod.NewInterner())
	for _, n := range []string{"c", "a", "b"} {
		pts.Assign(loc(n), memmod.Values(loc("x")), thenN, false)
	}
	got := pts.PhiLocs(join)
	if len(got) != 3 {
		t.Fatalf("phis = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Base.Name > got[i].Base.Name {
			t.Errorf("phi locs not sorted: %v", got)
		}
	}
}

var _ = ctype.IntType
