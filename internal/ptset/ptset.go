package ptset

import (
	"sync"

	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// Record is one sparse points-to binding: at Node, Loc holds Vals.
type Record struct {
	Node   *cfg.Node
	Loc    memmod.LocSet
	Vals   memmod.ValueSet
	Strong bool // the assignment overwrote the previous contents
	Phi    bool // the record is a φ-function result

	// bits is the dense index over Vals' members, attached once the row
	// passes memmod.DenseThreshold (nil for small rows). It is owned by
	// the points-to layer and maintained in assign.
	bits *memmod.RowBits
}

// lookupKey identifies one dominator-walk query. Dominance and the
// barrier node are static per query site, so the only dynamic validity
// inputs are the per-location generation and the global subsumption
// generation, kept in the entry. Locations are the interner's IDs and
// nodes their per-procedure IDs (after is -1 for "no barrier"), keeping
// the key at 16 bytes instead of the 48 of the struct/pointer form.
type lookupKey struct {
	loc       memmod.LocID
	at, after int32
	includeAt bool
}

// lookupSlot is one line of the direct-mapped lookup cache. The cache is
// advisory — a collision evicts the previous entry and a miss recomputes
// — so it needs no chaining and its storage is a flat power-of-two
// array: no per-insert allocation, unlike a map.
type lookupSlot struct {
	key    lookupKey
	vals   memmod.ValueSet
	found  bool
	valid  bool
	locGen uint32
	subGen uint32
}

type suKey struct {
	loc memmod.LocID
	at  int32
}

// locSlot is the per-location state of one dense slot: the interned ID,
// the change generation, and the assignment records (unordered; lookups
// select the nearest dominating record).
type locSlot struct {
	id   memmod.LocID
	gen  uint32
	rows []*Record
}

// idxSlot is one line of the open-addressed LocID → slot table. A key
// of 0 means empty; occupied entries store id+1.
type idxSlot struct {
	key memmod.LocID
	val int32
}

// suSlot is a line of the direct-mapped strong-update cache (same
// eviction discipline as lookupSlot).
type suSlot struct {
	key    suKey
	node   *cfg.Node
	valid  bool
	locGen uint32
	subGen uint32
}

// Slab chunk sizes. Records are carved out of block allocations instead
// of being allocated one by one; same for record-pointer headers, stored
// value-set members and φ-location lists.
const (
	recSlabSize = 64
	ptrSlabSize = 256
	locSlabSize = 256
	idSlabSize  = 256
)

// PTS is the sparse points-to function for one procedure instance.
// All location keys are interned through the analysis-wide Interner.
//
// Per-location state (records and change generations) lives in dense
// parallel arrays indexed by a compact slot number, with an
// open-addressed LocID → slot table in front. A PTS touches a small
// fraction of the analysis-wide ID space, so slot-dense storage beats
// both a Go map (bucket churn while growing) and ID-dense arrays
// (memory proportional to the whole analysis).
type PTS struct {
	proc *cfg.Proc
	in   *memmod.Interner

	// idx is the open-addressed LocID → slot table (linear probing,
	// power-of-two size, 75% max load); slots holds the per-location
	// state it points at. Cached queries remember the generation they
	// observed and are valid only while it (and the global subsumption
	// generation) still matches.
	idx   []idxSlot
	slots []locSlot

	// Direct-mapped query caches (advisory; collisions evict). Each
	// grows by doubling when evictions of live keys exceed the table
	// size, so pathological procedures still cache effectively.
	lookupTab   []lookupSlot
	lookupClash uint32
	suTab       []suSlot
	suClash     uint32

	// phis lists the locations having φ-functions at each meet node
	// (indexed by the node's dense per-procedure ID; small per-node
	// lists with linear membership). phiCache memoizes the sorted
	// location form per node.
	phis     [][]memmod.LocID
	phiCache [][]memmod.LocSet

	locsCache []memmod.LocSet

	// recSlab is the tail of the current record allocation chunk;
	// ptrSlab carves the per-location record-pointer headers (most
	// locations keep one or two records); locSlab carves the backing of
	// stored value sets (storeClone).
	recSlab []Record
	ptrSlab []*Record
	locSlab []memmod.LocSet

	// arena backs weak-union growth of stored rows; rows live as long
	// as the PTS, matching the arena's never-reset lifetime. idSlab
	// carves the small per-node φ-location lists the same way.
	arena  memmod.Arena
	idSlab []memmod.LocID

	// hooks fires after any record change to a location (OnChange) and
	// when a new φ-function is first placed at a meet node (OnPhi). The
	// worklist engine uses them for dependency-tracked re-evaluation.
	hooks Hooks

	// concurrent guards the memoization caches with mu. The records
	// themselves follow a single-writer/multi-reader discipline enforced
	// by the parallel scheduler (only the owning evaluation context
	// assigns; foreign contexts only look up frozen instances), but
	// lookups memoize — they write cache entries on read — so concurrent
	// readers of the same frozen PTS must serialize cache access.
	concurrent bool
	mu         sync.Mutex
}

// ptsSlab carves PTS storage in chunks (one chunk allocation per 32
// instances); analyses create one PTS per PTF. The zero-valued slab
// entries match New's lazy-everything initialization, and instances are
// never recycled, so carving is safe. The mutex covers creation from
// parallel evaluation contexts.
var (
	ptsMu   sync.Mutex
	ptsSlab []PTS
)

// New creates an empty points-to function over proc, keyed through the
// analysis-wide intern table. All side tables are created lazily at
// their write sites: a PTS for a small procedure may never touch
// several of them.
func New(proc *cfg.Proc, in *memmod.Interner) *PTS {
	ptsMu.Lock()
	if len(ptsSlab) == 0 {
		ptsSlab = make([]PTS, 32)
	}
	p := &ptsSlab[0]
	ptsSlab = ptsSlab[1:]
	ptsMu.Unlock()
	p.proc, p.in = proc, in
	return p
}

// Proc returns the procedure this points-to function covers.
func (p *PTS) Proc() *cfg.Proc { return p.proc }

// Interner returns the intern table the keys run through.
func (p *PTS) Interner() *memmod.Interner { return p.in }

// SetConcurrent enables mutex protection of the memoization caches (and
// the shared intern table) for analyses that read points-to functions
// from several goroutines. Off by default (single-threaded runs pay no
// locking cost).
func (p *PTS) SetConcurrent(on bool) {
	p.concurrent = on
	p.in.SetConcurrent(on)
}

// Hooks receives change notifications: OnChange after any record
// change to a location (new values, new record, weakened strong flag);
// OnPhi when a φ-function is first placed at a meet node. An interface
// rather than a pair of closures so installing hooks does not allocate.
type Hooks interface {
	OnChange(memmod.LocSet)
	OnPhi(*cfg.Node)
}

// SetHooks installs the change notification sink.
func (p *PTS) SetHooks(h Hooks) {
	p.hooks = h
}

func idHash(id memmod.LocID) uint32 {
	h := uint32(id) * 0x9e3779b1
	return h ^ h>>16
}

// slot returns the dense slot of id, or -1 if the PTS has no state for
// it yet. Read-only: safe on frozen instances.
func (p *PTS) slot(id memmod.LocID) int32 {
	if len(p.idx) == 0 {
		return -1
	}
	mask := uint32(len(p.idx) - 1)
	h := idHash(id) & mask
	for {
		k := p.idx[h].key
		if k == 0 {
			return -1
		}
		if k == id+1 {
			return p.idx[h].val
		}
		h = (h + 1) & mask
	}
}

// slotOrNew returns the slot of id, creating it (with empty state) on
// first use. Only the owning evaluation context may call it.
func (p *PTS) slotOrNew(id memmod.LocID) int32 {
	if len(p.idx) == 0 {
		p.idx = make([]idxSlot, 64)
		// Pre-size the slot array with the index so small and mid-size
		// procedures never regrow (the index resizes at 48 live slots).
		p.slots = make([]locSlot, 0, 48)
	}
	mask := uint32(len(p.idx) - 1)
	h := idHash(id) & mask
	for {
		k := p.idx[h].key
		if k == 0 {
			break
		}
		if k == id+1 {
			return p.idx[h].val
		}
		h = (h + 1) & mask
	}
	if 4*(len(p.slots)+1) >= 3*len(p.idx) {
		p.growIdx()
		mask = uint32(len(p.idx) - 1)
		h = idHash(id) & mask
		for p.idx[h].key != 0 {
			h = (h + 1) & mask
		}
	}
	p.idx[h].key = id + 1
	si := int32(len(p.slots))
	p.idx[h].val = si
	p.slots = append(p.slots, locSlot{id: id})
	return si
}

func (p *PTS) growIdx() {
	old := p.idx
	n := 2 * len(old)
	p.idx = make([]idxSlot, n)
	mask := uint32(n - 1)
	for _, e := range old {
		if e.key == 0 {
			continue
		}
		h := idHash(e.key-1) & mask
		for p.idx[h].key != 0 {
			h = (h + 1) & mask
		}
		p.idx[h] = e
	}
}

// rowsOf returns the records of id (nil if none). Read-only.
func (p *PTS) rowsOf(id memmod.LocID) []*Record {
	if si := p.slot(id); si >= 0 {
		return p.slots[si].rows
	}
	return nil
}

func (p *PTS) locGen(id memmod.LocID) uint32 {
	if si := p.slot(id); si >= 0 {
		return p.slots[si].gen
	}
	return 0
}

// newRecord carves a record out of the slab. Chunks are never recycled
// or moved, so the returned pointer is stable for the PTS lifetime.
func (p *PTS) newRecord() *Record {
	if len(p.recSlab) == 0 {
		p.recSlab = make([]Record, recSlabSize)
	}
	r := &p.recSlab[0]
	p.recSlab = p.recSlab[1:]
	return r
}

// LookupIn returns the values of loc flowing INTO node at (excluding any
// record at the node itself): the nearest strictly-dominating record.
// after, when non-nil, is a strong-update barrier: records at nodes not
// dominated by it are invisible. The boolean reports whether any record
// was found (false means the caller must consult the initial values).
func (p *PTS) LookupIn(loc memmod.LocSet, at *cfg.Node, after *cfg.Node) (memmod.ValueSet, bool) {
	return p.lookup(loc, at, after, false)
}

// LookupOut returns the values of loc flowing OUT of node at (including
// a record at the node itself).
func (p *PTS) LookupOut(loc memmod.LocSet, at *cfg.Node, after *cfg.Node) (memmod.ValueSet, bool) {
	return p.lookup(loc, at, after, true)
}

func hashLookupKey(k lookupKey) uint32 {
	h := uint64(uint32(k.loc))<<31 ^ uint64(uint32(k.at)) ^ uint64(uint32(k.after))<<16
	if k.includeAt {
		h ^= 1 << 62
	}
	h *= 0x9e3779b97f4a7c15
	return uint32(h >> 40)
}

func (p *PTS) lookup(loc memmod.LocSet, at *cfg.Node, after *cfg.Node, includeAt bool) (memmod.ValueSet, bool) {
	id := p.in.ID(loc)
	afterID := int32(-1)
	if after != nil {
		afterID = int32(after.ID)
	}
	key := lookupKey{id, int32(at.ID), afterID, includeAt}
	sg := uint32(memmod.SubsumeGen())
	if p.concurrent {
		p.mu.Lock()
	}
	lg := p.locGen(id)
	if len(p.lookupTab) != 0 {
		s := &p.lookupTab[hashLookupKey(key)&uint32(len(p.lookupTab)-1)]
		if s.valid && s.key == key && s.subGen == sg && s.locGen == lg {
			vals, found := s.vals, s.found
			if p.concurrent {
				p.mu.Unlock()
			}
			return vals, found
		}
	}
	if p.concurrent {
		p.mu.Unlock()
	}
	var best *Record
	for _, r := range p.rowsOf(id) {
		if r.Node == at && !includeAt {
			continue
		}
		if !r.Node.Dominates(at) {
			continue
		}
		if after != nil && !after.Dominates(r.Node) {
			continue
		}
		if best == nil || best.Node.Dominates(r.Node) {
			best = r
		}
	}
	var vals memmod.ValueSet
	found := best != nil
	if found {
		vals = best.Vals.Resolved()
	}
	if p.concurrent {
		p.mu.Lock()
	}
	if p.lookupTab == nil {
		p.lookupTab = make([]lookupSlot, 32)
	}
	s := &p.lookupTab[hashLookupKey(key)&uint32(len(p.lookupTab)-1)]
	if s.valid && s.key != key {
		p.lookupClash++
		if p.lookupClash > uint32(len(p.lookupTab)) && len(p.lookupTab) < 1<<17 {
			p.growLookupTab()
			s = &p.lookupTab[hashLookupKey(key)&uint32(len(p.lookupTab)-1)]
		}
	}
	*s = lookupSlot{key: key, vals: vals, found: found, valid: true, locGen: lg, subGen: sg}
	if p.concurrent {
		p.mu.Unlock()
	}
	return vals, found
}

func (p *PTS) growLookupTab() {
	old := p.lookupTab
	p.lookupTab = make([]lookupSlot, 2*len(old))
	mask := uint32(len(p.lookupTab) - 1)
	for i := range old {
		if old[i].valid {
			p.lookupTab[hashLookupKey(old[i].key)&mask] = old[i]
		}
	}
	p.lookupClash = 0
}

// RecordAt returns the record for loc exactly at node, or nil.
func (p *PTS) RecordAt(loc memmod.LocSet, at *cfg.Node) *Record {
	return p.recordAt(p.in.ID(loc), at)
}

func (p *PTS) recordAt(id memmod.LocID, at *cfg.Node) *Record {
	for _, r := range p.rowsOf(id) {
		if r.Node == at {
			return r
		}
	}
	return nil
}

// Assign records that loc holds vals at node. strong marks a strong
// update (replacing previous values on re-evaluation); weak updates must
// have folded the incoming values into vals already (paper Figure 11).
// It reports whether the points-to function changed.
func (p *PTS) Assign(loc memmod.LocSet, vals memmod.ValueSet, at *cfg.Node, strong bool) bool {
	return p.assign(loc, vals, at, strong, false)
}

// AssignPhi records a φ result at a meet node.
func (p *PTS) AssignPhi(loc memmod.LocSet, vals memmod.ValueSet, at *cfg.Node) bool {
	return p.assign(loc, vals, at, false, true)
}

func (p *PTS) assign(loc memmod.LocSet, vals memmod.ValueSet, at *cfg.Node, strong, phi bool) bool {
	loc = loc.Resolve()
	id := p.in.ExactID(loc)
	vals = vals.Resolved()
	si := p.slot(id)
	if si >= 0 {
		if r := p.rowRecordAt(si, at); r != nil {
			changed := false
			if strong && r.Strong {
				// Re-evaluated strong update: replace.
				if !r.Vals.Equal(vals) {
					r.Vals = vals
					r.bits = nil // rebuilt lazily if the row grows again
					changed = true
				}
			} else {
				if r.bits == nil && r.Vals.Len() >= memmod.DenseThreshold {
					r.bits = memmod.NewRowBits(p.in, r.Vals)
				}
				var grew bool
				if r.bits != nil {
					grew = r.bits.UnionInto(&r.Vals, vals)
				} else {
					grew = p.arena.AddAll(&r.Vals, vals)
				}
				if grew {
					changed = true
				}
				if r.Strong && !strong {
					r.Strong = false
					changed = true
				}
			}
			if changed {
				p.bumpSlot(si, loc)
			}
			return changed
		}
	}
	r := p.newRecord()
	*r = Record{Node: at, Loc: loc, Vals: p.storeClone(vals), Strong: strong, Phi: phi}
	if si < 0 {
		si = p.slotOrNew(id)
		p.locsCache = nil
	}
	rs := p.slots[si].rows
	if len(rs) == 0 {
		if len(p.ptrSlab) < 2 {
			p.ptrSlab = make([]*Record, ptrSlabSize)
		}
		rs = p.ptrSlab[0:0:2]
		p.ptrSlab = p.ptrSlab[2:]
	} else if len(rs) == cap(rs) && cap(rs) <= recSlabSize {
		// Re-carve a doubled header from the slab instead of letting
		// append reallocate on the heap for every growing location.
		n := 2 * cap(rs)
		if len(p.ptrSlab) < n {
			p.ptrSlab = make([]*Record, ptrSlabSize)
		}
		ns := p.ptrSlab[0:len(rs):n]
		p.ptrSlab = p.ptrSlab[n:]
		copy(ns, rs)
		rs = ns
	}
	p.slots[si].rows = append(rs, r)
	p.bumpSlot(si, loc)
	p.insertPhis(id, at)
	return true
}

func (p *PTS) rowRecordAt(si int32, at *cfg.Node) *Record {
	for _, r := range p.slots[si].rows {
		if r.Node == at {
			return r
		}
	}
	return nil
}

// storeClone snapshots vals for a stored record, carving the backing
// from the location slab (records live for the PTS lifetime; batching
// their member storage into chunks keeps them off the allocator).
func (p *PTS) storeClone(vals memmod.ValueSet) memmod.ValueSet {
	n := vals.Len()
	if n == 0 || n > recSlabSize {
		return vals.Clone()
	}
	if len(p.locSlab) < n {
		p.locSlab = make([]memmod.LocSet, locSlabSize)
	}
	dst := p.locSlab[0:n:n]
	p.locSlab = p.locSlab[n:]
	return vals.CloneInto(dst)
}

// bumpSlot invalidates cached queries about the location in slot si and
// fires OnChange.
func (p *PTS) bumpSlot(si int32, loc memmod.LocSet) {
	p.slots[si].gen++
	if p.hooks != nil {
		p.hooks.OnChange(loc)
	}
}

// insertPhis places φ-functions for loc on the iterated dominance
// frontier of node (dynamic SSA construction, paper §4.2).
func (p *PTS) insertPhis(id memmod.LocID, node *cfg.Node) {
	work := []*cfg.Node{node}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range n.DF {
			if p.phis == nil {
				p.phis = make([][]memmod.LocID, len(p.proc.Nodes))
			}
			set := p.phis[m.ID]
			has := false
			for _, e := range set {
				if e == id {
					has = true
					break
				}
			}
			if has {
				continue
			}
			switch {
			case len(set) == 0:
				if len(p.idSlab) < 4 {
					p.idSlab = make([]memmod.LocID, idSlabSize)
				}
				set = p.idSlab[0:0:4]
				p.idSlab = p.idSlab[4:]
			case len(set) == cap(set) && cap(set) <= 64:
				n := 2 * cap(set)
				if len(p.idSlab) < n {
					p.idSlab = make([]memmod.LocID, idSlabSize)
				}
				ns := p.idSlab[0:len(set):n]
				p.idSlab = p.idSlab[n:]
				copy(ns, set)
				set = ns
			}
			p.phis[m.ID] = append(set, id)
			if p.phiCache != nil {
				p.phiCache[m.ID] = nil
			}
			if p.hooks != nil {
				p.hooks.OnPhi(m)
			}
			work = append(work, m)
		}
	}
}

// PhiLocs returns the locations with φ-functions at meet node nd, in a
// deterministic order. The caller must not mutate the result.
func (p *PTS) PhiLocs(nd *cfg.Node) []memmod.LocSet {
	if p.phis == nil {
		return nil
	}
	set := p.phis[nd.ID]
	if len(set) == 0 {
		return nil
	}
	if p.concurrent {
		p.mu.Lock()
	}
	var out []memmod.LocSet
	if p.phiCache != nil {
		out = p.phiCache[nd.ID]
	}
	if p.concurrent {
		p.mu.Unlock()
	}
	if out != nil {
		return out
	}
	out = p.arena.Carve(len(set))
	for _, id := range set {
		out = append(out, p.in.Loc(id))
	}
	sortLocs(out)
	if p.concurrent {
		p.mu.Lock()
	}
	if p.phiCache == nil {
		p.phiCache = make([][]memmod.LocSet, len(p.proc.Nodes))
	}
	p.phiCache[nd.ID] = out
	if p.concurrent {
		p.mu.Unlock()
	}
	return out
}

// sortLocs sorts location sets by (base name, offset, stride). Both
// sort.Slice (reflection-based swapper) and sort.Sort (interface boxing
// of the slice header) allocate per call, so this is a hand-rolled
// quicksort with an insertion-sort cutoff — the lists are tiny in the
// common case.
func sortLocs(s []memmod.LocSet) {
	for len(s) > 12 {
		// Median-of-three pivot, moved to the front.
		m := len(s) / 2
		lo, hi := 0, len(s)-1
		if lessLoc(s[m], s[lo]) {
			s[m], s[lo] = s[lo], s[m]
		}
		if lessLoc(s[hi], s[lo]) {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if lessLoc(s[hi], s[m]) {
			s[hi], s[m] = s[m], s[hi]
		}
		pivot := s[m]
		i, j := 0, len(s)-1
		for i <= j {
			for lessLoc(s[i], pivot) {
				i++
			}
			for lessLoc(pivot, s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j < len(s)-i {
			sortLocs(s[:j+1])
			s = s[i:]
		} else {
			sortLocs(s[i:])
			s = s[:j+1]
		}
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && lessLoc(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func lessLoc(a, b memmod.LocSet) bool {
	if a.Base != b.Base {
		return a.Base.Name < b.Base.Name
	}
	if a.Off != b.Off {
		return a.Off < b.Off
	}
	return a.Stride < b.Stride
}

// FindStrongUpdate returns the nearest dominating node (strictly before
// at) holding a strong update of loc, or nil (paper Figure 10).
func (p *PTS) FindStrongUpdate(loc memmod.LocSet, at *cfg.Node) *cfg.Node {
	id := p.in.ID(loc)
	key := suKey{id, int32(at.ID)}
	sg := uint32(memmod.SubsumeGen())
	if p.concurrent {
		p.mu.Lock()
	}
	lg := p.locGen(id)
	if len(p.suTab) != 0 {
		s := &p.suTab[hashSuKey(key)&uint32(len(p.suTab)-1)]
		if s.valid && s.key == key && s.subGen == sg && s.locGen == lg {
			nd := s.node
			if p.concurrent {
				p.mu.Unlock()
			}
			return nd
		}
	}
	if p.concurrent {
		p.mu.Unlock()
	}
	var best *Record
	for _, r := range p.rowsOf(id) {
		if !r.Strong || r.Node == at || !r.Node.Dominates(at) {
			continue
		}
		if best == nil || best.Node.Dominates(r.Node) {
			best = r
		}
	}
	var nd *cfg.Node
	if best != nil {
		nd = best.Node
	}
	if p.concurrent {
		p.mu.Lock()
	}
	if p.suTab == nil {
		p.suTab = make([]suSlot, 32)
	}
	s := &p.suTab[hashSuKey(key)&uint32(len(p.suTab)-1)]
	if s.valid && s.key != key {
		p.suClash++
		if p.suClash > uint32(len(p.suTab)) && len(p.suTab) < 1<<17 {
			p.growSuTab()
			s = &p.suTab[hashSuKey(key)&uint32(len(p.suTab)-1)]
		}
	}
	*s = suSlot{key: key, node: nd, valid: true, locGen: lg, subGen: sg}
	if p.concurrent {
		p.mu.Unlock()
	}
	return nd
}

func hashSuKey(k suKey) uint32 {
	h := (uint64(uint32(k.loc))<<31 ^ uint64(uint32(k.at))) * 0x9e3779b97f4a7c15
	return uint32(h >> 40)
}

func (p *PTS) growSuTab() {
	old := p.suTab
	p.suTab = make([]suSlot, 2*len(old))
	mask := uint32(len(p.suTab) - 1)
	for i := range old {
		if old[i].valid {
			p.suTab[hashSuKey(old[i].key)&mask] = old[i]
		}
	}
	p.suClash = 0
}

// Locations returns every location set with at least one record, in a
// deterministic order. The caller must not mutate the result.
func (p *PTS) Locations() []memmod.LocSet {
	if p.locsCache != nil || len(p.slots) == 0 {
		return p.locsCache
	}
	out := p.arena.Carve(len(p.slots))
	for i := range p.slots {
		out = append(out, p.in.Loc(p.slots[i].id))
	}
	sortLocs(out)
	p.locsCache = out
	return out
}

// Records returns the records of loc (for diagnostics).
func (p *PTS) Records(loc memmod.LocSet) []*Record { return p.rowsOf(p.in.ID(loc)) }

// NumRecords returns the total number of sparse records.
func (p *PTS) NumRecords() int {
	n := 0
	for i := range p.slots {
		n += len(p.slots[i].rows)
	}
	return n
}

// NumDenseRows returns the number of stored records whose value set
// carries the bitset index (observability for tests and benchmarks).
func (p *PTS) NumDenseRows() int {
	n := 0
	for i := range p.slots {
		for _, r := range p.slots[i].rows {
			if r.bits != nil {
				n++
			}
		}
	}
	return n
}

// Rehome re-canonicalizes all record keys after parameter subsumption:
// keys whose base was subsumed are resolved and merged. The analysis
// calls this after introducing a subsumption (paper §3.2). All memoized
// query state is discarded (the subsumption-generation guard already
// invalidates cached entries; clearing reclaims the memory).
func (p *PTS) Rehome() {
	dirty := false
	for i := range p.slots {
		if id := p.slots[i].id; p.in.ResolveID(id) != id {
			dirty = true
			break
		}
	}
	if !dirty {
		return
	}
	old := p.slots
	p.idx, p.slots = nil, nil
	for i := range old {
		id := old[i].id
		nid := p.in.ResolveID(id)
		nl := p.in.Loc(nid)
		for _, r := range old[i].rows {
			r.Loc = nl
			// Merge with an existing record at the same node.
			if ex := p.recordAt(nid, r.Node); ex != nil {
				ex.Vals.AddAll(r.Vals)
				if !r.Strong {
					ex.Strong = false
				}
				continue
			}
			si := p.slotOrNew(nid)
			p.slots[si].rows = append(p.slots[si].rows, r)
		}
	}
	// φ sets as well.
	for ndID, set := range p.phis {
		ns := set[:0]
		for _, id := range set {
			rid := p.in.ResolveID(id)
			dup := false
			for _, e := range ns {
				if e == rid {
					dup = true
					break
				}
			}
			if !dup {
				ns = append(ns, rid)
			}
		}
		p.phis[ndID] = ns
	}
	p.lookupTab, p.lookupClash = nil, 0
	p.suTab, p.suClash = nil, 0
	p.locsCache = nil
	p.phiCache = nil
}
