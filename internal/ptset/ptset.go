package ptset

import (
	"sort"
	"sync"

	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// Record is one sparse points-to binding: at Node, Loc holds Vals.
type Record struct {
	Node   *cfg.Node
	Loc    memmod.LocSet
	Vals   memmod.ValueSet
	Strong bool // the assignment overwrote the previous contents
	Phi    bool // the record is a φ-function result
}

// lookupKey identifies one dominator-walk query. Dominance and the
// barrier node are static per query site, so the only dynamic validity
// inputs are the per-location generation and the global subsumption
// generation, kept in the entry.
type lookupKey struct {
	loc       memmod.LocSet
	at, after *cfg.Node
	includeAt bool
}

type lookupEntry struct {
	vals   memmod.ValueSet
	found  bool
	locGen uint64
	subGen uint64
}

type suKey struct {
	loc memmod.LocSet
	at  *cfg.Node
}

type suEntry struct {
	node   *cfg.Node
	locGen uint64
	subGen uint64
}

// PTS is the sparse points-to function for one procedure instance.
type PTS struct {
	proc *cfg.Proc

	// recs maps a location set to its assignment records, unordered;
	// lookups select the nearest dominating record.
	recs map[memmod.LocSet][]*Record

	// phis maps a meet node to the locations having φ-functions there.
	phis map[*cfg.Node]map[memmod.LocSet]bool

	// locGens counts record changes per location key. Cached lookups
	// remember the generation they observed and are valid only while it
	// (and the global subsumption generation) still matches.
	locGens     map[memmod.LocSet]uint64
	lookupCache map[lookupKey]lookupEntry
	suCache     map[suKey]suEntry
	locsCache   []memmod.LocSet
	phiCache    map[*cfg.Node][]memmod.LocSet

	// onChange fires after any record change to a location; onPhi fires
	// when a new φ-function is placed at a node. The worklist engine
	// uses them for dependency-tracked re-evaluation.
	onChange func(memmod.LocSet)
	onPhi    func(*cfg.Node)

	// concurrent guards the memoization caches with mu. The records
	// themselves follow a single-writer/multi-reader discipline enforced
	// by the parallel scheduler (only the owning evaluation context
	// assigns; foreign contexts only look up frozen instances), but
	// lookups memoize — they write cache entries on read — so concurrent
	// readers of the same frozen PTS must serialize cache access.
	concurrent bool
	mu         sync.Mutex
}

// New creates an empty points-to function over proc.
func New(proc *cfg.Proc) *PTS {
	return &PTS{
		proc:        proc,
		recs:        make(map[memmod.LocSet][]*Record),
		phis:        make(map[*cfg.Node]map[memmod.LocSet]bool),
		locGens:     make(map[memmod.LocSet]uint64),
		lookupCache: make(map[lookupKey]lookupEntry),
		suCache:     make(map[suKey]suEntry),
		phiCache:    make(map[*cfg.Node][]memmod.LocSet),
	}
}

// Proc returns the procedure this points-to function covers.
func (p *PTS) Proc() *cfg.Proc { return p.proc }

// SetConcurrent enables mutex protection of the memoization caches for
// analyses that read points-to functions from several goroutines. Off by
// default (single-threaded runs pay no locking cost).
func (p *PTS) SetConcurrent(on bool) { p.concurrent = on }

// SetHooks installs change notification callbacks. onChange is invoked
// after a record for loc changes (new record, widened values, or a
// weakened strong flag); onPhi is invoked when a φ-function is first
// placed for some location at a node. Either may be nil.
func (p *PTS) SetHooks(onChange func(memmod.LocSet), onPhi func(*cfg.Node)) {
	p.onChange = onChange
	p.onPhi = onPhi
}

// LookupIn returns the values of loc flowing INTO node at (excluding any
// record at the node itself): the nearest strictly-dominating record.
// after, when non-nil, is a strong-update barrier: records at nodes not
// dominated by it are invisible. The boolean reports whether any record
// was found (false means the caller must consult the initial values).
func (p *PTS) LookupIn(loc memmod.LocSet, at *cfg.Node, after *cfg.Node) (memmod.ValueSet, bool) {
	return p.lookup(loc, at, after, false)
}

// LookupOut returns the values of loc flowing OUT of node at (including
// a record at the node itself).
func (p *PTS) LookupOut(loc memmod.LocSet, at *cfg.Node, after *cfg.Node) (memmod.ValueSet, bool) {
	return p.lookup(loc, at, after, true)
}

func (p *PTS) lookup(loc memmod.LocSet, at *cfg.Node, after *cfg.Node, includeAt bool) (memmod.ValueSet, bool) {
	loc = loc.Resolve()
	key := lookupKey{loc, at, after, includeAt}
	sg := memmod.SubsumeGen()
	if p.concurrent {
		p.mu.Lock()
	}
	lg := p.locGens[loc]
	e, cached := p.lookupCache[key]
	if p.concurrent {
		p.mu.Unlock()
	}
	if cached && e.subGen == sg && e.locGen == lg {
		return e.vals, e.found
	}
	var best *Record
	for _, r := range p.recs[loc] {
		if r.Node == at && !includeAt {
			continue
		}
		if !r.Node.Dominates(at) {
			continue
		}
		if after != nil && !after.Dominates(r.Node) {
			continue
		}
		if best == nil || best.Node.Dominates(r.Node) {
			best = r
		}
	}
	var vals memmod.ValueSet
	found := best != nil
	if found {
		vals = best.Vals.Resolved()
	}
	if p.concurrent {
		p.mu.Lock()
	}
	p.lookupCache[key] = lookupEntry{vals: vals, found: found, locGen: lg, subGen: sg}
	if p.concurrent {
		p.mu.Unlock()
	}
	return vals, found
}

// RecordAt returns the record for loc exactly at node, or nil.
func (p *PTS) RecordAt(loc memmod.LocSet, at *cfg.Node) *Record {
	loc = loc.Resolve()
	for _, r := range p.recs[loc] {
		if r.Node == at {
			return r
		}
	}
	return nil
}

// Assign records that loc holds vals at node. strong marks a strong
// update (replacing previous values on re-evaluation); weak updates must
// have folded the incoming values into vals already (paper Figure 11).
// It reports whether the points-to function changed.
func (p *PTS) Assign(loc memmod.LocSet, vals memmod.ValueSet, at *cfg.Node, strong bool) bool {
	return p.assign(loc, vals, at, strong, false)
}

// AssignPhi records a φ result at a meet node.
func (p *PTS) AssignPhi(loc memmod.LocSet, vals memmod.ValueSet, at *cfg.Node) bool {
	return p.assign(loc, vals, at, false, true)
}

func (p *PTS) assign(loc memmod.LocSet, vals memmod.ValueSet, at *cfg.Node, strong, phi bool) bool {
	loc = loc.Resolve()
	vals = vals.Resolved()
	if r := p.RecordAt(loc, at); r != nil {
		changed := false
		if strong && r.Strong {
			// Re-evaluated strong update: replace.
			if !r.Vals.Equal(vals) {
				r.Vals = vals
				changed = true
			}
		} else {
			if r.Vals.AddAll(vals) {
				changed = true
			}
			if r.Strong && !strong {
				r.Strong = false
				changed = true
			}
		}
		if changed {
			p.bumpLoc(loc)
		}
		return changed
	}
	r := &Record{Node: at, Loc: loc, Vals: vals.Clone(), Strong: strong, Phi: phi}
	if len(p.recs[loc]) == 0 {
		p.locsCache = nil
	}
	p.recs[loc] = append(p.recs[loc], r)
	p.bumpLoc(loc)
	p.insertPhis(loc, at)
	return true
}

// bumpLoc invalidates cached queries about loc and fires onChange.
func (p *PTS) bumpLoc(loc memmod.LocSet) {
	p.locGens[loc]++
	if p.onChange != nil {
		p.onChange(loc)
	}
}

// insertPhis places φ-functions for loc on the iterated dominance
// frontier of node (dynamic SSA construction, paper §4.2).
func (p *PTS) insertPhis(loc memmod.LocSet, node *cfg.Node) {
	work := []*cfg.Node{node}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range n.DF {
			set := p.phis[m]
			if set == nil {
				set = make(map[memmod.LocSet]bool)
				p.phis[m] = set
			}
			if set[loc] {
				continue
			}
			set[loc] = true
			delete(p.phiCache, m)
			if p.onPhi != nil {
				p.onPhi(m)
			}
			work = append(work, m)
		}
	}
}

// PhiLocs returns the locations with φ-functions at meet node nd, in a
// deterministic order. The caller must not mutate the result.
func (p *PTS) PhiLocs(nd *cfg.Node) []memmod.LocSet {
	set := p.phis[nd]
	if len(set) == 0 {
		return nil
	}
	if p.concurrent {
		p.mu.Lock()
	}
	out, ok := p.phiCache[nd]
	if p.concurrent {
		p.mu.Unlock()
	}
	if ok {
		return out
	}
	out = make([]memmod.LocSet, 0, len(set))
	for loc := range set {
		out = append(out, loc)
	}
	sort.Slice(out, func(i, j int) bool { return lessLoc(out[i], out[j]) })
	if p.concurrent {
		p.mu.Lock()
	}
	p.phiCache[nd] = out
	if p.concurrent {
		p.mu.Unlock()
	}
	return out
}

func lessLoc(a, b memmod.LocSet) bool {
	if a.Base != b.Base {
		return a.Base.Name < b.Base.Name
	}
	if a.Off != b.Off {
		return a.Off < b.Off
	}
	return a.Stride < b.Stride
}

// FindStrongUpdate returns the nearest dominating node (strictly before
// at) holding a strong update of loc, or nil (paper Figure 10).
func (p *PTS) FindStrongUpdate(loc memmod.LocSet, at *cfg.Node) *cfg.Node {
	loc = loc.Resolve()
	key := suKey{loc, at}
	sg := memmod.SubsumeGen()
	if p.concurrent {
		p.mu.Lock()
	}
	lg := p.locGens[loc]
	e, cached := p.suCache[key]
	if p.concurrent {
		p.mu.Unlock()
	}
	if cached && e.subGen == sg && e.locGen == lg {
		return e.node
	}
	var best *Record
	for _, r := range p.recs[loc] {
		if !r.Strong || r.Node == at || !r.Node.Dominates(at) {
			continue
		}
		if best == nil || best.Node.Dominates(r.Node) {
			best = r
		}
	}
	var nd *cfg.Node
	if best != nil {
		nd = best.Node
	}
	if p.concurrent {
		p.mu.Lock()
	}
	p.suCache[key] = suEntry{node: nd, locGen: lg, subGen: sg}
	if p.concurrent {
		p.mu.Unlock()
	}
	return nd
}

// Locations returns every location set with at least one record, in a
// deterministic order. The caller must not mutate the result.
func (p *PTS) Locations() []memmod.LocSet {
	if p.locsCache != nil || len(p.recs) == 0 {
		return p.locsCache
	}
	out := make([]memmod.LocSet, 0, len(p.recs))
	for loc := range p.recs {
		out = append(out, loc)
	}
	sort.Slice(out, func(i, j int) bool { return lessLoc(out[i], out[j]) })
	p.locsCache = out
	return out
}

// Records returns the records of loc (for diagnostics).
func (p *PTS) Records(loc memmod.LocSet) []*Record { return p.recs[loc.Resolve()] }

// NumRecords returns the total number of sparse records.
func (p *PTS) NumRecords() int {
	n := 0
	for _, rs := range p.recs {
		n += len(rs)
	}
	return n
}

// Rehome re-canonicalizes all record keys after parameter subsumption:
// keys whose base was subsumed are resolved and merged. The analysis
// calls this after introducing a subsumption (paper §3.2). All memoized
// query state is discarded (the subsumption-generation guard already
// invalidates cached entries; clearing reclaims the memory).
func (p *PTS) Rehome() {
	dirty := false
	for loc := range p.recs {
		if loc.Resolve() != loc {
			dirty = true
			break
		}
	}
	if !dirty {
		return
	}
	old := p.recs
	p.recs = make(map[memmod.LocSet][]*Record, len(old))
	for loc, rs := range old {
		nl := loc.Resolve()
		for _, r := range rs {
			r.Loc = nl
			// Merge with an existing record at the same node.
			if ex := p.RecordAt(nl, r.Node); ex != nil {
				ex.Vals.AddAll(r.Vals)
				if !r.Strong {
					ex.Strong = false
				}
				continue
			}
			p.recs[nl] = append(p.recs[nl], r)
		}
	}
	// φ sets as well.
	for nd, set := range p.phis {
		ns := make(map[memmod.LocSet]bool, len(set))
		for loc := range set {
			ns[loc.Resolve()] = true
		}
		p.phis[nd] = ns
	}
	p.locGens = make(map[memmod.LocSet]uint64)
	p.lookupCache = make(map[lookupKey]lookupEntry)
	p.suCache = make(map[suKey]suEntry)
	p.locsCache = nil
	p.phiCache = make(map[*cfg.Node][]memmod.LocSet)
}
