// Micro-benchmarks for the set kernels under the points-to layer: row
// union and iteration on both sides of the sparse/dense threshold, and
// the location-set intern table's hit and miss paths. These are the
// inner loops the Table 2 numbers decompose into; run with
//
//	go test ./internal/ptset -bench 'Row|Intern' -benchmem
package ptset

import (
	"fmt"
	"testing"

	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/ctype"
	"wlpa/internal/memmod"
)

// benchRow seeds a single row with n members at entry and returns the
// points-to function, the row's key and the node.
func benchRow(b *testing.B, n int) (*PTS, memmod.LocSet, *cfg.Node) {
	p := buildProc(b, `
int a, bb;
int *r;
void f(int c) {
    if (c) r = &a; else r = &bb;
    r = r;
}`, "f")
	pts := New(p, memmod.NewInterner())
	target := loc("bench_row")
	var vals memmod.ValueSet
	for i := 0; i < n; i++ {
		vals.Add(loc(fmt.Sprintf("bench_m%02d", i)))
	}
	pts.Assign(target, vals, p.Entry, false)
	if n > memmod.DenseThreshold {
		// Promote now (the index attaches on the first union past the
		// threshold) so the timed loop measures the dense kernel only.
		pts.Assign(target, vals, p.Entry, false)
		if pts.NumDenseRows() != 1 {
			b.Fatalf("expected a dense row at %d members", n)
		}
	}
	return pts, target, p.Entry
}

// rowSizes spans the representation boundary: comfortably sparse, the
// promotion threshold itself, and deep in bitset territory.
var rowSizes = []int{8, memmod.DenseThreshold, 64}

// BenchmarkRowUnion measures the steady-state weak union of a full
// member set into an existing row — the no-growth membership walk that
// dominates convergence passes (sparse: sorted-slice merge; dense:
// bitset probes).
func BenchmarkRowUnion(b *testing.B) {
	for _, n := range rowSizes {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			pts, target, nd := benchRow(b, n)
			vals, _ := pts.LookupOut(target, nd, nil)
			vals = vals.Clone()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts.Assign(target, vals, nd, false)
			}
		})
	}
}

// BenchmarkRowIterate measures reading a row back out: the dominator-
// walk lookup (cached) plus a full iteration of the member slice.
func BenchmarkRowIterate(b *testing.B) {
	for _, n := range rowSizes {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			pts, target, nd := benchRow(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			var sink int64
			for i := 0; i < b.N; i++ {
				vals, _ := pts.LookupOut(target, nd, nil)
				for _, l := range vals.Locs() {
					sink += l.Off
				}
			}
			_ = sink
		})
	}
}

// BenchmarkInternHit measures re-interning already-known location sets
// (the analysis's common case: every lookup and assign keys through the
// table).
func BenchmarkInternHit(b *testing.B) {
	in := memmod.NewInterner()
	blk := memmod.NewLocal(&cast.Symbol{Kind: cast.SymVar, Name: "intern_hit", Type: ctype.PointerTo(ctype.IntType)})
	keys := make([]memmod.LocSet, 512)
	for i := range keys {
		keys[i] = memmod.Loc(blk, int64(8*i), 0)
		in.ID(keys[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.ID(keys[i&511])
	}
}

// BenchmarkInternMiss measures first-time interning: every iteration
// presents a set the table has never seen (hash, probe, insert, ID
// assignment).
func BenchmarkInternMiss(b *testing.B) {
	in := memmod.NewInterner()
	blk := memmod.NewLocal(&cast.Symbol{Kind: cast.SymVar, Name: "intern_miss", Type: ctype.PointerTo(ctype.IntType)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.ID(memmod.Loc(blk, int64(8*i), 0))
	}
}
