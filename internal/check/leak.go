package check

import (
	"fmt"

	"wlpa/internal/analysis"
	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// leakSkip lists allocating library calls whose storage is not an
// ordinary leak candidate: FILE handles live inside the C library (and
// are flagged as resource leaks by fclose-oriented tooling, not here),
// and getenv returns storage the program does not own.
var leakSkip = map[string]bool{
	"fopen": true, "freopen": true, "tmpfile": true, "getenv": true,
}

// leakProgram is the memory-leak checker. It is a program pass: a leak
// is a property of the whole converged solution (every free site, the
// reachability of the heap block from live roots at exit), not of one
// calling context.
//
// For each reached allocation site with heap block hb:
//
//   - Error if no free site in any context may release hb AND hb is
//     unreachable from globals and string literals in the final
//     solution. Such storage is definitely lost on every execution that
//     performs the allocation.
//   - Silent if the analysis can prove the storage is always released
//     (a free dominating the procedure's exit whose argument is exactly
//     {hb}, in every context — sound because a double free faults) or
//     always still reachable at exit (a strong update of a precise
//     global dominating main's exit whose contents are exactly {hb},
//     for single-shot sites in main).
//   - Warning otherwise (freed or reachable only on some paths).
//
// The must-proofs require that the allocation runs at most once per
// activation (site not in a CFG cycle) and that no early termination
// or re-entry of main can bypass the proof obligations.
func leakProgram(c *Ctx) {
	a := c.A
	sites := a.AllocSites()
	if len(sites) == 0 {
		return
	}
	reach := reachableFromRoots(a)
	escapes := programEscapesStructure(a)
	mainPTF := a.MainPTF()
	for _, s := range sites {
		if leakSkip[s.Callee] {
			continue
		}
		hb := s.Block.Representative()
		mayFreed := false
		for _, fss := range c.frees {
			for i := range fss {
				if blockIn(a.Concretize(fss[i].Vals), hb) {
					mayFreed = true
					break
				}
			}
			if mayFreed {
				break
			}
		}
		mayReach := reach[hb]
		if !inCycle(s.Node) && !escapes {
			if mustFreed(c, s, hb) {
				continue
			}
			if mainPTF != nil && s.Proc == mainPTF.Proc && mustReach(a, mainPTF, hb) {
				continue
			}
		}
		sev := Warning
		var msg string
		switch {
		case !mayFreed && !mayReach:
			sev = Error
			msg = fmt.Sprintf("storage allocated by %s is never freed and unreachable at exit (memory leak)", s.Callee)
		case !mayFreed:
			msg = fmt.Sprintf("storage allocated by %s is never freed (may remain reachable at exit)", s.Callee)
		default:
			msg = fmt.Sprintf("storage allocated by %s may leak (freed or reachable only on some paths)", s.Callee)
		}
		c.reportProgram(Diagnostic{
			Check:    "leak",
			Sev:      sev,
			Pos:      s.Node.Pos,
			Proc:     s.Proc.Name,
			Message:  msg,
			Contexts: c.Contexts(s.Proc.Name),
			Trace:    leakTrace(a, s.Proc),
		})
	}
}

// leakTrace picks the first walked context of the allocating procedure
// for the diagnostic's call chain.
func leakTrace(a *analysis.Analysis, proc *cfg.Proc) []string {
	for _, p := range a.AllPTFs() {
		if p.Proc == proc && (p.ExitReached() || p == a.MainPTF()) {
			return contextTrace(p)
		}
	}
	return nil
}

// inCycle reports whether nd can reach itself in its procedure's CFG,
// i.e. one activation may execute it more than once.
func inCycle(nd *cfg.Node) bool {
	seen := map[*cfg.Node]bool{}
	stack := append([]*cfg.Node{}, nd.Succs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == nd {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.Succs...)
	}
	return false
}

// leakEscapers defeat the must-proofs: early termination skips frees
// that dominate the exit node, and re-entering main breaks the
// single-activation argument.
var leakEscapers = map[string]bool{
	"exit": true, "abort": true, "_assert_fail": true, "longjmp": true,
	"main": true,
}

// programEscapesStructure reports whether any reached procedure may
// terminate early or re-enter main — directly or through a function
// pointer.
func programEscapesStructure(a *analysis.Analysis) bool {
	if a.FuncBlock("main") != nil {
		// main's address is taken; an indirect call may re-enter it.
		return true
	}
	seenProc := map[*cfg.Proc]bool{}
	for _, p := range a.AllPTFs() {
		byProc := !seenProc[p.Proc]
		seenProc[p.Proc] = true
		for _, nd := range p.Proc.Nodes {
			if nd.Kind != cfg.CallNode {
				continue
			}
			if nd.Direct != nil {
				if byProc && leakEscapers[nd.Direct.Name] {
					return true
				}
				continue
			}
			if nd.Fun == nil {
				continue
			}
			for _, l := range a.EvalAt(p, nd.Fun, nd).Locs() {
				if b := l.Resolve().Base; b.Kind == memmod.FuncBlock && leakEscapers[b.Name] {
					return true
				}
			}
		}
	}
	return false
}

// reachableFromRoots computes the heap blocks reachable from storage
// that outlives main — globals and string literals — in the converged
// solution. Block-level: any pointer stored anywhere in a reached block
// extends the frontier.
func reachableFromRoots(a *analysis.Analysis) map[*memmod.Block]bool {
	reach := map[*memmod.Block]bool{}
	sol := a.Solution()
	if sol == nil {
		return reach
	}
	locs := sol.Locations()
	byBase := map[*memmod.Block][]memmod.LocSet{}
	for _, l := range locs {
		byBase[l.Base.Representative()] = append(byBase[l.Base.Representative()], l)
	}
	var stack []*memmod.Block
	push := func(b *memmod.Block) {
		b = b.Representative()
		if !reach[b] {
			reach[b] = true
			stack = append(stack, b)
		}
	}
	for b := range byBase {
		if b.Kind == memmod.GlobalBlock || b.Kind == memmod.StringBlock {
			push(b)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range byBase[b] {
			for _, v := range sol.PointsTo(l).Locs() {
				vb := v.Resolve().Base
				if vb.Kind != memmod.NullBlock && vb.Kind != memmod.FuncBlock {
					push(vb)
				}
			}
		}
	}
	return reach
}

// mustFreed proves the allocation is released on every completed
// execution: in every context of the allocating procedure, some free
// whose argument set is exactly {hb} dominates the procedure's exit.
// With the site outside any cycle each activation allocates at most one
// hb object, and each such free releases a live hb object (releasing a
// dead one would be a double free, which is a fault, and the oracle
// only scores fault-free runs) — so releases ≥ allocations and nothing
// survives.
func mustFreed(c *Ctx, s analysis.AllocSite, hb *memmod.Block) bool {
	ptfs := c.A.PTFs(s.Proc.Name)
	if len(ptfs) == 0 {
		return false
	}
	for _, p := range ptfs {
		if !p.ExitReached() && p != c.A.MainPTF() {
			return false
		}
		ok := false
		for i := range c.frees[p] {
			fs := &c.frees[p][i]
			if !fs.Node.Dominates(s.Proc.Exit) {
				continue
			}
			vals := c.A.Concretize(fs.Vals)
			if vals.IsEmpty() {
				continue
			}
			exact := true
			for _, l := range vals.Locs() {
				if l.Resolve().Base.Representative() != hb {
					exact = false
					break
				}
			}
			if exact {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// mustReach proves a single-shot allocation in main is still reachable
// when main exits: some precise global location receives a strong
// update dominating main's exit and holds exactly {hb} there. The
// strong update guarantees the location was definitely written; the
// exact value set guarantees what it holds is an hb pointer; and with
// at most one hb object per run, that object is the one it points to.
func mustReach(a *analysis.Analysis, mainPTF *analysis.PTF, hb *memmod.Block) bool {
	sol := a.Solution()
	if sol == nil {
		return false
	}
	exit := mainPTF.Proc.Exit
	for _, loc := range sol.Locations() {
		if loc.Base.Kind != memmod.GlobalBlock || !loc.Precise() {
			continue
		}
		if mainPTF.Pts.FindStrongUpdate(loc, exit) == nil {
			continue
		}
		vals := a.ContentsAt(mainPTF, loc, exit)
		if vals.IsEmpty() {
			continue
		}
		exact := true
		for _, l := range vals.Locs() {
			if l.Resolve().Base.Representative() != hb {
				exact = false
				break
			}
		}
		if exact {
			return true
		}
	}
	return false
}
