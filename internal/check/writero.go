package check

import (
	"fmt"

	"wlpa/internal/analysis"
	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// writeroWalk reports writes into string-literal storage, which C
// places in read-only memory: direct stores whose target set includes a
// string block, and calls whose MOD summary (folded through the callee,
// including library effects) includes one.
func writeroWalk(c *Ctx, p *analysis.PTF) {
	for _, nd := range p.Proc.Nodes {
		switch nd.Kind {
		case cfg.AssignNode:
			c.checkStringStore(p, nd, nd.Dst)
		case cfg.CallNode:
			if nd.RetDst != nil {
				c.checkStringStore(p, nd, nd.RetDst)
			}
			mod, _ := c.ModRef.NodeEffects(p, nd)
			for _, l := range c.A.Concretize(mod).Locs() {
				if b := l.Resolve().Base; b.Kind == memmod.StringBlock {
					c.report("writero", nd.Pos, Warning,
						fmt.Sprintf("call may write into read-only string literal %s", b.Name))
					break
				}
			}
		}
	}
}

// checkStringStore reports top-level deref stores whose targets include
// string-literal storage. Error when every (non-null) target is a
// string literal; the null targets are nullderef's business.
func (c *Ctx) checkStringStore(p *analysis.PTF, nd *cfg.Node, dst *cfg.Expr) {
	for _, t := range dst.Terms {
		if t.Kind != cfg.TermDeref {
			continue
		}
		total, strs := 0, 0
		var name string
		for _, l := range c.A.Concretize(c.A.TermValuesAt(p, t, nd)).Locs() {
			b := l.Resolve().Base
			total++
			if b.Kind == memmod.StringBlock {
				strs++
				if name == "" {
					name = b.Name
				}
			}
		}
		if strs == 0 {
			continue
		}
		sev, word := Warning, "may write"
		if strs == total {
			sev, word = Error, "writes"
		}
		c.report("writero", nd.Pos, sev,
			fmt.Sprintf("%s into read-only string literal %s through %q", word, name, renderTerm(t)))
	}
}
