package check_test

import (
	"strings"
	"testing"

	"wlpa/internal/check"
	"wlpa/internal/workload"
)

// renderAll flattens diagnostics to their full textual form (position,
// severity, message, check, context chain) for exact comparison.
func renderAll(diags []check.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestWorkerDeterminism verifies the satellite requirement: the checker
// produces byte-identical, ordered, deduplicated output at every worker
// count, over both the benchmark suite and the seeded-bug fixtures.
func TestWorkerDeterminism(t *testing.T) {
	sources := map[string]string{}
	for _, b := range workload.Suite() {
		sources[b.Name] = b.Source
	}
	for name, src := range workload.BugFixtures() {
		sources["bug_"+name] = src
	}
	for name, src := range sources {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			a := analyze(t, name+".c", src)
			base := renderAll(run(t, a, check.Options{Workers: 1}))
			for _, w := range []int{2, 4, 8} {
				got := renderAll(run(t, a, check.Options{Workers: w}))
				if got != base {
					t.Fatalf("diagnostics differ between 1 and %d workers:\n-- 1 --\n%s\n-- %d --\n%s",
						w, base, w, got)
				}
			}
		})
	}
}

// TestDiagnosticChain verifies Diagnostic.String() carries the calling
// context as a compact call chain.
func TestDiagnosticChain(t *testing.T) {
	src := `
int *gp;
int *leaky(void) { int x; int *p; p = &x; return p; }
int *wrap(void) { return leaky(); }
int main(void) {
    gp = wrap();
    return 0;
}`
	a := analyze(t, "chain.c", src)
	found := false
	for _, d := range run(t, a, check.Options{}) {
		if d.Check != "localescape" || d.Proc != "leaky" {
			continue
		}
		found = true
		if got := d.Chain(); got != "main -> wrap -> leaky" {
			t.Errorf("Chain() = %q, want %q", got, "main -> wrap -> leaky")
		}
		if s := d.String(); !strings.Contains(s, "(in main -> wrap -> leaky)") {
			t.Errorf("String() = %q: missing context chain", s)
		}
	}
	if !found {
		t.Fatal("localescape in leaky not reported")
	}
}

// TestWriteroThroughParameter verifies the string-literal write check
// resolves extended parameters back to their bindings: the defective
// store is in a callee two calls deep.
func TestWriteroThroughParameter(t *testing.T) {
	src := `
void put(char *s) { *s = 'H'; }
void mid(char *s) { put(s); }
int main(void) {
    mid("hello");
    return 0;
}`
	a := analyze(t, "wro.c", src)
	found := false
	for _, d := range run(t, a, check.Options{}) {
		if d.Check == "writero" && d.Proc == "put" {
			found = true
			if d.Sev != check.Error {
				t.Errorf("writero through parameter reported as %s, want error", d.Sev)
			}
		}
	}
	if !found {
		t.Fatal("writero store through parameter not reported")
	}
}

// TestRegistry pins the pass registry's invariants: the builtin check
// list (order is API — it fixes All and the walk order), and rejection
// of conflicting registrations.
func TestRegistry(t *testing.T) {
	want := []string{
		"nullderef", "uninitderef", "useafterfree", "doublefree",
		"localescape", "badcall", "writero", "leak",
		"useafterclose", "doubleclose", "fileleak",
		"taintflow", "taintfmt",
	}
	if len(check.All) != len(want) {
		t.Fatalf("All = %v, want %v", check.All, want)
	}
	for i, id := range want {
		if check.All[i] != id {
			t.Fatalf("All[%d] = %q, want %q (full: %v)", i, check.All[i], id, check.All)
		}
	}
	if err := check.Register(&check.Pass{Name: "deref", Checks: []string{"x"},
		Program: func(*check.Ctx) {}}); err == nil {
		t.Error("duplicate pass name accepted")
	}
	if err := check.Register(&check.Pass{Name: "fresh", Checks: []string{"leak"},
		Program: func(*check.Ctx) {}}); err == nil {
		t.Error("duplicate check identifier accepted")
	}
	if err := check.Register(&check.Pass{Name: "hookless", Checks: []string{"y"}}); err == nil {
		t.Error("pass without hooks accepted")
	}
}
