package check

import (
	"fmt"
	"strings"

	"wlpa/internal/analysis"
	"wlpa/internal/cfg"
	"wlpa/internal/ctok"
	"wlpa/internal/memmod"
)

// checkReads verifies every dereference within e: the base values of
// each TermDeref are the addresses being read.
func (c *Ctx) checkReads(p *analysis.PTF, nd *cfg.Node, e *cfg.Expr) {
	if e == nil {
		return
	}
	for _, t := range e.Terms {
		if t.Kind != cfg.TermDeref {
			continue
		}
		// A deref of a plain variable's storage (base = &v) reads the
		// variable itself and cannot fault; only derefs whose base is
		// itself a loaded pointer value are C-level dereferences.
		if !isVarAddr(t.Base) {
			ptrs := c.A.EvalAt(p, t.Base, nd)
			c.checkPointee(p, nd, ptrs, render(t.Base), false)
		}
		c.checkReads(p, nd, t.Base)
	}
}

// checkStores verifies the top-level deref terms of a destination
// expression: their deref results are the locations being written.
func (c *Ctx) checkStores(p *analysis.PTF, nd *cfg.Node, dst *cfg.Expr) {
	if dst == nil {
		return
	}
	for _, t := range dst.Terms {
		if t.Kind != cfg.TermDeref {
			continue
		}
		targets := c.A.TermValuesAt(p, t, nd)
		c.checkPointee(p, nd, targets, renderTerm(t), true)
	}
}

// checkPointee reports nullderef / uninitderef / useafterfree for the
// pointer values vals dereferenced at nd.
func (c *Ctx) checkPointee(p *analysis.PTF, nd *cfg.Node, vals memmod.ValueSet, desc string, write bool) {
	access := "read through"
	if write {
		access = "write through"
	}
	if vals.IsEmpty() {
		c.report("uninitderef", nd.Pos, Error,
			fmt.Sprintf("%s %q: pointer has no targets (uninitialized)", access, desc))
		return
	}
	total, nulls, freed := 0, 0, 0
	var freedAt ctok.Pos
	for _, l := range vals.Locs() {
		l = l.Resolve()
		total++
		switch l.Base.Kind {
		case memmod.NullBlock:
			nulls++
		case memmod.HeapBlock:
			if fs := c.dominatingFree(p, nd, l.Base); fs != nil {
				freed++
				if !freedAt.IsValid() {
					freedAt = fs.Node.Pos
				}
			}
		}
	}
	if nulls > 0 {
		sev := Warning
		word := "may be"
		if nulls == total {
			sev = Error
			word = "is"
		}
		c.report("nullderef", nd.Pos, sev,
			fmt.Sprintf("%s %q: pointer %s NULL", access, desc, word))
	}
	if freed > 0 {
		sev := Warning
		if freed == total {
			sev = Error
		}
		c.report("useafterfree", nd.Pos, sev,
			fmt.Sprintf("%s %q: storage freed at %s", access, desc, freedAt))
	}
}

// dominatingFree finds a deallocation of block b in context p whose call
// strictly dominates nd with no intervening reallocation, i.e. the block
// is certainly freed when control reaches nd.
func (c *Ctx) dominatingFree(p *analysis.PTF, nd *cfg.Node, b *memmod.Block) *analysis.FreeSite {
	b = b.Representative()
	for i := range c.frees[p] {
		fs := &c.frees[p][i]
		if fs.Node == nd || !fs.Node.Dominates(nd) {
			continue
		}
		if !freesBlock(fs.Vals, b) {
			continue
		}
		if c.reallocatedBetween(p, b, fs.Node, nd) {
			continue
		}
		return fs
	}
	return nil
}

func freesBlock(vals memmod.ValueSet, b *memmod.Block) bool {
	for _, l := range vals.Locs() {
		if l.Resolve().Base == b {
			return true
		}
	}
	return false
}

// reallocatedBetween reports whether a call on every path between from
// and to (i.e. dominated by from and dominating to) may have supplied
// block b afresh — directly as an allocation site, or through its
// return value. Such a call re-validates the pointer for the purposes
// of the use-after-free and double-free checks.
func (c *Ctx) reallocatedBetween(p *analysis.PTF, b *memmod.Block, from, to *cfg.Node) bool {
	for _, na := range p.Proc.Nodes {
		if na.Kind != cfg.CallNode || na == from || na == to {
			continue
		}
		if !from.Dominates(na) || !na.Dominates(to) {
			continue
		}
		if hb := c.A.HeapBlockAt(na); hb != nil && hb.Representative() == b {
			return true
		}
		if na.RetDst != nil {
			for _, dl := range c.A.EvalAt(p, na.RetDst, na).Locs() {
				if blockIn(c.A.ContentsAfter(p, dl, na), b) {
					return true
				}
			}
		}
	}
	return false
}

func blockIn(vals memmod.ValueSet, b *memmod.Block) bool {
	for _, l := range vals.Locs() {
		if l.Resolve().Base.Representative() == b {
			return true
		}
	}
	return false
}

// checkDoubleFree reports frees of storage already freed on every path
// to the call within the same context.
func (c *Ctx) checkDoubleFree(p *analysis.PTF) {
	sites := c.frees[p]
	for i := range sites {
		f2 := &sites[i]
		heaps, refreed := 0, 0
		var firstAt ctok.Pos
		for _, l := range f2.Vals.Locs() {
			b := l.Resolve().Base
			if b.Kind != memmod.HeapBlock {
				continue
			}
			heaps++
			for j := range sites {
				f1 := &sites[j]
				if f1.Node == f2.Node || !f1.Node.Dominates(f2.Node) {
					continue
				}
				if !freesBlock(f1.Vals, b) || c.reallocatedBetween(p, b, f1.Node, f2.Node) {
					continue
				}
				refreed++
				if !firstAt.IsValid() {
					firstAt = f1.Node.Pos
				}
				break
			}
		}
		if refreed == 0 {
			continue
		}
		sev := Warning
		if refreed == heaps {
			sev = Error
		}
		c.report("doublefree", f2.Node.Pos, sev,
			fmt.Sprintf("storage already freed at %s is freed again", firstAt))
	}
}

// checkRetvalEscape reports procedures whose return value includes the
// address of one of their own locals (dead storage at every call site).
func (c *Ctx) checkRetvalEscape(p *analysis.PTF) {
	if p.Proc.Name == "main" {
		// main's activation outlives every observer.
		return
	}
	exit := p.Proc.Exit
	// Whole-block lookup: a struct return may carry the pointer at any
	// offset of the retval block.
	vals := c.A.ContentsAt(p, p.RetvalLoc().Unknown(), exit)
	for _, l := range vals.Locs() {
		b := l.Resolve().Base
		if b.Kind == memmod.LocalBlock {
			c.report("localescape", exit.Pos, Error,
				fmt.Sprintf("returning address of local %q", b.Name))
			return
		}
	}
}

// checkStoreEscape reports stores of a local's address into storage that
// outlives the procedure (globals, heap blocks, or caller storage named
// by extended parameters). The stored address may be consumed before
// the procedure returns, so this is a Warning in every context.
func (c *Ctx) checkStoreEscape(p *analysis.PTF, nd *cfg.Node) {
	if !c.enabled["localescape"] || nd.Aggregate || p.Proc.Name == "main" {
		return
	}
	var local *memmod.Block
	for _, l := range c.A.EvalAt(p, nd.Src, nd).Locs() {
		if b := l.Resolve().Base; b.Kind == memmod.LocalBlock {
			local = b
			break
		}
	}
	if local == nil {
		return
	}
	for _, l := range c.A.EvalAt(p, nd.Dst, nd).Locs() {
		switch l.Resolve().Base.Kind {
		case memmod.GlobalBlock, memmod.ParamBlock, memmod.HeapBlock:
			c.report("localescape", nd.Pos, Warning,
				fmt.Sprintf("address of local %q stored in storage that may outlive %s", local.Name, p.Proc.Name))
			return
		}
	}
}

// checkBadCall reports indirect calls whose target values include
// non-function storage.
func (c *Ctx) checkBadCall(p *analysis.PTF, nd *cfg.Node) {
	vals := c.A.EvalAt(p, nd.Fun, nd)
	if vals.IsEmpty() {
		c.report("badcall", nd.Pos, Error,
			fmt.Sprintf("indirect call through %q: no targets (uninitialized function pointer)", render(nd.Fun)))
		return
	}
	total := 0
	var bad []string
	for _, l := range vals.Locs() {
		l = l.Resolve()
		total++
		switch l.Base.Kind {
		case memmod.FuncBlock:
			// A real function.
		case memmod.ParamBlock:
			// An input function pointer; its targets are part of the
			// PTF input domain and resolve to functions at each call
			// site.
		case memmod.NullBlock:
			bad = append(bad, "NULL")
		default:
			bad = append(bad, l.Base.Name)
		}
	}
	if len(bad) == 0 {
		return
	}
	sev := Warning
	if len(bad) == total {
		sev = Error
	}
	c.report("badcall", nd.Pos, sev,
		fmt.Sprintf("indirect call through %q may target non-function: %s", render(nd.Fun), strings.Join(bad, ", ")))
}

// render writes an IR value expression the way the programmer wrote it:
// a TermVar denotes a variable's storage (value "&v"), and each
// dereference strips one address-of.
func render(e *cfg.Expr) string {
	if e == nil || len(e.Terms) == 0 {
		return "⊥"
	}
	if len(e.Terms) > 1 {
		parts := make([]string, len(e.Terms))
		for i, t := range e.Terms {
			parts[i] = renderTerm(t)
		}
		return "(" + strings.Join(parts, " | ") + ")"
	}
	return renderTerm(e.Terms[0])
}

func renderTerm(t cfg.Term) string {
	var core string
	switch t.Kind {
	case cfg.TermVar:
		core = "&" + t.Sym.Name
	case cfg.TermFunc:
		core = t.Sym.Name
	case cfg.TermStr:
		core = fmt.Sprintf("%q", t.StrVal)
	case cfg.TermNull:
		core = "NULL"
	case cfg.TermDeref:
		inner := render(t.Base)
		if strings.HasPrefix(inner, "&") {
			core = inner[1:]
		} else {
			core = "*" + inner
		}
	}
	if t.Off != 0 {
		core = fmt.Sprintf("(%s+%d)", core, t.Off)
	}
	if t.Stride != 0 {
		core = fmt.Sprintf("(%s[.])", core)
	}
	return core
}

// isVarAddr reports whether e is a bare variable-storage expression
// (&v): dereferencing it reads the variable itself and cannot fault.
func isVarAddr(e *cfg.Expr) bool {
	return e != nil && len(e.Terms) == 1 && e.Terms[0].Kind == cfg.TermVar
}
