package check

import (
	"fmt"

	"wlpa/internal/analysis"
	"wlpa/internal/cfg"
)

// A Pass is one pluggable checker. A pass declares the check
// identifiers it may emit (selection via Options.Checks is by check
// identifier, not pass name) and implements one or both hooks:
//
//   - ContextWalk runs once per analyzed calling context (PTF). Its
//     verdicts are merged across contexts: a defect present in every
//     context of a procedure is an Error, otherwise a Warning.
//     ContextWalk must be safe to run concurrently with other contexts'
//     walks — it may query the analysis and MOD/REF tables but must not
//     mutate shared state outside the Ctx reporting helpers.
//   - Program runs once, sequentially, after all context walks, and
//     sees the whole converged picture (call graph, every context,
//     solution). It decides diagnostic severities itself.
type Pass struct {
	// Name identifies the pass (unique across the registry).
	Name string
	// Doc is a one-line description.
	Doc string
	// Checks lists the check identifiers this pass may report.
	Checks []string
	// ContextWalk checks one calling context; may be nil.
	ContextWalk func(c *Ctx, p *analysis.PTF)
	// Program checks the whole program; may be nil.
	Program func(c *Ctx)
}

var (
	registry []*Pass
	// All lists every registered check identifier in registration
	// order. It is the universe for Options.Checks.
	All []string
)

// Register adds a pass to the registry. Pass names and check
// identifiers must be unique; at least one hook must be set.
func Register(p *Pass) error {
	if p.Name == "" || (p.ContextWalk == nil && p.Program == nil) {
		return fmt.Errorf("check: pass %q must have a name and a hook", p.Name)
	}
	if len(p.Checks) == 0 {
		return fmt.Errorf("check: pass %q declares no checks", p.Name)
	}
	known := map[string]bool{}
	for _, id := range All {
		known[id] = true
	}
	for _, q := range registry {
		if q.Name == p.Name {
			return fmt.Errorf("check: duplicate pass %q", p.Name)
		}
	}
	for _, id := range p.Checks {
		if known[id] {
			return fmt.Errorf("check: pass %q re-declares check %q", p.Name, id)
		}
	}
	registry = append(registry, p)
	All = append(All, p.Checks...)
	return nil
}

// Passes returns the registered passes in registration order.
func Passes() []*Pass {
	out := make([]*Pass, len(registry))
	copy(out, registry)
	return out
}

func mustRegister(p *Pass) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// The builtin passes. Registration order fixes the order of All and the
// within-context evaluation order.
func init() {
	mustRegister(&Pass{
		Name: "deref",
		Doc:  "dereferences of NULL, uninitialized, or freed pointers",
		Checks: []string{
			"nullderef", "uninitderef", "useafterfree",
		},
		ContextWalk: derefWalk,
	})
	mustRegister(&Pass{
		Name:        "doublefree",
		Doc:         "frees of storage already freed on every path",
		Checks:      []string{"doublefree"},
		ContextWalk: func(c *Ctx, p *analysis.PTF) { c.checkDoubleFree(p) },
	})
	mustRegister(&Pass{
		Name:        "escape",
		Doc:         "addresses of locals escaping their activation",
		Checks:      []string{"localescape"},
		ContextWalk: escapeWalk,
	})
	mustRegister(&Pass{
		Name:        "badcall",
		Doc:         "indirect calls through non-function values",
		Checks:      []string{"badcall"},
		ContextWalk: badcallWalk,
	})
	mustRegister(&Pass{
		Name:        "writero",
		Doc:         "writes into read-only string literals",
		Checks:      []string{"writero"},
		ContextWalk: writeroWalk,
	})
	mustRegister(&Pass{
		Name:    "leak",
		Doc:     "heap storage neither freed nor reachable at exit",
		Checks:  []string{"leak"},
		Program: leakProgram,
	})
	mustRegister(&Pass{
		Name:        "typestate",
		Doc:         "FILE-handle lifecycle (use after fclose, double fclose, handle leak)",
		Checks:      []string{"useafterclose", "doubleclose", "fileleak"},
		ContextWalk: typestateWalk,
	})
	mustRegister(&Pass{
		Name:        "taint",
		Doc:         "untrusted data reaching command or format-string sinks",
		Checks:      []string{"taintflow", "taintfmt"},
		ContextWalk: taintWalk,
	})
}

// derefWalk checks every pointer dereference of the context. In
// points-to form every source expression carries an extra dereference,
// so each C-level pointer dereference appears as a TermDeref whose base
// expression denotes the dereferenced pointer value; destinations
// additionally perform an implicit store-through for their top-level
// deref terms.
func derefWalk(c *Ctx, p *analysis.PTF) {
	for _, nd := range p.Proc.Nodes {
		switch nd.Kind {
		case cfg.AssignNode:
			c.checkReads(p, nd, nd.Src)
			c.checkReads(p, nd, nd.Dst)
			c.checkStores(p, nd, nd.Dst)
		case cfg.CallNode:
			for _, arg := range nd.Args {
				c.checkReads(p, nd, arg)
			}
			if nd.Fun != nil {
				c.checkReads(p, nd, nd.Fun)
			}
			if nd.RetDst != nil {
				c.checkReads(p, nd, nd.RetDst)
				c.checkStores(p, nd, nd.RetDst)
			}
		}
	}
}

func escapeWalk(c *Ctx, p *analysis.PTF) {
	for _, nd := range p.Proc.Nodes {
		if nd.Kind == cfg.AssignNode {
			c.checkStoreEscape(p, nd)
		}
	}
	c.checkRetvalEscape(p)
}

func badcallWalk(c *Ctx, p *analysis.PTF) {
	for _, nd := range p.Proc.Nodes {
		if nd.Kind == cfg.CallNode && nd.Fun != nil {
			c.checkBadCall(p, nd)
		}
	}
}
