package check

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
)

// jsonDiag is the stable JSON shape of one diagnostic.
type jsonDiag struct {
	Check    string   `json:"check"`
	Severity string   `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Proc     string   `json:"proc"`
	Message  string   `json:"message"`
	Contexts int      `json:"contexts,omitempty"`
	Trace    []string `json:"trace,omitempty"`
}

// RenderJSON writes the diagnostics as a JSON array (one object per
// diagnostic, stable field order).
func RenderJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{
			Check:    d.Check,
			Severity: d.Sev.String(),
			File:     d.Pos.File,
			Line:     d.Pos.Line,
			Col:      d.Pos.Col,
			Proc:     d.Proc,
			Message:  d.Message,
			Contexts: d.Contexts,
			Trace:    d.Trace,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 document shapes (the subset wlcheck emits).
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// fingerprintKey names the partial-fingerprint scheme in SARIF output.
const fingerprintKey = "wlcheckFingerprint/v1"

// RenderSARIF writes the diagnostics as a SARIF 2.1.0 log with one run.
// Each registered check becomes a reporting rule; each diagnostic a
// result with a stable partial fingerprint (see Fingerprint).
func RenderSARIF(w io.Writer, diags []Diagnostic) error {
	var rules []sarifRule
	for _, p := range Passes() {
		for _, id := range p.Checks {
			rules = append(rules, sarifRule{
				ID:               id,
				ShortDescription: sarifMessage{Text: p.Doc},
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		level := "warning"
		if d.Sev == Error {
			level = "error"
		}
		msg := d.Message
		if chain := d.Chain(); chain != "" {
			msg += " (in " + chain + ")"
		}
		results[i] = sarifResult{
			RuleID:  d.Check,
			Level:   level,
			Message: sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.File},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Col},
				},
			}},
			PartialFingerprints: map[string]string{fingerprintKey: Fingerprint(d)},
		}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "wlcheck", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// Fingerprint returns a stable identity for a diagnostic, used for
// baseline suppression and SARIF partial fingerprints: the check, the
// position, and a hash of the message (so a baseline entry survives
// unrelated re-analysis but not a change in what is reported there).
func Fingerprint(d Diagnostic) string {
	h := fnv.New32a()
	io.WriteString(h, d.Message)
	return fmt.Sprintf("%s@%s:%d:%d#%08x", d.Check, d.Pos.File, d.Pos.Line, d.Pos.Col, h.Sum32())
}

// WriteBaseline writes the fingerprints of diags, one per line, for a
// later run's -baseline suppression.
func WriteBaseline(w io.Writer, diags []Diagnostic) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# wlcheck baseline: one fingerprint per line; lines starting with # are ignored")
	for _, d := range diags {
		fmt.Fprintln(bw, Fingerprint(d))
	}
	return bw.Flush()
}

// LoadBaseline reads a baseline file written by WriteBaseline (blank
// lines and #-comments are ignored).
func LoadBaseline(r io.Reader) (map[string]bool, error) {
	base := map[string]bool{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return base, nil
}

// Suppress filters out diagnostics whose fingerprint appears in the
// baseline, returning the survivors and the number suppressed.
func Suppress(diags []Diagnostic, baseline map[string]bool) (kept []Diagnostic, suppressed int) {
	if len(baseline) == 0 {
		return diags, 0
	}
	for _, d := range diags {
		if baseline[Fingerprint(d)] {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
