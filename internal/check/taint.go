package check

import (
	"fmt"
	"strings"

	"wlpa/internal/analysis"
	"wlpa/internal/cfg"
	"wlpa/internal/dataflow"
	"wlpa/internal/libsum"
	"wlpa/internal/memmod"
)

// This file implements the taint checker family on the dataflow engine:
// untrusted bytes (environment, input functions) flowing into command
// interpreters ("taintflow") or format strings ("taintfmt"). The
// declarative libsum.TaintSpec names the sources, propagation rules,
// sinks, and sanitizers.
//
// The abstraction tracks DATA taint at block granularity: a cell is
// tainted when the storage may hold attacker-controlled bytes. Pointer
// assignments need no rule — aliasing is the points-to layer's job —
// but loads-then-stores of the bytes themselves (character-copy loops)
// propagate through the Transfer hook. Scalar return values are not
// carriers (a taint summary through `return s[0]` is lost); the shipped
// sources hand back whole buffers, for which this is moot.
//
// Strong updates: an overwrite with clean data (sanitizer, or a copy
// from an untainted source) clears the taint bit only when the
// destination resolves to a single unique block — a heap or summarized
// cell may stand for other storage that keeps its old bytes.
//
// Severity at a sink is per-context: Error when every resolved target
// of the sink argument is tainted, Warning when only some are. The
// cross-context merge downgrades further if other contexts are clean.

const taintedBit dataflow.State = 1

// taintWalk runs the default taint specification over one context.
func taintWalk(c *Ctx, p *analysis.PTF) {
	runTaint(c, p, libsum.Taint())
}

func runTaint(c *Ctx, p *analysis.PTF, spec *libsum.TaintSpec) {
	retSrc := map[string]bool{}
	for _, s := range spec.RetSources {
		retSrc[s] = true
	}
	anyTainted := func(cells []*memmod.Block, f dataflow.Fact) bool {
		for _, cell := range cells {
			if f.Get(cell)&taintedBit != 0 {
				return true
			}
		}
		return false
	}
	eng := &dataflow.Engine{A: c.A, ModRef: c.ModRef}
	eng.Client = dataflow.Client{
		Track: func(name string) bool {
			if retSrc[name] {
				return true
			}
			if _, ok := spec.ArgSources[name]; ok {
				return true
			}
			if _, ok := spec.Copies[name]; ok {
				return true
			}
			if _, ok := spec.RetCopies[name]; ok {
				return true
			}
			if _, ok := spec.ExecSinks[name]; ok {
				return true
			}
			if _, ok := spec.FmtSinks[name]; ok {
				return true
			}
			_, ok := spec.Sanitizers[name]
			return ok
		},
		// Havoc is the identity: an unanalyzable (recursive) callee
		// introduces no taint. This under-approximates — a recursive
		// copier is missed — but never alarms falsely.
		Transfer: func(e *dataflow.Engine, w *dataflow.Walk, nd *cfg.Node, f dataflow.Fact) {
			var loads []*memmod.Block
			if nd.Aggregate {
				// Block copy: Src denotes the source locations.
				loads = e.ExprCells(w, nd.Src, nd)
			} else {
				loads = e.LoadCells(w, nd.Src, nd)
			}
			if !anyTainted(loads, f) {
				return
			}
			for _, cell := range e.StoreCells(w, nd.Dst, nd) {
				f.Set(cell, f.Get(cell)|taintedBit)
			}
		},
		Library: func(e *dataflow.Engine, w *dataflow.Walk, nd *cfg.Node, f dataflow.Fact) {
			name := nd.Direct.Name
			if retSrc[name] {
				if cell := e.HeapCell(nd); cell != nil {
					f.Set(cell, taintedBit)
				}
				return
			}
			if idxs, ok := spec.ArgSources[name]; ok {
				for _, i := range idxs {
					for _, cell := range e.ArgCells(w, nd, i) {
						f.Set(cell, f.Get(cell)|taintedBit)
					}
				}
			}
			for _, cp := range spec.Copies[name] {
				var src bool
				if cp.Src < 0 {
					for i := range nd.Args {
						if i != cp.Dst && anyTainted(e.ArgCells(w, nd, i), f) {
							src = true
							break
						}
					}
				} else {
					src = anyTainted(e.ArgCells(w, nd, cp.Src), f)
				}
				dst := e.ArgCells(w, nd, cp.Dst)
				switch {
				case src:
					for _, cell := range dst {
						f.Set(cell, f.Get(cell)|taintedBit)
					}
				case dataflow.Strong(dst) && dst[0].Unique():
					// Overwrite with clean data: strong clear.
					f.Set(dst[0], f.Get(dst[0])&^taintedBit)
				}
			}
			if argIdx, ok := spec.RetCopies[name]; ok {
				if anyTainted(e.ArgCells(w, nd, argIdx), f) {
					if cell := e.HeapCell(nd); cell != nil {
						f.Set(cell, taintedBit)
					}
				}
			}
			if idxs, ok := spec.Sanitizers[name]; ok {
				for _, i := range idxs {
					if cells := e.ArgCells(w, nd, i); dataflow.Strong(cells) && cells[0].Unique() {
						f.Set(cells[0], f.Get(cells[0])&^taintedBit)
					}
				}
			}
			if !e.AtRoot() {
				return
			}
			if i, ok := spec.ExecSinks[name]; ok {
				reportSink(c, e, w, nd, f, "taintflow", name, i, anyTainted)
			}
			if i, ok := spec.FmtSinks[name]; ok {
				reportSink(c, e, w, nd, f, "taintfmt", name, i, anyTainted)
			}
		},
	}
	eng.ContextRun(p)
}

// reportSink grades one sink argument: Error when every resolved target
// holds tainted data, Warning when only some do.
func reportSink(c *Ctx, e *dataflow.Engine, w *dataflow.Walk, nd *cfg.Node, f dataflow.Fact,
	check, name string, argIdx int, anyTainted func([]*memmod.Block, dataflow.Fact) bool) {
	cells := e.ArgCells(w, nd, argIdx)
	if !anyTainted(cells, f) {
		return
	}
	var dirty []string
	all := true
	for _, cell := range cells {
		if f.Get(cell)&taintedBit != 0 {
			dirty = append(dirty, cell.Name)
		} else {
			all = false
		}
	}
	sev := Warning
	if all {
		sev = Error
	}
	what := "command"
	if check == "taintfmt" {
		what = "format string"
	}
	c.report(check, nd.Pos, sev,
		fmt.Sprintf("untrusted data (%s) reaches %s as a %s", strings.Join(dirty, ", "), name, what))
}
