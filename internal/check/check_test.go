package check_test

import (
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/check"
	"wlpa/internal/cparse"
	"wlpa/internal/libsum"
	"wlpa/internal/sem"
	"wlpa/internal/workload"
)

// parseProg runs the front end over src.
func parseProg(t *testing.T, name, src string) *sem.Program {
	t.Helper()
	file, err := cparse.ParseSource(name, src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	prog, err := sem.Check(file)
	if err != nil {
		t.Fatalf("%s: sem: %v", name, err)
	}
	return prog
}

// analyze runs the full front end and the analysis configured the way
// the checkers expect (null tracking + collected solution).
func analyze(t *testing.T, name, src string) *analysis.Analysis {
	t.Helper()
	prog := parseProg(t, name, src)
	a, err := analysis.New(prog, analysis.Options{
		Lib:             libsum.Summaries(),
		LibEffects:      libsum.Effects(),
		CollectSolution: true,
		TrackNull:       true,
	})
	if err != nil {
		t.Fatalf("%s: analysis.New: %v", name, err)
	}
	if err := a.Run(); err != nil {
		t.Fatalf("%s: analysis: %v", name, err)
	}
	return a
}

// run invokes the checker suite, failing the test on option errors.
func run(t *testing.T, a *analysis.Analysis, opts check.Options) []check.Diagnostic {
	t.Helper()
	diags, err := check.Run(a, opts)
	if err != nil {
		t.Fatalf("check.Run: %v", err)
	}
	return diags
}

// TestSeededBugsFlagged verifies that every seeded-bug fixture is
// flagged at Error severity by exactly the check its name announces.
func TestSeededBugsFlagged(t *testing.T) {
	want := map[string]string{
		"nullderef":    "nullderef",
		"uninit":       "uninitderef",
		"useafterfree": "useafterfree",
		"doublefree":   "doublefree",
		"localescape":  "localescape",
		"badcall":      "badcall",
		"leak":         "leak",
		"writero":      "writero",
		"typestate":    "useafterclose",
		"doubleclose":  "doubleclose",
		"fileleak":     "fileleak",
		"taint":        "taintflow",
	}
	fixtures := workload.BugFixtures()
	for fixture, checkID := range want {
		src, ok := fixtures[fixture]
		if !ok {
			t.Errorf("no fixture bug_%s.c", fixture)
			continue
		}
		a := analyze(t, "bug_"+fixture+".c", src)
		diags := run(t, a, check.Options{})
		found := false
		for _, d := range diags {
			if d.Check == checkID && d.Sev == check.Error {
				found = true
				if !d.Pos.IsValid() {
					t.Errorf("%s: diagnostic without position: %v", fixture, d)
				}
				if len(d.Trace) == 0 {
					t.Errorf("%s: diagnostic without context trace: %v", fixture, d)
				}
			}
		}
		if !found {
			t.Errorf("%s: no %s error; got %v", fixture, checkID, diags)
		}
	}
}

// TestCheckSelection verifies that Options.Checks restricts the suite.
func TestCheckSelection(t *testing.T) {
	src := workload.BugFixtures()["nullderef"]
	a := analyze(t, "bug_nullderef.c", src)
	diags := run(t, a, check.Options{Checks: []string{"badcall"}})
	for _, d := range diags {
		if d.Check != "badcall" {
			t.Errorf("check %s ran though only badcall was selected", d.Check)
		}
	}
	// A typo in the check list is an error, not a silent no-op.
	if _, err := check.Run(a, check.Options{Checks: []string{"nullderf"}}); err == nil {
		t.Error("unknown check name accepted")
	}
}

// TestPassSelection verifies that Options.Passes restricts the suite to
// whole passes and rejects unknown pass names.
func TestPassSelection(t *testing.T) {
	src := workload.BugFixtures()["typestate"]
	a := analyze(t, "bug_typestate.c", src)
	diags := run(t, a, check.Options{Passes: []string{"typestate"}})
	found := false
	for _, d := range diags {
		switch d.Check {
		case "useafterclose", "doubleclose", "fileleak":
			found = true
		default:
			t.Errorf("check %s ran though only the typestate pass was selected", d.Check)
		}
	}
	if !found {
		t.Error("typestate pass produced nothing on its own fixture")
	}
	// Pass and check filters intersect: selecting the typestate pass but
	// only the doubleclose check must suppress useafterclose.
	for _, d := range run(t, a, check.Options{Passes: []string{"typestate"}, Checks: []string{"doubleclose"}}) {
		if d.Check != "doubleclose" {
			t.Errorf("check %s survived the pass+check intersection", d.Check)
		}
	}
	// A typo in the pass list is an error, not a silent no-op.
	if _, err := check.Run(a, check.Options{Passes: []string{"typestat"}}); err == nil {
		t.Error("unknown pass name accepted")
	}
}

// TestFreeThenReallocNotFlagged verifies the reallocation refinement:
// storage freed and then reallocated through the same return slot is
// not a use-after-free.
func TestFreeThenReallocNotFlagged(t *testing.T) {
	src := `
#include <stdlib.h>
int result;
int main(void) {
    int *p = (int *)malloc(sizeof(int));
    *p = 1;
    free(p);
    p = (int *)malloc(sizeof(int));
    *p = 2;
    result = *p;
    return 0;
}`
	a := analyze(t, "realloc.c", src)
	for _, d := range run(t, a, check.Options{}) {
		if d.Check == "useafterfree" {
			t.Errorf("spurious use-after-free: %v", d)
		}
	}
}

// TestMaybeNullIsWarning verifies that a pointer that is NULL on only
// one path is reported as a warning, not an error.
func TestMaybeNullIsWarning(t *testing.T) {
	src := `
int x, flag, result;
int main(void) {
    int *p = 0;
    if (flag)
        p = &x;
    result = *p;
    return 0;
}`
	a := analyze(t, "maybenull.c", src)
	found := false
	for _, d := range run(t, a, check.Options{}) {
		if d.Check == "nullderef" {
			found = true
			if d.Sev != check.Warning {
				t.Errorf("maybe-NULL dereference reported as %s, want warning", d.Sev)
			}
		}
	}
	if !found {
		t.Error("maybe-NULL dereference not reported")
	}
}

// TestContextSensitiveSeverity verifies the cross-context merge: a
// callee dereferencing a maybe-NULL argument in one context and a valid
// pointer in another is not an error.
func TestContextSensitiveSeverity(t *testing.T) {
	src := `
int x, y, result;
int *deref_arg_ptr(int **pp) { return *pp; }
int main(void) {
    int *good = &x;
    int *null = 0;
    int *a = deref_arg_ptr(&good);
    int *b = deref_arg_ptr(&null);
    result = *a;
    return 0;
}`
	a := analyze(t, "ctx.c", src)
	for _, d := range run(t, a, check.Options{}) {
		if d.Proc == "deref_arg_ptr" && d.Sev == check.Error {
			t.Errorf("context-dependent defect reported as error: %v", d)
		}
	}
}
