package check_test

import (
	"testing"

	"wlpa/internal/check"
	"wlpa/internal/interp"
	"wlpa/internal/workload"
)

// TestWorkloadsClean runs the checker suite over every benchmark
// program and requires zero Error-severity diagnostics: the programs
// run to completion under the interpreter (see also soundness_test in
// internal/workload), so any error-level report would be a false
// positive. Warnings ("may" defects) are allowed and logged.
func TestWorkloadsClean(t *testing.T) {
	for _, b := range workload.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			a := analyze(t, b.Name+".c", b.Source)
			diags := run(t, a, check.Options{})
			warnings := 0
			for _, d := range diags {
				if d.Sev == check.Error {
					t.Errorf("false positive: %v (trace %v)", d, d.Trace)
				} else {
					warnings++
				}
			}
			if warnings > 0 {
				t.Logf("%s: %d warnings", b.Name, warnings)
			}
			if t.Failed() || testing.Short() || !b.Runnable {
				return
			}
			// Interpreter oracle: the program really is free of the
			// defects the checkers look for — it executes end to end.
			in := interp.New(parseProg(t, b.Name+".c", b.Source), interp.Options{MaxSteps: 20_000_000})
			if _, err := in.Run(); err != nil {
				t.Errorf("interpreter oracle failed: %v", err)
			}
		})
	}
}
