package check_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wlpa/internal/check"
	"wlpa/internal/workload"
)

func fixtureDiags(t *testing.T, name string) []check.Diagnostic {
	t.Helper()
	src, ok := workload.BugFixtures()[name]
	if !ok {
		t.Fatalf("no fixture bug_%s.c", name)
	}
	return run(t, analyze(t, "bug_"+name+".c", src), check.Options{})
}

// TestRenderSARIF validates the SARIF 2.1.0 log structurally: version,
// one run, a rule per registered check, and one result per diagnostic
// with level, location, and a stable fingerprint.
func TestRenderSARIF(t *testing.T) {
	diags := fixtureDiags(t, "leak")
	var buf bytes.Buffer
	if err := check.RenderSARIF(&buf, diags); err != nil {
		t.Fatalf("RenderSARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	rules := map[string]bool{}
	for _, rule := range r.Tool.Driver.Rules {
		rules[rule.ID] = true
	}
	for _, id := range check.All {
		if !rules[id] {
			t.Errorf("check %s missing from SARIF rules", id)
		}
	}
	if len(r.Results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(r.Results), len(diags))
	}
	for i, res := range r.Results {
		d := diags[i]
		if res.RuleID != d.Check {
			t.Errorf("result %d ruleId %q, want %q", i, res.RuleID, d.Check)
		}
		wantLevel := "warning"
		if d.Sev == check.Error {
			wantLevel = "error"
		}
		if res.Level != wantLevel {
			t.Errorf("result %d level %q, want %q", i, res.Level, wantLevel)
		}
		if len(res.Locations) != 1 ||
			res.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" ||
			res.Locations[0].PhysicalLocation.Region.StartLine != d.Pos.Line {
			t.Errorf("result %d has bad location: %+v", i, res.Locations)
		}
		if res.PartialFingerprints["wlcheckFingerprint/v1"] != check.Fingerprint(d) {
			t.Errorf("result %d fingerprint mismatch", i)
		}
		if !strings.Contains(res.Message.Text, d.Message) {
			t.Errorf("result %d message %q lost text %q", i, res.Message.Text, d.Message)
		}
	}
}

// TestRenderJSON validates the plain JSON rendering round-trips the
// diagnostic fields.
func TestRenderJSON(t *testing.T) {
	diags := fixtureDiags(t, "writero")
	var buf bytes.Buffer
	if err := check.RenderJSON(&buf, diags); err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	var got []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Severity string `json:"severity"`
		Check    string `json:"check"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("JSON output invalid: %v\n%s", err, buf.String())
	}
	if len(got) != len(diags) {
		t.Fatalf("got %d entries, want %d", len(got), len(diags))
	}
	for i, g := range got {
		d := diags[i]
		if g.File != d.Pos.File || g.Line != d.Pos.Line || g.Check != d.Check ||
			g.Message != d.Message || g.Severity != d.Sev.String() {
			t.Errorf("entry %d = %+v, want %v", i, g, d)
		}
	}
}

// TestBaselineRoundTrip verifies WriteBaseline/LoadBaseline/Suppress:
// baselining everything suppresses everything, a fresh diagnostic
// survives, and comment/blank lines are tolerated.
func TestBaselineRoundTrip(t *testing.T) {
	diags := fixtureDiags(t, "doublefree")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	var buf bytes.Buffer
	if err := check.WriteBaseline(&buf, diags); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	withNoise := "# wlcheck baseline\n\n" + buf.String()
	base, err := check.LoadBaseline(strings.NewReader(withNoise))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	kept, suppressed := check.Suppress(diags, base)
	if len(kept) != 0 || suppressed != len(diags) {
		t.Errorf("full baseline kept %d suppressed %d, want 0/%d", len(kept), suppressed, len(diags))
	}
	fresh := fixtureDiags(t, "nullderef")
	kept, suppressed = check.Suppress(fresh, base)
	if len(kept) != len(fresh) || suppressed != 0 {
		t.Errorf("unrelated diagnostics suppressed: kept %d suppressed %d", len(kept), suppressed)
	}
}
