package check

import (
	"fmt"
	"sort"

	"wlpa/internal/analysis"
	"wlpa/internal/cfg"
	"wlpa/internal/ctok"
	"wlpa/internal/dataflow"
	"wlpa/internal/libsum"
	"wlpa/internal/memmod"
)

// This file implements the typestate checker family: a finite-state
// resource-lifecycle analysis driven by a declarative libsum.Protocol
// and executed on the interprocedural dataflow engine. The shipped
// instance is the FILE-handle protocol (use-after-fclose, double
// fclose, handle leak at exit); new protocols are new tables, not new
// code.
//
// The abstraction is must-style: each resource cell (the allocation
// site's heap block) carries a bitmask of lifecycle states it may be
// in; a defect is reported only when the mask is exactly the bad state
// — the violation holds on every path of this context. Branching joins
// ("closed on one arm") widen the mask and go silent, so the checker
// cannot flag well-defined programs. Transitions are applied strongly
// when the argument resolves to a single cell: a heap block is not a
// unique runtime object in general, but the source call re-initializes
// the cell at every allocation, which is the standard allocation-site
// typestate discipline.

// typestateWalk runs the FILE protocol over one calling context.
func typestateWalk(c *Ctx, p *analysis.PTF) {
	runProtocol(c, p, libsum.FileProtocol())
}

func runProtocol(c *Ctx, p *analysis.PTF, proto *libsum.Protocol) {
	bit := func(i int) dataflow.State { return dataflow.State(1) << i }
	bad, initial := bit(proto.Bad), bit(proto.Init)
	sources := map[string]bool{}
	for _, s := range proto.Sources {
		sources[s] = true
	}
	eng := &dataflow.Engine{A: c.A, ModRef: c.ModRef}
	eng.Client = dataflow.Client{
		Track: func(name string) bool {
			if sources[name] {
				return true
			}
			if _, ok := proto.Trans[name]; ok {
				return true
			}
			_, ok := proto.Uses[name]
			return ok
		},
		// An unanalyzable write (recursion fallback) leaves a tracked
		// resource in an unknown live-or-dead state: widen to both, so
		// must-reports go silent instead of turning into false alarms.
		Havoc: func(s dataflow.State) dataflow.State {
			if s == 0 {
				return 0
			}
			return s | initial | bad
		},
		Library: func(e *dataflow.Engine, w *dataflow.Walk, nd *cfg.Node, f dataflow.Fact) {
			name := nd.Direct.Name
			if sources[name] {
				if cell := e.HeapCell(nd); cell != nil {
					// A fresh resource: the allocation site
					// re-initializes the cell (strong).
					f.Set(cell, initial)
				}
				return
			}
			if tr, ok := proto.Trans[name]; ok {
				cells := e.ArgCells(w, nd, tr.Arg)
				strong := dataflow.Strong(cells)
				for _, cell := range cells {
					st := f.Get(cell)
					if st == bit(tr.To) && e.AtRoot() {
						c.report("doubleclose", nd.Pos, Error,
							fmt.Sprintf("%s handle %s already %s when passed to %s", proto.Name, cell.Name, proto.States[tr.To], name))
					}
					switch {
					case strong:
						// Single resolved target: after the call the
						// resource is definitely in the target state
						// (even from unknown provenance).
						f.Set(cell, bit(tr.To))
					case st == 0:
						// Weak transition of an untracked cell: it MAY
						// have transitioned — but equally may still be
						// live. Never manufacture a must-state from a
						// may-update.
						f.Set(cell, bit(tr.From)|bit(tr.To))
					default:
						f.Set(cell, st|bit(tr.To))
					}
				}
				return
			}
			if argIdx, ok := proto.Uses[name]; ok {
				for _, cell := range e.ArgCells(w, nd, argIdx) {
					if f.Get(cell) == bad && e.AtRoot() {
						c.report("useafterclose", nd.Pos, Error,
							fmt.Sprintf("%s handle %s used by %s while %s", proto.Name, cell.Name, name, proto.States[proto.Bad]))
					}
				}
			}
		},
		Exit: func(e *dataflow.Engine, w *dataflow.Walk, f dataflow.Fact) {
			// Leak-at-exit is a whole-program property: only the end of
			// main's context walk is program exit.
			if p != c.A.MainPTF() {
				return
			}
			var leaked []*memmod.Block
			for cell, st := range f {
				if st == bit(proto.EndBad) && cell.Kind == memmod.HeapBlock {
					leaked = append(leaked, cell)
				}
			}
			sort.Slice(leaked, func(i, j int) bool { return leaked[i].Name < leaked[j].Name })
			for _, cell := range leaked {
				c.report("fileleak", allocPos(c, cell), Error,
					fmt.Sprintf("%s handle %s still %s when main returns", proto.Name, cell.Name, proto.States[proto.EndBad]))
			}
		},
	}
	eng.ContextRun(p)
}

// allocPos maps a heap cell back to its allocation site's position.
func allocPos(c *Ctx, cell *memmod.Block) ctok.Pos {
	for _, s := range c.A.AllocSites() {
		if s.Block.Representative() == cell {
			return s.Node.Pos
		}
	}
	return ctok.Pos{}
}
