// Package check implements a suite of context-sensitive pointer-bug
// checkers on top of the converged PTF analysis. Each checker walks a
// procedure's flow graph once per PTF (i.e. once per distinguished
// calling context), queries the per-node points-to state through the
// read-only query API of internal/analysis, and reports diagnostics.
//
// Context sensitivity is used for precision: a site is reported with
// Error severity only when every calling context of the procedure
// exhibits the defect; a defect present in some contexts but not others
// is downgraded to Warning.
//
// The checkers expect an analysis run with Options.TrackNull set (so
// that "definitely null" is distinguishable from "uninitialized") and
// Options.CollectSolution set (for concretizing extended parameters in
// messages). They degrade gracefully without either.
//
// Checkers run only after the analysis has converged, so they observe a
// single consistent fixpoint regardless of which engine (full-pass,
// worklist, or parallel worklist) produced it.
package check
