// Package check implements a pluggable suite of context-sensitive
// pointer-bug checkers on top of the converged PTF analysis.
//
// # Pass framework
//
// A checker is a Pass registered with Register (the builtins register
// themselves in this package's init). A pass declares the check
// identifiers it may emit and implements one or both hooks:
//
//   - ContextWalk runs once per PTF (i.e. once per distinguished
//     calling context) of every procedure. It queries the per-node
//     points-to state through the read-only query API of
//     internal/analysis — and the MOD/REF summary table via Ctx.ModRef
//     — and reports verdicts with Ctx.report. Walks of different
//     contexts may run concurrently (Options.Workers); the merged
//     diagnostics are identical at every worker count.
//   - Program runs once, sequentially, after all context walks, and
//     sees the whole converged picture (call graph, every context, the
//     collapsed solution). It assigns severities itself via
//     Ctx.reportProgram. The leak checker is a Program pass: leaking is
//     a whole-program property, not a per-context one.
//
// # Severity
//
// Context sensitivity is used for precision: a ContextWalk site is
// reported with Error severity only when every calling context of the
// procedure exhibits the defect; a defect present in some contexts but
// not others is downgraded to Warning.
//
// # Output
//
// Run returns diagnostics sorted by position and deduplicated.
// RenderJSON and RenderSARIF (SARIF 2.1.0) serialize them;
// Fingerprint/WriteBaseline/LoadBaseline/Suppress implement baseline
// suppression keyed on stable diagnostic fingerprints.
//
// The checkers expect an analysis run with Options.TrackNull set (so
// that "definitely null" is distinguishable from "uninitialized") and
// Options.CollectSolution set (for concretizing extended parameters in
// messages and resolving parameter-folded write targets). They degrade
// gracefully without either.
//
// Checkers run only after the analysis has converged, so they observe a
// single consistent fixpoint regardless of which engine (full-pass,
// worklist, or parallel worklist) produced it.
package check
