package check

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"wlpa/internal/analysis"
	"wlpa/internal/ctok"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Warning marks a possible defect: present in some contexts or
	// mixed with benign targets.
	Warning Severity = iota
	// Error marks a defect present in every analyzed calling context.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one reported defect site.
type Diagnostic struct {
	// Check is the identifier of the checker that fired (see All).
	Check string
	// Sev is the merged severity across calling contexts.
	Sev Severity
	// Pos is the source position of the defect.
	Pos ctok.Pos
	// Proc is the procedure containing the defect.
	Proc string
	// Message describes the defect.
	Message string
	// Contexts is the number of calling contexts exhibiting the defect.
	Contexts int
	// Trace is one calling context that exhibits the defect, outermost
	// caller first (each entry names a procedure and the call site that
	// entered it).
	Trace []string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s: %s [%s]", d.Pos, d.Sev, d.Message, d.Check)
	if chain := d.Chain(); chain != "" {
		s += " (in " + chain + ")"
	}
	return s
}

// Chain renders the diagnostic's context trace as a compact call chain
// ("main -> f -> g"), outermost caller first.
func (d Diagnostic) Chain() string {
	if len(d.Trace) == 0 {
		return ""
	}
	parts := make([]string, len(d.Trace))
	for i, e := range d.Trace {
		if j := strings.Index(e, " (called at "); j >= 0 {
			e = e[:j]
		}
		parts[i] = e
	}
	return strings.Join(parts, " -> ")
}

// Options configure a checker run.
type Options struct {
	// Checks selects which checkers run (identifiers from All);
	// nil or empty runs all of them.
	Checks []string
	// Passes restricts the run to the named passes (see Passes());
	// nil or empty runs all of them. Composes with Checks: a check is
	// enabled when both filters admit it.
	Passes []string
	// Workers sets the number of goroutines walking calling contexts.
	// 0 or 1 runs sequentially. The diagnostics are identical for every
	// worker count: each context is checked independently and the
	// verdicts are merged in deterministic (declaration) order.
	Workers int
}

// verdict is one context's view of a site.
type verdict struct {
	sev Severity
	msg string
}

// site accumulates per-context verdicts for one (check, position).
type site struct {
	flagged int // contexts that reported the defect
	errors  int // contexts that reported it at Error severity
	msg     string
	trace   []string
}

type siteKey struct {
	check string
	proc  string
	pos   ctok.Pos
}

// Ctx is the state handed to checker passes: the converged analysis,
// the resolved call graph, and the MOD/REF summaries, plus the
// bookkeeping for reporting. Context passes run one Ctx per worker;
// program passes run on a single Ctx after every context walk finished.
type Ctx struct {
	// A is the converged points-to analysis.
	A *analysis.Analysis
	// ModRef holds the per-context MOD/REF summaries (see
	// analysis.ModRefTable).
	ModRef *analysis.ModRefTable
	// Edges is the resolved PTF-level call graph, deterministically
	// sorted.
	Edges []analysis.CallEdge

	enabled map[string]bool
	// frees indexes the analysis' recorded deallocations by context.
	frees map[*analysis.PTF][]analysis.FreeSite
	// ctxs counts the walked contexts per procedure (primary Ctx only).
	ctxs map[string]int
	// cur collects the current context's verdicts (merged into sites
	// at the end of each walk).
	cur    map[siteKey]verdict
	curPTF *analysis.PTF
	// prog collects program-pass diagnostics (primary Ctx only).
	prog []Diagnostic
}

// Contexts returns the number of walked calling contexts of a procedure
// (program passes use it to fill Diagnostic.Contexts).
func (c *Ctx) Contexts(proc string) int { return c.ctxs[proc] }

// FreesIn returns the recorded deallocations of one context.
func (c *Ctx) FreesIn(p *analysis.PTF) []analysis.FreeSite { return c.frees[p] }

// report records one context-local verdict, keeping the worst severity
// per site within the context.
func (c *Ctx) report(check string, pos ctok.Pos, sev Severity, msg string) {
	if !c.enabled[check] {
		return
	}
	k := siteKey{check: check, proc: c.curPTF.Proc.Name, pos: pos}
	if old, ok := c.cur[k]; ok && old.sev >= sev {
		return
	}
	c.cur[k] = verdict{sev: sev, msg: msg}
}

// reportProgram records a whole-program diagnostic (program passes
// decide severity themselves; there is no per-context merge).
func (c *Ctx) reportProgram(d Diagnostic) {
	if !c.enabled[d.Check] {
		return
	}
	c.prog = append(c.prog, d)
}

// Run executes every registered checker pass over every analyzed
// calling context and returns the merged diagnostics, deterministically
// sorted and deduplicated. A check name in opts that is not one of All
// is an error, so a typo does not silently disable checking.
func Run(a *analysis.Analysis, opts Options) ([]Diagnostic, error) {
	// A pass filter narrows the check universe before the check filter
	// applies; a name unknown to either registry is an error, so a typo
	// does not silently disable checking.
	allowed := map[string]bool{}
	if len(opts.Passes) == 0 {
		for _, name := range All {
			allowed[name] = true
		}
	} else {
		byName := map[string]*Pass{}
		var names []string
		for _, pass := range Passes() {
			byName[pass.Name] = pass
			names = append(names, pass.Name)
		}
		for _, name := range opts.Passes {
			pass, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("unknown pass %q (available: %s)", name, strings.Join(names, ", "))
			}
			for _, id := range pass.Checks {
				allowed[id] = true
			}
		}
	}
	enabled := map[string]bool{}
	if len(opts.Checks) == 0 {
		for id := range allowed {
			enabled[id] = true
		}
	} else {
		known := map[string]bool{}
		for _, name := range All {
			known[name] = true
		}
		for _, name := range opts.Checks {
			if !known[name] {
				return nil, fmt.Errorf("unknown check %q (available: %s)", name, strings.Join(All, ", "))
			}
			if allowed[name] {
				enabled[name] = true
			}
		}
	}
	frees := map[*analysis.PTF][]analysis.FreeSite{}
	for _, fs := range a.FreeSites() {
		frees[fs.PTF] = append(frees[fs.PTF], fs)
	}
	base := &Ctx{
		A:       a,
		ModRef:  a.ModRef(),
		Edges:   a.CallGraphEdges(),
		enabled: enabled,
		frees:   frees,
		ctxs:    map[string]int{},
	}
	var walkers, progs []*Pass
	for _, pass := range Passes() {
		active := false
		for _, id := range pass.Checks {
			if enabled[id] {
				active = true
				break
			}
		}
		if !active {
			continue
		}
		if pass.ContextWalk != nil {
			walkers = append(walkers, pass)
		}
		if pass.Program != nil {
			progs = append(progs, pass)
		}
	}
	var ptfs []*analysis.PTF
	for _, p := range a.AllPTFs() {
		if !p.ExitReached() && p != a.MainPTF() {
			// Abandoned mid-recursion: its nodes were not all
			// evaluated, so absent facts are not evidence.
			continue
		}
		ptfs = append(ptfs, p)
		base.ctxs[p.Proc.Name]++
	}
	// Walk every context, possibly in parallel. Each context's verdicts
	// land in its own slot; the merge below runs in declaration order,
	// so the result is independent of the worker count.
	results := make([]map[siteKey]verdict, len(ptfs))
	runContext := func(c *Ctx, i int) {
		c.cur = map[siteKey]verdict{}
		c.curPTF = ptfs[i]
		for _, pass := range walkers {
			pass.ContextWalk(c, ptfs[i])
		}
		results[i] = c.cur
	}
	workers := opts.Workers
	if workers > len(ptfs) {
		workers = len(ptfs)
	}
	if workers > 1 {
		// Read-only queries still mutate the ptset memo caches; switch
		// them to locked mode for the parallel walk.
		for _, p := range a.AllPTFs() {
			p.Pts.SetConcurrent(true)
		}
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := &Ctx{A: a, ModRef: base.ModRef, Edges: base.Edges, enabled: enabled, frees: frees}
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(ptfs) {
						return
					}
					runContext(c, i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range ptfs {
			runContext(base, i)
		}
	}
	// Merge per-context verdicts in declaration order.
	sites := map[siteKey]*site{}
	for i, p := range ptfs {
		for k, v := range results[i] {
			s := sites[k]
			if s == nil {
				s = &site{}
				sites[k] = s
			}
			s.flagged++
			if v.sev == Error {
				s.errors++
			}
			if s.msg == "" || (v.sev == Error && s.errors == 1) {
				s.msg = v.msg
				s.trace = contextTrace(p)
			}
		}
	}
	// Program passes see the whole converged picture (sequential).
	base.cur, base.curPTF = nil, nil
	for _, pass := range progs {
		pass.Program(base)
	}
	out := make([]Diagnostic, 0, len(sites)+len(base.prog))
	for k, s := range sites {
		sev := Warning
		if n := base.ctxs[k.proc]; s.errors == n && s.flagged == n {
			sev = Error
		}
		out = append(out, Diagnostic{
			Check:    k.check,
			Sev:      sev,
			Pos:      k.pos,
			Proc:     k.proc,
			Message:  s.msg,
			Contexts: s.flagged,
			Trace:    s.trace,
		})
	}
	out = append(out, base.prog...)
	sortDiagnostics(out)
	return dedup(out), nil
}

// sortDiagnostics orders diagnostics by file, line, column, check,
// procedure, message, and context chain — a total order, so the output
// is deterministic across worker counts and engines.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return a.Chain() < b.Chain()
	})
}

// dedup drops adjacent duplicates (same check, site, severity, and
// message) from a sorted slice.
func dedup(out []Diagnostic) []Diagnostic {
	kept := out[:0]
	for _, d := range out {
		if n := len(kept); n > 0 {
			p := kept[n-1]
			if p.Check == d.Check && p.Pos == d.Pos && p.Proc == d.Proc &&
				p.Sev == d.Sev && p.Message == d.Message {
				continue
			}
		}
		kept = append(kept, d)
	}
	return kept
}

// contextTrace renders the calling context of a PTF, outermost caller
// first.
func contextTrace(p *analysis.PTF) []string {
	var rev []string
	cur := p
	for depth := 0; depth < 64; depth++ {
		home, nd := cur.Home()
		if home == nil {
			rev = append(rev, cur.Proc.Name)
			break
		}
		rev = append(rev, fmt.Sprintf("%s (called at %s)", cur.Proc.Name, nd.Pos))
		cur = home
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
