package check

import (
	"fmt"
	"sort"
	"strings"

	"wlpa/internal/analysis"
	"wlpa/internal/ctok"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Warning marks a possible defect: present in some contexts or
	// mixed with benign targets.
	Warning Severity = iota
	// Error marks a defect present in every analyzed calling context.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one reported defect site.
type Diagnostic struct {
	// Check is the identifier of the checker that fired (see All).
	Check string
	// Sev is the merged severity across calling contexts.
	Sev Severity
	// Pos is the source position of the defect.
	Pos ctok.Pos
	// Proc is the procedure containing the defect.
	Proc string
	// Message describes the defect.
	Message string
	// Contexts is the number of calling contexts exhibiting the defect.
	Contexts int
	// Trace is one calling context that exhibits the defect, outermost
	// caller first (each entry names a procedure and the call site that
	// entered it).
	Trace []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", d.Pos, d.Sev, d.Message, d.Check)
}

// All lists the available check identifiers.
var All = []string{
	"nullderef",    // dereference of a pointer whose value includes NULL
	"uninitderef",  // dereference of a pointer with no targets at all
	"useafterfree", // dereference of storage freed on every path to the use
	"doublefree",   // free of storage freed on every path to the call
	"localescape",  // address of a local outliving the procedure
	"badcall",      // indirect call through a non-function value
}

// Options configure a checker run.
type Options struct {
	// Checks selects which checkers run (identifiers from All);
	// nil or empty runs all of them.
	Checks []string
}

// verdict is one context's view of a site.
type verdict struct {
	sev Severity
	msg string
}

// site accumulates per-context verdicts for one (check, position).
type site struct {
	flagged int // contexts that reported the defect
	errors  int // contexts that reported it at Error severity
	msg     string
	trace   []string
}

type siteKey struct {
	check string
	proc  string
	pos   ctok.Pos
}

type checker struct {
	a       *analysis.Analysis
	enabled map[string]bool
	// frees indexes the analysis' recorded deallocations by context.
	frees map[*analysis.PTF][]analysis.FreeSite
	sites map[siteKey]*site
	// ctxs counts the walked contexts per procedure.
	ctxs map[string]int
	// cur collects the current context's verdicts (merged into sites
	// at the end of each walk).
	cur    map[siteKey]verdict
	curPTF *analysis.PTF
}

// Run walks every analyzed calling context of every procedure and
// returns the merged diagnostics, sorted by position then check. A
// check name in opts that is not one of All is an error, so a typo
// does not silently disable checking.
func Run(a *analysis.Analysis, opts Options) ([]Diagnostic, error) {
	c := &checker{
		a:       a,
		enabled: map[string]bool{},
		frees:   map[*analysis.PTF][]analysis.FreeSite{},
		sites:   map[siteKey]*site{},
		ctxs:    map[string]int{},
	}
	if len(opts.Checks) == 0 {
		for _, name := range All {
			c.enabled[name] = true
		}
	} else {
		known := map[string]bool{}
		for _, name := range All {
			known[name] = true
		}
		for _, name := range opts.Checks {
			if !known[name] {
				return nil, fmt.Errorf("unknown check %q (available: %s)", name, strings.Join(All, ", "))
			}
			c.enabled[name] = true
		}
	}
	for _, fs := range a.FreeSites() {
		c.frees[fs.PTF] = append(c.frees[fs.PTF], fs)
	}
	for _, p := range a.AllPTFs() {
		if !p.ExitReached() && p != a.MainPTF() {
			// Abandoned mid-recursion: its nodes were not all
			// evaluated, so absent facts are not evidence.
			continue
		}
		c.walkPTF(p)
	}
	out := make([]Diagnostic, 0, len(c.sites))
	for k, s := range c.sites {
		sev := Warning
		if n := c.ctxs[k.proc]; s.errors == n && s.flagged == n {
			sev = Error
		}
		out = append(out, Diagnostic{
			Check:    k.check,
			Sev:      sev,
			Pos:      k.pos,
			Proc:     k.proc,
			Message:  s.msg,
			Contexts: s.flagged,
			Trace:    s.trace,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Check < b.Check
	})
	return out, nil
}

// walkPTF checks every node of one calling context and merges the
// context's verdicts into the per-site tallies.
func (c *checker) walkPTF(p *analysis.PTF) {
	c.cur = map[siteKey]verdict{}
	c.curPTF = p
	c.ctxs[p.Proc.Name]++
	for _, nd := range p.Proc.Nodes {
		c.walkNode(p, nd)
	}
	c.checkRetvalEscape(p)
	c.checkDoubleFree(p)
	for k, v := range c.cur {
		s := c.sites[k]
		if s == nil {
			s = &site{}
			c.sites[k] = s
		}
		s.flagged++
		if v.sev == Error {
			s.errors++
		}
		if s.msg == "" || (v.sev == Error && s.errors == 1) {
			s.msg = v.msg
			s.trace = contextTrace(p)
		}
	}
}

// report records one context-local verdict, keeping the worst severity
// per site within the context.
func (c *checker) report(check string, pos ctok.Pos, sev Severity, msg string) {
	if !c.enabled[check] {
		return
	}
	k := siteKey{check: check, proc: c.curPTF.Proc.Name, pos: pos}
	if old, ok := c.cur[k]; ok && old.sev >= sev {
		return
	}
	c.cur[k] = verdict{sev: sev, msg: msg}
}

// contextTrace renders the calling context of a PTF, outermost caller
// first.
func contextTrace(p *analysis.PTF) []string {
	var rev []string
	cur := p
	for depth := 0; depth < 64; depth++ {
		home, nd := cur.Home()
		if home == nil {
			rev = append(rev, cur.Proc.Name)
			break
		}
		rev = append(rev, fmt.Sprintf("%s (called at %s)", cur.Proc.Name, nd.Pos))
		cur = home
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
