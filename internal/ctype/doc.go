// Package ctype models C types and their memory layout. The pointer
// analysis is byte-offset based (location sets are (block, offset,
// stride), paper §3.1), so sizeof, alignment and field offsets are
// computed here once and used everywhere else. The layout follows a
// conventional LP64 ABI: char 1, short 2, int 4, long 8, pointers 8,
// float 4, double 8; natural alignment capped at 8.
package ctype
