package ctype

import "testing"

func TestScalarSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		size int64
	}{
		{CharType, 1}, {UCharType, 1}, {ShortType, 2}, {UShortType, 2},
		{IntType, 4}, {UIntType, 4}, {LongType, 8}, {ULongType, 8},
		{FloatType, 4}, {DoubleType, 8}, {PointerTo(IntType), 8},
	}
	for _, c := range cases {
		if got := c.t.Sizeof(); got != c.size {
			t.Errorf("sizeof(%s) = %d, want %d", c.t, got, c.size)
		}
	}
}

func TestStructLayout(t *testing.T) {
	// struct { char c; int i; char d; double f; }
	s := NewStruct("s", false)
	s.Complete([]Field{
		{Name: "c", Type: CharType},
		{Name: "i", Type: IntType},
		{Name: "d", Type: CharType},
		{Name: "f", Type: DoubleType},
	})
	wantOff := []int64{0, 4, 8, 16}
	for i, w := range wantOff {
		if s.Fields[i].Offset != w {
			t.Errorf("field %s offset = %d, want %d", s.Fields[i].Name, s.Fields[i].Offset, w)
		}
	}
	if s.Size != 24 {
		t.Errorf("struct size = %d, want 24", s.Size)
	}
	if s.Alignof() != 8 {
		t.Errorf("struct align = %d, want 8", s.Alignof())
	}
}

func TestUnionLayout(t *testing.T) {
	u := NewStruct("u", true)
	u.Complete([]Field{
		{Name: "i", Type: IntType},
		{Name: "d", Type: DoubleType},
		{Name: "p", Type: PointerTo(CharType)},
	})
	for _, f := range u.Fields {
		if f.Offset != 0 {
			t.Errorf("union field %s offset = %d, want 0", f.Name, f.Offset)
		}
	}
	if u.Size != 8 {
		t.Errorf("union size = %d, want 8", u.Size)
	}
}

func TestNestedStructLayout(t *testing.T) {
	inner := NewStruct("in", false)
	inner.Complete([]Field{
		{Name: "a", Type: CharType},
		{Name: "b", Type: IntType},
	})
	if inner.Size != 8 {
		t.Fatalf("inner size = %d", inner.Size)
	}
	outer := NewStruct("out", false)
	outer.Complete([]Field{
		{Name: "x", Type: CharType},
		{Name: "in", Type: inner},
	})
	if outer.FieldByName("in").Offset != 4 {
		t.Errorf("nested offset = %d, want 4", outer.FieldByName("in").Offset)
	}
	if outer.Size != 12 {
		t.Errorf("outer size = %d, want 12", outer.Size)
	}
}

func TestArrayOf(t *testing.T) {
	a := ArrayOf(IntType, 10)
	if a.Sizeof() != 40 {
		t.Errorf("sizeof(int[10]) = %d", a.Sizeof())
	}
	if a.Alignof() != 4 {
		t.Errorf("alignof(int[10]) = %d", a.Alignof())
	}
	incomplete := ArrayOf(IntType, -1)
	if incomplete.Sizeof() != 0 {
		t.Errorf("sizeof(int[]) = %d", incomplete.Sizeof())
	}
}

func TestArrayOfStructs(t *testing.T) {
	s := NewStruct("pt", false)
	s.Complete([]Field{
		{Name: "x", Type: IntType},
		{Name: "y", Type: IntType},
	})
	a := ArrayOf(s, 5)
	if a.Sizeof() != 40 {
		t.Errorf("sizeof(struct pt[5]) = %d", a.Sizeof())
	}
}

func TestDecay(t *testing.T) {
	a := ArrayOf(IntType, 4).Decay()
	if a.Kind != Pointer || !Equal(a.Elem, IntType) {
		t.Errorf("array decay = %s", a)
	}
	f := FuncOf(IntType, nil, false).Decay()
	if f.Kind != Pointer || f.Elem.Kind != Func {
		t.Errorf("func decay = %s", f)
	}
	if IntType.Decay() != IntType {
		t.Error("scalar should not decay")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(PointerTo(IntType), PointerTo(IntType)) {
		t.Error("int* == int*")
	}
	if Equal(PointerTo(IntType), PointerTo(CharType)) {
		t.Error("int* != char*")
	}
	s1 := NewStruct("a", false)
	s2 := NewStruct("a", false)
	if Equal(s1, s2) {
		t.Error("distinct struct defs are distinct types")
	}
	if !Equal(s1, s1) {
		t.Error("a struct equals itself")
	}
	f1 := FuncOf(IntType, []*Type{PointerTo(CharType)}, false)
	f2 := FuncOf(IntType, []*Type{PointerTo(CharType)}, false)
	f3 := FuncOf(IntType, []*Type{PointerTo(CharType)}, true)
	if !Equal(f1, f2) || Equal(f1, f3) {
		t.Error("function type equality")
	}
}

func TestCommonArith(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{IntType, IntType, IntType},
		{CharType, IntType, IntType},
		{IntType, LongType, LongType},
		{IntType, DoubleType, DoubleType},
		{FloatType, IntType, FloatType},
		{FloatType, DoubleType, DoubleType},
		{UIntType, IntType, UIntType},
		{CharType, ShortType, IntType},
	}
	for _, c := range cases {
		if got := CommonArith(c.a, c.b); !Equal(got, c.want) {
			t.Errorf("CommonArith(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestIsPointerLike(t *testing.T) {
	if !PointerTo(IntType).IsPointerLike() {
		t.Error("pointer is pointer-like")
	}
	if !LongType.IsPointerLike() {
		t.Error("long is pointer-like (pointers are stored in longs)")
	}
	if IntType.IsPointerLike() {
		t.Error("int (4 bytes) is too narrow to hold a pointer")
	}
	if DoubleType.IsPointerLike() {
		t.Error("double is not pointer-like")
	}
}

func TestVoidSize(t *testing.T) {
	// void* arithmetic behaves like char* (size 1).
	if VoidType.Sizeof() != 1 {
		t.Errorf("sizeof(void) = %d, want 1", VoidType.Sizeof())
	}
}

func TestIncompleteStruct(t *testing.T) {
	s := NewStruct("fwd", false)
	if !s.Incomplete {
		t.Error("new struct should be incomplete")
	}
	p := PointerTo(s)
	if p.Sizeof() != 8 {
		t.Error("pointer to incomplete struct has full size")
	}
	s.Complete([]Field{{Name: "v", Type: IntType}})
	if s.Incomplete || s.Size != 4 {
		t.Errorf("completed struct: incomplete=%v size=%d", s.Incomplete, s.Size)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{IntType, "int"}, {UCharType, "unsigned char"},
		{PointerTo(CharType), "char*"},
		{ArrayOf(IntType, 3), "int[3]"},
		{FuncOf(VoidType, []*Type{IntType}, true), "void(int, ...)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
