package ctype

import (
	"fmt"
	"strings"
)

// Kind classifies a type.
type Kind int

const (
	Void  Kind = iota
	Int        // all integer types incl. char and enums
	Float      // float and double
	Pointer
	Array
	Struct // also unions (IsUnion set)
	Func
)

// Field is a struct or union member.
type Field struct {
	Name   string
	Type   *Type
	Offset int64 // byte offset from the start of the struct; 0 in unions
}

// Type is a C type. Struct types are unique per definition: two struct
// values are the same type iff they share the same *Type. Scalar, pointer
// and array types compare structurally via Equal.
type Type struct {
	Kind Kind

	// Int/Float
	Size   int64 // in bytes (also set for Pointer/Struct/Array)
	Signed bool  // Int only

	// Pointer/Array
	Elem *Type
	Len  int64 // Array: number of elements, -1 if unspecified

	// Struct
	Tag        string // struct/union tag, "" if anonymous
	Fields     []Field
	IsUnion    bool
	Incomplete bool // declared but not defined

	// Func
	Ret      *Type
	Params   []*Type
	Variadic bool
}

// Predefined scalar types. These are shared; never mutate them.
var (
	VoidType   = &Type{Kind: Void}
	CharType   = &Type{Kind: Int, Size: 1, Signed: true}
	UCharType  = &Type{Kind: Int, Size: 1}
	ShortType  = &Type{Kind: Int, Size: 2, Signed: true}
	UShortType = &Type{Kind: Int, Size: 2}
	IntType    = &Type{Kind: Int, Size: 4, Signed: true}
	UIntType   = &Type{Kind: Int, Size: 4}
	LongType   = &Type{Kind: Int, Size: 8, Signed: true}
	ULongType  = &Type{Kind: Int, Size: 8}
	FloatType  = &Type{Kind: Float, Size: 4}
	DoubleType = &Type{Kind: Float, Size: 8}
)

// PointerSize is the size of every pointer type.
const PointerSize = 8

// PointerTo returns the type "pointer to elem".
func PointerTo(elem *Type) *Type {
	return &Type{Kind: Pointer, Size: PointerSize, Elem: elem}
}

// ArrayOf returns the type "array of n elem". n may be -1 for an
// incomplete array type.
func ArrayOf(elem *Type, n int64) *Type {
	t := &Type{Kind: Array, Elem: elem, Len: n}
	if n >= 0 {
		t.Size = elem.Sizeof() * n
	}
	return t
}

// FuncOf returns a function type.
func FuncOf(ret *Type, params []*Type, variadic bool) *Type {
	return &Type{Kind: Func, Ret: ret, Params: params, Variadic: variadic}
}

// NewStruct creates an empty (incomplete) struct or union type with the
// given tag. Call Complete to supply the fields.
func NewStruct(tag string, isUnion bool) *Type {
	return &Type{Kind: Struct, Tag: tag, IsUnion: isUnion, Incomplete: true}
}

// align rounds n up to a multiple of a (a power of two).
func align(n, a int64) int64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) &^ (a - 1)
}

// Alignof returns the alignment requirement of t.
func (t *Type) Alignof() int64 {
	switch t.Kind {
	case Void, Func:
		return 1
	case Int, Float, Pointer:
		if t.Size == 0 {
			return 1
		}
		if t.Size > 8 {
			return 8
		}
		return t.Size
	case Array:
		return t.Elem.Alignof()
	case Struct:
		var a int64 = 1
		for _, f := range t.Fields {
			if fa := f.Type.Alignof(); fa > a {
				a = fa
			}
		}
		return a
	}
	return 1
}

// Complete lays out the fields of a struct or union created with
// NewStruct, computing offsets and the total size.
func (t *Type) Complete(fields []Field) {
	if t.Kind != Struct {
		panic("ctype: Complete on non-struct")
	}
	t.Fields = fields
	t.Incomplete = false
	if t.IsUnion {
		var size int64
		for i := range t.Fields {
			t.Fields[i].Offset = 0
			if s := t.Fields[i].Type.Sizeof(); s > size {
				size = s
			}
		}
		t.Size = align(size, t.Alignof())
		return
	}
	var off int64
	for i := range t.Fields {
		f := &t.Fields[i]
		off = align(off, f.Type.Alignof())
		f.Offset = off
		off += f.Type.Sizeof()
	}
	t.Size = align(off, t.Alignof())
	if t.Size == 0 {
		t.Size = 1
	}
}

// Sizeof returns the size of t in bytes. Incomplete and function types
// report 0; void reports 1 so that void* arithmetic behaves like char*
// (a common compiler extension the benchmarks rely on).
func (t *Type) Sizeof() int64 {
	switch t.Kind {
	case Void:
		return 1
	case Func:
		return 0
	case Array:
		if t.Len < 0 {
			return 0
		}
		return t.Elem.Sizeof() * t.Len
	default:
		return t.Size
	}
}

// FieldByName returns the field with the given name, or nil.
func (t *Type) FieldByName(name string) *Field {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool { return t.Kind == Int }

// IsArith reports whether t is an arithmetic (integer or floating) type.
func (t *Type) IsArith() bool { return t.Kind == Int || t.Kind == Float }

// IsScalar reports whether t is arithmetic or a pointer.
func (t *Type) IsScalar() bool { return t.IsArith() || t.Kind == Pointer }

// IsPointerLike reports whether values of type t can hold a pointer: a
// pointer, or an integer at least as wide as a pointer (C programs store
// pointers in longs). The analysis treats such locations as potential
// pointer homes, per the paper's low-level memory model.
func (t *Type) IsPointerLike() bool {
	return t.Kind == Pointer || (t.Kind == Int && t.Size >= PointerSize)
}

// Decay returns the type after array-to-pointer and function-to-pointer
// decay, as happens to rvalues.
func (t *Type) Decay() *Type {
	switch t.Kind {
	case Array:
		return PointerTo(t.Elem)
	case Func:
		return PointerTo(t)
	}
	return t
}

// Equal reports whether a and b are the same type. Struct types are
// nominal (identity); everything else is structural.
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Void:
		return true
	case Int:
		return a.Size == b.Size && a.Signed == b.Signed
	case Float:
		return a.Size == b.Size
	case Pointer:
		return Equal(a.Elem, b.Elem)
	case Array:
		return a.Len == b.Len && Equal(a.Elem, b.Elem)
	case Struct:
		return false // identity compared above
	case Func:
		if !Equal(a.Ret, b.Ret) || len(a.Params) != len(b.Params) || a.Variadic != b.Variadic {
			return false
		}
		for i := range a.Params {
			if !Equal(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// CommonArith returns the usual-arithmetic-conversions result type.
func CommonArith(a, b *Type) *Type {
	if a.Kind == Float || b.Kind == Float {
		if (a.Kind == Float && a.Size == 8) || (b.Kind == Float && b.Size == 8) {
			return DoubleType
		}
		return FloatType
	}
	// Integer promotion to at least int.
	pick := func(t *Type) *Type {
		if t.Size < 4 {
			return IntType
		}
		return t
	}
	a, b = pick(a), pick(b)
	if a.Size > b.Size {
		return a
	}
	if b.Size > a.Size {
		return b
	}
	if !a.Signed || !b.Signed {
		if a.Size == 8 {
			return ULongType
		}
		return UIntType
	}
	return a
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Void:
		return "void"
	case Int:
		prefix := ""
		if !t.Signed {
			prefix = "unsigned "
		}
		switch t.Size {
		case 1:
			if t.Signed {
				return "char"
			}
			return "unsigned char"
		case 2:
			return prefix + "short"
		case 4:
			return prefix + "int"
		case 8:
			return prefix + "long"
		}
		return fmt.Sprintf("%sint%d", prefix, t.Size*8)
	case Float:
		if t.Size == 4 {
			return "float"
		}
		return "double"
	case Pointer:
		return t.Elem.String() + "*"
	case Array:
		if t.Len < 0 {
			return t.Elem.String() + "[]"
		}
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case Struct:
		kw := "struct"
		if t.IsUnion {
			kw = "union"
		}
		if t.Tag != "" {
			return kw + " " + t.Tag
		}
		return kw + " <anon>"
	case Func:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		if t.Variadic {
			ps = append(ps, "...")
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(ps, ", "))
	}
	return "<?>"
}
