package ctok

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize("test.c", src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	var ks []Kind
	for _, tok := range toks {
		ks = append(ks, tok.Kind)
	}
	return ks
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks, err := Tokenize("t.c", "int foo _bar x123 while")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind Kind
		text string
	}{
		{Keyword, "int"}, {Ident, "foo"}, {Ident, "_bar"},
		{Ident, "x123"}, {Keyword, "while"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestIntegerLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"0", 0}, {"42", 42}, {"0x1f", 31}, {"0X10", 16}, {"017", 15},
		{"42u", 42}, {"42UL", 42}, {"1234567890", 1234567890},
	}
	for _, c := range cases {
		toks, err := Tokenize("t.c", c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if toks[0].Kind != IntLit || toks[0].IntVal != c.want {
			t.Errorf("%q = (%v, %d), want (IntLit, %d)", c.src, toks[0].Kind, toks[0].IntVal, c.want)
		}
	}
}

func TestFloatLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1.5", 1.5}, {"0.25", 0.25}, {".5", 0.5}, {"1e3", 1000},
		{"2.5e-1", 0.25}, {"1.0f", 1.0}, {"3.", 3.0},
	}
	for _, c := range cases {
		toks, err := Tokenize("t.c", c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if toks[0].Kind != FloatLit || toks[0].FloatVal != c.want {
			t.Errorf("%q = (%v, %g), want (FloatLit, %g)", c.src, toks[0].Kind, toks[0].FloatVal, c.want)
		}
	}
}

func TestCharLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"'a'", 'a'}, {`'\n'`, '\n'}, {`'\0'`, 0}, {`'\t'`, '\t'},
		{`'\\'`, '\\'}, {`'\''`, '\''}, {`'\x41'`, 'A'},
	}
	for _, c := range cases {
		toks, err := Tokenize("t.c", c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if toks[0].Kind != CharLit || toks[0].IntVal != c.want {
			t.Errorf("%q = (%v, %d), want (CharLit, %d)", c.src, toks[0].Kind, toks[0].IntVal, c.want)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks, err := Tokenize("t.c", `"hello\nworld" ""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != StringLit || toks[0].Text != "hello\nworld" {
		t.Errorf("got (%v, %q)", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != StringLit || toks[1].Text != "" {
		t.Errorf("empty string: got (%v, %q)", toks[1].Kind, toks[1].Text)
	}
}

func TestOperators(t *testing.T) {
	src := "( ) { } [ ] ; , . -> ... + - * / % ++ -- & | ^ ~ << >> ! && || < > <= >= == != = += -= *= /= %= &= |= ^= <<= >>= ? : #"
	want := []Kind{
		LParen, RParen, LBrace, RBrace, LBracket, RBracket, Semi, Comma, Dot,
		Arrow, Ellipsis, Plus, Minus, Star, Slash, Percent, Inc, Dec, Amp,
		Pipe, Caret, Tilde, Shl, Shr, Not, AndAnd, OrOr, Lt, Gt, Le, Ge, Eq,
		Ne, Assign, AddAssign, SubAssign, MulAssign, DivAssign, ModAssign,
		AndAssign, OrAssign, XorAssign, ShlAssign, ShrAssign, Question,
		Colon, Hash, EOF,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d kinds, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	src := "a /* comment */ b // line\nc"
	got := kinds(t, src)
	want := []Kind{Ident, Ident, Ident, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestUnterminatedComment(t *testing.T) {
	if _, err := Tokenize("t.c", "a /* never closed"); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize("t.c", `"abc`); err == nil {
		t.Error("expected error for unterminated string")
	}
	if _, err := Tokenize("t.c", "\"abc\ndef\""); err == nil {
		t.Error("expected error for newline in string")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("f.c", "a\n  bb\nccc")
	if err != nil {
		t.Fatal(err)
	}
	wantPos := []Pos{
		{File: "f.c", Line: 1, Col: 1},
		{File: "f.c", Line: 2, Col: 3},
		{File: "f.c", Line: 3, Col: 1},
	}
	for i, w := range wantPos {
		if toks[i].Pos != w {
			t.Errorf("token %d pos = %v, want %v", i, toks[i].Pos, w)
		}
	}
}

func TestLeadingNewline(t *testing.T) {
	toks, err := Tokenize("t.c", "a b\nc d")
	if err != nil {
		t.Fatal(err)
	}
	wantNL := []bool{true, false, true, false}
	for i, w := range wantNL {
		if toks[i].LeadingNewline != w {
			t.Errorf("token %d (%v) LeadingNewline = %v, want %v", i, toks[i], toks[i].LeadingNewline, w)
		}
	}
}

func TestLineContinuation(t *testing.T) {
	toks, err := Tokenize("t.c", "#define X \\\n 1\ny")
	if err != nil {
		t.Fatal(err)
	}
	// The "1" after the continuation must NOT have a leading newline;
	// the "y" must.
	var one, y *Token
	for i := range toks {
		if toks[i].Text == "1" {
			one = &toks[i]
		}
		if toks[i].Text == "y" {
			y = &toks[i]
		}
	}
	if one == nil || y == nil {
		t.Fatalf("missing tokens in %v", toks)
	}
	if one.LeadingNewline {
		t.Error("token after line continuation should not have LeadingNewline")
	}
	if !y.LeadingNewline {
		t.Error("token after real newline should have LeadingNewline")
	}
}

func TestRealisticSnippet(t *testing.T) {
	src := `
struct node { struct node *next; int val; };
int main(void) {
    struct node *p = (struct node *)malloc(sizeof(struct node));
    p->next = 0;
    return p->val;
}`
	toks, err := Tokenize("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) < 30 {
		t.Errorf("suspiciously few tokens: %d", len(toks))
	}
	var text strings.Builder
	for _, tok := range toks {
		if tok.Kind == Ident || tok.Kind == Keyword {
			text.WriteString(tok.Text)
			text.WriteByte(' ')
		}
	}
	for _, want := range []string{"struct", "node", "malloc", "sizeof", "return"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("missing %q in identifier stream", want)
		}
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := Tokenize("t.c", "a @ b"); err == nil {
		t.Error("expected error for '@'")
	}
}

func TestKindString(t *testing.T) {
	if Arrow.String() != "->" {
		t.Errorf("Arrow.String() = %q", Arrow.String())
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still format")
	}
}
