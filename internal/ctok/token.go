package ctok

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Punctuation kinds are named after their spelling.
const (
	EOF Kind = iota
	Ident
	Keyword
	IntLit
	FloatLit
	CharLit
	StringLit

	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Dot      // .
	Arrow    // ->
	Ellipsis // ...

	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Inc     // ++
	Dec     // --

	Amp   // &
	Pipe  // |
	Caret // ^
	Tilde // ~
	Shl   // <<
	Shr   // >>

	Not    // !
	AndAnd // &&
	OrOr   // ||

	Lt // <
	Gt // >
	Le // <=
	Ge // >=
	Eq // ==
	Ne // !=

	Assign    // =
	AddAssign // +=
	SubAssign // -=
	MulAssign // *=
	DivAssign // /=
	ModAssign // %=
	AndAssign // &=
	OrAssign  // |=
	XorAssign // ^=
	ShlAssign // <<=
	ShrAssign // >>=

	Question // ?
	Colon    // :
	Hash     // # (only when lexing preprocessor lines)
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Keyword: "keyword", IntLit: "integer literal",
	FloatLit: "float literal", CharLit: "char literal", StringLit: "string literal",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[", RBracket: "]",
	Semi: ";", Comma: ",", Dot: ".", Arrow: "->", Ellipsis: "...",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%", Inc: "++", Dec: "--",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Shl: "<<", Shr: ">>",
	Not: "!", AndAnd: "&&", OrOr: "||",
	Lt: "<", Gt: ">", Le: "<=", Ge: ">=", Eq: "==", Ne: "!=",
	Assign: "=", AddAssign: "+=", SubAssign: "-=", MulAssign: "*=", DivAssign: "/=",
	ModAssign: "%=", AndAssign: "&=", OrAssign: "|=", XorAssign: "^=",
	ShlAssign: "<<=", ShrAssign: ">>=",
	Question: "?", Colon: ":", Hash: "#",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // raw text for identifiers, keywords and literals
	Pos  Pos

	// IntVal and FloatVal hold decoded values for IntLit/CharLit and
	// FloatLit tokens respectively.
	IntVal   int64
	FloatVal float64

	// LeadingNewline records that a newline preceded this token; the
	// preprocessor uses it to find directive boundaries.
	LeadingNewline bool
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, Keyword, IntLit, FloatLit, CharLit, StringLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Keywords of the supported C subset.
var keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true, "const": true,
	"continue": true, "default": true, "do": true, "double": true, "else": true,
	"enum": true, "extern": true, "float": true, "for": true, "goto": true,
	"if": true, "int": true, "long": true, "register": true, "return": true,
	"short": true, "signed": true, "sizeof": true, "static": true,
	"struct": true, "switch": true, "typedef": true, "union": true,
	"unsigned": true, "void": true, "volatile": true, "while": true,
}

// IsKeyword reports whether s is a reserved word.
func IsKeyword(s string) bool { return keywords[s] }
