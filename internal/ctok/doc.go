// Package ctok implements a lexical scanner for the C subset analyzed
// by wlpa. Tokens carry source positions so that later phases can
// report errors and so that heap allocation sites can be named by
// source location (paper §3: one block per static allocation site).
package ctok
