package ctok

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer scans C source text into tokens.
type Lexer struct {
	src      string
	file     string
	pos      int
	line     int
	col      int
	sawNL    bool // newline seen since last token
	preserve bool // keep Hash tokens (preprocessor mode)
}

// New returns a lexer over src. The file name is used in positions.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1, preserve: true}
}

// Error is a lexical error with a position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) errorf(p Pos, format string, args ...any) error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(n int) byte {
	if l.pos+n >= len(l.src) {
		return 0
	}
	return l.src[l.pos+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) here() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

// skipSpace consumes whitespace and comments, recording newlines.
func (l *Lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
			l.advance()
		case c == '\\' && l.peekAt(1) == '\n':
			// Line continuation: consume without recording the newline.
			l.advance()
			l.advance()
		case c == '\n':
			l.sawNL = true
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.here()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				if l.peek() == '\n' {
					l.sawNL = true
				}
				l.advance()
			}
			if !closed {
				return l.errorf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token. At end of input it returns an EOF token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	tok := Token{Pos: l.here(), LeadingNewline: l.sawNL || l.pos == 0}
	l.sawNL = false
	if l.pos >= len(l.src) {
		tok.Kind = EOF
		tok.LeadingNewline = true
		return tok, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		tok.Text = l.src[start:l.pos]
		if IsKeyword(tok.Text) {
			tok.Kind = Keyword
		} else {
			tok.Kind = Ident
		}
		return tok, nil
	case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
		return l.scanNumber(tok)
	case c == '\'':
		return l.scanChar(tok)
	case c == '"':
		return l.scanString(tok)
	}
	return l.scanOperator(tok)
}

func (l *Lexer) scanNumber(tok Token) (Token, error) {
	start := l.pos
	isFloat := false
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			next := l.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
				isFloat = true
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
				for l.pos < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			}
		}
	}
	text := l.src[start:l.pos]
	// Consume integer/float suffixes (u, l, f combinations).
	for l.pos < len(l.src) {
		switch l.peek() {
		case 'u', 'U', 'l', 'L':
			l.advance()
		case 'f', 'F':
			if !strings.HasPrefix(text, "0x") && !strings.HasPrefix(text, "0X") {
				isFloat = true
				l.advance()
				continue
			}
			l.advance()
		default:
			goto done
		}
	}
done:
	tok.Text = text
	if isFloat {
		tok.Kind = FloatLit
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return tok, l.errorf(tok.Pos, "bad float literal %q", text)
		}
		tok.FloatVal = v
		return tok, nil
	}
	tok.Kind = IntLit
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X"):
		v, err = strconv.ParseUint(text[2:], 16, 64)
	case len(text) > 1 && text[0] == '0':
		v, err = strconv.ParseUint(text[1:], 8, 64)
	default:
		v, err = strconv.ParseUint(text, 10, 64)
	}
	if err != nil {
		return tok, l.errorf(tok.Pos, "bad integer literal %q", text)
	}
	tok.IntVal = int64(v)
	return tok, nil
}

func (l *Lexer) scanEscape(p Pos) (byte, error) {
	l.advance() // backslash
	if l.pos >= len(l.src) {
		return 0, l.errorf(p, "unterminated escape sequence")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		// Possibly a longer octal escape.
		v := 0
		for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '7' {
			v = v*8 + int(l.advance()-'0')
		}
		return byte(v), nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case 'v':
		return '\v', nil
	case 'a':
		return 7, nil
	case 'x':
		v := 0
		for l.pos < len(l.src) && isHexDigit(l.peek()) {
			d, _ := strconv.ParseUint(string(l.advance()), 16, 8)
			v = v*16 + int(d)
		}
		return byte(v), nil
	case '\\', '\'', '"', '?':
		return c, nil
	default:
		if c >= '1' && c <= '7' {
			v := int(c - '0')
			for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '7' {
				v = v*8 + int(l.advance()-'0')
			}
			return byte(v), nil
		}
		return 0, l.errorf(p, "unknown escape sequence \\%c", c)
	}
}

func (l *Lexer) scanChar(tok Token) (Token, error) {
	l.advance() // opening quote
	if l.pos >= len(l.src) {
		return tok, l.errorf(tok.Pos, "unterminated character literal")
	}
	var val byte
	if l.peek() == '\\' {
		v, err := l.scanEscape(tok.Pos)
		if err != nil {
			return tok, err
		}
		val = v
	} else {
		val = l.advance()
	}
	if l.pos >= len(l.src) || l.peek() != '\'' {
		return tok, l.errorf(tok.Pos, "unterminated character literal")
	}
	l.advance()
	tok.Kind = CharLit
	tok.IntVal = int64(val)
	tok.Text = fmt.Sprintf("'%c'", val)
	return tok, nil
}

func (l *Lexer) scanString(tok Token) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) || l.peek() == '\n' {
			return tok, l.errorf(tok.Pos, "unterminated string literal")
		}
		if l.peek() == '"' {
			l.advance()
			break
		}
		if l.peek() == '\\' {
			v, err := l.scanEscape(tok.Pos)
			if err != nil {
				return tok, err
			}
			sb.WriteByte(v)
			continue
		}
		sb.WriteByte(l.advance())
	}
	tok.Kind = StringLit
	tok.Text = sb.String()
	return tok, nil
}

func (l *Lexer) scanOperator(tok Token) (Token, error) {
	c := l.advance()
	two := func(next byte, k2, k1 Kind) Kind {
		if l.peek() == next {
			l.advance()
			return k2
		}
		return k1
	}
	switch c {
	case '(':
		tok.Kind = LParen
	case ')':
		tok.Kind = RParen
	case '{':
		tok.Kind = LBrace
	case '}':
		tok.Kind = RBrace
	case '[':
		tok.Kind = LBracket
	case ']':
		tok.Kind = RBracket
	case ';':
		tok.Kind = Semi
	case ',':
		tok.Kind = Comma
	case '?':
		tok.Kind = Question
	case ':':
		tok.Kind = Colon
	case '~':
		tok.Kind = Tilde
	case '#':
		tok.Kind = Hash
	case '.':
		if l.peek() == '.' && l.peekAt(1) == '.' {
			l.advance()
			l.advance()
			tok.Kind = Ellipsis
		} else {
			tok.Kind = Dot
		}
	case '+':
		switch l.peek() {
		case '+':
			l.advance()
			tok.Kind = Inc
		case '=':
			l.advance()
			tok.Kind = AddAssign
		default:
			tok.Kind = Plus
		}
	case '-':
		switch l.peek() {
		case '-':
			l.advance()
			tok.Kind = Dec
		case '=':
			l.advance()
			tok.Kind = SubAssign
		case '>':
			l.advance()
			tok.Kind = Arrow
		default:
			tok.Kind = Minus
		}
	case '*':
		tok.Kind = two('=', MulAssign, Star)
	case '/':
		tok.Kind = two('=', DivAssign, Slash)
	case '%':
		tok.Kind = two('=', ModAssign, Percent)
	case '^':
		tok.Kind = two('=', XorAssign, Caret)
	case '!':
		tok.Kind = two('=', Ne, Not)
	case '=':
		tok.Kind = two('=', Eq, Assign)
	case '&':
		switch l.peek() {
		case '&':
			l.advance()
			tok.Kind = AndAnd
		case '=':
			l.advance()
			tok.Kind = AndAssign
		default:
			tok.Kind = Amp
		}
	case '|':
		switch l.peek() {
		case '|':
			l.advance()
			tok.Kind = OrOr
		case '=':
			l.advance()
			tok.Kind = OrAssign
		default:
			tok.Kind = Pipe
		}
	case '<':
		switch l.peek() {
		case '<':
			l.advance()
			tok.Kind = two('=', ShlAssign, Shl)
		case '=':
			l.advance()
			tok.Kind = Le
		default:
			tok.Kind = Lt
		}
	case '>':
		switch l.peek() {
		case '>':
			l.advance()
			tok.Kind = two('=', ShrAssign, Shr)
		case '=':
			l.advance()
			tok.Kind = Ge
		default:
			tok.Kind = Gt
		}
	default:
		return tok, l.errorf(tok.Pos, "unexpected character %q", c)
	}
	return tok, nil
}

// Tokenize scans all of src and returns the token stream including the
// trailing EOF token.
func Tokenize(file, src string) ([]Token, error) {
	l := New(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
