package cast

import (
	"wlpa/internal/ctok"
	"wlpa/internal/ctype"
)

// Node is implemented by every AST node.
type Node interface {
	Position() ctok.Pos
}

// File is a parsed translation unit.
type File struct {
	Name  string
	Decls []Decl
}

// ---- Declarations ----

// Decl is a top-level or block-level declaration.
type Decl interface {
	Node
	declNode()
}

// StorageClass distinguishes extern/static/typedef declarations.
type StorageClass int

const (
	StorageNone StorageClass = iota
	StorageExtern
	StorageStatic
	StorageTypedef
)

// VarDecl declares a variable (global or local) or a function prototype
// when Type.Kind == Func.
type VarDecl struct {
	Pos     ctok.Pos
	Name    string
	Type    *ctype.Type
	Storage StorageClass
	Init    Expr // nil if none; *InitList for aggregate initializers

	// Sym is filled in by package sem.
	Sym *Symbol
}

func (d *VarDecl) Position() ctok.Pos { return d.Pos }
func (d *VarDecl) declNode()          {}

// FuncDecl is a function definition (Body != nil) or declaration.
type FuncDecl struct {
	Pos     ctok.Pos
	Name    string
	Type    *ctype.Type // Kind == Func
	Params  []*VarDecl  // named parameters, same order as Type.Params
	Storage StorageClass
	Body    *BlockStmt // nil for prototypes

	Sym *Symbol
}

func (d *FuncDecl) Position() ctok.Pos { return d.Pos }
func (d *FuncDecl) declNode()          {}

// SymbolKind classifies resolved symbols.
type SymbolKind int

const (
	SymVar SymbolKind = iota
	SymParam
	SymFunc
	SymEnumConst
)

// Symbol is a resolved program entity. The analysis keys memory blocks on
// *Symbol identity.
type Symbol struct {
	Kind   SymbolKind
	Name   string
	Type   *ctype.Type
	Global bool
	Static bool // file- or function-scoped static (still a single block)
	Pos    ctok.Pos

	// EnumVal is the value for SymEnumConst.
	EnumVal int64

	// Def points to the defining FuncDecl for SymFunc (nil for
	// library externs without bodies).
	Def *FuncDecl

	// Uniq disambiguates same-named locals from different scopes.
	Uniq int
}

// ---- Statements ----

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-enclosed sequence of declarations and statements.
type BlockStmt struct {
	Pos   ctok.Pos
	Items []BlockItem
}

// BlockItem is either a Decl or a Stmt.
type BlockItem struct {
	Decl Decl // exactly one of Decl/Stmt is non-nil
	Stmt Stmt
}

func (s *BlockStmt) Position() ctok.Pos { return s.Pos }
func (s *BlockStmt) stmtNode()          {}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos ctok.Pos
	X   Expr
}

func (s *ExprStmt) Position() ctok.Pos { return s.Pos }
func (s *ExprStmt) stmtNode()          {}

// EmptyStmt is a bare ';'.
type EmptyStmt struct{ Pos ctok.Pos }

func (s *EmptyStmt) Position() ctok.Pos { return s.Pos }
func (s *EmptyStmt) stmtNode()          {}

// IfStmt is if/else.
type IfStmt struct {
	Pos  ctok.Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

func (s *IfStmt) Position() ctok.Pos { return s.Pos }
func (s *IfStmt) stmtNode()          {}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  ctok.Pos
	Cond Expr
	Body Stmt
}

func (s *WhileStmt) Position() ctok.Pos { return s.Pos }
func (s *WhileStmt) stmtNode()          {}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	Pos  ctok.Pos
	Body Stmt
	Cond Expr
}

func (s *DoWhileStmt) Position() ctok.Pos { return s.Pos }
func (s *DoWhileStmt) stmtNode()          {}

// ForStmt is a for loop. Init/Cond/Post may be nil.
type ForStmt struct {
	Pos  ctok.Pos
	Init Expr
	Cond Expr
	Post Expr
	Body Stmt
}

func (s *ForStmt) Position() ctok.Pos { return s.Pos }
func (s *ForStmt) stmtNode()          {}

// SwitchStmt is a switch with its body (cases appear as labels inside).
type SwitchStmt struct {
	Pos  ctok.Pos
	Tag  Expr
	Body Stmt
}

func (s *SwitchStmt) Position() ctok.Pos { return s.Pos }
func (s *SwitchStmt) stmtNode()          {}

// CaseStmt is a "case V:" or "default:" label followed by a statement.
type CaseStmt struct {
	Pos       ctok.Pos
	Value     Expr // nil for default
	IsDefault bool
	Body      Stmt
}

func (s *CaseStmt) Position() ctok.Pos { return s.Pos }
func (s *CaseStmt) stmtNode()          {}

// BreakStmt breaks out of the nearest loop or switch.
type BreakStmt struct{ Pos ctok.Pos }

func (s *BreakStmt) Position() ctok.Pos { return s.Pos }
func (s *BreakStmt) stmtNode()          {}

// ContinueStmt continues the nearest loop.
type ContinueStmt struct{ Pos ctok.Pos }

func (s *ContinueStmt) Position() ctok.Pos { return s.Pos }
func (s *ContinueStmt) stmtNode()          {}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Pos ctok.Pos
	X   Expr // may be nil
}

func (s *ReturnStmt) Position() ctok.Pos { return s.Pos }
func (s *ReturnStmt) stmtNode()          {}

// GotoStmt jumps to a label.
type GotoStmt struct {
	Pos   ctok.Pos
	Label string
}

func (s *GotoStmt) Position() ctok.Pos { return s.Pos }
func (s *GotoStmt) stmtNode()          {}

// LabelStmt is "name: stmt".
type LabelStmt struct {
	Pos  ctok.Pos
	Name string
	Body Stmt
}

func (s *LabelStmt) Position() ctok.Pos { return s.Pos }
func (s *LabelStmt) stmtNode()          {}

// ---- Expressions ----

// Expr is an expression. Type is filled in by sem.
type Expr interface {
	Node
	exprNode()
	TypeOf() *ctype.Type
}

// exprBase carries the common position and resolved type.
type exprBase struct {
	Pos  ctok.Pos
	Type *ctype.Type
}

func (e *exprBase) Position() ctok.Pos  { return e.Pos }
func (e *exprBase) TypeOf() *ctype.Type { return e.Type }
func (e *exprBase) exprNode()           {}

// Ident is a variable, parameter, function or enum-constant reference.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol // filled in by sem
}

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Value float64
}

// StrLit is a string literal. Each distinct literal occurrence denotes a
// distinct anonymous global block.
type StrLit struct {
	exprBase
	Value string
	// ID uniquely numbers the literal within its translation unit.
	ID int
}

// UnaryOp enumerates unary operators.
type UnaryOp int

const (
	Neg     UnaryOp = iota // -x
	BitNot                 // ~x
	LogNot                 // !x
	Addr                   // &x
	Deref                  // *x
	PreInc                 // ++x
	PreDec                 // --x
	PostInc                // x++
	PostDec                // x--
	Plus                   // +x
)

var unaryNames = [...]string{"-", "~", "!", "&", "*", "++", "--", "++(post)", "--(post)", "+"}

func (op UnaryOp) String() string { return unaryNames[op] }

// Unary is a unary expression.
type Unary struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp int

const (
	Add BinaryOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Lt
	Gt
	Le
	Ge
	Eq
	Ne
	LogAnd
	LogOr
)

var binaryNames = [...]string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"<", ">", "<=", ">=", "==", "!=", "&&", "||"}

func (op BinaryOp) String() string { return binaryNames[op] }

// Binary is a binary expression.
type Binary struct {
	exprBase
	Op   BinaryOp
	L, R Expr
}

// Assign is an assignment. Op is the compound operator (Add for "+=") or
// -1 for plain "=".
type Assign struct {
	exprBase
	Op   BinaryOp // -1 for simple assignment
	L, R Expr
}

// SimpleAssign marks a plain "=" in Assign.Op.
const SimpleAssign BinaryOp = -1

// Cond is the ternary ?: operator.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Call is a function call; Fun may be an Ident naming a function or an
// arbitrary expression evaluating to a function pointer.
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// Index is array subscripting a[i].
type Index struct {
	exprBase
	X, I Expr
}

// Member is s.f (Arrow false) or p->f (Arrow true).
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Field *ctype.Field // filled in by sem
}

// Cast is an explicit type conversion.
type Cast struct {
	exprBase
	To *ctype.Type
	X  Expr
}

// SizeofExpr is sizeof(expr); SizeofType is sizeof(type). Both are folded
// to IntLit by sem where possible, but remain in the AST.
type SizeofExpr struct {
	exprBase
	X Expr
}

// SizeofType is sizeof(type-name).
type SizeofType struct {
	exprBase
	Of *ctype.Type
}

// Comma is the sequential-evaluation operator.
type Comma struct {
	exprBase
	L, R Expr
}

// InitList is a brace initializer { a, b, ... } appearing in declarations.
type InitList struct {
	exprBase
	Elems []Expr
}

// SetType assigns the resolved type; used by sem.
func SetType(e Expr, t *ctype.Type) {
	switch e := e.(type) {
	case *Ident:
		e.Type = t
	case *IntLit:
		e.Type = t
	case *FloatLit:
		e.Type = t
	case *StrLit:
		e.Type = t
	case *Unary:
		e.Type = t
	case *Binary:
		e.Type = t
	case *Assign:
		e.Type = t
	case *Cond:
		e.Type = t
	case *Call:
		e.Type = t
	case *Index:
		e.Type = t
	case *Member:
		e.Type = t
	case *Cast:
		e.Type = t
	case *SizeofExpr:
		e.Type = t
	case *SizeofType:
		e.Type = t
	case *Comma:
		e.Type = t
	case *InitList:
		e.Type = t
	default:
		panic("cast: SetType on unknown expression")
	}
}
