// Package cast defines the abstract syntax tree produced by the parser.
// Types are already resolved to ctype.Type during parsing (C requires
// typedef knowledge to parse, so there is no separate resolution pass
// for types); identifier and expression typing happens in package sem,
// which fills in the Type fields of expressions.
//
// The AST is immutable after sem finishes: the flow-graph builder, the
// analysis, the checkers and the interpreter all read it concurrently
// without synchronization.
package cast
