package steensgaard

import (
	"sort"

	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/ctype"
	"wlpa/internal/memmod"
	"wlpa/internal/sem"
)

// ecr is an equivalence-class representative with one points-to edge
// (Steensgaard's type system: every class points to at most one class).
type ecr struct {
	parent *ecr
	pts    *ecr
	blocks []*memmod.Block
}

func (e *ecr) find() *ecr {
	for e.parent != nil {
		if e.parent.parent != nil {
			e.parent = e.parent.parent // path halving
		}
		e = e.parent
	}
	return e
}

// Result holds the unification solution.
type Result struct {
	classes map[*memmod.Block]*ecr
}

type analyzer struct {
	prog    *sem.Program
	procs   map[*cast.FuncDecl]*cfg.Proc
	classes map[*memmod.Block]*ecr

	globals map[*cast.Symbol]*memmod.Block
	locals  map[*cast.Symbol]*memmod.Block
	funcs   map[*cast.Symbol]*memmod.Block
	strs    map[int]*memmod.Block
	heaps   map[string]*memmod.Block
	retvals map[*cfg.Proc]*memmod.Block
}

// Analyze runs the unification analysis.
func Analyze(prog *sem.Program) (*Result, error) {
	procs, err := cfg.BuildAll(prog.Funcs)
	if err != nil {
		return nil, err
	}
	a := &analyzer{
		prog:    prog,
		procs:   procs,
		classes: make(map[*memmod.Block]*ecr),
		globals: make(map[*cast.Symbol]*memmod.Block),
		locals:  make(map[*cast.Symbol]*memmod.Block),
		funcs:   make(map[*cast.Symbol]*memmod.Block),
		strs:    make(map[int]*memmod.Block),
		heaps:   make(map[string]*memmod.Block),
		retvals: make(map[*cfg.Proc]*memmod.Block),
	}
	a.seedGlobals()
	// Two passes are enough: unification is monotone and function-
	// pointer targets only add more unifications.
	for pass := 0; pass < 3; pass++ {
		for _, fd := range prog.Funcs {
			a.analyzeProc(procs[fd])
		}
	}
	return &Result{classes: a.classes}, nil
}

// seedGlobals feeds static initializers of globals into the solution
// (block granularity: aggregate initializers collapse onto the
// variable's class).
func (a *analyzer) seedGlobals() {
	for _, vd := range a.prog.GlobalInits {
		if vd.Sym == nil || vd.Init == nil {
			continue
		}
		a.seedInit(a.ecrOf(a.varBlock(nil, vd.Sym)), vd.Sym.Type, vd.Init)
	}
}

func (a *analyzer) seedInit(dst *ecr, t *ctype.Type, init cast.Expr) {
	point := func(b *memmod.Block) {
		union(ptsOf(dst), a.ecrOf(b))
	}
	switch init := init.(type) {
	case *cast.InitList:
		switch t.Kind {
		case ctype.Array:
			for _, el := range init.Elems {
				a.seedInit(dst, t.Elem, el)
			}
		case ctype.Struct:
			for i, el := range init.Elems {
				if i >= len(t.Fields) {
					break
				}
				a.seedInit(dst, t.Fields[i].Type, el)
			}
		default:
			if len(init.Elems) > 0 {
				a.seedInit(dst, t, init.Elems[0])
			}
		}
	case *cast.Unary:
		if init.Op == cast.Addr {
			if id, ok := init.X.(*cast.Ident); ok && id.Sym != nil {
				if id.Sym.Kind == cast.SymFunc {
					point(a.funcBlock(id.Sym))
				} else {
					point(a.varBlock(nil, id.Sym))
				}
			}
		}
	case *cast.Ident:
		if init.Sym != nil && init.Sym.Kind == cast.SymFunc {
			point(a.funcBlock(init.Sym))
		} else if init.Sym != nil && init.Sym.Type != nil && init.Sym.Type.Kind == ctype.Array {
			point(a.varBlock(nil, init.Sym))
		}
	case *cast.StrLit:
		if t.Kind != ctype.Array {
			point(a.strBlock(init.ID, init.Value))
		}
	case *cast.Cast:
		a.seedInit(dst, t, init.X)
	}
}

func (a *analyzer) funcBlock(sym *cast.Symbol) *memmod.Block {
	b, ok := a.funcs[sym]
	if !ok {
		b = memmod.NewFunc(sym)
		a.funcs[sym] = b
	}
	return b
}

func (a *analyzer) strBlock(id int, val string) *memmod.Block {
	b, ok := a.strs[id]
	if !ok {
		b = memmod.NewString(id, val)
		a.strs[id] = b
	}
	return b
}

func (a *analyzer) ecrOf(b *memmod.Block) *ecr {
	if e, ok := a.classes[b]; ok {
		return e.find()
	}
	e := &ecr{blocks: []*memmod.Block{b}}
	a.classes[b] = e
	return e
}

// union merges two classes, recursively unifying their points-to edges.
func union(x, y *ecr) *ecr {
	x, y = x.find(), y.find()
	if x == y {
		return x
	}
	if len(y.blocks) > len(x.blocks) {
		x, y = y, x
	}
	y.parent = x
	x.blocks = append(x.blocks, y.blocks...)
	xp, yp := x.pts, y.pts
	x.pts = nil
	joined := x
	switch {
	case xp == nil:
		joined.pts = yp
	case yp == nil:
		joined.pts = xp
	default:
		joined.pts = union(xp, yp)
	}
	return joined
}

// ptsOf returns (creating) the class a class points to.
func ptsOf(e *ecr) *ecr {
	e = e.find()
	if e.pts == nil {
		e.pts = &ecr{}
	}
	return e.pts.find()
}

func (a *analyzer) varBlock(proc *cfg.Proc, sym *cast.Symbol) *memmod.Block {
	if sym.Name == "<retval>" {
		if b, ok := a.retvals[proc]; ok {
			return b
		}
		b := memmod.NewRetval(proc.Name)
		a.retvals[proc] = b
		return b
	}
	if sym.Global {
		if b, ok := a.globals[sym]; ok {
			return b
		}
		b := memmod.NewGlobal(sym)
		a.globals[sym] = b
		return b
	}
	if b, ok := a.locals[sym]; ok {
		return b
	}
	b := memmod.NewLocal(sym)
	a.locals[sym] = b
	return b
}

// valueClass returns the class of the VALUES produced by an expression.
func (a *analyzer) valueClass(proc *cfg.Proc, e *cfg.Expr) *ecr {
	var acc *ecr
	join := func(c *ecr) {
		if c == nil {
			return
		}
		if acc == nil {
			acc = c
		} else {
			acc = union(acc, c)
		}
	}
	if e == nil {
		return nil
	}
	for _, t := range e.Terms {
		switch t.Kind {
		case cfg.TermVar:
			join(a.ecrOf(a.varBlock(proc, t.Sym)))
		case cfg.TermFunc:
			join(a.ecrOf(a.funcBlock(t.Sym)))
		case cfg.TermStr:
			join(a.ecrOf(a.strBlock(t.StrID, t.StrVal)))
		case cfg.TermDeref:
			base := a.valueClass(proc, t.Base)
			if base != nil {
				join(ptsOf(base))
			}
		}
	}
	return acc
}

func (a *analyzer) assign(dst, src *ecr) {
	if dst == nil || src == nil {
		return
	}
	// The contents of the destination class unify with the source
	// value class.
	union(ptsOf(dst), src)
}

func (a *analyzer) analyzeProc(proc *cfg.Proc) {
	for _, nd := range proc.Nodes {
		switch nd.Kind {
		case cfg.AssignNode:
			dst := a.valueClass(proc, nd.Dst)
			src := a.valueClass(proc, nd.Src)
			if src == nil {
				continue
			}
			a.assign(dst, src)
		case cfg.CallNode:
			a.analyzeCall(proc, nd)
		}
	}
}

func (a *analyzer) analyzeCall(proc *cfg.Proc, nd *cfg.Node) {
	var targets []*cast.Symbol
	if nd.Direct != nil {
		targets = []*cast.Symbol{nd.Direct}
	} else if fv := a.valueClass(proc, nd.Fun); fv != nil {
		for _, b := range fv.find().blocks {
			if b.Kind == memmod.FuncBlock {
				targets = append(targets, b.Sym)
			}
		}
	}
	for _, sym := range targets {
		fd := a.prog.FuncByName[sym.Name]
		if fd == nil || fd.Body == nil {
			a.libCall(proc, nd, sym.Name)
			continue
		}
		callee := a.procs[fd]
		for i, p := range fd.Params {
			if p.Sym == nil || i >= len(nd.Args) {
				continue
			}
			av := a.valueClass(proc, nd.Args[i])
			if av == nil {
				continue
			}
			a.assign(a.ecrOf(a.varBlock(callee, p.Sym)), av)
		}
		if nd.RetDst != nil {
			rv := a.ecrOf(a.varBlock(callee, &cast.Symbol{Name: "<retval>"}))
			a.assign(a.valueClass(proc, nd.RetDst), ptsOf(rv))
		}
	}
}

func (a *analyzer) libCall(proc *cfg.Proc, nd *cfg.Node, name string) {
	switch name {
	case "free", "fclose":
		// No pointer values are copied; a no-op is sound for points-to.
	case "malloc", "calloc", "strdup", "fopen", "getenv", "realloc":
		if nd.RetDst != nil {
			key := nd.Pos.String()
			b, ok := a.heaps[key]
			if !ok {
				b = memmod.NewHeap(nd.Pos)
				a.heaps[key] = b
			}
			a.assign(a.valueClass(proc, nd.RetDst), a.ecrOf(b))
		}
	default:
		// Unify everything reachable from the arguments (the
		// classic conservative treatment), and make the merged class
		// point to itself so the contents of every reachable object
		// cover every reachable value — at least as coarse as the
		// inclusion baseline's unknown-call treatment.
		var acc *ecr
		for _, ae := range nd.Args {
			av := a.valueClass(proc, ae)
			if av == nil {
				continue
			}
			if acc == nil {
				acc = av
			} else {
				acc = union(acc, av)
			}
		}
		if acc != nil {
			union(ptsOf(acc), acc)
		}
		if nd.RetDst != nil && acc != nil {
			a.assign(a.valueClass(proc, nd.RetDst), acc)
		}
	}
}

// PointsTo returns the block names in the class the named global points
// to (the whole equivalence class: unification's coarseness).
func (r *Result) PointsTo(global string) []string {
	for b, e := range r.classes {
		if b.Kind != memmod.GlobalBlock || b.Name != global {
			continue
		}
		cls := e.find()
		if cls.pts == nil {
			return nil
		}
		var names []string
		for _, t := range cls.pts.find().blocks {
			names = append(names, t.Name)
		}
		sort.Strings(names)
		return names
	}
	return nil
}

// AvgSetSize returns the average points-to class size over all blocks
// with a points-to edge.
func (r *Result) AvgSetSize() float64 {
	total, n := 0, 0
	for _, e := range r.classes {
		cls := e.find()
		if cls.pts == nil {
			continue
		}
		total += len(cls.pts.find().blocks)
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// Edges returns every block-granularity points-to edge of the
// solution: each block points at every member of its class's single
// points-to class (unification's coarseness). Differential tests use
// the edge set as the top of the precision lattice: it must cover the
// inclusion baseline's edges, which in turn cover the
// context-sensitive analysis' solution.
func (r *Result) Edges() [][2]*memmod.Block {
	seen := make(map[[2]*memmod.Block]bool)
	var out [][2]*memmod.Block
	for b, e := range r.classes {
		cls := e.find()
		if cls.pts == nil {
			continue
		}
		for _, t := range cls.pts.find().blocks {
			edge := [2]*memmod.Block{b, t}
			if !seen[edge] {
				seen[edge] = true
				out = append(out, edge)
			}
		}
	}
	return out
}

// NumClasses returns the number of distinct equivalence classes.
func (r *Result) NumClasses() int {
	seen := map[*ecr]bool{}
	for _, e := range r.classes {
		seen[e.find()] = true
	}
	return len(seen)
}
