// Package steensgaard implements a unification-based (almost-linear)
// pointer analysis over the points-to-form IR: the fast, coarse end of
// the precision spectrum. Every assignment unifies the equivalence
// classes of its source and destination targets, so points-to sets come
// out as whole equivalence classes.
package steensgaard
