package invoke

import (
	"sort"

	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
	"wlpa/internal/sem"
)

// Stats describes a constructed (or capped) invocation graph.
type Stats struct {
	// Nodes is the number of invocation-graph nodes (call-path
	// contexts), including approximate recursion nodes.
	Nodes int64
	// ApproxNodes counts the recursion-approximation nodes.
	ApproxNodes int64
	// Capped reports that construction stopped at the node cap.
	Capped bool
	// MaxDepth is the deepest context explored.
	MaxDepth int
}

// DefaultCap bounds construction; the graph for even small recursive
// programs explodes combinatorially.
const DefaultCap = 2_000_000

// callSite is one call edge in a procedure body.
type callSite struct {
	targets []string
}

// graph is the static call multigraph feeding the expansion.
type graph struct {
	sites map[string][]callSite
}

// Build constructs the invocation graph rooted at main and returns its
// statistics. cap bounds the node count (0 means DefaultCap). Indirect
// calls are resolved conservatively to every address-taken function with
// a body (the same resolution Emami et al. interleave with their
// context-sensitive analysis; using the coarser set only changes the
// constant factor).
func Build(prog *sem.Program, cap int64) (Stats, error) {
	if cap <= 0 {
		cap = DefaultCap
	}
	procs, err := cfg.BuildAll(prog.Funcs)
	if err != nil {
		return Stats{}, err
	}
	g := &graph{sites: make(map[string][]callSite)}
	addrTaken := addressTakenFuncs(prog, procs)
	for _, fd := range prog.Funcs {
		proc := procs[fd]
		for _, nd := range proc.Nodes {
			if nd.Kind != cfg.CallNode {
				continue
			}
			var cs callSite
			if nd.Direct != nil {
				if def := prog.FuncByName[nd.Direct.Name]; def != nil && def.Body != nil {
					cs.targets = []string{nd.Direct.Name}
				}
			} else {
				cs.targets = addrTaken
			}
			if len(cs.targets) > 0 {
				g.sites[fd.Name] = append(g.sites[fd.Name], cs)
			}
		}
	}
	if prog.Main == nil {
		return Stats{}, nil
	}
	st := Stats{}
	onPath := map[string]bool{}
	g.expand(prog.Main.Name, onPath, 1, &st, cap)
	return st, nil
}

// expand walks every acyclic call path, creating one node per visit.
// A call to a procedure already on the current path becomes an
// approximate node (Emami's treatment of recursion) and is not expanded.
func (g *graph) expand(proc string, onPath map[string]bool, depth int, st *Stats, cap int64) {
	st.Nodes++
	if depth > st.MaxDepth {
		st.MaxDepth = depth
	}
	if st.Nodes >= cap {
		st.Capped = true
		return
	}
	onPath[proc] = true
	for _, cs := range g.sites[proc] {
		for _, callee := range cs.targets {
			if st.Capped {
				break
			}
			if onPath[callee] {
				st.Nodes++
				st.ApproxNodes++
				if st.Nodes >= cap {
					st.Capped = true
				}
				continue
			}
			g.expand(callee, onPath, depth+1, st, cap)
		}
	}
	delete(onPath, proc)
}

// addressTakenFuncs lists defined functions whose address is taken
// anywhere in the program (conservative indirect-call targets).
func addressTakenFuncs(prog *sem.Program, procs map[*cast.FuncDecl]*cfg.Proc) []string {
	taken := map[string]bool{}
	var walkExpr func(e *cfg.Expr)
	walkExpr = func(e *cfg.Expr) {
		if e == nil {
			return
		}
		for _, t := range e.Terms {
			if t.Kind == cfg.TermFunc {
				if def := prog.FuncByName[t.Sym.Name]; def != nil && def.Body != nil {
					taken[t.Sym.Name] = true
				}
			}
			if t.Base != nil {
				walkExpr(t.Base)
			}
		}
	}
	for _, proc := range procs {
		for _, nd := range proc.Nodes {
			walkExpr(nd.Dst)
			walkExpr(nd.Src)
			walkExpr(nd.Fun)
			walkExpr(nd.RetDst)
			for _, a := range nd.Args {
				walkExpr(a)
			}
		}
	}
	// Global initializers can also take addresses.
	for _, vd := range prog.GlobalInits {
		collectFuncInits(prog, vd.Init, taken)
	}
	var out []string
	for name := range taken {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func collectFuncInits(prog *sem.Program, e cast.Expr, taken map[string]bool) {
	switch e := e.(type) {
	case *cast.InitList:
		for _, el := range e.Elems {
			collectFuncInits(prog, el, taken)
		}
	case *cast.Ident:
		if e.Sym != nil && e.Sym.Kind == cast.SymFunc {
			if def := prog.FuncByName[e.Sym.Name]; def != nil && def.Body != nil {
				taken[e.Sym.Name] = true
			}
		}
	case *cast.Unary:
		collectFuncInits(prog, e.X, taken)
	case *cast.Cast:
		collectFuncInits(prog, e.X, taken)
	}
}

var _ = memmod.LocSet{} // reserved for finer indirect-call resolution
