// Package invoke builds the Emami et al. invocation graph: one node per
// procedure per calling context (i.e., per acyclic call path), with
// approximate nodes closing recursive cycles. Its size is what makes
// the reanalyze-per-context approach intractable — the paper reports
// more than 700,000 nodes for the 37-procedure "compiler" benchmark
// (§7) — while the PTF analysis needs about one summary per procedure.
package invoke
