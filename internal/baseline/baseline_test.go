// Package baseline_test exercises the three comparison analyses against
// each other and against the main PTF analysis.
package baseline_test

import (
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/baseline/andersen"
	"wlpa/internal/baseline/invoke"
	"wlpa/internal/baseline/steensgaard"
	"wlpa/internal/cparse"
	"wlpa/internal/libsum"
	"wlpa/internal/sem"
	"wlpa/internal/workload"
)

func check(t *testing.T, src string) *sem.Program {
	t.Helper()
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return prog
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

const branchy = `
int x, y, c;
int *p;
int *q;
int main(void) {
    if (c) p = &x; else p = &y;
    q = &x;
    return 0;
}`

func TestAndersenBasic(t *testing.T) {
	res, err := andersen.Analyze(check(t, branchy))
	if err != nil {
		t.Fatal(err)
	}
	pp := res.PointsTo("p")
	if !contains(pp, "x") || !contains(pp, "y") {
		t.Errorf("p -> %v", pp)
	}
	qq := res.PointsTo("q")
	if !contains(qq, "x") || contains(qq, "y") {
		t.Errorf("q -> %v", qq)
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
}

func TestAndersenFlowInsensitive(t *testing.T) {
	// Flow-insensitive: the killed value survives (unlike the
	// flow-sensitive main analysis, cf. TestStrongUpdateKillsOldValue).
	res, err := andersen.Analyze(check(t, `
int x, y;
int *p;
int main(void) { p = &x; p = &y; return 0; }`))
	if err != nil {
		t.Fatal(err)
	}
	pp := res.PointsTo("p")
	if !contains(pp, "x") || !contains(pp, "y") {
		t.Errorf("flow-insensitive p -> %v, want both x and y", pp)
	}
}

func TestAndersenCalls(t *testing.T) {
	res, err := andersen.Analyze(check(t, `
int g;
int *id(int *v) { return v; }
int *p;
int main(void) { p = id(&g); return 0; }`))
	if err != nil {
		t.Fatal(err)
	}
	if !contains(res.PointsTo("p"), "g") {
		t.Errorf("p -> %v", res.PointsTo("p"))
	}
}

func TestAndersenContextInsensitive(t *testing.T) {
	// The classic unrealizable-path imprecision: Andersen conflates the
	// two calls; the PTF analysis keeps them separate.
	src := `
int x, y;
int *p, *q;
int *id(int *v) { return v; }
int main(void) {
    p = id(&x);
    q = id(&y);
    return 0;
}`
	res, err := andersen.Analyze(check(t, src))
	if err != nil {
		t.Fatal(err)
	}
	pp := res.PointsTo("p")
	if !contains(pp, "x") || !contains(pp, "y") {
		t.Errorf("andersen p -> %v, want conflated {x,y}", pp)
	}
}

func TestSteensgaardBasic(t *testing.T) {
	res, err := steensgaard.Analyze(check(t, branchy))
	if err != nil {
		t.Fatal(err)
	}
	pp := res.PointsTo("p")
	if !contains(pp, "x") || !contains(pp, "y") {
		t.Errorf("p -> %v", pp)
	}
	// Unification is coarser still: q points into the same class, so
	// it also "reaches" y.
	qq := res.PointsTo("q")
	if !contains(qq, "x") {
		t.Errorf("q -> %v", qq)
	}
	if res.NumClasses() == 0 {
		t.Error("no classes")
	}
}

func TestSteensgaardUnifiesAggressively(t *testing.T) {
	res, err := steensgaard.Analyze(check(t, `
int x, y;
int *p, *q, *r;
int main(void) {
    p = &x;
    q = p;
    r = &y;
    q = r;
    return 0;
}`))
	if err != nil {
		t.Fatal(err)
	}
	// q = p and q = r unify {x} and {y}: p now appears to reach y too.
	pp := res.PointsTo("p")
	if !contains(pp, "x") || !contains(pp, "y") {
		t.Errorf("steensgaard p -> %v, want unified {x,y}", pp)
	}
}

func TestPrecisionOrdering(t *testing.T) {
	// Per-query precision on the classic example: the PTF analysis
	// distinguishes the contexts (p={x}, q={y}); Andersen conflates
	// the two calls; Steensgaard is at least as coarse as Andersen.
	src := `
int x, y;
int *p, *q;
int *id(int *v) { return v; }
int main(void) {
    p = id(&x);
    q = id(&y);
    return 0;
}`
	prog := check(t, src)
	and, err := andersen.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := steensgaard.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	ap := and.PointsTo("p")
	sp := st.PointsTo("p")
	if len(ap) < 2 {
		t.Errorf("andersen p -> %v, expected conflated sets", ap)
	}
	for _, target := range ap {
		if target != "x" && target != "y" {
			continue
		}
		if !contains(sp, target) {
			t.Errorf("steensgaard (%v) must cover andersen (%v)", sp, ap)
		}
	}
	// Informational: the benchmark-scale averages (not directly
	// comparable metrics, logged for the record).
	if b, ok := workload.ByName("compiler"); ok {
		bp := check(t, b.Source)
		and2, _ := andersen.Analyze(bp)
		st2, _ := steensgaard.Analyze(bp)
		t.Logf("compiler: andersen avg set %.2f (%d facts), steensgaard avg class %.2f (%d classes)",
			and2.AvgSetSize(), and2.NumFacts(), st2.AvgSetSize(), st2.NumClasses())
	}
}

func TestInvocationGraphSmallProgram(t *testing.T) {
	st, err := invoke.Build(check(t, `
void leaf(void) {}
void mid(void) { leaf(); leaf(); }
int main(void) { mid(); mid(); return 0; }`), 0)
	if err != nil {
		t.Fatal(err)
	}
	// main(1) + 2×mid + 2×2 leaf = 7 nodes.
	if st.Nodes != 7 {
		t.Errorf("nodes = %d, want 7", st.Nodes)
	}
	if st.Capped || st.ApproxNodes != 0 {
		t.Errorf("unexpected: %+v", st)
	}
}

func TestInvocationGraphRecursion(t *testing.T) {
	st, err := invoke.Build(check(t, `
void r(int n) { if (n) r(n - 1); }
int main(void) { r(5); return 0; }`), 0)
	if err != nil {
		t.Fatal(err)
	}
	// main, r, approx(r): 3 nodes, 1 approximate.
	if st.Nodes != 3 || st.ApproxNodes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestInvocationGraphBlowup reproduces the paper's §7 observation: the
// compiler benchmark's recursive-descent parser makes the invocation
// graph orders of magnitude larger than the procedure count, while the
// PTF analysis needs about one PTF per procedure.
func TestInvocationGraphBlowup(t *testing.T) {
	b, ok := workload.ByName("compiler")
	if !ok {
		t.Skip("compiler benchmark missing")
	}
	prog := check(t, b.Source)
	st, err := invoke.Build(prog, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	nprocs := int64(len(prog.Funcs))
	if st.Nodes < nprocs*100 {
		t.Errorf("invocation graph (%d nodes) should dwarf the %d procedures",
			st.Nodes, nprocs)
	}
	// Meanwhile the PTF analysis stays near one PTF per procedure.
	an, err := analysis.New(prog, analysis.Options{Lib: libsum.Summaries()})
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Run(); err != nil {
		t.Fatal(err)
	}
	if avg := an.Stats().AvgPTFs(); avg > 2.0 {
		t.Errorf("avg PTFs per procedure = %.2f, want close to 1", avg)
	}
	t.Logf("invocation graph: %d nodes (capped=%v) vs %d PTFs for %d procedures",
		st.Nodes, st.Capped, an.Stats().PTFs, an.Stats().Procedures)
}

func TestInvocationGraphCap(t *testing.T) {
	b, ok := workload.ByName("compiler")
	if !ok {
		t.Skip("no compiler")
	}
	st, err := invoke.Build(check(t, b.Source), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Capped || st.Nodes < 1000 {
		t.Errorf("cap not honored: %+v", st)
	}
}
