// Package baseline groups the comparison pointer analyses the paper
// positions itself against: Andersen's inclusion-based analysis
// (precision baseline), Steensgaard's unification-based analysis (speed
// baseline), and the Emami et al. invocation graph (the
// reanalyze-per-context cost model of §7). The subpackages share the
// points-to-form IR of internal/cfg so all analyses see the same
// program; the cross-analysis tests in this directory demonstrate the
// expected precision ordering (Wilson–Lam more precise than Andersen,
// Andersen more precise than Steensgaard) on the classic
// unrealizable-path and unification examples.
package baseline
