// Package andersen implements a flow-insensitive, context-insensitive
// inclusion-based pointer analysis (Andersen's analysis) over the same
// points-to-form IR as the main analysis. It serves as the precision
// baseline: the Wilson–Lam analysis should produce points-to sets that
// are no larger, usually strictly smaller, at a higher analysis cost
// per line but with full context sensitivity.
package andersen
