package andersen

import (
	"sort"

	"wlpa/internal/cast"
	"wlpa/internal/cfg"
	"wlpa/internal/ctype"
	"wlpa/internal/memmod"
	"wlpa/internal/sem"
)

// Result holds the flow-insensitive solution.
type Result struct {
	pts    map[memmod.LocSet]*memmod.ValueSet
	blocks *blockTable
	procs  map[*cast.FuncDecl]*cfg.Proc

	// Iterations is the number of fixpoint passes.
	Iterations int
}

// blockTable assigns one block per program entity (context-insensitive).
type blockTable struct {
	globals map[*cast.Symbol]*memmod.Block
	locals  map[*cast.Symbol]*memmod.Block
	funcs   map[*cast.Symbol]*memmod.Block
	strs    map[int]*memmod.Block
	heaps   map[string]*memmod.Block
	retvals map[*cfg.Proc]*memmod.Block
}

func newBlockTable() *blockTable {
	return &blockTable{
		globals: make(map[*cast.Symbol]*memmod.Block),
		locals:  make(map[*cast.Symbol]*memmod.Block),
		funcs:   make(map[*cast.Symbol]*memmod.Block),
		strs:    make(map[int]*memmod.Block),
		heaps:   make(map[string]*memmod.Block),
		retvals: make(map[*cfg.Proc]*memmod.Block),
	}
}

func (t *blockTable) varBlock(sym *cast.Symbol) *memmod.Block {
	if sym.Global {
		if b, ok := t.globals[sym]; ok {
			return b
		}
		b := memmod.NewGlobal(sym)
		t.globals[sym] = b
		return b
	}
	if b, ok := t.locals[sym]; ok {
		return b
	}
	b := memmod.NewLocal(sym)
	t.locals[sym] = b
	return b
}

func (t *blockTable) funcBlock(sym *cast.Symbol) *memmod.Block {
	if b, ok := t.funcs[sym]; ok {
		return b
	}
	b := memmod.NewFunc(sym)
	t.funcs[sym] = b
	return b
}

func (t *blockTable) strBlock(id int, val string) *memmod.Block {
	if b, ok := t.strs[id]; ok {
		return b
	}
	b := memmod.NewString(id, val)
	t.strs[id] = b
	return b
}

func (t *blockTable) heapBlock(nd *cfg.Node) *memmod.Block {
	key := nd.Pos.String()
	if b, ok := t.heaps[key]; ok {
		return b
	}
	b := memmod.NewHeap(nd.Pos)
	t.heaps[key] = b
	return b
}

func (t *blockTable) retvalBlock(p *cfg.Proc) *memmod.Block {
	if b, ok := t.retvals[p]; ok {
		return b
	}
	b := memmod.NewRetval(p.Name)
	t.retvals[p] = b
	return b
}

type analyzer struct {
	prog    *sem.Program
	procs   map[*cast.FuncDecl]*cfg.Proc
	blocks  *blockTable
	pts     map[memmod.LocSet]*memmod.ValueSet
	changed bool
}

// Analyze runs the analysis to fixpoint.
func Analyze(prog *sem.Program) (*Result, error) {
	procs, err := cfg.BuildAll(prog.Funcs)
	if err != nil {
		return nil, err
	}
	a := &analyzer{
		prog:   prog,
		procs:  procs,
		blocks: newBlockTable(),
		pts:    make(map[memmod.LocSet]*memmod.ValueSet),
	}
	a.seedGlobals()
	iters := 0
	for {
		iters++
		a.changed = false
		for _, fd := range prog.Funcs {
			a.analyzeProc(procs[fd])
		}
		if !a.changed || iters > 200 {
			break
		}
	}
	return &Result{pts: a.pts, blocks: a.blocks, procs: procs, Iterations: iters}, nil
}

func (a *analyzer) add(loc memmod.LocSet, vals memmod.ValueSet) {
	if vals.IsEmpty() {
		return
	}
	loc = loc.Resolve()
	cur, ok := a.pts[loc]
	if !ok {
		nv := vals.Clone()
		a.pts[loc] = &nv
		a.changed = true
		return
	}
	if cur.AddAll(vals) {
		a.changed = true
	}
}

// contents returns everything stored at locations overlapping v.
func (a *analyzer) contents(v memmod.LocSet) memmod.ValueSet {
	var out memmod.ValueSet
	for k, vals := range a.pts {
		if k.Overlaps(v) {
			out.AddAll(*vals)
		}
	}
	return out
}

func (a *analyzer) evalExpr(proc *cfg.Proc, e *cfg.Expr) memmod.ValueSet {
	var out memmod.ValueSet
	if e == nil {
		return out
	}
	for _, t := range e.Terms {
		var base memmod.ValueSet
		switch t.Kind {
		case cfg.TermVar:
			if t.Sym.Name == "<retval>" {
				base.Add(memmod.Loc(a.blocks.retvalBlock(proc), 0, 0))
			} else {
				base.Add(memmod.Loc(a.blocks.varBlock(t.Sym), 0, 0))
			}
		case cfg.TermFunc:
			base.Add(memmod.Loc(a.blocks.funcBlock(t.Sym), 0, 0))
		case cfg.TermStr:
			base.Add(memmod.Loc(a.blocks.strBlock(t.StrID, t.StrVal), 0, 0))
		case cfg.TermDeref:
			for _, pl := range a.evalExpr(proc, t.Base).Locs() {
				base.AddAll(a.contents(pl))
			}
		}
		if t.Off != 0 {
			base = base.Shift(t.Off)
		}
		if t.Stride != 0 {
			base = base.WithStride(t.Stride)
		}
		out.AddAll(base)
	}
	return out
}

func (a *analyzer) analyzeProc(proc *cfg.Proc) {
	for _, nd := range proc.Nodes {
		switch nd.Kind {
		case cfg.AssignNode:
			dsts := a.evalExpr(proc, nd.Dst)
			if nd.Aggregate {
				// Coarse aggregate copy: everything reachable from
				// the source objects flows to the destinations.
				srcLocs := a.evalExpr(proc, nd.Src)
				var vals memmod.ValueSet
				for _, s := range srcLocs.Locs() {
					vals.AddAll(a.contents(s.Unknown()))
				}
				for _, d := range dsts.Locs() {
					a.add(d.Unknown(), vals)
				}
				continue
			}
			srcs := a.evalExpr(proc, nd.Src)
			for _, d := range dsts.Locs() {
				a.add(d, srcs)
			}
		case cfg.CallNode:
			a.analyzeCall(proc, nd)
		}
	}
}

func (a *analyzer) analyzeCall(proc *cfg.Proc, nd *cfg.Node) {
	args := make([]memmod.ValueSet, len(nd.Args))
	for i, ae := range nd.Args {
		args[i] = a.evalExpr(proc, ae)
	}
	var targets []*cast.Symbol
	if nd.Direct != nil {
		targets = []*cast.Symbol{nd.Direct}
	} else {
		for _, l := range a.evalExpr(proc, nd.Fun).Locs() {
			if l.Base.Kind == memmod.FuncBlock {
				targets = append(targets, l.Base.Sym)
			}
		}
	}
	for _, sym := range targets {
		fd := a.prog.FuncByName[sym.Name]
		if fd != nil && fd.Body != nil {
			callee := a.procs[fd]
			for i, p := range fd.Params {
				if p.Sym == nil || i >= len(args) {
					continue
				}
				a.add(memmod.Loc(a.blocks.varBlock(p.Sym), 0, 0), args[i])
			}
			if nd.RetDst != nil {
				rv := a.contents(memmod.Loc(a.blocks.retvalBlock(callee), 0, 0))
				for _, d := range a.evalExpr(proc, nd.RetDst).Locs() {
					a.add(d, rv)
				}
			}
			continue
		}
		a.libCall(proc, nd, sym.Name, args)
	}
}

// libCall approximates the library summaries flow-insensitively.
func (a *analyzer) libCall(proc *cfg.Proc, nd *cfg.Node, name string, args []memmod.ValueSet) {
	ret := func(vals memmod.ValueSet) {
		if nd.RetDst == nil {
			return
		}
		for _, d := range a.evalExpr(proc, nd.RetDst).Locs() {
			a.add(d, vals)
		}
	}
	arg := func(i int) memmod.ValueSet {
		if i < len(args) {
			return args[i]
		}
		return memmod.ValueSet{}
	}
	switch name {
	case "free", "fclose":
		// No pointer values are copied; a no-op is sound for points-to.
	case "malloc", "calloc", "strdup", "fopen", "getenv":
		ret(memmod.Values(memmod.Loc(a.blocks.heapBlock(nd), 0, 0)))
	case "realloc":
		out := memmod.Values(memmod.Loc(a.blocks.heapBlock(nd), 0, 0))
		out.AddAll(arg(0))
		ret(out)
	case "strcpy", "strncpy", "strcat", "strncat", "memcpy", "memmove",
		"memset", "fgets", "gets":
		// memcpy-style pointer copying, coarsely.
		if name == "memcpy" || name == "memmove" {
			var vals memmod.ValueSet
			for _, s := range arg(1).Locs() {
				vals.AddAll(a.contents(s.Unknown()))
			}
			for _, d := range arg(0).Locs() {
				a.add(d.Unknown(), vals)
			}
		}
		ret(arg(0))
	case "strchr", "strrchr", "strstr", "strpbrk", "strtok", "bsearch":
		ret(arg(0).WithStride(1))
	case "qsort":
		// Calls the comparator with pointers into the array.
		base := arg(0).WithStride(1)
		for _, fv := range arg(3).Locs() {
			if fv.Base.Kind != memmod.FuncBlock {
				continue
			}
			fd := a.prog.FuncByName[fv.Base.Sym.Name]
			if fd == nil || fd.Body == nil {
				continue
			}
			for i := 0; i < 2 && i < len(fd.Params); i++ {
				if fd.Params[i].Sym != nil {
					a.add(memmod.Loc(a.blocks.varBlock(fd.Params[i].Sym), 0, 0), base)
				}
			}
		}
	default:
		// Conservative: everything reachable flows everywhere.
		var reach memmod.ValueSet
		for _, v := range args {
			reach.AddAll(v)
		}
		for _, l := range reach.Locs() {
			a.add(l.Unknown(), reach)
		}
		ret(reach)
	}
}

func (a *analyzer) seedGlobals() {
	for _, vd := range a.prog.GlobalInits {
		if vd.Sym == nil || vd.Init == nil {
			continue
		}
		a.seedInit(memmod.Loc(a.blocks.varBlock(vd.Sym), 0, 0), vd.Sym.Type, vd.Init)
	}
}

func (a *analyzer) seedInit(loc memmod.LocSet, t *ctype.Type, init cast.Expr) {
	switch init := init.(type) {
	case *cast.InitList:
		switch t.Kind {
		case ctype.Array:
			esz := t.Elem.Sizeof()
			for _, el := range init.Elems {
				a.seedInit(loc.WithStride(esz), t.Elem, el)
			}
		case ctype.Struct:
			for i, el := range init.Elems {
				if i >= len(t.Fields) {
					break
				}
				a.seedInit(loc.Shift(t.Fields[i].Offset), t.Fields[i].Type, el)
			}
		default:
			if len(init.Elems) > 0 {
				a.seedInit(loc, t, init.Elems[0])
			}
		}
	case *cast.Unary:
		if init.Op == cast.Addr {
			if id, ok := init.X.(*cast.Ident); ok && id.Sym != nil {
				if id.Sym.Kind == cast.SymFunc {
					a.add(loc, memmod.Values(memmod.Loc(a.blocks.funcBlock(id.Sym), 0, 0)))
				} else {
					a.add(loc, memmod.Values(memmod.Loc(a.blocks.varBlock(id.Sym), 0, 0)))
				}
			}
		}
	case *cast.Ident:
		if init.Sym != nil && init.Sym.Kind == cast.SymFunc {
			a.add(loc, memmod.Values(memmod.Loc(a.blocks.funcBlock(init.Sym), 0, 0)))
		} else if init.Sym != nil && init.Sym.Type != nil && init.Sym.Type.Kind == ctype.Array {
			a.add(loc, memmod.Values(memmod.Loc(a.blocks.varBlock(init.Sym), 0, 0)))
		}
	case *cast.StrLit:
		if t.Kind != ctype.Array {
			a.add(loc, memmod.Values(memmod.Loc(a.blocks.strBlock(init.ID, init.Value), 0, 0)))
		}
	case *cast.Cast:
		a.seedInit(loc, t, init.X)
	}
}

// PointsTo returns the names of the blocks the named global may point to.
func (r *Result) PointsTo(global string) []string {
	for sym, b := range r.blocks.globals {
		if sym.Name != global {
			continue
		}
		var names []string
		seen := map[string]bool{}
		for k, vals := range r.pts {
			if k.Base != b {
				continue
			}
			for _, l := range vals.Locs() {
				if !seen[l.Base.Name] {
					seen[l.Base.Name] = true
					names = append(names, l.Base.Name)
				}
			}
		}
		sort.Strings(names)
		return names
	}
	return nil
}

// AvgSetSize returns the average points-to set size over all pointer
// locations (the standard precision metric).
func (r *Result) AvgSetSize() float64 {
	total, n := 0, 0
	for _, vals := range r.pts {
		if vals.Len() == 0 {
			continue
		}
		total += vals.Len()
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// NumFacts returns the number of location keys with facts.
func (r *Result) NumFacts() int { return len(r.pts) }

// Edges returns every block-granularity points-to edge of the
// solution: one (source, target) block pair for each fact "some
// location in source may hold a pointer into target". Offsets and
// strides are collapsed. Differential tests use the edge set to check
// the precision lattice against the context-sensitive analysis (which
// must be a subset) and the unification baseline (which must be a
// superset).
func (r *Result) Edges() [][2]*memmod.Block {
	seen := make(map[[2]*memmod.Block]bool)
	var out [][2]*memmod.Block
	for k, vals := range r.pts {
		for _, l := range vals.Locs() {
			e := [2]*memmod.Block{k.Base, l.Base}
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}
