// Package dataflow is a context-sensitive interprocedural finite-lattice
// dataflow engine layered over the converged points-to solution
// (internal/analysis). A client supplies transfer functions over an
// abstract Fact — a map from memory blocks ("cells") to small bitmask
// states — and the engine walks one calling context's CFG to a fixpoint,
// folding calls through per-context summary edges:
//
//   - Each root walk starts at a PTF (one calling context of one
//     procedure) and iterates its CFG in reverse postorder until the
//     per-node facts stabilize; the lattice is finite (cells bounded by
//     the program's blocks, states by 8 bits) and joins are bitwise OR,
//     so the fixpoint terminates.
//   - A call to an analyzed procedure applies the callee's summary:
//     the callee's CFG is walked with the caller's fact as entry fact,
//     memoized per (callee PTF, entry fact, parameter bindings), which
//     is exactly the entry-fact → exit-fact summary-edge discipline of
//     the paper's partial transfer functions, lifted to client lattices.
//   - Extended parameters of walked callees are translated back to the
//     root name space through the call edge's parameter bindings
//     (analysis.BindingsAt), so every fact cell names storage in the
//     root context and the summary composes across arbitrary call
//     chains.
//   - Recursive cycles (a summary demanded while it is being computed)
//     and pathological depth fall back to havocking the call's MOD set
//     (analysis.ModRefTable.NodeEffects) through the client's Havoc
//     hook — only what the callee may write is disturbed.
//   - Library calls (no analyzed body) are handed to the client's
//     Library hook, which models them from libsum-style declarations.
//
// Strong versus weak updates: the engine exposes the resolved target
// blocks of an expression (ArgCells and friends); a client performs a
// strong (destructive) update when the resolution is a single block and
// a weak (joining) update otherwise, mirroring the strong/weak store
// discipline of the points-to engine itself.
//
// Determinism: an Engine is meant to be created fresh per root walk (the
// checker passes create one per ContextWalk invocation). All internal
// orders — cell ids, worklist order, summary keys — derive from the
// deterministic CFG and value-set orders, so results are bit-identical
// regardless of how many contexts are walked concurrently elsewhere.
package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"wlpa/internal/analysis"
	"wlpa/internal/cfg"
	"wlpa/internal/memmod"
)

// State is a client-defined bitmask over at most 8 lattice states.
// The zero State means "untracked" and is never stored in a Fact.
type State uint8

// Fact maps cells (representative memory blocks) to their abstract
// state. Absent cells are untracked (bottom).
type Fact map[*memmod.Block]State

// Get returns the state of a cell (zero if untracked).
func (f Fact) Get(b *memmod.Block) State { return f[b] }

// Set updates a cell's state; setting the zero state removes the cell,
// keeping the "no zero entries" invariant Equal relies on.
func (f Fact) Set(b *memmod.Block, s State) {
	if s == 0 {
		delete(f, b)
		return
	}
	f[b] = s
}

// Clone returns an independent copy.
func (f Fact) Clone() Fact {
	out := make(Fact, len(f))
	for b, s := range f {
		out[b] = s
	}
	return out
}

// JoinWith merges another fact into f (bitwise OR per cell) and reports
// whether f changed.
func (f Fact) JoinWith(o Fact) bool {
	changed := false
	for b, s := range o {
		if f[b]|s != f[b] {
			f[b] |= s
			changed = true
		}
	}
	return changed
}

// Equal reports whether two facts hold identical states.
func (f Fact) Equal(o Fact) bool {
	if len(f) != len(o) {
		return false
	}
	for b, s := range f {
		if o[b] != s {
			return false
		}
	}
	return true
}

// Client supplies the transfer functions of one dataflow problem. Hooks
// mutate the passed Fact in place; any hook may be nil.
type Client struct {
	// Transfer models one assignment node.
	Transfer func(e *Engine, w *Walk, nd *cfg.Node, f Fact)
	// Library models a call with no analyzed body (nd.Direct is the
	// library symbol).
	Library func(e *Engine, w *Walk, nd *cfg.Node, f Fact)
	// Exit observes the fact flowing out of the ROOT walk's exit node
	// (summary walks do not trigger it).
	Exit func(e *Engine, w *Walk, f Fact)
	// Havoc folds an unanalyzable write (recursion fallback) into a
	// cell's state. Nil means havoc is the identity.
	Havoc func(s State) State
	// Track reports whether a library function is relevant to this
	// client (source, sink, transition, copy, ...). When set, calls
	// into subtrees containing no relevant library calls are skipped
	// outright while the fact is empty — they can neither create nor
	// transform client state. When nil, every call is walked.
	Track func(name string) bool
}

// maxDepth bounds the summary-walk call depth; beyond it (or on a
// recursive cycle) the engine havocs the call's MOD set instead.
const maxDepth = 64

// Walk identifies one procedure-level CFG walk: the context being
// walked and the bindings environment translating its extended
// parameters to root-name-space values (nil for the root walk).
type Walk struct {
	PTF *analysis.PTF
	env map[*memmod.Block]memmod.ValueSet
}

// Engine runs one client over one root calling context. Create a fresh
// Engine per root walk; it is not safe for concurrent use, and sharing
// the summary cache across roots would make results depend on walk
// order (the recursion fallback is context-dependent).
type Engine struct {
	A      *analysis.Analysis
	ModRef *analysis.ModRefTable
	Client Client

	sums     map[sumKey]Fact
	inprog   map[sumKey]bool
	edges    map[*analysis.PTF]map[*cfg.Node][]*analysis.PTF
	relevant map[*cfg.Proc]bool
	procs    map[string]*cfg.Proc
	ids      map[*memmod.Block]int
	depth    int
	// reporting is true only during the reporting root walk (Run /
	// ContextRun final walk), not during home-chain or summary walks.
	reporting bool
}

type sumKey struct {
	callee *analysis.PTF
	fact   string
	env    string
}

// Run walks the root context to a fixpoint, starting from the given
// entry fact (nil for an empty one), invokes the client's Exit hook on
// the exit fact, and returns it. Reporting hooks see AtRoot() == true
// for the root walk's own nodes.
func (e *Engine) Run(root *analysis.PTF, entry Fact) Fact {
	e.init()
	if entry == nil {
		entry = Fact{}
	}
	w := &Walk{PTF: root}
	e.reporting = true
	res := e.walk(w, entry)
	e.reporting = false
	if e.Client.Exit != nil {
		e.Client.Exit(e, w, res)
	}
	return res
}

// ContextRun walks one calling context: the PTF's home chain (the
// caller contexts that created it) is walked first, without reporting,
// to compute the fact actually flowing into this context and the
// binding environment translating its extended parameters; then the
// PTF's own CFG is walked as the reporting root. A defect that needs
// caller state (the caller closed the handle this procedure uses) is
// thus reported at the procedure that trips it, in exactly the calling
// contexts that exhibit it.
func (e *Engine) ContextRun(p *analysis.PTF) Fact {
	e.init()
	entry, env := e.contextEntry(p)
	w := &Walk{PTF: p, env: env}
	e.reporting = true
	res := e.walk(w, entry)
	e.reporting = false
	if e.Client.Exit != nil {
		e.Client.Exit(e, w, res)
	}
	return res
}

// contextEntry computes the fact flowing into a PTF's context and its
// composed parameter bindings by walking the home chain from main down.
func (e *Engine) contextEntry(p *analysis.PTF) (Fact, map[*memmod.Block]memmod.ValueSet) {
	home, nd := p.Home()
	if home == nil {
		return Fact{}, nil
	}
	hentry, henv := e.contextEntry(home)
	hw := &Walk{PTF: home, env: henv}
	in := e.factAt(hw, hentry, nd)
	return in, e.childEnv(hw, nd, p)
}

func (e *Engine) init() {
	if e.sums == nil {
		e.sums = map[sumKey]Fact{}
		e.inprog = map[sumKey]bool{}
		e.edges = map[*analysis.PTF]map[*cfg.Node][]*analysis.PTF{}
		e.relevant = map[*cfg.Proc]bool{}
		e.ids = map[*memmod.Block]int{}
	}
}

// AtRoot reports whether the engine is currently transferring nodes of
// the reporting root walk (true) rather than a callee summary walk or a
// home-chain walk. Reporting clients fire only at the root: a defect
// inside a callee is reported by that callee's own context run, with
// its own context chain.
func (e *Engine) AtRoot() bool { return e.reporting && e.depth == 0 }

// walk iterates one procedure's CFG (reverse postorder rounds) to a
// fixpoint and returns the fact at the exit node.
func (e *Engine) walk(w *Walk, entry Fact) Fact {
	out := e.fixpoint(w, entry)
	res := out[w.PTF.Proc.Exit]
	if res == nil {
		res = Fact{}
	}
	return res
}

// factAt iterates to a fixpoint and returns the fact flowing INTO nd.
func (e *Engine) factAt(w *Walk, entry Fact, nd *cfg.Node) Fact {
	out := e.fixpoint(w, entry)
	if nd.Kind == cfg.EntryNode {
		return entry.Clone()
	}
	in := Fact{}
	for _, pr := range nd.Preds {
		in.JoinWith(out[pr])
	}
	return in
}

func (e *Engine) fixpoint(w *Walk, entry Fact) map[*cfg.Node]Fact {
	proc := w.PTF.Proc
	out := make(map[*cfg.Node]Fact, len(proc.Nodes))
	// The lattice is finite and joins are monotone; the bound is a
	// deterministic backstop against a pathological non-monotone client.
	maxRounds := 2 + 8*len(proc.Nodes)
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, nd := range proc.Nodes {
			var in Fact
			if nd.Kind == cfg.EntryNode {
				in = entry.Clone()
			} else {
				in = Fact{}
				for _, pr := range nd.Preds {
					in.JoinWith(out[pr])
				}
			}
			e.transfer(w, nd, in)
			if !in.Equal(out[nd]) {
				out[nd] = in
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out
}

func (e *Engine) transfer(w *Walk, nd *cfg.Node, f Fact) {
	switch nd.Kind {
	case cfg.AssignNode:
		if e.Client.Transfer != nil {
			e.Client.Transfer(e, w, nd, f)
		}
	case cfg.CallNode:
		e.transferCall(w, nd, f)
	}
}

func (e *Engine) transferCall(w *Walk, nd *cfg.Node, f Fact) {
	callees := e.calleesAt(w.PTF, nd)
	if len(callees) == 0 {
		// No analyzed callee bound here: a library call, an unresolved
		// indirect call, or a node the analysis never reached in this
		// context. Only direct library calls get a client model.
		if nd.Direct != nil && e.procs == nil {
			e.indexProcs()
		}
		if nd.Direct != nil && e.procs[nd.Direct.Name] == nil && e.Client.Library != nil {
			e.Client.Library(e, w, nd, f)
		}
		return
	}
	var joined Fact
	for _, callee := range callees {
		res := e.summarize(w, nd, callee, f)
		if joined == nil {
			joined = res
		} else {
			joined.JoinWith(res)
		}
	}
	// The callee walk threads the whole fact through the call, so its
	// exit fact replaces the caller's.
	for b := range f {
		delete(f, b)
	}
	for b, s := range joined {
		f[b] = s
	}
}

// summarize applies one callee's summary edge: entry fact in, exit fact
// out, memoized per (callee, fact, bindings).
func (e *Engine) summarize(w *Walk, nd *cfg.Node, callee *analysis.PTF, f Fact) Fact {
	// A call into a subtree with no client-relevant library calls can
	// neither create cells nor (with an empty fact) transform any — it
	// is the identity. This keeps clean programs near O(procedures).
	if len(f) == 0 && e.Client.Track != nil && !e.relevantProc(callee.Proc) {
		return f.Clone()
	}
	env := e.childEnv(w, nd, callee)
	k := sumKey{callee: callee, fact: e.factKey(f), env: e.envKey(env)}
	if res, ok := e.sums[k]; ok {
		return res.Clone()
	}
	if e.inprog[k] || e.depth >= maxDepth {
		// Recursive cycle: approximate the call by havocking what it
		// may write (per-context MOD summary), nothing else.
		res := f.Clone()
		e.havocCall(w, nd, res)
		return res
	}
	e.inprog[k] = true
	e.depth++
	res := e.walk(&Walk{PTF: callee, env: env}, f.Clone())
	e.depth--
	delete(e.inprog, k)
	e.sums[k] = res.Clone()
	return res.Clone()
}

// havocCall applies the client's Havoc to every cell the call may
// modify, per the MOD/REF summary translated to the root name space.
func (e *Engine) havocCall(w *Walk, nd *cfg.Node, f Fact) {
	if e.Client.Havoc == nil || e.ModRef == nil {
		return
	}
	mod, _ := e.ModRef.NodeEffects(w.PTF, nd)
	for _, b := range e.cells(w, mod) {
		f.Set(b, e.Client.Havoc(f.Get(b)))
	}
}

// childEnv composes the call edge's parameter bindings with the current
// walk's environment, producing callee-parameter → root-name-space
// values. Iteration is in sorted parameter-name order so cell ids are
// assigned deterministically.
func (e *Engine) childEnv(w *Walk, nd *cfg.Node, callee *analysis.PTF) map[*memmod.Block]memmod.ValueSet {
	raw := e.A.BindingsAt(w.PTF, nd, callee)
	params := make([]*memmod.Block, 0, len(raw))
	for b := range raw {
		params = append(params, b)
	}
	sort.Slice(params, func(i, j int) bool { return params[i].Name < params[j].Name })
	env := make(map[*memmod.Block]memmod.ValueSet, len(raw))
	for _, b := range params {
		tv := e.translate(w, raw[b])
		e.id(b)
		for _, l := range tv.Locs() {
			e.id(l.Resolve().Base.Representative())
		}
		env[b.Representative()] = tv
	}
	return env
}

// translate maps values from the walked context's name space into the
// root name space by resolving extended parameters through the walk's
// environment. Root-walk values (env == nil) pass through: the root's
// own extended parameters are legitimate cells.
func (e *Engine) translate(w *Walk, vals memmod.ValueSet) memmod.ValueSet {
	if w.env == nil {
		return vals
	}
	var out memmod.ValueSet
	for _, l := range vals.Locs() {
		l = l.Resolve()
		if l.Base.Kind == memmod.ParamBlock {
			if bound, ok := w.env[l.Base.Representative()]; ok {
				b := bound
				if l.Off != 0 {
					b = b.Shift(l.Off)
				}
				if l.Stride != 0 {
					b = b.WithStride(l.Stride)
				}
				out.AddAll(b)
				continue
			}
		}
		out.Add(l)
	}
	return out
}

// cells reduces a value set to its distinct target blocks in the root
// name space, sorted by name (ties by first-encounter id), dropping the
// null and function pseudo-blocks.
func (e *Engine) cells(w *Walk, vals memmod.ValueSet) []*memmod.Block {
	seen := map[*memmod.Block]bool{}
	var out []*memmod.Block
	for _, l := range e.translate(w, vals).Locs() {
		b := l.Resolve().Base
		if b.Kind == memmod.NullBlock || b.Kind == memmod.FuncBlock {
			continue
		}
		b = b.Representative()
		if !seen[b] {
			seen[b] = true
			e.id(b)
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return e.ids[out[i]] < e.ids[out[j]]
	})
	return out
}

// ArgCells resolves a call's i'th actual to the blocks it points at —
// the storage the argument denotes (in points-to form an argument
// expression evaluates to the locations the pointer targets).
func (e *Engine) ArgCells(w *Walk, nd *cfg.Node, i int) []*memmod.Block {
	if i < 0 || i >= len(nd.Args) {
		return nil
	}
	return e.cells(w, e.A.EvalAt(w.PTF, nd.Args[i], nd))
}

// ExprCells resolves a location expression to its target blocks.
func (e *Engine) ExprCells(w *Walk, ex *cfg.Expr, nd *cfg.Node) []*memmod.Block {
	if ex == nil {
		return nil
	}
	return e.cells(w, e.A.EvalAt(w.PTF, ex, nd))
}

// LoadCells returns the blocks a source expression reads data from: the
// pointee storage of every top-level dereference term. (Intermediate
// pointer loads of nested dereferences move pointers, not data; data-
// taint style clients care about the outermost load.)
func (e *Engine) LoadCells(w *Walk, ex *cfg.Expr, nd *cfg.Node) []*memmod.Block {
	if ex == nil {
		return nil
	}
	var vals memmod.ValueSet
	for _, t := range ex.Terms {
		if t.Kind == cfg.TermDeref {
			vals.AddAll(e.A.EvalAt(w.PTF, t.Base, nd))
		}
	}
	return e.cells(w, vals)
}

// StoreCells returns the blocks a destination expression writes: the
// storage of directly named variables plus the pointee storage of
// dereference destinations.
func (e *Engine) StoreCells(w *Walk, ex *cfg.Expr, nd *cfg.Node) []*memmod.Block {
	if ex == nil {
		return nil
	}
	var vals memmod.ValueSet
	for _, t := range ex.Terms {
		switch t.Kind {
		case cfg.TermVar:
			vals.Add(e.A.VarLoc(w.PTF, t.Sym, t.Off, t.Stride))
		case cfg.TermDeref:
			vals.AddAll(e.A.EvalAt(w.PTF, t.Base, nd))
		}
	}
	return e.cells(w, vals)
}

// HeapCell returns the heap block allocated at a call node (nil if the
// node is not a reached allocation site), registered as a cell.
func (e *Engine) HeapCell(nd *cfg.Node) *memmod.Block {
	b := e.A.HeapBlockAt(nd)
	if b == nil {
		return nil
	}
	b = b.Representative()
	e.id(b)
	return b
}

// Strong reports whether an update through the given resolved targets
// may be performed destructively: exactly one block. (Object uniqueness
// is the client's call — a typestate client strong-updates singleton
// heap cells because the allocation site re-initializes their state.)
func Strong(cells []*memmod.Block) bool { return len(cells) == 1 }

func (e *Engine) calleesAt(p *analysis.PTF, nd *cfg.Node) []*analysis.PTF {
	m, ok := e.edges[p]
	if !ok {
		m = map[*cfg.Node][]*analysis.PTF{}
		for _, edge := range e.A.CallEdgesOf(p) {
			m[edge.Node] = append(m[edge.Node], edge.Callee)
		}
		e.edges[p] = m
	}
	return m[nd]
}

func (e *Engine) indexProcs() {
	e.procs = map[string]*cfg.Proc{}
	for _, p := range e.A.AllPTFs() {
		e.procs[p.Proc.Name] = p.Proc
	}
}

// relevantProc reports whether a procedure's static call subtree
// contains any client-relevant library call. Cycles and indirect calls
// are conservatively relevant.
func (e *Engine) relevantProc(proc *cfg.Proc) bool {
	if v, ok := e.relevant[proc]; ok {
		return v
	}
	if e.procs == nil {
		e.indexProcs()
	}
	e.relevant[proc] = true // in-progress: cycles count as relevant
	rel := false
	for _, nd := range proc.Nodes {
		if nd.Kind != cfg.CallNode {
			continue
		}
		if nd.Direct == nil {
			rel = true // indirect: could reach anything
			break
		}
		if callee := e.procs[nd.Direct.Name]; callee != nil {
			if callee != proc && e.relevantProc(callee) {
				rel = true
				break
			}
		} else if e.Client.Track(nd.Direct.Name) {
			rel = true
			break
		}
	}
	e.relevant[proc] = rel
	return rel
}

// id assigns small per-engine integers to blocks in first-encounter
// order; every assignment site iterates deterministically, so the ids —
// and with them the summary keys — are reproducible.
func (e *Engine) id(b *memmod.Block) int {
	if n, ok := e.ids[b]; ok {
		return n
	}
	n := len(e.ids)
	e.ids[b] = n
	return n
}

func (e *Engine) factKey(f Fact) string {
	type kv struct {
		id int
		s  State
	}
	pairs := make([]kv, 0, len(f))
	for b, s := range f {
		pairs = append(pairs, kv{e.id(b), s})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })
	var sb strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&sb, "%d:%d;", p.id, p.s)
	}
	return sb.String()
}

func (e *Engine) envKey(env map[*memmod.Block]memmod.ValueSet) string {
	ids := make([]int, 0, len(env))
	byID := make(map[int]*memmod.Block, len(env))
	for b := range env {
		n := e.id(b)
		ids = append(ids, n)
		byID[n] = b
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, n := range ids {
		fmt.Fprintf(&sb, "%d=[", n)
		for _, l := range env[byID[n]].Locs() {
			l = l.Resolve()
			fmt.Fprintf(&sb, "%d+%d*%d,", e.id(l.Base.Representative()), l.Off, l.Stride)
		}
		sb.WriteString("];")
	}
	return sb.String()
}
