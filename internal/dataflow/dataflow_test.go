package dataflow_test

import (
	"testing"

	"wlpa/internal/analysis"
	"wlpa/internal/cfg"
	"wlpa/internal/cparse"
	"wlpa/internal/dataflow"
	"wlpa/internal/libsum"
	"wlpa/internal/memmod"
	"wlpa/internal/sem"
)

func analyze(t *testing.T, src string) *analysis.Analysis {
	t.Helper()
	file, err := cparse.ParseSource("df.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sem.Check(file)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	a, err := analysis.New(prog, analysis.Options{
		Lib:             libsum.Summaries(),
		LibEffects:      libsum.Effects(),
		CollectSolution: true,
	})
	if err != nil {
		t.Fatalf("analysis.New: %v", err)
	}
	if err := a.Run(); err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	return a
}

func TestFactOperations(t *testing.T) {
	b1 := &memmod.Block{Name: "b1"}
	b2 := &memmod.Block{Name: "b2"}
	f := dataflow.Fact{}
	f.Set(b1, 3)
	if f.Get(b1) != 3 || f.Get(b2) != 0 {
		t.Fatalf("Get after Set: %v", f)
	}
	// Setting zero removes the cell (the invariant Equal relies on).
	f.Set(b1, 0)
	if len(f) != 0 {
		t.Fatalf("zero Set did not delete: %v", f)
	}
	f.Set(b1, 1)
	g := f.Clone()
	g.Set(b2, 2)
	if f.Get(b2) != 0 {
		t.Fatal("Clone is not independent")
	}
	// Join is bitwise OR per cell and reports change precisely.
	if !f.JoinWith(dataflow.Fact{b1: 2}) || f.Get(b1) != 3 {
		t.Fatalf("JoinWith OR failed: %v", f)
	}
	if f.JoinWith(dataflow.Fact{b1: 1}) {
		t.Fatal("JoinWith reported change on a no-op join")
	}
	if f.Equal(g) {
		t.Fatal("Equal on differing facts")
	}
	g.Set(b2, 0)
	g.Set(b1, 3)
	if !f.Equal(g) {
		t.Fatalf("Equal on identical facts: %v vs %v", f, g)
	}
}

func TestStrong(t *testing.T) {
	b := &memmod.Block{Name: "b"}
	if dataflow.Strong(nil) || dataflow.Strong([]*memmod.Block{b, b}) {
		t.Fatal("non-singleton resolution classified strong")
	}
	if !dataflow.Strong([]*memmod.Block{b}) {
		t.Fatal("singleton resolution not strong")
	}
}

// markClient tracks one bit: malloc marks its heap cell, free observes
// the state of its argument's cells at the reporting root. The fixpoint
// re-runs transfer functions until stabilization, so observations are
// keyed by call position with the last (converged) state kept — the same
// dedup discipline the checker passes use.
func markClient(obs map[string]dataflow.State) dataflow.Client {
	return dataflow.Client{
		Track: func(name string) bool { return name == "malloc" || name == "free" },
		Library: func(e *dataflow.Engine, w *dataflow.Walk, nd *cfg.Node, f dataflow.Fact) {
			switch nd.Direct.Name {
			case "malloc":
				if hb := e.HeapCell(nd); hb != nil {
					f.Set(hb, 1)
				}
			case "free":
				var s dataflow.State
				for _, c := range e.ArgCells(w, nd, 0) {
					s |= f.Get(c)
				}
				if e.AtRoot() {
					obs[nd.Pos.String()] = s
				}
			}
		},
	}
}

// TestSummaryThreadsFactThroughCall verifies the summary-edge mechanics:
// state created inside a callee (malloc marks its cell during the
// summary walk of get) is visible in the caller after the call.
func TestSummaryThreadsFactThroughCall(t *testing.T) {
	src := `
#include <stdlib.h>
int *p;
void get(void) {
    p = (int *)malloc(sizeof(int));
}
int main(void) {
    get();
    free(p);
    return 0;
}`
	a := analyze(t, src)
	obs := map[string]dataflow.State{}
	eng := &dataflow.Engine{A: a, ModRef: a.ModRef(), Client: markClient(obs)}
	eng.ContextRun(a.MainPTF())
	if len(obs) != 1 {
		t.Fatalf("free observed at %d sites at root, want 1: %v", len(obs), obs)
	}
	for pos, s := range obs {
		if s != 1 {
			t.Fatalf("heap cell state at free (%s) = %d, want 1 (mark from callee summary lost)", pos, s)
		}
	}
}

// TestContextRunCarriesCallerState verifies the home-chain walk: when
// the root context is a callee, the fact computed in its caller (main
// marked the heap cell before calling use) flows into the root walk's
// entry, and the callee's own nodes report AtRoot.
func TestContextRunCarriesCallerState(t *testing.T) {
	src := `
#include <stdlib.h>
int *p;
void use(void) {
    free(p);
}
int main(void) {
    p = (int *)malloc(sizeof(int));
    use();
    return 0;
}`
	a := analyze(t, src)
	ptfs := a.PTFs("use")
	if len(ptfs) != 1 {
		t.Fatalf("use has %d contexts, want 1", len(ptfs))
	}
	obs := map[string]dataflow.State{}
	eng := &dataflow.Engine{A: a, ModRef: a.ModRef(), Client: markClient(obs)}
	eng.ContextRun(ptfs[0])
	if len(obs) != 1 {
		t.Fatalf("free observed at %d sites at root, want 1: %v", len(obs), obs)
	}
	for pos, s := range obs {
		if s != 1 {
			t.Fatalf("heap cell state in callee context (%s) = %d, want 1 (caller state lost)", pos, s)
		}
	}
}

// TestRunExitHook verifies Run's contract: a nil entry starts empty, the
// exit fact is returned, and the Exit hook sees it.
func TestRunExitHook(t *testing.T) {
	src := `
#include <stdlib.h>
int *p;
int main(void) {
    p = (int *)malloc(sizeof(int));
    return 0;
}`
	a := analyze(t, src)
	var exitFact dataflow.Fact
	eng := &dataflow.Engine{A: a, ModRef: a.ModRef(), Client: dataflow.Client{
		Track: func(name string) bool { return name == "malloc" },
		Library: func(e *dataflow.Engine, w *dataflow.Walk, nd *cfg.Node, f dataflow.Fact) {
			if hb := e.HeapCell(nd); hb != nil {
				f.Set(hb, 1)
			}
		},
		Exit: func(e *dataflow.Engine, w *dataflow.Walk, f dataflow.Fact) {
			exitFact = f.Clone()
		},
	}}
	res := eng.Run(a.MainPTF(), nil)
	if exitFact == nil {
		t.Fatal("Exit hook did not fire")
	}
	if !res.Equal(exitFact) {
		t.Fatalf("returned fact %v differs from Exit hook's %v", res, exitFact)
	}
	if len(res) != 1 {
		t.Fatalf("exit fact has %d cells, want the marked heap cell: %v", len(res), res)
	}
}

// TestDeterministicAcrossRuns pins the determinism contract: two fresh
// engines over the same analysis produce identical observation streams.
func TestDeterministicAcrossRuns(t *testing.T) {
	src := `
#include <stdlib.h>
int *p;
int *q;
int flag;
void get(int **out) {
    *out = (int *)malloc(sizeof(int));
}
int main(void) {
    get(&p);
    get(&q);
    if (flag)
        p = q;
    free(p);
    free(q);
    return 0;
}`
	a := analyze(t, src)
	runOnce := func() map[string]dataflow.State {
		obs := map[string]dataflow.State{}
		eng := &dataflow.Engine{A: a, ModRef: a.ModRef(), Client: markClient(obs)}
		eng.ContextRun(a.MainPTF())
		return obs
	}
	first := runOnce()
	if len(first) != 2 {
		t.Fatalf("expected free observations at 2 sites, got %v", first)
	}
	for pos, s := range first {
		if s != 1 {
			t.Fatalf("state at %s = %d, want 1", pos, s)
		}
	}
	for i := 0; i < 5; i++ {
		again := runOnce()
		if len(again) != len(first) {
			t.Fatalf("run %d: %v vs %v", i, again, first)
		}
		for pos, s := range again {
			if first[pos] != s {
				t.Fatalf("run %d: state at %s = %d, want %d", i, pos, s, first[pos])
			}
		}
	}
}
