package cfg

import (
	"fmt"

	"wlpa/internal/cast"
	"wlpa/internal/ctok"
	"wlpa/internal/ctype"
)

// Error is a flow-graph construction error.
type Error struct {
	Pos ctok.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type builder struct {
	proc     *Proc
	cur      *Node // nil after return/break/goto (dead code)
	temps    int
	uniq     *int
	labels   map[string]*Node
	breaks   []*Node // innermost-last break targets
	conts    []*Node // innermost-last continue targets
	switches []*switchCtx
}

type switchCtx struct {
	fork       *Node
	after      *Node
	sawDefault bool
}

// Build constructs the flow graph of a function definition.
func Build(fd *cast.FuncDecl) (p *Proc, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(*Error); ok {
				p, err = nil, ce
				return
			}
			panic(r)
		}
	}()
	uniq := 0
	b := &builder{
		proc: &Proc{
			Fn:   fd,
			Name: fd.Name,
			Retval: &cast.Symbol{
				Kind: cast.SymVar, Name: "<retval>", Type: fd.Type.Ret,
			},
		},
		uniq:   &uniq,
		labels: make(map[string]*Node),
	}
	b.proc.Entry = newNode(EntryNode)
	b.proc.Entry.Pos = fd.Pos
	b.proc.Exit = newNode(ExitNode)
	b.proc.Exit.Pos = fd.Pos
	b.cur = b.proc.Entry
	b.lowerStmt(fd.Body)
	if b.cur != nil {
		link(b.cur, b.proc.Exit)
	}
	b.proc.finish()
	return b.proc, nil
}

// BuildAll constructs flow graphs for every defined function.
func BuildAll(funcs []*cast.FuncDecl) (map[*cast.FuncDecl]*Proc, error) {
	procs := make(map[*cast.FuncDecl]*Proc, len(funcs))
	for _, fd := range funcs {
		p, err := Build(fd)
		if err != nil {
			return nil, err
		}
		procs[fd] = p
	}
	return procs, nil
}

func (b *builder) errorf(pos ctok.Pos, format string, args ...any) {
	panic(&Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// ensureCur guarantees a current node, creating a dangling (unreachable)
// meet node for code after a jump; such nodes are pruned by finish.
func (b *builder) ensureCur() {
	if b.cur == nil {
		b.cur = newNode(MeetNode)
	}
}

func (b *builder) emit(n *Node) *Node {
	b.ensureCur()
	link(b.cur, n)
	b.cur = n
	return n
}

func (b *builder) newMeet() *Node { return newNode(MeetNode) }

func (b *builder) emitAssign(dst, src *Expr, size int64, aggregate bool, pos ctok.Pos) {
	if dst.IsEmpty() {
		return
	}
	n := newNode(AssignNode)
	n.Dst, n.Src, n.Size, n.Aggregate, n.Pos = dst, src, size, aggregate, pos
	b.emit(n)
}

func (b *builder) newTemp(t *ctype.Type) *cast.Symbol {
	b.temps++
	*b.uniq++
	sym := &cast.Symbol{
		Kind: cast.SymVar, Name: fmt.Sprintf("$t%d", b.temps),
		Type: t, Uniq: *b.uniq,
	}
	b.proc.Locals = append(b.proc.Locals, sym)
	return sym
}

// isNullConst reports whether e is a null pointer constant: an integer
// literal 0, possibly wrapped in casts.
func isNullConst(e cast.Expr) bool {
	switch e := e.(type) {
	case *cast.IntLit:
		return e.Value == 0
	case *cast.Cast:
		return isNullConst(e.X)
	}
	return false
}

// nullAdjusted substitutes the null-constant term for the (empty) value
// expression of a null pointer constant assigned to a pointer-typed
// destination, so the analysis can track nullness.
func nullAdjusted(v *Expr, t *ctype.Type, init cast.Expr) *Expr {
	if t != nil && t.Decay().Kind == ctype.Pointer && isNullConst(init) {
		return nullExpr()
	}
	return v
}

func elemSize(t *ctype.Type) int64 {
	d := t.Decay()
	if d.Kind != ctype.Pointer {
		return 1
	}
	s := d.Elem.Sizeof()
	if s <= 0 {
		return 1
	}
	return s
}

// ---- statements ----

func (b *builder) lowerStmt(s cast.Stmt) {
	switch s := s.(type) {
	case *cast.BlockStmt:
		for _, item := range s.Items {
			if item.Decl != nil {
				b.lowerDecl(item.Decl)
			} else {
				b.lowerStmt(item.Stmt)
			}
		}
	case *cast.ExprStmt:
		b.lowerValue(s.X)
	case *cast.EmptyStmt:
	case *cast.IfStmt:
		b.lowerValue(s.Cond)
		fork := b.cur
		b.ensureCur()
		fork = b.cur
		after := b.newMeet()
		b.lowerStmt(s.Then)
		if b.cur != nil {
			link(b.cur, after)
		}
		b.cur = fork
		if s.Else != nil {
			b.lowerStmt(s.Else)
		}
		if b.cur != nil {
			link(b.cur, after)
		}
		b.cur = after
	case *cast.WhileStmt:
		head := b.newMeet()
		after := b.newMeet()
		b.emit(head)
		b.lowerValue(s.Cond)
		condEnd := b.cur
		link(condEnd, after)
		b.breaks = append(b.breaks, after)
		b.conts = append(b.conts, head)
		b.lowerStmt(s.Body)
		if b.cur != nil {
			link(b.cur, head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.cur = after
	case *cast.DoWhileStmt:
		head := b.newMeet()
		after := b.newMeet()
		b.emit(head)
		b.breaks = append(b.breaks, after)
		contTarget := b.newMeet()
		b.conts = append(b.conts, contTarget)
		b.lowerStmt(s.Body)
		if b.cur != nil {
			link(b.cur, contTarget)
		}
		b.cur = contTarget
		b.lowerValue(s.Cond)
		if b.cur != nil {
			link(b.cur, head)
			link(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.cur = after
	case *cast.ForStmt:
		if s.Init != nil {
			b.lowerValue(s.Init)
		}
		head := b.newMeet()
		after := b.newMeet()
		post := b.newMeet()
		b.emit(head)
		if s.Cond != nil {
			b.lowerValue(s.Cond)
		}
		condEnd := b.cur
		link(condEnd, after)
		b.breaks = append(b.breaks, after)
		b.conts = append(b.conts, post)
		b.lowerStmt(s.Body)
		if b.cur != nil {
			link(b.cur, post)
		}
		b.cur = post
		if s.Post != nil {
			b.lowerValue(s.Post)
		}
		if b.cur != nil {
			link(b.cur, head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.cur = after
	case *cast.SwitchStmt:
		b.lowerValue(s.Tag)
		b.ensureCur()
		ctx := &switchCtx{fork: b.cur, after: b.newMeet()}
		b.switches = append(b.switches, ctx)
		b.breaks = append(b.breaks, ctx.after)
		b.cur = nil // cases are entered via the dispatch fork
		b.lowerStmt(s.Body)
		if b.cur != nil {
			link(b.cur, ctx.after) // fall off the last case
		}
		if !ctx.sawDefault {
			link(ctx.fork, ctx.after)
		}
		b.switches = b.switches[:len(b.switches)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = ctx.after
	case *cast.CaseStmt:
		if len(b.switches) == 0 {
			b.errorf(s.Pos, "case label outside switch")
		}
		ctx := b.switches[len(b.switches)-1]
		if s.IsDefault {
			ctx.sawDefault = true
		}
		m := b.newMeet()
		link(ctx.fork, m)
		if b.cur != nil {
			link(b.cur, m) // fallthrough from the previous case
		}
		b.cur = m
		b.lowerStmt(s.Body)
	case *cast.BreakStmt:
		if len(b.breaks) == 0 {
			b.errorf(s.Pos, "break outside loop or switch")
		}
		if b.cur != nil {
			link(b.cur, b.breaks[len(b.breaks)-1])
		}
		b.cur = nil
	case *cast.ContinueStmt:
		if len(b.conts) == 0 {
			b.errorf(s.Pos, "continue outside loop")
		}
		if b.cur != nil {
			link(b.cur, b.conts[len(b.conts)-1])
		}
		b.cur = nil
	case *cast.ReturnStmt:
		if s.X != nil {
			rt := b.proc.Fn.Type.Ret
			if rt.Kind == ctype.Struct {
				src := b.lowerLValue(s.X)
				b.emitAssign(varExpr(b.proc.Retval), src, rt.Sizeof(), true, s.Pos)
			} else {
				v := nullAdjusted(b.lowerValue(s.X), rt, s.X)
				b.emitAssign(varExpr(b.proc.Retval), v, rt.Decay().Sizeof(), false, s.Pos)
			}
		}
		b.ensureCur()
		link(b.cur, b.proc.Exit)
		b.cur = nil
	case *cast.GotoStmt:
		target := b.labelNode(s.Label)
		if b.cur != nil {
			link(b.cur, target)
		}
		b.cur = nil
	case *cast.LabelStmt:
		m := b.labelNode(s.Name)
		if b.cur != nil {
			link(b.cur, m)
		}
		b.cur = m
		b.lowerStmt(s.Body)
	default:
		b.errorf(s.Position(), "unhandled statement %T", s)
	}
}

func (b *builder) labelNode(name string) *Node {
	if n, ok := b.labels[name]; ok {
		return n
	}
	n := b.newMeet()
	b.labels[name] = n
	return n
}

func (b *builder) lowerDecl(d cast.Decl) {
	vd, ok := d.(*cast.VarDecl)
	if !ok || vd.Sym == nil {
		return
	}
	sym := vd.Sym
	if sym.Kind == cast.SymVar && !sym.Global {
		b.proc.Locals = append(b.proc.Locals, sym)
	}
	if vd.Init == nil || sym.Global {
		// Global/static initializers are applied by the analysis at
		// program startup, not here.
		return
	}
	b.lowerInit(varExpr(sym), sym.Type, vd.Init, vd.Pos)
}

// lowerInit assigns an initializer to the locations denoted by dst.
func (b *builder) lowerInit(dst *Expr, t *ctype.Type, init cast.Expr, pos ctok.Pos) {
	if lst, ok := init.(*cast.InitList); ok {
		switch t.Kind {
		case ctype.Array:
			esz := t.Elem.Sizeof()
			for _, el := range lst.Elems {
				b.lowerInit(widen(dst, esz), t.Elem, el, pos)
			}
		case ctype.Struct:
			for i, el := range lst.Elems {
				if i >= len(t.Fields) {
					break
				}
				f := t.Fields[i]
				b.lowerInit(shift(dst, f.Offset), f.Type, el, pos)
			}
		default:
			if len(lst.Elems) > 0 {
				b.lowerInit(dst, t, lst.Elems[0], pos)
			}
		}
		return
	}
	if t.Kind == ctype.Array {
		// "char s[] = "...";" — no pointer values in the bytes.
		if _, ok := init.(*cast.StrLit); ok {
			return
		}
	}
	if t.Kind == ctype.Struct {
		src := b.lowerLValue(init)
		b.emitAssign(dst, src, t.Sizeof(), true, pos)
		return
	}
	v := nullAdjusted(b.lowerValue(init), t, init)
	b.emitAssign(dst, v, t.Decay().Sizeof(), false, pos)
}

// ---- expressions ----

// lowerLValue returns the location expression of e, emitting nodes for
// any side effects inside it.
func (b *builder) lowerLValue(e cast.Expr) *Expr {
	switch e := e.(type) {
	case *cast.Ident:
		sym := e.Sym
		if sym == nil {
			return &Expr{}
		}
		if sym.Kind == cast.SymFunc {
			return funcExpr(sym)
		}
		return varExpr(sym)
	case *cast.Unary:
		if e.Op == cast.Deref {
			return b.lowerValue(e.X)
		}
		b.errorf(e.Pos, "unary %v is not an lvalue", e.Op)
	case *cast.Index:
		b.lowerValue(e.I) // effects (and ignore the integer value)
		xt := e.X.TypeOf()
		esz := e.TypeOf().Sizeof()
		if esz <= 0 {
			esz = 1
		}
		if xt.Kind == ctype.Array {
			return widen(b.lowerLValue(e.X), esz)
		}
		return widen(b.lowerValue(e.X), esz)
	case *cast.Member:
		var base *Expr
		if e.Arrow {
			base = b.lowerValue(e.X)
		} else {
			base = b.lowerLValue(e.X)
		}
		if e.Field == nil {
			return base
		}
		return shift(base, e.Field.Offset)
	case *cast.StrLit:
		return strExpr(e.ID, e.Value)
	case *cast.Cast:
		return b.lowerLValue(e.X)
	case *cast.Comma:
		b.lowerValue(e.L)
		return b.lowerLValue(e.R)
	case *cast.Assign:
		b.lowerAssign(e)
		return b.lowerLValue(e.L)
	case *cast.Call:
		// Struct-returning call used as an lvalue-ish object
		// (e.g. f().field): materialize into a temp.
		v, tmp := b.lowerCall(e)
		if tmp != nil {
			return varExpr(tmp)
		}
		_ = v
		return &Expr{}
	case *cast.Cond:
		return b.lowerCond(e, true)
	}
	b.errorf(e.Position(), "expression %T is not an lvalue", e)
	return nil
}

// lowerValue returns the value expression of e in points-to form,
// emitting nodes for side effects.
func (b *builder) lowerValue(e cast.Expr) *Expr {
	switch e := e.(type) {
	case *cast.Ident:
		sym := e.Sym
		if sym == nil || sym.Kind == cast.SymEnumConst {
			return &Expr{}
		}
		if sym.Kind == cast.SymFunc {
			return funcExpr(sym)
		}
		switch sym.Type.Kind {
		case ctype.Array:
			return varExpr(sym) // decay to address
		case ctype.Func:
			return funcExpr(sym)
		}
		return derefExpr(varExpr(sym))
	case *cast.IntLit, *cast.FloatLit, *cast.SizeofExpr, *cast.SizeofType:
		return &Expr{}
	case *cast.StrLit:
		return strExpr(e.ID, e.Value) // decays to its address
	case *cast.Unary:
		return b.lowerUnaryValue(e)
	case *cast.Binary:
		return b.lowerBinaryValue(e)
	case *cast.Assign:
		return b.lowerAssign(e)
	case *cast.Cond:
		return b.lowerCond(e, false)
	case *cast.Call:
		v, _ := b.lowerCall(e)
		return v
	case *cast.Index, *cast.Member:
		lv := b.lowerLValue(e)
		t := e.TypeOf()
		switch t.Kind {
		case ctype.Array:
			return lv
		case ctype.Func:
			return lv
		}
		return derefExpr(lv)
	case *cast.Comma:
		b.lowerValue(e.L)
		return b.lowerValue(e.R)
	case *cast.Cast:
		return b.lowerValue(e.X)
	case *cast.InitList:
		b.errorf(e.Pos, "initializer list in expression context")
	}
	b.errorf(e.Position(), "unhandled expression %T", e)
	return nil
}

func (b *builder) lowerUnaryValue(e *cast.Unary) *Expr {
	switch e.Op {
	case cast.Addr:
		if id, ok := e.X.(*cast.Ident); ok && id.Sym != nil && id.Sym.Kind == cast.SymFunc {
			return funcExpr(id.Sym)
		}
		return b.lowerLValue(e.X)
	case cast.Deref:
		v := b.lowerValue(e.X)
		t := e.TypeOf()
		if t.Kind == ctype.Array || t.Kind == ctype.Func {
			return v // *p over array/function types stays an address
		}
		return derefExpr(v)
	case cast.Neg, cast.BitNot, cast.Plus:
		return widen(b.lowerValue(e.X), 1)
	case cast.LogNot:
		b.lowerValue(e.X)
		return &Expr{}
	case cast.PreInc, cast.PreDec, cast.PostInc, cast.PostDec:
		lv := b.lowerLValue(e.X)
		t := e.X.TypeOf().Decay()
		var src *Expr
		var size int64
		if t.Kind == ctype.Pointer {
			src = widen(derefExpr(lv), elemSize(e.X.TypeOf()))
			size = ctype.PointerSize
		} else {
			src = widen(derefExpr(lv), 1)
			size = t.Sizeof()
		}
		b.emitAssign(lv, src, size, false, e.Pos)
		return derefExpr(lv)
	}
	b.errorf(e.Pos, "unhandled unary %v", e.Op)
	return nil
}

func (b *builder) lowerBinaryValue(e *cast.Binary) *Expr {
	lt := e.L.TypeOf().Decay()
	rt := e.R.TypeOf().Decay()
	switch e.Op {
	case cast.LogAnd, cast.LogOr:
		// Short-circuit: the right operand may not execute, so its
		// side effects must sit on a branch.
		b.lowerValue(e.L)
		if hasSideEffects(e.R) {
			fork := func() *Node { b.ensureCur(); return b.cur }()
			after := b.newMeet()
			link(fork, after)
			b.lowerValue(e.R)
			b.ensureCur()
			link(b.cur, after)
			b.cur = after
		} else {
			b.lowerValue(e.R)
		}
		return &Expr{}
	case cast.Lt, cast.Gt, cast.Le, cast.Ge, cast.Eq, cast.Ne:
		b.lowerValue(e.L)
		b.lowerValue(e.R)
		return &Expr{}
	case cast.Add, cast.Sub:
		lv := b.lowerValue(e.L)
		rv := b.lowerValue(e.R)
		switch {
		case lt.Kind == ctype.Pointer && rt.Kind == ctype.Pointer:
			// Pointer difference: an integer; per the paper each
			// memory-address input contributes a stride-1 set.
			return union(widen(lv, 1), widen(rv, 1))
		case lt.Kind == ctype.Pointer:
			return widen(lv, elemSize(lt))
		case rt.Kind == ctype.Pointer:
			return widen(rv, elemSize(rt))
		default:
			return union(widen(lv, 1), widen(rv, 1))
		}
	default:
		// Other arithmetic: conservative stride-1 on address inputs.
		lv := b.lowerValue(e.L)
		rv := b.lowerValue(e.R)
		return union(widen(lv, 1), widen(rv, 1))
	}
}

func (b *builder) lowerAssign(e *cast.Assign) *Expr {
	lt := e.L.TypeOf()
	if e.Op != cast.SimpleAssign {
		rv := b.lowerValue(e.R)
		lv := b.lowerLValue(e.L)
		d := lt.Decay()
		var src *Expr
		var size int64
		if d.Kind == ctype.Pointer && (e.Op == cast.Add || e.Op == cast.Sub) {
			src = union(widen(derefExpr(lv), elemSize(lt)), widen(rv, 1))
			size = ctype.PointerSize
		} else {
			src = union(widen(derefExpr(lv), 1), widen(rv, 1))
			size = d.Sizeof()
		}
		b.emitAssign(lv, src, size, false, e.Pos)
		return src
	}
	if lt.Kind == ctype.Struct {
		src := b.lowerLValue(e.R)
		lv := b.lowerLValue(e.L)
		b.emitAssign(lv, src, lt.Sizeof(), true, e.Pos)
		return &Expr{}
	}
	rv := nullAdjusted(b.lowerValue(e.R), lt, e.R)
	lv := b.lowerLValue(e.L)
	b.emitAssign(lv, rv, lt.Decay().Sizeof(), false, e.Pos)
	return rv
}

// lowerCond lowers the ternary operator as a control-flow diamond whose
// branches assign a shared temp. asLValue selects location semantics.
func (b *builder) lowerCond(e *cast.Cond, asLValue bool) *Expr {
	b.lowerValue(e.C)
	rt := e.TypeOf().Decay()
	needValue := rt.Kind == ctype.Pointer || rt.IsPointerLike() ||
		hasSideEffects(e.T) || hasSideEffects(e.F) || asLValue
	if !needValue {
		b.lowerValue(e.T)
		b.lowerValue(e.F)
		return &Expr{}
	}
	b.ensureCur()
	fork := b.cur
	after := b.newMeet()
	tmp := b.newTemp(rt)
	size := rt.Sizeof()
	lowerArm := func(arm cast.Expr) {
		b.cur = fork
		var v *Expr
		if asLValue {
			v = b.lowerLValue(arm)
		} else {
			v = b.lowerValue(arm)
		}
		b.emitAssign(varExpr(tmp), v, size, false, e.Pos)
		b.ensureCur()
		link(b.cur, after)
	}
	lowerArm(e.T)
	lowerArm(e.F)
	b.cur = after
	return derefExpr(varExpr(tmp))
}

// lowerCall lowers a call, returning the value expression of its result
// and the temp symbol holding the result (nil for void calls).
func (b *builder) lowerCall(e *cast.Call) (*Expr, *cast.Symbol) {
	n := newNode(CallNode)
	n.Pos = e.Pos
	// Direct vs. indirect target.
	switch fun := e.Fun.(type) {
	case *cast.Ident:
		if fun.Sym != nil && fun.Sym.Kind == cast.SymFunc {
			n.Direct = fun.Sym
		} else {
			n.Fun = b.lowerValue(e.Fun)
		}
	case *cast.Unary:
		// (*fp)(...) — calling through an explicitly dereferenced
		// function pointer is the same as fp(...).
		if fun.Op == cast.Deref {
			n.Fun = b.lowerValue(fun.X)
		} else {
			n.Fun = b.lowerValue(e.Fun)
		}
	default:
		n.Fun = b.lowerValue(e.Fun)
	}
	ft := e.Fun.TypeOf().Decay()
	if ft.Kind == ctype.Pointer {
		ft = ft.Elem
	}
	for i, a := range e.Args {
		at := a.TypeOf()
		if at.Kind == ctype.Struct {
			// Struct passed by value: any pointer stored anywhere in
			// the struct is passed.
			n.Args = append(n.Args, derefExpr(widen(b.lowerLValue(a), 1)))
			continue
		}
		v := b.lowerValue(a)
		if ft.Kind == ctype.Func && i < len(ft.Params) {
			v = nullAdjusted(v, ft.Params[i], a)
		}
		n.Args = append(n.Args, v)
	}
	rt := e.TypeOf()
	var tmp *cast.Symbol
	if rt.Kind != ctype.Void {
		tmp = b.newTemp(rt)
		n.RetDst = varExpr(tmp)
	}
	b.emit(n)
	if tmp == nil {
		return &Expr{}, nil
	}
	if rt.Kind == ctype.Struct {
		return derefExpr(widen(varExpr(tmp), 1)), tmp
	}
	return derefExpr(varExpr(tmp)), tmp
}

// hasSideEffects reports whether evaluating e can modify state.
func hasSideEffects(e cast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *cast.Ident, *cast.IntLit, *cast.FloatLit, *cast.StrLit,
		*cast.SizeofExpr, *cast.SizeofType:
		return false
	case *cast.Unary:
		switch e.Op {
		case cast.PreInc, cast.PreDec, cast.PostInc, cast.PostDec:
			return true
		}
		return hasSideEffects(e.X)
	case *cast.Binary:
		return hasSideEffects(e.L) || hasSideEffects(e.R)
	case *cast.Assign, *cast.Call:
		return true
	case *cast.Cond:
		return hasSideEffects(e.C) || hasSideEffects(e.T) || hasSideEffects(e.F)
	case *cast.Index:
		return hasSideEffects(e.X) || hasSideEffects(e.I)
	case *cast.Member:
		return hasSideEffects(e.X)
	case *cast.Cast:
		return hasSideEffects(e.X)
	case *cast.Comma:
		return hasSideEffects(e.L) || hasSideEffects(e.R)
	}
	return true
}
