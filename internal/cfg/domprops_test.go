package cfg

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"wlpa/internal/cparse"
	"wlpa/internal/sem"
)

// genControlFlow emits a random function made of nested if/while/for/
// switch statements — a structured-control-flow generator whose graphs
// exercise the dominator machinery.
func genControlFlow(r *rand.Rand) string {
	var body func(depth int) string
	body = func(depth int) string {
		if depth > 3 {
			return "g++;"
		}
		switch r.Intn(6) {
		case 0:
			return fmt.Sprintf("if (g %% %d) { %s } else { %s }",
				2+r.Intn(3), body(depth+1), body(depth+1))
		case 1:
			return fmt.Sprintf("{ int i; for (i = 0; i < %d; i++) { %s } }",
				1+r.Intn(4), body(depth+1))
		case 2:
			return fmt.Sprintf("while (g < %d) { g++; %s }", r.Intn(50), body(depth+1))
		case 3:
			return fmt.Sprintf("switch (g %% 3) { case 0: %s break; case 1: %s default: g--; }",
				body(depth+1), body(depth+1))
		case 4:
			return body(depth+1) + " " + body(depth+1)
		default:
			return fmt.Sprintf("g += %d;", r.Intn(9))
		}
	}
	return "int g;\nvoid f(void) {\n" + body(0) + "\n}\nint main(void){ f(); return 0; }"
}

func buildRandom(t *testing.T, seed int64) *Proc {
	t.Helper()
	src := genControlFlow(rand.New(rand.NewSource(seed)))
	f, err := cparse.ParseSource("gen.c", src)
	if err != nil {
		t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatalf("seed %d: sem: %v", seed, err)
	}
	proc, err := Build(prog.FuncByName["f"])
	if err != nil {
		t.Fatalf("seed %d: cfg: %v", seed, err)
	}
	return proc
}

// TestDominatorProperties checks, over random structured control flow:
// (1) the entry dominates everything; (2) idom is a strict dominator;
// (3) Dominates is consistent with a brute-force reachability check:
// a dominates b iff removing a disconnects b from the entry.
func TestDominatorProperties(t *testing.T) {
	check := func(seed int64) bool {
		proc := buildRandom(t, seed)
		for _, nd := range proc.Nodes {
			if !proc.Entry.Dominates(nd) {
				t.Errorf("seed %d: entry must dominate %v", seed, nd)
				return false
			}
			if nd.Idom != nil {
				if nd.Idom == nd || !nd.Idom.Dominates(nd) {
					t.Errorf("seed %d: bad idom for %v", seed, nd)
					return false
				}
			}
		}
		// Brute-force dominance: b reachable from entry without a?
		reachAvoiding := func(avoid, target *Node) bool {
			if target == proc.Entry {
				return true
			}
			seen := map[*Node]bool{avoid: true}
			stack := []*Node{proc.Entry}
			if avoid == proc.Entry {
				return false
			}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[n] {
					continue
				}
				seen[n] = true
				if n == target {
					return true
				}
				for _, s := range n.Succs {
					stack = append(stack, s)
				}
			}
			return false
		}
		for _, a := range proc.Nodes {
			for _, b := range proc.Nodes {
				if len(b.Preds) == 0 && b != proc.Entry {
					continue // unreachable exit stub
				}
				want := a == b || !reachAvoiding(a, b)
				if got := a.Dominates(b); got != want {
					t.Errorf("seed %d: Dominates(%v, %v) = %v, want %v", seed, a, b, got, want)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Values: nil}
	seed := int64(0)
	f := func() bool {
		seed++
		return check(seed)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDominanceFrontierProperty: for every node n and every m in DF(n),
// n dominates a predecessor of m but does not strictly dominate m.
func TestDominanceFrontierProperty(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		proc := buildRandom(t, seed)
		for _, n := range proc.Nodes {
			for _, m := range n.DF {
				domPred := false
				for _, p := range m.Preds {
					if n.Dominates(p) {
						domPred = true
					}
				}
				if !domPred {
					t.Errorf("seed %d: %v in DF(%v) but dominates no pred", seed, m, n)
				}
				if n != m && n.Dominates(m) {
					t.Errorf("seed %d: %v strictly dominates its DF member %v", seed, n, m)
				}
			}
		}
	}
}

// TestRPOTopologicalOnAcyclic: for graphs without loops, RPO is a
// topological order (every edge goes forward).
func TestRPOTopologicalOnAcyclic(t *testing.T) {
	src := `
int g;
void f(void) {
    if (g) { g = 1; } else { g = 2; }
    if (g > 1) { g = 3; }
    switch (g) { case 1: g = 4; break; default: g = 5; }
}
int main(void){ f(); return 0; }`
	f, err := cparse.ParseSource("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sem.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := Build(prog.FuncByName["f"])
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range proc.Nodes {
		for _, s := range n.Succs {
			if s.RPO <= n.RPO {
				t.Errorf("back edge %v -> %v in acyclic graph", n, s)
			}
		}
	}
}
