// Package cfg builds per-procedure flow graphs in "points-to form"
// (paper §4.4): every assignment's source expression carries an extra
// dereference, and expressions are sets of constant location terms and
// nested dereference terms. The package also computes reverse
// postorder, dominator trees and dominance frontiers, which the sparse
// points-to representation relies on (paper §4.2).
//
// Invariants:
//
//   - A procedure's graph is built once and never mutated afterwards;
//     node identity (its index) is stable, which lets the analysis key
//     dirty sets, reader registrations and per-node points-to records
//     by node.
//   - Node order is reverse postorder, so a forward sweep visits
//     definitions before uses on acyclic paths; back edges are exactly
//     the edges a worklist pass must re-traverse.
//   - Dominator and dominance-frontier queries are pure reads, safe
//     from concurrent evaluation workers.
package cfg
