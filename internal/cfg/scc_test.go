package cfg

import (
	"reflect"
	"testing"
)

func sccOf(t *testing.T, n int, edges [][2]int) ([]int, [][]int) {
	t.Helper()
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	return SCC(n, func(v int) []int { return adj[v] })
}

func TestSCCBasic(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 (one cycle), 2 -> 3, 3 -> 4, 4 -> 3.
	comp, comps := sccOf(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 3}})
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2: %v", len(comps), comps)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("0,1,2 should share a component: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Errorf("3,4 should share a component: %v", comp)
	}
	// Edge 2->3 crosses components; reverse topological order means
	// comp[2] > comp[3].
	if comp[2] <= comp[3] {
		t.Errorf("want comp[2] > comp[3] (reverse topological), got %v", comp)
	}
}

func TestSCCSingletons(t *testing.T) {
	// A DAG: every vertex its own component, sinks numbered first.
	comp, comps := sccOf(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if comp[e[0]] <= comp[e[1]] {
			t.Errorf("edge %v: want comp[%d] > comp[%d], got %v", e, e[0], e[1], comp)
		}
	}
}

func TestSCCSelfLoopAndIsolated(t *testing.T) {
	comp, comps := sccOf(t, 3, [][2]int{{0, 0}})
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	for v := 0; v < 3; v++ {
		if comp[v] < 0 || comp[v] >= 3 {
			t.Errorf("vertex %d unassigned: %v", v, comp)
		}
	}
}

func TestSCCEmpty(t *testing.T) {
	comp, comps := SCC(0, func(int) []int { return nil })
	if len(comp) != 0 || len(comps) != 0 {
		t.Fatalf("empty graph: got %v %v", comp, comps)
	}
}

func TestSCCDeterministic(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}, {3, 4}, {4, 4}, {2, 5}}
	c1, cs1 := sccOf(t, 6, edges)
	c2, cs2 := sccOf(t, 6, edges)
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(cs1, cs2) {
		t.Fatalf("nondeterministic SCC: %v %v vs %v %v", c1, cs1, c2, cs2)
	}
}

func TestSCCDeepChain(t *testing.T) {
	// A long chain must not blow the stack (iterative Tarjan).
	const n = 200000
	comp, comps := SCC(n, func(v int) []int {
		if v+1 < n {
			return []int{v + 1}
		}
		return nil
	})
	if len(comps) != n {
		t.Fatalf("got %d components, want %d", len(comps), n)
	}
	if comp[0] != n-1 || comp[n-1] != 0 {
		t.Errorf("chain order wrong: comp[0]=%d comp[n-1]=%d", comp[0], comp[n-1])
	}
}
