package cfg

// SCC computes the strongly connected components of a directed graph
// with n vertices 0..n-1 and adjacency function adj, using an iterative
// Tarjan walk (no recursion, safe for deep graphs).
//
// It returns comp, mapping each vertex to its component index, and
// comps, the components themselves. Component indices form a reverse
// topological order of the condensation: every edge u->v with
// comp[u] != comp[v] has comp[u] > comp[v]. Vertices within a component
// appear in discovery order.
//
// The parallel scheduler condenses the (dynamically discovered) call
// graph with this to find sets of procedures whose PTF evaluations are
// mutually independent.
func SCC(n int, adj func(int) []int) (comp []int, comps [][]int) {
	comp = make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int // Tarjan stack of vertices in open components
	next := 1       // next discovery index (0 means unvisited via -1 sentinel)

	// Explicit DFS frame: vertex plus position in its adjacency list.
	type dfsFrame struct {
		v  int
		ai int
	}
	var dfs []dfsFrame

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		dfs = append(dfs[:0], dfsFrame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			fr := &dfs[len(dfs)-1]
			v := fr.v
			a := adj(v)
			if fr.ai < len(a) {
				w := a[fr.ai]
				fr.ai++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, dfsFrame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is finished: pop its frame, propagate its lowlink, and
			// close a component if v is a root.
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := &dfs[len(dfs)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var c []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(comps)
					c = append(c, w)
					if w == v {
						break
					}
				}
				// Tarjan pops in reverse discovery order; restore it.
				for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
					c[i], c[j] = c[j], c[i]
				}
				comps = append(comps, c)
			}
		}
	}
	return comp, comps
}
