package cfg

import (
	"fmt"
	"strings"
	"sync"

	"wlpa/internal/cast"
)

// TermKind classifies IR expression terms.
type TermKind int

const (
	// TermVar denotes the storage location of a variable (its address).
	TermVar TermKind = iota
	// TermFunc denotes a function value (the address of a function).
	TermFunc
	// TermStr denotes the storage of a string literal.
	TermStr
	// TermDeref denotes the contents of the locations computed by Base:
	// the points-to lookup of each base location, then displaced by Off
	// and widened by Stride.
	TermDeref
	// TermNull denotes the null pointer constant assigned to a
	// pointer-typed destination. The analysis maps it to the null
	// pseudo-location when null tracking is enabled and ignores it
	// otherwise (a null pointer reaches no storage).
	TermNull
)

// Term is one alternative of an IR expression. After the base locations
// are computed (directly for TermVar/TermFunc/TermStr, via a points-to
// lookup for TermDeref), each location is shifted by Off and widened to
// stride gcd with Stride (0 means no widening).
type Term struct {
	Kind   TermKind
	Sym    *cast.Symbol // TermVar, TermFunc
	StrID  int          // TermStr
	StrVal string       // TermStr
	Base   *Expr        // TermDeref
	Off    int64
	Stride int64
}

// Expr is an IR expression in points-to form: a union of terms.
type Expr struct {
	Terms []Term
}

// IsEmpty reports whether the expression can produce no pointer values.
func (e *Expr) IsEmpty() bool { return e == nil || len(e.Terms) == 0 }

// Expression nodes live as long as the procedure that holds them, and a
// CFG build creates them in bulk (one per variable reference or
// dereference), so their storage is carved from shared slabs: one chunk
// allocation amortizes over dozens of nodes. Carved term slices are
// capacity-clipped, so appending to one (union does) reallocates away
// and can never overwrite a neighboring carve. The mutex keeps the slabs
// safe if procedures are ever built from multiple goroutines; builds are
// front-end work, so contention is irrelevant.
var (
	exprMu   sync.Mutex
	exprSlab []Expr
	termSlab []Term
)

// allocExpr returns a slab-backed empty expression.
func allocExpr() *Expr {
	exprMu.Lock()
	if len(exprSlab) == 0 {
		exprSlab = make([]Expr, 64)
	}
	e := &exprSlab[0]
	exprSlab = exprSlab[1:]
	exprMu.Unlock()
	return e
}

// carveTerms returns a slab-backed term slice of length and capacity n.
func carveTerms(n int) []Term {
	if n > 128 {
		return make([]Term, n)
	}
	exprMu.Lock()
	if len(termSlab) < n {
		termSlab = make([]Term, 128)
	}
	ts := termSlab[0:n:n]
	termSlab = termSlab[n:]
	exprMu.Unlock()
	return ts
}

// expr1 builds a single-term expression from slab storage.
func expr1(t Term) *Expr {
	e := allocExpr()
	e.Terms = carveTerms(1)
	e.Terms[0] = t
	return e
}

func varExpr(sym *cast.Symbol) *Expr {
	return expr1(Term{Kind: TermVar, Sym: sym})
}

func funcExpr(sym *cast.Symbol) *Expr {
	return expr1(Term{Kind: TermFunc, Sym: sym})
}

func strExpr(id int, val string) *Expr {
	return expr1(Term{Kind: TermStr, StrID: id, StrVal: val})
}

func nullExpr() *Expr {
	return expr1(Term{Kind: TermNull})
}

// derefExpr wraps base in a dereference.
func derefExpr(base *Expr) *Expr {
	if base.IsEmpty() {
		return allocExpr()
	}
	return expr1(Term{Kind: TermDeref, Base: base})
}

// shift displaces every term's result by delta bytes.
func shift(e *Expr, delta int64) *Expr {
	if e.IsEmpty() || delta == 0 {
		return e
	}
	out := allocExpr()
	out.Terms = carveTerms(len(e.Terms))
	copy(out.Terms, e.Terms)
	for i := range out.Terms {
		out.Terms[i].Off += delta
	}
	return out
}

// widen folds stride s into every term (gcd with any existing stride).
func widen(e *Expr, s int64) *Expr {
	if e.IsEmpty() || s == 0 {
		return e
	}
	out := allocExpr()
	out.Terms = carveTerms(len(e.Terms))
	copy(out.Terms, e.Terms)
	for i := range out.Terms {
		t := &out.Terms[i]
		if t.Stride == 0 {
			t.Stride = s
		} else {
			t.Stride = gcd64(t.Stride, s)
		}
	}
	return out
}

// union merges expressions.
func union(es ...*Expr) *Expr {
	out := allocExpr()
	for _, e := range es {
		if e != nil {
			out.Terms = append(out.Terms, e.Terms...)
		}
	}
	return out
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (t Term) String() string {
	var core string
	switch t.Kind {
	case TermVar:
		core = "&" + t.Sym.Name
	case TermFunc:
		core = "fn:" + t.Sym.Name
	case TermStr:
		core = fmt.Sprintf("str%d", t.StrID)
	case TermDeref:
		core = "*" + t.Base.String()
	case TermNull:
		core = "null"
	}
	if t.Off != 0 {
		core = fmt.Sprintf("(%s+%d)", core, t.Off)
	}
	if t.Stride != 0 {
		core = fmt.Sprintf("(%s%%%d)", core, t.Stride)
	}
	return core
}

func (e *Expr) String() string {
	if e.IsEmpty() {
		return "⊥"
	}
	parts := make([]string, len(e.Terms))
	for i, t := range e.Terms {
		parts[i] = t.String()
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, " | ") + ")"
}
